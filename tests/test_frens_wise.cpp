// Tests for the Frens-Wise recursive-conventional baseline
// (src/baselines/frens_wise).
#include <gtest/gtest.h>

#include "baselines/frens_wise.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "trace/counting.hpp"

namespace strassen::baselines {
namespace {

void expect_exact(Op opa, Op opb, int m, int n, int k, double alpha,
                  double beta, const FrensWiseOptions& opt = {}) {
  Rng rng(static_cast<std::uint64_t>(m) * 71 + n * 29 + k);
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac), B(br, bc), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C.storage(), -3, 3);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(),
                   B.ld(), beta, Ref.data(), Ref.ld());
  frens_wise_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(),
                  B.ld(), beta, C.data(), C.ld(), opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
      << m << "x" << n << "x" << k;
}

class FrensWiseSizes : public ::testing::TestWithParam<int> {};

TEST_P(FrensWiseSizes, SquareSweepExact) {
  expect_exact(Op::NoTrans, Op::NoTrans, GetParam(), GetParam(), GetParam(),
               1.0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrensWiseSizes,
                         ::testing::Values(7, 8, 9, 64, 100, 128, 129, 200,
                                           256, 257));

TEST(FrensWise, RectangularAndOps) {
  expect_exact(Op::NoTrans, Op::NoTrans, 100, 80, 120, 1.0, 0.0);
  expect_exact(Op::Trans, Op::NoTrans, 90, 110, 70, 1.0, 0.0);
  expect_exact(Op::NoTrans, Op::Trans, 65, 129, 100, 2.0, -1.0);
}

TEST(FrensWise, NearElementLeaf) {
  FrensWiseOptions opt;
  opt.leaf = 1;  // all the way down, as Frens & Wise did
  expect_exact(Op::NoTrans, Op::NoTrans, 33, 33, 33, 1.0, 0.0, opt);
  opt.leaf = 2;
  expect_exact(Op::NoTrans, Op::NoTrans, 50, 50, 50, 1.0, 0.0, opt);
}

TEST(FrensWise, TrafficScalesAsEightPerLevelNotSeven) {
  // The contrast with Strassen: doubling the size multiplies the recursive
  // conventional algorithm's traffic by ~8.
  auto total = [&](int n) {
    trace::CountingMem mm;
    Matrix<double> A(n, n), B(n, n), C(n, n);
    frens_wise_mm(mm, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n);
    return mm.total();
  };
  const double ratio = static_cast<double>(total(256)) / total(128);
  EXPECT_GT(ratio, 7.6);
  EXPECT_LT(ratio, 8.4);
}

TEST(FrensWise, DegenerateDimensions) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  for (auto& x : C.storage()) x = 4.0;
  frens_wise_gemm(Op::NoTrans, Op::NoTrans, 8, 8, 0, 1.0, A.data(), 8,
                  B.data(), 8, 0.5, C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.0);
}

}  // namespace
}  // namespace strassen::baselines
