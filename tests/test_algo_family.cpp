// Tests for the <m,k,n> algorithm-family engine: the coefficient tables
// (analysis/algo_family.hpp), their symbolic prover
// (analysis/algo_verify.hpp), the one-level interpreter (core/family.hpp)
// reached through the public driver pin, the STRASSEN_ALGO resolution
// ladder, and the <2,2,2> bit-identity contract -- forcing the table that
// mirrors the Winograd schedule must not change a single output bit
// relative to the seed path.
//
// The negative suite mutates a shipped table one defect at a time (wrong
// coefficient sign, corrupted C-accumulation row, under-declared staging
// peak, dead product) and asserts both prover layers reject it with the
// documented violation kind and a step-precise message.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/algo_family.hpp"
#include "analysis/algo_verify.hpp"
#include "blas/gemm.hpp"
#include "blas/kernels/registry.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "obs/report.hpp"

namespace strassen {
namespace {

using analysis::AlgoFamily;
using analysis::FamilyCoreResult;
using analysis::FamilyTable;
using analysis::FamilyViolation;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  bool had_ = false;
  std::string saved_;
};

bool any_error_contains(const std::vector<std::string>& errors,
                        const std::string& needle) {
  for (const std::string& e : errors)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

std::string joined(const std::vector<std::string>& errors) {
  std::string all;
  for (const std::string& e : errors) all += e + "\n";
  return all;
}

// A mutable deep copy of a FamilyTable whose coefficient storage the test
// owns, so a defect can be injected without touching the shipped constexpr
// arrays.
struct TestTable {
  std::vector<std::int8_t> a, b, c;
  FamilyTable t;

  explicit TestTable(const FamilyTable& base)
      : a(base.a, base.a + base.rank * base.bm * base.bk),
        b(base.b, base.b + base.rank * base.bk * base.bn),
        c(base.c, base.c + base.bm * base.bn * base.rank),
        t(base) {
    t.a = a.data();
    t.b = b.data();
    t.c = c.data();
  }
};

// ---- oracle: every shipped table, edge shapes, ops, scalars, strides ------

struct Shape {
  int m, k, n;
};

void run_oracle(AlgoFamily algo, const Shape& s, Op opa, Op opb, double alpha,
                double beta, int pad) {
  const int ar = opa == Op::NoTrans ? s.m : s.k;
  const int ac = opa == Op::NoTrans ? s.k : s.m;
  const int br = opb == Op::NoTrans ? s.k : s.n;
  const int bc = opb == Op::NoTrans ? s.n : s.k;
  // Over-tall storage exercises the strided (lda > rows) access paths.
  Matrix<double> A(ar + pad, ac), B(br + pad, bc), C(s.m + pad, s.n),
      ref(s.m + pad, s.n);
  Rng rng(static_cast<std::uint64_t>(s.m) * 1009 + s.k * 31 + s.n * 7 +
          static_cast<int>(algo));
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  rng.fill_uniform(C.storage());
  std::memcpy(ref.data(), C.data(),
              sizeof(double) * ref.storage().size());

  blas::naive_gemm(opa, opb, s.m, s.n, s.k, alpha, A.data(), A.ld(), B.data(),
                   B.ld(), beta, ref.data(), ref.ld());

  core::ModgemmOptions opt;
  opt.algo = algo;
  // Force recursion below the family level so the sub-products exercise the
  // real <2,2,2> engine, not just the direct leaf.
  opt.tiles.direct_threshold = 16;
  opt.tiles.min_tile = 8;
  opt.tiles.preferred_tile = 16;
  core::modgemm(opa, opb, s.m, s.n, s.k, alpha, A.data(), A.ld(), B.data(),
                B.ld(), beta, C.data(), C.ld(), opt);

  const double tol = 1e-9 * std::max(1, s.k);
  for (int j = 0; j < s.n; ++j)
    for (int i = 0; i < s.m; ++i)
      ASSERT_NEAR(C.at(i, j), ref.at(i, j), tol)
          << "algo=" << analysis::algo_name(algo) << " shape=" << s.m << "x"
          << s.k << "x" << s.n << " op=" << static_cast<int>(opa)
          << static_cast<int>(opb) << " at (" << i << "," << j << ")";
}

TEST(AlgoFamilyOracle, EveryTableMatchesNaiveOnEdgeShapes) {
  // Tiny (below every block grid), prime, one-partition-short, and shapes
  // matching each table's grid exactly.
  const Shape shapes[] = {{1, 1, 1},   {2, 3, 4},   {3, 2, 3},  {5, 7, 9},
                          {17, 1, 9},  {1, 23, 1},  {37, 53, 41},
                          {48, 36, 60}, {64, 64, 64}};
  for (const AlgoFamily algo : analysis::kShippedAlgoFamilies)
    for (const Shape& s : shapes)
      run_oracle(algo, s, Op::NoTrans, Op::NoTrans, 1.0, 0.0, 3);
}

TEST(AlgoFamilyOracle, TransposesScalarsAndStrides) {
  const Shape s{29, 43, 33};
  for (const AlgoFamily algo : analysis::kShippedAlgoFamilies) {
    run_oracle(algo, s, Op::Trans, Op::NoTrans, 1.5, 0.5, 5);
    run_oracle(algo, s, Op::NoTrans, Op::Trans, -0.75, 1.0, 2);
    run_oracle(algo, s, Op::Trans, Op::Trans, 2.0, -1.25, 7);
  }
}

TEST(AlgoFamilyOracle, RectanglesMatchedToEachGrid) {
  // Shapes whose aspect matches a table's block grid, including the Sayuri
  // im2col shape (k = 19^2) the families target.
  run_oracle(AlgoFamily::k323, {96, 64, 96}, Op::NoTrans, Op::NoTrans, 1.0,
             0.0, 0);
  run_oracle(AlgoFamily::k234, {64, 96, 128}, Op::NoTrans, Op::NoTrans, 1.0,
             1.0, 0);
  run_oracle(AlgoFamily::k333, {99, 99, 99}, Op::NoTrans, Op::NoTrans, 1.0,
             0.0, 1);
  run_oracle(AlgoFamily::k333, {128, 361, 128}, Op::NoTrans, Op::NoTrans, 1.0,
             0.0, 0);
}

// ---- report stamping ------------------------------------------------------

TEST(AlgoFamilyReport, ForcedFamilyStampsAlgoAndProducts) {
  const int m = 66, k = 44, n = 66;
  Matrix<double> A(m, k), B(k, n), C(m, n);
  Rng rng(7);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::ModgemmOptions opt;
  opt.algo = AlgoFamily::k323;
  opt.tiles.direct_threshold = 16;
  opt.tiles.min_tile = 8;
  opt.tiles.preferred_tile = 16;
  obs::GemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld(), opt, &report);
  EXPECT_STREQ(report.algo, "323");
  EXPECT_EQ(report.planned_depth, 1);
  // One level of <3,2,3> runs 17 block products; the sub-recursions add
  // their own on top.
  EXPECT_GE(report.products, 17);
  EXPECT_EQ(std::string(obs::fallback_reason_name(report.fallback_reason)),
            "none");
}

TEST(AlgoFamilyReport, BudgetTooSmallFallsBackToWinograd) {
  const int m = 48, k = 48, n = 48;
  Matrix<double> A(m, k), B(k, n), C(m, n), ref(m, n);
  Rng rng(11);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, ref.data(), ref.ld());
  core::ModgemmOptions opt;
  opt.algo = AlgoFamily::k333;
  opt.max_workspace_bytes = 1024;  // far below the family staging
  obs::GemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld(), opt, &report);
  EXPECT_EQ(std::string(obs::fallback_reason_name(report.fallback_reason)),
            "algo-fallback");
  EXPECT_STREQ(report.algo, "222");  // what actually ran
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i)
      ASSERT_NEAR(C.at(i, j), ref.at(i, j), 1e-9 * k);
}

// ---- <2,2,2> bit-identity to the seed path --------------------------------

// Forcing the <2,2,2> coefficient table must leave the driver on the plain
// Winograd path (the family hook returns to the unchanged engine), so every
// output bit matches the default run.  The scalar kernel pin removes any
// register-blocking nondeterminism from the comparison.
TEST(AlgoFamilyBitIdentity, Forced222MatchesSeedBitForBit) {
  const int n = 192;
  Matrix<double> A(n, n), B(n, n), C0(n, n), C1(n, n), C2(n, n);
  Rng rng(23);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());

  core::ModgemmOptions base;
  base.kernel = blas::kernels::Kind::kScalar;
  base.tiles.direct_threshold = 32;
  base.tiles.min_tile = 8;
  base.tiles.preferred_tile = 16;
  {
    ScopedEnv env("STRASSEN_ALGO", nullptr);  // seed: heuristic resolution
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                  B.data(), B.ld(), 0.0, C0.data(), C0.ld(), base);
  }
  {
    ScopedEnv env("STRASSEN_ALGO", "222");  // forced via environment
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                  B.data(), B.ld(), 0.0, C1.data(), C1.ld(), base);
  }
  core::ModgemmOptions pinned = base;
  pinned.algo = AlgoFamily::k222;  // forced via the per-call pin
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C2.data(), C2.ld(), pinned);

  EXPECT_EQ(0, std::memcmp(C0.data(), C1.data(),
                           sizeof(double) * C0.storage().size()));
  EXPECT_EQ(0, std::memcmp(C0.data(), C2.data(),
                           sizeof(double) * C0.storage().size()));
}

TEST(AlgoFamilyBitIdentity, DeepSquareHeuristicStaysOn222) {
  // The planner heuristic must keep deep squares on <2,2,2> (the margin rule
  // in layout::choose_algo): that is what keeps the default path identical
  // to the seed.
  layout::TileOptions tiles;
  for (int n : {128, 256, 384, 512, 1024})
    EXPECT_EQ(layout::choose_algo(n, n, n, tiles), AlgoFamily::k222)
        << "n=" << n;
}

// ---- STRASSEN_ALGO resolution ladder --------------------------------------

TEST(AlgoFamilyEnv, PinBeatsEnvironment) {
  ScopedEnv env("STRASSEN_ALGO", "333");
  core::ModgemmOptions opt;
  opt.algo = AlgoFamily::k323;
  EXPECT_EQ(core::detail::resolve_algo_family(opt), AlgoFamily::k323);
  opt.algo = AlgoFamily::kAuto;
  EXPECT_EQ(core::detail::resolve_algo_family(opt), AlgoFamily::k333);
}

TEST(AlgoFamilyEnv, ParsesEveryName) {
  EXPECT_EQ(core::detail::parse_algo_family("auto"), AlgoFamily::kAuto);
  EXPECT_EQ(core::detail::parse_algo_family("222"), AlgoFamily::k222);
  EXPECT_EQ(core::detail::parse_algo_family("323"), AlgoFamily::k323);
  EXPECT_EQ(core::detail::parse_algo_family("234"), AlgoFamily::k234);
  EXPECT_EQ(core::detail::parse_algo_family("333"), AlgoFamily::k333);
}

TEST(AlgoFamilyEnv, MalformedValueThrowsLoudly) {
  try {
    core::detail::parse_algo_family("2x2x2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("STRASSEN_ALGO"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("2x2x2"), std::string::npos);
  }
}

// ---- prover: positive -----------------------------------------------------

TEST(AlgoVerify, EveryShippedTableVerifies) {
  for (const AlgoFamily f : analysis::kShippedAlgoFamilies) {
    const FamilyTable& t = analysis::family_table(f);
    const FamilyCoreResult r = verify_family_core(t);
    EXPECT_EQ(r.violation, FamilyViolation::kNone) << t.name;
    EXPECT_TRUE(verify_family(t).empty()) << joined(verify_family(t));
  }
}

TEST(AlgoVerify, RankAndPeakPins) {
  EXPECT_EQ(verify_family_core(analysis::kTable222).rank, 7);
  EXPECT_EQ(verify_family_core(analysis::kTable323).rank, 17);
  EXPECT_EQ(verify_family_core(analysis::kTable234).rank, 22);
  EXPECT_EQ(verify_family_core(analysis::kTable333).rank, 23);
  for (const AlgoFamily f : analysis::kShippedAlgoFamilies)
    EXPECT_EQ(verify_family_core(analysis::family_table(f)).temp_peak, 3);
}

// ---- prover: negative (one defect at a time) ------------------------------

TEST(AlgoVerifyNegative, WrongCoefficientSignBreaksTheIdentity) {
  TestTable bad(analysis::kTable323);
  for (std::int8_t& v : bad.a) {  // flip the first nonzero A coefficient
    if (v != 0) {
      v = static_cast<std::int8_t>(-v);
      break;
    }
  }
  const FamilyCoreResult r = verify_family_core(bad.t);
  EXPECT_EQ(r.violation, FamilyViolation::kProductIdentity);
  const std::vector<std::string> errors = verify_family(bad.t);
  ASSERT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(errors, "accumulation row is wrong"))
      << joined(errors);
  EXPECT_TRUE(any_error_contains(errors, "want")) << joined(errors);
}

TEST(AlgoVerifyNegative, OutOfRangeCoefficientIsPinpointed) {
  TestTable bad(analysis::kTable234);
  bad.b[3] = 2;  // outside {-1,0,1}
  const FamilyCoreResult r = verify_family_core(bad.t);
  EXPECT_EQ(r.violation, FamilyViolation::kBadCoefficient);
  EXPECT_EQ(r.product, 0);
  const std::vector<std::string> errors = verify_family(bad.t);
  EXPECT_TRUE(any_error_contains(errors, "outside {-1,0,1}"))
      << joined(errors);
  EXPECT_TRUE(any_error_contains(errors, "product 1")) << joined(errors);
}

TEST(AlgoVerifyNegative, BadCAccumulationRowNamesTheBlock) {
  TestTable bad(analysis::kTable333);
  // Zero C[0][0]'s first nonzero accumulation coefficient.
  for (int r = 0; r < bad.t.rank; ++r) {
    if (bad.c[r] != 0) {
      bad.c[r] = 0;
      break;
    }
  }
  const FamilyCoreResult r = verify_family_core(bad.t);
  EXPECT_EQ(r.violation, FamilyViolation::kProductIdentity);
  EXPECT_EQ(r.ci, 0);
  EXPECT_EQ(r.cj, 0);
  const std::vector<std::string> errors = verify_family(bad.t);
  EXPECT_TRUE(any_error_contains(errors, "C[0][0]")) << joined(errors);
  EXPECT_TRUE(any_error_contains(errors, "accumulation row is wrong"))
      << joined(errors);
}

TEST(AlgoVerifyNegative, UnderDeclaredTempPeakIsRejected) {
  TestTable bad(analysis::kTable222);
  bad.t.declared_temp_peak = 2;  // interpreter stages 3
  const FamilyCoreResult r = verify_family_core(bad.t);
  EXPECT_EQ(r.violation, FamilyViolation::kTempPeakMismatch);
  EXPECT_EQ(r.got, 2);
  EXPECT_EQ(r.want, 3);
  const std::vector<std::string> errors = verify_family(bad.t);
  EXPECT_TRUE(any_error_contains(errors, "declared temp peak 2"))
      << joined(errors);
  EXPECT_TRUE(any_error_contains(errors, "stages 3")) << joined(errors);
}

TEST(AlgoVerifyNegative, DeadProductIsRejected) {
  TestTable bad(analysis::kTable323);
  // Orphan product 17 by zeroing its column in every C row.
  const int r17 = bad.t.rank - 1;
  for (int cb = 0; cb < bad.t.bm * bad.t.bn; ++cb)
    bad.c[cb * bad.t.rank + r17] = 0;
  const FamilyCoreResult r = verify_family_core(bad.t);
  // The identity breaks first (checks run in documented order).
  EXPECT_EQ(r.violation, FamilyViolation::kProductIdentity);
  const std::vector<std::string> errors = verify_family(bad.t);
  EXPECT_TRUE(any_error_contains(errors, "dead")) << joined(errors);
}

}  // namespace
}  // namespace strassen
