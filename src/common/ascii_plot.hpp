// ascii_plot.hpp -- terminal line charts for the figure benches.
//
// The paper's results are FIGURES; the bench binaries print their rows as
// tables, and this renderer additionally draws the series so the shape the
// paper plots (the n=513 cliff, the conversion-fraction decay, the
// normalized-time band around 1.0) is visible directly in the terminal.
//
// Pure text: y is scaled into `height` rows, each series gets a marker
// character, collisions show the later series' marker.  NaNs are skipped.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace strassen {

struct PlotSeries {
  std::string name;
  char marker = '*';
  std::vector<double> y;  // same length as the shared x vector
};

struct PlotOptions {
  int width = 72;    // columns of the plot area
  int height = 16;   // rows of the plot area
  // When set, the y range is fixed instead of auto-scaled.
  bool fix_range = false;
  double y_min = 0.0;
  double y_max = 1.0;
  // Draw a horizontal reference line at this value (e.g. ratio 1.0);
  // NaN disables it.
  double reference = std::numeric_limits<double>::quiet_NaN();
};

// Renders series sharing an x axis; x must be ascending.  Returns a
// multi-line string (ends with '\n') with a y-axis scale, the plot area, an
// x-axis line labelled with the first/last x values, and a legend.
std::string render_plot(const std::vector<double>& x,
                        const std::vector<PlotSeries>& series,
                        const PlotOptions& opt = {});

}  // namespace strassen
