// split.hpp -- decomposition of highly rectangular products (paper S3.5).
//
// Each dimension's tile is chosen independently, but all three dimensions
// must unfold the recursion to the SAME depth.  With the tile range
// [min_tile, max_tile] a common depth exists only while the dimensions stay
// within roughly a factor of max_tile/min_tile of each other.  The paper's
// example: 1024 x 256 wants depth 5 for the rows but depth 3 for the
// columns.  The fix: divide the matrix into submatrices that all admit the
// same unfolding depth and reconstruct C from submatrix products
//
//     C[i][j] = sum_r  A[i][r] * B[r][j]
//
// (paper Fig. 4 shows the wide / lean cases of this reconstruction).
#pragma once

#include <utility>
#include <vector>

#include "layout/plan.hpp"

namespace strassen::layout {

// Paper terminology for a matrix's aspect (S3.5): `wide` when cols/rows
// exceeds the desired ratio, `lean` when rows/cols exceeds it.
enum class Shape { WellBehaved, Wide, Lean };

Shape classify(int rows, int cols, double desired_ratio = 4.0);

// A half-open [offset, offset+size) chunk of one dimension.
struct Chunk {
  int offset = 0;
  int size = 0;
};

// Near-equal chunks covering [0, dim), each of size <= max_chunk.
std::vector<Chunk> balanced_chunks(int dim, int max_chunk);

// Decomposition of C(m x n) = A(m x k) B(k x n) into sub-products that each
// admit a common recursion depth.
struct SplitPlan {
  bool needed = false;  // false: the whole product plans at one depth
  int depth = 0;        // unified depth the chunks are sized for
  std::vector<Chunk> m_chunks;
  std::vector<Chunk> k_chunks;
  std::vector<Chunk> n_chunks;
  std::size_t products() const {
    return m_chunks.size() * k_chunks.size() * n_chunks.size();
  }
};

// Builds the split plan.  Guarantees that plan_gemm on every resulting
// (m_chunk, k_chunk, n_chunk) triple is feasible (single-depth) or direct
// (the latter only when the anchor dimension sits in the window gap
// direct_threshold < n < 2*min_tile), which the property tests verify
// exhaustively.
SplitPlan plan_split(int m, int k, int n, const TileOptions& opt = {});

}  // namespace strassen::layout
