// winograd.hpp -- the Strassen-Winograd recursion over Morton storage.
//
// This is the computational heart of MODGEMM.  A Morton block of depth d is
// four contiguous sub-blocks (NW=11, NE=12, SW=21, SE=22 in matrix-quadrant
// notation) each of depth d-1, so quadrant access is pure pointer arithmetic
// and all 15 quadrant additions of Winograd's variant are single contiguous
// loops (paper S3.3).
//
// The SCHEDULE -- which quadrant addition or recursive product runs when,
// and which of the three temporaries (tS over A-quadrants, tT over
// B-quadrants, tP over C-quadrants) holds what -- is data, not code:
// analysis/schedule.hpp declares it as a constexpr step table
// (analysis::kWinograd, 7 recursive products + 15 additions -- the minimum
// for quadrant-based recursion, as the paper notes -- with C's quadrants
// doubling as scratch so only three temporaries are live per level), and
// the interpreter below executes the table step by step.  The verifier
// (analysis/schedule_verify.hpp) symbolically proves every shipped table
// correct at compile time: product identity, no use of clobbered values,
// and the 3-temporary liveness peak.  See docs/ANALYSIS.md for the table
// format and the exact guarantees.
//
// At the last level before the leaves, the production engine can fuse the
// operand combinations that feed exactly one product into the product
// itself (S3/T3 into P5, -T4 into P7, S4 into P6), saving four full passes
// over quadrant-sized temporaries per level-1 node; that variant is its own
// verified table (analysis::kWinogradFusedL1).  The scalar table publishes
// no fused entries, so STRASSEN_KERNEL=scalar (and every traced MemModel)
// runs the materialized schedule with its exact rounding and address
// stream -- bit-identical to the seed library.
#pragma once

#include <cstdint>

#include <type_traits>

#include "analysis/schedule.hpp"
#include "blas/kernels.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/level1.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/memmodel.hpp"
#include "obs/collector.hpp"

namespace strassen::core {

template <class MM, class T>
void winograd_recurse(
    MM& mm, T* C, const T* A, const T* B, int tm, int tk, int tn, int depth,
    Arena& arena,
    analysis::ScheduleFamily family = analysis::ScheduleFamily::kWinograd);

namespace detail {

constexpr blas::kernels::FusedOp fused_op(analysis::Sign s) {
  return s == analysis::Sign::kMinus ? blas::kernels::FusedOp::kSub
                                     : blas::kernels::FusedOp::kAdd;
}

// Executes one schedule level over concrete quadrant/temporary storage.
// Pointer tables are indexed by analysis::Operand; `wr` is null for the
// read-only input quadrants, which the verified tables never write
// (enforced again here for mutated tables reaching a debug build).
template <class MM, class T>
class ScheduleInterpreter {
 public:
  ScheduleInterpreter(MM& mm, int tm, int tk, int tn, int d1,
                      const blas::kernels::LeafKernels* fused_tab,
                      analysis::ScheduleFamily family =
                          analysis::ScheduleFamily::kWinograd)
      : mm_(mm),
        tm_(tm),
        tk_(tk),
        tn_(tn),
        d1_(d1),
        fused_tab_(fused_tab),
        family_(family) {
    for (int i = 0; i < analysis::kOperandCount; ++i) {
      rd_[i] = nullptr;
      wr_[i] = nullptr;
      len_[i] = 0;
    }
  }

  void bind_input(analysis::Operand op, const T* p, std::size_t n) {
    rd_[idx(op)] = p;
    len_[idx(op)] = n;
  }
  void bind_output(analysis::Operand op, T* p, std::size_t n) {
    rd_[idx(op)] = p;
    wr_[idx(op)] = p;
    len_[idx(op)] = n;
  }
  // Writable A/B operand slot of an in-place table (overwrites_inputs): the
  // interpreter may overwrite it with operand sums.  Identical binding to
  // bind_output; the distinct name keeps call sites auditable.
  void bind_inout(analysis::Operand op, T* p, std::size_t n) {
    bind_output(op, p, n);
  }

  void run(const analysis::Schedule& sched, Arena& arena) {
    using analysis::StepKind;
    for (int i = 0; i < sched.step_count; ++i) {
      const analysis::Step& s = sched.steps[i];
      T* dst = wr_[idx(s.dst)];
      STRASSEN_REQUIRE(dst != nullptr,
                       "schedule step writes read-only operand "
                           << analysis::operand_name(s.dst));
      const std::size_t n = len_[idx(s.dst)];
      switch (s.kind) {
        case StepKind::kAdd:
          blas::vadd(mm_, n, dst, rd_[idx(s.a0)], rd_[idx(s.a1)]);
          break;
        case StepKind::kSub:
          blas::vsub(mm_, n, dst, rd_[idx(s.a0)], rd_[idx(s.a1)]);
          break;
        case StepKind::kAddInplace:
          blas::vadd_inplace(mm_, n, dst, rd_[idx(s.a0)]);
          break;
        case StepKind::kSubInplace:
          blas::vsub_inplace(mm_, n, dst, rd_[idx(s.a0)]);
          break;
        case StepKind::kMul:
          winograd_recurse(mm_, dst, rd_[idx(s.a0)], rd_[idx(s.b0)], tm_, tk_,
                           tn_, d1_, arena, family_);
          break;
        case StepKind::kMulFusedA:
        case StepKind::kMulFusedB:
        case StepKind::kMulFusedAB:
          run_fused(s, dst);
          break;
      }
    }
  }

 private:
  static constexpr int idx(analysis::Operand op) {
    return static_cast<int>(op);
  }

  // Fused products only exist for the production (RawMem, double)
  // instantiation at d1 == 0, where operands are single contiguous leaf
  // tiles; the plain tables selected for every other model never contain
  // these step kinds.
  void run_fused(const analysis::Step& s, T* dst) {
    if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
      using analysis::StepKind;
      STRASSEN_REQUIRE(fused_tab_ != nullptr && d1_ == 0,
                       "fused schedule step outside a fused-capable level");
      obs::LeafTimer lt(/*fused=*/true);
      switch (s.kind) {
        case StepKind::kMulFusedA:
          fused_tab_->gemm_fused_a(tm_, tn_, tk_, rd_[idx(s.a0)],
                                   rd_[idx(s.a1)], fused_op(s.asign), tm_,
                                   rd_[idx(s.b0)], tk_, dst, tm_);
          break;
        case StepKind::kMulFusedB:
          fused_tab_->gemm_fused_b(tm_, tn_, tk_, rd_[idx(s.a0)], tm_,
                                   rd_[idx(s.b0)], rd_[idx(s.b1)],
                                   fused_op(s.bsign), tk_, dst, tm_);
          break;
        case StepKind::kMulFusedAB:
          fused_tab_->gemm_fused_ab(tm_, tn_, tk_, rd_[idx(s.a0)],
                                    rd_[idx(s.a1)], fused_op(s.asign), tm_,
                                    rd_[idx(s.b0)], rd_[idx(s.b1)],
                                    fused_op(s.bsign), tk_, dst, tm_);
          break;
        default:
          break;
      }
    } else {
      (void)s;
      (void)dst;
      STRASSEN_REQUIRE(false,
                       "fused schedule step in a non-production instantiation");
    }
  }

  MM& mm_;
  int tm_, tk_, tn_, d1_;
  const blas::kernels::LeafKernels* fused_tab_;
  analysis::ScheduleFamily family_;
  const T* rd_[analysis::kOperandCount];
  T* wr_[analysis::kOperandCount];
  std::size_t len_[analysis::kOperandCount];
};

// Pushes the schedule's temporaries onto the arena -- one allocation per
// DISTINCT buffer id, sized for the largest shape mapped onto it -- and
// binds each temporary.  For identity mappings (the default family) this is
// byte-for-byte the seed's push order and sizes (tS, tT, tP = qa, qb, qc);
// the low-mem table maps tS and tP onto one buffer sized max(qa, qc), which
// the verifier proved safe (disjoint live ranges).
template <class MM, class T>
void push_and_bind_temps(ScheduleInterpreter<MM, T>& interp,
                         const analysis::Schedule& sched, Arena& arena,
                         std::size_t qa, std::size_t qb, std::size_t qc) {
  using analysis::Operand;
  auto elems = [&](Operand t) {
    return analysis::shape_of(t) == analysis::Shape::kA   ? qa
           : analysis::shape_of(t) == analysis::Shape::kB ? qb
                                                          : qc;
  };
  constexpr int kMaxTemps = 6;  // kTS0..kTP1
  STRASSEN_REQUIRE(sched.temp_count <= kMaxTemps,
                   "schedule declares more temporaries than slots exist");
  std::size_t buf_elems[kMaxTemps] = {};
  T* bufs[kMaxTemps] = {};
  const int nbuf = analysis::temp_buffer_count(sched);
  for (int i = 0; i < sched.temp_count; ++i) {
    const int b = analysis::temp_buffer_id(sched, i);
    const std::size_t n = elems(sched.temps[i]);
    if (n > buf_elems[b]) buf_elems[b] = n;
  }
  for (int b = 0; b < nbuf; ++b) bufs[b] = arena.push<T>(buf_elems[b]);
  for (int i = 0; i < sched.temp_count; ++i) {
    const Operand t = sched.temps[i];
    interp.bind_output(t, bufs[analysis::temp_buffer_id(sched, i)], elems(t));
  }
}

}  // namespace detail

// C = A * B on Morton blocks.
//   A: (tm<<depth) x (tk<<depth), leaf tiles tm x tk (column-major)
//   B: (tk<<depth) x (tn<<depth), leaf tiles tk x tn
//   C: (tm<<depth) x (tn<<depth), leaf tiles tm x tn
// `arena` must have winograd_workspace_bytes(tm,tk,tn,depth,...,family)
// available.  `family` selects the schedule family per level: kWinograd is
// the seed-exact default (3 temporaries, fused level-1 when the kernel
// table publishes the entries), kLowMem the 2-buffer BDPZ tables.  kInPlace
// here runs its DEEPER levels (the in-place top level is
// winograd_recurse_inplace, which needs writable operands).
template <class MM, class T>
void winograd_recurse(MM& mm, T* C, const T* A, const T* B, int tm, int tk,
                      int tn, int depth, Arena& arena,
                      analysis::ScheduleFamily family) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tm, tn, tk, A, tm, B, tk, C, tm,
                    blas::LeafMode::Overwrite);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  // Table selection.  Default family: the materialized schedule everywhere,
  // except the last level before the leaves of the production instantiation
  // when the active kernel table publishes the fused entries (scalar does
  // not, by design: the materialized table is the seed-exact path).  The
  // low-mem family (and the sub-levels of the in-place family) run the
  // 2-buffer table at every level -- the fused-L1 table needs all three
  // temporaries live at once, which the shared buffer forbids.
  const bool low_mem = family == analysis::ScheduleFamily::kLowMem ||
                       family == analysis::ScheduleFamily::kInPlace;
  const analysis::Schedule* sched =
      low_mem ? &analysis::kWinogradLowMem : &analysis::kWinograd;
  const blas::kernels::LeafKernels* fused_tab = nullptr;
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (d1 == 0 && !low_mem) {
      const blas::kernels::LeafKernels& tab = blas::kernels::active();
      if (tab.gemm_fused_a != nullptr && tab.gemm_fused_b != nullptr &&
          tab.gemm_fused_ab != nullptr) {
        sched = &analysis::kWinogradFusedL1;
        fused_tab = &tab;
      }
    }
  }

  detail::ScheduleInterpreter<MM, T> interp(mm, tm, tk, tn, d1, fused_tab,
                                            family);

  // Quadrants in memory order NW, NE, SW, SE == 11, 12, 21, 22.
  using analysis::Operand;
  interp.bind_input(Operand::kA11, A, qa);
  interp.bind_input(Operand::kA12, A + qa, qa);
  interp.bind_input(Operand::kA21, A + 2 * qa, qa);
  interp.bind_input(Operand::kA22, A + 3 * qa, qa);
  interp.bind_input(Operand::kB11, B, qb);
  interp.bind_input(Operand::kB12, B + qb, qb);
  interp.bind_input(Operand::kB21, B + 2 * qb, qb);
  interp.bind_input(Operand::kB22, B + 3 * qb, qb);
  interp.bind_output(Operand::kC11, C, qc);
  interp.bind_output(Operand::kC12, C + qc, qc);
  interp.bind_output(Operand::kC21, C + 2 * qc, qc);
  interp.bind_output(Operand::kC22, C + 3 * qc, qc);

  Arena::Frame frame(arena);
  detail::push_and_bind_temps(interp, *sched, arena, qa, qb, qc);

  interp.run(*sched, arena);
}

// C = A * B with the TOP level running the in-place table: the Winograd
// operand sums overwrite A's and B's quadrants, leaving a single C-shaped
// temporary.  A and B must be operand COPIES the caller owns (the
// Morton-staged workspace buffers of core/modgemm.hpp) -- their contents
// are destroyed.  Deeper levels run the low-mem table: a child executing
// in-place would clobber parent operands that are still live.
template <class MM, class T>
void winograd_recurse_inplace(MM& mm, T* C, T* A, T* B, int tm, int tk,
                              int tn, int depth, Arena& arena) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tm, tn, tk, A, tm, B, tk, C, tm,
                    blas::LeafMode::Overwrite);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  const analysis::Schedule& sched = analysis::kWinogradInPlace;
  detail::ScheduleInterpreter<MM, T> interp(
      mm, tm, tk, tn, d1, nullptr, analysis::ScheduleFamily::kInPlace);

  using analysis::Operand;
  interp.bind_inout(Operand::kA11, A, qa);
  interp.bind_inout(Operand::kA12, A + qa, qa);
  interp.bind_inout(Operand::kA21, A + 2 * qa, qa);
  interp.bind_inout(Operand::kA22, A + 3 * qa, qa);
  interp.bind_inout(Operand::kB11, B, qb);
  interp.bind_inout(Operand::kB12, B + qb, qb);
  interp.bind_inout(Operand::kB21, B + 2 * qb, qb);
  interp.bind_inout(Operand::kB22, B + 3 * qb, qb);
  interp.bind_output(Operand::kC11, C, qc);
  interp.bind_output(Operand::kC12, C + qc, qc);
  interp.bind_output(Operand::kC21, C + 2 * qc, qc);
  interp.bind_output(Operand::kC22, C + 3 * qc, qc);

  Arena::Frame frame(arena);
  detail::push_and_bind_temps(interp, sched, arena, qa, qb, qc);

  interp.run(sched, arena);
}

// C += A * B: the top level runs the accumulating table (C's quadrants are
// inputs whose values survive into the result -- the split path's k-chunk
// chains use this to skip the per-chunk C buffer and beta pass), and the
// seven sub-products recurse with `family` tables.  depth == 0 accumulates
// directly at the leaf.
template <class MM, class T>
void winograd_recurse_acc(MM& mm, T* C, const T* A, const T* B, int tm,
                          int tk, int tn, int depth, Arena& arena,
                          analysis::ScheduleFamily family) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tm, tn, tk, A, tm, B, tk, C, tm,
                    blas::LeafMode::Accumulate);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  const analysis::Schedule& sched = analysis::kWinogradAccum;
  detail::ScheduleInterpreter<MM, T> interp(mm, tm, tk, tn, d1, nullptr,
                                            family);

  using analysis::Operand;
  interp.bind_input(Operand::kA11, A, qa);
  interp.bind_input(Operand::kA12, A + qa, qa);
  interp.bind_input(Operand::kA21, A + 2 * qa, qa);
  interp.bind_input(Operand::kA22, A + 3 * qa, qa);
  interp.bind_input(Operand::kB11, B, qb);
  interp.bind_input(Operand::kB12, B + qb, qb);
  interp.bind_input(Operand::kB21, B + 2 * qb, qb);
  interp.bind_input(Operand::kB22, B + 3 * qb, qb);
  interp.bind_output(Operand::kC11, C, qc);
  interp.bind_output(Operand::kC12, C + qc, qc);
  interp.bind_output(Operand::kC21, C + 2 * qc, qc);
  interp.bind_output(Operand::kC22, C + 3 * qc, qc);

  Arena::Frame frame(arena);
  detail::push_and_bind_temps(interp, sched, arena, qa, qb, qc);

  interp.run(sched, arena);
}

}  // namespace strassen::core
