// modgemm.hpp -- MODGEMM: the paper's memory-friendly Strassen-Winograd GEMM.
//
// Public semantics are exactly Level 3 BLAS dgemm (paper S2.1):
//
//     C <- alpha * op(A) . op(B) + beta * C
//
// with column-major A, B, C and leading dimensions; op(X) is X or X^T.
//
// Pipeline for one product (paper S3.5):
//   1. plan     -- choose the per-dimension truncation tiles and the common
//                  recursion depth that minimize padding (layout/plan).
//   2. convert  -- copy op(A), op(B) into zero-padded Morton buffers; the
//                  transposition is folded into this gather.
//   3. recurse  -- Strassen-Winograd over the Morton blocks (core/winograd),
//                  producing D = op(A).op(B) in Morton order.
//   4. convert  -- write C <- alpha*D + beta*C while converting back to
//                  column-major (the alpha/beta work is fused here, so the
//                  common alpha=1, beta=0 case costs nothing extra).
//
// Highly rectangular inputs that admit no common recursion depth are first
// decomposed by layout/split and reconstructed as sums of sub-products
// (paper Fig. 4); thin problems (min dimension <= direct_threshold) skip
// Strassen and run the conventional blocked algorithm.
#pragma once

#include <algorithm>

#include "blas/gemm.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "common/timer.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "layout/convert.hpp"
#include "layout/plan.hpp"
#include "layout/split.hpp"

namespace strassen::core {

// Tuning knobs for the MODGEMM driver.
struct ModgemmOptions {
  layout::TileOptions tiles{};
  // Ablation switch: force a fixed truncation tile (static padding, the
  // paper's strawman).  0 = dynamic selection (the paper's contribution).
  int fixed_tile = 0;
};

// Optional instrumentation: where the time went (paper Fig. 7 separates the
// Morton conversion from the multiply itself).
struct ModgemmReport {
  double convert_in_seconds = 0.0;
  double compute_seconds = 0.0;
  double convert_out_seconds = 0.0;
  layout::GemmPlan plan{};       // plan of the (last) single product
  bool split_used = false;       // highly-rectangular path taken
  int products = 0;              // sub-products executed (1 if no split)
  double total_seconds() const {
    return convert_in_seconds + compute_seconds + convert_out_seconds;
  }
  double conversion_fraction() const {
    const double t = total_seconds();
    return t > 0 ? (convert_in_seconds + convert_out_seconds) / t : 0.0;
  }
};

namespace detail {

// One planned product: C(m x n) {<-,+=} alpha * op(A).op(B) + beta * C.
// Requires plan.feasible or plan.direct.
template <class MM, class T>
void modgemm_single(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                    const T* A, int lda, const T* B, int ldb, T beta, T* C,
                    int ldc, const layout::GemmPlan& plan,
                    ModgemmReport* report) {
  if (plan.direct) {
    WallTimer t;
    blas::gemm_blocked(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                       ldc);
    if (report) {
      report->compute_seconds += t.seconds();
      ++report->products;
    }
    return;
  }
  STRASSEN_ASSERT(plan.feasible && plan.depth >= 1);
  const layout::MortonLayout la{m, k, plan.m.tile, plan.k.tile, plan.depth};
  const layout::MortonLayout lb{k, n, plan.k.tile, plan.n.tile, plan.depth};
  const layout::MortonLayout lc{m, n, plan.m.tile, plan.n.tile, plan.depth};

  const std::size_t round = 64;
  auto buf_bytes = [&](const layout::MortonLayout& l) {
    return (static_cast<std::size_t>(l.elems()) * sizeof(T) + round - 1) /
           round * round;
  };
  const std::size_t arena_bytes =
      buf_bytes(la) + buf_bytes(lb) + buf_bytes(lc) +
      winograd_workspace_bytes(plan.m.tile, plan.k.tile, plan.n.tile,
                               plan.depth, sizeof(T));
  Arena arena(arena_bytes);
  T* Am = arena.push<T>(static_cast<std::size_t>(la.elems()));
  T* Bm = arena.push<T>(static_cast<std::size_t>(lb.elems()));
  T* Cm = arena.push<T>(static_cast<std::size_t>(lc.elems()));

  WallTimer t;
  layout::to_morton(mm, la, Am, opa, A, lda);
  layout::to_morton(mm, lb, Bm, opb, B, ldb);
  const double t_in = t.seconds();

  t.restart();
  winograd_recurse(mm, Cm, Am, Bm, plan.m.tile, plan.k.tile, plan.n.tile,
                   plan.depth, arena);
  const double t_mul = t.seconds();

  t.restart();
  layout::from_morton(mm, lc, Cm, alpha, C, ldc, beta);
  const double t_out = t.seconds();

  if (report) {
    report->convert_in_seconds += t_in;
    report->compute_seconds += t_mul;
    report->convert_out_seconds += t_out;
    report->plan = plan;
    ++report->products;
  }
}

}  // namespace detail

// The full MODGEMM entry point, templated on the memory model so complete
// executions can be cache-simulated (paper Fig. 9).  Dimensions follow the
// dgemm convention: op(A) is m x k, op(B) is k x n, C is m x n.
template <class MM, class T>
void modgemm_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                const T* A, int lda, const T* B, int ldb, T beta, T* C,
                int ldc, const ModgemmOptions& opt = {},
                ModgemmReport* report = nullptr) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  STRASSEN_REQUIRE(lda >= std::max(1, opa == Op::NoTrans ? m : k),
                   "lda too small");
  STRASSEN_REQUIRE(ldb >= std::max(1, opb == Op::NoTrans ? k : n),
                   "ldb too small");
  STRASSEN_REQUIRE(ldc >= std::max(1, m), "ldc too small");
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }

  if (opt.fixed_tile > 0) {
    // Ablation: static padding with a fixed truncation point.  The three
    // dimensions must then share a depth naturally, which holds for the
    // square problems this mode is meant for; otherwise we fall back to the
    // largest common depth.
    layout::GemmPlan plan;
    plan.m = layout::fixed_tile_dim(m, opt.fixed_tile);
    plan.k = layout::fixed_tile_dim(k, opt.fixed_tile);
    plan.n = layout::fixed_tile_dim(n, opt.fixed_tile);
    plan.depth =
        std::max({plan.m.depth, plan.k.depth, plan.n.depth});
    // Re-derive padded sizes at the common depth (tile stays fixed; shallower
    // dimensions get extra padding, exactly the static-padding cost).
    auto lift = [&](layout::DimPlan& d) {
      d.depth = plan.depth;
      d.padded = opt.fixed_tile << plan.depth;
      d.tile = opt.fixed_tile;
    };
    lift(plan.m);
    lift(plan.k);
    lift(plan.n);
    plan.feasible = true;
    plan.direct = plan.depth == 0;
    detail::modgemm_single(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                           C, ldc, plan, report);
    return;
  }

  const layout::GemmPlan plan = layout::plan_gemm(m, k, n, opt.tiles);
  if (plan.direct || plan.feasible) {
    detail::modgemm_single(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                           C, ldc, plan, report);
    return;
  }

  // Highly rectangular: decompose into same-depth sub-products (paper Fig. 4)
  // and reconstruct C[i][j] = sum_r A[i][r] . B[r][j].
  const layout::SplitPlan split = layout::plan_split(m, k, n, opt.tiles);
  if (report) report->split_used = true;
  for (const auto& cm : split.m_chunks) {
    for (const auto& cn : split.n_chunks) {
      bool first = true;
      for (const auto& ck : split.k_chunks) {
        // Locate the stored sub-blocks of op(A) and op(B).
        const T* Ablk =
            opa == Op::NoTrans
                ? A + static_cast<std::size_t>(ck.offset) * lda + cm.offset
                : A + static_cast<std::size_t>(cm.offset) * lda + ck.offset;
        const T* Bblk =
            opb == Op::NoTrans
                ? B + static_cast<std::size_t>(cn.offset) * ldb + ck.offset
                : B + static_cast<std::size_t>(ck.offset) * ldb + cn.offset;
        T* Cblk = C + static_cast<std::size_t>(cn.offset) * ldc + cm.offset;
        const layout::GemmPlan sub =
            layout::plan_gemm(cm.size, ck.size, cn.size, opt.tiles);
        STRASSEN_ASSERT(sub.direct || sub.feasible);
        detail::modgemm_single(mm, opa, opb, cm.size, cn.size, ck.size, alpha,
                               Ablk, lda, Bblk, ldb, first ? beta : T{1}, Cblk,
                               ldc, sub, report);
        first = false;
      }
    }
  }
}

// Production entry points (RawMem).
void modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
             const double* A, int lda, const double* B, int ldb, double beta,
             double* C, int ldc, const ModgemmOptions& opt = {},
             ModgemmReport* report = nullptr);
void modgemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
             int lda, const float* B, int ldb, float beta, float* C, int ldc,
             const ModgemmOptions& opt = {}, ModgemmReport* report = nullptr);

}  // namespace strassen::core
