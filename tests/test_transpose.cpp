// Unit tests for the blocked transpose (src/blas/transpose).
#include <gtest/gtest.h>

#include <tuple>

#include "blas/transpose.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::blas {
namespace {

using Shape = std::tuple<int, int>;
class Transpose : public ::testing::TestWithParam<Shape> {};

TEST_P(Transpose, ProducesExactTranspose) {
  const auto [m, n] = GetParam();
  Rng rng(m * 31 + n);
  Matrix<double> A(m, n), At(n, m);
  rng.fill_uniform(A.storage());
  transpose(m, n, A.data(), A.ld(), At.data(), At.ld());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) EXPECT_EQ(At.at(j, i), A.at(i, j));
}

TEST_P(Transpose, DoubleTransposeIsIdentity) {
  const auto [m, n] = GetParam();
  Rng rng(m * 7 + n);
  Matrix<double> A(m, n), At(n, m), Att(m, n);
  rng.fill_uniform(A.storage());
  transpose(m, n, A.data(), A.ld(), At.data(), At.ld());
  transpose(n, m, At.data(), At.ld(), Att.data(), Att.ld());
  EXPECT_EQ(max_abs_diff<double>(A.view(), Att.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Transpose,
                         ::testing::Values(Shape{1, 1}, Shape{1, 10},
                                           Shape{10, 1}, Shape{32, 32},
                                           Shape{31, 33}, Shape{100, 64},
                                           Shape{65, 129}));

TEST(TransposeStrided, RespectsLeadingDimensions) {
  const int m = 20, n = 12;
  Rng rng(9);
  Matrix<double> A(m, n, m + 7), At(n, m, n + 3);
  rng.fill_uniform(A.storage());
  transpose(m, n, A.data(), A.ld(), At.data(), At.ld());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) EXPECT_EQ(At.at(j, i), A.at(i, j));
}

}  // namespace
}  // namespace strassen::blas
