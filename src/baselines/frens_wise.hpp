// frens_wise.hpp -- recursive O(n^3) multiplication over Morton storage.
//
// Frens & Wise (PPoPP'97, the paper's S5.2) multiply matrices by recursive
// quadrant decomposition over a quadtree layout, carrying the recursion
// (nearly) to the element level so blocking "falls out" of the recursion --
// the cache-oblivious approach.  The SC'98 paper contrasts its own design
// choice directly: "We do not carry the recursion to the level of single
// matrix elements as they do, but truncate the recursion when we reach tile
// sizes that fit in the upper levels of the memory hierarchy."
//
// This baseline makes that contrast measurable: the standard eight
// sub-products
//
//     C11 += A11.B11; C11 += A12.B21;   C12 += A11.B12; C12 += A12.B22;
//     C21 += A21.B11; C21 += A22.B21;   C22 += A21.B12; C22 += A22.B22;
//
// recurse over contiguous Morton quadrants down to a SMALL leaf (default 8,
// near-element-level; configurable), with no Strassen arithmetic savings and
// no temporaries at all.  The recursion order pairs products sharing an
// operand quadrant back-to-back for reuse, following Frens & Wise's
// sequencing observation.
#pragma once

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/level1.hpp"
#include "common/aligned_buffer.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "layout/convert.hpp"
#include "layout/plan.hpp"

namespace strassen::baselines {

struct FrensWiseOptions {
  // Leaf side length at which the recursion bottoms out.  Frens & Wise went
  // to single elements; a small power of two keeps the call overhead sane
  // while preserving the cache-oblivious character.
  int leaf = 8;
};

namespace detail {

// C += A.B over Morton blocks with square t x t leaf tiles and `depth`
// quadtree levels (dimensions tile<<depth on a side).
template <class MM, class T>
void fw_recurse(MM& mm, T* C, const T* A, const T* B, int tile, int depth) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tile, tile, tile, A, tile, B, tile, C, tile,
                    blas::LeafMode::Accumulate);
    return;
  }
  const std::size_t q = static_cast<std::size_t>(tile) * tile
                        << (2 * static_cast<std::size_t>(depth - 1));
  const T* A11 = A;
  const T* A12 = A + q;
  const T* A21 = A + 2 * q;
  const T* A22 = A + 3 * q;
  const T* B11 = B;
  const T* B12 = B + q;
  const T* B21 = B + 2 * q;
  const T* B22 = B + 3 * q;
  T* C11 = C;
  T* C12 = C + q;
  T* C21 = C + 2 * q;
  T* C22 = C + 3 * q;
  const int d1 = depth - 1;
  // Sequencing per Frens & Wise: consecutive calls share an operand block.
  fw_recurse(mm, C11, A11, B11, tile, d1);
  fw_recurse(mm, C12, A11, B12, tile, d1);
  fw_recurse(mm, C22, A21, B12, tile, d1);
  fw_recurse(mm, C21, A21, B11, tile, d1);
  fw_recurse(mm, C21, A22, B21, tile, d1);
  fw_recurse(mm, C22, A22, B22, tile, d1);
  fw_recurse(mm, C12, A12, B22, tile, d1);
  fw_recurse(mm, C11, A12, B21, tile, d1);
}

}  // namespace detail

// C <- alpha * op(A).op(B) + beta * C through the Morton pipeline with the
// recursive conventional core.  Single-depth square plans only (the
// baseline exists for the square benchmark comparison).
template <class MM, class T>
void frens_wise_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                   const T* A, int lda, const T* B, int ldb, T beta, T* C,
                   int ldc, const FrensWiseOptions& opt = {}) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  STRASSEN_REQUIRE(opt.leaf >= 1, "bad leaf size");
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  // Pad the common square envelope to leaf << depth.
  const int big = std::max(m, std::max(n, k));
  int depth = 0;
  long long padded = opt.leaf;
  while (padded < big) {
    padded *= 2;
    ++depth;
  }
  const layout::MortonLayout la{m, k, opt.leaf, opt.leaf, depth};
  const layout::MortonLayout lb{k, n, opt.leaf, opt.leaf, depth};
  const layout::MortonLayout lc{m, n, opt.leaf, opt.leaf, depth};
  AlignedBuffer abuf(static_cast<std::size_t>(la.elems()) * sizeof(T));
  AlignedBuffer bbuf(static_cast<std::size_t>(lb.elems()) * sizeof(T));
  AlignedBuffer cbuf(static_cast<std::size_t>(lc.elems()) * sizeof(T));
  T* Am = abuf.as<T>();
  T* Bm = bbuf.as<T>();
  T* Cm = cbuf.as<T>();
  layout::to_morton(mm, la, Am, opa, A, lda);
  layout::to_morton(mm, lb, Bm, opb, B, ldb);
  blas::vzero(mm, static_cast<std::size_t>(lc.elems()), Cm);
  detail::fw_recurse(mm, Cm, Am, Bm, opt.leaf, depth);
  layout::from_morton(mm, lc, Cm, alpha, C, ldc, beta);
}

// Production entry point.
void frens_wise_gemm(Op opa, Op opb, int m, int n, int k, double alpha,
                     const double* A, int lda, const double* B, int ldb,
                     double beta, double* C, int ldc,
                     const FrensWiseOptions& opt = {});

}  // namespace strassen::baselines
