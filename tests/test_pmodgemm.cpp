// Tests for the task-parallel MODGEMM (src/parallel/pmodgemm).
//
// The central property: pmodgemm performs the SAME floating-point operations
// as the serial core::modgemm (the spawn-level combination is commutatively
// identical and the sub-recursions are the serial code), so results must be
// BIT-IDENTICAL for every thread count and spawn depth -- on real data, not
// just integers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <tuple>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "obs/report.hpp"
#include "parallel/pmodgemm.hpp"

namespace strassen::parallel {
namespace {

using Param = std::tuple<int, int, int>;  // n, threads, spawn_levels
class Pmodgemm : public ::testing::TestWithParam<Param> {};

TEST_P(Pmodgemm, BitIdenticalToSerial) {
  const auto [n, threads, spawn] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 + threads);
  Matrix<double> A(n, n), B(n, n), Cs(n, n), Cp(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());

  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, Cs.data(), n);
  ThreadPool pool(threads);
  ParallelOptions opt;
  opt.spawn_levels = spawn;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
           B.data(), n, 0.0, Cp.data(), n, opt);
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndSpawn, Pmodgemm,
    ::testing::Combine(::testing::Values(150, 257, 513),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(kSpawnAuto, 0, 1, 2)));

TEST(PmodgemmDeepSpawn, ForkingEveryLevelStaysBitIdentical) {
  // min_task_flops = 1 forces the auto policy to fork the 7 sub-products at
  // EVERY recursion level -- the deepest possible task tree, maximum
  // steal/continuation traffic -- and the result must still be bit-identical.
  const int n = 320;
  Rng rng(7);
  Matrix<double> A(n, n), B(n, n), Cs(n, n), Cp(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, Cs.data(), n);
  ThreadPool pool(4);
  ParallelOptions opt;
  opt.min_task_flops = 1;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
           B.data(), n, 0.0, Cp.data(), n, opt);
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmDeepSpawn, RejectsInvalidPolicyValues) {
  ThreadPool pool(2);
  Matrix<double> A(64, 64), B(64, 64), C(64, 64);
  ParallelOptions opt;
  opt.spawn_levels = -2;  // only kSpawnAuto (-1) and N >= 0 are meaningful
  EXPECT_THROW(pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 64, 64, 64, 1.0,
                        A.data(), 64, B.data(), 64, 0.0, C.data(), 64, opt),
               std::invalid_argument);
  opt.spawn_levels = kSpawnAuto;
  opt.min_task_flops = 0;
  EXPECT_THROW(pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 64, 64, 64, 1.0,
                        A.data(), 64, B.data(), 64, 0.0, C.data(), 64, opt),
               std::invalid_argument);
}

TEST(PmodgemmSemantics, NullPoolMatchesSerial) {
  const int n = 300;
  Rng rng(1);
  Matrix<double> A(n, n), B(n, n), Cs(n, n), Cp(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, Cs.data(), n);
  pmodgemm(nullptr, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
           B.data(), n, 0.0, Cp.data(), n);
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmSemantics, FullDgemmInterface) {
  // op(), alpha/beta, strided C -- all must match the serial driver exactly.
  const int m = 143, n = 157, k = 131;
  Rng rng(2);
  Matrix<double> A(k, m), B(k, n), Cs(m, n, m + 5), Cp(m, n, m + 5);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  Matrix<double> C0(m, n, m + 5);
  rng.fill_uniform(C0.storage());
  copy_matrix<double>(C0.view(), Cs.view());
  copy_matrix<double>(C0.view(), Cp.view());

  core::modgemm(Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
                B.data(), B.ld(), -1.0, Cs.data(), Cs.ld());
  ThreadPool pool(3);
  pmodgemm(&pool, Op::Trans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
           B.data(), B.ld(), -1.0, Cp.data(), Cp.ld());
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmSemantics, SplitShapesFallBackCorrectly) {
  // Highly rectangular: the split decomposition, with each C-block running
  // as its own pool task (the k-chain within a block stays sequential).
  const int m = 2100, k = 100, n = 100;
  Rng rng(3);
  Matrix<double> A(m, k), B(k, n), Cs(m, n), Cp(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m, B.data(),
                k, 0.0, Cs.data(), m);
  ThreadPool pool(2);
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m,
           B.data(), k, 0.0, Cp.data(), m, {});
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

// The parallel split path must be bit-identical to the serial splitter for
// every orientation of the long dimension, under transposes, with alpha/beta
// accumulation into strided C, across pool widths.
using SplitParam = std::tuple<std::tuple<int, int, int>, int>;  // (m,n,k), thr
class PmodgemmSplitPath : public ::testing::TestWithParam<SplitParam> {};

TEST_P(PmodgemmSplitPath, BitIdenticalToSerialSplitter) {
  const auto [shape, threads] = GetParam();
  const auto [m, n, k] = shape;
  Rng rng(static_cast<std::uint64_t>(m) * 7 + n * 3 + k + threads);
  // op(A) is m x k with A stored transposed (k x m); op(B) is k x n with B
  // stored transposed (n x k) -- exercises the block pointer arithmetic for
  // both transpose flags at once.
  Matrix<double> A(k, m), B(n, k);
  Matrix<double> Cs(m, n, m + 3), Cp(m, n, m + 3), C0(m, n, m + 3);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  rng.fill_uniform(C0.storage());
  copy_matrix<double>(C0.view(), Cs.view());
  copy_matrix<double>(C0.view(), Cp.view());

  // Pinned to <2,2,2> on both sides: this test is about the split path, and
  // a forced-STRASSEN_ALGO run would otherwise route these long shapes
  // through one family level instead (pin > env > heuristic).
  core::ModgemmOptions sopt;
  sopt.algo = analysis::AlgoFamily::k222;
  core::modgemm(Op::Trans, Op::Trans, m, n, k, 1.5, A.data(), A.ld(),
                B.data(), B.ld(), -0.5, Cs.data(), Cs.ld(), sopt);
  ThreadPool pool(threads);
  obs::GemmReport report;
  ParallelOptions opt;
  opt.algo = analysis::AlgoFamily::k222;
  opt.report = &report;
  pmodgemm(&pool, Op::Trans, Op::Trans, m, n, k, 1.5, A.data(), A.ld(),
           B.data(), B.ld(), -0.5, Cp.data(), Cp.ld(), opt);
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);

  // The report must show the split path actually ran in the pool.
  EXPECT_TRUE(report.split_used);
  EXPECT_TRUE(report.parallel);
  EXPECT_EQ(report.threads, threads);
  EXPECT_GT(report.products, 1);
  EXPECT_GE(report.tasks_executed, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    LongDimensions, PmodgemmSplitPath,
    ::testing::Combine(::testing::Values(std::tuple<int, int, int>{2100, 100,
                                                                   100},
                                         std::tuple<int, int, int>{100, 2100,
                                                                   100},
                                         std::tuple<int, int, int>{100, 100,
                                                                   2100}),
                       ::testing::Values(2, 4)));

// Deterministic mid-submission failure: the pool's submit gate (the OOM
// point where building a task object throws) denies every third submission.
// TaskGroup::run must roll its pending count back on the failed submission
// so the drivers' bad_alloc catches reach their serial fallbacks instead of
// deadlocking in join() -- and the fallback output must stay bit-identical.
struct ScopedFlakySubmits {
  ScopedFlakySubmits() { ThreadPool::set_submit_gate(&gate, &count); }
  ~ScopedFlakySubmits() { ThreadPool::set_submit_gate(nullptr, nullptr); }
  static bool gate(void* user) {
    auto* n = static_cast<std::atomic<std::uint64_t>*>(user);
    return n->fetch_add(1, std::memory_order_relaxed) % 3 != 2;
  }
  std::atomic<std::uint64_t> count{0};
};

TEST(PmodgemmDegradation, SquarePathSurvivesSubmissionFailures) {
  const int n = 320;
  Rng rng(11);
  Matrix<double> A(n, n), B(n, n), Cs(n, n), Cp(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, Cs.data(), n);
  ThreadPool pool(4);
  ParallelOptions opt;
  opt.min_task_flops = 1;  // deepest spawn tree: maximum submissions to fail
  ScopedFlakySubmits flaky;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
           B.data(), n, 0.0, Cp.data(), n, opt);
  EXPECT_GE(flaky.count.load(), 3u);  // the gate actually denied something
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmDegradation, SplitPathFinishesBlocksAfterSubmissionFailure) {
  const int m = 2100, k = 100, n = 100;
  Rng rng(13);
  Matrix<double> A(m, k), B(k, n), Cs(m, n), Cp(m, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m, B.data(),
                k, 0.0, Cs.data(), m);
  ThreadPool pool(2);
  ScopedFlakySubmits flaky;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m,
           B.data(), k, 0.0, Cp.data(), m, {});
  EXPECT_GE(flaky.count.load(), 3u);
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmDegradation, ConvertOutSubmissionFailureKeepsBetaExact) {
  // The convert-out phase applies beta to C exactly once per tile.  A
  // submission failure there must NOT hand the multiply to the from-scratch
  // serial rerun (tiles already converted would get beta applied twice);
  // the driver finishes the missing chunks inline instead.  Submission
  // counts are schedule-independent, so a counting dry run tells us the
  // total, and denying the LAST submission deterministically lands the
  // failure inside convert-out -- after earlier chunks were accepted.
  struct CountingGate {
    std::atomic<std::uint64_t> count{0};
    std::uint64_t deny_from = ~std::uint64_t{0};
    static bool allow(void* user) {
      auto* g = static_cast<CountingGate*>(user);
      return g->count.fetch_add(1, std::memory_order_relaxed) < g->deny_from;
    }
  };
  const int n = 320;
  Rng rng(17);
  Matrix<double> A(n, n), B(n, n), C0(n, n), Cs(n, n), Cp(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  rng.fill_uniform(C0.storage());
  copy_matrix<double>(C0.view(), Cs.view());
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.5, Cs.data(), n);

  ThreadPool pool(4);
  ParallelOptions opt;
  opt.spawn_levels = 0;  // every submission is a conversion chunk
  CountingGate dry;
  ThreadPool::set_submit_gate(&CountingGate::allow, &dry);
  copy_matrix<double>(C0.view(), Cp.view());
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
           B.data(), n, 0.5, Cp.data(), n, opt);
  ThreadPool::set_submit_gate(nullptr, nullptr);
  ASSERT_GE(dry.count.load(), 1u);

  CountingGate deny;
  deny.deny_from = dry.count.load() - 1;  // the last convert-out submission
  ThreadPool::set_submit_gate(&CountingGate::allow, &deny);
  copy_matrix<double>(C0.view(), Cp.view());
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
           B.data(), n, 0.5, Cp.data(), n, opt);
  ThreadPool::set_submit_gate(nullptr, nullptr);
  EXPECT_GT(deny.count.load(), deny.deny_from);  // the denial really fired
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmSemantics, DegenerateDimensions) {
  ThreadPool pool(2);
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  for (auto& x : C.storage()) x = 4.0;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 8, 8, 0, 1.0, A.data(), 8,
           B.data(), 8, 0.5, C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.0);
}

TEST(PmodgemmSemantics, RejectsBadArgumentsLikeSerial) {
  // The parallel driver validates with the same checks (and messages) as the
  // serial entry point -- before any buffer is allocated or task spawned.
  ThreadPool pool(2);
  Matrix<double> A(100, 100), B(100, 100), C(100, 100);
  EXPECT_THROW(pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 100, 100, 100, 1.0,
                        A.data(), 50, B.data(), 100, 0.0, C.data(), 100),
               std::invalid_argument);
  EXPECT_THROW(pmodgemm(&pool, Op::Trans, Op::NoTrans, 100, 100, 120, 1.0,
                        A.data(), 100, B.data(), 120, 0.0, C.data(), 100),
               std::invalid_argument);
  EXPECT_THROW(pmodgemm(&pool, Op::NoTrans, Op::NoTrans, -1, 100, 100, 1.0,
                        A.data(), 100, B.data(), 100, 0.0, C.data(), 100),
               std::invalid_argument);
  EXPECT_THROW(pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 100, 100, 100, 1.0,
                        A.data(), 100, B.data(), 100, 0.0, C.data(), 10),
               std::invalid_argument);
}

TEST(PmodgemmSemantics, AlphaZeroDoesNotReadNaNOperands) {
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const int n = 150;
  ThreadPool pool(3);
  Matrix<double> A(n, n), B(n, n), C(n, n);
  for (auto& x : A.storage()) x = qnan;
  for (auto& x : B.storage()) x = qnan;
  for (auto& x : C.storage()) x = 2.0;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 0.0, A.data(), n,
           B.data(), n, 0.5, C.data(), n);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 1.0);
}

TEST(PmodgemmSemantics, EmptyDimensionsLeaveCUntouched) {
  ThreadPool pool(2);
  Matrix<double> A(8, 8), B(8, 8), C(5, 8);
  for (auto& x : C.storage()) x = 6.0;
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 0, 8, 8, 1.0, A.data(), 8,
           B.data(), 8, 0.0, C.data(), 5);
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, 5, 0, 8, 1.0, A.data(), 8,
           B.data(), 8, 0.0, C.data(), 5);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 6.0);
}

TEST(PmodgemmSemantics, OversizedLeadingDimsMatchSerial) {
  const int m = 150, n = 140, k = 160, slack = 300;
  Rng rng(5);
  Matrix<double> A(m, k, m + slack), B(k, n, k + slack);
  Matrix<double> Cs(m, n, m + slack), Cp(m, n, m + slack);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, Cs.data(), Cs.ld());
  ThreadPool pool(4);
  pmodgemm(&pool, Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
           B.data(), B.ld(), 0.0, Cp.data(), Cp.ld());
  EXPECT_EQ(max_abs_diff<double>(Cs.view(), Cp.view()), 0.0);
}

TEST(PmodgemmWorkspace, SpawnLevelsGrowTheFootprint) {
  const std::size_t serial = pmodgemm_workspace_bytes(32, 32, 32, 4, 0, 8);
  const std::size_t one = pmodgemm_workspace_bytes(32, 32, 32, 4, 1, 8);
  const std::size_t two = pmodgemm_workspace_bytes(32, 32, 32, 4, 2, 8);
  EXPECT_LT(serial, one);
  EXPECT_LT(one, two);
}

TEST(PmodgemmRepeatability, SameResultAcrossRuns) {
  // Scheduling nondeterminism must not leak into results.
  const int n = 260;
  Rng rng(4);
  Matrix<double> A(n, n), B(n, n), C1(n, n), C2(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  ThreadPool pool(4);
  ParallelOptions opt;
  opt.spawn_levels = 2;
  for (Matrix<double>* out : {&C1, &C2}) {
    pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
             B.data(), n, 0.0, out->data(), n, opt);
  }
  EXPECT_EQ(max_abs_diff<double>(C1.view(), C2.view()), 0.0);
}

}  // namespace
}  // namespace strassen::parallel
