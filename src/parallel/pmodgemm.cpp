#include "parallel/pmodgemm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "blas/level1.hpp"
#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "layout/convert.hpp"
#include "layout/split.hpp"
#include "obs/scope.hpp"
#include "parallel/arena_pool.hpp"

namespace strassen::parallel {

namespace {

std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }

// One spawn level's temporaries: S1..S4 over A-quadrants, T1..T4 over
// B-quadrants, P1..P7 over C-quadrants.
std::size_t spawn_level_bytes(std::size_t qa, std::size_t qb, std::size_t qc,
                              std::size_t elem) {
  return 4 * round_up64(qa * elem) + 4 * round_up64(qb * elem) +
         7 * round_up64(qc * elem);
}

// Where the recursion stops forking.  Legacy mode (explicit spawn_levels
// >= 0) counts levels down; auto mode forks as long as the CHILD sub-product
// is at least min_task_flops of padded volume, so task granularity -- not a
// fixed level count -- decides, and big multiplies fan out deep while small
// ones stay serial.
struct SpawnPolicy {
  bool auto_mode = true;
  std::int64_t min_task_flops = 0;
};

bool should_fork(const SpawnPolicy& policy, int spawn, int tm, int tk, int tn,
                 int depth) {
  if (depth == 0) return false;
  if (!policy.auto_mode) return spawn > 0;
  // Padded volume of one child: (tm*tk*tn) << 3*(depth-1).  Computed in
  // double to sidestep overflow for deep plans.
  const double child_volume =
      std::ldexp(static_cast<double>(tm) * tk * tn, 3 * (depth - 1));
  return child_volume >= static_cast<double>(policy.min_task_flops);
}

// Spawn depth the policy resolves to for this plan (what lands in
// GemmReport::spawn_levels; for legacy mode = min(explicit, depth)).
int effective_spawn_levels(const SpawnPolicy& policy, int explicit_levels,
                           int tm, int tk, int tn, int depth) {
  int levels = 0;
  int spawn = policy.auto_mode ? 0 : explicit_levels;
  for (int d = depth; d > 0; --d) {
    if (!should_fork(policy, spawn, tm, tk, tn, d)) break;
    ++levels;
    if (!policy.auto_mode) --spawn;
  }
  return levels;
}

// The parallel recursion.  Below the spawn cutoff this is exactly
// core::winograd_recurse, so results are bit-identical to the serial code
// (when `family` is the default; the low-memory families trade that identity
// for a smaller per-task arena within the numeric bounds).
void recurse(ThreadPool* pool, const SpawnPolicy& policy, int spawn, double* C,
             const double* A, const double* B, int tm, int tk, int tn,
             int depth, analysis::ScheduleFamily family) {
  if (!should_fork(policy, spawn, tm, tk, tn, depth)) {
    ScratchArena scratch(core::winograd_workspace_bytes(
        tm, tk, tn, depth, sizeof(double), family));
    RawMem mm;
    core::winograd_recurse(mm, C, A, B, tm, tk, tn, depth, scratch.arena(),
                           family);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  const double* A11 = A;
  const double* A12 = A + qa;
  const double* A21 = A + 2 * qa;
  const double* A22 = A + 3 * qa;
  const double* B11 = B;
  const double* B12 = B + qb;
  const double* B21 = B + 2 * qb;
  const double* B22 = B + 3 * qb;
  double* C11 = C;
  double* C12 = C + qc;
  double* C21 = C + 2 * qc;
  double* C22 = C + 3 * qc;

  // The level's 15 temporaries come from the per-thread arena cache.  Each
  // ScratchArena is an independent buffer, so a task that help-runs other
  // tasks while blocked in wait() below never interleaves frames with them.
  ScratchArena scratch(spawn_level_bytes(qa, qb, qc, sizeof(double)));
  Arena& level = scratch.arena();
  double* S1 = level.push<double>(qa);
  double* S2 = level.push<double>(qa);
  double* S3 = level.push<double>(qa);
  double* S4 = level.push<double>(qa);
  double* T1 = level.push<double>(qb);
  double* T2 = level.push<double>(qb);
  double* T3 = level.push<double>(qb);
  double* T4 = level.push<double>(qb);  // holds T2 - B21 (= -T4 of the paper)
  double* M1 = level.push<double>(qc);
  double* M2 = level.push<double>(qc);
  double* M3 = level.push<double>(qc);
  double* M4 = level.push<double>(qc);
  double* M5 = level.push<double>(qc);
  double* M6 = level.push<double>(qc);
  double* M7 = level.push<double>(qc);
  // Same alignment contract as the serial driver: spawn-level temporaries
  // feed the SIMD element-wise kernels and the leaf gemm below, which assume
  // cache-line-aligned quadrant storage.
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(S1) %
                      Arena::kChunkAlignment == 0);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(T1) %
                      Arena::kChunkAlignment == 0);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(M1) %
                      Arena::kChunkAlignment == 0);

  RawMem mm;
  // Operand sums (same expressions as the serial schedule).
  blas::vadd(mm, qa, S1, A21, A22);
  blas::vsub(mm, qa, S2, S1, A11);
  blas::vsub(mm, qa, S3, A11, A21);
  blas::vsub(mm, qa, S4, A12, S2);
  blas::vsub(mm, qb, T1, B12, B11);
  blas::vsub(mm, qb, T2, B22, T1);
  blas::vsub(mm, qb, T3, B22, B12);
  blas::vsub(mm, qb, T4, T2, B21);

  // The seven independent products, forked.  When this runs on a pool
  // worker, the children land on ITS deque bottom (depth-first, cache-hot)
  // and idle workers steal whole subtrees from the top; the U-chain below is
  // the continuation this task runs once the join counter drains.
  {
    TaskGroup group(pool);
    const int child_spawn = policy.auto_mode ? 0 : spawn - 1;
    auto fork = [&](double* dst, const double* a, const double* b) {
      group.run([=, &policy] {
        recurse(pool, policy, child_spawn, dst, a, b, tm, tk, tn, d1, family);
      });
    };
    fork(M1, A11, B11);
    fork(M2, A12, B21);
    fork(M3, S4, B22);
    fork(M4, A22, T4);  // A22 . (T2 - B21)
    fork(M5, S1, T1);
    fork(M6, S2, T2);
    fork(M7, S3, T3);
    group.wait();
  }

  // U-chain combination (commutatively identical to the serial in-place
  // order, so results match bit for bit).
  blas::vadd(mm, qc, C11, M1, M2);           // C11 = M1 + M2
  blas::vadd_inplace(mm, qc, M1, M6);        // M1 := U2 = M1 + M6
  blas::vadd_inplace(mm, qc, M7, M1);        // M7 := U3 = U2 + M7
  blas::vsub(mm, qc, C21, M7, M4);           // C21 = U3 - M4
  blas::vadd(mm, qc, C22, M7, M5);           // C22 = U3 + M5
  blas::vadd_inplace(mm, qc, M1, M5);        // M1 := U4 = U2 + M5
  blas::vadd(mm, qc, C12, M1, M3);           // C12 = U4 + M3
}

// Accumulates one split sub-task's local report into the call report after
// the join.  Kernel counters and task stats flow through the shared
// collector and are NOT in the locals; everything the serial driver writes
// into the report directly is.
void merge_sub_report(obs::GemmReport* rep, const obs::GemmReport& sub) {
  if (rep == nullptr) return;
  rep->convert_in_seconds += sub.convert_in_seconds;
  rep->compute_seconds += sub.compute_seconds;
  rep->convert_out_seconds += sub.convert_out_seconds;
  rep->products += sub.products;
  rep->workspace_requested_bytes += sub.workspace_requested_bytes;
  rep->workspace_allocations += sub.workspace_allocations;
  rep->workspace_peak_bytes =
      std::max(rep->workspace_peak_bytes, sub.workspace_peak_bytes);
  rep->workspace_saved_bytes += sub.workspace_saved_bytes;
  if (sub.schedule[0] != '\0') rep->schedule = sub.schedule;
  core::detail::record_fallback(rep, sub.fallback_reason);
  // Like the serial splitter, the call-level plan reflects the last
  // sub-product executed.
  rep->plan = sub.plan;
}

// The split decomposition (paper Fig. 4), parallel over C-blocks: each
// (m_chunk x n_chunk) block of C is one pool task running its k-chain of
// sub-products SEQUENTIALLY in chunk order with the serial driver --
// first ? beta : 1 accumulation exactly like core::modgemm_mm.  Blocks write
// disjoint parts of C and the within-block order is unchanged, so the result
// is bit-identical to the serial splitter.  Each task degrades independently
// through the serial ladder (bad_alloc never escapes a task); if task SETUP
// fails mid-submission, the blocks that never completed are finished
// serially on the caller.
void split_parallel(ThreadPool* pool, Op opa, Op opb, int m, int n, int k,
                    double alpha, const double* A, int lda, const double* B,
                    int ldb, double beta, double* C, int ldc,
                    const ParallelOptions& opt, obs::GemmReport* rep) {
  const layout::SplitPlan split = layout::plan_split(m, k, n, opt.tiles);
  if (rep) {
    rep->split_used = true;
    rep->parallel = true;
    rep->threads = pool != nullptr ? pool->thread_count() : 0;
  }
  const std::size_t blocks = split.m_chunks.size() * split.n_chunks.size();
  // Everything a task touches is allocated before the first submission:
  // local reports (merged after the join -- GemmReport is not thread-safe)
  // and per-block completion flags for the setup-failure path.
  std::vector<obs::GemmReport> locals(rep != nullptr ? blocks : 0);
  const std::unique_ptr<std::atomic<bool>[]> done(
      new std::atomic<bool>[blocks]());

  core::ModgemmOptions serial;
  serial.tiles = opt.tiles;
  serial.schedule = opt.schedule;
  // The family decision was made (or declined) at this call's top level;
  // serial sub-products stay on the plain <2,2,2> driver.
  serial.algo = analysis::AlgoFamily::k222;
  const auto run_block = [&](std::size_t index, const layout::Chunk& cm,
                             const layout::Chunk& cn) {
    obs::GemmReport* local = locals.empty() ? nullptr : &locals[index];
    bool first = true;
    for (const layout::Chunk& ck : split.k_chunks) {
      const double* Ablk =
          opa == Op::NoTrans
              ? A + static_cast<std::size_t>(ck.offset) * lda + cm.offset
              : A + static_cast<std::size_t>(cm.offset) * lda + ck.offset;
      const double* Bblk =
          opb == Op::NoTrans
              ? B + static_cast<std::size_t>(cn.offset) * ldb + ck.offset
              : B + static_cast<std::size_t>(ck.offset) * ldb + cn.offset;
      double* Cblk = C + static_cast<std::size_t>(cn.offset) * ldc + cm.offset;
      // The serial entry point: plans the chunk (feasible or direct by
      // plan_split's guarantee), runs its full degradation ladder, and --
      // executing under this call's collector, installed by the pool --
      // nests its CallScope so kernel counters flow to this call while the
      // phase/workspace numbers land in `local`.
      core::modgemm(opa, opb, cm.size, cn.size, ck.size, alpha, Ablk, lda,
                    Bblk, ldb, first ? beta : 1.0, Cblk, ldc, serial, local);
      first = false;
    }
    done[index].store(true, std::memory_order_release);
  };

  try {
    TaskGroup group(pool);
    std::size_t index = 0;
    for (const layout::Chunk& cm : split.m_chunks)
      for (const layout::Chunk& cn : split.n_chunks) {
        const std::size_t i = index++;
        group.run([&run_block, &cm, &cn, i] { run_block(i, cm, cn); });
      }
    group.wait();
  } catch (const std::bad_alloc&) {
    // Task-setup allocation failed part way (the tasks themselves absorb
    // bad_alloc in the serial ladder and complete their block).  ~TaskGroup
    // already joined everything in flight; finish the untouched blocks on
    // this thread.
    core::detail::record_fallback(rep, core::FallbackReason::kAllocDirect);
    purge_thread_arena_cache();
    std::size_t index = 0;
    for (const layout::Chunk& cm : split.m_chunks)
      for (const layout::Chunk& cn : split.n_chunks) {
        const std::size_t i = index++;
        if (!done[i].load(std::memory_order_acquire)) run_block(i, cm, cn);
      }
  }
  for (const obs::GemmReport& local : locals) merge_sub_report(rep, local);
}

// One level of a non-<2,2,2> coefficient table (core/family.hpp) on the
// parallel driver: the O(n^2) staging/scatter traffic runs serially on the
// caller, and each of the rank block products is a full parallel product
// over the pool (the whole pool works one product at a time -- products are
// big by construction, so the fan-out inside each one saturates the
// workers).  Sub-products pin <2,2,2>.  Returns false -- with C untouched
// and kAlgoFallback recorded -- when the staging allocation fails.
bool family_parallel(ThreadPool* pool, Op opa, Op opb, int m, int n, int k,
                     double alpha, const double* A, int lda, const double* B,
                     int ldb, double beta, double* C, int ldc,
                     analysis::AlgoFamily algo,
                     analysis::ScheduleFamily family,
                     const ParallelOptions& opt, obs::GemmReport* rep) {
  const analysis::FamilyTable& t = analysis::family_table(algo);
  const std::size_t staging =
      core::family_workspace_bytes(t, m, k, n, sizeof(double));
  ParallelOptions sub_opt = opt;
  sub_opt.algo = analysis::AlgoFamily::k222;  // one level only
  sub_opt.report = nullptr;
  try {
    Arena arena(staging);
    RawMem mm;
    core::detail::modgemm_family_arena(
        mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, t, arena,
        [&](int m2, int n2, int k2, const double* A2, int lda2,
            const double* B2, int ldb2, double* C2, int ldc2) {
          pmodgemm(pool, Op::NoTrans, Op::NoTrans, m2, n2, k2, 1.0, A2, lda2,
                   B2, ldb2, 0.0, C2, ldc2, sub_opt);
        },
        rep);
    if (rep) {
      rep->parallel = true;
      rep->threads = pool != nullptr ? pool->thread_count() : 0;
      rep->workspace_requested_bytes += staging;
      ++rep->workspace_allocations;
      const int pm = core::family_partition(m, t.bm);
      const int pk = core::family_partition(k, t.bk);
      const int pn = core::family_partition(n, t.bn);
      layout::GemmPlan fam;
      fam.feasible = true;
      fam.depth = 1;
      fam.algo = algo;
      fam.schedule = family;
      fam.m = layout::DimPlan{m, pm, 1, pm * t.bm};
      fam.k = layout::DimPlan{k, pk, 1, pk * t.bk};
      fam.n = layout::DimPlan{n, pn, 1, pn * t.bn};
      rep->plan = fam;
      rep->planned_depth = 1;
      rep->schedule = analysis::family_name(family);
      rep->algo = analysis::algo_name(algo);
    }
    return true;
  } catch (const std::bad_alloc&) {
    // The staging arena is pushed before any arithmetic and C is written
    // only by the final merge, so C is untouched; the plain path takes over.
    core::detail::record_fallback(rep, core::FallbackReason::kAlgoFallback);
    return false;
  }
}

}  // namespace

std::size_t pmodgemm_workspace_bytes(int tm, int tk, int tn, int depth,
                                     int spawn_levels,
                                     std::size_t elem_size) {
  return pmodgemm_workspace_bytes(tm, tk, tn, depth, spawn_levels, elem_size,
                                  analysis::ScheduleFamily::kWinograd);
}

std::size_t pmodgemm_workspace_bytes(int tm, int tk, int tn, int depth,
                                     int spawn_levels, std::size_t elem_size,
                                     analysis::ScheduleFamily family) {
  STRASSEN_REQUIRE(tm >= 1 && tk >= 1 && tn >= 1 && depth >= 0 &&
                       spawn_levels >= 0,
                   "bad workspace request");
  // The driver runs kInPlace subtrees as kLowMem (no owned operand copies to
  // overwrite below a spawn level); size what actually executes.
  if (family == analysis::ScheduleFamily::kInPlace)
    family = analysis::ScheduleFamily::kLowMem;
  if (spawn_levels == 0 || depth == 0)
    return core::winograd_workspace_bytes(tm, tk, tn, depth, elem_size,
                                          family);
  const std::size_t scale = std::size_t{1} << (2 * (depth - 1));
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;
  // All 7 child arenas can be live at once.  A spawn level's own 15
  // temporaries are family-independent.
  return spawn_level_bytes(qa, qb, qc, elem_size) +
         7 * pmodgemm_workspace_bytes(tm, tk, tn, depth - 1, spawn_levels - 1,
                                      elem_size, family);
}

void pmodgemm(ThreadPool* pool, Op opa, Op opb, int m, int n, int k,
              double alpha, const double* A, int lda, const double* B, int ldb,
              double beta, double* C, int ldc, const ParallelOptions& opt) {
  // Reject bad inputs identically to the serial entry point.
  core::require_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  blas::kernels::require_valid_kernel_env();
  STRASSEN_REQUIRE(opt.spawn_levels >= kSpawnAuto,
                   "bad spawn_levels: " << opt.spawn_levels);
  STRASSEN_REQUIRE(opt.min_task_flops >= 1,
                   "min_task_flops must be positive: " << opt.min_task_flops);
  obs::CallScope scope("pmodgemm", opt.report);
  obs::GemmReport* rep = scope.report();
  obs::WallStamp wall(rep);
  if (rep) {
    rep->m = m;
    rep->n = n;
    rep->k = k;
    rep->kernel =
        blas::kernels::kind_name(blas::kernels::active_kernel());
    rep->kernel_variant =
        blas::kernels::variant_name(blas::kernels::avx2_variant());
  }
  if (m == 0 || n == 0) return;
  if (alpha == 0.0 || k == 0) {
    RawMem mm;
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  // Resolve the schedule family once per call (pin, then STRASSEN_SCHEDULE).
  // The parallel recursion never owns throwaway operand copies below a spawn
  // level, so the in-place family degenerates to the low-mem one here.
  analysis::ScheduleFamily family =
      opt.schedule != analysis::ScheduleFamily::kAuto
          ? opt.schedule
          : core::detail::env_schedule_family();
  if (family == analysis::ScheduleFamily::kAuto)
    family = analysis::ScheduleFamily::kWinograd;
  if (family == analysis::ScheduleFamily::kInPlace)
    family = analysis::ScheduleFamily::kLowMem;
  // Resolve the <m,k,n> algorithm family (pin, then STRASSEN_ALGO, then the
  // planner heuristic -- same layering as the serial driver).  A non-<2,2,2>
  // family runs one table level with each block product as a full parallel
  // product; if it cannot run, the plain path below takes over.
  analysis::AlgoFamily algo =
      opt.algo != analysis::AlgoFamily::kAuto ? opt.algo
                                              : core::detail::env_algo_family();
  if (algo == analysis::AlgoFamily::kAuto)
    algo = layout::choose_algo(m, k, n, opt.tiles);
  if (algo != analysis::AlgoFamily::k222) {
    // Same shape gate as the serial driver: sub-products at or below the
    // direct threshold would all run conventional, so a family level only
    // multiplies staging traffic by its rank.
    const analysis::FamilyTable& t = analysis::family_table(algo);
    if (std::min({core::family_partition(m, t.bm),
                  core::family_partition(k, t.bk),
                  core::family_partition(n, t.bn)}) <=
        opt.tiles.direct_threshold) {
      if (rep)
        core::detail::record_fallback(rep,
                                      core::FallbackReason::kAlgoFallback);
      algo = analysis::AlgoFamily::k222;
    }
  }
  if (rep) rep->algo = analysis::algo_name(algo);
  if (algo != analysis::AlgoFamily::k222) {
    if (family_parallel(pool, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta,
                        C, ldc, algo, family, opt, rep))
      return;
    if (rep) rep->algo = analysis::algo_name(analysis::AlgoFamily::k222);
  }
  layout::GemmPlan plan = layout::plan_gemm(m, k, n, opt.tiles);
  plan.schedule = family;
  if (rep) rep->planned_depth = plan.depth;
  if (plan.direct) {
    // Thin shapes: one conventional product; nothing to fan out.  The
    // report (if any) is handed down, so its phases/plan reflect the serial
    // execution while entry stays "pmodgemm".
    core::ModgemmOptions serial;
    serial.tiles = opt.tiles;
    serial.schedule = opt.schedule;
    serial.algo = analysis::AlgoFamily::k222;
    core::modgemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
                  serial, rep);
    return;
  }
  if (!plan.feasible) {
    // Highly rectangular: the split decomposition, C-blocks as pool tasks.
    split_parallel(pool, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                   ldc, opt, rep);
    return;
  }

  const SpawnPolicy policy{opt.spawn_levels == kSpawnAuto,
                           opt.min_task_flops};
  try {
    const layout::MortonLayout la{m, k, plan.m.tile, plan.k.tile, plan.depth};
    const layout::MortonLayout lb{k, n, plan.k.tile, plan.n.tile, plan.depth};
    const layout::MortonLayout lc{m, n, plan.m.tile, plan.n.tile, plan.depth};
    const std::size_t abytes = layout::buffer_bytes(la, sizeof(double));
    const std::size_t bbytes = layout::buffer_bytes(lb, sizeof(double));
    const std::size_t cbytes = layout::buffer_bytes(lc, sizeof(double));
    AlignedBuffer abuf(abytes);
    AlignedBuffer bbuf(bbytes);
    AlignedBuffer cbuf(cbytes);
    double* Am = abuf.as<double>();
    double* Bm = bbuf.as<double>();
    double* Cm = cbuf.as<double>();

    const int spawn =
        policy.auto_mode ? 0 : std::min(opt.spawn_levels, plan.depth);
    if (rep) {
      rep->parallel = true;
      rep->threads = pool != nullptr ? pool->thread_count() : 0;
      rep->spawn_levels = effective_spawn_levels(
          policy, spawn, plan.m.tile, plan.k.tile, plan.n.tile, plan.depth);
      rep->plan = plan;
      rep->schedule = analysis::family_name(family);
      ++rep->products;
      rep->workspace_requested_bytes += abytes + bbytes + cbytes;
      rep->workspace_allocations += 3;
    }

    // Parallel conversions: fan out over Morton tile ranges.
    WallTimer t;
    const auto convert_in = [&](const layout::MortonLayout& l, double* dst,
                                Op op, const double* src, int ld) {
      const std::int64_t tiles =
          static_cast<std::int64_t>(l.tiles_per_side()) * l.tiles_per_side();
      parallel_for(pool, 0, tiles, /*min_grain=*/8,
                   [&](std::int64_t t0, std::int64_t t1) {
                     RawMem mm;
                     layout::to_morton_range(mm, l, dst, op, src, ld,
                                             static_cast<int>(t0),
                                             static_cast<int>(t1));
                   });
    };
    convert_in(la, Am, opa, A, lda);
    convert_in(lb, Bm, opb, B, ldb);
    if (rep) rep->convert_in_seconds += t.seconds();

    t.restart();
    recurse(pool, policy, spawn, Cm, Am, Bm, plan.m.tile, plan.k.tile,
            plan.n.tile, plan.depth, family);
    if (rep) rep->compute_seconds += t.seconds();

    t.restart();
    // Convert-out applies beta to C exactly once per tile, so unlike the
    // phases above it is NOT safe to abandon to the from-scratch serial
    // rerun: a chunk that already ran would get beta applied twice.  The
    // conversion itself never allocates (RawMem), but SUBMITTING a chunk
    // can throw bad_alloc (building the task object), so chunks record
    // completion and the catch finishes only the missing ones inline --
    // same idiom as split_parallel's setup-failure path.
    const std::int64_t ctiles =
        static_cast<std::int64_t>(lc.tiles_per_side()) * lc.tiles_per_side();
    const int width = pool != nullptr ? pool->thread_count() : 1;
    const std::int64_t chunks = std::max<std::int64_t>(
        1, std::min<std::int64_t>(width, (ctiles + 7) / 8));
    const std::int64_t per = (ctiles + chunks - 1) / chunks;
    const std::size_t nchunks =
        static_cast<std::size_t>((ctiles + per - 1) / per);
    const std::unique_ptr<std::atomic<bool>[]> done(
        new std::atomic<bool>[nchunks]());
    const auto convert_chunk = [&](std::size_t ci, std::int64_t lo,
                                   std::int64_t hi) {
      RawMem mm;
      layout::from_morton_range(mm, lc, Cm, alpha, C, ldc, beta,
                                static_cast<int>(lo), static_cast<int>(hi));
      done[ci].store(true, std::memory_order_release);
    };
    try {
      TaskGroup group(pool);
      std::size_t ci = 0;
      for (std::int64_t c = 0; c < ctiles; c += per, ++ci) {
        const std::int64_t hi = std::min(ctiles, c + per);
        group.run([&convert_chunk, ci, c, hi] { convert_chunk(ci, c, hi); });
      }
      group.wait();
    } catch (const std::bad_alloc&) {
      // ~TaskGroup joined everything in flight, so the flags are final and
      // no chunk is mid-write.
      core::detail::record_fallback(rep, core::FallbackReason::kAllocDirect);
      std::size_t ci = 0;
      for (std::int64_t c = 0; c < ctiles; c += per, ++ci) {
        if (done[ci].load(std::memory_order_acquire)) continue;
        convert_chunk(ci, c, std::min(ctiles, c + per));
      }
    }
    if (rep) rep->convert_out_seconds += t.seconds();
  } catch (const std::bad_alloc&) {
    // A Morton buffer or a task's arena failed to allocate.  Exceptions from
    // tasks surface at TaskGroup::wait(), after every sibling task joined,
    // so nothing still references the spawn-level temporaries being unwound
    // here.  C has not been touched (the final conversion above completes
    // even under submission failure and lets no bad_alloc escape), so the
    // serial driver -- with its full degradation ladder down to the
    // allocation-free path -- can produce the product from scratch.  The
    // caller's idle arena cache is released first so the retry runs with
    // every reusable byte returned.
    core::detail::record_fallback(rep, core::FallbackReason::kAllocDirect);
    purge_thread_arena_cache();
    core::ModgemmOptions serial;
    serial.tiles = opt.tiles;
    serial.schedule = opt.schedule;
    serial.algo = analysis::AlgoFamily::k222;
    core::modgemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
                  serial, rep);
  }
}

}  // namespace strassen::parallel
