#include "baselines/strassen_classic.hpp"

namespace strassen::baselines {

void strassen_classic(Op opa, Op opb, int m, int n, int k, double alpha,
                      const double* A, int lda, const double* B, int ldb,
                      double beta, double* C, int ldc,
                      const core::ModgemmOptions& opt) {
  RawMem raw;
  strassen_classic_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                      ldc, opt);
}

}  // namespace strassen::baselines
