// aligned_buffer.hpp -- RAII owner of cache-line/page aligned storage.
//
// All matrix storage in the library comes from AlignedBuffer so that
//   * tiles and Morton quadrants start on cache-line boundaries (the layout
//     arguments in the paper assume this), and
//   * the cache simulator sees realistic, malloc-like base addresses.
#pragma once

#include <cstddef>
#include <cstdint>

namespace strassen {

class AlignedBuffer {
 public:
  static constexpr std::size_t kDefaultAlignment = 64;  // one cache line

  // Pluggable allocation gate, consulted before every aligned allocation in
  // the library (every AlignedBuffer, and therefore every Arena).  Returning
  // false refuses the request and makes the constructor throw
  // std::bad_alloc -- exactly what a real OOM looks like to callers.  This
  // is the hook point for testing::FaultInjector; a production embedder can
  // also install an accounting gate here.  The gate runs concurrently from
  // pool workers, so it must be thread-safe.  Pass nullptr to restore the
  // default (always allow).
  using AllocationGate = bool (*)(std::size_t bytes, void* user);
  static void set_allocation_gate(AllocationGate gate, void* user) noexcept;

  // Consults the installed gate exactly as an allocation of `bytes` would,
  // without allocating.  Storage-reuse paths (the parallel scratch-arena
  // cache) call this before handing out cached memory, so a fault-injection
  // sweep or accounting gate observes every acquisition -- cache hits
  // included -- and each acquisition consults the gate exactly once whether
  // it is served cold or from the cache.  Returns false when the gate
  // refuses (callers then throw std::bad_alloc, matching the cold path).
  static bool allocation_allowed(std::size_t bytes) noexcept;

  AlignedBuffer() = default;
  // Allocates `bytes` bytes aligned to `alignment` (a power of two).
  // The memory is NOT zero-initialized; call zero() if needed.
  explicit AlignedBuffer(std::size_t bytes,
                         std::size_t alignment = kDefaultAlignment);
  ~AlignedBuffer();

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  void* data() { return ptr_; }
  const void* data() const { return ptr_; }
  std::size_t size_bytes() const { return bytes_; }
  bool empty() const { return ptr_ == nullptr; }
  // The alignment the storage was allocated with (0 when empty).  Part of
  // the engine's alignment contract: the SIMD leaf kernels assume Morton
  // buffers come from 64-byte-aligned storage (kDefaultAlignment).
  std::size_t alignment() const { return alignment_; }

  template <class T>
  T* as() {
    return static_cast<T*>(ptr_);
  }
  template <class T>
  const T* as() const {
    return static_cast<const T*>(ptr_);
  }

  // Fills the buffer with zero bytes.
  void zero();

  // Releases the storage and returns to the empty state.
  void reset();

 private:
  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t alignment_ = 0;
};

}  // namespace strassen
