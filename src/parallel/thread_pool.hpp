// thread_pool.hpp -- a small fixed-size worker pool for task parallelism.
//
// The paper's future work asks for further performance on top of the
// memory-friendly algorithm; the natural next step on a multicore host is to
// run the seven independent Strassen-Winograd products concurrently (they
// only synchronize at the U-chain combination).  This pool provides exactly
// the primitives that needs: submit() for fire-and-forget tasks and
// TaskGroup for fork/join.
//
// Exception safety: tasks may throw.  A TaskGroup captures the first
// exception any of its tasks raises and rethrows it from wait(), after every
// task in the group has finished -- so no task can outlive the state it
// captured by reference, and the pool remains fully usable afterwards.  A
// fire-and-forget task submitted directly to the pool has no join point to
// rethrow at; its first exception is parked and can be collected with
// take_error().
//
// Deliberately simple: one mutex-protected FIFO, N worker threads, no work
// stealing -- the library spawns a handful of coarse tasks (7 or 49 products,
// or tile-range chunks of a conversion), so queue contention is negligible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strassen::parallel {

class ThreadPool {
 public:
  // Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Index of the pool worker running the current thread, or -1 when called
  // from outside any pool (observability maps -1 to per-thread slot 0).
  static int current_worker_index() noexcept;

  // Enqueues a task.  A throwing task no longer terminates the process: an
  // exception escaping a task is captured -- by the owning TaskGroup if the
  // task was launched through one (rethrown at wait()), otherwise in the
  // pool's error slot (collected with take_error()).
  void submit(std::function<void()> task);

  // Pops one queued task and runs it on the CALLING thread; returns false if
  // the queue was empty.  TaskGroup::wait() uses this to "help" instead of
  // blocking, which makes nested fork/join (spawn_levels >= 2) deadlock-free
  // even on a single-thread pool.
  bool try_run_one();

  // First exception that escaped a fire-and-forget task since the last call
  // (nullptr if none).  Collecting clears the slot.  Tasks run through a
  // TaskGroup report at wait() instead and never land here.
  std::exception_ptr take_error();

 private:
  void worker_loop();
  void run_task(std::function<void()>& task);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::exception_ptr error_;  // first fire-and-forget escape
  bool stopping_ = false;
};

// Fork/join helper: run() submits to the pool (or runs inline if no pool),
// wait() blocks until every task launched through this group finished.
class TaskGroup {
 public:
  // pool == nullptr makes run() execute inline -- callers can treat the
  // serial and parallel paths uniformly (including exception capture: an
  // inline task's exception also surfaces at wait(), not at run()).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  // Joins outstanding tasks.  An exception the caller never collected via
  // wait() is dropped here: destructors must not throw.
  ~TaskGroup() { join(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);
  // Blocks until every task launched through this group finished, then
  // rethrows the first exception any of them threw (if any).  The group and
  // the pool stay usable after a rethrow.
  void wait();

 private:
  // The join loop of wait(), without the rethrow.
  void join();

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;  // first exception from any task in this group
};

// Splits [begin, end) into roughly pool-width chunks and applies
// fn(chunk_begin, chunk_end) in parallel.  Runs inline when pool is null or
// single-threaded or when the range is smaller than min_grain.  Rethrows the
// first exception a chunk raised, after all chunks finished.
void parallel_for(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                  std::int64_t min_grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace strassen::parallel
