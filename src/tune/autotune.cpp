#include "tune/autotune.hpp"

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/modgemm.hpp"

namespace strassen::tune {

namespace {

// MFLOPS of the contiguous T x T leaf multiply.
double leaf_mflops(int tile, int reps) {
  Rng rng(static_cast<std::uint64_t>(tile));
  Matrix<double> A(tile, tile), B(tile, tile), C(tile, tile);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  MeasureOptions opt;
  opt.outer_reps = reps;
  // Aim for ~1ms of work per repetition.
  opt.inner_reps = std::max(
      1, static_cast<int>(2e6 / static_cast<double>(gemm_flops(tile, tile,
                                                               tile))));
  const double secs = measure(
      [&] {
        blas::gemm_leaf(tile, tile, tile, A.data(), A.ld(), B.data(), B.ld(),
                        C.data(), C.ld(), blas::LeafMode::Overwrite);
      },
      opt);
  return static_cast<double>(gemm_flops(tile, tile, tile)) / secs * 1e-6;
}

}  // namespace

AutotuneResult autotune(const AutotuneOptions& opt) {
  STRASSEN_REQUIRE(!opt.candidate_tiles.empty(), "no candidate tiles");
  STRASSEN_REQUIRE(opt.tolerance > 0.0 && opt.tolerance <= 1.0,
                   "tolerance must be in (0, 1]");
  AutotuneResult result;

  // --- kernel survey ----------------------------------------------------
  // Rank every runnable engine configuration by aggregate leaf throughput
  // over the candidate tiles, then (optionally) install the winner so the
  // tile survey below measures the kernel that will actually run.
  namespace ker = blas::kernels;
  if (opt.survey_kernels) {
    struct Config {
      ker::Kind kind;
      ker::Avx2Variant variant;
    };
    std::vector<Config> configs;
    for (ker::Kind kind : ker::available_kernels()) {
      if (kind == ker::Kind::kAvx2) {
        configs.push_back({kind, ker::Avx2Variant::k8x6});
        configs.push_back({kind, ker::Avx2Variant::k4x8});
      } else {
        configs.push_back({kind, ker::Avx2Variant::kAuto});
      }
    }
    double best_total = 0.0;
    for (const Config& c : configs) {
      ker::ScopedKernel pin(c.kind, c.variant);
      double total = 0.0;
      for (int tile : opt.candidate_tiles) {
        const double rate = leaf_mflops(tile, opt.repetitions);
        result.kernel_survey.push_back({c.kind, c.variant, tile, rate});
        total += rate;
      }
      if (total > best_total) {
        best_total = total;
        result.best_kernel = c.kind;
        result.best_avx2_variant = c.variant;
      }
      if (opt.collect_reports) {
        // One observed, forced-recursion call per configuration: its report
        // carries the leaf/fused split and phase times behind the ranking.
        const int n = std::max(64, opt.report_problem_size);
        Rng rng(static_cast<std::uint64_t>(n));
        Matrix<double> A(n, n), B(n, n), C(n, n);
        rng.fill_uniform(A.storage());
        rng.fill_uniform(B.storage());
        core::ModgemmOptions mo;
        mo.kernel = c.kind;
        mo.avx2_variant = c.variant;
        mo.tiles.direct_threshold = std::max(8, n / 4);
        obs::GemmReport report;
        core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                      B.data(), B.ld(), 0.0, C.data(), C.ld(), mo, &report);
        result.config_reports.push_back(report);
      }
    }
    if (opt.apply_best_kernel) {
      ker::set_active_kernel(result.best_kernel);
      ker::set_avx2_variant(result.best_avx2_variant);
    }
  }

  // --- leaf survey ----------------------------------------------------
  double best_rate = 0.0;
  int best_tile = opt.candidate_tiles.front();
  for (int tile : opt.candidate_tiles) {
    const double rate = leaf_mflops(tile, opt.repetitions);
    result.leaf_survey.emplace_back(tile, rate);
    if (rate > best_rate) {
      best_rate = rate;
      best_tile = tile;
    }
  }
  // Range = candidates whose rate is within tolerance of the best; Morton
  // contiguity is what keeps this window wide (paper Fig. 3).
  int lo = best_tile, hi = best_tile;
  for (const auto& [tile, rate] : result.leaf_survey) {
    if (rate >= opt.tolerance * best_rate) {
      lo = std::min(lo, tile);
      hi = std::max(hi, tile);
    }
  }
  // The planner needs max >= 2*min so consecutive depth windows overlap.
  if (hi < 2 * lo) lo = std::max(1, hi / 2);

  result.tiles.min_tile = lo;
  result.tiles.max_tile = hi;
  result.tiles.preferred_tile = best_tile;

  // --- crossover probe --------------------------------------------------
  // Force at least one Strassen level with a permissive threshold and find
  // where it starts paying.
  int crossover = 0;
  for (int n : opt.crossover_sizes) {
    Rng rng(static_cast<std::uint64_t>(n) * 3 + 1);
    Matrix<double> A(n, n), B(n, n), C(n, n);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    MeasureOptions mopt;
    mopt.outer_reps = opt.repetitions;
    mopt.inner_reps = n <= 128 ? 10 : 3;
    const double t_conv = measure(
        [&] {
          blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                     B.data(), B.ld(), 0.0, C.data(), C.ld());
        },
        mopt);
    core::ModgemmOptions forced;
    forced.tiles.min_tile = std::max(8, lo / 2);
    forced.tiles.max_tile = hi;
    forced.tiles.preferred_tile = best_tile;
    forced.tiles.direct_threshold = std::max(8, n / 4);  // force recursion
    const double t_str = measure(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                        A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(),
                        forced);
        },
        mopt);
    result.crossover_probe.push_back({n, t_conv, t_str});
    if (crossover == 0 && t_str < t_conv) crossover = n;
  }
  // Below the crossover, Strassen loses: run those sizes direct.  Clamp to
  // sane bounds; default to the paper's 64 when the probe never crossed.
  if (crossover == 0) crossover = 2 * opt.crossover_sizes.back();
  result.tiles.direct_threshold =
      std::clamp(crossover / 2, result.tiles.max_tile, 512);

  // --- strategy probe ---------------------------------------------------
  // One-shot Morton vs pack-fused at increasing recursion depth.  Each call
  // stages (or avoids) its conversion from cold operands, which is exactly
  // the regime choose_exec_strategy's depth cutoff covers.  The deepest
  // probe where pack-fused won becomes packfused_max_depth; if pack-fused
  // never wins the cutoff drops to 0 and only the rectangular-shape rule
  // can select it.
  if (opt.survey_strategy) {
    int max_winning_depth = 0;
    for (int n : opt.strategy_sizes) {
      core::ModgemmOptions probe;
      probe.tiles = result.tiles;
      probe.tiles.min_tile = std::max(8, result.tiles.min_tile / 2);
      probe.tiles.direct_threshold =
          std::max({8, n / 4, probe.tiles.min_tile});  // force recursion
      Rng rng(static_cast<std::uint64_t>(n) * 5 + 3);
      Matrix<double> A(n, n), B(n, n), C(n, n);
      rng.fill_uniform(A.storage());
      rng.fill_uniform(B.storage());
      MeasureOptions mopt;
      mopt.outer_reps = opt.repetitions;
      mopt.inner_reps = n <= 192 ? 5 : 2;
      obs::GemmReport report;
      probe.strategy = layout::ExecStrategy::kMorton;
      const double t_morton = measure(
          [&] {
            core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                          A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(),
                          probe, &report);
          },
          mopt);
      probe.strategy = layout::ExecStrategy::kPackFused;
      const double t_packed = measure(
          [&] {
            core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                          A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(),
                          probe);
          },
          mopt);
      const int depth = report.plan.depth;
      result.strategy_probe.push_back({n, depth, t_morton, t_packed});
      if (t_packed < t_morton) max_winning_depth = std::max(max_winning_depth, depth);
    }
    result.tiles.packfused_max_depth = max_winning_depth;
  }

  // --- algorithm-family probe -------------------------------------------
  // One forced pin per shipped <m,k,n> table on the rectangular probe shape.
  // Diagnostic only: the numbers explain choose_algo's decision on shapes
  // like this one, they do not feed back into the tuned knobs.
  if (opt.survey_algo) {
    const int pm = opt.algo_probe_m, pk = opt.algo_probe_k,
              pn = opt.algo_probe_n;
    Rng rng(static_cast<std::uint64_t>(pm) * 7 +
            static_cast<std::uint64_t>(pk) * 11 + 5);
    Matrix<double> A(pm, pk), B(pk, pn), C(pm, pn);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    MeasureOptions mopt;
    mopt.outer_reps = opt.repetitions;
    mopt.inner_reps = 2;
    for (const analysis::AlgoFamily f : analysis::kShippedAlgoFamilies) {
      core::ModgemmOptions probe;
      probe.tiles = result.tiles;
      probe.algo = f;
      const double secs = measure(
          [&] {
            core::modgemm(Op::NoTrans, Op::NoTrans, pm, pn, pk, 1.0, A.data(),
                          A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(),
                          probe);
          },
          mopt);
      result.algo_probe.push_back({f, secs});
    }
  }
  return result;
}

}  // namespace strassen::tune
