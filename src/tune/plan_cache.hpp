// tune/plan_cache.hpp -- plan memoization and the persistent autotune cache.
//
// The batched service loop (core/batched.hpp) multiplies torrents of
// small/medium products whose planning inputs repeat endlessly: the same
// (shape, op, strategy, schedule, budget, planner knobs) class shows up for
// every convolution of every inference.  Planning one product is cheap;
// planning it a million times per second is not -- and the autotune survey
// (tune/autotune.hpp), which prices tiles and kernels EMPIRICALLY, costs a
// visible fraction of a second that today every process pays again.
//
// Two caches fix the two recomputation costs:
//
//   * PlanCache -- an in-process, insert-only map from plan-equivalence
//     class to the fully degraded/resolved GemmPlan.  Reads are lock-free
//     (a fixed open-addressed table of atomic pointers, acquire loads, no
//     reader-side synchronization of any kind); writers serialize on one
//     mutex and publish entries with release stores.  Entries are never
//     mutated or freed while the cache is live, so a reader can hold a
//     returned pointer for as long as the process runs.  A full table stops
//     accepting inserts (counted, loud in stats) rather than evicting --
//     eviction would break the reader contract.
//
//   * The tune cache -- the autotune survey's outcome (planner tile knobs +
//     winning kernel), serialized to the file named by STRASSEN_TUNE_CACHE.
//     A warm process loads it and skips the survey entirely
//     (autotune_cached); a cold process surveys once and writes it for the
//     next process.  Entries carry a fingerprint of the kernel build and
//     host capability set: a cache written by a different binary or machine
//     is IGNORED LOUDLY (one stderr line naming the file and reason) and
//     overwritten by a fresh survey -- stale machine parameters are worse
//     than no parameters, per the paper's whole premise that these constants
//     are machine properties.
#pragma once

#include <atomic>
#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "layout/plan.hpp"
#include "obs/report.hpp"
#include "tune/autotune.hpp"

namespace strassen::tune {

// ---- in-process plan cache --------------------------------------------------

// Everything that influences plan_gemm + apply_workspace_budget +
// plan_exec_strategy for one product.  Two calls with equal keys execute the
// same plan, so the cached result is exact, not heuristic.
struct PlanKey {
  int m = 0, k = 0, n = 0;
  std::uint8_t opa = 0, opb = 0;      // Op, as ordinal
  std::uint8_t schedule = 0;          // resolved analysis::ScheduleFamily
  std::uint8_t strategy = 0;          // resolved layout::ExecStrategy
  std::uint8_t algo = 0;              // resolved analysis::AlgoFamily
  std::uint32_t elem_size = 0;
  std::uint64_t max_workspace_bytes = 0;
  // Planner knobs (layout::TileOptions), field by field.
  int min_tile = 0, max_tile = 0, preferred_tile = 0;
  int direct_threshold = 0, packfused_max_depth = 0;
  std::uint64_t avoid_conflict_cache_bytes = 0;
  std::uint64_t conflict_elem_bytes = 0;
  std::uint64_t max_tile_working_set_bytes = 0;

  bool operator==(const PlanKey&) const = default;
};

std::uint64_t hash_plan_key(const PlanKey& key) noexcept;

// The memoized planning outcome: the plan as it would EXECUTE (budget
// degradation and strategy resolution applied), the depth the planner wanted
// before the budget (report field), and the budget rung taken so cache hits
// report the same fallback the original planning pass did.
struct CachedPlan {
  layout::GemmPlan plan{};
  int planned_depth = 0;
  obs::FallbackReason fallback = obs::FallbackReason::kNone;
};

// Insert-only concurrent map.  lookup() is wait-free and never blocks on
// writers; insert() serializes writers on a mutex.  Capacity is fixed: when
// the probe sequence finds no free slot the insert is dropped and counted
// (stats().rejected) -- callers keep their locally computed plan.
class PlanCache {
 public:
  PlanCache() = default;
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Lock-free read: returns the published entry for `key`, or null.  The
  // pointer stays valid until clear() (which tests call with no concurrent
  // readers; production never does).
  const CachedPlan* lookup(const PlanKey& key) const noexcept;

  // Publishes `value` for `key`.  Returns the stored entry: the new one, the
  // pre-existing one when another writer won the race (first insert wins --
  // equal keys compute equal plans, so which copy survives is immaterial),
  // or null when the table is full.
  const CachedPlan* insert(const PlanKey& key, const CachedPlan& value);

  struct Stats {
    std::uint64_t hits = 0;      // lookups that returned an entry
    std::uint64_t misses = 0;    // lookups that returned null
    std::uint64_t entries = 0;   // entries currently published
    std::uint64_t rejected = 0;  // inserts dropped because the table is full
  };
  Stats stats() const noexcept;

  // Frees every entry and zeroes the stats.  NOT safe against concurrent
  // readers (their pointers would dangle) -- test fixture use only.
  void clear() noexcept;

 private:
  struct Entry {
    PlanKey key;
    CachedPlan value;
  };
  static constexpr std::size_t kSlots = 4096;  // power of two
  static constexpr std::size_t kMaxProbe = 64;

  std::array<std::atomic<Entry*>, kSlots> slots_{};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::mutex write_mutex_;
};

// The process-wide instance every entry point shares (function-local static,
// constructed on first use, never destroyed -- readers may race exit).
PlanCache& global_plan_cache();

// ---- persistent tune cache (STRASSEN_TUNE_CACHE) ----------------------------

// What the survey learned, shorn of diagnostics: the planner knobs that came
// out of the tile/crossover/strategy probes plus the winning leaf kernel.
struct TuneCacheEntry {
  layout::TileOptions tiles{};
  blas::kernels::Kind kernel = blas::kernels::Kind::kScalar;
  blas::kernels::Avx2Variant avx2_variant = blas::kernels::Avx2Variant::kAuto;
};

enum class TuneCacheStatus {
  kOk = 0,               // loaded, fingerprint matched
  kMissing,              // file does not exist (a normal cold start)
  kCorrupt,              // unreadable, truncated, or malformed
  kFingerprintMismatch,  // written by a different build or host
};
const char* tune_cache_status_name(TuneCacheStatus s) noexcept;

// Identity of the kernel build + host capability set this process would
// survey: compiled kernel tables (with register blocks) and the subset the
// CPU can run.  Two processes with equal fingerprints would reach the same
// survey outcome, so their caches are interchangeable; anything else is
// foreign and must be re-surveyed.
std::string tune_cache_fingerprint();

// Reads `path`.  On kOk fills *out; on any other status *out is untouched
// and *error (when non-null) gets a one-line human-readable reason.
TuneCacheStatus load_tune_cache(const std::string& path, TuneCacheEntry* out,
                                std::string* error = nullptr);

// Atomically (write-temp + rename) persists `entry` with the current
// fingerprint.  False + *error on I/O failure.
bool save_tune_cache(const std::string& path, const TuneCacheEntry& entry,
                     std::string* error = nullptr);

// $STRASSEN_TUNE_CACHE, or null when unset/empty.
const char* tune_cache_env() noexcept;

// Where autotune_cached's result came from -- the report's batch.tune_cache
// field serializes this ("cold" for a fresh survey, "warm" for memo/disk,
// "rejected" when a foreign/corrupt file forced a re-survey).
enum class TuneSource {
  kFreshSurvey = 0,  // surveyed (no cache configured, or cache was cold)
  kProcessMemo,      // this process already surveyed or loaded
  kDiskCache,        // loaded from STRASSEN_TUNE_CACHE
  kRejectedCache,    // surveyed because the file was corrupt/foreign
};
const char* tune_source_name(TuneSource s) noexcept;

struct CachedAutotune {
  AutotuneResult result;
  TuneSource source = TuneSource::kFreshSurvey;
};

// The warm-startable autotune entry point.  Consults, in order: the
// process-wide memo (one survey per process, the PR-9 bugfix -- repeated
// single-call tuning used to re-survey every time), then the
// STRASSEN_TUNE_CACHE file, then runs the real survey and persists the
// outcome for the next process.  Memo/disk hits return tiles + kernel with
// empty diagnostics vectors (nothing was measured); the winning kernel is
// installed when opt.apply_best_kernel, exactly as a fresh survey would.
// A corrupt or foreign cache file is reported on stderr, ignored, and
// overwritten by this process's fresh survey.
CachedAutotune autotune_cached(const AutotuneOptions& opt = {});
// Same, with an explicit cache path (null/empty = no file; tests use this
// to exercise cold/warm/rejected transitions without touching the
// environment).
CachedAutotune autotune_cached(const AutotuneOptions& opt, const char* path);

// Drops the process memo so the next autotune_cached consults the file /
// surveys again.  Test hook (simulates a fresh process).
void reset_autotune_memo() noexcept;

}  // namespace strassen::tune
