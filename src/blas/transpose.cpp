#include "blas/transpose.hpp"

namespace strassen::blas {

void transpose(int m, int n, const double* src, int lds, double* dst,
               int ldd) {
  RawMem raw;
  transpose(raw, m, n, src, lds, dst, ldd);
}

}  // namespace strassen::blas
