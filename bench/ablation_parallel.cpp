// ablation_parallel -- scaling of the task-parallel MODGEMM (the library's
// extension along the paper's "further improve performance" future-work
// axis): serial vs legacy top-level forking (spawn 1/2) vs the deep
// work-stealing schedule (spawn auto) across thread counts, with the
// scheduler telemetry (tasks, steals, pool utilization) alongside the times.
//
// Expected shape: on a multicore host the legacy spawn-1 rows plateau near
// 7 tasks' worth of parallelism while the deep rows keep scaling (hundreds
// of stealable tasks); on a single-core host all configurations tie (the
// results are still bit-identical, see tests/test_pmodgemm.cpp).
//
// Extra flags on top of the common harness:
//   --scale               the CI scale point: n=2048, 8 threads only
//   --check_utilization X fail (exit 1) if the deep row's pool utilization
//                         at the largest thread count is below X
//   --check_speedup X     fail (exit 1) if deep is not at least X times
//                         faster than legacy top-level forking (spawn 1)
//                         at the largest (n, threads) point
// CI reads the floors from bench/baselines/parallel_floor.json and passes
// them here; the JSON artifact (--json) carries one full GemmReport per row
// for offline comparison.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/modgemm.hpp"
#include "parallel/pmodgemm.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

namespace {

struct GateArgs {
  bool scale = false;
  double check_utilization = -1.0;  // < 0: gate off
  double check_speedup = -1.0;
};

// Pulls this binary's own flags out of argv (the shared parser warns on
// anything it does not know) and returns the filtered argument list.
GateArgs extract_gate_args(int& argc, char** argv) {
  GateArgs g;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      g.scale = true;
    } else if (std::strcmp(argv[i], "--check_utilization") == 0 &&
               i + 1 < argc) {
      g.check_utilization = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--check_speedup") == 0 && i + 1 < argc) {
      g.check_speedup = std::atof(argv[++i]);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return g;
}

struct Config {
  const char* label;  // row label and JSON key
  int spawn_levels;   // parallel::kSpawnAuto or the legacy level count
};

}  // namespace

int main(int argc, char** argv) {
  const GateArgs gates = extract_gate_args(argc, argv);
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: task parallelism",
                "pmodgemm speedup over serial modgemm, by threads and spawn "
                "schedule");
  std::printf("host hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  Table table({"n", "threads", "schedule", "time(s)", "speedup", "tasks",
               "steals", "util"});
  args.maybe_mirror(table, "ablation_parallel");
  bench::ReportLog log(args, "ablation_parallel");

  const std::vector<int> sizes =
      gates.scale ? std::vector<int>{2048}
                  : (args.quick ? std::vector<int>{513}
                                : std::vector<int>{400, 513, 800});
  const std::vector<int> threads =
      gates.scale ? std::vector<int>{8} : std::vector<int>{1, 2, 4};
  const std::vector<Config> configs{
      {"top1", 1},  // legacy: fork the 7 top-level products only
      {"top2", 2},  // legacy: fork the top two levels (49 tasks)
      {"deep", parallel::kSpawnAuto},
  };

  // Gate inputs, taken at the largest (n, threads) point.
  double gate_util = -1.0, gate_top1 = -1.0, gate_deep = -1.0;

  for (int n : sizes) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 19);
    const MeasureOptions opt = bench::protocol(args, n);
    const double t_serial = measure(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                        p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(),
                        p.C.ld());
        },
        opt);
    table.add_row({Table::num(static_cast<long long>(n)), "-", "serial",
                   Table::num(t_serial, 4), "1.00", "-", "-", "-"});
    if (log.enabled()) {
      obs::GemmReport rep;
      core::ModgemmOptions sopt;
      core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                    p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(), p.C.ld(),
                    sopt, &rep);
      log.add("n" + std::to_string(n) + "/serial", rep);
    }

    for (int t : threads) {
      for (const Config& cfg : configs) {
        parallel::ThreadPool pool(t);
        parallel::ParallelOptions popt;
        popt.spawn_levels = cfg.spawn_levels;
        const double ts = measure(
            [&] {
              parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                 p.A.data(), p.A.ld(), p.B.data(), p.B.ld(),
                                 0.0, p.C.data(), p.C.ld(), popt);
            },
            opt);
        // One extra observed invocation for the telemetry row: the scheduler
        // stats (tasks/steals/utilization) come from a real run under the
        // same pool, not from the timed minimum.
        obs::GemmReport rep;
        popt.report = &rep;
        parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                           p.A.data(), p.A.ld(), p.B.data(), p.B.ld(), 0.0,
                           p.C.data(), p.C.ld(), popt);
        table.add_row({Table::num(static_cast<long long>(n)),
                       Table::num(static_cast<long long>(t)), cfg.label,
                       Table::num(ts, 4), Table::num(t_serial / ts, 2),
                       Table::num(static_cast<long long>(rep.tasks_executed)),
                       Table::num(static_cast<long long>(rep.steals)),
                       Table::num(rep.pool_utilization(), 2)});
        log.add("n" + std::to_string(n) + "/t" + std::to_string(t) + "/" +
                    cfg.label,
                rep);
        if (n == sizes.back() && t == threads.back()) {
          if (std::strcmp(cfg.label, "top1") == 0) gate_top1 = ts;
          if (std::strcmp(cfg.label, "deep") == 0) {
            gate_deep = ts;
            gate_util = rep.pool_utilization();
          }
        }
      }
    }
  }
  table.print();

  int rc = 0;
  if (gates.check_utilization >= 0.0) {
    std::printf("gate: pool utilization %.3f (floor %.3f)\n", gate_util,
                gates.check_utilization);
    if (gate_util < gates.check_utilization) {
      std::fprintf(stderr, "FAIL: utilization below floor\n");
      rc = 1;
    }
  }
  if (gates.check_speedup >= 0.0 && gate_top1 > 0.0 && gate_deep > 0.0) {
    const double rel = gate_top1 / gate_deep;
    std::printf("gate: deep vs top-level fork %.2fx (floor %.2fx)\n", rel,
                gates.check_speedup);
    if (rel < gates.check_speedup) {
      std::fprintf(stderr, "FAIL: deep schedule speedup below floor\n");
      rc = 1;
    }
  }
  return rc;
}
