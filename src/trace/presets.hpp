// presets.hpp -- cache geometries of the paper's experimental platforms.
//
// The SC'98 evaluation ran on two machines whose cache organizations drive
// all of its architecture-dependent effects:
//
//   * DEC Alpha Miata (21164, 500 MHz): 8KB direct-mapped L1, 96KB 3-way L2,
//     2MB direct-mapped board L3.
//   * Sun Ultra 60 (UltraSPARC II, 300 MHz): 16KB direct-mapped L1,
//     2MB direct-mapped L2.
//
// plus the simulated cache used for Fig. 9: 16KB direct-mapped, 32-byte
// blocks.  We cannot run on that hardware, so these presets configure the
// simulator with the same geometries; the cross-platform comparisons in the
// paper are cache-geometry effects, which these reproduce (see DESIGN.md,
// substitutions).
#pragma once

#include "trace/cache.hpp"

namespace strassen::trace {

// The Fig. 9 simulation target: 16KB direct-mapped, 32-byte blocks.
CacheHierarchy paper_fig9_cache();

// Same geometry with three-C's miss classification enabled -- the stand-in
// for the paper's CProf analysis (S4.2), which attributed the n=513 miss
// drop to conflict misses.  Slower to simulate than the plain preset.
CacheHierarchy paper_fig9_cache_classified();

// DEC Alpha 21164 (Miata) three-level hierarchy.
CacheHierarchy alpha_miata_hierarchy();

// Sun UltraSPARC II (Ultra 60) two-level hierarchy.
CacheHierarchy ultra60_hierarchy();

// The Alpha's 8KB direct-mapped L1 alone (used by the Fig. 3 stability
// experiment, where the paper's self-interference argument concerns L1).
CacheHierarchy alpha_l1_only();

}  // namespace strassen::trace
