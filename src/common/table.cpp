#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace strassen {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  STRASSEN_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::mirror_csv(const std::string& path) {
  csv_.open(path);
  if (!csv_) {
    std::cerr << "strassen: could not open CSV mirror '" << path << "'\n";
    return;
  }
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) csv_ << ',';
    csv_ << headers_[i];
  }
  csv_ << '\n';
  csv_header_written_ = true;
}

void Table::add_row(std::vector<std::string> cells) {
  STRASSEN_REQUIRE(cells.size() == headers_.size(),
                   "row width must match header width");
  if (csv_.is_open() && csv_header_written_) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) csv_ << ',';
      csv_ << cells[i];
    }
    csv_ << '\n';
    csv_.flush();
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i)
    width[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << "  ";
      os << row[i];
      for (std::size_t pad = row[i].size(); pad < width[i]; ++pad) os << ' ';
    }
    std::cout << os.str() << '\n';
  };

  print_row(headers_);
  std::size_t total = headers_.size() > 0 ? (headers_.size() - 1) * 2 : 0;
  for (std::size_t w : width) total += w;
  std::cout << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

}  // namespace strassen
