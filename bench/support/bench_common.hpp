// bench_common.hpp -- shared harness for the per-figure benchmark binaries.
//
// Every binary reproduces one table/figure of the SC'98 paper: it sweeps the
// paper's parameter range, runs the competing implementations under the
// paper's measurement protocol, and prints the same rows/series the figure
// plots (mirrored to CSV when --csv <dir> is given).
//
// Common flags (parsed by BenchArgs):
//   --quick        smaller sweeps / fewer repetitions (CI-friendly)
//   --paper        the paper's exact protocol (3 outer reps, 10 averaged
//                  invocations below n=500); default is a lighter protocol
//                  (2 outer, 5 inner) that keeps a full sweep to minutes
//   --csv DIR      mirror each table to DIR/<bench>.csv
//   --json DIR     write DIR/BENCH_<bench>.json, one row per sweep point
//                  with the full GemmReport of an observed MODGEMM call
//                  (docs/OBSERVABILITY.md documents the row schema)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "obs/report.hpp"

namespace strassen::bench {

struct BenchArgs {
  bool quick = false;
  bool paper_protocol = false;
  std::string csv_dir;
  std::string json_dir;

  static BenchArgs parse(int argc, char** argv);
  // Attaches DIR/<name>.csv mirroring to `table` if --csv was given.
  void maybe_mirror(Table& table, const std::string& name) const;
};

// Collects labelled GemmReports over a sweep and writes them on destruction
// as DIR/BENCH_<name>.json:
//
//   {"bench": "<name>",
//    "rows": [{"label": "...", "report": <strassen.gemm_report.v5>}, ...]}
//
// Inert (enabled() == false, add() drops) without --json, so benches can
// call it unconditionally.
class ReportLog {
 public:
  ReportLog(const BenchArgs& args, std::string name);
  ~ReportLog();
  ReportLog(const ReportLog&) = delete;
  ReportLog& operator=(const ReportLog&) = delete;

  bool enabled() const { return !dir_.empty(); }
  void add(const std::string& label, const obs::GemmReport& report);

 private:
  std::string dir_, name_;
  std::vector<std::pair<std::string, obs::GemmReport>> rows_;
};

// Measurement protocol for matrix size n under these args.
MeasureOptions protocol(const BenchArgs& args, int n);

// The paper's evaluation sweep: matrix sizes 150..1024.  Full mode steps
// through the range densely enough to show the crossovers; quick mode keeps
// a handful of representative sizes.
std::vector<int> paper_sizes(const BenchArgs& args);

// A pair of square random operands (uniform [-1,1]) plus a result buffer.
struct Problem {
  Matrix<double> A, B, C;
  int m, n, k;
  Problem(int m_, int n_, int k_, std::uint64_t seed);
};

// The four contenders, under their paper names.
using GemmFn = std::function<void(int m, int n, int k, const double* A,
                                  int lda, const double* B, int ldb, double* C,
                                  int ldc)>;
GemmFn modgemm_fn();
// MODGEMM through the public API with the pack-fused (no-conversion)
// execution strategy pinned (ModgemmOptions::strategy).
GemmFn modgemm_packfused_fn();
GemmFn dgefmm_fn();
GemmFn dgemmw_fn();
GemmFn conventional_fn();

// Times one C = A.B invocation of `fn` on `p` under `opt`.
double time_gemm(const GemmFn& fn, Problem& p, const MeasureOptions& opt);

// Prints the standard bench banner.
void banner(const std::string& figure, const std::string& what);

}  // namespace strassen::bench
