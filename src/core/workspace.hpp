// workspace.hpp -- exact arena sizing for the Winograd recursion.
//
// Each recursion level allocates quadrant-sized temporaries and releases
// them before returning, so the live set is a stack.  Sizing the arena to
// the exact peak lets the whole multiply run with a single allocation; the
// paper's implementations were likewise careful to bound temporary storage
// (S5.1).  How many temporaries a level needs depends on the SCHEDULE
// FAMILY (analysis/schedule.hpp):
//
//   kWinograd   3 buffers per level: qa + qb + qc        (the paper's bound)
//   kLowMem     2 buffers per level: max(qa, qc) + qb    (tS/tP share)
//   kInPlace    top level 1 buffer (qc, operand sums overwrite the Morton
//               A/B copies); deeper levels run the low-mem table
//
// where qa/qb/qc are the A-/B-/C-shaped quadrant sizes of that level.
#pragma once

#include <cstddef>

#include "analysis/schedule.hpp"

namespace strassen::core {

// Peak bytes of recursion temporaries for a product of Morton blocks with
// leaf tiles (tm x tk) * (tk x tn) and `depth` recursion levels, including
// the arena's per-allocation 64-byte rounding.  The two-argument form is the
// default family (kWinograd); kAuto sizes as kWinograd (the planner's
// largest candidate).
std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size);
std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size,
                                     analysis::ScheduleFamily family);

// Peak bytes for the accumulating top level (core::winograd_recurse_acc):
// the top level runs the 3-temporary kWinogradAccum table and its seven
// sub-products recurse with `family` tables.
std::size_t winograd_accum_workspace_bytes(int tm, int tk, int tn, int depth,
                                           std::size_t elem_size,
                                           analysis::ScheduleFamily family);

}  // namespace strassen::core
