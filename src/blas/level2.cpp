#include "blas/level2.hpp"

namespace strassen::blas {

namespace {
RawMem raw;
}  // namespace

void gemv_n(int m, int n, double alpha, const double* A, int lda,
            const double* x, int incx, double beta, double* y, int incy) {
  gemv_n(raw, m, n, alpha, A, lda, x, incx, beta, y, incy);
}

void gemv_t(int m, int n, double alpha, const double* A, int lda,
            const double* x, int incx, double beta, double* y, int incy) {
  gemv_t(raw, m, n, alpha, A, lda, x, incx, beta, y, incy);
}

void ger(int m, int n, double alpha, const double* x, int incx,
         const double* y, int incy, double* A, int lda) {
  ger(raw, m, n, alpha, x, incx, y, incy, A, lda);
}

double dot(int n, const double* x, int incx, const double* y, int incy) {
  return dot(raw, n, x, incx, y, incy);
}

}  // namespace strassen::blas
