#include "obs/scope.hpp"

#include <algorithm>

#include "obs/env_sink.hpp"

namespace strassen::obs {

// Decides the observation mode and returns the collector to install on this
// thread.  Runs during construction of install_ (the last member), so every
// other member is already initialized.  An unobserved call re-installs the
// thread's current collector, which is a no-op.
Collector* CallScope::init(const char* entry, GemmReport* user) {
  const bool nested = current() != nullptr;
  report_ = user;
  if (!nested) {
    emit_ = env_sink_enabled();
    if (report_ == nullptr && emit_) report_ = &local_;
    collecting_ = report_ != nullptr;
  }
  if (report_ != nullptr && report_->entry[0] == '\0') report_->entry = entry;
  return collecting_ ? &counters_ : current();
}

CallScope::CallScope(const char* entry, GemmReport* user)
    : install_(init(entry, user)) {}

CallScope::~CallScope() {
  if (!collecting_ || report_ == nullptr) {
    if (emit_ && report_ != nullptr) env_emit(*report_);
    return;
  }
  const auto ld = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  GemmReport& r = *report_;
  r.leaf_calls += ld(counters_.leaf_calls);
  r.fused_calls += ld(counters_.fused_calls);
  r.leaf_seconds += static_cast<double>(ld(counters_.leaf_nanos)) * 1e-9;
  r.elementwise_calls += ld(counters_.elementwise_calls);

  r.workspace_requested_bytes += ld(counters_.workspace_noted_bytes);
  r.workspace_allocations +=
      static_cast<int>(ld(counters_.workspace_allocations));
  // The parallel schedule keeps the spawn-level temporaries and every
  // child arena live together until the join, so the call's high-water
  // mark is the full requested footprint.  NOT true for batched calls
  // (batch_count > 0): their tasks acquire and release scratch product by
  // product through the per-thread arena cache, so at most ~one arena per
  // thread is ever live -- their peak is the largest per-product arena mark,
  // already folded in by the driver.
  if (r.parallel && r.batch_count == 0)
    r.workspace_peak_bytes =
        std::max(r.workspace_peak_bytes, r.workspace_requested_bytes);

  r.tasks_executed += ld(counters_.tasks_executed);
  r.steals += ld(counters_.steals);
  r.task_busy_seconds += static_cast<double>(ld(counters_.task_nanos)) * 1e-9;
  if (r.parallel) {
    const int slots =
        std::min(r.threads + 1, Collector::kMaxThreadSlots);
    if (r.per_thread_tasks.size() < static_cast<std::size_t>(slots))
      r.per_thread_tasks.resize(static_cast<std::size_t>(slots), 0);
    for (std::size_t i = 0; i < r.per_thread_tasks.size() &&
                            i < static_cast<std::size_t>(
                                    Collector::kMaxThreadSlots);
         ++i)
      r.per_thread_tasks[i] += ld(counters_.per_thread_tasks[i]);
  }

  if (emit_) env_emit(r);
}

}  // namespace strassen::obs
