#include "support/bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "baselines/conventional.hpp"
#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "core/modgemm.hpp"

namespace strassen::bench {

BenchArgs BenchArgs::parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--paper") == 0) {
      args.paper_protocol = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      args.csv_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (flags: --quick --paper --csv DIR "
                   "--json DIR)\n",
                   argv[i]);
    }
  }
  return args;
}

void BenchArgs::maybe_mirror(Table& table, const std::string& name) const {
  if (!csv_dir.empty()) table.mirror_csv(csv_dir + "/" + name + ".csv");
}

ReportLog::ReportLog(const BenchArgs& args, std::string name)
    : dir_(args.json_dir), name_(std::move(name)) {}

void ReportLog::add(const std::string& label, const obs::GemmReport& report) {
  if (enabled()) rows_.emplace_back(label, report);
}

ReportLog::~ReportLog() {
  if (!enabled() || rows_.empty()) return;
  const std::string path = dir_ + "/BENCH_" + name_ + ".json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  os << "{\"bench\": \"" << name_ << "\", \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    os << "  {\"label\": \"" << rows_[i].first
       << "\", \"report\": " << obs::to_json(rows_[i].second) << "}"
       << (i + 1 < rows_.size() ? ",\n" : "\n");
  }
  os << "]}\n";
  std::printf("wrote %s (%zu reports)\n", path.c_str(), rows_.size());
}

MeasureOptions protocol(const BenchArgs& args, int n) {
  if (args.paper_protocol) return paper_protocol(n);
  MeasureOptions opt;
  // One extra outer repetition for the single-invocation large sizes: with
  // inner_reps == 1 the min-of-reps is the only defense against OS noise.
  opt.outer_reps = n < 500 ? 2 : 3;
  opt.inner_reps = n < 500 ? (args.quick ? 3 : 5) : 1;
  opt.warmup = 1;
  return opt;
}

std::vector<int> paper_sizes(const BenchArgs& args) {
  if (args.quick) return {150, 250, 400, 513, 700, 1024};
  std::vector<int> sizes;
  for (int n = 150; n <= 1000; n += 50) sizes.push_back(n);
  // The interesting neighborhood around 512 (padding cliff) and the top end.
  sizes.push_back(511);
  sizes.push_back(513);
  sizes.push_back(1024);
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

Problem::Problem(int m_, int n_, int k_, std::uint64_t seed)
    : A(m_, k_), B(k_, n_), C(m_, n_), m(m_), n(n_), k(k_) {
  Rng rng(seed);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
}

GemmFn modgemm_fn() {
  return [](int m, int n, int k, const double* A, int lda, const double* B,
            int ldb, double* C, int ldc) {
    core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A, lda, B, ldb, 0.0,
                  C, ldc);
  };
}

GemmFn modgemm_packfused_fn() {
  return [](int m, int n, int k, const double* A, int lda, const double* B,
            int ldb, double* C, int ldc) {
    core::ModgemmOptions opt;
    opt.strategy = layout::ExecStrategy::kPackFused;
    core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A, lda, B, ldb, 0.0,
                  C, ldc, opt);
  };
}

GemmFn dgefmm_fn() {
  return [](int m, int n, int k, const double* A, int lda, const double* B,
            int ldb, double* C, int ldc) {
    baselines::dgefmm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A, lda, B, ldb,
                      0.0, C, ldc);
  };
}

GemmFn dgemmw_fn() {
  return [](int m, int n, int k, const double* A, int lda, const double* B,
            int ldb, double* C, int ldc) {
    baselines::dgemmw(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A, lda, B, ldb,
                      0.0, C, ldc);
  };
}

GemmFn conventional_fn() {
  return [](int m, int n, int k, const double* A, int lda, const double* B,
            int ldb, double* C, int ldc) {
    baselines::conventional_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A,
                                 lda, B, ldb, 0.0, C, ldc);
  };
}

double time_gemm(const GemmFn& fn, Problem& p, const MeasureOptions& opt) {
  return measure(
      [&] {
        fn(p.m, p.n, p.k, p.A.data(), p.A.ld(), p.B.data(), p.B.ld(),
           p.C.data(), p.C.ld());
      },
      opt);
}

void banner(const std::string& figure, const std::string& what) {
  std::printf("== %s ==\n%s\n", figure.c_str(), what.c_str());
  std::printf(
      "(alpha=1, beta=0, column-major doubles; timing: min over outer reps of "
      "the mean over inner invocations)\n\n");
}

}  // namespace strassen::bench
