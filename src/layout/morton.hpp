// morton.hpp -- Morton (Z-order / quadtree) index arithmetic.
//
// The paper's layout (Fig. 1): divide the matrix into four quadrants, lay
// them out in memory in the order NW, NE, SW, SE, recurse inside each
// quadrant, and store the T x T tiles at the leaves in column-major order.
//
// For a tile at (tile_row tr, tile_col tc) the linear tile index is the bit
// interleave of tr and tc with the ROW bit in the more significant position
// of each pair -- that places NW(0,0)=0, NE(0,1)=1, SW(1,0)=2, SE(1,1)=3 at
// every level, matching the paper's figure.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/check.hpp"

namespace strassen::layout {

// Interleaves the low 16 bits of row/col tile coordinates into a Morton tile
// index (row bits at odd positions, i.e. the higher bit of each pair).
std::uint32_t morton_interleave(std::uint32_t tile_row, std::uint32_t tile_col);

// Inverse of morton_interleave.
void morton_deinterleave(std::uint32_t index, std::uint32_t& tile_row,
                         std::uint32_t& tile_col);

// Spreads the low 16 bits of x so that bit i moves to bit 2i ("0b0a0b"
// pattern); the building block of the interleave.  Exposed for tests.
std::uint32_t morton_spread(std::uint32_t x);

// Inverse of morton_spread: collects even-position bits back together.
std::uint32_t morton_compact(std::uint32_t x);

// Description of a Morton-laid-out (possibly padded) matrix.
//
//   logical matrix:  rows x cols  (what the caller sees)
//   padded matrix:   (tile_rows << depth) x (tile_cols << depth)
//
// The padded matrix is a complete quadtree of `depth` levels whose leaves are
// tile_rows x tile_cols column-major tiles; pad elements hold zeros and
// participate in (redundant) arithmetic, per the paper's S3.5.
struct MortonLayout {
  int rows = 0;       // logical rows
  int cols = 0;       // logical cols
  int tile_rows = 0;  // leaf tile height
  int tile_cols = 0;  // leaf tile width
  int depth = 0;      // quadtree depth (0 = single tile)

  int padded_rows() const { return tile_rows << depth; }
  int padded_cols() const { return tile_cols << depth; }
  int tiles_per_side() const { return 1 << depth; }
  std::int64_t tile_elems() const {
    return static_cast<std::int64_t>(tile_rows) * tile_cols;
  }
  // Padded element count, computed in std::size_t with overflow checking: a
  // layout whose count would wrap is rejected (throws via STRASSEN_REQUIRE)
  // instead of silently truncating the buffer it is about to size.
  std::int64_t elems() const {
    STRASSEN_REQUIRE(tile_rows >= 0 && tile_cols >= 0 && depth >= 0 &&
                         depth < 31,
                     "bad morton layout: tile_rows=" << tile_rows
                                                     << " tile_cols="
                                                     << tile_cols
                                                     << " depth=" << depth);
    const std::size_t tiles = std::size_t{1} << depth;
    const std::size_t count =
        checked_mul(checked_mul(static_cast<std::size_t>(tile_rows),
                                static_cast<std::size_t>(tile_cols)),
                    checked_mul(tiles, tiles));
    STRASSEN_REQUIRE(count <= static_cast<std::size_t>(INT64_MAX),
                     "morton element count overflows: " << count);
    return static_cast<std::int64_t>(count);
  }
};

// elems() * elem_size in std::size_t with overflow checking; the one correct
// way to size a Morton buffer (drivers must not multiply elems() by
// sizeof(T) themselves -- that product can wrap).
inline std::size_t buffer_bytes(const MortonLayout& layout,
                                std::size_t elem_size) {
  return checked_mul(static_cast<std::size_t>(layout.elems()), elem_size);
}

// Offset of logical element (i, j) inside a Morton buffer with this layout.
// O(1); used by tests and by element-granularity accessors (not by the hot
// kernels, which walk tiles directly).
std::int64_t morton_offset(const MortonLayout& layout, int i, int j);

}  // namespace strassen::layout
