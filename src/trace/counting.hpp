// counting.hpp -- a MemModel that counts accesses without simulating a cache.
//
// Useful for operation-count analytics: the Strassen-Winograd recursion's
// data traffic must scale with 7^depth products plus 15 quadrant additions
// per level, and the tests pin the library's kernels to those closed forms.
// Orders of magnitude faster than TracingMem when only counts are needed.
#pragma once

#include <cstdint>

namespace strassen::trace {

class CountingMem {
 public:
  template <class T>
  T load(const T* p) {
    ++loads_;
    return *p;
  }
  template <class T>
  void store(T* p, T v) {
    ++stores_;
    *p = v;
  }

  std::uint64_t loads() const { return loads_; }
  std::uint64_t stores() const { return stores_; }
  std::uint64_t total() const { return loads_ + stores_; }
  void reset() { loads_ = stores_ = 0; }

 private:
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace strassen::trace
