#include "baselines/conventional.hpp"

namespace strassen::baselines {

void conventional_gemm(Op opa, Op opb, int m, int n, int k, double alpha,
                       const double* A, int lda, const double* B, int ldb,
                       double beta, double* C, int ldc) {
  blas::gemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc);
}

}  // namespace strassen::baselines
