#include "core/morton_matrix.hpp"

#include "common/check.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"

namespace strassen::core {

MortonProductPlan plan_morton_product(int m, int k, int n,
                                      const layout::TileOptions& opt) {
  const layout::GemmPlan plan = layout::plan_gemm(m, k, n, opt);
  STRASSEN_REQUIRE(!plan.direct,
                   "problem too small for the Morton-native path; use "
                   "blas::gemm or core::modgemm");
  STRASSEN_REQUIRE(plan.feasible,
                   "shape too rectangular for a single-depth Morton plan; "
                   "use core::modgemm, which splits");
  MortonProductPlan out;
  out.depth = plan.depth;
  out.a = layout::MortonLayout{m, k, plan.m.tile, plan.k.tile, plan.depth};
  out.b = layout::MortonLayout{k, n, plan.k.tile, plan.n.tile, plan.depth};
  out.c = layout::MortonLayout{m, n, plan.m.tile, plan.n.tile, plan.depth};
  return out;
}

MortonMatrix::MortonMatrix(const layout::MortonLayout& layout)
    : layout_(layout),
      buffer_(static_cast<std::size_t>(layout.elems()) * sizeof(double)) {
  STRASSEN_REQUIRE(layout.rows >= 1 && layout.cols >= 1 &&
                       layout.tile_rows >= 1 && layout.tile_cols >= 1 &&
                       layout.depth >= 0,
                   "bad Morton layout");
  STRASSEN_REQUIRE(layout.padded_rows() >= layout.rows &&
                       layout.padded_cols() >= layout.cols,
                   "layout does not cover the logical matrix");
  buffer_.zero();
}

MortonMatrix MortonMatrix::from_colmajor(const layout::MortonLayout& layout,
                                         ConstMatrixView<double> src, Op op) {
  STRASSEN_REQUIRE(op_rows(op, src.rows, src.cols) == layout.rows &&
                       op_cols(op, src.rows, src.cols) == layout.cols,
                   "source shape does not match layout");
  MortonMatrix out(layout);
  layout::to_morton(layout, out.data(), op, src.data, src.ld);
  return out;
}

double MortonMatrix::at(int i, int j) const {
  STRASSEN_REQUIRE(i >= 0 && i < rows() && j >= 0 && j < cols(),
                   "element index out of range");
  return data()[layout::morton_offset(layout_, i, j)];
}

void MortonMatrix::set(int i, int j, double v) {
  STRASSEN_REQUIRE(i >= 0 && i < rows() && j >= 0 && j < cols(),
                   "element index out of range");
  data()[layout::morton_offset(layout_, i, j)] = v;
}

void MortonMatrix::to_colmajor(MatrixView<double> dst, double alpha,
                               double beta) const {
  STRASSEN_REQUIRE(dst.rows == rows() && dst.cols == cols(),
                   "destination shape mismatch");
  layout::from_morton(layout_, data(), alpha, dst.data, dst.ld, beta);
}

std::size_t multiply_workspace_bytes(const MortonProductPlan& plan) {
  return winograd_workspace_bytes(plan.a.tile_rows, plan.a.tile_cols,
                                  plan.b.tile_cols, plan.depth,
                                  sizeof(double));
}

void multiply(const MortonMatrix& A, const MortonMatrix& B, MortonMatrix& C,
              Arena& arena) {
  const auto& la = A.layout();
  const auto& lb = B.layout();
  const auto& lc = C.layout();
  STRASSEN_REQUIRE(la.cols == lb.rows, "inner dimensions disagree");
  STRASSEN_REQUIRE(la.depth == lb.depth && la.depth == lc.depth,
                   "operand layouts must share the recursion depth");
  STRASSEN_REQUIRE(la.tile_cols == lb.tile_rows,
                   "operand layouts must agree on the k-dimension tile");
  STRASSEN_REQUIRE(lc.rows == la.rows && lc.cols == lb.cols &&
                       lc.tile_rows == la.tile_rows &&
                       lc.tile_cols == lb.tile_cols,
                   "result layout incompatible with operands");
  RawMem raw;
  Arena::Frame frame(arena);
  winograd_recurse(raw, C.data(), A.data(), B.data(), la.tile_rows,
                   la.tile_cols, lb.tile_cols, la.depth, arena);
}

void multiply(const MortonMatrix& A, const MortonMatrix& B, MortonMatrix& C) {
  Arena arena(winograd_workspace_bytes(A.layout().tile_rows,
                                       A.layout().tile_cols,
                                       B.layout().tile_cols, A.layout().depth,
                                       sizeof(double)));
  multiply(A, B, C, arena);
}

}  // namespace strassen::core
