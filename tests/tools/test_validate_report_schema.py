#!/usr/bin/env python3
"""Tests for tools/validate_report_schema.py (stdlib only, ctest-registered).

Feeds the validator conforming strassen.gemm_report.v6 and legacy-v5 reports
and a series of malformed ones (missing key, extra key, retyped value, wrong
enum, bool masquerading as int, version drift) and checks the exit-code
contract: 0 for conforming input, 1 for invalid reports, 2 for usage errors.
"""

import copy
import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOL = (pathlib.Path(__file__).resolve().parents[2] / "tools"
        / "validate_report_schema.py")


def valid_report():
    return {
        "schema": "strassen.gemm_report.v6",
        "call": {"entry": "modgemm", "m": 256, "n": 256, "k": 256},
        "phases": {"wall_s": 0.01, "convert_in_s": 0.001, "compute_s": 0.008,
                   "leaf_s": 0.006, "convert_out_s": 0.001,
                   "conversion_fraction": 0.2},
        "plan": {"direct": False, "split": False, "products": 7,
                 "planned_depth": 1, "schedule": "winograd",
                 "strategy": "morton", "algo": "222", "depth": 1,
                 "tile_m": 128, "tile_k": 128, "tile_n": 128, "padded_m": 256,
                 "padded_k": 256, "padded_n": 256, "pad_elems": 0},
        "workspace": {"requested_bytes": 1 << 20, "peak_bytes": 1 << 20,
                      "saved_bytes": 0, "conversion_saved_bytes": 0,
                      "allocations": 3, "fallback": "none"},
        "kernels": {"active": "avx2", "variant": "kernel8x4",
                    "leaf_calls": 7, "fused_calls": 3,
                    "elementwise_calls": 11},
        "parallel": {"used": False, "threads": 1, "spawn_levels": 0,
                     "tasks": 0, "steals": 0, "task_busy_s": 0.0,
                     "utilization": 0.0, "per_thread_tasks": [0]},
        "batch": {"count": 0, "classes": 0, "plan_cache_hits": 0,
                  "plan_cache_misses": 0, "workspace_acquisitions": 0,
                  "workspace_cold_allocs": 0, "tune_cache": "off"},
    }


def valid_v5_report():
    report = valid_report()
    report["schema"] = "strassen.gemm_report.v5"
    del report["plan"]["algo"]
    return report


class ValidateReportSchemaTest(unittest.TestCase):
    def run_tool(self, *reports, raw=None):
        with tempfile.TemporaryDirectory() as d:
            path = pathlib.Path(d) / "report.jsonl"
            if raw is not None:
                path.write_text(raw)
            else:
                path.write_text(
                    "".join(json.dumps(r) + "\n" for r in reports))
            proc = subprocess.run([sys.executable, str(TOOL), str(path)],
                                  capture_output=True, text=True)
        return proc

    def test_valid_report_passes(self):
        proc = self.run_tool(valid_report())
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_multiple_valid_jsonl_lines_pass(self):
        proc = self.run_tool(valid_report(), valid_report())
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("2 report(s)", proc.stdout)

    def test_missing_key_fails(self):
        report = valid_report()
        del report["parallel"]["steals"]
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("parallel", proc.stdout)

    def test_extra_key_fails(self):
        report = valid_report()
        report["kernels"]["surprise"] = 1
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_retyped_value_fails(self):
        report = valid_report()
        report["plan"]["depth"] = "1"  # string where int is required
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("plan.depth", proc.stdout)

    def test_bool_is_not_an_int(self):
        report = valid_report()
        report["call"]["m"] = True  # bool passes isinstance(int) in Python
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_unknown_enum_value_fails(self):
        report = valid_report()
        report["workspace"]["fallback"] = "wing-it"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_wrong_schema_id_fails(self):
        report = valid_report()
        report["schema"] = "strassen.gemm_report.v2"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_v4_report_is_rejected_loudly(self):
        # A v4 report (no batch section) must fail on the schema id, not
        # silently validate.
        report = valid_report()
        report["schema"] = "strassen.gemm_report.v4"
        del report["batch"]
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("schema", proc.stdout)

    def test_legacy_v5_report_passes(self):
        proc = self.run_tool(valid_v5_report())
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_v5_report_with_plan_algo_is_version_drift(self):
        # A report claiming v5 but shipping the v6 plan.algo key is drift:
        # it must fail on the plan key set, not silently validate.
        report = valid_v5_report()
        report["plan"]["algo"] = "222"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("plan", proc.stdout)

    def test_v6_report_missing_algo_fails(self):
        report = valid_report()
        del report["plan"]["algo"]
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("plan", proc.stdout)

    def test_family_algo_and_fallback_pass(self):
        report = valid_report()
        report["plan"]["algo"] = "323"
        report["workspace"]["fallback"] = "algo-fallback"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_unknown_algo_fails(self):
        report = valid_report()
        report["plan"]["algo"] = "2x2x2"  # not a table name
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("plan.algo", proc.stdout)

    def test_algo_fallback_is_not_a_v5_rung(self):
        report = valid_v5_report()
        report["workspace"]["fallback"] = "algo-fallback"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("workspace.fallback", proc.stdout)

    def test_packfused_strategy_and_savings_pass(self):
        report = valid_report()
        report["plan"]["strategy"] = "packfused"
        report["workspace"]["conversion_saved_bytes"] = 3 << 20
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_unknown_strategy_fails(self):
        report = valid_report()
        report["plan"]["strategy"] = "pack-fused"  # hyphenated: not a name
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("plan.strategy", proc.stdout)

    def test_schedule_swap_fallback_and_lowmem_schedule_pass(self):
        report = valid_report()
        report["workspace"]["fallback"] = "schedule-swap"
        report["workspace"]["saved_bytes"] = 1 << 18
        report["plan"]["schedule"] = "winograd-lowmem"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_unknown_schedule_family_fails(self):
        report = valid_report()
        report["plan"]["schedule"] = "winograd-2temp"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("plan.schedule", proc.stdout)

    def test_one_bad_line_fails_file_with_count(self):
        good, bad = valid_report(), copy.deepcopy(valid_report())
        del bad["phases"]["wall_s"]
        proc = self.run_tool(good, bad)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("1 invalid of 2", proc.stdout)

    def test_batched_entry_and_tune_states_pass(self):
        report = valid_report()
        report["call"]["entry"] = "modgemm_batched"
        report["batch"] = {"count": 32, "classes": 1, "plan_cache_hits": 1,
                          "plan_cache_misses": 0,
                          "workspace_acquisitions": 32,
                          "workspace_cold_allocs": 4, "tune_cache": "warm"}
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_unknown_tune_cache_state_fails(self):
        report = valid_report()
        report["batch"]["tune_cache"] = "lukewarm"
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("batch.tune_cache", proc.stdout)

    def test_missing_batch_section_fails(self):
        report = valid_report()
        del report["batch"]
        proc = self.run_tool(report)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_truncated_json_fails(self):
        proc = self.run_tool(raw='{"schema": "strassen.gemm_report.v5", ')
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_no_arguments_is_usage_error(self):
        proc = subprocess.run([sys.executable, str(TOOL)],
                              capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
