// analysis/schedule_verify.cpp -- diagnostics layer over the constexpr core,
// plus the compile-time proof of the shipped tables.
#include "analysis/schedule_verify.hpp"

#include <sstream>
#include <utility>

namespace strassen::analysis {

// ---- compile-time proof of the shipped schedules --------------------------
// A bad edit to analysis/schedule.hpp stops the library from building; the
// CLI (tools/verify_schedules) and tests re-prove at runtime with readable
// diagnostics.
static_assert(verify_core(kWinograd).violation == Violation::kNone,
              "shipped Winograd schedule failed symbolic verification");
static_assert(verify_core(kWinograd).temp_peak == 3,
              "shipped Winograd schedule must run with exactly 3 live "
              "temporaries (paper section 3.3)");
static_assert(verify_core(kWinograd).products == 7 &&
                  verify_core(kWinograd).linear_ops == 15,
              "shipped Winograd schedule must be 7 products + 15 additions");
static_assert(verify_core(kWinogradFusedL1).violation == Violation::kNone,
              "shipped fused level-1 schedule failed symbolic verification");
static_assert(verify_core(kWinogradFusedL1).temp_peak == 3 &&
                  verify_core(kWinogradFusedL1).products == 7 &&
                  verify_core(kWinogradFusedL1).fused_products == 3 &&
                  verify_core(kWinogradFusedL1).linear_ops == 11,
              "shipped fused level-1 schedule must be 7 products (3 fused) "
              "+ 11 additions with a 3-temporary peak");
static_assert(verify_core(kWinogradLowMem).violation == Violation::kNone,
              "shipped low-memory schedule failed symbolic verification");
static_assert(verify_core(kWinogradLowMem).temp_peak == 2 &&
                  verify_core(kWinogradLowMem).products == 7 &&
                  verify_core(kWinogradLowMem).linear_ops == 15,
              "shipped low-memory schedule must be 7 products + 15 additions "
              "with a 2-temporary peak (Boyer-Dumas-Pernet-Zhou bound)");
static_assert(temp_buffer_count(kWinogradLowMem) == 2,
              "shipped low-memory schedule must occupy exactly 2 arena "
              "buffers (tS/tP share one)");
static_assert(verify_core(kWinogradInPlace).violation == Violation::kNone,
              "shipped in-place schedule failed symbolic verification");
static_assert(verify_core(kWinogradInPlace).temp_peak == 1 &&
                  verify_core(kWinogradInPlace).products == 7 &&
                  verify_core(kWinogradInPlace).linear_ops == 15,
              "shipped in-place schedule must be 7 products + 15 additions "
              "with a single C-shaped temporary");
static_assert(verify_core(kWinogradAccum).violation == Violation::kNone,
              "shipped accumulating schedule failed symbolic verification");
static_assert(verify_core(kWinogradAccum).temp_peak == 3 &&
                  verify_core(kWinogradAccum).products == 7 &&
                  verify_core(kWinogradAccum).linear_ops == 22,
              "shipped accumulating schedule must be 7 products + 22 "
              "additions with a 3-temporary peak");

namespace {

std::string step_label(const Schedule& sched, int i) {
  std::ostringstream os;
  os << "step " << i;
  if (i >= 0 && i < sched.step_count && sched.steps[i].note[0] != '\0')
    os << " (" << sched.steps[i].note << ")";
  return os.str();
}

std::string step_render(const Step& s) {
  std::ostringstream os;
  const char* dst = operand_name(s.dst);
  switch (s.kind) {
    case StepKind::kAdd:
      os << dst << " = " << operand_name(s.a0) << " + " << operand_name(s.a1);
      break;
    case StepKind::kSub:
      os << dst << " = " << operand_name(s.a0) << " - " << operand_name(s.a1);
      break;
    case StepKind::kAddInplace:
      os << dst << " += " << operand_name(s.a0);
      break;
    case StepKind::kSubInplace:
      os << dst << " -= " << operand_name(s.a0);
      break;
    case StepKind::kMul:
      os << dst << " = " << operand_name(s.a0) << " . " << operand_name(s.b0);
      break;
    case StepKind::kMulFusedA:
      os << dst << " = (" << operand_name(s.a0)
         << (s.asign == Sign::kPlus ? " + " : " - ") << operand_name(s.a1)
         << ") . " << operand_name(s.b0);
      break;
    case StepKind::kMulFusedB:
      os << dst << " = " << operand_name(s.a0) << " . ("
         << operand_name(s.b0) << (s.bsign == Sign::kPlus ? " + " : " - ")
         << operand_name(s.b1) << ")";
      break;
    case StepKind::kMulFusedAB:
      os << dst << " = (" << operand_name(s.a0)
         << (s.asign == Sign::kPlus ? " + " : " - ") << operand_name(s.a1)
         << ") . (" << operand_name(s.b0)
         << (s.bsign == Sign::kPlus ? " + " : " - ") << operand_name(s.b1)
         << ")";
      break;
  }
  return os.str();
}

// Forward pass collecting EVERY forward-detectable violation instead of
// stopping at the first one (the constexpr core's behaviour).  Execution
// continues past a violation where the symbolic state still makes sense, so
// one mutation does not drown the report in cascading noise: an undefined
// read contributes zero coefficients, a skipped malformed step leaves its
// destination untouched.
SymState forward_diagnose(const Schedule& sched,
                          std::vector<std::string>& errors,
                          int last_writer[kOperandCount]) {
  SymState st = detail::initial_state(sched.accumulates_c);
  for (int i = 0; i < kOperandCount; ++i) last_writer[i] = -1;
  for (int i = 0; i < sched.step_count; ++i) {
    const Step& s = sched.steps[i];
    Operand bad = Operand::kNone;
    const Violation shape_v = detail::step_shape_check(s, &bad);
    if (shape_v != Violation::kNone) {
      std::ostringstream os;
      os << step_label(sched, i) << ": " << violation_name(shape_v)
         << " on operand " << operand_name(bad) << " in '" << step_render(s)
         << "'";
      errors.push_back(os.str());
      continue;  // malformed: cannot execute symbolically
    }
    if (is_input(s.dst) && !sched.overwrites_inputs) {
      std::ostringstream os;
      os << step_label(sched, i) << ": writes input quadrant "
         << operand_name(s.dst) << " ('" << step_render(s)
         << "'); A/B quadrants are read-only in a table not marked "
            "overwrites_inputs";
      errors.push_back(os.str());
      continue;
    }
    if (is_fused(s.kind) && !sched.uses_fused_kernels) {
      std::ostringstream os;
      os << step_label(sched, i)
         << ": fused product in a table not marked uses_fused_kernels";
      errors.push_back(os.str());
    }
    const detail::ReadSet reads = detail::step_reads(s);
    if (is_product(s.kind)) {
      for (int k = 0; k < reads.count; ++k) {
        if (reads.ops[k] == s.dst) {
          std::ostringstream os;
          os << step_label(sched, i) << ": product destination "
             << operand_name(s.dst)
             << " aliases a source operand; recursive products require "
                "disjoint storage";
          errors.push_back(os.str());
        }
      }
    }
    for (int k = 0; k < reads.count; ++k) {
      const Operand op = reads.ops[k];
      if (is_temp(op) && !detail::temp_declared(sched, op)) {
        std::ostringstream os;
        os << step_label(sched, i) << ": temporary " << operand_name(op)
           << " is not in the schedule's declared temporary list";
        errors.push_back(os.str());
      }
      if (!st.slot[static_cast<int>(op)].defined) {
        std::ostringstream os;
        os << step_label(sched, i) << ": reads " << operand_name(op)
           << " before any step defined it ('" << step_render(s)
           << "'); a reordering overwrote or delayed the value it expects";
        errors.push_back(os.str());
      }
    }
    if (is_temp(s.dst) && !detail::temp_declared(sched, s.dst)) {
      std::ostringstream os;
      os << step_label(sched, i) << ": temporary " << operand_name(s.dst)
         << " is not in the schedule's declared temporary list";
      errors.push_back(os.str());
    }
    detail::sym_apply(s, st);
    last_writer[static_cast<int>(s.dst)] = i;
  }
  return st;
}

// Renders a C-shaped slot's initial-C contribution, e.g. "+C11(initial)".
std::string cin_to_string(const Lin& l) {
  std::ostringstream os;
  bool any = false;
  for (int i = 0; i < 4; ++i) {
    const int k = l.c[i];
    if (k == 0) continue;
    if (any) os << " ";
    os << (k > 0 ? "+" : "-");
    if (k != 1 && k != -1) os << (k > 0 ? k : -k) << "*";
    os << operand_name(
              static_cast<Operand>(static_cast<int>(Operand::kC11) + i))
       << "(initial)";
    any = true;
  }
  if (!any) os << "0";
  return os.str();
}

}  // namespace

std::string bilinear_to_string(const Bilinear& b) {
  std::ostringstream os;
  bool any = false;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      const int k = b.c[i][j];
      if (k == 0) continue;
      if (any) os << " ";
      os << (k > 0 ? "+" : "-");
      if (k != 1 && k != -1) os << (k > 0 ? k : -k) << "*";
      os << operand_name(static_cast<Operand>(
                static_cast<int>(Operand::kA11) + i))
         << "."
         << operand_name(static_cast<Operand>(
                static_cast<int>(Operand::kB11) + j));
      any = true;
    }
  }
  if (!any) os << "0";
  return os.str();
}

VerifyResult verify_schedule(const Schedule& sched) {
  VerifyResult out;
  if (sched.step_count <= 0 || sched.steps == nullptr) {
    out.errors.push_back("schedule has no steps");
    return out;
  }
  int last_writer[kOperandCount];
  const SymState st = forward_diagnose(sched, out.errors, last_writer);

  {
    Operand dead = Operand::kNone;
    // Report every dead store, not just the first: re-scan from each index.
    for (int from = 0; from < sched.step_count;) {
      Schedule tail = sched;
      tail.steps = sched.steps + from;
      tail.step_count = sched.step_count - from;
      const int i = detail::first_dead_store(tail, &dead);
      if (i < 0) break;
      const int abs_i = from + i;
      std::ostringstream os;
      os << step_label(sched, abs_i) << ": value written to "
         << operand_name(dead)
         << " is never read before being overwritten (dead store -- a later "
            "step clobbers a value the schedule still owed a use)";
      out.errors.push_back(os.str());
      from = abs_i + 1;
    }
  }

  for (Operand c :
       {Operand::kC11, Operand::kC12, Operand::kC21, Operand::kC22}) {
    const SymValue& v = st.slot[static_cast<int>(c)];
    if (!v.defined) {
      out.errors.push_back(std::string("output ") + operand_name(c) +
                           " is never written");
      continue;
    }
    const Bilinear want = c_target(c);
    const int w = last_writer[static_cast<int>(c)];
    if (!(v.bil == want)) {
      std::ostringstream os;
      os << "product identity fails for " << operand_name(c)
         << " (last written at " << step_label(sched, w) << "): computed "
         << bilinear_to_string(v.bil) << ", expected "
         << bilinear_to_string(want);
      out.errors.push_back(os.str());
    }
    Lin want_cin{};
    if (sched.accumulates_c)
      want_cin.c[static_cast<int>(c) - static_cast<int>(Operand::kC11)] = 1;
    if (!(v.cin == want_cin)) {
      std::ostringstream os;
      os << "initial-value identity fails for " << operand_name(c)
         << " (last written at " << step_label(sched, w) << "): carries "
         << cin_to_string(v.cin) << ", expected " << cin_to_string(want_cin)
         << (sched.accumulates_c
                 ? " -- an accumulating table must add onto every C "
                   "quadrant's initial value exactly once"
                 : " -- an overwriting table must not leak initial C values");
      out.errors.push_back(os.str());
    }
  }

  int peak_step = -1;
  out.temp_peak = detail::live_temp_peak(sched, &peak_step);
  if (out.temp_peak != sched.declared_temp_peak) {
    std::ostringstream os;
    os << "live-temporary peak is " << out.temp_peak << " (first reached at "
       << step_label(sched, peak_step) << ") but the schedule declares "
       << sched.declared_temp_peak;
    out.errors.push_back(os.str());
  }

  {
    int bstep = -1;
    Operand bop = Operand::kNone;
    const Violation bv = detail::check_temp_buffers(sched, &bstep, &bop);
    if (bv == Violation::kBadTempBuffer) {
      std::ostringstream os;
      os << "temp_buffer maps " << operand_name(bop)
         << " to a buffer id outside [0, " << sched.temp_count << ")";
      out.errors.push_back(os.str());
    } else if (bv == Violation::kSharedTempOverlap) {
      std::ostringstream os;
      os << step_label(sched, bstep) << ": temporary " << operand_name(bop)
         << " shares an arena buffer with another temporary that is still "
            "live here -- shared-buffer temps must have disjoint live ranges";
      out.errors.push_back(os.str());
    }
  }

  for (int i = 0; i < sched.step_count; ++i) {
    if (is_product(sched.steps[i].kind)) {
      ++out.products;
      if (is_fused(sched.steps[i].kind)) ++out.fused_products;
    } else {
      ++out.linear_ops;
    }
  }
  out.ok = out.errors.empty();
  return out;
}

namespace {

// Products of a schedule in execution order: (note, rendered step, bilinear
// form each computes), by symbolic forward execution.
struct ProductTerm {
  int step;
  std::string note;
  std::string rendered;
  Bilinear bil;
};

std::vector<ProductTerm> collect_products(const Schedule& sched) {
  std::vector<ProductTerm> out;
  SymState st = detail::initial_state();
  for (int i = 0; i < sched.step_count; ++i) {
    const Step& s = sched.steps[i];
    Operand bad = Operand::kNone;
    if (detail::step_shape_check(s, &bad) != Violation::kNone) continue;
    detail::sym_apply(s, st);
    if (is_product(s.kind))
      out.push_back(ProductTerm{i, s.note, step_render(s),
                                st.slot[static_cast<int>(s.dst)].bil});
  }
  return out;
}

}  // namespace

std::vector<std::string> check_fused_products(const Schedule& fused,
                                              const Schedule& reference) {
  std::vector<std::string> errors;
  const std::vector<ProductTerm> f = collect_products(fused);
  const std::vector<ProductTerm> r = collect_products(reference);
  for (const ProductTerm& p : f) {
    bool found = false;
    for (const ProductTerm& q : r) {
      if (p.bil == q.bil) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::ostringstream os;
      os << fused.name << " step " << p.step << " (" << p.note << "): product '"
         << p.rendered << "' computes " << bilinear_to_string(p.bil)
         << ", which no product of " << reference.name
         << " computes -- the fused entry is not a re-association of a "
            "materialized product";
      errors.push_back(os.str());
    }
  }
  return errors;
}

}  // namespace strassen::analysis
