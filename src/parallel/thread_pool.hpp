// thread_pool.hpp -- a small fixed-size worker pool for task parallelism.
//
// The paper's future work asks for further performance on top of the
// memory-friendly algorithm; the natural next step on a multicore host is to
// run the seven independent Strassen-Winograd products concurrently (they
// only synchronize at the U-chain combination).  This pool provides exactly
// the primitives that needs: submit() for fire-and-forget tasks and
// TaskGroup for fork/join.
//
// Deliberately simple: one mutex-protected FIFO, N worker threads, no work
// stealing -- the library spawns a handful of coarse tasks (7 or 49 products,
// or tile-range chunks of a conversion), so queue contention is negligible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace strassen::parallel {

class ThreadPool {
 public:
  // Spawns `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task.  Tasks must not throw (enforced by wrapping; a throwing
  // task terminates, as an escaped exception on a worker thread would).
  void submit(std::function<void()> task);

  // Pops one queued task and runs it on the CALLING thread; returns false if
  // the queue was empty.  TaskGroup::wait() uses this to "help" instead of
  // blocking, which makes nested fork/join (spawn_levels >= 2) deadlock-free
  // even on a single-thread pool.
  bool try_run_one();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

// Fork/join helper: run() submits to the pool (or runs inline if no pool),
// wait() blocks until every task launched through this group finished.
class TaskGroup {
 public:
  // pool == nullptr makes run() execute inline -- callers can treat the
  // serial and parallel paths uniformly.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);
  void wait();

 private:
  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
};

// Splits [begin, end) into roughly pool-width chunks and applies
// fn(chunk_begin, chunk_end) in parallel.  Runs inline when pool is null or
// single-threaded or when the range is smaller than min_grain.
void parallel_for(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                  std::int64_t min_grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace strassen::parallel
