// tools/verify_schedules -- prove every shipped schedule table correct.
//
// For each table in analysis::kShippedSchedules this re-runs the symbolic
// verifier with full diagnostics (the library build already static_asserts
// the constexpr core, so by the time this binary exists the tables have one
// compile-time proof behind them; this CLI is the human-readable re-proof
// CI archives, and the gate the default build runs).  Fused tables are
// additionally checked product-by-product against the materialized
// reference: every fused entry must compute the exact bilinear form of a
// materialized product.
//
// Exit status: 0 when every schedule verifies, 1 otherwise.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/algo_family.hpp"
#include "analysis/algo_verify.hpp"
#include "analysis/schedule.hpp"
#include "analysis/schedule_verify.hpp"

int main() {
  using namespace strassen::analysis;
  bool all_ok = true;

  for (int i = 0; i < kShippedScheduleCount; ++i) {
    const Schedule& sched = *kShippedSchedules[i];
    const VerifyResult r = verify_schedule(sched);
    std::string attrs;
    if (temp_buffer_count(sched) < sched.temp_count)
      attrs += " shared-buffers=" + std::to_string(temp_buffer_count(sched));
    if (sched.overwrites_inputs) attrs += " overwrites-inputs";
    if (sched.accumulates_c) attrs += " accumulates-c";
    std::printf("schedule %-20s steps=%2d products=%d (fused %d) "
                "additions=%2d temp-peak=%d (declared %d)%s  %s\n",
                sched.name, sched.step_count, r.products, r.fused_products,
                r.linear_ops, r.temp_peak, sched.declared_temp_peak,
                attrs.c_str(), r.ok ? "OK" : "FAIL");
    for (const std::string& e : r.errors)
      std::printf("  error: %s\n", e.c_str());
    if (!r.ok) all_ok = false;

    if (sched.uses_fused_kernels) {
      const std::vector<std::string> fe =
          check_fused_products(sched, kWinograd);
      if (fe.empty()) {
        std::printf("  fused products: all algebraically identical to %s "
                    "products\n",
                    kWinograd.name);
      } else {
        all_ok = false;
        for (const std::string& e : fe)
          std::printf("  error: %s\n", e.c_str());
      }
    }
  }

  // The <m,k,n> family tables: the same discipline as the schedules -- the
  // constexpr core already static_asserted at build, this re-runs the
  // monomial-level proof with human-readable diagnostics.
  int family_count = 0;
  for (const AlgoFamily f : kShippedAlgoFamilies) {
    const FamilyTable& t = family_table(f);
    const std::vector<std::string> errors = verify_family(t);
    const FamilyCoreResult r = verify_family_core(t);
    std::printf("family   %-20s <%d,%d,%d> rank=%2d (trivial %2d) "
                "additions=%2d temp-peak=%d (declared %d)  %s\n",
                t.name, t.bm, t.bk, t.bn, t.rank, t.trivial_rank(),
                r.linear_ops, r.temp_peak, t.declared_temp_peak,
                errors.empty() ? "OK" : "FAIL");
    for (const std::string& e : errors)
      std::printf("  error: %s\n", e.c_str());
    if (!errors.empty()) all_ok = false;
    ++family_count;
  }

  if (!all_ok) {
    std::printf("verify_schedules: FAILED\n");
    return 1;
  }
  std::printf("verify_schedules: all %d schedule(s) and %d family table(s) "
              "verified\n",
              kShippedScheduleCount, family_count);
  return 0;
}
