#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace strassen {

namespace {

bool usable(double v) { return std::isfinite(v); }

}  // namespace

std::string render_plot(const std::vector<double>& x,
                        const std::vector<PlotSeries>& series,
                        const PlotOptions& opt) {
  STRASSEN_REQUIRE(opt.width >= 8 && opt.height >= 3, "plot area too small");
  STRASSEN_REQUIRE(!x.empty(), "empty x axis");
  for (const auto& s : series)
    STRASSEN_REQUIRE(s.y.size() == x.size(),
                     "series length must match the x axis");

  // Determine the y range.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  if (opt.fix_range) {
    lo = opt.y_min;
    hi = opt.y_max;
  } else {
    for (const auto& s : series)
      for (double v : s.y)
        if (usable(v)) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
    if (usable(opt.reference)) {
      lo = std::min(lo, opt.reference);
      hi = std::max(hi, opt.reference);
    }
    if (!(lo < hi)) {  // flat or empty data: make a degenerate range usable
      if (!usable(lo)) {
        lo = 0.0;
        hi = 1.0;
      } else {
        hi = lo + 1.0;
        lo = lo - 1.0;
      }
    }
    const double margin = 0.05 * (hi - lo);
    lo -= margin;
    hi += margin;
  }

  const double x0 = x.front();
  const double x1 = x.back();
  const double xspan = x1 > x0 ? x1 - x0 : 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(opt.height),
                                std::string(static_cast<std::size_t>(opt.width),
                                            ' '));
  auto row_of = [&](double v) {
    const double t = (v - lo) / (hi - lo);
    int r = opt.height - 1 - static_cast<int>(std::lround(t * (opt.height - 1)));
    return std::clamp(r, 0, opt.height - 1);
  };
  auto col_of = [&](double v) {
    const double t = (v - x0) / xspan;
    return std::clamp(static_cast<int>(std::lround(t * (opt.width - 1))), 0,
                      opt.width - 1);
  };

  if (usable(opt.reference) && opt.reference >= lo && opt.reference <= hi) {
    const int r = row_of(opt.reference);
    for (int c = 0; c < opt.width; ++c) grid[r][c] = '-';
  }
  for (const auto& s : series) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (!usable(s.y[i])) continue;
      if (opt.fix_range && (s.y[i] < lo || s.y[i] > hi)) continue;
      grid[row_of(s.y[i])][static_cast<std::size_t>(col_of(x[i]))] = s.marker;
    }
  }

  std::ostringstream os;
  char label[32];
  for (int r = 0; r < opt.height; ++r) {
    if (r == 0) {
      std::snprintf(label, sizeof(label), "%9.3g |", hi);
    } else if (r == opt.height - 1) {
      std::snprintf(label, sizeof(label), "%9.3g |", lo);
    } else {
      std::snprintf(label, sizeof(label), "%9s |", "");
    }
    os << label << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << "          +" << std::string(static_cast<std::size_t>(opt.width), '-')
     << '\n';
  std::snprintf(label, sizeof(label), "%-12.6g", x0);
  os << "           " << label;
  const int pad = opt.width - 24;
  if (pad > 0) os << std::string(static_cast<std::size_t>(pad), ' ');
  std::snprintf(label, sizeof(label), "%12.6g", x1);
  os << label << '\n';
  os << "           legend:";
  for (const auto& s : series) os << "  " << s.marker << " = " << s.name;
  os << '\n';
  return os.str();
}

}  // namespace strassen
