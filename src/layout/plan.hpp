// plan.hpp -- dynamic selection of the recursion truncation point.
//
// The paper's central planning idea (S3.4): the truncation tile size T and
// the recursion depth d jointly determine the padded size n' = T * 2^d >= n.
// Because Morton layout makes leaf performance insensitive to T across a
// range (16..64 in the paper, Fig. 2/3), T can be chosen PER PROBLEM SIZE to
// minimize padding -- bounding the pad by a small constant (worst case 15 for
// the paper's range) where a fixed T pads by up to ~n.
//
// Worked examples from the paper that this module must (and does) reproduce:
//   n = 513          -> T = 33, d = 4, n' = 528 (pad 15)
//   n in [505, 512]  -> T = 32, d = 4, n' = 512
//   n = 513, fixed T=32 -> n' = 1024 (the pathological case motivating all
//                          of this)
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/algo_family.hpp"
#include "analysis/schedule.hpp"

namespace strassen::layout {

// How a planned Strassen product executes (strategy selection lives in the
// planner because it is a per-plan property, like the schedule family):
//
//   kMorton     stage op(A), op(B) into zero-padded Morton buffers, recurse
//               over contiguous tiles, convert back with the alpha/beta merge
//               (the paper's design; conversion costs 5-15% of the call,
//               Fig. 7).
//   kPackFused  run the same schedule tables directly from the caller's
//               column-major storage: operand sums, transposes and boundary
//               zero padding fold into leaf packing (blas/pack.hpp), and the
//               schedule's output combinations accumulate C +-= P in place --
//               no Morton buffers exist at all (Huang et al., BLIS-style).
//   kAuto       (options/env only) defer: per-call pin, then the
//               STRASSEN_STRATEGY env override, then the planner heuristic
//               (layout::choose_exec_strategy).
//
// Both strategies execute the same verified schedules with the same leaf
// kernels and are bit-identical for all alpha/beta (docs/DESIGN.md).
enum class ExecStrategy : std::uint8_t {
  kAuto = 0,
  kMorton,
  kPackFused,
};

constexpr const char* strategy_name(ExecStrategy s) {
  switch (s) {
    case ExecStrategy::kAuto: return "auto";
    case ExecStrategy::kMorton: return "morton";
    case ExecStrategy::kPackFused: return "packfused";
  }
  return "unknown";
}

// Tuning knobs for the planner.  Defaults are the paper's values.
struct TileOptions {
  int min_tile = 16;        // smallest leaf tile considered
  int max_tile = 64;        // largest leaf tile considered
  int preferred_tile = 32;  // tie-break target (fits an 8KB direct-mapped L1)
  int direct_threshold = 64;  // problems with min-dimension <= this skip
                              // Strassen entirely (depth 0)
  // Conflict-aware selection (this library's completion of the paper's S4.2
  // future work).  The paper found that when sibling Morton quadrants are
  // separated by a multiple of the cache size -- tile 32 with 8-byte
  // elements puts the NW and SW quadrants of a 64x64 block exactly 16KB
  // apart -- they thrash a direct-mapped cache, causing the elevated miss
  // ratios at n in [505,512] (Fig. 9).  When avoid_conflict_cache_bytes is
  // nonzero, the planner treats tiles whose sibling-quadrant separation
  // (2 * T^2 * elem bytes) is a multiple of that cache size as
  // last-resort choices, eliminating the alignment at the cost of a few
  // extra pad elements.  0 (the default, and the paper's behaviour)
  // disables the heuristic.
  std::size_t avoid_conflict_cache_bytes = 0;
  std::size_t conflict_elem_bytes = 8;  // element size the heuristic assumes

  // Capacity-aware selection: the paper's PRIMARY condition on T (S3.3) is
  // that tiles fit the first-level cache; minimizing padding alone can pick
  // e.g. T = 63 (three-tile working set 3*63^2*8 = 93KB) where a deeper
  // recursion with T = 32 (24KB) would stream from L1.  When nonzero, tiles
  // whose three-operand working set exceeds this many bytes are last-resort
  // choices, like conflicting tiles.  0 (default) keeps the paper's pure
  // padding objective.
  std::size_t max_tile_working_set_bytes = 0;

  // Strategy heuristic knob (choose_exec_strategy): plans at most this deep
  // prefer the pack-fused strategy when the caller pins nothing -- shallow
  // recursions amortize the Morton conversion over few products, so skipping
  // it wins.  Deeper square recursions reuse each converted tile across many
  // products and keep the Morton strategy.  The autotuner's strategy
  // crossover probe (tune/autotune.hpp) measures and overrides this per
  // machine.
  int packfused_max_depth = 2;

  // True if a leaf tile of side `tile` aligns sibling quadrants at a
  // multiple of the configured cache size at the leaf level or within the
  // next two levels of the quadtree (separations scale by 4x per level, so
  // an alignment can first appear above the leaves -- e.g. tile 16 is clean
  // at the leaf but its 2x2 groups land 16KB apart).
  bool tile_conflicts(int tile) const {
    if (avoid_conflict_cache_bytes == 0) return false;
    std::size_t sep =
        2 * static_cast<std::size_t>(tile) * tile * conflict_elem_bytes;
    for (int level = 0; level < 3; ++level, sep *= 4) {
      if (sep % avoid_conflict_cache_bytes == 0) return true;
    }
    return false;
  }

  // True if the leaf multiply's three-tile working set overflows the
  // configured cache budget.
  bool tile_oversized(int tile) const {
    if (max_tile_working_set_bytes == 0) return false;
    return 3 * static_cast<std::size_t>(tile) * tile * conflict_elem_bytes >
           max_tile_working_set_bytes;
  }

  // Combined penalty used by the planner's comparators.
  int tile_penalty(int tile) const {
    return static_cast<int>(tile_conflicts(tile)) +
           static_cast<int>(tile_oversized(tile));
  }
};

// Plan for one matrix dimension.
struct DimPlan {
  int n = 0;       // logical size
  int tile = 0;    // leaf tile extent in this dimension (T)
  int depth = 0;   // recursion depth (d)
  int padded = 0;  // n' = tile << depth
  int pad() const { return padded - n; }
};

// Chooses (tile, depth) minimizing padding over all feasible depths, with the
// paper's range [opt.min_tile, opt.max_tile].  Ties are broken toward the
// tile closest to opt.preferred_tile, then toward the larger tile.
// For n <= opt.direct_threshold the result has depth 0 and tile n (no pad).
DimPlan choose_dim(int n, const TileOptions& opt = {});

// Same minimization but with the recursion depth fixed (used to force the
// three dimensions of a product onto a common depth).  Returns a plan with
// tile == 0 if no tile in range can cover n at this depth.
DimPlan choose_dim_at_depth(int n, int depth, const TileOptions& opt = {});

// The static-padding strawman: fixed tile size, depth grows until the padded
// size covers n.  This is what Fig. 2's "fixed T = 32" line plots.
DimPlan fixed_tile_dim(int n, int tile);

// Plan for a full (possibly rectangular) product C(m x n) = A(m x k) B(k x n).
// All three dimensions share one recursion depth; each dimension gets its own
// tile extent (paper S3.5).
struct GemmPlan {
  bool direct = false;  // true: skip Strassen, use conventional gemm
  bool feasible = true; // false: dimensions too disparate; caller must split
  int depth = 0;
  // Schedule family the recursion executes (analysis/schedule.hpp).  The
  // planner default is the 3-temporary paper schedule; the degradation
  // ladder (core/modgemm.hpp) swaps to the low-memory families before
  // reducing depth when max_workspace_bytes bites, and
  // ModgemmOptions::schedule / STRASSEN_SCHEDULE pin one explicitly.
  analysis::ScheduleFamily schedule = analysis::ScheduleFamily::kWinograd;
  // Execution strategy the product runs (never kAuto in an executed plan:
  // core/modgemm.hpp resolves pin -> STRASSEN_STRATEGY -> the
  // choose_exec_strategy heuristic before dispatch).  Traced/counted memory
  // models and non-Strassen plans always execute kMorton.
  ExecStrategy strategy = ExecStrategy::kMorton;
  // <m,k,n> family the call's TOP level runs (analysis/algo_family.hpp).
  // k222 (the default) is the plain Winograd quadrant recursion this plan
  // describes; any other value means one level of that coefficient table
  // runs first (core/family.hpp) and this plan's tile/depth fields describe
  // nothing -- the sub-products plan themselves.  Never kAuto in an executed
  // plan: core/modgemm.hpp resolves pin -> STRASSEN_ALGO -> choose_algo.
  analysis::AlgoFamily algo = analysis::AlgoFamily::k222;
  DimPlan m, k, n;
  // Total padded elements across the three operands (planner's objective).
  long long padded_elems() const;
};

// Plans a single Strassen-Winograd product.  feasible == false signals a
// highly rectangular problem (paper S3.5) that must go through
// layout/split.hpp first.
GemmPlan plan_gemm(int m, int k, int n, const TileOptions& opt = {});

// All depths at which a dimension of size n has a feasible tile in range.
std::vector<int> feasible_depths(int n, const TileOptions& opt = {});

// The planner's strategy heuristic, consulted when neither the per-call pin
// nor STRASSEN_STRATEGY decides (ExecStrategy::kAuto).  Pack-fused wins for
// the shapes where Morton conversion is pure overhead:
//
//   * one-shot / shallow plans (depth <= opt.packfused_max_depth): few
//     recursive products amortize the three conversions poorly, and
//   * highly rectangular problems (max dim >= 2x min dim): the split path
//     runs many small sub-products, each of which would pay its own
//     conversion round trip.
//
// Deep square recursions keep kMorton: each converted tile is reused across
// many products, which is exactly the case the paper's layout optimizes.
// Direct and infeasible plans are always kMorton (there is nothing to fuse).
ExecStrategy choose_exec_strategy(const GemmPlan& plan, int m, int k, int n,
                                  const TileOptions& opt = {});

// Modeled cost of one product under the <2,2,2> planner, in flops: a direct
// plan costs the conventional 2mkn, a feasible plan 2 * 7^d * padded-volume
// / 8^d, and an infeasible (split-path) shape is priced at the conventional
// cost -- the split runs mostly-direct sub-products and pays per-chunk
// staging, so crediting it with Strassen savings would bias choose_algo
// against the family tables on exactly the shapes they exist for.
double modeled_flops(int m, int k, int n, const TileOptions& opt = {});

// The planner's algorithm-family heuristic, consulted when neither the
// per-call pin nor STRASSEN_ALGO decides (AlgoFamily::kAuto).  For each
// shipped table it prices one level of the family -- rank sub-products of
// the ceil-partitioned shape, each modeled by the <2,2,2> planner -- plus a
// staging-bandwidth term, and switches away from k222 only on a clear
// modeled win (>= 5%) with all partitions above the direct threshold.  Deep
// square problems always price best under k222 (the <3,3,3> per-level ratio
// 23/27 never clears the margin against 7/8 without a padding advantage),
// which is what keeps the default path bit-identical to the seed; the
// families win on shapes <2,2,2> handles badly -- odd sizes that pad
// heavily at every feasible depth, and rectangles whose aspect matches a
// table's block grid (384x256x384 partitions exactly under <3,2,3>).
analysis::AlgoFamily choose_algo(int m, int k, int n,
                                 const TileOptions& opt = {});

}  // namespace strassen::layout
