#include "parallel/work_deque.hpp"

#include <utility>

namespace strassen::parallel {

void WorkDeque::push_bottom(PoolTask task) {
  std::lock_guard<std::mutex> lock(mutex_);
  tasks_.push_back(std::move(task));
}

bool WorkDeque::pop_bottom(PoolTask& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.back());
  tasks_.pop_back();
  return true;
}

bool WorkDeque::steal_top(PoolTask& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return false;
  out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

std::size_t WorkDeque::steal_top_half(std::vector<PoolTask>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = (tasks_.size() + 1) / 2;
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(tasks_.front()));
    tasks_.pop_front();
  }
  return take;
}

std::size_t WorkDeque::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

}  // namespace strassen::parallel
