// fault_injection.hpp -- counted OOM injection for resilience testing.
//
// Every aligned allocation in the library (each AlignedBuffer, and therefore
// each Arena and every Morton buffer or recursion workspace) consults a
// pluggable gate before touching the system allocator.  FaultInjector
// installs a counting gate for its lifetime: it numbers each allocation the
// code under test attempts and refuses the chosen ones, making AlignedBuffer
// throw std::bad_alloc -- exactly what a real out-of-memory condition looks
// like to the library.  Sweeping the failure index over every allocation
// site proves the degradation ladder recovers (or rejects cleanly) no matter
// WHICH allocation dies, not just the first.
//
// Scope: only the library's own allocations are gated; the global operator
// new and malloc are untouched, so the test harness itself keeps working.
// The counter is atomic -- the parallel driver allocates from pool workers
// concurrently.
#pragma once

#include <cstdint>

namespace strassen::testing {

enum class FaultMode {
  kCountOnly,  // never fail; just number the allocation sites
  kFailOnce,   // fail exactly the fail_at-th allocation (1-based), a
               // transient pressure spike
  kFailFrom,   // fail the fail_at-th and every later allocation, a hard
               // memory ceiling
};

// RAII: installs the gate on construction, restores the default on
// destruction.  At most one injector may be active at a time.
class FaultInjector {
 public:
  explicit FaultInjector(FaultMode mode = FaultMode::kCountOnly,
                         std::uint64_t fail_at = 0);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Allocations attempted (counted) since construction.
  std::uint64_t allocations() const;
  // Allocations this injector refused.
  std::uint64_t failures() const;
};

}  // namespace strassen::testing
