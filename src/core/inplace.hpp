// inplace.hpp -- memory-minimal (Kreczmar-style) Strassen-Winograd.
//
// The paper's related work (S5.1) cites Kreczmar's observation that
// Strassen's algorithm can run with essentially no auxiliary storage if it
// is allowed to OVERWRITE its input arguments, and dismisses it for library
// use ("we cannot assume that the input matrices can be overwritten").
// For applications that CAN sacrifice their operands -- the matrices are
// temporaries anyway, or memory is the binding constraint -- this module
// provides that variant over the same Morton machinery: C = A.B with ZERO
// workspace, destroying A and B.
//
// The schedule (derived for this library; validated exactly by the tests):
// every quadrant of A, B and C serves as storage; each of the seven
// recursive products destroys its two operands, which the ordering below
// makes legal -- an operand's product is always its last use.  Writing
// quadrants of one matrix into another requires all quadrants to share a
// shape, so this variant is restricted to SQUARE tiles (tm == tk == tn);
// square inputs always satisfy this.
//
//   step                         storage after the step
//   c1 = T1 = B12 - B11
//   c2 = T2 = B22 - T1
//   c3 = T3 = B22 - B12          (B12 now dead)
//   b2 = S3 = A11 - A21
//   c4 = M7 = P(b2, c3)          destroys S3, T3 -> b2, c3 free
//   c3 = S1 = A21 + A22          (A21 dead -> a3 free)
//   a3 = S2 = S1 - A11
//   b2 = M5 = P(c3, c1)          destroys S1, T1 -> c3, c1 free
//   c1 = M1 = P(a1, b1)          destroys A11, B11 -> a1, b1 free
//   c3 = S4 = A12 - S2
//   a1 = -T4 = T2 - B21
//   b1 = M6 = P(a3, c2)          destroys S2, T2 -> a3, c2 free
//   a3 = M2 = P(a2, b3)          destroys A12, B21 -> a2, b3 free
//   a2 = M3 = P(c3, b4)          destroys S4, B22 -> c3, b4 free
//   b3 = M4 = P(a4, a1)          destroys A22, -T4 -> a4, a1 free
//   c2 = U2 = M1 + M6
//   c1 = C11 = M1 + M2           (final)
//   c3 = U3 = U2 + M7
//   c2 = U4 = U2 + M5
//   c2 = C12 = U4 + M3           (final)
//   c4 = C22 = U3 + M5           (final)
//   c3 = C21 = U3 - M4           (final)
//
// (a1..a4, b1..b4, c1..c4 are the Morton quadrants of A, B, C; P() is the
// recursive product, which applies the same schedule one level down.)
#pragma once

#include "blas/kernels.hpp"
#include "blas/level1.hpp"
#include "common/check.hpp"
#include "common/memmodel.hpp"
#include "core/morton_matrix.hpp"

namespace strassen::core {

// C = A.B over square-tiled Morton blocks of equal shape; A and B are
// DESTROYED.  No workspace of any kind is allocated.
template <class MM, class T>
void winograd_inplace_recurse(MM& mm, T* C, T* A, T* B, int tile, int depth) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tile, tile, tile, A, tile, B, tile, C, tile,
                    blas::LeafMode::Overwrite);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t q = static_cast<std::size_t>(tile) * tile
                        << (2 * static_cast<std::size_t>(d1));
  T* a1 = A;
  T* a2 = A + q;
  T* a3 = A + 2 * q;
  T* a4 = A + 3 * q;
  T* b1 = B;
  T* b2 = B + q;
  T* b3 = B + 2 * q;
  T* b4 = B + 3 * q;
  T* c1 = C;
  T* c2 = C + q;
  T* c3 = C + 2 * q;
  T* c4 = C + 3 * q;

  auto mul = [&](T* dst, T* x, T* y) {
    winograd_inplace_recurse(mm, dst, x, y, tile, d1);
  };

  blas::vsub(mm, q, c1, b2, b1);  // T1
  blas::vsub(mm, q, c2, b4, c1);  // T2
  blas::vsub(mm, q, c3, b4, b2);  // T3
  blas::vsub(mm, q, b2, a1, a3);  // S3
  mul(c4, b2, c3);                // M7 (kills S3, T3)
  blas::vadd(mm, q, c3, a3, a4);  // S1 (A21 dead)
  blas::vsub(mm, q, a3, c3, a1);  // S2
  mul(b2, c3, c1);                // M5 (kills S1, T1)
  mul(c1, a1, b1);                // M1 (kills A11, B11)
  blas::vsub(mm, q, c3, a2, a3);  // S4
  blas::vsub(mm, q, a1, c2, b3);  // -T4 = T2 - B21
  mul(b1, a3, c2);                // M6 (kills S2, T2)
  mul(a3, a2, b3);                // M2 (kills A12, B21)
  mul(a2, c3, b4);                // M3 (kills S4, B22)
  mul(b3, a4, a1);                // M4 (kills A22, -T4)
  blas::vadd(mm, q, c2, c1, b1);  // U2 = M1 + M6
  blas::vadd_inplace(mm, q, c1, a3);  // final C11 = M1 + M2
  blas::vadd(mm, q, c3, c2, c4);  // U3 = U2 + M7
  blas::vadd_inplace(mm, q, c2, b2);  // U4 = U2 + M5
  blas::vadd_inplace(mm, q, c2, a2);  // final C12 = U4 + M3
  blas::vadd(mm, q, c4, c3, b2);  // final C22 = U3 + M5
  blas::vsub_inplace(mm, q, c3, b3);  // final C21 = U3 - M4
}

// Destructive Morton-native multiply: C = A.B, consuming A and B.  Layouts
// must be square-tiled, mutually compatible, and equal in shape.  Allocates
// nothing.
void multiply_inplace(MortonMatrix& A, MortonMatrix& B, MortonMatrix& C);

}  // namespace strassen::core
