// Tests for the Strassen-backed symmetric rank-k update (src/core/syrk).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/syrk.hpp"

namespace strassen::core {
namespace {

// Oracle: full gemm C = alpha*A.A^T + beta*C, compared on the lower
// triangle only.
void expect_exact(int n, int k, double alpha, double beta,
                  const SyrkOptions& opt = {}) {
  Rng rng(static_cast<std::uint64_t>(n) * 97 + k);
  Matrix<double> A(n, k), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(C.storage(), -2, 2);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::Trans, n, n, k, alpha, A.data(), A.ld(),
                   A.data(), A.ld(), beta, Ref.data(), Ref.ld());
  modsyrk(n, k, alpha, A.data(), A.ld(), beta, C.data(), C.ld(), opt);
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i)
      ASSERT_EQ(C.at(i, j), Ref.at(i, j)) << i << "," << j;
}

using Shape = std::tuple<int, int>;
class SyrkShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(SyrkShapes, LowerTriangleMatchesOracle) {
  const auto [n, k] = GetParam();
  expect_exact(n, k, 1.0, 0.0);
  expect_exact(n, k, 2.0, -1.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SyrkShapes,
                         ::testing::Values(Shape{1, 1}, Shape{10, 5},
                                           Shape{64, 64}, Shape{100, 37},
                                           Shape{129, 129}, Shape{200, 300},
                                           Shape{300, 130}, Shape{257, 512}));

TEST(Syrk, StrictUpperTriangleUntouched) {
  const int n = 150, k = 100;
  Rng rng(1);
  Matrix<double> A(n, k), C(n, n);
  rng.fill_int(A.storage());
  for (auto& x : C.storage()) x = 77.0;
  modsyrk(n, k, 1.0, A.data(), A.ld(), 0.0, C.data(), C.ld());
  for (int j = 1; j < n; ++j)
    for (int i = 0; i < j; ++i) EXPECT_EQ(C.at(i, j), 77.0);
}

TEST(Syrk, BetaZeroDoesNotReadLowerC) {
  const int n = 130, k = 70;
  Rng rng(2);
  Matrix<double> A(n, k), C(n, n);
  rng.fill_int(A.storage());
  for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
  modsyrk(n, k, 1.0, A.data(), A.ld(), 0.0, C.data(), C.ld());
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) EXPECT_FALSE(std::isnan(C.at(i, j)));
}

TEST(Syrk, DegenerateCases) {
  const int n = 8;
  Matrix<double> A(n, 4), C(n, n);
  for (auto& x : C.storage()) x = 2.0;
  // k = 0: scale lower triangle by beta, leave upper alone.
  modsyrk(n, 0, 1.0, A.data(), A.ld(), 0.5, C.data(), C.ld());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(C.at(i, j), i >= j ? 1.0 : 2.0);
  // alpha = 0 behaves the same way.
  modsyrk(n, 4, 0.0, A.data(), A.ld(), 2.0, C.data(), C.ld());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      EXPECT_EQ(C.at(i, j), 2.0);
}

TEST(Syrk, ResultIsSymmetricWhenMirrored) {
  // Computing lower and mirroring must equal the full product.
  const int n = 180, k = 220;
  Rng rng(3);
  Matrix<double> A(n, k), C(n, n), Full(n, n);
  rng.fill_int(A.storage());
  modsyrk(n, k, 1.0, A.data(), A.ld(), 0.0, C.data(), C.ld());
  blas::naive_gemm(Op::NoTrans, Op::Trans, n, n, k, 1.0, A.data(), A.ld(),
                   A.data(), A.ld(), 0.0, Full.data(), Full.ld());
  for (int j = 0; j < n; ++j)
    for (int i = j; i < n; ++i) {
      EXPECT_EQ(C.at(i, j), Full.at(i, j));
      EXPECT_EQ(Full.at(i, j), Full.at(j, i));  // oracle symmetric
    }
}

TEST(Syrk, SmallDiagonalBlockForcesDeepRecursion) {
  SyrkOptions opt;
  opt.diagonal_block = 8;
  expect_exact(200, 150, 1.0, 1.0, opt);
}

}  // namespace
}  // namespace strassen::core
