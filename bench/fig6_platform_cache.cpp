// fig6_platform_cache -- reproduces the cross-platform half of Figures 5/6.
//
// The paper ran the same codes on a DEC Alpha Miata and a Sun Ultra 60 and
// found the relative ranking of the implementations CHANGES with the
// platform.  We cannot run on that hardware; what differs between those
// machines, for this workload, is the cache hierarchy.  This bench replays
// identical executions through cache models of both machines (presets in
// src/trace) and reports a latency-weighted memory-cost ratio -- the
// architecture-dependent component of Figs. 5/6 -- plus L1 miss ratios.
//
// Expected shape: the MODGEMM/DGEFMM cost ratio differs between the two
// geometries (platform-dependent ranking, the paper's headline observation),
// and MODGEMM's L1 behaviour is more stable across sizes than DGEFMM's.
#include <cstdio>

#include "support/bench_common.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 6 (platform emulation via cache models)",
                "Memory-cost of MODGEMM and DGEMMW normalized to DGEFMM on "
                "the Alpha Miata and Ultra 60 cache geometries");

  Table table({"n", "platform", "MOD/FMM(cost)", "W/FMM(cost)", "L1miss% MOD",
               "L1miss% FMM", "L1miss% W"});
  args.maybe_mirror(table, "fig6_platform_cache");

  std::vector<int> sizes =
      args.quick ? std::vector<int>{200, 350, 513}
                 : std::vector<int>{150, 200, 250, 300, 350, 400, 450, 513};
  for (int n : sizes) {
    for (int which : {0, 1}) {
      auto fresh = [&] {
        return which == 0 ? trace::alpha_miata_hierarchy()
                          : trace::ultra60_hierarchy();
      };
      const trace::TraceResult mod =
          trace::trace_multiply(trace::Impl::Modgemm, n, n, n, fresh());
      const trace::TraceResult fmm =
          trace::trace_multiply(trace::Impl::Dgefmm, n, n, n, fresh());
      const trace::TraceResult w =
          trace::trace_multiply(trace::Impl::Dgemmw, n, n, n, fresh());
      table.add_row(
          {Table::num(static_cast<long long>(n)),
           which == 0 ? "alpha-miata" : "ultra-60",
           Table::num(mod.estimated_cycles / fmm.estimated_cycles, 3),
           Table::num(w.estimated_cycles / fmm.estimated_cycles, 3),
           Table::num(100.0 * mod.l1_miss_ratio, 2),
           Table::num(100.0 * fmm.l1_miss_ratio, 2),
           Table::num(100.0 * w.l1_miss_ratio, 2)});
    }
  }
  table.print();
  std::printf(
      "\nExpected shape: the normalized cost of the same implementation "
      "differs between the two\ngeometries (the paper's cross-platform "
      "variability), and the 8KB direct-mapped Alpha L1\npenalizes the "
      "column-major baselines hardest.\n");
  return 0;
}
