// Resilience tests (src/testing/fault_injection + the degradation ladder).
//
// The central contract under test: for EVERY allocation the library attempts
// during a modgemm call, failing that allocation must leave the caller with
// either the correct product (the ladder recovered on a cheaper path) or a
// clean std::bad_alloc with C untouched -- never a partially updated C.  The
// counted fault injector makes the sweep exhaustive: a count-only pass
// numbers the allocation sites, then each index is failed in turn, both as a
// transient spike (kFailOnce) and as a hard ceiling (kFailFrom).
//
// Also covered here: the workspace budget knob (planned depth -> reduced
// depth -> conventional, with Arena::peak() proving the bound is real),
// exception-safe fork/join under pmodgemm, and the nothrow try_modgemm
// entry point.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <new>
#include <stdexcept>

#include "blas/gemm.hpp"
#include "common/aligned_buffer.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/modgemm.hpp"
#include "layout/plan.hpp"
#include "parallel/pmodgemm.hpp"
#include "parallel/thread_pool.hpp"
#include "testing/fault_injection.hpp"

namespace strassen {
namespace {

namespace ft = ::strassen::testing;
using core::FallbackReason;
using core::ModgemmOptions;
using core::ModgemmReport;

// ---------------------------------------------------------------------------
// The injector itself.
// ---------------------------------------------------------------------------

TEST(FaultInjector, CountsRefusesAndRestores) {
  {
    ft::FaultInjector counter;  // kCountOnly: observe, never fail
    AlignedBuffer a(128);
    AlignedBuffer b(64);
    EXPECT_EQ(counter.allocations(), 2u);
    EXPECT_EQ(counter.failures(), 0u);
  }
  {
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, 2);
    AlignedBuffer first(64);
    EXPECT_THROW(AlignedBuffer second(64), std::bad_alloc);
    AlignedBuffer third(64);  // only the chosen index fails
    EXPECT_EQ(inj.failures(), 1u);
  }
  {
    ft::FaultInjector inj(ft::FaultMode::kFailFrom, 1);
    EXPECT_THROW(AlignedBuffer any(64), std::bad_alloc);
    EXPECT_THROW(AlignedBuffer again(64), std::bad_alloc);
    EXPECT_EQ(inj.failures(), 2u);
  }
  // Destructor restored the default gate: allocation works again.
  AlignedBuffer fine(256);
  EXPECT_EQ(fine.size_bytes(), 256u);
}

TEST(FaultInjector, RejectsZeroFailIndexAndDoubleInstall) {
  EXPECT_THROW(ft::FaultInjector(ft::FaultMode::kFailOnce, 0),
               std::invalid_argument);
  ft::FaultInjector outer;
  EXPECT_THROW(ft::FaultInjector inner, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Exhaustive sweep over the serial driver.
// ---------------------------------------------------------------------------

struct Shape {
  Op opa, opb;
  int m, n, k;
  double alpha, beta;
};

// Counts the allocation sites of an un-faulted run, then fails each index in
// turn and checks the correct-product-or-untouched-C contract against the
// naive oracle.  Integer data keeps every comparison exact.
void sweep_serial(const Shape& s, ft::FaultMode mode) {
  Rng rng(static_cast<std::uint64_t>(s.m) * 7919 + s.n * 131 + s.k);
  const int ar = s.opa == Op::NoTrans ? s.m : s.k;
  const int ac = s.opa == Op::NoTrans ? s.k : s.m;
  const int br = s.opb == Op::NoTrans ? s.k : s.n;
  const int bc = s.opb == Op::NoTrans ? s.n : s.k;
  // All matrices are built BEFORE any injector is active -- the harness's
  // own buffers must not be counted or failed.
  Matrix<double> A(ar, ac), B(br, bc), C0(s.m, s.n), Ref(s.m, s.n),
      C(s.m, s.n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C0.storage(), -3, 3);
  copy_matrix<double>(C0.view(), Ref.view());
  blas::naive_gemm(s.opa, s.opb, s.m, s.n, s.k, s.alpha, A.data(), A.ld(),
                   B.data(), B.ld(), s.beta, Ref.data(), Ref.ld());

  std::uint64_t sites = 0;
  {
    ft::FaultInjector counter;
    copy_matrix<double>(C0.view(), C.view());
    core::modgemm(s.opa, s.opb, s.m, s.n, s.k, s.alpha, A.data(), A.ld(),
                  B.data(), B.ld(), s.beta, C.data(), C.ld());
    sites = counter.allocations();
    ASSERT_EQ(counter.failures(), 0u);
    ASSERT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  ASSERT_GE(sites, 1u);  // these shapes all take an allocating path

  for (std::uint64_t at = 1; at <= sites; ++at) {
    SCOPED_TRACE(::testing::Message()
                 << "fail_at=" << at << "/" << sites << " mode="
                 << (mode == ft::FaultMode::kFailOnce ? "once" : "from"));
    ft::FaultInjector inj(mode, at);
    copy_matrix<double>(C0.view(), C.view());
    ModgemmReport report;
    try {
      core::modgemm(s.opa, s.opb, s.m, s.n, s.k, s.alpha, A.data(), A.ld(),
                    B.data(), B.ld(), s.beta, C.data(), C.ld(), {}, &report);
      EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
      // A run that really lost an allocation must say how it degraded.
      if (inj.failures() > 0) {
        EXPECT_NE(report.fallback_reason, FallbackReason::kNone);
      }
    } catch (const std::bad_alloc&) {
      // The other permitted outcome: a clean rejection, C untouched.
      EXPECT_EQ(max_abs_diff<double>(C.view(), C0.view()), 0.0);
    }
    // The sweep actually reached and failed the chosen site: the execution
    // prefix before the first failure is identical to the counted run.
    EXPECT_GE(inj.failures(), 1u);
  }
}

TEST(FaultInjectionSerial, SquareStrassenFailOnce) {
  sweep_serial({Op::NoTrans, Op::NoTrans, 256, 256, 256, 2.0, -1.0},
               ft::FaultMode::kFailOnce);
}

TEST(FaultInjectionSerial, SquareStrassenFailFrom) {
  sweep_serial({Op::NoTrans, Op::NoTrans, 256, 256, 256, 2.0, -1.0},
               ft::FaultMode::kFailFrom);
}

TEST(FaultInjectionSerial, TransposedFailOnce) {
  sweep_serial({Op::Trans, Op::Trans, 200, 190, 210, 1.0, 0.0},
               ft::FaultMode::kFailOnce);
}

TEST(FaultInjectionSerial, TransposedFailFrom) {
  // kFailFrom with transposed operands exercises the bottom rung: the
  // Strassen arena fails, then gemm_blocked's transpose staging fails, and
  // the allocation-free gemm_strided must still produce the exact product.
  sweep_serial({Op::Trans, Op::Trans, 200, 190, 210, 1.0, 0.0},
               ft::FaultMode::kFailFrom);
}

TEST(FaultInjectionSerial, SplitShapeFailOnce) {
  // 300 x 300 x 70 admits no common depth -> the split path runs several
  // sub-products; each has its own allocation sites.
  sweep_serial({Op::NoTrans, Op::NoTrans, 300, 300, 70, 3.0, 1.0},
               ft::FaultMode::kFailOnce);
}

TEST(FaultInjectionSerial, SplitShapeFailFrom) {
  sweep_serial({Op::NoTrans, Op::NoTrans, 300, 300, 70, 3.0, 1.0},
               ft::FaultMode::kFailFrom);
}

TEST(FaultInjectionSerial, LadderRungsAreReported) {
  const int n = 256;
  Rng rng(9);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  {
    // NoTrans under total exhaustion: the Strassen arena dies, and the
    // conventional path needs no staging -> alloc-direct.
    ft::FaultInjector inj(ft::FaultMode::kFailFrom, 1);
    ModgemmReport report;
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, {}, &report);
    EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocDirect);
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  {
    // Trans under total exhaustion: even the staging buffer dies -> the
    // strided rung, still exact.
    Matrix<double> RefT(n, n);
    blas::naive_gemm(Op::Trans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                     B.data(), n, 0.0, RefT.data(), n);
    ft::FaultInjector inj(ft::FaultMode::kFailFrom, 1);
    ModgemmReport report;
    core::modgemm(Op::Trans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                  n, 0.0, C.data(), n, {}, &report);
    EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocStrided);
    EXPECT_EQ(max_abs_diff<double>(C.view(), RefT.view()), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Workspace budget: proactive degradation.
// ---------------------------------------------------------------------------

TEST(WorkspaceBudget, DepthReductionStaysUnderBudgetAndExact) {
  const int n = 512;
  const layout::GemmPlan planned = layout::plan_gemm(n, n, n, {});
  ASSERT_TRUE(planned.feasible);
  ASSERT_GE(planned.depth, 2);

  // Budget exactly the workspace of the next-shallower feasible plan: the
  // driver must give up one recursion level, no more.
  layout::GemmPlan shallower;
  shallower.depth = planned.depth - 1;
  shallower.m = layout::choose_dim_at_depth(n, shallower.depth, {});
  shallower.k = shallower.m;
  shallower.n = shallower.m;
  shallower.feasible = true;
  ASSERT_NE(shallower.m.tile, 0);
  const std::size_t budget =
      core::modgemm_workspace_bytes(shallower, sizeof(double));
  ASSERT_LT(budget, core::modgemm_workspace_bytes(planned, sizeof(double)));

  Rng rng(10);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  ModgemmOptions opt;
  opt.max_workspace_bytes = budget;
  // Pin the default family: with the schedule ladder enabled (kAuto), this
  // budget is instead satisfied at FULL depth by a low-memory schedule --
  // that path is covered in test_ladder_invariants.cpp.
  opt.schedule = analysis::ScheduleFamily::kWinograd;
  // Pin <2,2,2>: the budget arithmetic above prices the <2,2,2> plan, which
  // a forced STRASSEN_ALGO run would replace with a family level (pin > env).
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt, &report);

  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kDepthReduced);
  EXPECT_EQ(report.planned_depth, planned.depth);
  EXPECT_LT(report.plan.depth, planned.depth);
  EXPECT_GE(report.plan.depth, 1);
  // The budget is a real bound on temporary memory: the executed arena's
  // high-water mark (Arena::peak(), surfaced as workspace_peak_bytes)
  // stayed within it.
  EXPECT_GT(report.workspace_peak_bytes, 0u);
  EXPECT_LE(report.workspace_peak_bytes, budget);
}

TEST(WorkspaceBudget, TinyBudgetFallsBackToDirect) {
  const int n = 300;
  Rng rng(11);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  ModgemmOptions opt;
  opt.max_workspace_bytes = 1024;  // no Strassen depth can fit this
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt, &report);

  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kBudgetDirect);
  EXPECT_TRUE(report.plan.direct);
  EXPECT_EQ(report.workspace_peak_bytes, 0u);  // no arena was built at all
}

TEST(WorkspaceBudget, GenerousBudgetChangesNothing) {
  const int n = 256;
  const layout::GemmPlan planned = layout::plan_gemm(n, n, n, {});
  ASSERT_TRUE(planned.feasible);
  Rng rng(12);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  ModgemmOptions opt;
  opt.max_workspace_bytes =
      core::modgemm_workspace_bytes(planned, sizeof(double));
  // Pin <2,2,2>: the budget equals the <2,2,2> plan's exact footprint, and a
  // forced STRASSEN_ALGO family would need staging on top (pin > env).
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt, &report);

  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kNone);
  EXPECT_EQ(report.plan.depth, planned.depth);
  EXPECT_LE(report.workspace_peak_bytes, opt.max_workspace_bytes);
}

TEST(WorkspaceBudget, BudgetAppliesToEverySplitSubProduct) {
  // Split-path shape under a tiny budget: every sub-product must run direct,
  // and the result must still be exact.
  const int m = 300, n = 300, k = 70;
  Rng rng(13);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m,
                   B.data(), k, 0.0, Ref.data(), m);

  ModgemmOptions opt;
  opt.max_workspace_bytes = 1024;
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m, B.data(),
                k, 0.0, C.data(), m, opt, &report);

  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_TRUE(report.split_used);
  EXPECT_EQ(report.fallback_reason, FallbackReason::kBudgetDirect);
  EXPECT_EQ(report.workspace_peak_bytes, 0u);
}

// ---------------------------------------------------------------------------
// The parallel driver under injection.
// ---------------------------------------------------------------------------

TEST(FaultInjectionParallel, SweepFailOnceEveryAllocationSite) {
  const int n = 257;
  Rng rng(14);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);

  parallel::ThreadPool pool(4);
  parallel::ParallelOptions popt;
  popt.spawn_levels = 1;

  std::uint64_t sites = 0;
  {
    ft::FaultInjector counter;
    parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                       n, B.data(), n, 0.0, C.data(), n, popt);
    sites = counter.allocations();
    ASSERT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  // At least the three Morton buffers plus one per-task arena.
  ASSERT_GE(sites, 4u);

  for (std::uint64_t at = 1; at <= sites; ++at) {
    SCOPED_TRACE(::testing::Message() << "fail_at=" << at << "/" << sites);
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, at);
    // Poison C: with beta == 0 a correct call must overwrite every element,
    // so a partial write (or a skipped fallback) cannot hide.
    for (auto& x : C.storage()) x = -7.0;
    // A failing task's bad_alloc surfaces at TaskGroup::wait() (after its
    // siblings joined, so the process must NOT terminate), pmodgemm catches
    // it and re-runs on the serial ladder.
    parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                       n, B.data(), n, 0.0, C.data(), n, popt);
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
    EXPECT_GE(inj.failures(), 1u);
  }

  // The pool survived every injected failure and is still fully usable.
  for (auto& x : C.storage()) x = -7.0;
  parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                     n, B.data(), n, 0.0, C.data(), n, popt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(FaultInjectionParallel, TotalExhaustionStillExact) {
  // Every library allocation refused for the whole call: the parallel
  // buffers die immediately, the serial retry's arena dies, and the
  // allocation-free rung still delivers the product.
  const int n = 150;
  Rng rng(15);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  parallel::ThreadPool pool(2);
  ft::FaultInjector inj(ft::FaultMode::kFailFrom, 1);
  parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                     n, B.data(), n, 0.0, C.data(), n);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_GE(inj.failures(), 1u);
}

TEST(FaultInjectionParallel, ThrowingTaskSurfacesAtWaitPoolReusable) {
  // The acceptance property stated directly on the primitives: a throwing
  // task inside a fork/join group surfaces at wait() -- after every sibling
  // finished -- without terminating the process, and the pool is reusable.
  parallel::ThreadPool pool(2);
  std::atomic<int> siblings{0};
  {
    parallel::TaskGroup group(&pool);
    for (int i = 0; i < 8; ++i) {
      group.run([&siblings, i] {
        if (i == 3) throw std::runtime_error("injected task failure");
        ++siblings;
      });
    }
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(siblings.load(), 7);  // all non-throwing siblings completed
  }
  std::atomic<int> count{0};
  parallel::TaskGroup again(&pool);
  for (int i = 0; i < 100; ++i) again.run([&count] { ++count; });
  again.wait();
  EXPECT_EQ(count.load(), 100);
}

// ---------------------------------------------------------------------------
// The nothrow entry point.
// ---------------------------------------------------------------------------

TEST(TryModgemm, OkAndExactOnValidArguments) {
  const int n = 150;
  Rng rng(16);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  const Status st = core::try_modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                      A.data(), n, B.data(), n, 0.0, C.data(),
                                      n);
  EXPECT_EQ(st, Status::kOk);
  EXPECT_TRUE(ok(st));
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(TryModgemm, ArgumentErrorsMapToBlasInfoCodes) {
  Matrix<double> A(100, 100), B(100, 100), C0(100, 100), C(100, 100);
  Rng rng(17);
  rng.fill_int(C0.storage());
  copy_matrix<double>(C0.view(), C.view());
  auto call = [&](Op opa, Op opb, int m, int n, int k, int lda, int ldb,
                  int ldc) {
    return core::try_modgemm(opa, opb, m, n, k, 1.0, A.data(), lda, B.data(),
                             ldb, 0.0, C.data(), ldc);
  };
  EXPECT_EQ(call(Op::NoTrans, Op::NoTrans, -1, 10, 10, 100, 100, 100),
            Status::kBadM);
  EXPECT_EQ(call(Op::NoTrans, Op::NoTrans, 10, -1, 10, 100, 100, 100),
            Status::kBadN);
  EXPECT_EQ(call(Op::NoTrans, Op::NoTrans, 10, 10, -1, 100, 100, 100),
            Status::kBadK);
  EXPECT_EQ(call(Op::NoTrans, Op::NoTrans, 100, 100, 100, 50, 100, 100),
            Status::kBadLda);
  EXPECT_EQ(call(Op::Trans, Op::NoTrans, 100, 100, 120, 100, 120, 100),
            Status::kBadLda);  // op(A) stored k x m needs lda >= k
  EXPECT_EQ(call(Op::NoTrans, Op::NoTrans, 100, 100, 100, 100, 50, 100),
            Status::kBadLdb);
  EXPECT_EQ(call(Op::NoTrans, Op::NoTrans, 100, 100, 100, 100, 100, 50),
            Status::kBadLdc);
  // The info codes are the BLAS xerbla argument positions.
  EXPECT_EQ(static_cast<int>(Status::kBadM), 3);
  EXPECT_EQ(static_cast<int>(Status::kBadLda), 8);
  EXPECT_EQ(static_cast<int>(Status::kBadLdc), 13);
  // No rejected call touched C.
  EXPECT_EQ(max_abs_diff<double>(C.view(), C0.view()), 0.0);
}

TEST(TryModgemm, NoThrowEvenUnderTotalExhaustion) {
  const int n = 256;
  Rng rng(18);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  ft::FaultInjector inj(ft::FaultMode::kFailFrom, 1);
  ModgemmReport report;
  const Status st =
      core::try_modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                        B.data(), n, 0.0, C.data(), n, {}, &report);
  // The ladder bottoms out allocation-free, so even total exhaustion yields
  // the product, not kOutOfMemory.
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_NE(report.fallback_reason, FallbackReason::kNone);
  EXPECT_GE(inj.failures(), 1u);
}

}  // namespace
}  // namespace strassen
