// quickstart -- the 60-second tour of the library.
//
// Multiplies two matrices with MODGEMM through the dgemm-style interface,
// checks the answer against the naive reference, and prints what the planner
// decided (tile size, recursion depth, padding) plus where the time went.
//
// Build & run:   cmake --build build && ./build/examples/quickstart [n]
#include <cstdio>
#include <cstdlib>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 513;  // the paper's showcase
  std::printf("MODGEMM quickstart: C = A * B with %d x %d matrices\n\n", n, n);

  // 1. Make some data (column-major, as in BLAS).
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(2026);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());

  // 2. Multiply.  The signature mirrors Level 3 BLAS dgemm:
  //    C <- alpha * op(A) . op(B) + beta * C.
  core::ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n,
                /*alpha=*/1.0, A.data(), A.ld(), B.data(), B.ld(),
                /*beta=*/0.0, C.data(), C.ld(), {}, &report);

  // 3. What did the planner do?
  const auto& plan = report.plan;
  if (plan.direct) {
    std::printf("planner: problem too small for Strassen; ran the blocked "
                "conventional algorithm\n");
  } else {
    std::printf("planner: tile %d x %d, recursion depth %d, padded %d -> %d "
                "(%d pad elements per dim)\n",
                plan.m.tile, plan.n.tile, plan.depth, n, plan.m.padded,
                plan.m.pad());
  }
  std::printf("time:    %.1f ms total = %.1f ms convert-in + %.1f ms "
              "Strassen-Winograd + %.1f ms convert-out\n",
              1e3 * report.total_seconds(), 1e3 * report.convert_in_seconds,
              1e3 * report.compute_seconds,
              1e3 * report.convert_out_seconds);
  std::printf("         conversion overhead: %.1f%% (paper: 5-15%%)\n\n",
              100.0 * report.conversion_fraction());

  // 4. Trust, but verify (against the naive triple loop).
  Matrix<double> Ref(n, n);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  const double err = max_abs_diff<double>(C.view(), Ref.view());
  std::printf("max |MODGEMM - naive| = %.3e  %s\n", err,
              err < 1e-9 * n ? "(OK)" : "(UNEXPECTEDLY LARGE!)");
  return err < 1e-9 * n ? 0 : 1;
}
