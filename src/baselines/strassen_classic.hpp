// strassen_classic.hpp -- Strassen's ORIGINAL 1969 construction.
//
// The paper (S2) presents the original seven products P1..P7 before
// introducing Winograd's variant; the difference is the number of quadrant
// additions (Winograd's 15 is the minimum; the original needs 18, and the
// straightforward product-at-a-time scheduling below performs 22 including
// the three initializing copies).  Running this schedule over the same
// Morton machinery as MODGEMM isolates the schedule choice as an ablation:
// layout, planner, conversions and leaf kernel are all shared.
//
//   P1 = (A11+A22)(B11+B22)      C11 = P1 + P4 - P5 + P7
//   P2 = (A21+A22) B11           C12 = P3 + P5
//   P3 = A11 (B12-B22)           C21 = P2 + P4
//   P4 = A22 (B21-B11)           C22 = P1 - P2 + P3 + P6
//   P5 = (A11+A12) B22
//   P6 = (A21-A11)(B11+B12)
//   P7 = (A12-A22)(B21+B22)
#pragma once

#include "blas/kernels.hpp"
#include "blas/level1.hpp"
#include "common/arena.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "core/modgemm.hpp"

namespace strassen::baselines {

namespace detail {

// C = A * B on Morton blocks; same contract as core::winograd_recurse.
// Temporaries per level: tA (A-quadrant shaped), tB (B-quadrant), tP
// (C-quadrant) -- the same arena footprint as the Winograd schedule.
template <class MM, class T>
void classic_recurse(MM& mm, T* C, const T* A, const T* B, int tm, int tk,
                     int tn, int depth, Arena& arena) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tm, tn, tk, A, tm, B, tk, C, tm,
                    blas::LeafMode::Overwrite);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  const T* A11 = A;
  const T* A12 = A + qa;
  const T* A21 = A + 2 * qa;
  const T* A22 = A + 3 * qa;
  const T* B11 = B;
  const T* B12 = B + qb;
  const T* B21 = B + 2 * qb;
  const T* B22 = B + 3 * qb;
  T* C11 = C;
  T* C12 = C + qc;
  T* C21 = C + 2 * qc;
  T* C22 = C + 3 * qc;

  Arena::Frame frame(arena);
  T* tA = arena.push<T>(qa);
  T* tB = arena.push<T>(qb);
  T* tP = arena.push<T>(qc);

  auto mul = [&](T* dst, const T* a, const T* b) {
    classic_recurse(mm, dst, a, b, tm, tk, tn, d1, arena);
  };

  blas::vadd(mm, qa, tA, A11, A22);
  blas::vadd(mm, qb, tB, B11, B22);
  mul(tP, tA, tB);                       // P1
  blas::vcopy(mm, qc, C11, tP);
  blas::vcopy(mm, qc, C22, tP);
  blas::vadd(mm, qa, tA, A21, A22);
  mul(tP, tA, B11);                      // P2
  blas::vcopy(mm, qc, C21, tP);
  blas::vsub_inplace(mm, qc, C22, tP);
  blas::vsub(mm, qb, tB, B12, B22);
  mul(tP, A11, tB);                      // P3
  blas::vcopy(mm, qc, C12, tP);
  blas::vadd_inplace(mm, qc, C22, tP);
  blas::vsub(mm, qb, tB, B21, B11);
  mul(tP, A22, tB);                      // P4
  blas::vadd_inplace(mm, qc, C11, tP);
  blas::vadd_inplace(mm, qc, C21, tP);
  blas::vadd(mm, qa, tA, A11, A12);
  mul(tP, tA, B22);                      // P5
  blas::vadd_inplace(mm, qc, C12, tP);
  blas::vsub_inplace(mm, qc, C11, tP);
  blas::vsub(mm, qa, tA, A21, A11);
  blas::vadd(mm, qb, tB, B11, B12);
  mul(tP, tA, tB);                       // P6
  blas::vadd_inplace(mm, qc, C22, tP);
  blas::vsub(mm, qa, tA, A12, A22);
  blas::vadd(mm, qb, tB, B21, B22);
  mul(tP, tA, tB);                       // P7
  blas::vadd_inplace(mm, qc, C11, tP);
}

}  // namespace detail

// Full dgemm semantics via the MODGEMM pipeline (plan, convert, recurse,
// fused convert-back) but with the classic schedule at every level.
// Shapes must plan at a single depth (square and mildly rectangular); this
// baseline does not implement the highly-rectangular split.
template <class MM, class T>
void strassen_classic_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                         const T* A, int lda, const T* B, int ldb, T beta,
                         T* C, int ldc,
                         const core::ModgemmOptions& opt = {}) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  const layout::GemmPlan plan = layout::plan_gemm(m, k, n, opt.tiles);
  if (plan.direct) {
    blas::gemm_blocked(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                       ldc);
    return;
  }
  STRASSEN_REQUIRE(plan.feasible,
                   "strassen_classic does not split highly rectangular "
                   "problems; use core::modgemm");
  const layout::MortonLayout la{m, k, plan.m.tile, plan.k.tile, plan.depth};
  const layout::MortonLayout lb{k, n, plan.k.tile, plan.n.tile, plan.depth};
  const layout::MortonLayout lc{m, n, plan.m.tile, plan.n.tile, plan.depth};
  Arena arena(
      static_cast<std::size_t>(la.elems() + lb.elems() + lc.elems()) *
          sizeof(T) +
      3 * 64 +
      core::winograd_workspace_bytes(plan.m.tile, plan.k.tile, plan.n.tile,
                                     plan.depth, sizeof(T)));
  T* Am = arena.push<T>(static_cast<std::size_t>(la.elems()));
  T* Bm = arena.push<T>(static_cast<std::size_t>(lb.elems()));
  T* Cm = arena.push<T>(static_cast<std::size_t>(lc.elems()));
  layout::to_morton(mm, la, Am, opa, A, lda);
  layout::to_morton(mm, lb, Bm, opb, B, ldb);
  detail::classic_recurse(mm, Cm, Am, Bm, plan.m.tile, plan.k.tile,
                          plan.n.tile, plan.depth, arena);
  layout::from_morton(mm, lc, Cm, alpha, C, ldc, beta);
}

// Production entry point.
void strassen_classic(Op opa, Op opb, int m, int n, int k, double alpha,
                      const double* A, int lda, const double* B, int ldb,
                      double beta, double* C, int ldc,
                      const core::ModgemmOptions& opt = {});

}  // namespace strassen::baselines
