#include "trace/presets.hpp"

namespace strassen::trace {

CacheHierarchy paper_fig9_cache() {
  return CacheHierarchy("fig9-16KB-DM",
                        {CacheConfig{"L1", 16 * 1024, 32, 1, 1.0}},
                        /*memory_latency=*/60.0);
}

CacheHierarchy paper_fig9_cache_classified() {
  CacheConfig l1{"L1", 16 * 1024, 32, 1, 1.0};
  l1.classify = true;
  return CacheHierarchy("fig9-16KB-DM+3C", {l1}, /*memory_latency=*/60.0);
}

CacheHierarchy alpha_miata_hierarchy() {
  return CacheHierarchy("alpha-miata",
                        {CacheConfig{"L1", 8 * 1024, 32, 1, 1.0},
                         CacheConfig{"L2", 96 * 1024, 64, 3, 6.0},
                         CacheConfig{"L3", 2 * 1024 * 1024, 64, 1, 20.0}},
                        /*memory_latency=*/80.0);
}

CacheHierarchy ultra60_hierarchy() {
  return CacheHierarchy("ultra-60",
                        {CacheConfig{"L1", 16 * 1024, 32, 1, 1.0},
                         CacheConfig{"L2", 2 * 1024 * 1024, 64, 1, 10.0}},
                        /*memory_latency=*/70.0);
}

CacheHierarchy alpha_l1_only() {
  return CacheHierarchy("alpha-L1", {CacheConfig{"L1", 8 * 1024, 32, 1, 1.0}},
                        /*memory_latency=*/60.0);
}

}  // namespace strassen::trace
