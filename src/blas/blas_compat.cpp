#include "blas/blas_compat.hpp"

#include <cctype>
#include <cstdio>

#include "core/modgemm.hpp"

namespace strassen::blas {

namespace {

thread_local int g_last_error = 0;

// Decodes a BLAS TRANS character; returns false if invalid.
bool decode_op(const char* t, Op& op) {
  if (t == nullptr) return false;
  switch (std::toupper(static_cast<unsigned char>(*t))) {
    case 'N':
      op = Op::NoTrans;
      return true;
    case 'T':
    case 'C':  // real matrices: conjugate-transpose == transpose
      op = Op::Trans;
      return true;
    default:
      return false;
  }
}

void xerbla(const char* routine, int info) {
  g_last_error = info;
  std::fprintf(stderr,
               " ** On entry to %s parameter number %d had an illegal "
               "value\n",
               routine, info);
}

}  // namespace

namespace detail {

// Shared parameter validation + dispatch for both precisions.  Validation
// and execution both go through the library's Status machinery: argument
// checks are the same core::validate_gemm_args every driver uses (its codes
// are xerbla argument positions by construction), and the multiply runs via
// the nothrow core::try_modgemm so no exception can cross the C boundary --
// under memory pressure the degradation ladder inside still produces the
// product whenever the arguments are valid.
template <class T>
void gemm_compat(const char* routine, const char* transa, const char* transb,
                 const int* m, const int* n, const int* k, const T* alpha,
                 const T* a, const int* lda, const T* b, const int* ldb,
                 const T* beta, T* c, const int* ldc) {
  g_last_error = 0;
  Op opa, opb;
  if (!decode_op(transa, opa)) return xerbla(routine, 1);
  if (!decode_op(transb, opb)) return xerbla(routine, 2);
  if (m == nullptr) return xerbla(routine, 3);
  if (n == nullptr) return xerbla(routine, 4);
  if (k == nullptr) return xerbla(routine, 5);
  if (lda == nullptr) return xerbla(routine, 8);
  if (ldb == nullptr) return xerbla(routine, 10);
  if (ldc == nullptr) return xerbla(routine, 13);
  const Status args =
      core::validate_gemm_args(opa, opb, *m, *n, *k, *lda, *ldb, *ldc);
  if (args != Status::kOk) return xerbla(routine, static_cast<int>(args));
  const Status run = core::try_modgemm(opa, opb, *m, *n, *k, *alpha, a, *lda,
                                       b, *ldb, *beta, c, *ldc);
  if (run != Status::kOk) {
    // Runtime failure (negative code): not an xerbla case in reference
    // BLAS, so report it on stderr and through last_compat_error().
    g_last_error = static_cast<int>(run);
    std::fprintf(stderr, " ** %s failed: %s\n", routine, status_name(run));
  }
}

}  // namespace

int last_compat_error() { return g_last_error; }

}  // namespace strassen::blas

extern "C" {

void strassen_dgemm_(const char* transa, const char* transb, const int* m,
                     const int* n, const int* k, const double* alpha,
                     const double* a, const int* lda, const double* b,
                     const int* ldb, const double* beta, double* c,
                     const int* ldc) {
  strassen::blas::detail::gemm_compat("STRASSEN_DGEMM", transa, transb, m, n, k,
                              alpha, a, lda, b, ldb, beta, c, ldc);
}

void strassen_sgemm_(const char* transa, const char* transb, const int* m,
                     const int* n, const int* k, const float* alpha,
                     const float* a, const int* lda, const float* b,
                     const int* ldb, const float* beta, float* c,
                     const int* ldc) {
  strassen::blas::detail::gemm_compat("STRASSEN_SGEMM", transa, transb, m, n, k,
                              alpha, a, lda, b, ldb, beta, c, ldc);
}

}  // extern "C"
