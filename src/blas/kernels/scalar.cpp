// kernels/scalar.cpp -- the portable kernel table.
//
// The gemm entry is exactly the generic 4x4 register-blocked template
// instantiated on RawMem, so STRASSEN_KERNEL=scalar reproduces the seed
// library bit for bit (and matches what TracingMem executions compute).
// For the same reason the fused entries are null: with the scalar table
// active, the Winograd recursion materializes its operand sums through the
// level-1 kernels exactly as the seed schedule did.
//
// The element-wise kernels branch on the exact-alias contract (dst == a or
// dst == b is allowed) and run restrict-qualified std::size_t loops on the
// disjoint common case, so GCC auto-vectorizes them without emitting runtime
// overlap checks (verify with -fopt-info-vec).
#include "blas/kernels/registry.hpp"

namespace strassen::blas::kernels {

namespace {

void scalar_gemm(int m, int n, int k, const double* A, int lda,
                 const double* B, int ldb, double* C, int ldc, LeafMode mode,
                 double alpha) {
  RawMem raw;
  gemm_leaf_generic(raw, m, n, k, A, lda, B, ldb, C, ldc, mode, alpha);
}

void scalar_vadd(std::size_t n, double* dst, const double* a,
                 const double* b) {
  if (dst != a && dst != b) {
    double* __restrict d = dst;
    const double* __restrict x = a;
    const double* __restrict y = b;
    for (std::size_t i = 0; i < n; ++i) d[i] = x[i] + y[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
  }
}

void scalar_vsub(std::size_t n, double* dst, const double* a,
                 const double* b) {
  if (dst != a && dst != b) {
    double* __restrict d = dst;
    const double* __restrict x = a;
    const double* __restrict y = b;
    for (std::size_t i = 0; i < n; ++i) d[i] = x[i] - y[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
  }
}

void scalar_vadd_inplace(std::size_t n, double* dst, const double* a) {
  if (dst != a) {
    double* __restrict d = dst;
    const double* __restrict x = a;
    for (std::size_t i = 0; i < n; ++i) d[i] += x[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] += dst[i];
  }
}

void scalar_vsub_inplace(std::size_t n, double* dst, const double* a) {
  if (dst != a) {
    double* __restrict d = dst;
    const double* __restrict x = a;
    for (std::size_t i = 0; i < n; ++i) d[i] -= x[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0.0;
  }
}

constexpr LeafKernels kTable = {
    Kind::kScalar,
    "scalar",
    /*mr=*/4,
    /*nr=*/4,
    scalar_gemm,
    /*gemm_fused_a=*/nullptr,
    /*gemm_fused_b=*/nullptr,
    /*gemm_fused_ab=*/nullptr,
    scalar_vadd,
    scalar_vsub,
    scalar_vadd_inplace,
    scalar_vsub_inplace,
};

}  // namespace

namespace detail {
const LeafKernels& scalar_table() noexcept { return kTable; }
}  // namespace detail

}  // namespace strassen::blas::kernels
