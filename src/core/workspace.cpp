#include "core/workspace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace strassen::core {

namespace {
std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }
}  // namespace

std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size) {
  return winograd_workspace_bytes(tm, tk, tn, depth, elem_size,
                                  analysis::ScheduleFamily::kWinograd);
}

std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size,
                                     analysis::ScheduleFamily family) {
  STRASSEN_REQUIRE(tm >= 1 && tk >= 1 && tn >= 1 && depth >= 0 && depth < 31,
                   "bad workspace request: tm=" << tm << " tk=" << tk
                                                << " tn=" << tn
                                                << " depth=" << depth);
  using analysis::ScheduleFamily;
  std::size_t total = 0;
  // Level l (from the top, l = 1..depth) allocates temporaries over the
  // quadrants of a block whose leaves are 2^(depth-l) tiles on a side.
  auto quad = [&](int r, int c, std::size_t scale) {
    return round_up64(checked_mul(
        checked_mul(checked_mul(static_cast<std::size_t>(r),
                                static_cast<std::size_t>(c)),
                    scale),
        elem_size));
  };
  for (int l = 1; l <= depth; ++l) {
    const std::size_t scale = std::size_t{1} << (2 * (depth - l));
    const std::size_t qa = quad(tm, tk, scale);
    const std::size_t qb = quad(tk, tn, scale);
    const std::size_t qc = quad(tm, tn, scale);
    switch (family) {
      case ScheduleFamily::kAuto:
      case ScheduleFamily::kWinograd:
        total = checked_add(total, checked_add(qa, checked_add(qb, qc)));
        break;
      case ScheduleFamily::kLowMem:
        // tS and tP share one buffer sized for the larger shape.
        total = checked_add(total, checked_add(std::max(qa, qc), qb));
        break;
      case ScheduleFamily::kInPlace:
        // Only the TOP level runs the in-place table (a child would clobber
        // parent operands); deeper levels run the low-mem table.
        if (l == 1)
          total = checked_add(total, qc);
        else
          total = checked_add(total, checked_add(std::max(qa, qc), qb));
        break;
    }
  }
  return total;
}

std::size_t winograd_accum_workspace_bytes(int tm, int tk, int tn, int depth,
                                           std::size_t elem_size,
                                           analysis::ScheduleFamily family) {
  if (depth <= 0) return 0;
  auto quad = [&](int r, int c) {
    const std::size_t scale = std::size_t{1} << (2 * (depth - 1));
    return round_up64(checked_mul(
        checked_mul(checked_mul(static_cast<std::size_t>(r),
                                static_cast<std::size_t>(c)),
                    scale),
        elem_size));
  };
  // Top level: the 3-temporary accumulating table; its sub-products recurse
  // with `family` tables one level down.
  const std::size_t top = checked_add(
      quad(tm, tk), checked_add(quad(tk, tn), quad(tm, tn)));
  return checked_add(
      top, winograd_workspace_bytes(tm, tk, tn, depth - 1, elem_size, family));
}

}  // namespace strassen::core
