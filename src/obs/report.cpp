#include "obs/report.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace strassen::obs {

const char* fallback_reason_name(FallbackReason r) {
  switch (r) {
    case FallbackReason::kNone:
      return "none";
    case FallbackReason::kAlgoFallback:
      return "algo-fallback";
    case FallbackReason::kScheduleSwap:
      return "schedule-swap";
    case FallbackReason::kDepthReduced:
      return "depth-reduced";
    case FallbackReason::kBudgetDirect:
      return "budget-direct";
    case FallbackReason::kAllocDirect:
      return "alloc-direct";
    case FallbackReason::kAllocStrided:
      return "alloc-strided";
  }
  return "unknown";
}

long long GemmReport::pad_elems() const {
  if (plan.direct) return 0;
  // Pad area of each operand: padded rectangle minus logical rectangle.
  auto area = [](long long r, long long c) { return r * c; };
  const long long pm = plan.m.padded, pk = plan.k.padded, pn = plan.n.padded;
  return area(pm, pk) - area(plan.m.n, plan.k.n) +   // A
         area(pk, pn) - area(plan.k.n, plan.n.n) +   // B
         area(pm, pn) - area(plan.m.n, plan.n.n);    // C
}

namespace {

// JSON numbers: shortest round-trippable-enough form, locale-independent.
void put_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

void put_string(std::ostream& os, const char* s) {
  os << '"';
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\')
      os << '\\' << c;
    else if (static_cast<unsigned char>(c) >= 0x20)
      os << c;
  }
  os << '"';
}

}  // namespace

// One line, stable key set and order: schema strassen.gemm_report.v6.
// Adding a key is a schema version bump (see docs/OBSERVABILITY.md); v2
// added parallel.steals when the work-stealing scheduler landed; v3 added
// plan.schedule and workspace.saved_bytes with the low-memory schedule
// family; v4 added plan.strategy and workspace.conversion_saved_bytes with
// the pack-fused execution strategy; v5 added the batch section with the
// batched service core (core/batched.hpp); v6 added plan.algo (and the
// "algo-fallback" workspace.fallback value) with the <m,k,n> algorithm
// family engine (analysis/algo_family.hpp).
void write_json(std::ostream& os, const GemmReport& r) {
  os << "{\"schema\": \"strassen.gemm_report.v6\", ";

  os << "\"call\": {\"entry\": ";
  put_string(os, r.entry[0] != '\0' ? r.entry : "modgemm");
  os << ", \"m\": " << r.m << ", \"n\": " << r.n << ", \"k\": " << r.k
     << "}, ";

  os << "\"phases\": {\"wall_s\": ";
  put_double(os, r.wall_seconds);
  os << ", \"convert_in_s\": ";
  put_double(os, r.convert_in_seconds);
  os << ", \"compute_s\": ";
  put_double(os, r.compute_seconds);
  os << ", \"leaf_s\": ";
  put_double(os, r.leaf_seconds);
  os << ", \"convert_out_s\": ";
  put_double(os, r.convert_out_seconds);
  os << ", \"conversion_fraction\": ";
  put_double(os, r.conversion_fraction());
  os << "}, ";

  os << "\"plan\": {\"direct\": " << (r.plan.direct ? "true" : "false")
     << ", \"split\": " << (r.split_used ? "true" : "false")
     << ", \"products\": " << r.products
     << ", \"planned_depth\": " << r.planned_depth << ", \"schedule\": ";
  put_string(os, r.schedule[0] != '\0' ? r.schedule : "none");
  os << ", \"strategy\": ";
  put_string(os, r.strategy[0] != '\0' ? r.strategy : "none");
  os << ", \"algo\": ";
  put_string(os, r.algo[0] != '\0' ? r.algo : "none");
  os << ", \"depth\": " << r.plan.depth << ", \"tile_m\": " << r.plan.m.tile
     << ", \"tile_k\": " << r.plan.k.tile << ", \"tile_n\": " << r.plan.n.tile
     << ", \"padded_m\": " << r.plan.m.padded
     << ", \"padded_k\": " << r.plan.k.padded
     << ", \"padded_n\": " << r.plan.n.padded
     << ", \"pad_elems\": " << r.pad_elems() << "}, ";

  os << "\"workspace\": {\"requested_bytes\": " << r.workspace_requested_bytes
     << ", \"peak_bytes\": " << r.workspace_peak_bytes
     << ", \"saved_bytes\": " << r.workspace_saved_bytes
     << ", \"conversion_saved_bytes\": " << r.conversion_saved_bytes
     << ", \"allocations\": " << r.workspace_allocations << ", \"fallback\": ";
  put_string(os, fallback_reason_name(r.fallback_reason));
  os << "}, ";

  os << "\"kernels\": {\"active\": ";
  put_string(os, r.kernel[0] != '\0' ? r.kernel : "unknown");
  os << ", \"variant\": ";
  put_string(os, r.kernel_variant[0] != '\0' ? r.kernel_variant : "auto");
  os << ", \"leaf_calls\": " << r.leaf_calls
     << ", \"fused_calls\": " << r.fused_calls
     << ", \"elementwise_calls\": " << r.elementwise_calls << "}, ";

  os << "\"parallel\": {\"used\": " << (r.parallel ? "true" : "false")
     << ", \"threads\": " << r.threads
     << ", \"spawn_levels\": " << r.spawn_levels
     << ", \"tasks\": " << r.tasks_executed << ", \"steals\": " << r.steals
     << ", \"task_busy_s\": ";
  put_double(os, r.task_busy_seconds);
  os << ", \"utilization\": ";
  put_double(os, r.pool_utilization());
  os << ", \"per_thread_tasks\": [";
  for (std::size_t i = 0; i < r.per_thread_tasks.size(); ++i)
    os << (i == 0 ? "" : ", ") << r.per_thread_tasks[i];
  os << "]}, ";

  os << "\"batch\": {\"count\": " << r.batch_count
     << ", \"classes\": " << r.batch_classes
     << ", \"plan_cache_hits\": " << r.batch_plan_cache_hits
     << ", \"plan_cache_misses\": " << r.batch_plan_cache_misses
     << ", \"workspace_acquisitions\": " << r.batch_workspace_acquisitions
     << ", \"workspace_cold_allocs\": " << r.batch_workspace_cold_allocs
     << ", \"tune_cache\": ";
  put_string(os, r.tune_cache[0] != '\0' ? r.tune_cache : "off");
  os << "}}";
}

std::string to_json(const GemmReport& r) {
  std::ostringstream os;
  write_json(os, r);
  return os.str();
}

}  // namespace strassen::obs
