// Unit tests for AlignedBuffer (src/common/aligned_buffer).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/aligned_buffer.hpp"

namespace strassen {
namespace {

TEST(AlignedBuffer, DefaultIsEmpty) {
  AlignedBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size_bytes(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, AllocatesRequestedSize) {
  AlignedBuffer b(1000);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.size_bytes(), 1000u);
  EXPECT_NE(b.data(), nullptr);
}

TEST(AlignedBuffer, DefaultAlignmentIsCacheLine) {
  for (std::size_t bytes : {1u, 63u, 64u, 100u, 4096u}) {
    AlignedBuffer b(bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 64, 0u)
        << "bytes=" << bytes;
  }
}

TEST(AlignedBuffer, HonorsLargerAlignment) {
  AlignedBuffer b(100, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % 4096, 0u);
}

TEST(AlignedBuffer, RejectsNonPowerOfTwoAlignment) {
  EXPECT_THROW(AlignedBuffer(16, 48), std::invalid_argument);
  EXPECT_THROW(AlignedBuffer(16, 0), std::invalid_argument);
}

TEST(AlignedBuffer, ZeroFills) {
  AlignedBuffer b(64 * sizeof(double));
  auto* d = b.as<double>();
  for (int i = 0; i < 64; ++i) d[i] = 1.5;
  b.zero();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(d[i], 0.0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(256);
  void* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move) - tests the move
  AlignedBuffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(AlignedBuffer, ResetReleases) {
  AlignedBuffer b(128);
  b.reset();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size_bytes(), 0u);
}

TEST(AlignedBuffer, ZeroSizeIsEmpty) {
  AlignedBuffer b(0);
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace strassen
