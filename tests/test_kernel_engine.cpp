// Conformance and dispatch tests for the leaf-kernel engine
// (src/blas/kernels/).  Every kernel variant compiled into this binary AND
// runnable on this host is checked against a naive oracle over edge shapes,
// both store modes and several alphas; variants the host cannot execute are
// skipped at runtime (so the same test binary passes on any machine).  The
// scalar table is additionally required to be BIT-identical to the generic
// MemModel kernel -- the seed library's behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "blas/kernels.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/level1.hpp"
#include "common/arena.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "trace/memmodel.hpp"
#include "trace/presets.hpp"

namespace strassen::blas::kernels {
namespace {

// FMA contraction and blocked accumulation reorder the k-sum, so SIMD
// kernels differ from the oracle by O(k) ulps on uniform [0,1) data.
constexpr double kTol = 1e-12;

// All (kernel, variant) configurations this binary can actually run.
struct Config {
  Kind kind;
  Avx2Variant variant;
  std::string name;
};

std::vector<Config> runnable_configs() {
  std::vector<Config> out;
  for (Kind kind : available_kernels()) {
    if (kind == Kind::kAvx2) {
      out.push_back({kind, Avx2Variant::k8x6, "avx2-8x6"});
      out.push_back({kind, Avx2Variant::k4x8, "avx2-4x8"});
      out.push_back({kind, Avx2Variant::kAuto, "avx2-auto"});
    } else {
      out.push_back({kind, Avx2Variant::kAuto, kind_name(kind)});
    }
  }
  return out;
}

// The oracle, written to match gemm_leaf's contract (not dgemm's beta).
void oracle_gemm(int m, int n, int k, const double* A, int lda,
                 const double* B, int ldb, double* C, int ldc, LeafMode mode,
                 double alpha) {
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p)
        acc += A[static_cast<std::size_t>(p) * lda + i] *
               B[static_cast<std::size_t>(j) * ldb + p];
      double& c = C[static_cast<std::size_t>(j) * ldc + i];
      c = (mode == LeafMode::Overwrite ? 0.0 : c) + alpha * acc;
    }
  }
}

// ---- registry / dispatch ---------------------------------------------------

TEST(KernelRegistry, ScalarIsAlwaysCompiledAndAvailable) {
  EXPECT_TRUE(is_available(Kind::kScalar));
  EXPECT_NE(kernel_table(Kind::kScalar), nullptr);
  bool scalar_listed = false;
  for (Kind k : compiled_kernels())
    if (k == Kind::kScalar) scalar_listed = true;
  EXPECT_TRUE(scalar_listed);
  EXPECT_FALSE(available_kernels().empty());
}

TEST(KernelRegistry, ActiveTableIsNeverNullAndMatchesKind) {
  const LeafKernels& t = active();
  EXPECT_EQ(t.kind, active_kernel());
  EXPECT_NE(t.gemm, nullptr);
  EXPECT_NE(t.vadd, nullptr);
  EXPECT_NE(t.vsub, nullptr);
  EXPECT_NE(t.vadd_inplace, nullptr);
  EXPECT_NE(t.vsub_inplace, nullptr);
}

TEST(KernelRegistry, UnavailableKindDegradesToScalar) {
  for (Kind kind : {Kind::kAvx2, Kind::kNeon}) {
    if (is_available(kind)) continue;
    ScopedKernel pin(kind);
    EXPECT_EQ(active_kernel(), Kind::kScalar)
        << "unavailable kind " << kind_name(kind) << " must degrade";
  }
}

TEST(KernelRegistry, ScopedKernelRestores) {
  const Kind before = active_kernel();
  const Avx2Variant vbefore = avx2_variant();
  {
    ScopedKernel pin(Kind::kScalar, Avx2Variant::k4x8);
    EXPECT_EQ(active_kernel(), Kind::kScalar);
    EXPECT_EQ(avx2_variant(), Avx2Variant::k4x8);
  }
  EXPECT_EQ(active_kernel(), before);
  EXPECT_EQ(avx2_variant(), vbefore);
}

TEST(KernelRegistry, EnvOverrideParsesAndDegrades) {
  const Kind before = active_kernel();
  const Avx2Variant vbefore = avx2_variant();
  // Unknown value: never silently enables SIMD.
  ::setenv("STRASSEN_KERNEL", "bogus", 1);
  set_active_kernel(Kind::kAuto);
  EXPECT_EQ(active_kernel(), Kind::kScalar);
  ::setenv("STRASSEN_KERNEL", "scalar", 1);
  set_active_kernel(Kind::kAuto);
  EXPECT_EQ(active_kernel(), Kind::kScalar);
  if (is_available(Kind::kAvx2)) {
    ::setenv("STRASSEN_KERNEL", "avx2-4x8", 1);
    set_active_kernel(Kind::kAuto);
    EXPECT_EQ(active_kernel(), Kind::kAvx2);
    EXPECT_EQ(avx2_variant(), Avx2Variant::k4x8);
  }
  ::unsetenv("STRASSEN_KERNEL");
  set_active_kernel(Kind::kAuto);  // back to the probe default
  EXPECT_EQ(active_kernel(), cpu_supports(Kind::kAvx2) &&
                                     kernel_table(Kind::kAvx2) != nullptr
                                 ? Kind::kAvx2
                                 : before);
  set_active_kernel(before);
  set_avx2_variant(vbefore);
}

TEST(KernelRegistry, Names) {
  EXPECT_STREQ(kind_name(Kind::kScalar), "scalar");
  EXPECT_STREQ(kind_name(Kind::kAvx2), "avx2");
  EXPECT_STREQ(kind_name(Kind::kNeon), "neon");
  EXPECT_STREQ(kind_name(Kind::kAuto), "auto");
  EXPECT_STREQ(variant_name(Avx2Variant::k8x6), "8x6");
  EXPECT_STREQ(variant_name(Avx2Variant::k4x8), "4x8");
}

// ---- gemm conformance: every runnable variant vs the oracle ---------------

using Shape = std::tuple<int, int, int>;  // m, n, k

const std::vector<Shape>& conformance_shapes() {
  // Multiples of the register blocks, off-by-one edges, degenerate k, and
  // shapes where m/n are not multiples of any MR/NR.
  static const std::vector<Shape> shapes = {
      {1, 1, 1},    {4, 4, 4},   {8, 6, 16},  {8, 8, 8},    {16, 12, 20},
      {6, 8, 12},   {5, 7, 9},   {17, 19, 23}, {16, 16, 0}, {16, 16, 1},
      {33, 31, 29}, {64, 64, 64}, {1, 64, 64}, {64, 1, 64},  {64, 64, 1},
      {2, 3, 5},    {9, 13, 31}};
  return shapes;
}

TEST(KernelConformance, AllVariantsMatchOracle) {
  for (const Config& cfg : runnable_configs()) {
    ScopedKernel pin(cfg.kind, cfg.variant);
    for (const auto& [m, n, k] : conformance_shapes()) {
      Rng rng(static_cast<std::uint64_t>(m * 131 + n * 17 + k + 7));
      Matrix<double> A(m, std::max(k, 1)), B(std::max(k, 1), n);
      Matrix<double> C(m, n), Ref(m, n);
      rng.fill_uniform(A.storage());
      rng.fill_uniform(B.storage());
      for (LeafMode mode : {LeafMode::Overwrite, LeafMode::Accumulate}) {
        for (double alpha : {0.0, 1.0, -1.0, 2.5}) {
          rng.fill_uniform(C.storage());
          copy_matrix<double>(C.view(), Ref.view());
          active().gemm(m, n, k, A.data(), A.ld(), B.data(), B.ld(), C.data(),
                        C.ld(), mode, alpha);
          oracle_gemm(m, n, k, A.data(), A.ld(), B.data(), B.ld(), Ref.data(),
                      Ref.ld(), mode, alpha);
          EXPECT_LT(max_abs_diff<double>(C.view(), Ref.view()),
                    kTol * (k + 1) * std::max(1.0, std::abs(alpha)))
              << cfg.name << " m=" << m << " n=" << n << " k=" << k
              << " mode=" << (mode == LeafMode::Overwrite ? "ow" : "acc")
              << " alpha=" << alpha;
        }
      }
    }
  }
}

TEST(KernelConformance, StridedOperandsMatchOracle) {
  // Leading dimensions larger than the row count (edge tiles, blocked gemm).
  for (const Config& cfg : runnable_configs()) {
    ScopedKernel pin(cfg.kind, cfg.variant);
    const int m = 13, n = 11, k = 17, pad = 5;
    Rng rng(99);
    Matrix<double> A(m, k, m + pad), B(k, n, k + pad), C(m, n, m + pad),
        Ref(m, n, m + pad);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    rng.fill_uniform(C.storage());
    copy_matrix<double>(C.view(), Ref.view());
    active().gemm(m, n, k, A.data(), A.ld(), B.data(), B.ld(), C.data(),
                  C.ld(), LeafMode::Accumulate, -1.5);
    oracle_gemm(m, n, k, A.data(), A.ld(), B.data(), B.ld(), Ref.data(),
                Ref.ld(), LeafMode::Accumulate, -1.5);
    EXPECT_LT(max_abs_diff<double>(C.view(), Ref.view()), kTol * k * 1.5)
        << cfg.name;
  }
}

TEST(KernelConformance, OverwriteDoesNotReadC) {
  for (const Config& cfg : runnable_configs()) {
    ScopedKernel pin(cfg.kind, cfg.variant);
    const int m = 11, n = 7, k = 5;
    Rng rng(3);
    Matrix<double> A(m, k), B(k, n), C(m, n);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
    active().gemm(m, n, k, A.data(), A.ld(), B.data(), B.ld(), C.data(),
                  C.ld(), LeafMode::Overwrite, 1.0);
    for (const auto& x : C.storage()) EXPECT_FALSE(std::isnan(x)) << cfg.name;
  }
}

// ---- fused kernels vs materialized temporaries ----------------------------

TEST(KernelConformance, FusedMatchesMaterialized) {
  for (const Config& cfg : runnable_configs()) {
    const LeafKernels* tab = kernel_table(cfg.kind);
    ASSERT_NE(tab, nullptr);
    if (tab->gemm_fused_a == nullptr) continue;  // scalar: deliberately none
    ScopedKernel pin(cfg.kind, cfg.variant);
    for (const auto& [m, n, k] : conformance_shapes()) {
      if (k == 0) continue;  // fused entries serve leaf tiles, k >= 1
      Rng rng(static_cast<std::uint64_t>(m * 7 + n * 3 + k));
      Matrix<double> A1(m, k), A2(m, k), B1(k, n), B2(k, n);
      Matrix<double> S(m, k), T(k, n), C(m, n), Ref(m, n);
      rng.fill_uniform(A1.storage());
      rng.fill_uniform(A2.storage());
      rng.fill_uniform(B1.storage());
      rng.fill_uniform(B2.storage());
      for (FusedOp op : {FusedOp::kAdd, FusedOp::kSub}) {
        RawMem mm;
        if (op == FusedOp::kAdd) {
          blas::vadd(mm, S.storage().size(), S.data(), A1.data(), A2.data());
          blas::vadd(mm, T.storage().size(), T.data(), B1.data(), B2.data());
        } else {
          blas::vsub(mm, S.storage().size(), S.data(), A1.data(), A2.data());
          blas::vsub(mm, T.storage().size(), T.data(), B1.data(), B2.data());
        }
        const char* opname = op == FusedOp::kAdd ? "add" : "sub";
        // C = (A1 op A2) . B1  vs  S . B1 -- must be BIT-identical: the
        // fused loaders perform the same IEEE op element-wise, and the
        // accumulation order is that of the same kernel body.
        tab->gemm_fused_a(m, n, k, A1.data(), A2.data(), op, A1.ld(),
                          B1.data(), B1.ld(), C.data(), C.ld());
        active().gemm(m, n, k, S.data(), S.ld(), B1.data(), B1.ld(),
                      Ref.data(), Ref.ld(), LeafMode::Overwrite, 1.0);
        EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
            << cfg.name << " fused_a " << opname << " m=" << m << " n=" << n
            << " k=" << k;
        // C = A1 . (B1 op B2)
        tab->gemm_fused_b(m, n, k, A1.data(), A1.ld(), B1.data(), B2.data(),
                          op, B1.ld(), C.data(), C.ld());
        active().gemm(m, n, k, A1.data(), A1.ld(), T.data(), T.ld(),
                      Ref.data(), Ref.ld(), LeafMode::Overwrite, 1.0);
        EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
            << cfg.name << " fused_b " << opname;
        // C = (A1 op A2) . (B1 op B2)
        tab->gemm_fused_ab(m, n, k, A1.data(), A2.data(), op, A1.ld(),
                           B1.data(), B2.data(), op, B1.ld(), C.data(),
                           C.ld());
        active().gemm(m, n, k, S.data(), S.ld(), T.data(), T.ld(), Ref.data(),
                      Ref.ld(), LeafMode::Overwrite, 1.0);
        EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
            << cfg.name << " fused_ab " << opname;
      }
    }
  }
}

// ---- element-wise kernels --------------------------------------------------

TEST(KernelConformance, ElementWiseAllVariantsAndTails) {
  for (const Config& cfg : runnable_configs()) {
    const LeafKernels* tab = kernel_table(cfg.kind);
    ASSERT_NE(tab, nullptr);
    for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                          std::size_t{7}, std::size_t{64}, std::size_t{65}}) {
      Rng rng(n * 5 + 1);
      std::vector<double> a(n), b(n), d(n), ref(n);
      rng.fill_uniform(a);
      rng.fill_uniform(b);
      tab->vadd(n, d.data(), a.data(), b.data());
      for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] + b[i];
      EXPECT_EQ(d, ref) << cfg.name << " vadd n=" << n;
      tab->vsub(n, d.data(), a.data(), b.data());
      for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] - b[i];
      EXPECT_EQ(d, ref) << cfg.name << " vsub n=" << n;
      d = a;
      tab->vadd_inplace(n, d.data(), b.data());
      for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] + b[i];
      EXPECT_EQ(d, ref) << cfg.name << " vadd_inplace n=" << n;
      d = a;
      tab->vsub_inplace(n, d.data(), b.data());
      for (std::size_t i = 0; i < n; ++i) ref[i] = a[i] - b[i];
      EXPECT_EQ(d, ref) << cfg.name << " vsub_inplace n=" << n;
    }
  }
}

TEST(KernelConformance, ElementWiseExactAliasing) {
  // The schedules call these with dst == a and dst == b; every table must
  // honour the exact-alias contract of level1.hpp.
  for (const Config& cfg : runnable_configs()) {
    const LeafKernels* tab = kernel_table(cfg.kind);
    ASSERT_NE(tab, nullptr);
    const std::size_t n = 67;
    Rng rng(13);
    std::vector<double> a0(n), b0(n);
    rng.fill_uniform(a0);
    rng.fill_uniform(b0);
    std::vector<double> d, ref(n);

    d = a0;  // dst == a:  d = d + b
    tab->vadd(n, d.data(), d.data(), b0.data());
    for (std::size_t i = 0; i < n; ++i) ref[i] = a0[i] + b0[i];
    EXPECT_EQ(d, ref) << cfg.name << " vadd dst==a";
    d = b0;  // dst == b:  d = a - d
    tab->vsub(n, d.data(), a0.data(), d.data());
    for (std::size_t i = 0; i < n; ++i) ref[i] = a0[i] - b0[i];
    EXPECT_EQ(d, ref) << cfg.name << " vsub dst==b";
    d = a0;  // dst == a (inplace):  d += d
    tab->vadd_inplace(n, d.data(), d.data());
    for (std::size_t i = 0; i < n; ++i) ref[i] = a0[i] + a0[i];
    EXPECT_EQ(d, ref) << cfg.name << " vadd_inplace dst==a";
    d = a0;  // dst == a (inplace):  d -= d
    tab->vsub_inplace(n, d.data(), d.data());
    for (std::size_t i = 0; i < n; ++i) ref[i] = 0.0;
    EXPECT_EQ(d, ref) << cfg.name << " vsub_inplace dst==a";
  }
}

// ---- seed bit-exactness ----------------------------------------------------

TEST(KernelBitExactness, ScalarTableIsGenericKernelBitForBit) {
  // The scalar table must reproduce gemm_leaf_generic(RawMem) -- the seed
  // library's leaf kernel -- exactly, for every shape and mode.
  const LeafKernels* tab = kernel_table(Kind::kScalar);
  ASSERT_NE(tab, nullptr);
  for (const auto& [m, n, k] : conformance_shapes()) {
    Rng rng(static_cast<std::uint64_t>(m + n * 41 + k * 577));
    Matrix<double> A(m, std::max(k, 1)), B(std::max(k, 1), n);
    Matrix<double> C1(m, n), C2(m, n);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    for (LeafMode mode : {LeafMode::Overwrite, LeafMode::Accumulate}) {
      rng.fill_uniform(C1.storage());
      copy_matrix<double>(C1.view(), C2.view());
      tab->gemm(m, n, k, A.data(), A.ld(), B.data(), B.ld(), C1.data(),
                C1.ld(), mode, 2.5);
      RawMem mm;
      blas::gemm_leaf_generic(mm, m, n, k, A.data(), A.ld(), B.data(), B.ld(),
                              C2.data(), C2.ld(), mode, 2.5);
      EXPECT_EQ(max_abs_diff<double>(C1.view(), C2.view()), 0.0)
          << "m=" << m << " n=" << n << " k=" << k;
    }
  }
}

TEST(KernelBitExactness, TracedRunIsIndependentOfActiveKernel) {
  // The engine never serves TracingMem: a traced execution must produce
  // bit-identical values AND the identical simulated address stream whether
  // the process-global active kernel is scalar or SIMD.  (This is the seed
  // compatibility guarantee for the cache-simulation results -- the traced
  // code path itself is untouched by the engine.)
  const int n = 96;
  Rng rng(21);
  Matrix<double> A(n, n), B(n, n), C1(n, n), C2(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::ModgemmOptions opt;
  opt.tiles.direct_threshold = 16;  // force the Strassen path

  trace::CacheHierarchy h1 = trace::paper_fig9_cache();
  trace::TracingMem tmm1(h1);
  {
    ScopedKernel pin(Kind::kScalar);
    core::modgemm_mm(tmm1, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                     A.ld(), B.data(), B.ld(), 0.0, C1.data(), C1.ld(), opt);
  }
  trace::CacheHierarchy h2 = trace::paper_fig9_cache();
  trace::TracingMem tmm2(h2);
  // Default (possibly SIMD) kernel active.
  core::modgemm_mm(tmm2, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                   A.ld(), B.data(), B.ld(), 0.0, C2.data(), C2.ld(), opt);
  EXPECT_EQ(max_abs_diff<double>(C1.view(), C2.view()), 0.0);
  EXPECT_EQ(h1.total_accesses(), h2.total_accesses());

  // And the traced values agree with a scalar-pinned production run to leaf
  // accumulation-order rounding (FMA contraction differs between the two
  // instantiations, so bit-identity across memory models is NOT a goal).
  Matrix<double> Craw(n, n);
  core::ModgemmOptions ropt = opt;
  ropt.kernel = Kind::kScalar;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, Craw.data(), Craw.ld(), ropt);
  EXPECT_LT(max_abs_diff<double>(Craw.view(), C1.view()), 1e-11 * n);
}

TEST(KernelBitExactness, ModgemmKernelPinIsScopedToTheCall) {
  const Kind before = active_kernel();
  const int n = 40;
  Rng rng(5);
  Matrix<double> A(n, n), B(n, n), C(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::ModgemmOptions opt;
  opt.kernel = Kind::kScalar;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld(), opt);
  EXPECT_EQ(active_kernel(), before);  // pin restored after the call
}

TEST(KernelBitExactness, SimdModgemmMatchesScalarWithinTolerance) {
  // Sanity bound on the whole-algorithm effect of switching kernels: the
  // SIMD run differs from the scalar run only by leaf accumulation order.
  if (runnable_configs().size() <= 1) GTEST_SKIP() << "scalar-only host";
  const int n = 200;
  Rng rng(77);
  Matrix<double> A(n, n), B(n, n), Cs(n, n), Cv(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::ModgemmOptions scalar_opt;
  scalar_opt.tiles.direct_threshold = 32;
  scalar_opt.kernel = Kind::kScalar;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, Cs.data(), Cs.ld(), scalar_opt);
  core::ModgemmOptions simd_opt;
  simd_opt.tiles.direct_threshold = 32;  // kernel left to the probe default
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, Cv.data(), Cv.ld(), simd_opt);
  EXPECT_LT(max_abs_diff<double>(Cs.view(), Cv.view()), 1e-10 * n);
}

// ---- alignment contract ----------------------------------------------------

TEST(AlignmentContract, AlignedBufferReportsItsAlignment) {
  AlignedBuffer buf(1000);
  EXPECT_EQ(buf.alignment(), AlignedBuffer::kDefaultAlignment);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                AlignedBuffer::kDefaultAlignment,
            0u);
  AlignedBuffer wide(1000, 4096);
  EXPECT_EQ(wide.alignment(), 4096u);
  AlignedBuffer empty;
  EXPECT_EQ(empty.alignment(), 0u);
  AlignedBuffer moved(std::move(buf));
  EXPECT_EQ(moved.alignment(), AlignedBuffer::kDefaultAlignment);
  EXPECT_EQ(buf.alignment(), 0u);  // NOLINT(bugprone-use-after-move)
}

TEST(AlignmentContract, ArenaPushesAreCacheLineAligned) {
  Arena arena(1 << 16);
  EXPECT_GE(arena.alignment(), Arena::kChunkAlignment);
  // Odd-sized pushes must not knock later allocations off the contract the
  // SIMD kernels (and the Morton buffers) rely on.
  for (std::size_t count : {1, 3, 7, 64, 129}) {
    double* p = arena.push<double>(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % Arena::kChunkAlignment,
              0u)
        << "count=" << count;
  }
}

}  // namespace
}  // namespace strassen::blas::kernels
