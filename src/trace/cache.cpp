#include "trace/cache.hpp"

#include <bit>

#include "common/check.hpp"

namespace strassen::trace {

namespace {
bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

Cache::Cache(const CacheConfig& config) : config_(config) {
  STRASSEN_REQUIRE(is_pow2(config.block_bytes), "block size must be 2^k");
  STRASSEN_REQUIRE(config.associativity >= 1, "associativity must be >= 1");
  STRASSEN_REQUIRE(config.size_bytes %
                           (config.block_bytes * config.associativity) ==
                       0,
                   "cache size must be a whole number of sets");
  num_sets_ =
      config.size_bytes / (config.block_bytes * config.associativity);
  STRASSEN_REQUIRE(is_pow2(num_sets_), "set count must be a power of two");
  block_shift_ = std::countr_zero(config.block_bytes);
  ways_.assign(num_sets_ * config.associativity, kEmpty);
  shadow_capacity_ = config.size_bytes / config.block_bytes;
}

bool Cache::access(std::uintptr_t addr, bool is_write) {
  ++accesses_;
  if (is_write) ++writes_;
  const std::uint64_t block = static_cast<std::uint64_t>(addr) >> block_shift_;
  const std::size_t set = static_cast<std::size_t>(block) & (num_sets_ - 1);
  const int assoc = config_.associativity;
  std::uint64_t* w = &ways_[set * assoc];

  bool hit = false;
  if (assoc == 1) {  // direct-mapped fast path (the paper's Fig. 9 geometry)
    hit = (w[0] == block);
    if (!hit) {
      w[0] = block;
      ++misses_;
    }
  } else {
    for (int i = 0; i < assoc; ++i) {
      if (w[i] == block) {
        // Move to MRU position (true LRU ordering).
        for (int j = i; j > 0; --j) w[j] = w[j - 1];
        w[0] = block;
        hit = true;
        break;
      }
    }
    if (!hit) {
      ++misses_;
      for (int j = assoc - 1; j > 0; --j) w[j] = w[j - 1];
      w[0] = block;
    }
  }

  if (config_.classify) {
    // Shadow hit status must be sampled BEFORE touching the shadow model.
    const bool shadow_hit = shadow_index_.find(block) != shadow_index_.end();
    shadow_touch(block);
    if (!hit) classify_miss_tally(block, shadow_hit);
  }
  return hit;
}

void Cache::shadow_touch(std::uint64_t block) {
  auto it = shadow_index_.find(block);
  if (it != shadow_index_.end()) {
    shadow_lru_.splice(shadow_lru_.begin(), shadow_lru_, it->second);
    return;
  }
  shadow_lru_.push_front(block);
  shadow_index_[block] = shadow_lru_.begin();
  if (shadow_lru_.size() > shadow_capacity_) {
    shadow_index_.erase(shadow_lru_.back());
    shadow_lru_.pop_back();
  }
}

void Cache::classify_miss_tally(std::uint64_t block, bool shadow_hit) {
  if (ever_seen_.insert(block).second) {
    ++breakdown_.compulsory;  // first touch of this block ever
  } else if (!shadow_hit) {
    ++breakdown_.capacity;  // even full associativity would have missed
  } else {
    ++breakdown_.conflict;  // only the set mapping missed
  }
}

void Cache::reset_stats() {
  accesses_ = 0;
  misses_ = 0;
  writes_ = 0;
  breakdown_ = MissBreakdown{};
}

void Cache::flush() {
  reset_stats();
  ways_.assign(ways_.size(), kEmpty);
  ever_seen_.clear();
  shadow_lru_.clear();
  shadow_index_.clear();
}

CacheHierarchy::CacheHierarchy(std::string name,
                               std::vector<CacheConfig> levels,
                               double memory_latency)
    : name_(std::move(name)), memory_latency_(memory_latency) {
  STRASSEN_REQUIRE(!levels.empty(), "hierarchy needs at least one level");
  levels_.reserve(levels.size());
  for (const auto& cfg : levels) levels_.emplace_back(cfg);
}

void CacheHierarchy::access(std::uintptr_t addr, bool is_write) {
  for (auto& level : levels_) {
    if (level.access(addr, is_write)) return;
  }
  ++memory_accesses_;
}

void CacheHierarchy::reset_stats() {
  for (auto& level : levels_) level.reset_stats();
  memory_accesses_ = 0;
}

void CacheHierarchy::flush() {
  for (auto& level : levels_) level.flush();
  memory_accesses_ = 0;
}

double CacheHierarchy::estimated_cycles() const {
  double cycles = 0.0;
  for (const auto& level : levels_) {
    const std::uint64_t hits = level.accesses() - level.misses();
    cycles += static_cast<double>(hits) * level.config().hit_latency;
  }
  cycles += static_cast<double>(memory_accesses_) * memory_latency_;
  return cycles;
}

}  // namespace strassen::trace
