// Unit and property tests for the truncation-point planner (src/layout/plan).
//
// The paper's worked examples (S3.4) are hard requirements:
//   n = 513: T = 33, depth 4, padded 528 (pad 15 -- the worst case for the
//            16..64 range at this scale);
//   n in [505, 512]: padded 512, T = 32, depth 4;
//   fixed T = 32 at n = 513: padded 1024.
#include <gtest/gtest.h>

#include "layout/plan.hpp"

namespace strassen::layout {
namespace {

TEST(ChooseDim, PaperExampleN513) {
  const DimPlan p = choose_dim(513);
  EXPECT_EQ(p.tile, 33);
  EXPECT_EQ(p.depth, 4);
  EXPECT_EQ(p.padded, 528);
  EXPECT_EQ(p.pad(), 15);
}

TEST(ChooseDim, PaperExample505To512) {
  for (int n = 505; n <= 512; ++n) {
    const DimPlan p = choose_dim(n);
    EXPECT_EQ(p.padded, 512) << "n=" << n;
    EXPECT_EQ(p.tile, 32) << "n=" << n;
    EXPECT_EQ(p.depth, 4) << "n=" << n;
  }
}

TEST(FixedTile, PaperPathologyN513) {
  const DimPlan p = fixed_tile_dim(513, 32);
  EXPECT_EQ(p.padded, 1024);
  EXPECT_EQ(p.depth, 5);
}

TEST(FixedTile, ExactPowerNeedsNoPad) {
  const DimPlan p = fixed_tile_dim(512, 32);
  EXPECT_EQ(p.padded, 512);
  EXPECT_EQ(p.depth, 4);
  EXPECT_EQ(p.pad(), 0);
}

TEST(FixedTile, SmallMatrixStaysAtDepthZero) {
  const DimPlan p = fixed_tile_dim(20, 32);
  EXPECT_EQ(p.depth, 0);
  EXPECT_EQ(p.padded, 32);
}

TEST(ChooseDim, SmallSizesRunDirect) {
  for (int n : {1, 7, 16, 33, 64}) {
    const DimPlan p = choose_dim(n);
    EXPECT_EQ(p.depth, 0) << "n=" << n;
    EXPECT_EQ(p.pad(), 0) << "n=" << n;
    EXPECT_EQ(p.tile, n) << "n=" << n;
  }
}

// Property sweep over every size the paper's evaluation touches and beyond.
class ChooseDimSweep : public ::testing::TestWithParam<int> {};

TEST_P(ChooseDimSweep, InvariantsHold) {
  const int n = GetParam();
  const TileOptions opt;
  const DimPlan p = choose_dim(n, opt);
  // Padded size covers n and factors exactly as tile * 2^depth.
  EXPECT_GE(p.padded, n);
  EXPECT_EQ(p.padded, p.tile << p.depth);
  if (p.depth > 0) {
    EXPECT_GE(p.tile, opt.min_tile);
    EXPECT_LE(p.tile, opt.max_tile);
    // The paper's bound: with the 16..64 range, padding never exceeds
    // 2^depth - 1 (15 in the worst case for n <= 1024-scale problems).
    EXPECT_LT(p.pad(), 1 << p.depth);
  }
}

TEST_P(ChooseDimSweep, NoFeasibleDepthPadsLess) {
  const int n = GetParam();
  const TileOptions opt;
  const DimPlan best = choose_dim(n, opt);
  if (best.depth == 0) return;
  for (int d : feasible_depths(n, opt)) {
    if (d == 0) continue;
    const DimPlan cand = choose_dim_at_depth(n, d, opt);
    ASSERT_NE(cand.tile, 0);
    EXPECT_GE(cand.pad(), best.pad()) << "depth " << d << " beats the choice";
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, ChooseDimSweep,
                         ::testing::Range(65, 1300, 7));
INSTANTIATE_TEST_SUITE_P(Large, ChooseDimSweep,
                         ::testing::Values(2048, 2049, 3000, 4097, 8191));

TEST(ChooseDimAtDepth, InfeasibleWhenTileOutOfRange) {
  // depth 1 for n = 513 would need tile 257 > 64.
  EXPECT_EQ(choose_dim_at_depth(513, 1).tile, 0);
  // depth 6 for n = 513 would need tile 9 < 16.
  EXPECT_EQ(choose_dim_at_depth(513, 6).tile, 0);
  // depth 0 feasible only when n itself fits a "tile".
  EXPECT_EQ(choose_dim_at_depth(513, 0).tile, 0);
  EXPECT_EQ(choose_dim_at_depth(60, 0).tile, 60);
}

TEST(FeasibleDepths, WindowIsContiguousAndCorrect) {
  const auto ds = feasible_depths(513);
  ASSERT_EQ(ds.size(), 2u);  // depths 4 and 5 (tiles 33 and 17)
  EXPECT_EQ(ds[0], 4);
  EXPECT_EQ(ds[1], 5);
}

TEST(FeasibleDepths, EveryListedDepthIsActuallyFeasible) {
  for (int n : {100, 256, 513, 1000, 1024}) {
    for (int d : feasible_depths(n)) {
      EXPECT_NE(choose_dim_at_depth(n, d).tile, 0) << "n=" << n << " d=" << d;
    }
  }
}

TEST(PlanGemm, SquareProblemsUseOneDepth) {
  const GemmPlan p = plan_gemm(700, 700, 700);
  EXPECT_TRUE(p.feasible);
  EXPECT_FALSE(p.direct);
  EXPECT_EQ(p.m.depth, p.k.depth);
  EXPECT_EQ(p.k.depth, p.n.depth);
  EXPECT_EQ(p.m.tile, p.k.tile);
}

TEST(PlanGemm, ThinProblemsGoDirect) {
  EXPECT_TRUE(plan_gemm(1000, 64, 1000).direct);
  EXPECT_TRUE(plan_gemm(10, 10, 10).direct);
  EXPECT_TRUE(plan_gemm(1, 1000, 1000).direct);
}

TEST(PlanGemm, PaperRectangular1024x256IsFeasibleWithFullRange) {
  // The paper's 1024 x 256 example: choosing both tiles independently as 32
  // fails (depths 5 vs 3), but the full 16..64 range admits depth 4 with
  // tiles 64 and 16.
  const GemmPlan p = plan_gemm(1024, 256, 1024);
  EXPECT_TRUE(p.feasible);
  EXPECT_EQ(p.m.depth, p.k.depth);
}

TEST(PlanGemm, ExtremeAspectRatioIsInfeasible) {
  const GemmPlan p = plan_gemm(4096, 256, 4096);
  EXPECT_FALSE(p.direct);
  EXPECT_FALSE(p.feasible);
}

TEST(PlanGemm, MildRectangularSweepSharesDepth) {
  // Dimensions within a factor of two always share a depth.  (A factor of
  // four -- e.g. 150 vs 600 -- can already fall between depth windows, which
  // is exactly what the split path exists for; see test_split.cpp.)
  for (int m : {150, 200, 300}) {
    for (int k : {150, 200, 300}) {
      for (int n : {150, 200, 300}) {
        const GemmPlan p = plan_gemm(m, k, n);
        ASSERT_TRUE(p.feasible || p.direct) << m << "x" << k << "x" << n;
        if (!p.direct) {
          EXPECT_EQ(p.m.depth, p.n.depth);
          EXPECT_GE(p.m.padded, m);
          EXPECT_GE(p.k.padded, k);
          EXPECT_GE(p.n.padded, n);
        }
      }
    }
  }
}

TEST(PlanGemm, FactorOfFourCanStraddleDepthWindows) {
  // 150 admits depths {2,3}; 600 admits {4,5}: no common depth.  The driver
  // must route such shapes through the splitter.
  const GemmPlan p = plan_gemm(150, 600, 150);
  EXPECT_FALSE(p.direct);
  EXPECT_FALSE(p.feasible);
}

TEST(ChooseDim, WindowGapFallsBackToDepthZero) {
  // direct_threshold < n < 2*min_tile: no depth >= 1 is feasible (ceil(n/2)
  // undershoots min_tile) yet n is above the direct threshold.  The fallback
  // must return the depth-0 single-tile plan, never a zero tile.
  TileOptions opt;
  opt.min_tile = 12;
  opt.max_tile = 32;
  opt.preferred_tile = 12;
  opt.direct_threshold = 16;
  const DimPlan p = choose_dim(22, opt);
  EXPECT_EQ(p.tile, 22);
  EXPECT_EQ(p.depth, 0);
  EXPECT_EQ(p.padded, 22);
}

TEST(PlanGemm, WindowGapDimsRunDirect) {
  // All three dims fit one tile but 22 sits in the window gap, so no common
  // depth >= 1 exists.  Splitting cannot help (chunks would be no larger),
  // so the plan must degrade to direct -- the autotuner's crossover probe
  // hits exactly this shape when a forced <3,2,3> family ceil-partitions a
  // 64^3 product into 22x22x32 sub-products under tiles {12,32,12,16}.
  TileOptions opt;
  opt.min_tile = 12;
  opt.max_tile = 32;
  opt.preferred_tile = 12;
  opt.direct_threshold = 16;
  const GemmPlan p = plan_gemm(22, 32, 22, opt);
  EXPECT_TRUE(p.direct);
  EXPECT_EQ(p.m.tile, 22);
  EXPECT_EQ(p.k.tile, 32);
  EXPECT_EQ(p.n.tile, 22);
}

TEST(TileOptions, ValidationRejectsDegenerateRanges) {
  TileOptions bad;
  bad.min_tile = 40;
  bad.max_tile = 64;  // less than 2x min: depth windows would not overlap
  EXPECT_THROW(choose_dim(100, bad), std::invalid_argument);
  TileOptions bad2;
  bad2.min_tile = 0;
  EXPECT_THROW(choose_dim(100, bad2), std::invalid_argument);
}

TEST(TileOptions, CustomRangeIsHonored) {
  TileOptions opt;
  opt.min_tile = 8;
  opt.max_tile = 32;
  opt.preferred_tile = 16;
  opt.direct_threshold = 32;
  const DimPlan p = choose_dim(513, opt);
  EXPECT_GE(p.tile, 8);
  EXPECT_LE(p.tile, 32);
  EXPECT_GE(p.padded, 513);
  EXPECT_EQ(p.padded, p.tile << p.depth);
}

TEST(PlanGemm, PaddedElemsCountsAllThreeOperands) {
  GemmPlan p;
  p.m = DimPlan{100, 25, 2, 100};
  p.k = DimPlan{200, 50, 2, 200};
  p.n = DimPlan{300, 75, 2, 300};
  EXPECT_EQ(p.padded_elems(), 100ll * 200 + 200ll * 300 + 100ll * 300);
}

}  // namespace
}  // namespace strassen::layout
