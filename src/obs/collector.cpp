#include "obs/collector.hpp"

namespace strassen::obs::detail {

thread_local Collector* tl_collector = nullptr;

}  // namespace strassen::obs::detail
