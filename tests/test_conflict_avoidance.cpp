// Tests for conflict-aware tile selection (the library's completion of the
// paper's S4.2 future work: eliminating the quadrant conflict misses behind
// Fig. 9's elevated ratios at n in [505,512]).
#include <gtest/gtest.h>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "layout/plan.hpp"
#include "trace/memmodel.hpp"
#include "trace/presets.hpp"

namespace strassen::layout {
namespace {

TileOptions avoiding_16kb() {
  TileOptions opt;
  opt.avoid_conflict_cache_bytes = 16 * 1024;
  return opt;
}

TEST(ConflictAvoidance, DisabledByDefault) {
  const TileOptions opt;
  EXPECT_FALSE(opt.tile_conflicts(32));
  EXPECT_EQ(choose_dim(512).tile, 32);  // the paper's (conflicting) choice
}

TEST(ConflictAvoidance, FlagsAlignedTiles) {
  const TileOptions opt = avoiding_16kb();
  // 2 * 32^2 * 8 = 16KB: leaf-level alignment.
  EXPECT_TRUE(opt.tile_conflicts(32));
  // 2 * 64^2 * 8 = 64KB: multiple of 16KB.
  EXPECT_TRUE(opt.tile_conflicts(64));
  // Tile 16 aligns one level up (2x2 groups are 16KB apart).
  EXPECT_TRUE(opt.tile_conflicts(16));
  // Odd tiles have odd T^2: separations are never 2^14-divisible at any
  // nearby level.
  EXPECT_FALSE(opt.tile_conflicts(33));
  EXPECT_FALSE(opt.tile_conflicts(17));
  EXPECT_FALSE(opt.tile_conflicts(63));
}

TEST(ConflictAvoidance, BumpsTheTileAtPowersOfTwo) {
  const TileOptions opt = avoiding_16kb();
  // n = 512 naturally wants T=32/padded 512 (all aligned); the avoider pays
  // 16 pad elements for T=33/padded 528 instead.
  const GemmPlan p = plan_gemm(512, 512, 512, opt);
  ASSERT_TRUE(p.feasible);
  EXPECT_FALSE(opt.tile_conflicts(p.m.tile));
  EXPECT_EQ(p.m.tile, 33);
  EXPECT_EQ(p.m.padded, 528);
}

TEST(ConflictAvoidance, LeavesNonConflictingSizesAlone) {
  const TileOptions opt = avoiding_16kb();
  const DimPlan with = choose_dim(513, opt);
  const DimPlan without = choose_dim(513);
  EXPECT_EQ(with.tile, without.tile);
  EXPECT_EQ(with.padded, without.padded);
}

TEST(ConflictAvoidance, ResultsRemainExact) {
  core::ModgemmOptions opt;
  opt.tiles.avoid_conflict_cache_bytes = 16 * 1024;
  const int n = 512;
  Rng rng(1);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(CapacityAwareness, DisabledByDefault) {
  // n = 1000 minimizes padding with T = 63 (padded 1008) -- a 93KB
  // three-tile working set.  The paper's pure-padding objective keeps it.
  const DimPlan p = choose_dim(1000);
  EXPECT_EQ(p.tile, 63);
  EXPECT_EQ(p.padded, 1008);
}

TEST(CapacityAwareness, PrefersDeeperRecursionOverOversizedTiles) {
  TileOptions opt;
  opt.max_tile_working_set_bytes = 48 * 1024;  // a 48KB L1 budget
  EXPECT_TRUE(opt.tile_oversized(63));   // 3*63^2*8 = 95KB
  EXPECT_FALSE(opt.tile_oversized(32));  // 24KB
  const DimPlan p = choose_dim(1000, opt);
  EXPECT_FALSE(opt.tile_oversized(p.tile));
  EXPECT_EQ(p.tile, 32);  // depth 5, padded 1024: fits the budget
  EXPECT_EQ(p.padded, 1024);
}

TEST(CapacityAwareness, ResultsRemainExactWithBothHeuristics) {
  core::ModgemmOptions opt;
  opt.tiles.avoid_conflict_cache_bytes = 16 * 1024;
  opt.tiles.max_tile_working_set_bytes = 16 * 1024;
  const int n = 1000;
  Rng rng(5);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(ConflictAvoidance, EliminatesTheFig9ConflictZone) {
  // The payoff: at n = 508 (inside the paper's conflict zone) the avoider's
  // simulated miss ratio must come down to (or below) the n=513 level.
  const int n = 508;
  Rng rng(2);
  Matrix<double> A(n, n), B(n, n), C(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  auto run = [&](std::size_t avoid_bytes) {
    trace::CacheHierarchy h = trace::paper_fig9_cache();
    trace::TracingMem mm(h);
    core::ModgemmOptions opt;
    opt.tiles.avoid_conflict_cache_bytes = avoid_bytes;
    // The conflict zone is a <2,2,2> Morton-layout story; pin the family so
    // a forced STRASSEN_ALGO run cannot reroute it (pin > env).
    opt.algo = analysis::AlgoFamily::k222;
    core::modgemm_mm(mm, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                     B.data(), n, 0.0, C.data(), n, opt);
    return h.l1_miss_ratio();
  };
  const double baseline = run(0);
  const double avoided = run(16 * 1024);
  EXPECT_LT(avoided, 0.6 * baseline);
}

}  // namespace
}  // namespace strassen::layout
