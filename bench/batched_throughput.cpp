// batched_throughput -- batched GEMM service throughput (docs/BATCHED.md).
//
// A serving workload is torrents of small/medium products, not one large
// one: per inference a Go/chess engine issues dozens of identically-shaped
// GEMMs (the Sayuri-style 256x361x256 im2col rectangle is the canonical
// example).  This bench measures what core::modgemm_batched buys over the
// naive per-item loop at that shape regime:
//
//   batched-loop    per-item core::modgemm loop (plans, allocates and
//                   reports per product) -- the in-run baseline row
//   batched-serial  modgemm_batched with a null pool: one planning pass per
//                   class + per-thread arena reuse, no parallelism
//   batched-pool    modgemm_batched on the work-stealing pool: products
//                   parallelize across each other
//
// Raw GFLOP/s are machine-dependent, so tools/compare_bench.py gates the
// batched-serial / batched-pool rows on their speedup over the same-run
// batched-loop row at the same size ("tile" column = n).
//
// Extra flag (on top of the common --quick/--csv/--json set):
//   --tune   skip the sweep; run one tuned batch (BatchedOptions::tune) and
//            print its report's tune-cache state ("tune_cache: cold|warm|
//            rejected|off").  With STRASSEN_TUNE_CACHE=path set, running
//            this twice proves the warm-start round trip (CI does exactly
//            that).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/batched.hpp"
#include "obs/report.hpp"
#include "parallel/thread_pool.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

namespace {

struct Shape {
  int m, n, k;
  const char* what;
};

// The service regime: small/medium squares plus the Sayuri-shaped im2col
// rectangle (k = 3x3 patches over 256 channels would be bigger; 361 = 19x19
// board positions is the n of the engine's ConvolutionSgemm batches).
const Shape kShapes[] = {
    {64, 64, 64, "small square"},
    {128, 128, 128, "medium square"},
    {256, 256, 256, "large square"},
    {256, 361, 256, "Sayuri im2col rectangle"},
};

// One batch of independent random products of one shape.  Items point into
// the Problem matrices, so `prods` is reserved up front and never reallocated.
struct BatchProblem {
  std::vector<bench::Problem> prods;
  std::vector<core::BatchItem> items;

  BatchProblem(const Shape& s, int batch) {
    prods.reserve(static_cast<std::size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      prods.emplace_back(s.m, s.n, s.k,
                         static_cast<std::uint64_t>(s.n) * 131 + i);
      bench::Problem& p = prods.back();
      core::BatchItem it;
      it.m = p.m;
      it.n = p.n;
      it.k = p.k;
      it.A = p.A.data();
      it.lda = p.A.ld();
      it.B = p.B.data();
      it.ldb = p.B.ld();
      it.beta = 0.0;
      it.C = p.C.data();
      it.ldc = p.C.ld();
      items.push_back(it);
    }
  }
};

double gflops(const Shape& s, int batch, double seconds) {
  const double flops = 2.0 * s.m * s.n * s.k * batch;
  return flops / seconds / 1e9;
}

struct ResultRow {
  std::string kernel;
  int tile;
  double gflops;
};

// Runs one tuned (or untuned) instrumented batch and prints the v5 batch
// section; returns the report for JSON embedding.
obs::GemmReport instrumented_batch(parallel::ThreadPool* pool, bool tune) {
  const Shape s{128, 128, 128, "instrumented"};
  BatchProblem bp(s, 16);
  core::BatchedOptions opt;
  opt.tune = tune;
  obs::GemmReport rep;
  core::modgemm_batched(pool, bp.items.data(),
                        static_cast<int>(bp.items.size()), opt, &rep);
  std::printf(
      "batch report: count=%d classes=%d plan_cache=%llu hit/%llu miss "
      "arena=%llu acquisitions/%llu cold\n",
      rep.batch_count, rep.batch_classes,
      static_cast<unsigned long long>(rep.batch_plan_cache_hits),
      static_cast<unsigned long long>(rep.batch_plan_cache_misses),
      static_cast<unsigned long long>(rep.batch_workspace_acquisitions),
      static_cast<unsigned long long>(rep.batch_workspace_cold_allocs));
  // CI greps this exact line for the warm/cold tune-cache round trip.
  std::printf("tune_cache: %s\n", rep.tune_cache);
  return rep;
}

void write_json(const std::string& dir, int batch, int threads,
                const std::vector<ResultRow>& rows,
                const obs::GemmReport& rep) {
  const std::string path = dir + "/BENCH_batched.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  os << "{\"bench\": \"batched_throughput\", \"batch\": " << batch
     << ", \"threads\": " << threads << ",\n \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << "  {\"kernel\": \"" << rows[i].kernel
       << "\", \"tile\": " << rows[i].tile << ", \"gflops\": " << rows[i].gflops
       << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  // The instrumented batch's full v5 report rides along under "rows" so
  // tools/validate_report_schema.py covers this file too.
  os << " ],\n \"rows\": [\n  {\"label\": \"instrumented n=128 batch=16\", "
        "\"report\": "
     << obs::to_json(rep) << "}\n ]}\n";
  std::printf("wrote %s (%zu points)\n", path.c_str(), rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  bool tune = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tune") == 0) {
      tune = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bench::BenchArgs args = bench::BenchArgs::parse(
      static_cast<int>(passthrough.size()), passthrough.data());

  const int threads =
      std::max(2u, std::min(8u, std::thread::hardware_concurrency()));
  parallel::ThreadPool pool(threads);

  if (tune) {
    // Tune-cache round-trip mode: no sweep, just one tuned batch.  First run
    // with STRASSEN_TUNE_CACHE set prints "cold" (survey + cache write),
    // every later process prints "warm" (file read, no survey).
    instrumented_batch(&pool, /*tune=*/true);
    return 0;
  }

  bench::banner("Batched throughput",
                "Batched GEMM service shapes: per-item loop vs "
                "modgemm_batched (serial and pooled)");

  const int batch = args.quick ? 8 : 32;
  Table table({"m", "n", "k", "batch", "loop(GF/s)", "serial(GF/s)",
               "pool(GF/s)", "pool speedup"});
  args.maybe_mirror(table, "batched_throughput");

  std::vector<ResultRow> rows;
  for (const Shape& s : kShapes) {
    BatchProblem bp(s, batch);
    const MeasureOptions opt = bench::protocol(args, s.n);

    const double t_loop = measure(
        [&] {
          for (const core::BatchItem& it : bp.items) {
            core::modgemm(it.opa, it.opb, it.m, it.n, it.k, it.alpha, it.A,
                          it.lda, it.B, it.ldb, it.beta, it.C, it.ldc);
          }
        },
        opt);
    const double t_serial = measure(
        [&] {
          core::modgemm_batched(nullptr, bp.items.data(),
                                static_cast<int>(bp.items.size()));
        },
        opt);
    const double t_pool = measure(
        [&] {
          core::modgemm_batched(&pool, bp.items.data(),
                                static_cast<int>(bp.items.size()));
        },
        opt);

    const double g_loop = gflops(s, batch, t_loop);
    const double g_serial = gflops(s, batch, t_serial);
    const double g_pool = gflops(s, batch, t_pool);
    rows.push_back({"batched-loop", s.n, g_loop});
    rows.push_back({"batched-serial", s.n, g_serial});
    rows.push_back({"batched-pool", s.n, g_pool});
    table.add_row({Table::num(static_cast<long long>(s.m)),
                   Table::num(static_cast<long long>(s.n)),
                   Table::num(static_cast<long long>(s.k)),
                   Table::num(static_cast<long long>(batch)),
                   Table::num(g_loop, 2), Table::num(g_serial, 2),
                   Table::num(g_pool, 2), Table::num(g_pool / g_loop, 2)});
  }
  table.print();

  obs::GemmReport rep = instrumented_batch(&pool, /*tune=*/false);
  std::printf(
      "\nExpected shape: batched-serial >= batched-loop (planning and "
      "workspace amortized), batched-pool scaling toward %dx at the small "
      "sizes.\n",
      threads);

  if (!args.json_dir.empty()) write_json(args.json_dir, batch, threads, rows, rep);
  return 0;
}
