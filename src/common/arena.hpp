// arena.hpp -- stack (LIFO) allocator for recursion temporaries.
//
// The Winograd recursion needs three quadrant-sized temporaries per level.
// Because children are invoked strictly sequentially, the live temporaries at
// any instant form a stack; the workspace module computes the exact peak size
// up front and the recursion draws from this arena with push/pop semantics.
// This gives Strassen's temporaries the locality of a contiguous region and
// removes every allocation from the hot path.
#pragma once

#include <cstddef>
#include <utility>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"

namespace strassen {

class Arena {
 public:
  // Every push is rounded up to this granularity and therefore starts on a
  // 64-byte (cache-line) boundary -- the alignment contract the SIMD leaf
  // kernels rely on for Morton buffers and recursion temporaries.
  static constexpr std::size_t kChunkAlignment = 64;

  Arena() = default;
  // Creates an arena of `bytes` capacity, aligned to `alignment`.
  explicit Arena(std::size_t bytes,
                 std::size_t alignment = AlignedBuffer::kDefaultAlignment);

  // Moves leave the source in the safe empty state (zero capacity, zero
  // top/peak), so a moved-from arena reports used() == 0 and every push
  // throws std::bad_alloc instead of handing out dangling pointers.
  Arena(Arena&& other) noexcept
      : buffer_(std::move(other.buffer_)),
        top_(std::exchange(other.top_, 0)),
        peak_(std::exchange(other.peak_, 0)) {}
  Arena& operator=(Arena&& other) noexcept {
    if (this != &other) {
      buffer_ = std::move(other.buffer_);
      top_ = std::exchange(other.top_, 0);
      peak_ = std::exchange(other.peak_, 0);
    }
    return *this;
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Allocates `count` elements of T from the top of the stack.  Every
  // allocation is aligned to 64 bytes.  Throws std::bad_alloc on overflow
  // (which indicates a workspace-sizing bug, see core/workspace).
  template <class T>
  T* push(std::size_t count) {
    return static_cast<T*>(push_bytes(checked_mul(count, sizeof(T))));
  }

  // A marker capturing the current stack top; pop(marker) releases every
  // allocation made after mark() was called.
  using Marker = std::size_t;
  Marker mark() const { return top_; }
  void pop(Marker m);

  std::size_t capacity() const { return buffer_.size_bytes(); }
  std::size_t used() const { return top_; }
  // Alignment of the backing storage (>= kChunkAlignment by default); every
  // pointer push() returns is aligned to min(alignment(), kChunkAlignment).
  std::size_t alignment() const { return buffer_.alignment(); }
  // High-water mark over the lifetime of the arena (for workspace tests).
  std::size_t peak() const { return peak_; }
  // Restarts the high-water measurement at the current top.  The arena pool
  // calls this when it hands a cached arena to a new acquisition, so peak()
  // reflects the acquiring call rather than the buffer's whole history.
  void reset_peak() { peak_ = top_; }

  // RAII frame: releases everything pushed during its lifetime.
  class Frame {
   public:
    explicit Frame(Arena& a) : arena_(a), marker_(a.mark()) {}
    ~Frame() { arena_.pop(marker_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    Arena& arena_;
    Marker marker_;
  };

 private:
  void* push_bytes(std::size_t bytes);

  AlignedBuffer buffer_;
  std::size_t top_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace strassen
