// analysis/algo_family.hpp -- <m,k,n> fast-algorithm families as data.
//
// The schedule tables (analysis/schedule.hpp) fix the PARTITION at 2x2
// quadrants and vary the straight-line program; this header generalizes the
// partition itself.  A family table describes one bilinear algorithm over an
// m x k grid of A blocks and a k x n grid of B blocks (Huang/Rice/Matthews/
// van de Geijn, "Generating Families of Practical Fast Matrix Multiplication
// Algorithms"): each of `rank` products multiplies a +-1 linear combination
// of A blocks by a +-1 linear combination of B blocks, and each C block is a
// +-1 accumulation of products:
//
//     P_r = (sum_{i,l} a[r][i*bk+l] * A_il) . (sum_{l,j} b[r][l*bn+j] * B_lj)
//     C_ij = sum_r c[(i*bn+j)*rank + r] * P_r
//
// Because the A and B blocks do not commute, only genuinely bilinear
// algorithms qualify (commutative tricks a la Winograd's inner-product
// scheme are excluded by construction).  The interpreter (core/family.hpp)
// executes ONE level of a table and recurses each product through the full
// <2,2,2> engine -- the one-level-of-X-then-Winograd hybrid -- so a
// rectangular problem gets a rectangular base case instead of the split-path
// workaround.
//
// Every shipped table was emitted by tools/gen_algo_tables.py, which proves
// the bilinear identity exactly over the integers before printing the
// arrays, and is re-proved at build time by the constexpr verifier
// (analysis/algo_verify.hpp): a transcription error fails compilation.
//
// Shipped tables:
//   <2,2,2>  rank  7 / trivial  8 -- Strassen-Winograd (coefficient form of
//            the paper's schedule; execution stays on the seed engine).
//   <3,2,3>  rank 17 / trivial 18 -- Winograd on the rows{0,1} x cols{0,1}
//            sub-problem plus trivial strip products.
//   <2,3,4>  rank 22 / trivial 24 -- two Winograd sub-calls over the k-major
//            block plus a rank-8 k-tail outer product.
//   <3,3,3>  rank 23 / trivial 27 -- Laderman's 1976 algorithm.
#pragma once

#include <cstdint>

namespace strassen::analysis {

// Which <m,k,n> family a call runs.  kAuto defers to the STRASSEN_ALGO
// environment override and then the planner heuristic (layout::choose_algo);
// the heuristic keeps deep square problems on k222, whose execution is the
// unchanged seed engine.
enum class AlgoFamily : std::uint8_t {
  kAuto = 0,
  k222,
  k323,
  k234,
  k333,
};

inline constexpr int kAlgoFamilyCount = 5;

// Canonical token, also the STRASSEN_ALGO value grammar and the
// report's plan.algo value ("222", "323", "234", "333"; "auto" never
// escapes resolution).
constexpr const char* algo_name(AlgoFamily f) {
  switch (f) {
    case AlgoFamily::kAuto: return "auto";
    case AlgoFamily::k222: return "222";
    case AlgoFamily::k323: return "323";
    case AlgoFamily::k234: return "234";
    case AlgoFamily::k333: return "333";
  }
  return "?";
}

// One bilinear <bm,bk,bn> algorithm as three coefficient arrays (row-major;
// all entries in {-1, 0, +1}).
struct FamilyTable {
  const char* name = "";
  int bm = 0, bk = 0, bn = 0;  // block grid: A is bm x bk, B is bk x bn
  int rank = 0;                // number of block products
  const std::int8_t* a = nullptr;  // rank x (bm*bk)
  const std::int8_t* b = nullptr;  // rank x (bk*bn)
  const std::int8_t* c = nullptr;  // (bm*bn) x rank
  // Staging buffers the one-level interpreter keeps live at once (the
  // A-combination, B-combination and product buffers); the verifier derives
  // the required count from the table and rejects an under-declaration.
  int declared_temp_peak = 0;

  constexpr int trivial_rank() const { return bm * bk * bn; }
  constexpr std::int8_t a_coef(int r, int i, int l) const {
    return a[r * (bm * bk) + i * bk + l];
  }
  constexpr std::int8_t b_coef(int r, int l, int j) const {
    return b[r * (bk * bn) + l * bn + j];
  }
  constexpr std::int8_t c_coef(int i, int j, int r) const {
    return c[(i * bn + j) * rank + r];
  }
};

// ---- <2,2,2>: Strassen-Winograd, rank 7 -----------------------------------
// Block order: A11 A12 A21 A22 / B11 B12 B21 B22 (row-major over the grid).

inline constexpr std::int8_t kAlgo222A[] = {
    1,  0, 0, 0,   // P1 = A11
    0,  1, 0, 0,   // P2 = A12
    0,  0, 1, 1,   // P3 = A21 + A22
    -1, 0, 1, 1,   // P4 = A21 + A22 - A11
    1,  0, -1, 0,  // P5 = A11 - A21
    1,  1, -1, -1, // P6 = A11 + A12 - A21 - A22
    0,  0, 0, 1,   // P7 = A22
};
inline constexpr std::int8_t kAlgo222B[] = {
    1,  0,  0,  0,  // . B11
    0,  0,  1,  0,  // . B21
    -1, 1,  0,  0,  // . B12 - B11
    1,  -1, 0,  1,  // . B22 - B12 + B11
    0,  -1, 0,  1,  // . B22 - B12
    0,  0,  0,  1,  // . B22
    1,  -1, -1, 1,  // . B22 - B12 + B11 - B21
};
inline constexpr std::int8_t kAlgo222C[] = {
    1, 1, 0, 0, 0, 0, 0,   // C11
    1, 0, 1, 1, 0, 1, 0,   // C12
    1, 0, 0, 1, 1, 0, -1,  // C21
    1, 0, 1, 1, 1, 0, 0,   // C22
};

// ---- <3,2,3>: rank 17 ------------------------------------------------------

inline constexpr std::int8_t kAlgo323A[] = {
    1, 0, 0, 0, 0, 0,
    0, 1, 0, 0, 0, 0,
    0, 0, 1, 1, 0, 0,
    -1, 0, 1, 1, 0, 0,
    1, 0, -1, 0, 0, 0,
    1, 1, -1, -1, 0, 0,
    0, 0, 0, 1, 0, 0,
    1, 0, 0, 0, 0, 0,
    0, 1, 0, 0, 0, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 1,
};
inline constexpr std::int8_t kAlgo323B[] = {
    1, 0, 0, 0, 0, 0,
    0, 0, 0, 1, 0, 0,
    -1, 1, 0, 0, 0, 0,
    1, -1, 0, 0, 1, 0,
    0, -1, 0, 0, 1, 0,
    0, 0, 0, 0, 1, 0,
    1, -1, 0, -1, 1, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 1,
    0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 1,
    1, 0, 0, 0, 0, 0,
    0, 0, 0, 1, 0, 0,
    0, 1, 0, 0, 0, 0,
    0, 0, 0, 0, 1, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 1,
};
inline constexpr std::int8_t kAlgo323C[] = {
    1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    1, 0, 1, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0,
    1, 0, 0, 1, 1, 0, -1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
};

// ---- <2,3,4>: rank 22 ------------------------------------------------------

inline constexpr std::int8_t kAlgo234A[] = {
    1, 0, 0, 0, 0, 0,
    0, 1, 0, 0, 0, 0,
    0, 0, 0, 1, 1, 0,
    -1, 0, 0, 1, 1, 0,
    1, 0, 0, -1, 0, 0,
    1, 1, 0, -1, -1, 0,
    0, 0, 0, 0, 1, 0,
    1, 0, 0, 0, 0, 0,
    0, 1, 0, 0, 0, 0,
    0, 0, 0, 1, 1, 0,
    -1, 0, 0, 1, 1, 0,
    1, 0, 0, -1, 0, 0,
    1, 1, 0, -1, -1, 0,
    0, 0, 0, 0, 1, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 1,
};
inline constexpr std::int8_t kAlgo234B[] = {
    1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0,
    -1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    1, -1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
    0, -1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
    1, -1, 0, 0, -1, 1, 0, 0, 0, 0, 0, 0,
    0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0,
    0, 0, -1, 1, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 1, -1, 0, 0, 0, 1, 0, 0, 0, 0,
    0, 0, 0, -1, 0, 0, 0, 1, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0,
    0, 0, 1, -1, 0, 0, -1, 1, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
};
inline constexpr std::int8_t kAlgo234C[] = {
    1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0,
    1, 0, 1, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0,
    1, 0, 0, 1, 1, 0, -1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0,
    1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 1, 1, 0, -1, 0, 0, 0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
};

// ---- <3,3,3>: Laderman, rank 23 --------------------------------------------

inline constexpr std::int8_t kAlgo333A[] = {
    1, 1, 1, -1, -1, 0, 0, -1, -1,
    1, 0, 0, -1, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 1, 0, 0, 0, 0,
    -1, 0, 0, 1, 1, 0, 0, 0, 0,
    0, 0, 0, 1, 1, 0, 0, 0, 0,
    1, 0, 0, 0, 0, 0, 0, 0, 0,
    -1, 0, 0, 0, 0, 0, 1, 1, 0,
    -1, 0, 0, 0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 0, 1, 1, 0,
    1, 1, 1, 0, -1, -1, -1, -1, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 0,
    0, 0, -1, 0, 0, 0, 0, 1, 1,
    0, 0, 1, 0, 0, 0, 0, 0, -1,
    0, 0, 1, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 1,
    0, 0, -1, 0, 1, 1, 0, 0, 0,
    0, 0, 1, 0, 0, -1, 0, 0, 0,
    0, 0, 0, 0, 1, 1, 0, 0, 0,
    0, 1, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 1, 0, 0, 0,
    0, 0, 0, 1, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 1,
};
inline constexpr std::int8_t kAlgo333B[] = {
    0, 0, 0, 0, 1, 0, 0, 0, 0,
    0, -1, 0, 0, 1, 0, 0, 0, 0,
    -1, 1, 0, 1, -1, -1, -1, 0, 1,
    1, -1, 0, 0, 1, 0, 0, 0, 0,
    -1, 1, 0, 0, 0, 0, 0, 0, 0,
    1, 0, 0, 0, 0, 0, 0, 0, 0,
    1, 0, -1, 0, 0, 1, 0, 0, 0,
    0, 0, 1, 0, 0, -1, 0, 0, 0,
    -1, 0, 1, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 1, 0, 0, 0,
    -1, 0, 1, 1, -1, -1, -1, 1, 0,
    0, 0, 0, 0, 1, 0, 1, -1, 0,
    0, 0, 0, 0, 1, 0, 0, -1, 0,
    0, 0, 0, 0, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 0, -1, 1, 0,
    0, 0, 0, 0, 0, 1, 1, 0, -1,
    0, 0, 0, 0, 0, 1, 0, 0, -1,
    0, 0, 0, 0, 0, 0, -1, 0, 1,
    0, 0, 0, 1, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 1, 0,
    0, 0, 1, 0, 0, 0, 0, 0, 0,
    0, 1, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 1,
};
inline constexpr std::int8_t kAlgo333C[] = {
    0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0,
    1, 0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 1, 1, 0, 1, 1, 0, 0, 0, 1, 0, 1, 0, 1, 0, 0, 0, 0, 0,
    0, 1, 1, 1, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 0, 0, 0, 0, 0, 0,
    0, 1, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 0,
    0, 0, 0, 0, 0, 1, 1, 1, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 0,
    0, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1,
};

// ---- shipped tables --------------------------------------------------------

inline constexpr FamilyTable kTable222{
    "winograd-222", 2, 2, 2, 7, kAlgo222A, kAlgo222B, kAlgo222C, 3};
inline constexpr FamilyTable kTable323{
    "composed-323", 3, 2, 3, 17, kAlgo323A, kAlgo323B, kAlgo323C, 3};
inline constexpr FamilyTable kTable234{
    "composed-234", 2, 3, 4, 22, kAlgo234A, kAlgo234B, kAlgo234C, 3};
inline constexpr FamilyTable kTable333{
    "laderman-333", 3, 3, 3, 23, kAlgo333A, kAlgo333B, kAlgo333C, 3};

// Table lookup; kAuto and k222 both map to the <2,2,2> table (the verifier
// and tests exercise it in coefficient form; EXECUTION of k222 stays on the
// seed schedule engine, which is what keeps the bit-identity pin).
constexpr const FamilyTable& family_table(AlgoFamily f) {
  switch (f) {
    case AlgoFamily::k323: return kTable323;
    case AlgoFamily::k234: return kTable234;
    case AlgoFamily::k333: return kTable333;
    case AlgoFamily::kAuto:
    case AlgoFamily::k222: break;
  }
  return kTable222;
}

// Every shipped family, for the verifier static_asserts, the CLI gate and
// the conformance suite.
inline constexpr AlgoFamily kShippedAlgoFamilies[] = {
    AlgoFamily::k222, AlgoFamily::k323, AlgoFamily::k234, AlgoFamily::k333};

}  // namespace strassen::analysis
