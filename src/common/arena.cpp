#include "common/arena.hpp"

#include <algorithm>
#include <new>

#include "common/check.hpp"

namespace strassen {

namespace {
std::size_t round_up(std::size_t n, std::size_t a) {
  return (n + a - 1) / a * a;
}
}  // namespace

Arena::Arena(std::size_t bytes, std::size_t alignment)
    : buffer_(round_up(std::max<std::size_t>(bytes, 1), kChunkAlignment),
              alignment) {}

void* Arena::push_bytes(std::size_t bytes) {
  const std::size_t need = round_up(bytes, kChunkAlignment);
  if (top_ + need > buffer_.size_bytes()) throw std::bad_alloc();
  void* p = static_cast<char*>(buffer_.data()) + top_;
  top_ += need;
  peak_ = std::max(peak_, top_);
  return p;
}

void Arena::pop(Marker m) {
  STRASSEN_ASSERT(m <= top_);
  top_ = m;
}

}  // namespace strassen
