// winograd.hpp -- the Strassen-Winograd recursion over Morton storage.
//
// This is the computational heart of MODGEMM.  A Morton block of depth d is
// four contiguous sub-blocks (NW=11, NE=12, SW=21, SE=22 in matrix-quadrant
// notation) each of depth d-1, so quadrant access is pure pointer arithmetic
// and all 15 quadrant additions of Winograd's variant are single contiguous
// loops (paper S3.3).
//
// Schedule.  Using the paper's equations (S2) with the S/T/P naming,
// reordered so that C's quadrants double as scratch and only three
// temporaries (tS over A-quadrants, tT over B-quadrants, tP over
// C-quadrants) are live per level:
//
//    tS = A11 - A21        (S3)   tT = B22 - B12        (T3)
//    C21 = tS * tT         (P5 = S3.T3)
//    tS = A21 + A22        (S1)   tT = B12 - B11        (T1)
//    C22 = tS * tT         (P3 = S1.T1)
//    tS = tS - A11         (S2)   tT = B22 - tT         (T2)
//    C12 = tS * tT         (P4 = S2.T2)
//    tS = A12 - tS         (S4)   tT = tT - B21         (-T4)
//    tP  = A11 * B11       (P1)
//    C12 += tP             (U2 = P1 + P4)
//    C21 += C12            (U3 = U2 + P5)
//    C12 += C22            (U6 = U2 + P3)
//    C22 += C21            (C22 = U5 = U3 + P3)        [final C22]
//    C11 = A22 * tT        (-P7 = A22 * (T2 - B21))
//    C21 -= C11            (C21 = U4 = U3 + P7)        [final C21]
//    C11 = tS * B22        (P6 = S4 * B22)
//    C12 += C11            (C12 = U7 = U6 + P6)        [final C12]
//    C11 = A12 * B21       (P2)
//    C11 += tP             (C11 = U1 = P1 + P2)        [final C11]
//
// 7 recursive products, 15 additions -- the minimum for quadrant-based
// recursion, as the paper notes.
#pragma once

#include <cstdint>

#include <type_traits>

#include "blas/kernels.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/level1.hpp"
#include "common/arena.hpp"
#include "common/memmodel.hpp"
#include "obs/collector.hpp"

namespace strassen::core {

// C = A * B on Morton blocks.
//   A: (tm<<depth) x (tk<<depth), leaf tiles tm x tk (column-major)
//   B: (tk<<depth) x (tn<<depth), leaf tiles tk x tn
//   C: (tm<<depth) x (tn<<depth), leaf tiles tm x tn
// `arena` must have winograd_workspace_bytes(tm,tk,tn,depth,...) available.
template <class MM, class T>
void winograd_recurse(MM& mm, T* C, const T* A, const T* B, int tm, int tk,
                      int tn, int depth, Arena& arena) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tm, tn, tk, A, tm, B, tk, C, tm,
                    blas::LeafMode::Overwrite);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  // Quadrants in memory order NW, NE, SW, SE == 11, 12, 21, 22.
  const T* A11 = A;
  const T* A12 = A + qa;
  const T* A21 = A + 2 * qa;
  const T* A22 = A + 3 * qa;
  const T* B11 = B;
  const T* B12 = B + qb;
  const T* B21 = B + 2 * qb;
  const T* B22 = B + 3 * qb;
  T* C11 = C;
  T* C12 = C + qc;
  T* C21 = C + 2 * qc;
  T* C22 = C + 3 * qc;

  Arena::Frame frame(arena);
  T* tS = arena.push<T>(qa);
  T* tT = arena.push<T>(qb);
  T* tP = arena.push<T>(qc);

  auto mul = [&](T* dst, const T* a, const T* b) {
    winograd_recurse(mm, dst, a, b, tm, tk, tn, d1, arena);
  };

  // At the last level before the leaves, the production engine can fuse the
  // operand combinations that feed exactly one product into the product
  // itself (S3/T3 into P5, -T4 into P7, S4 into P6), saving four full passes
  // over quadrant-sized temporaries per level-1 node.  S1/T1/S2/T2 are still
  // materialized because the schedule reuses them.  The scalar table
  // publishes no fused entries, so STRASSEN_KERNEL=scalar (and every traced
  // MemModel) runs the seed schedule below with its exact rounding and
  // address stream.
  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (d1 == 0) {
      namespace ker = blas::kernels;
      const ker::LeafKernels& tab = ker::active();
      if (tab.gemm_fused_a != nullptr && tab.gemm_fused_b != nullptr &&
          tab.gemm_fused_ab != nullptr) {
        using ker::FusedOp;
        {
          obs::LeafTimer lt(/*fused=*/true);
          tab.gemm_fused_ab(tm, tn, tk, A11, A21, FusedOp::kSub, tm,  // P5 =
                            B22, B12, FusedOp::kSub, tk, C21, tm);    //  S3.T3
        }
        blas::vadd(mm, qa, tS, A21, A22);     // S1
        blas::vsub(mm, qb, tT, B12, B11);     // T1
        mul(C22, tS, tT);                     // P3 = S1.T1
        blas::vsub_inplace(mm, qa, tS, A11);  // S2 = S1 - A11
        blas::vsub(mm, qb, tT, B22, tT);      // T2 = B22 - T1
        mul(C12, tS, tT);                     // P4 = S2.T2
        mul(tP, A11, B11);                    // P1
        blas::vadd_inplace(mm, qc, C12, tP);   // U2 = P1 + P4
        blas::vadd_inplace(mm, qc, C21, C12);  // U3 = U2 + P5
        blas::vadd_inplace(mm, qc, C12, C22);  // U6 = U2 + P3
        blas::vadd_inplace(mm, qc, C22, C21);  // final C22 = U3 + P3
        {
          obs::LeafTimer lt(/*fused=*/true);
          tab.gemm_fused_b(tm, tn, tk, A22, tm, tT, B21,  // -P7 =
                           FusedOp::kSub, tk, C11, tm);   //  A22.(T2 - B21)
        }
        blas::vsub_inplace(mm, qc, C21, C11);  // final C21 = U3 + P7
        {
          obs::LeafTimer lt(/*fused=*/true);
          tab.gemm_fused_a(tm, tn, tk, A12, tS, FusedOp::kSub, tm,  // P6 =
                           B22, tk, C11, tm);                       //  S4.B22
        }
        blas::vadd_inplace(mm, qc, C12, C11);  // final C12 = U6 + P6
        mul(C11, A12, B21);                    // P2
        blas::vadd_inplace(mm, qc, C11, tP);   // final C11 = P1 + P2
        return;
      }
    }
  }

  blas::vsub(mm, qa, tS, A11, A21);   // S3
  blas::vsub(mm, qb, tT, B22, B12);   // T3
  mul(C21, tS, tT);                   // P5 = S3.T3
  blas::vadd(mm, qa, tS, A21, A22);   // S1
  blas::vsub(mm, qb, tT, B12, B11);   // T1
  mul(C22, tS, tT);                   // P3 = S1.T1
  blas::vsub_inplace(mm, qa, tS, A11);  // S2 = S1 - A11
  blas::vsub(mm, qb, tT, B22, tT);      // T2 = B22 - T1
  mul(C12, tS, tT);                     // P4 = S2.T2
  blas::vsub(mm, qa, tS, A12, tS);      // S4 = A12 - S2
  blas::vsub_inplace(mm, qb, tT, B21);  // -T4 = T2 - B21
  mul(tP, A11, B11);                    // P1
  blas::vadd_inplace(mm, qc, C12, tP);  // U2 = P1 + P4
  blas::vadd_inplace(mm, qc, C21, C12); // U3 = U2 + P5
  blas::vadd_inplace(mm, qc, C12, C22); // U6 = U2 + P3
  blas::vadd_inplace(mm, qc, C22, C21); // final C22 = U3 + P3
  mul(C11, A22, tT);                    // -P7 = A22.(T2 - B21)
  blas::vsub_inplace(mm, qc, C21, C11); // final C21 = U3 + P7
  mul(C11, tS, B22);                    // P6 = S4.B22
  blas::vadd_inplace(mm, qc, C12, C11); // final C12 = U6 + P6
  mul(C11, A12, B21);                   // P2
  blas::vadd_inplace(mm, qc, C11, tP);  // final C11 = P1 + P2
}

}  // namespace strassen::core
