// Tests for the memory-minimal destructive variant (src/core/inplace) --
// the Kreczmar-style schedule from the paper's related work (S5.1).
#include <gtest/gtest.h>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/inplace.hpp"
#include "core/modgemm.hpp"

namespace strassen::core {
namespace {

// Builds compatible square Morton operands for n x n and returns the exact
// reference product.
struct Inputs {
  MortonProductPlan plan;
  Matrix<double> A, B, Ref;
  Inputs(int n, std::uint64_t seed)
      : plan(plan_morton_product(n, n, n)), A(n, n), B(n, n), Ref(n, n) {
    Rng rng(seed);
    rng.fill_int(A.storage(), -2, 2);
    rng.fill_int(B.storage(), -2, 2);
    blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                     B.data(), n, 0.0, Ref.data(), n);
  }
};

class InplaceSizes : public ::testing::TestWithParam<int> {};

TEST_P(InplaceSizes, ExactOnIntegers) {
  const int n = GetParam();
  Inputs s(n, static_cast<std::uint64_t>(n));
  MortonMatrix Am = MortonMatrix::from_colmajor(s.plan.a, s.A.view());
  MortonMatrix Bm = MortonMatrix::from_colmajor(s.plan.b, s.B.view());
  MortonMatrix Cm(s.plan.c);
  multiply_inplace(Am, Bm, Cm);
  Matrix<double> C(n, n);
  Cm.to_colmajor(C.view());
  EXPECT_EQ(max_abs_diff<double>(C.view(), s.Ref.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, InplaceSizes,
                         ::testing::Values(100, 150, 256, 257, 300, 513));

TEST(Inplace, DestroysItsOperands) {
  const int n = 200;
  Inputs s(n, 7);
  MortonMatrix Am = MortonMatrix::from_colmajor(s.plan.a, s.A.view());
  MortonMatrix Bm = MortonMatrix::from_colmajor(s.plan.b, s.B.view());
  MortonMatrix Cm(s.plan.c);
  multiply_inplace(Am, Bm, Cm);
  // A and B now hold intermediates (M-products and operand sums), not the
  // original data: verify at least one element changed in each.
  Matrix<double> Aout(n, n), Bout(n, n);
  Am.to_colmajor(Aout.view());
  Bm.to_colmajor(Bout.view());
  EXPECT_GT(max_abs_diff<double>(Aout.view(), s.A.view()), 0.0);
  EXPECT_GT(max_abs_diff<double>(Bout.view(), s.B.view()), 0.0);
}

TEST(Inplace, BitIdenticalToStandardMultiply) {
  // The in-place schedule computes commutatively identical expressions, so
  // on real data it matches the workspace-based recursion bit for bit.
  const int n = 300;
  Rng rng(9);
  Matrix<double> A(n, n), B(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  const MortonProductPlan plan = plan_morton_product(n, n, n);

  MortonMatrix A1 = MortonMatrix::from_colmajor(plan.a, A.view());
  MortonMatrix B1 = MortonMatrix::from_colmajor(plan.b, B.view());
  MortonMatrix C1(plan.c);
  multiply(A1, B1, C1);  // standard (non-destructive)

  MortonMatrix A2 = MortonMatrix::from_colmajor(plan.a, A.view());
  MortonMatrix B2 = MortonMatrix::from_colmajor(plan.b, B.view());
  MortonMatrix C2(plan.c);
  multiply_inplace(A2, B2, C2);

  Matrix<double> out1(n, n), out2(n, n);
  C1.to_colmajor(out1.view());
  C2.to_colmajor(out2.view());
  EXPECT_EQ(max_abs_diff<double>(out1.view(), out2.view()), 0.0);
}

TEST(Inplace, RejectsNonSquareTiles) {
  // 300 x 280 x 260 plans rectangular tiles; the destructive schedule needs
  // interchangeable (square, equal) quadrants.
  const MortonProductPlan plan = plan_morton_product(300, 280, 260);
  if (plan.a.tile_rows == plan.a.tile_cols &&
      plan.a.tile_cols == plan.b.tile_cols) {
    GTEST_SKIP() << "planner produced square tiles for this shape";
  }
  MortonMatrix A(plan.a), B(plan.b), C(plan.c);
  EXPECT_THROW(multiply_inplace(A, B, C), std::invalid_argument);
}

TEST(Inplace, DepthZeroLeafStillWorks) {
  // A single-tile layout (depth 0): reduces to the leaf kernel.
  const layout::MortonLayout l{40, 40, 40, 40, 0};
  Rng rng(11);
  Matrix<double> A(40, 40), B(40, 40), Ref(40, 40), C(40, 40);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, 40, 40, 40, 1.0, A.data(), 40,
                   B.data(), 40, 0.0, Ref.data(), 40);
  MortonMatrix Am = MortonMatrix::from_colmajor(l, A.view());
  MortonMatrix Bm = MortonMatrix::from_colmajor(l, B.view());
  MortonMatrix Cm(l);
  multiply_inplace(Am, Bm, Cm);
  Cm.to_colmajor(C.view());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

}  // namespace
}  // namespace strassen::core
