// ablation_conflict -- the paper's S4.2 ends with "We are currently
// examining ways to eliminate these conflict misses."  This bench evaluates
// this library's answer: conflict-aware tile selection
// (TileOptions::avoid_conflict_cache_bytes), which pays a few extra pad
// elements to keep sibling-quadrant separations off multiples of the cache
// size.
//
// Re-runs the Fig. 9 sweep (16KB direct-mapped, 32B blocks, n = 500..523)
// with the avoider on and off.  Expected shape: the elevated plateau at
// n in [505,512] (tile 32, quadrants 16KB apart) collapses to the n=513
// level, at the cost of <= 4% more padded elements per dimension.
#include <cstdio>

#include "core/modgemm.hpp"
#include "layout/plan.hpp"
#include "support/bench_common.hpp"
#include "trace/memmodel.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

using namespace strassen;

namespace {

// trace_multiply with planner options is not exposed; inline the run here.
double miss_ratio(int n, std::size_t avoid_bytes) {
  Rng rng(static_cast<std::uint64_t>(n));
  Matrix<double> A(n, n), B(n, n), C(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  trace::CacheHierarchy h = trace::paper_fig9_cache();
  trace::TracingMem mm(h);
  core::ModgemmOptions opt;
  opt.tiles.avoid_conflict_cache_bytes = avoid_bytes;
  core::modgemm_mm(mm, Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, C.data(), n, opt);
  return h.l1_miss_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: conflict-aware tile selection (S4.2 future work)",
                "Fig. 9 sweep with and without quadrant-conflict avoidance "
                "(16KB direct-mapped, 32B blocks)");

  Table table({"n", "miss% (paper planner)", "miss% (conflict-aware)",
               "tile(paper)", "tile(aware)", "padded(aware)"});
  args.maybe_mirror(table, "ablation_conflict");

  layout::TileOptions aware;
  aware.avoid_conflict_cache_bytes = 16 * 1024;
  const int step = args.quick ? 4 : 1;
  for (int n = 500; n <= 523; n += step) {
    const double base = miss_ratio(n, 0);
    const double avoided = miss_ratio(n, 16 * 1024);
    const layout::DimPlan p0 = layout::choose_dim(n);
    const layout::DimPlan p1 = layout::choose_dim(n, aware);
    table.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(100.0 * base, 3), Table::num(100.0 * avoided, 3),
                   Table::num(static_cast<long long>(p0.tile)),
                   Table::num(static_cast<long long>(p1.tile)),
                   Table::num(static_cast<long long>(p1.padded))});
  }
  table.print();
  std::printf(
      "\nExpected shape: the paper-planner column shows the [505,512] "
      "conflict plateau; the aware\ncolumn is flat at the post-513 level "
      "across the whole sweep.\n");
  return 0;
}
