// Tests for the classic-Strassen ablation baseline
// (src/baselines/strassen_classic).
#include <gtest/gtest.h>

#include "baselines/strassen_classic.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::baselines {
namespace {

void expect_exact(int m, int n, int k, double alpha, double beta,
                  const core::ModgemmOptions& opt = {}) {
  Rng rng(static_cast<std::uint64_t>(m) * 53 + n * 19 + k);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C.storage(), -3, 3);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, alpha, A.data(), A.ld(),
                   B.data(), B.ld(), beta, Ref.data(), Ref.ld());
  strassen_classic(Op::NoTrans, Op::NoTrans, m, n, k, alpha, A.data(), A.ld(),
                   B.data(), B.ld(), beta, C.data(), C.ld(), opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
      << m << "x" << n << "x" << k;
}

class ClassicSizes : public ::testing::TestWithParam<int> {};

TEST_P(ClassicSizes, SquareSweepExact) {
  expect_exact(GetParam(), GetParam(), GetParam(), 1.0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClassicSizes,
                         ::testing::Values(40, 65, 100, 128, 129, 200, 256,
                                           257, 300, 513));

TEST(Classic, MildlyRectangular) {
  expect_exact(150, 180, 165, 1.0, 0.0);
  expect_exact(256, 128, 192, 1.0, 0.0);
}

TEST(Classic, AlphaBetaPostprocess) {
  expect_exact(150, 150, 150, 2.0, -1.0);
  expect_exact(200, 200, 200, -0.5, 0.5);
}

TEST(Classic, HighlyRectangularIsRejected) {
  const int m = 4096, k = 256, n = 4096;
  Matrix<double> A(m, k), B(k, n), C(m, n);
  EXPECT_THROW(strassen_classic(Op::NoTrans, Op::NoTrans, m, n, k, 1.0,
                                A.data(), m, B.data(), k, 0.0, C.data(), m),
               std::invalid_argument);
}

TEST(Classic, AgreesWithModgemmBitForBit) {
  // Both run the same planner, conversion and leaf kernel; on integer data
  // both are exact, so they agree bit-for-bit with each other too.
  const int n = 300;
  Rng rng(5);
  Matrix<double> A(n, n), B(n, n), C1(n, n), C2(n, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  strassen_classic(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, C1.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C2.data(), n);
  EXPECT_EQ(max_abs_diff<double>(C1.view(), C2.view()), 0.0);
}

}  // namespace
}  // namespace strassen::baselines
