// check.hpp -- lightweight precondition checking for the strassen library.
//
// Library entry points validate their arguments with STRASSEN_REQUIRE, which
// throws std::invalid_argument on failure (a caller error, per the BLAS
// convention of rejecting bad dimensions).  Internal invariants use
// STRASSEN_ASSERT, which is compiled out in release builds like assert().
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace strassen {

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "strassen: requirement failed: " << expr << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " (" << msg << ')';
  throw std::invalid_argument(os.str());
}
}  // namespace detail

// Precondition check that is always on (cheap; guards public entry points).
#define STRASSEN_REQUIRE(expr, msg)                                     \
  do {                                                                  \
    if (!(expr))                                                        \
      ::strassen::detail::require_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

// Internal invariant; compiled out with NDEBUG.
#define STRASSEN_ASSERT(expr) assert(expr)

}  // namespace strassen
