// kernels/avx2.cpp -- AVX2+FMA micro-kernels for double.
//
// Compiled with per-file -mavx2 -mfma (see src/CMakeLists.txt) so the rest
// of the library keeps its portable -march; the registry only routes here
// when cpuid reports AVX2+FMA at runtime.
//
// Two register-block variants share one implementation template:
//
//   8x6 -- 12 ymm accumulators + 2 A vectors + 1 B broadcast = 15 of 16 ymm;
//          the classic double-precision blocking for 16-register AVX2.
//   4x8 --  8 ymm accumulators + 1 A vector + 1 B broadcast; lower register
//          pressure, and its 4/8 footprints divide the library's power-of-two
//          tiles (16, 32, 64) exactly, so those shapes run edge-free.
//
// The variant is chosen per call shape (whichever covers more of m x n with
// full blocks), or pinned via set_avx2_variant / STRASSEN_KERNEL=avx2-8x6 /
// avx2-4x8 / the autotuner.
//
// Operand loaders abstract A and B access so the same blocks serve the plain
// kernel and the fused Winograd kernels, which form (A1 +/- A2) or
// (B1 +/- B2) on the fly instead of reading a materialized temporary -- the
// BLIS-Strassen trick of fusing the quadrant sums into the kernel pass.
//
// Columns are contiguous in column-major storage, so A loads are plain
// unaligned vector loads for ANY leading dimension; Morton leaf operands are
// additionally contiguous (ld == rows) and 64-byte aligned, which is the
// fast case the engine is built around.  Edges (m % MR, n % NR) run a
// column-strip path: vectorized over four rows at a time, scalar tail.
#include "blas/kernels/registry.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace strassen::blas::kernels {

namespace {

inline std::size_t off(int ld, int col) {
  return static_cast<std::size_t>(ld) * col;
}

// ---- operand loaders ------------------------------------------------------

struct APlain {
  const double* a;
  int lda;
  __m256d load4(int i, int p) const { return _mm256_loadu_pd(a + off(lda, p) + i); }
  double at(int i, int p) const { return a[off(lda, p) + i]; }
};

template <bool kSub>
struct AFused {
  const double* a1;
  const double* a2;
  int lda;
  __m256d load4(int i, int p) const {
    const __m256d x = _mm256_loadu_pd(a1 + off(lda, p) + i);
    const __m256d y = _mm256_loadu_pd(a2 + off(lda, p) + i);
    return kSub ? _mm256_sub_pd(x, y) : _mm256_add_pd(x, y);
  }
  double at(int i, int p) const {
    return kSub ? a1[off(lda, p) + i] - a2[off(lda, p) + i]
                : a1[off(lda, p) + i] + a2[off(lda, p) + i];
  }
};

struct BPlain {
  const double* b;
  int ldb;
  double at(int p, int j) const { return b[off(ldb, j) + p]; }
};

template <bool kSub>
struct BFused {
  const double* b1;
  const double* b2;
  int ldb;
  double at(int p, int j) const {
    return kSub ? b1[off(ldb, j) + p] - b2[off(ldb, j) + p]
                : b1[off(ldb, j) + p] + b2[off(ldb, j) + p];
  }
};

// ---- kernel blocks --------------------------------------------------------

// One MR x NR register block at (i, j): C block {=, +=} alpha * A.B.
template <int MR, int NR, class AL, class BL>
void block(const AL& A, const BL& B, int k, double* C, int ldc, LeafMode mode,
           double alpha, int i, int j) {
  constexpr int MV = MR / 4;  // ymm vectors per column strip
  __m256d acc[NR][MV];
  for (int jj = 0; jj < NR; ++jj)
    for (int v = 0; v < MV; ++v) acc[jj][v] = _mm256_setzero_pd();
  for (int p = 0; p < k; ++p) {
    __m256d a[MV];
    for (int v = 0; v < MV; ++v) a[v] = A.load4(i + 4 * v, p);
    for (int jj = 0; jj < NR; ++jj) {
      const __m256d b = _mm256_set1_pd(B.at(p, j + jj));
      for (int v = 0; v < MV; ++v)
        acc[jj][v] = _mm256_fmadd_pd(a[v], b, acc[jj][v]);
    }
  }
  const __m256d va = _mm256_set1_pd(alpha);
  for (int jj = 0; jj < NR; ++jj) {
    double* c = C + off(ldc, j + jj) + i;
    for (int v = 0; v < MV; ++v) {
      __m256d r = _mm256_mul_pd(va, acc[jj][v]);
      if (mode == LeafMode::Accumulate)
        r = _mm256_add_pd(_mm256_loadu_pd(c + 4 * v), r);
      _mm256_storeu_pd(c + 4 * v, r);
    }
  }
}

// Edge path: columns [j0, j1) x rows [i0, i1), one column at a time,
// vectorized over four-row strips with a scalar row tail.
template <class AL, class BL>
void strip_cols(const AL& A, const BL& B, int k, double* C, int ldc, int i0,
                int i1, int j0, int j1, LeafMode mode, double alpha) {
  for (int j = j0; j < j1; ++j) {
    double* c = C + off(ldc, j);
    int i = i0;
    for (; i + 4 <= i1; i += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (int p = 0; p < k; ++p)
        acc = _mm256_fmadd_pd(A.load4(i, p), _mm256_set1_pd(B.at(p, j)), acc);
      __m256d r = _mm256_mul_pd(_mm256_set1_pd(alpha), acc);
      if (mode == LeafMode::Accumulate)
        r = _mm256_add_pd(_mm256_loadu_pd(c + i), r);
      _mm256_storeu_pd(c + i, r);
    }
    for (; i < i1; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += A.at(i, p) * B.at(p, j);
      const double v = alpha * acc;
      c[i] = mode == LeafMode::Overwrite ? v : c[i] + v;
    }
  }
}

template <int MR, int NR, class AL, class BL>
void gemm_main(int m, int n, int k, const AL& A, const BL& B, double* C,
               int ldc, LeafMode mode, double alpha) {
  const int mM = m - m % MR;
  const int nN = n - n % NR;
  for (int j = 0; j < nN; j += NR)
    for (int i = 0; i < mM; i += MR)
      block<MR, NR>(A, B, k, C, ldc, mode, alpha, i, j);
  if (mM < m) strip_cols(A, B, k, C, ldc, mM, m, 0, nN, mode, alpha);
  if (nN < n) strip_cols(A, B, k, C, ldc, 0, m, nN, n, mode, alpha);
}

// Full-block coverage of an MR x NR variant over an m x n result.
long long coverage(int m, int n, int mr, int nr) {
  return static_cast<long long>(m - m % mr) * (n - n % nr);
}

template <class AL, class BL>
void gemm_dispatch(int m, int n, int k, const AL& A, const BL& B, double* C,
                   int ldc, LeafMode mode, double alpha) {
  Avx2Variant v = avx2_variant();
  if (v == Avx2Variant::kAuto)
    v = coverage(m, n, 4, 8) > coverage(m, n, 8, 6) ? Avx2Variant::k4x8
                                                    : Avx2Variant::k8x6;
  if (v == Avx2Variant::k4x8)
    gemm_main<4, 8>(m, n, k, A, B, C, ldc, mode, alpha);
  else
    gemm_main<8, 6>(m, n, k, A, B, C, ldc, mode, alpha);
}

// ---- table entries --------------------------------------------------------

void avx2_gemm(int m, int n, int k, const double* A, int lda, const double* B,
               int ldb, double* C, int ldc, LeafMode mode, double alpha) {
  gemm_dispatch(m, n, k, APlain{A, lda}, BPlain{B, ldb}, C, ldc, mode, alpha);
}

void avx2_gemm_fused_a(int m, int n, int k, const double* A1, const double* A2,
                       FusedOp opa, int lda, const double* B, int ldb,
                       double* C, int ldc) {
  const BPlain b{B, ldb};
  if (opa == FusedOp::kSub)
    gemm_dispatch(m, n, k, AFused<true>{A1, A2, lda}, b, C, ldc,
                  LeafMode::Overwrite, 1.0);
  else
    gemm_dispatch(m, n, k, AFused<false>{A1, A2, lda}, b, C, ldc,
                  LeafMode::Overwrite, 1.0);
}

void avx2_gemm_fused_b(int m, int n, int k, const double* A, int lda,
                       const double* B1, const double* B2, FusedOp opb,
                       int ldb, double* C, int ldc) {
  const APlain a{A, lda};
  if (opb == FusedOp::kSub)
    gemm_dispatch(m, n, k, a, BFused<true>{B1, B2, ldb}, C, ldc,
                  LeafMode::Overwrite, 1.0);
  else
    gemm_dispatch(m, n, k, a, BFused<false>{B1, B2, ldb}, C, ldc,
                  LeafMode::Overwrite, 1.0);
}

void avx2_gemm_fused_ab(int m, int n, int k, const double* A1,
                        const double* A2, FusedOp opa, int lda,
                        const double* B1, const double* B2, FusedOp opb,
                        int ldb, double* C, int ldc) {
  auto run = [&](auto a, auto b) {
    gemm_dispatch(m, n, k, a, b, C, ldc, LeafMode::Overwrite, 1.0);
  };
  if (opa == FusedOp::kSub) {
    if (opb == FusedOp::kSub)
      run(AFused<true>{A1, A2, lda}, BFused<true>{B1, B2, ldb});
    else
      run(AFused<true>{A1, A2, lda}, BFused<false>{B1, B2, ldb});
  } else {
    if (opb == FusedOp::kSub)
      run(AFused<false>{A1, A2, lda}, BFused<true>{B1, B2, ldb});
    else
      run(AFused<false>{A1, A2, lda}, BFused<false>{B1, B2, ldb});
  }
}

// ---- element-wise quadrant kernels ---------------------------------------
// Exact aliasing (dst == a or dst == b) is safe: each vector is fully loaded
// before its lane range is stored.

void avx2_vadd(std::size_t n, double* dst, const double* a, const double* b) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

void avx2_vsub(std::size_t n, double* dst, const double* a, const double* b) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

void avx2_vadd_inplace(std::size_t n, double* dst, const double* a) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(a + i)));
  for (; i < n; ++i) dst[i] += a[i];
}

void avx2_vsub_inplace(std::size_t n, double* dst, const double* a) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_sub_pd(_mm256_loadu_pd(dst + i),
                                            _mm256_loadu_pd(a + i)));
  for (; i < n; ++i) dst[i] -= a[i];
}

constexpr LeafKernels kTable = {
    Kind::kAvx2,
    "avx2",
    /*mr=*/8,
    /*nr=*/6,
    avx2_gemm,
    avx2_gemm_fused_a,
    avx2_gemm_fused_b,
    avx2_gemm_fused_ab,
    avx2_vadd,
    avx2_vsub,
    avx2_vadd_inplace,
    avx2_vsub_inplace,
};

}  // namespace

namespace detail {
const LeafKernels* avx2_table() noexcept { return &kTable; }
}  // namespace detail

}  // namespace strassen::blas::kernels

#else  // !(__AVX2__ && __FMA__)

namespace strassen::blas::kernels::detail {
// This build's compiler flags could not enable AVX2+FMA for this TU; the
// registry treats the kind as not compiled in.
const LeafKernels* avx2_table() noexcept { return nullptr; }
}  // namespace strassen::blas::kernels::detail

#endif
