#include "common/aligned_buffer.hpp"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#include "common/check.hpp"

namespace strassen {

AlignedBuffer::AlignedBuffer(std::size_t bytes, std::size_t alignment) {
  STRASSEN_REQUIRE(alignment != 0 && (alignment & (alignment - 1)) == 0,
                   "alignment must be a power of two");
  if (bytes == 0) return;
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  ptr_ = std::aligned_alloc(alignment, rounded);
  if (ptr_ == nullptr) throw std::bad_alloc();
  bytes_ = bytes;
}

AlignedBuffer::~AlignedBuffer() { reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
  }
  return *this;
}

void AlignedBuffer::zero() {
  if (ptr_ != nullptr) std::memset(ptr_, 0, bytes_);
}

void AlignedBuffer::reset() {
  std::free(ptr_);
  ptr_ = nullptr;
  bytes_ = 0;
}

}  // namespace strassen
