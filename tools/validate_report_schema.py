#!/usr/bin/env python3
"""Validates strassen.gemm_report.v5/v6 JSON lines (stdlib only).

Input: one or more files of JSONL as emitted by STRASSEN_OBS=json:PATH, a
single-report .json file, or a bench --json file
(``{"bench": ..., "rows": [{"label": ..., "report": {...}}]}``).  Every
report must carry the exact key set of its declared schema version with the
documented types -- the schema is a compatibility contract
(docs/OBSERVABILITY.md): consumers index fields unconditionally, so a
missing, extra or retyped key is an error, not a warning.  v5 archives
(pre-algorithm-family) stay valid; a v5 report that smuggles in the v6
``plan.algo`` key or the ``algo-fallback`` rung is version drift and fails.
Exits nonzero with the offending path on the first failure per report.

Usage: python3 tools/validate_report_schema.py report.jsonl [...]
"""

import json
import sys

SCHEMA_ID = "strassen.gemm_report.v6"
# Accepted schema ids -> version number.  v5 is the last pre-algorithm-family
# layout; everything older was a hard break (no batch section) and is
# rejected on the id.
SCHEMA_IDS = {"strassen.gemm_report.v5": 5, "strassen.gemm_report.v6": 6}

BOOL = bool
INT = int
NUM = (int, float)  # JSON has one number type; integers satisfy "number"
STR = str

# section -> {key: expected type}; the full v6 key set, nothing optional.
# v2 added parallel.steals (work-steal migrations) to the v1 layout; v3 added
# plan.schedule (the executed schedule family), workspace.saved_bytes (bytes
# a schedule swap saved vs the default family) and the "schedule-swap"
# fallback rung; v4 added plan.strategy (the execution strategy that ran) and
# workspace.conversion_saved_bytes (layout-conversion traffic the pack-fused
# strategy avoided); v5 added the batch section (batched entry point,
# plan-cache and arena-amortization counters, tune-cache state); v6 added
# plan.algo (the <m,k,n> algorithm family that ran) and the "algo-fallback"
# rung (a family that could not run within budget dropped to <2,2,2>).
SECTIONS = {
    "call": {"entry": STR, "m": INT, "n": INT, "k": INT},
    "phases": {
        "wall_s": NUM,
        "convert_in_s": NUM,
        "compute_s": NUM,
        "leaf_s": NUM,
        "convert_out_s": NUM,
        "conversion_fraction": NUM,
    },
    "plan": {
        "direct": BOOL,
        "split": BOOL,
        "products": INT,
        "planned_depth": INT,
        "schedule": STR,
        "strategy": STR,
        "algo": STR,  # v6 only; stripped from the expected set for v5
        "depth": INT,
        "tile_m": INT,
        "tile_k": INT,
        "tile_n": INT,
        "padded_m": INT,
        "padded_k": INT,
        "padded_n": INT,
        "pad_elems": INT,
    },
    "workspace": {
        "requested_bytes": INT,
        "peak_bytes": INT,
        "saved_bytes": INT,
        "conversion_saved_bytes": INT,
        "allocations": INT,
        "fallback": STR,
    },
    "kernels": {
        "active": STR,
        "variant": STR,
        "leaf_calls": INT,
        "fused_calls": INT,
        "elementwise_calls": INT,
    },
    "parallel": {
        "used": BOOL,
        "threads": INT,
        "spawn_levels": INT,
        "tasks": INT,
        "steals": INT,
        "task_busy_s": NUM,
        "utilization": NUM,
        "per_thread_tasks": list,
    },
    "batch": {
        "count": INT,
        "classes": INT,
        "plan_cache_hits": INT,
        "plan_cache_misses": INT,
        "workspace_acquisitions": INT,
        "workspace_cold_allocs": INT,
        "tune_cache": STR,
    },
}

FALLBACKS = {"none", "schedule-swap", "depth-reduced", "budget-direct",
             "alloc-direct", "alloc-strided"}
# The v6 rung: a forced/chosen <m,k,n> family could not run (workspace
# budget or allocation failure) and the call degraded to the <2,2,2> ladder.
FALLBACKS_V6 = FALLBACKS | {"algo-fallback"}
# "none" = direct (no Strassen plan ran, so no schedule family applies).
SCHEDULES = {"none", "winograd", "winograd-lowmem", "winograd-inplace"}
# "none" = direct (no recursive execution, so no strategy applies).
STRATEGIES = {"none", "morton", "packfused"}
# "none" = the report predates resolution or the call never dispatched;
# numeric names are the shipped <m,k,n> coefficient tables.
ALGOS = {"none", "222", "323", "234", "333"}
ENTRIES = {"modgemm", "pmodgemm", "modgemm_batched"}
# "off" = not a tuned batched call; "cold"/"warm"/"rejected" = the
# STRASSEN_TUNE_CACHE outcome of a BatchedOptions::tune call.
TUNE_CACHE_STATES = {"off", "cold", "warm", "rejected"}


def type_name(t):
    return t[0].__name__ + "-like" if isinstance(t, tuple) else t.__name__


def check(cond, where, msg):
    if not cond:
        raise ValueError(f"{where}: {msg}")


def validate_report(report, where):
    check(isinstance(report, dict), where, "report is not an object")
    expected_top = {"schema"} | set(SECTIONS)
    check(set(report) == expected_top, where,
          f"top-level keys {sorted(report)} != {sorted(expected_top)}")
    check(report["schema"] in SCHEMA_IDS, where,
          f"schema {report['schema']!r} not in {sorted(SCHEMA_IDS)}")
    version = SCHEMA_IDS[report["schema"]]
    for section, fields in SECTIONS.items():
        if section == "plan" and version < 6:
            # The drift check: a v5 report carrying plan.algo claims one
            # version and ships another, so the exact-key comparison below
            # rejects it just like any other extra key.
            fields = {k: v for k, v in fields.items() if k != "algo"}
        obj = report[section]
        check(isinstance(obj, dict), f"{where}.{section}", "not an object")
        check(set(obj) == set(fields), f"{where}.{section}",
              f"keys {sorted(obj)} != {sorted(fields)}")
        for key, expected in fields.items():
            value = obj[key]
            # bool is an int subclass in Python; forbid the crossover.
            ok = (isinstance(value, expected)
                  and not (expected in (INT, NUM) and isinstance(value, bool)))
            check(ok, f"{where}.{section}.{key}",
                  f"{value!r} is not {type_name(expected)}")
    check(report["call"]["entry"] in ENTRIES, f"{where}.call.entry",
          f"{report['call']['entry']!r} not in {sorted(ENTRIES)}")
    fallbacks = FALLBACKS_V6 if version >= 6 else FALLBACKS
    check(report["workspace"]["fallback"] in fallbacks,
          f"{where}.workspace.fallback",
          f"{report['workspace']['fallback']!r} not in {sorted(fallbacks)}")
    check(report["plan"]["schedule"] in SCHEDULES,
          f"{where}.plan.schedule",
          f"{report['plan']['schedule']!r} not in {sorted(SCHEDULES)}")
    check(report["plan"]["strategy"] in STRATEGIES,
          f"{where}.plan.strategy",
          f"{report['plan']['strategy']!r} not in {sorted(STRATEGIES)}")
    if version >= 6:
        check(report["plan"]["algo"] in ALGOS, f"{where}.plan.algo",
              f"{report['plan']['algo']!r} not in {sorted(ALGOS)}")
    check(report["batch"]["tune_cache"] in TUNE_CACHE_STATES,
          f"{where}.batch.tune_cache",
          f"{report['batch']['tune_cache']!r} not in "
          f"{sorted(TUNE_CACHE_STATES)}")
    for i, t in enumerate(report["parallel"]["per_thread_tasks"]):
        check(isinstance(t, int) and not isinstance(t, bool),
              f"{where}.parallel.per_thread_tasks[{i}]", f"{t!r} is not int")


def iter_reports(path):
    """Yields (report, where) pairs from JSONL, bare-report or bench JSON."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    stripped = text.strip()
    if not stripped:
        raise ValueError(f"{path}: empty file")
    # Bench --json / micro_kernels files are one multi-line document.
    if "\n" in stripped and not stripped.startswith("{\"schema\""):
        doc = json.loads(stripped)
        rows = doc.get("rows", [])
        reports = doc.get("modgemm_reports", {})
        for i, row in enumerate(rows):
            yield row["report"], f"{path}:rows[{i}]({row.get('label', '?')})"
        for label, rep in sorted(reports.items()):
            yield rep, f"{path}:modgemm_reports[{label}]"
        if not rows and not reports:
            raise ValueError(f"{path}: no reports found in bench JSON")
        return
    for lineno, line in enumerate(stripped.splitlines(), 1):
        if line.strip():
            yield json.loads(line), f"{path}:{lineno}"


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    total = 0
    failures = 0
    for path in argv[1:]:
        try:
            for report, where in iter_reports(path):
                total += 1
                try:
                    validate_report(report, where)
                except ValueError as err:
                    print(f"FAIL {err}")
                    failures += 1
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as err:
            print(f"FAIL {path}: {err}")
            failures += 1
    if failures:
        print(f"FAIL: {failures} invalid of {total} report(s)")
        return 1
    print(f"OK: {total} report(s) conform (accepted: "
          f"{', '.join(sorted(SCHEMA_IDS))})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
