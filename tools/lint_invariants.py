#!/usr/bin/env python3
"""Hot-path invariant linter (stdlib only; see docs/ANALYSIS.md).

Enforces three invariants that ordinary compilation cannot:

  1. atomic-order   Every atomic access in src/parallel/ names an explicit
                    std::memory_order, and every (file, object, op, order)
                    combination appears in tools/lint_allowlist.json with a
                    one-line justification and a matching site count.  A new
                    atomic access therefore cannot land without an audit
                    entry; a removed one cannot leave a stale entry behind.
                    Compound assignments and ++/-- on known atomics (which
                    would be implicit seq_cst) are rejected outright.

  2. noexcept       The kernel-registry entry points reachable from the
                    recursion's hot path are declared noexcept, so the
                    per-leaf dispatch can never unwind mid-schedule.

  3. hot-path bans  Leaf-kernel and schedule-interpreter translation units
                    must not mention allocation or clock tokens: the only
                    tolerated occurrences are enumerated exceptions in the
                    allowlist (obs::now_nanos).

Engines: the default "text" engine strips comments and string literals and
scans with regexes -- deliberately dependency-free so it runs in any
container.  "--engine libclang" uses clang.cindex over compile_commands.json
for a type-accurate pass when python3-clang is installed; "--engine auto"
upgrades when available.  Both engines enforce the same policy file.

Exit status: 0 clean, 1 violations, 2 configuration/usage error.
"""

import argparse
import json
import pathlib
import re
import sys

# ---- policy ---------------------------------------------------------------

# Files whose atomic accesses must be fully audited.
ATOMIC_SCOPE = ["src/parallel"]

ATOMIC_OPS = ("load", "store", "fetch_add", "fetch_sub", "fetch_and",
              "fetch_or", "fetch_xor", "exchange", "compare_exchange_weak",
              "compare_exchange_strong")

# Entry points of the leaf-kernel engine: one noexcept declaration of each
# must exist in the named header (the recursion calls these per leaf).
NOEXCEPT_ENTRY_POINTS = {
    "src/blas/kernels/registry.hpp": [
        "cpu_supports", "is_available", "active_kernel", "set_active_kernel",
        "avx2_variant", "set_avx2_variant", "active", "kernel_table",
        "kind_name", "variant_name", "scalar_table", "avx2_table",
        "neon_table",
    ],
    "src/blas/kernels.hpp": ["dispatch_gemm_leaf", "simd_gemm_active"],
    "src/blas/level1.hpp": ["dispatch_vadd", "dispatch_vsub",
                            "dispatch_vadd_inplace", "dispatch_vsub_inplace"],
}

# Hot-path files: no allocation, no clocks, no containers.  The schedule
# interpreter and the element-wise/leaf kernels run once per quadrant or
# leaf; a stray std::vector or steady_clock::now() here is a per-node cost
# the obs-off contract forbids.
HOT_PATH_FILES = [
    "src/blas/kernels/scalar.cpp",
    "src/blas/kernels/avx2.cpp",
    "src/blas/kernels/neon.cpp",
    "src/blas/kernels.hpp",
    "src/blas/level1.hpp",
    "src/core/winograd.hpp",
    "src/obs/collector.hpp",
]

BANNED_TOKENS = [
    "steady_clock", "system_clock", "high_resolution_clock",
    "malloc", "calloc", "realloc",
    "std::vector", "std::string", "std::map", "std::unordered_map",
    "new[]",
]


# ---- text engine ----------------------------------------------------------

def strip_comments_and_strings(text):
    """Replaces comments and string/char literals with spaces, preserving
    newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
            out.append(" ")
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                i += 1
            i += 1
            out.append(" ")
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def balanced_args(text, open_paren):
    """Returns the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
    return text[open_paren + 1:]


ATOMIC_CALL = re.compile(
    r"\b(\w+)\s*(?:\[[^\]]*\])?\s*\.\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")
ORDER = re.compile(r"std\s*::\s*memory_order_(\w+)")
ATOMIC_DECL = re.compile(r"std\s*::\s*atomic\s*<[^;{>]*>\s*(?:\[\s*\])?\s*(\w+)")


def scan_atomics(path, text):
    """Yields (line, object, op, order_or_None) for member atomic ops, and
    collects declared atomic variable names."""
    sites = []
    names = set(m.group(1) for m in ATOMIC_DECL.finditer(text))
    for m in ATOMIC_CALL.finditer(text):
        obj, op = m.group(1), m.group(2)
        args = balanced_args(text, m.end() - 1)
        orders = ORDER.findall(args)
        sites.append((line_of(text, m.start()), obj, op,
                      orders[0] if orders else None))
        names.add(obj)
    return sites, names


IMPLICIT_OP = re.compile(
    r"(?:(\+\+|--)\s*)?\b(\w+)\s*(\+\+|--|[-+|&^]=|=[^=])?")


def scan_implicit_atomic_ops(text, atomic_names):
    """Finds ++/--/compound-assign/plain-assign on declared atomics: these
    compile to seq_cst operations with no visible order at the use site."""
    found = []
    for m in IMPLICIT_OP.finditer(text):
        name = m.group(2)
        if name not in atomic_names:
            continue
        if not (m.group(1) or m.group(3)):
            continue
        line_start = text.rfind("\n", 0, m.start()) + 1
        line_text = text[line_start:text.find("\n", m.start())]
        # Skip the declaration itself ("std::atomic<int> idle_{0}" or "= 0").
        if "atomic" in line_text:
            continue
        found.append((line_of(text, m.start()), name, line_text.strip()))
    return found


def check_atomic_orders(root, allowlist, errors):
    allowed = {}
    for entry in allowlist.get("memory_order", []):
        key = (entry["file"], entry["object"], entry["op"], entry["order"])
        allowed[key] = {"sites": int(entry["sites"]), "seen": 0,
                        "why": entry.get("why", "")}
        if not entry.get("why"):
            errors.append(f"{entry['file']}: allowlist entry for "
                          f"{entry['object']}.{entry['op']} has no "
                          "justification ('why')")

    files = []
    for scope in ATOMIC_SCOPE:
        files.extend(sorted((root / scope).glob("*.hpp")))
        files.extend(sorted((root / scope).glob("*.cpp")))
    for path in files:
        rel = path.relative_to(root).as_posix()
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        sites, atomic_names = scan_atomics(rel, text)
        for line, obj, op, order in sites:
            if order is None:
                errors.append(
                    f"{rel}:{line}: {obj}.{op}() without an explicit "
                    "std::memory_order (implicit seq_cst is not auditable)")
                continue
            key = (rel, obj, op, order)
            if key not in allowed:
                errors.append(
                    f"{rel}:{line}: {obj}.{op}(memory_order_{order}) is not "
                    "in tools/lint_allowlist.json -- audit the access and "
                    "add a justified entry")
            else:
                allowed[key]["seen"] += 1
        for line, name, snippet in scan_implicit_atomic_ops(text,
                                                            atomic_names):
            errors.append(
                f"{rel}:{line}: implicit seq_cst operation on atomic "
                f"'{name}' ({snippet!r}); use an explicit member call with "
                "a std::memory_order")

    for (rel, obj, op, order), info in sorted(allowed.items()):
        if info["seen"] != info["sites"]:
            errors.append(
                f"{rel}: allowlist declares {info['sites']} site(s) of "
                f"{obj}.{op}(memory_order_{order}) but {info['seen']} found "
                "-- re-audit and update tools/lint_allowlist.json")


def check_noexcept(root, errors):
    for rel, names in NOEXCEPT_ENTRY_POINTS.items():
        path = root / rel
        if not path.exists():
            errors.append(f"{rel}: file missing (noexcept policy refers to "
                          "it)")
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for name in names:
            if not re.search(rf"\b{name}\s*\([^;{{}}]*\)\s*noexcept", text):
                errors.append(
                    f"{rel}: no noexcept declaration of '{name}' found -- "
                    "kernel registry entry points must not unwind into the "
                    "recursion hot path")


def check_hot_path_tokens(root, allowlist, errors):
    exceptions = {}
    for entry in allowlist.get("hot_path_exceptions", []):
        key = (entry["file"], entry["token"])
        exceptions[key] = {"sites": int(entry["sites"]), "seen": 0}
        if not entry.get("why"):
            errors.append(f"{entry['file']}: hot-path exception for "
                          f"{entry['token']!r} has no justification ('why')")
    for rel in HOT_PATH_FILES:
        path = root / rel
        if not path.exists():
            errors.append(f"{rel}: file missing (hot-path policy refers to "
                          "it)")
            continue
        text = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        for token in BANNED_TOKENS:
            for m in re.finditer(re.escape(token), text):
                # "malloc" must not also fire inside identifiers like
                # "my_malloc_count" (qualification with "::" still counts).
                before = text[m.start() - 1:m.start()]
                after = text[m.end():m.end() + 1]
                if re.match(r"\w", before) or re.match(r"\w", after):
                    continue
                key = (rel, token)
                if key in exceptions:
                    exceptions[key]["seen"] += 1
                    if exceptions[key]["seen"] <= exceptions[key]["sites"]:
                        continue
                errors.append(
                    f"{rel}:{line_of(text, m.start())}: banned hot-path "
                    f"token {token!r} (allocation/clock work is not allowed "
                    "in leaf-kernel or schedule-interpreter code)")
    for (rel, token), info in sorted(exceptions.items()):
        if info["seen"] < info["sites"]:
            errors.append(
                f"{rel}: hot-path exception declares {info['sites']} "
                f"site(s) of {token!r} but {info['seen']} found -- stale "
                "allowlist entry")


# ---- libclang engine (optional) -------------------------------------------

def libclang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def run_libclang(root, allowlist, errors):
    """Type-accurate pass over compile_commands.json.  Requires the optional
    python3-clang package; the container gates on availability."""
    import clang.cindex as ci

    ccdb_dir = None
    for cand in ("build", "."):
        if (root / cand / "compile_commands.json").exists():
            ccdb_dir = root / cand
            break
    if ccdb_dir is None:
        errors.append("libclang engine: compile_commands.json not found "
                      "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        return
    db = ci.CompilationDatabase.fromDirectory(str(ccdb_dir))
    index = ci.Index.create()
    scope = tuple(str(root / s) for s in ATOMIC_SCOPE)
    for rel in sorted({e["file"] for e in allowlist.get("memory_order", [])}):
        path = root / rel
        if path.suffix != ".cpp":
            continue
        cmds = db.getCompileCommands(str(path))
        if not cmds:
            continue
        args = [a for a in list(cmds[0].arguments)[1:-1] if a != "-c"]
        tu = index.parse(str(path), args=args)
        for cursor in tu.cursor.walk_preorder():
            if cursor.kind != ci.CursorKind.CALL_EXPR:
                continue
            if cursor.spelling not in ATOMIC_OPS:
                continue
            loc = cursor.location
            if loc.file is None or not str(loc.file).startswith(scope):
                continue
            toks = " ".join(t.spelling for t in cursor.get_tokens())
            if "memory_order" not in toks:
                errors.append(f"{rel}:{loc.line}: {cursor.spelling}() "
                              "without an explicit std::memory_order "
                              "(libclang engine)")


# ---- driver ---------------------------------------------------------------

def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--allowlist", default=None,
                    help="path to lint_allowlist.json "
                         "(default: tools/lint_allowlist.json under --root)")
    ap.add_argument("--engine", choices=("auto", "text", "libclang"),
                    default="text",
                    help="text = regex engine (no dependencies); libclang = "
                         "AST engine (requires python3-clang); auto = "
                         "libclang when importable, else text")
    args = ap.parse_args()

    root = pathlib.Path(args.root).resolve()
    allowlist_path = (pathlib.Path(args.allowlist) if args.allowlist
                      else root / "tools" / "lint_allowlist.json")
    if not allowlist_path.exists():
        print(f"lint_invariants: allowlist not found: {allowlist_path}",
              file=sys.stderr)
        return 2
    allowlist = json.loads(allowlist_path.read_text(encoding="utf-8"))

    engine = args.engine
    if engine == "libclang" and not libclang_available():
        print("lint_invariants: --engine libclang requested but "
              "clang.cindex is not importable (install python3-clang)",
              file=sys.stderr)
        return 2
    if engine == "auto":
        engine = "libclang" if libclang_available() else "text"

    errors = []
    check_atomic_orders(root, allowlist, errors)
    check_noexcept(root, errors)
    check_hot_path_tokens(root, allowlist, errors)
    if engine == "libclang":
        run_libclang(root, allowlist, errors)

    if errors:
        for e in errors:
            print(f"FAIL {e}")
        print(f"lint_invariants: {len(errors)} violation(s) [{engine} "
              "engine]", file=sys.stderr)
        return 1
    audited = len(allowlist.get("memory_order", []))
    print(f"lint_invariants: clean [{engine} engine; {audited} audited "
          "memory_order pattern(s)]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
