#include "blas/gemm.hpp"

namespace strassen::blas {

void gemm_leaf(int m, int n, int k, const double* A, int lda, const double* B,
               int ldb, double* C, int ldc, LeafMode mode, double alpha) {
  RawMem raw;
  gemm_leaf(raw, m, n, k, A, lda, B, ldb, C, ldc, mode, alpha);
}

void gemm(Op opa, Op opb, int m, int n, int k, double alpha, const double* A,
          int lda, const double* B, int ldb, double beta, double* C, int ldc) {
  RawMem raw;
  gemm_blocked(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc);
}

void gemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
          int lda, const float* B, int ldb, float beta, float* C, int ldc) {
  RawMem raw;
  gemm_blocked(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc);
}

}  // namespace strassen::blas
