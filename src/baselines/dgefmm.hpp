// dgefmm.hpp -- DGEFMM baseline: Strassen-Winograd with DYNAMIC PEELING.
//
// Reimplementation of the approach of Huss-Lederman, Jacobson, Johnson, Tsao
// and Turnbull (Supercomputing '96), the paper's primary comparison point.
// Matrices stay in their native column-major layout throughout.  At every
// recursion level, odd dimensions are handled by peeling off the last row
// and/or column, recursing on the even core
//
//     C11(m' x n') = A11(m' x k') . B11(k' x n'),   m' = m - (m odd), ...
//
// and restoring the peeled contributions with matrix-VECTOR fix-ups:
//
//     k odd:  C11 += a_col . b_row                     (rank-1 update, ger)
//     n odd:  C(0:m', n-1)  = A(0:m', :) . B(:, n-1)   (gemv)
//     m odd:  C(m-1, 0:n')  = A(m-1, :) . B            (gemv, transposed)
//     m,n odd: C(m-1, n-1)  = A(m-1,:) . B(:,n-1)      (dot)
//
// The paper's critique -- which the benches quantify -- is that these
// fix-ups are matrix-vector operations with little reuse, and that the
// column-major quadrant additions need two nested loops where Morton
// storage needs one.
//
// The recursion truncates at a FIXED cutoff (the empirically determined
// value 64 from the SC'96 paper, which the SC'98 paper also uses), falling
// back to the conventional blocked algorithm.
#pragma once

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/level2.hpp"
#include "blas/view_ops.hpp"
#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"

namespace strassen::baselines {

struct DgefmmOptions {
  int cutoff = 64;  // recursion truncation point (SC'96 empirical value)
};

// Peak temporary bytes for the peeling recursion on an m x n x k product.
std::size_t dgefmm_workspace_bytes(int m, int n, int k, int cutoff,
                                   std::size_t elem_size);

namespace detail {

// C(m x n) = A(m x k) . B(k x n), overwrite, all column-major.
template <class MM, class T>
void dgefmm_recurse(MM& mm, int m, int n, int k, const T* A, int lda,
                    const T* B, int ldb, T* C, int ldc, int cutoff,
                    Arena& arena) {
  if (std::min(m, std::min(n, k)) <= cutoff) {
    blas::gemm_blocked_nn(mm, m, n, k, T{1}, A, lda, B, ldb, T{0}, C, ldc);
    return;
  }
  // Even core; the odd remainder (at most one row/column per operand) is
  // peeled and fixed up below.
  const int mp = m & ~1;
  const int kp = k & ~1;
  const int np = n & ~1;
  const int m2 = mp / 2, k2 = kp / 2, n2 = np / 2;

  const T* A11 = A;
  const T* A12 = A + static_cast<std::size_t>(k2) * lda;
  const T* A21 = A + m2;
  const T* A22 = A12 + m2;
  const T* B11 = B;
  const T* B12 = B + static_cast<std::size_t>(n2) * ldb;
  const T* B21 = B + k2;
  const T* B22 = B12 + k2;
  T* C11 = C;
  T* C12 = C + static_cast<std::size_t>(n2) * ldc;
  T* C21 = C + m2;
  T* C22 = C12 + m2;

  Arena::Frame frame(arena);
  T* tS = arena.push<T>(static_cast<std::size_t>(m2) * k2);  // ld = m2
  T* tT = arena.push<T>(static_cast<std::size_t>(k2) * n2);  // ld = k2
  T* tP = arena.push<T>(static_cast<std::size_t>(m2) * n2);  // ld = m2

  auto mul = [&](T* dst, int ldd, const T* a, int la, const T* b, int lb) {
    // Quadrants of the even core are m2 x k2 times k2 x n2.
    dgefmm_recurse(mm, m2, n2, k2, a, la, b, lb, dst, ldd, cutoff, arena);
  };

  // Same Winograd schedule as core/winograd.hpp, over strided views.
  blas::view_sub(mm, m2, k2, tS, m2, A11, lda, A21, lda);    // S3
  blas::view_sub(mm, k2, n2, tT, k2, B22, ldb, B12, ldb);    // T3
  mul(C21, ldc, tS, m2, tT, k2);                             // P5
  blas::view_add(mm, m2, k2, tS, m2, A21, lda, A22, lda);    // S1
  blas::view_sub(mm, k2, n2, tT, k2, B12, ldb, B11, ldb);    // T1
  mul(C22, ldc, tS, m2, tT, k2);                             // P3
  blas::view_sub_inplace(mm, m2, k2, tS, m2, A11, lda);      // S2
  blas::view_sub(mm, k2, n2, tT, k2, B22, ldb, tT, k2);      // T2
  mul(C12, ldc, tS, m2, tT, k2);                             // P4
  blas::view_sub(mm, m2, k2, tS, m2, A12, lda, tS, m2);      // S4
  blas::view_sub_inplace(mm, k2, n2, tT, k2, B21, ldb);      // T2 - B21
  mul(tP, m2, A11, lda, B11, ldb);                           // P1
  blas::view_add_inplace(mm, m2, n2, C12, ldc, tP, m2);      // U2
  blas::view_add_inplace(mm, m2, n2, C21, ldc, C12, ldc);    // U3
  blas::view_add_inplace(mm, m2, n2, C12, ldc, C22, ldc);    // U6
  blas::view_add_inplace(mm, m2, n2, C22, ldc, C21, ldc);    // final C22
  mul(C11, ldc, A22, lda, tT, k2);                           // -P7
  blas::view_sub_inplace(mm, m2, n2, C21, ldc, C11, ldc);    // final C21
  mul(C11, ldc, tS, m2, B22, ldb);                           // P6
  blas::view_add_inplace(mm, m2, n2, C12, ldc, C11, ldc);    // final C12
  mul(C11, ldc, A12, lda, B21, ldb);                         // P2
  blas::view_add_inplace(mm, m2, n2, C11, ldc, tP, m2);      // final C11

  // ---- dynamic peeling fix-ups (matrix-vector work) ----
  if (kp < k) {
    // C(0:mp, 0:np) += A(:, k-1) . B(k-1, :)  -- rank-1 update.
    blas::ger(mm, mp, np, T{1}, A + static_cast<std::size_t>(k - 1) * lda, 1,
              B + (k - 1), ldb, C, ldc);
  }
  if (np < n) {
    // Last column of C over the full inner dimension.
    blas::gemv_n(mm, mp, k, T{1}, A, lda,
                 B + static_cast<std::size_t>(n - 1) * ldb, 1, T{0},
                 C + static_cast<std::size_t>(n - 1) * ldc, 1);
  }
  if (mp < m) {
    // Last row of C (cols 0:np) over the full inner dimension.
    blas::gemv_t(mm, k, np, T{1}, B, ldb, A + (m - 1), lda, T{0}, C + (m - 1),
                 ldc);
  }
  if (mp < m && np < n) {
    const T v = blas::dot(mm, k, A + (m - 1), lda,
                          B + static_cast<std::size_t>(n - 1) * ldb, 1);
    mm.store(C + static_cast<std::size_t>(n - 1) * ldc + (m - 1), v);
  }
}

}  // namespace detail

// Full dgemm semantics: C <- alpha * op(A).op(B) + beta * C.  Transposes are
// materialized up front; alpha/beta other than (1, 0) go through a
// temporary product D with a post-pass C = alpha*D + beta*C, as the original
// DGEFMM described.
template <class MM, class T>
void dgefmm_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
               const T* A, int lda, const T* B, int ldb, T beta, T* C, int ldc,
               const DgefmmOptions& opt = {}) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  STRASSEN_REQUIRE(opt.cutoff >= 8, "cutoff unreasonably small");
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  AlignedBuffer at_buf, bt_buf;
  const T* Ae = A;
  int ldae = lda;
  if (opa == Op::Trans) {
    at_buf = AlignedBuffer(static_cast<std::size_t>(m) * k * sizeof(T));
    blas::transpose(mm, k, m, A, lda, at_buf.as<T>(), m);
    Ae = at_buf.as<T>();
    ldae = m;
  }
  const T* Be = B;
  int ldbe = ldb;
  if (opb == Op::Trans) {
    bt_buf = AlignedBuffer(static_cast<std::size_t>(k) * n * sizeof(T));
    blas::transpose(mm, n, k, B, ldb, bt_buf.as<T>(), k);
    Be = bt_buf.as<T>();
    ldbe = k;
  }

  Arena arena(dgefmm_workspace_bytes(m, n, k, opt.cutoff, sizeof(T)));
  if (alpha == T{1} && beta == T{0}) {
    detail::dgefmm_recurse(mm, m, n, k, Ae, ldae, Be, ldbe, C, ldc, opt.cutoff,
                           arena);
    return;
  }
  AlignedBuffer d_buf(static_cast<std::size_t>(m) * n * sizeof(T));
  T* D = d_buf.as<T>();
  detail::dgefmm_recurse(mm, m, n, k, Ae, ldae, Be, ldbe, D, m, opt.cutoff,
                         arena);
  blas::axpby_view(mm, m, n, C, ldc, alpha, D, m, beta);
}

// Production entry points.
void dgefmm(Op opa, Op opb, int m, int n, int k, double alpha, const double* A,
            int lda, const double* B, int ldb, double beta, double* C, int ldc,
            const DgefmmOptions& opt = {});
void dgefmm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
            int lda, const float* B, int ldb, float beta, float* C, int ldc,
            const DgefmmOptions& opt = {});

}  // namespace strassen::baselines
