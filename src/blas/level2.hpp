// level2.hpp -- matrix-vector kernels (MemModel-templated).
//
// Dynamic peeling (the DGEFMM baseline) removes the odd row/column before
// recursing and restores its contribution with matrix-vector fix-ups: a
// rank-1 update for an odd inner dimension and gemv sweeps for odd outer
// dimensions.  The paper points out that precisely these fix-ups limit reuse;
// having them in the library lets the benches attribute that cost.
#pragma once

#include <cstddef>

#include "common/memmodel.hpp"

namespace strassen::blas {

// y = alpha * A * x + beta * y, A is m x n column-major.
template <class MM, class T>
void gemv_n(MM& mm, int m, int n, T alpha, const T* A, int lda, const T* x,
            int incx, T beta, T* y, int incy) {
  for (int i = 0; i < m; ++i) {
    T* yi = y + static_cast<std::ptrdiff_t>(i) * incy;
    mm.store(yi, beta == T{0} ? T{0} : static_cast<T>(beta * mm.load(yi)));
  }
  for (int j = 0; j < n; ++j) {
    const T xj = alpha * mm.load(x + static_cast<std::ptrdiff_t>(j) * incx);
    const T* Aj = A + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i < m; ++i) {
      T* yi = y + static_cast<std::ptrdiff_t>(i) * incy;
      mm.store(yi, static_cast<T>(mm.load(yi) + xj * mm.load(Aj + i)));
    }
  }
}

// y = alpha * A^T * x + beta * y, A is m x n column-major (y has n entries).
template <class MM, class T>
void gemv_t(MM& mm, int m, int n, T alpha, const T* A, int lda, const T* x,
            int incx, T beta, T* y, int incy) {
  for (int j = 0; j < n; ++j) {
    const T* Aj = A + static_cast<std::size_t>(j) * lda;
    T acc{0};
    for (int i = 0; i < m; ++i)
      acc += mm.load(Aj + i) * mm.load(x + static_cast<std::ptrdiff_t>(i) * incx);
    T* yj = y + static_cast<std::ptrdiff_t>(j) * incy;
    const T prior = beta == T{0} ? T{0} : static_cast<T>(beta * mm.load(yj));
    mm.store(yj, static_cast<T>(prior + alpha * acc));
  }
}

// A += alpha * x * y^T, A is m x n column-major (rank-1 update).
template <class MM, class T>
void ger(MM& mm, int m, int n, T alpha, const T* x, int incx, const T* y,
         int incy, T* A, int lda) {
  for (int j = 0; j < n; ++j) {
    const T yj = alpha * mm.load(y + static_cast<std::ptrdiff_t>(j) * incy);
    T* Aj = A + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i < m; ++i)
      mm.store(Aj + i,
               static_cast<T>(mm.load(Aj + i) +
                              mm.load(x + static_cast<std::ptrdiff_t>(i) * incx) * yj));
  }
}

// Dot product of two strided vectors.
template <class MM, class T>
T dot(MM& mm, int n, const T* x, int incx, const T* y, int incy) {
  T acc{0};
  for (int i = 0; i < n; ++i)
    acc += mm.load(x + static_cast<std::ptrdiff_t>(i) * incx) *
           mm.load(y + static_cast<std::ptrdiff_t>(i) * incy);
  return acc;
}

// Production-model convenience overloads.
void gemv_n(int m, int n, double alpha, const double* A, int lda,
            const double* x, int incx, double beta, double* y, int incy);
void gemv_t(int m, int n, double alpha, const double* A, int lda,
            const double* x, int incx, double beta, double* y, int incy);
void ger(int m, int n, double alpha, const double* x, int incx,
         const double* y, int incy, double* A, int lda);
double dot(int n, const double* x, int incx, const double* y, int incy);

}  // namespace strassen::blas
