// core/batched.hpp -- the batched GEMM service core.
//
// The paper tunes ONE product for memory efficiency; a serving workload is
// torrents of small/medium products per request (the per-inference
// ConvolutionSgemm / WinogradSgemm batch shape of Go/chess engines).  Naive
// looping over core::modgemm pays, per product: argument+environment
// resolution, a planning pass, a workspace allocation, and a report.  This
// entry point amortizes all four across the batch:
//
//   * plan once per (shape, op, strategy, schedule) equivalence class --
//     products with equal planning inputs share one GemmPlan, looked up in /
//     published to the process-wide plan cache (tune/plan_cache.hpp), so a
//     steady-state service plans a given class exactly once per process;
//   * scratch through the per-thread ScratchArena cache
//     (parallel/arena_pool.hpp) -- a worker that has run one product of a
//     class reuses the same arena for every subsequent product it picks up,
//     so a batch of B identical products costs at most (threads + 1) cold
//     allocations, not B;
//   * schedule the whole batch on the work-stealing pool: one task per
//     product, with DEEP spawning (parallel::pmodgemm) only for products
//     whose padded volume alone exceeds min_task_flops -- small products
//     parallelize across each other, big ones within themselves;
//   * one aggregated GemmReport per batch (schema v5's "batch" section:
//     product count, class count, plan-cache hits, arena acquisition /
//     cold-allocation counts, tune-cache state).
//
// Resilience contract, unchanged from the serial driver: every product runs
// the full degradation ladder independently inside its task, so a valid
// batch always completes every C exactly; an argument error rejects the
// WHOLE batch before any C is touched (validation of all items runs up
// front).  try_ variants return the first offending item's Status, nothrow.
#pragma once

#include <cstdint>

#include "core/modgemm.hpp"
#include "parallel/thread_pool.hpp"

namespace strassen::core {

// One product of a batch, dgemm convention: C <- alpha*op(A).op(B) + beta*C,
// op(A) m x k, op(B) k x n, C m x n, all column-major with leading dims.
struct BatchItem {
  Op opa = Op::NoTrans;
  Op opb = Op::NoTrans;
  int m = 0, n = 0, k = 0;
  double alpha = 1.0;
  const double* A = nullptr;
  int lda = 1;
  const double* B = nullptr;
  int ldb = 1;
  double beta = 0.0;
  double* C = nullptr;
  int ldc = 1;
};

struct BatchedOptions {
  // Planner knobs shared by every product (overridden by the tuned knobs
  // when `tune` is set).
  layout::TileOptions tiles{};
  // Per-product workspace budget, exactly ModgemmOptions::max_workspace_bytes
  // (the degradation ladder applies per class).  0 = unlimited.
  std::size_t max_workspace_bytes = 0;
  // Leaf-kernel pin installed ONCE for the whole batch (process-global, like
  // ModgemmOptions::kernel).
  blas::kernels::Kind kernel = blas::kernels::Kind::kAuto;
  blas::kernels::Avx2Variant avx2_variant = blas::kernels::Avx2Variant::kAuto;
  // Schedule-family / execution-strategy pins, resolved once per batch
  // against STRASSEN_SCHEDULE / STRASSEN_STRATEGY (semantics identical to
  // ModgemmOptions).
  analysis::ScheduleFamily schedule = analysis::ScheduleFamily::kAuto;
  layout::ExecStrategy strategy = layout::ExecStrategy::kAuto;
  // <m,k,n> algorithm-family pin, resolved once per batch against
  // STRASSEN_ALGO and then per class by the planner heuristic
  // (layout::choose_algo) -- same precedence as ModgemmOptions::algo.
  analysis::AlgoFamily algo = analysis::AlgoFamily::kAuto;
  // A product whose padded volume (m_pad * k_pad * n_pad) is at least this
  // runs as a deep-spawning parallel::pmodgemm call of its own instead of a
  // single task (same default as ParallelOptions::min_task_flops).
  std::int64_t min_task_flops = std::int64_t{1} << 21;
  // Consult/populate the process-wide plan cache (tune/plan_cache.hpp).
  // Off, every batch plans its classes from scratch (still once per class).
  bool use_plan_cache = true;
  // Run tune::autotune_cached() once up front and use its tile knobs for the
  // whole batch (a warm STRASSEN_TUNE_CACHE makes this a file read; the
  // outcome lands in the report's batch.tune_cache field).  Off by default:
  // services that tuned at startup pass their knobs via `tiles`.
  bool tune = false;
  // Per-batch observability (one aggregated report); same precedence as
  // ModgemmOptions::report vs the trailing parameter.
  obs::GemmReport* report = nullptr;
};

// Multiplies `count` independent products.  `pool` may be null (everything
// runs inline on the caller, still one planning pass per class).  Throws
// std::invalid_argument -- before touching any C -- if ANY item has bad
// arguments; std::bad_alloc only if even the allocation-free bottom rung
// could not run for some product (the ladder makes this as rare as for
// core::modgemm).
void modgemm_batched(parallel::ThreadPool* pool, const BatchItem* items,
                     int count, const BatchedOptions& opt = {},
                     obs::GemmReport* report = nullptr);

// The cuBLAS-convention strided flavor: item i multiplies
// A + i*stride_a, B + i*stride_b into C + i*stride_c (same shape, ops,
// alpha/beta and leading dimensions for all items -- exactly one plan
// class).  Strides are in elements.  stride_c must cover a full C footprint
// (>= ldc*n) when batch > 1 so outputs cannot alias; stride_a / stride_b of
// 0 broadcast a shared operand.
void modgemm_strided_batched(parallel::ThreadPool* pool, Op opa, Op opb,
                             int m, int n, int k, double alpha,
                             const double* A, int lda, std::int64_t stride_a,
                             const double* B, int ldb, std::int64_t stride_b,
                             double beta, double* C, int ldc,
                             std::int64_t stride_c, int batch,
                             const BatchedOptions& opt = {},
                             obs::GemmReport* report = nullptr);

// Nothrow flavors: argument errors come back as the first offending item's
// Status with EVERY C untouched; runtime failures that escape the ladder map
// to kOutOfMemory / kInternalError (per-product exact-or-untouched still
// holds -- a product either completed exactly or was never started).
Status try_modgemm_batched(parallel::ThreadPool* pool, const BatchItem* items,
                           int count, const BatchedOptions& opt = {},
                           obs::GemmReport* report = nullptr) noexcept;
Status try_modgemm_strided_batched(parallel::ThreadPool* pool, Op opa, Op opb,
                                   int m, int n, int k, double alpha,
                                   const double* A, int lda,
                                   std::int64_t stride_a, const double* B,
                                   int ldb, std::int64_t stride_b, double beta,
                                   double* C, int ldc, std::int64_t stride_c,
                                   int batch, const BatchedOptions& opt = {},
                                   obs::GemmReport* report = nullptr) noexcept;

}  // namespace strassen::core
