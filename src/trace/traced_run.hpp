// traced_run.hpp -- full-execution cache simulations of the competing GEMMs.
//
// These drivers reproduce the paper's Fig. 9 methodology: run the COMPLETE
// implementation (including, for MODGEMM, the layout conversions) on real
// data while every load/store is replayed through a cache model, then report
// per-level miss statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/cache.hpp"

namespace strassen::trace {

enum class Impl { Modgemm, Dgefmm, Dgemmw, Conventional };

const char* impl_name(Impl impl);

struct TraceLevelStats {
  std::string name;
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  double miss_ratio = 0.0;
  bool has_breakdown = false;   // true when the level ran with classification
  MissBreakdown breakdown{};    // three-C's attribution (CProf stand-in)
};

struct TraceResult {
  std::string hierarchy;
  std::vector<TraceLevelStats> levels;
  std::uint64_t total_accesses = 0;
  std::uint64_t memory_accesses = 0;
  double l1_miss_ratio = 0.0;
  double estimated_cycles = 0.0;
};

// Runs C = A.B (alpha=1, beta=0, the paper's measurement setting) for an
// m x n result with inner dimension k under cache simulation.
TraceResult trace_multiply(Impl impl, int m, int n, int k,
                           CacheHierarchy hierarchy,
                           std::uint64_t seed = 0x5C98u);

// The Fig. 3 kernel experiment under simulation: multiply T x T submatrices
// carved from a base matrix of leading dimension `base_ld` (non-contiguous,
// A at (0,0), B at (T,T), C at (2T,2T) as in the paper) or from dedicated
// contiguous tiles (`contiguous` = true, leading dimension T).
TraceResult trace_tile_kernel(int tile, int base_ld, bool contiguous,
                              CacheHierarchy hierarchy, int repetitions = 4,
                              std::uint64_t seed = 0x5C98u);

}  // namespace strassen::trace
