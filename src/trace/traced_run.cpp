#include "trace/traced_run.hpp"

#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "blas/gemm.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "trace/memmodel.hpp"

namespace strassen::trace {

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::Modgemm: return "MODGEMM";
    case Impl::Dgefmm: return "DGEFMM";
    case Impl::Dgemmw: return "DGEMMW";
    case Impl::Conventional: return "DGEMM";
  }
  return "?";
}

namespace {

TraceResult collect(const CacheHierarchy& h) {
  TraceResult r;
  r.hierarchy = h.name();
  for (std::size_t i = 0; i < h.num_levels(); ++i) {
    const Cache& c = h.level(i);
    TraceLevelStats stats{c.config().name, c.accesses(), c.misses(),
                          c.miss_ratio(), c.config().classify, c.breakdown()};
    r.levels.push_back(stats);
  }
  r.total_accesses = h.total_accesses();
  r.memory_accesses = h.memory_accesses();
  r.l1_miss_ratio = h.l1_miss_ratio();
  r.estimated_cycles = h.estimated_cycles();
  return r;
}

}  // namespace

TraceResult trace_multiply(Impl impl, int m, int n, int k,
                           CacheHierarchy hierarchy, std::uint64_t seed) {
  STRASSEN_REQUIRE(m >= 1 && n >= 1 && k >= 1, "bad trace dimensions");
  Matrix<double> A(m, k), B(k, n), C(m, n);
  Rng rng(seed);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());

  hierarchy.flush();
  TracingMem mm(hierarchy);
  switch (impl) {
    case Impl::Modgemm: {
      core::ModgemmOptions opt;
      // The trace experiments reproduce the paper's <2,2,2> cache stories;
      // pin the family so a forced STRASSEN_ALGO run cannot reroute them.
      opt.algo = analysis::AlgoFamily::k222;
      core::modgemm_mm(mm, Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(),
                       A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(), opt);
      break;
    }
    case Impl::Dgefmm:
      baselines::dgefmm_mm(mm, Op::NoTrans, Op::NoTrans, m, n, k, 1.0,
                           A.data(), A.ld(), B.data(), B.ld(), 0.0, C.data(),
                           C.ld());
      break;
    case Impl::Dgemmw:
      baselines::dgemmw_mm(mm, Op::NoTrans, Op::NoTrans, m, n, k, 1.0,
                           A.data(), A.ld(), B.data(), B.ld(), 0.0, C.data(),
                           C.ld());
      break;
    case Impl::Conventional:
      blas::gemm_blocked(mm, Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(),
                         A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld());
      break;
  }
  return collect(hierarchy);
}

TraceResult trace_tile_kernel(int tile, int base_ld, bool contiguous,
                              CacheHierarchy hierarchy, int repetitions,
                              std::uint64_t seed) {
  STRASSEN_REQUIRE(tile >= 1 && repetitions >= 1, "bad tile trace request");
  STRASSEN_REQUIRE(contiguous || base_ld >= 3 * tile,
                   "base matrix must hold the three offset submatrices");
  Rng rng(seed);
  TracingMem mm(hierarchy);
  if (contiguous) {
    // Dedicated tiles: leading dimension == tile (the Morton leaf situation).
    Matrix<double> A(tile, tile), B(tile, tile), C(tile, tile);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    hierarchy.flush();
    for (int r = 0; r < repetitions; ++r)
      blas::gemm_leaf(mm, tile, tile, tile, A.data(), A.ld(), B.data(), B.ld(),
                      C.data(), C.ld(), blas::LeafMode::Overwrite);
  } else {
    // Submatrices of a base matrix M: A = M[0,0], B = M[T,T], C = M[2T,2T],
    // all with the base leading dimension (paper S3.3).
    Matrix<double> M(base_ld, 3 * tile);
    rng.fill_uniform(M.storage());
    const double* A = M.data();
    const double* B = M.data() + static_cast<std::size_t>(tile) * M.ld() + tile;
    double* C =
        M.data() + static_cast<std::size_t>(2 * tile) * M.ld() + 2 * tile;
    hierarchy.flush();
    for (int r = 0; r < repetitions; ++r)
      blas::gemm_leaf(mm, tile, tile, tile, A, M.ld(), B, M.ld(), C, M.ld(),
                      blas::LeafMode::Overwrite);
  }
  return collect(hierarchy);
}

}  // namespace strassen::trace
