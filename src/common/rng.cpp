#include "common/rng.hpp"

namespace strassen {

void Rng::fill_uniform(std::span<double> out, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  for (double& x : out) x = dist(engine_);
}

void Rng::fill_uniform(std::span<float> out, float lo, float hi) {
  std::uniform_real_distribution<float> dist(lo, hi);
  for (float& x : out) x = dist(engine_);
}

void Rng::fill_int(std::span<double> out, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  for (double& x : out) x = static_cast<double>(dist(engine_));
}

void Rng::fill_int(std::span<float> out, int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  for (float& x : out) x = static_cast<float>(dist(engine_));
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

}  // namespace strassen
