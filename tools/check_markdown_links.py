#!/usr/bin/env python3
"""Checks that every relative link in the repo's markdown files resolves.

Scans *.md under the repository root (or the paths given on the command
line) for inline links/images ``[text](target)`` and reference definitions
``[label]: target``.  Relative targets must exist on disk; external schemes
(http/https/mailto) and pure in-page anchors are skipped, since CI must not
depend on network access.  Exits nonzero listing every broken link.

Usage: python3 tools/check_markdown_links.py [file-or-dir ...]
"""

import os
import re
import sys

# Inline [text](target) -- target ends at the first unescaped ')' (no
# nested parentheses appear in this repo's links).  The leading '!' of an
# image link is irrelevant to resolution.  Reference defs: [label]: target
INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            # Never descend into build trees or VCS metadata.
            dirnames[:] = [
                d for d in dirnames
                if d not in (".git", "build", "out") and not d.startswith("build")
            ]
            for name in sorted(filenames):
                if name.endswith(".md"):
                    yield os.path.join(dirpath, name)


def check_file(path):
    """Returns a list of (line_number, target) broken links in `path`."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    broken = []
    base = os.path.dirname(path)
    for match in list(INLINE_LINK.finditer(text)) + list(REF_DEF.finditer(text)):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        # Strip an in-page anchor from a file target (FILE.md#section).
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        if not os.path.exists(os.path.join(base, file_part)):
            line = text.count("\n", 0, match.start()) + 1
            broken.append((line, target))
    return broken


def main(argv):
    roots = argv[1:] or ["."]
    failures = 0
    checked = 0
    for path in iter_markdown_files(roots):
        checked += 1
        for line, target in check_file(path):
            print(f"{path}:{line}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"FAIL: {failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"OK: all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
