#include "core/batched.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <new>
#include <optional>
#include <unordered_map>
#include <vector>

#include "obs/scope.hpp"
#include "parallel/arena_pool.hpp"
#include "parallel/pmodgemm.hpp"
#include "tune/plan_cache.hpp"

namespace strassen::core {

namespace {

// One plan-equivalence class of the batch: every member item shares shape,
// ops, and (by construction of the batch-level options) budget, knobs,
// schedule and strategy resolution -- hence exactly one plan.
struct PlanClass {
  int m = 0, n = 0, k = 0;
  Op opa = Op::NoTrans, opb = Op::NoTrans;
  layout::GemmPlan plan{};
  int planned_depth = 0;
  obs::FallbackReason fallback = obs::FallbackReason::kNone;
  std::size_t workspace_bytes = 0;
  std::int64_t padded_volume = 0;
};

struct ClassKey {
  int m, n, k;
  std::uint8_t opa, opb;
  bool operator==(const ClassKey&) const = default;
};

struct ClassKeyHash {
  std::size_t operator()(const ClassKey& c) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<std::uint32_t>(c.m));
    mix(static_cast<std::uint32_t>(c.n));
    mix(static_cast<std::uint32_t>(c.k));
    mix(c.opa);
    mix(c.opb);
    return static_cast<std::size_t>(h);
  }
};

tune::PlanKey make_plan_key(const ClassKey& c, const BatchedOptions& opt,
                            analysis::ScheduleFamily schedule,
                            layout::ExecStrategy strategy,
                            analysis::AlgoFamily algo,
                            const layout::TileOptions& tiles) {
  tune::PlanKey key;
  key.m = c.m;
  key.k = c.k;
  key.n = c.n;
  key.opa = c.opa;
  key.opb = c.opb;
  key.schedule = static_cast<std::uint8_t>(schedule);
  key.strategy = static_cast<std::uint8_t>(strategy);
  key.algo = static_cast<std::uint8_t>(algo);
  key.elem_size = sizeof(double);
  key.max_workspace_bytes = opt.max_workspace_bytes;
  key.min_tile = tiles.min_tile;
  key.max_tile = tiles.max_tile;
  key.preferred_tile = tiles.preferred_tile;
  key.direct_threshold = tiles.direct_threshold;
  key.packfused_max_depth = tiles.packfused_max_depth;
  key.avoid_conflict_cache_bytes = tiles.avoid_conflict_cache_bytes;
  key.conflict_elem_bytes = tiles.conflict_elem_bytes;
  key.max_tile_working_set_bytes = tiles.max_tile_working_set_bytes;
  return key;
}

const char* tune_state_name(tune::TuneSource source) {
  switch (source) {
    case tune::TuneSource::kFreshSurvey: return "cold";
    case tune::TuneSource::kProcessMemo:
    case tune::TuneSource::kDiskCache: return "warm";
    case tune::TuneSource::kRejectedCache: return "rejected";
  }
  return "off";
}

// Batch-flavored merge of a task-local report into the aggregate (the
// pmodgemm merge idiom, extended with the strategy string, the pack-fused
// savings and the batch counters the tasks tally).
void merge_batch_report(obs::GemmReport* rep, const obs::GemmReport& sub) {
  if (rep == nullptr) return;
  rep->convert_in_seconds += sub.convert_in_seconds;
  rep->compute_seconds += sub.compute_seconds;
  rep->convert_out_seconds += sub.convert_out_seconds;
  rep->products += sub.products;
  rep->workspace_requested_bytes += sub.workspace_requested_bytes;
  rep->workspace_allocations += sub.workspace_allocations;
  rep->workspace_peak_bytes =
      std::max(rep->workspace_peak_bytes, sub.workspace_peak_bytes);
  rep->workspace_saved_bytes += sub.workspace_saved_bytes;
  rep->conversion_saved_bytes += sub.conversion_saved_bytes;
  if (sub.schedule[0] != '\0') rep->schedule = sub.schedule;
  if (sub.strategy[0] != '\0') rep->strategy = sub.strategy;
  if (sub.products > 0) rep->plan = sub.plan;
  rep->split_used = rep->split_used || sub.split_used;
  detail::record_fallback(rep, sub.fallback_reason);
  rep->batch_workspace_acquisitions += sub.batch_workspace_acquisitions;
  rep->batch_workspace_cold_allocs += sub.batch_workspace_cold_allocs;
}

}  // namespace

void modgemm_batched(parallel::ThreadPool* pool, const BatchItem* items,
                     int count, const BatchedOptions& opt,
                     obs::GemmReport* report) {
  STRASSEN_REQUIRE(count >= 0, "negative batch count: " << count);
  STRASSEN_REQUIRE(items != nullptr || count == 0,
                   "null items with count=" << count);
  STRASSEN_REQUIRE(opt.min_task_flops >= 1,
                   "min_task_flops must be >= 1, got " << opt.min_task_flops);
  // The whole batch is validated before ANY C is touched: a bad item rejects
  // everything, exactly like a bad argument to the serial entry point.
  for (int i = 0; i < count; ++i) {
    const BatchItem& it = items[i];
    require_gemm_args(it.opa, it.opb, it.m, it.n, it.k, it.lda, it.ldb,
                      it.ldc);
    STRASSEN_REQUIRE(it.m == 0 || it.n == 0 || it.C != nullptr,
                     "null C in batch item " << i);
  }
  blas::kernels::require_valid_kernel_env();
  // One pin for the whole batch (vs one install/restore per product in the
  // naive loop).
  std::optional<blas::kernels::ScopedKernel> kernel_pin;
  if (opt.kernel != blas::kernels::Kind::kAuto)
    kernel_pin.emplace(opt.kernel, opt.avx2_variant);

  if (report == nullptr) report = opt.report;
  obs::CallScope scope("modgemm_batched", report);
  obs::GemmReport* rep = scope.report();
  obs::WallStamp wall(rep);

  // Tile knobs: the caller's, or (opt.tune) the warm-startable autotune
  // outcome -- a file read when STRASSEN_TUNE_CACHE is warm, a survey once
  // per process otherwise.
  layout::TileOptions tiles = opt.tiles;
  const char* tune_state = "off";
  if (opt.tune) {
    const tune::CachedAutotune tuned = tune::autotune_cached();
    tiles = tuned.result.tiles;
    tune_state = tune_state_name(tuned.source);
  }

  if (rep) {
    rep->batch_count = count;
    rep->tune_cache = tune_state;
    rep->parallel = pool != nullptr && count > 0;
    rep->threads = pool != nullptr ? pool->thread_count() : 0;
    if (count > 0) {
      rep->m = items[0].m;
      rep->n = items[0].n;
      rep->k = items[0].k;
    }
    rep->kernel = blas::kernels::kind_name(blas::kernels::active_kernel());
    rep->kernel_variant =
        blas::kernels::variant_name(blas::kernels::avx2_variant());
  }
  if (count == 0) return;

  // Resolve the schedule family and execution strategy ONCE for the batch
  // (pin, then environment, then auto) -- the per-product env reads are one
  // of the loop costs this entry point exists to remove.  Malformed env
  // values throw here, before any write to C.
  ModgemmOptions resolve_probe;
  resolve_probe.schedule = opt.schedule;
  resolve_probe.strategy = opt.strategy;
  resolve_probe.algo = opt.algo;
  const analysis::ScheduleFamily resolved_schedule =
      detail::resolve_schedule_family(resolve_probe);
  const layout::ExecStrategy resolved_strategy =
      detail::resolve_exec_strategy(resolve_probe);
  // Pin, then STRASSEN_ALGO; kAuto survives to per-class resolution below
  // (the choose_algo heuristic is shape-dependent, unlike schedule/strategy).
  const analysis::AlgoFamily resolved_algo =
      detail::resolve_algo_family(resolve_probe);

  // ---- plan once per equivalence class -------------------------------------
  std::vector<PlanClass> classes;
  std::vector<int> cls_of(static_cast<std::size_t>(count), 0);
  {
    std::unordered_map<ClassKey, int, ClassKeyHash> index;
    index.reserve(static_cast<std::size_t>(count));
    std::uint64_t cache_hits = 0, cache_misses = 0;
    for (int i = 0; i < count; ++i) {
      const BatchItem& it = items[i];
      const ClassKey ck{it.m, it.n, it.k, static_cast<std::uint8_t>(it.opa),
                        static_cast<std::uint8_t>(it.opb)};
      auto [pos, fresh] =
          index.emplace(ck, static_cast<int>(classes.size()));
      if (fresh) {
        PlanClass cls;
        cls.m = it.m;
        cls.n = it.n;
        cls.k = it.k;
        cls.opa = it.opa;
        cls.opb = it.opb;
        // Per-class algorithm family: the batch-level pin/env when decided,
        // otherwise the planner heuristic on this class's shape.  Part of
        // the plan key -- a <3,3,3> plan must never serve a <2,2,2> lookup.
        const analysis::AlgoFamily cls_algo =
            resolved_algo != analysis::AlgoFamily::kAuto
                ? resolved_algo
                : (ck.m >= 1 && ck.k >= 1 && ck.n >= 1
                       ? layout::choose_algo(ck.m, ck.k, ck.n, tiles)
                       : analysis::AlgoFamily::k222);
        const tune::PlanKey pkey =
            make_plan_key(ck, opt, resolved_schedule, resolved_strategy,
                          cls_algo, tiles);
        const tune::CachedPlan* cached =
            opt.use_plan_cache ? tune::global_plan_cache().lookup(pkey)
                               : nullptr;
        if (ck.m < 1 || ck.k < 1 || ck.n < 1) {
          // Degenerate product (empty C or rank-0 update): nothing to plan
          // (plan_gemm requires dims >= 1); an infeasible plan routes every
          // item of the class to the serial driver's early-outs.  Not
          // cached -- there is no plan to share.
          cls.plan.feasible = false;
        } else if (cached != nullptr) {
          cls.plan = cached->plan;
          cls.planned_depth = cached->planned_depth;
          cls.fallback = cached->fallback;
          ++cache_hits;
        } else {
          const layout::GemmPlan planned =
              layout::plan_gemm(cls.m, cls.k, cls.n, tiles);
          cls.planned_depth = planned.depth;
          if (planned.direct || planned.feasible) {
            ModgemmOptions budget;
            budget.tiles = tiles;
            budget.max_workspace_bytes = opt.max_workspace_bytes;
            // Scratch report: captures the budget rung so plan-cache hits
            // replay the same fallback this planning pass records.
            obs::GemmReport plan_rep;
            cls.plan = detail::apply_workspace_budget(
                planned, cls.m, cls.k, cls.n, budget, sizeof(double),
                &plan_rep, resolved_schedule);
            cls.plan.strategy = detail::plan_exec_strategy(
                resolved_strategy, cls.plan, cls.m, cls.k, cls.n, tiles);
            cls.fallback = plan_rep.fallback_reason;
          } else {
            cls.plan = planned;  // infeasible: the item runs the split path
          }
          // Stamped after budget/strategy resolution so it survives both
          // branches; cache hits replay it from the stored plan.
          cls.plan.algo = cls_algo;
          ++cache_misses;
          if (opt.use_plan_cache)
            tune::global_plan_cache().insert(
                pkey, tune::CachedPlan{cls.plan, cls.planned_depth,
                                       cls.fallback});
        }
        cls.workspace_bytes = modgemm_workspace_bytes(cls.plan,
                                                      sizeof(double));
        cls.padded_volume =
            cls.plan.feasible && !cls.plan.direct
                ? static_cast<std::int64_t>(cls.plan.m.padded) *
                      cls.plan.k.padded * cls.plan.n.padded
                : static_cast<std::int64_t>(cls.m) * cls.k * cls.n;
        detail::record_fallback(rep, cls.fallback);
        classes.push_back(cls);
      }
      cls_of[static_cast<std::size_t>(i)] = pos->second;
    }
    if (rep) {
      rep->batch_classes = static_cast<int>(classes.size());
      rep->batch_plan_cache_hits = cache_hits;
      rep->batch_plan_cache_misses = cache_misses;
      rep->planned_depth = classes[static_cast<std::size_t>(cls_of[0])]
                               .planned_depth;
    }
  }

  // Serial options for the items that fall back to the full driver (split
  // shapes and degenerate alpha/k cases).  Pins pass through unchanged so
  // the ladder semantics (a pinned family never schedule-swaps) hold exactly
  // as they would in a loop of serial calls.
  ModgemmOptions serial;
  serial.tiles = tiles;
  serial.max_workspace_bytes = opt.max_workspace_bytes;
  serial.schedule = opt.schedule;
  serial.strategy = opt.strategy;

  // ---- execute: one task per product ---------------------------------------
  // Pre-allocated before the first submission (GemmReport is not
  // thread-safe; the done flags serve the submission-failure path).
  std::vector<obs::GemmReport> locals(
      rep != nullptr ? static_cast<std::size_t>(count) : 0);
  const std::unique_ptr<std::atomic<bool>[]> done(
      new std::atomic<bool>[static_cast<std::size_t>(count)]());

  RawMem mm;
  const auto run_item = [&](const BatchItem& it, const PlanClass& cls,
                            obs::GemmReport* local) {
    if (it.m == 0 || it.n == 0 || it.alpha == 0.0 || it.k == 0 ||
        !cls.plan.feasible ||
        cls.plan.algo != analysis::AlgoFamily::k222) {
      // Degenerate scaling cases, split shapes and non-<2,2,2> classes run
      // the full serial driver: its CallScope nests under this call's
      // collector, so kernel counters flow to the batch while phases land in
      // `local`.  The class's resolved family rides along as a pin, so a
      // family class stages its one table level (and recurses <2,2,2>
      // below) without re-reading STRASSEN_ALGO per item.
      ModgemmOptions item_opt = serial;
      item_opt.algo = cls.plan.algo;
      core::modgemm(it.opa, it.opb, it.m, it.n, it.k, it.alpha, it.A, it.lda,
                    it.B, it.ldb, it.beta, it.C, it.ldc, item_opt, local);
      return;
    }
    if (local) local->plan = cls.plan;
    if (cls.plan.direct) {
      detail::modgemm_direct(mm, it.opa, it.opb, it.m, it.n, it.k, it.alpha,
                             it.A, it.lda, it.B, it.ldb, it.beta, it.C,
                             it.ldc, local);
      return;
    }
    if (cls.plan.strategy == layout::ExecStrategy::kPackFused) {
      try {
        modgemm_packfused(it.opa, it.opb, it.m, it.n, it.k, it.alpha, it.A,
                          it.lda, it.B, it.ldb, it.beta, it.C, it.ldc,
                          cls.plan, local);
        return;
      } catch (const std::bad_alloc&) {
        detail::record_fallback(local, FallbackReason::kAllocDirect);
      }
      detail::modgemm_direct(mm, it.opa, it.opb, it.m, it.n, it.k, it.alpha,
                             it.A, it.lda, it.B, it.ldb, it.beta, it.C,
                             it.ldc, local);
      return;
    }
    try {
      // The amortization point: the arena comes from this thread's cache, so
      // every product of the class after the first reuses warm memory.  The
      // acquisition notes itself on the batch collector (bytes + count);
      // cache hit/cold telemetry is tallied by the caller via the per-thread
      // stats delta.
      parallel::ScratchArena scratch(cls.workspace_bytes);
      detail::modgemm_strassen_arena(mm, it.opa, it.opb, it.m, it.n, it.k,
                                     it.alpha, it.A, it.lda, it.B, it.ldb,
                                     it.beta, it.C, it.ldc, cls.plan,
                                     scratch.arena(), local);
    } catch (const std::bad_alloc&) {
      // Acquisition refused/failed: C untouched, degrade like the serial
      // ladder.
      detail::record_fallback(local, FallbackReason::kAllocDirect);
      detail::modgemm_direct(mm, it.opa, it.opb, it.m, it.n, it.k, it.alpha,
                             it.A, it.lda, it.B, it.ldb, it.beta, it.C,
                             it.ldc, local);
    }
  };

  const auto run_indexed = [&](int i) {
    const BatchItem& it = items[i];
    const PlanClass& cls = classes[static_cast<std::size_t>(
        cls_of[static_cast<std::size_t>(i)])];
    obs::GemmReport* local =
        locals.empty() ? nullptr : &locals[static_cast<std::size_t>(i)];
    if (local) {
      const parallel::ArenaCacheStats before =
          parallel::thread_arena_cache_stats();
      run_item(it, cls, local);
      const parallel::ArenaCacheStats after =
          parallel::thread_arena_cache_stats();
      local->batch_workspace_acquisitions +=
          (after.hits - before.hits) + (after.misses - before.misses);
      local->batch_workspace_cold_allocs += after.misses - before.misses;
    } else {
      run_item(it, cls, nullptr);
    }
    done[i].store(true, std::memory_order_release);
  };

  // A product big enough to keep the whole pool busy by itself runs as a
  // deep-spawning pmodgemm call instead of one task (after the small-item
  // fan-out).  Pack-fused pins stay single-task: pmodgemm is Morton-only,
  // and honoring the pin outweighs intra-product parallelism.
  const auto is_deep = [&](const PlanClass& cls) {
    return pool != nullptr &&
           cls.plan.strategy != layout::ExecStrategy::kPackFused &&
           cls.plan.feasible && !cls.plan.direct &&
           cls.padded_volume >= opt.min_task_flops;
  };

  try {
    parallel::TaskGroup group(pool);
    for (int i = 0; i < count; ++i) {
      if (is_deep(classes[static_cast<std::size_t>(
              cls_of[static_cast<std::size_t>(i)])]))
        continue;
      group.run([&run_indexed, i] { run_indexed(i); });
    }
    group.wait();
  } catch (const std::bad_alloc&) {
    // Task-setup allocation failed part way; the tasks themselves absorb
    // bad_alloc in the ladder.  ~TaskGroup joined everything in flight --
    // finish the rest inline.
    detail::record_fallback(rep, FallbackReason::kAllocDirect);
    parallel::purge_thread_arena_cache();
    for (int i = 0; i < count; ++i) {
      if (is_deep(classes[static_cast<std::size_t>(
              cls_of[static_cast<std::size_t>(i)])]))
        continue;
      if (!done[i].load(std::memory_order_acquire)) run_indexed(i);
    }
  }

  // Deep products: whole-pool deep spawning, one at a time (each saturates
  // the pool by itself; running them concurrently would oversubscribe).
  for (int i = 0; i < count; ++i) {
    const PlanClass& cls =
        classes[static_cast<std::size_t>(cls_of[static_cast<std::size_t>(i)])];
    if (!is_deep(cls)) continue;
    const BatchItem& it = items[i];
    parallel::ParallelOptions popt;
    popt.tiles = tiles;
    popt.min_task_flops = opt.min_task_flops;
    popt.schedule = opt.schedule;
    popt.algo = cls.plan.algo;  // class-resolved pin, like the serial path
    popt.report = locals.empty() ? nullptr
                                 : &locals[static_cast<std::size_t>(i)];
    parallel::pmodgemm(pool, it.opa, it.opb, it.m, it.n, it.k, it.alpha,
                       it.A, it.lda, it.B, it.ldb, it.beta, it.C, it.ldc,
                       popt);
    done[i].store(true, std::memory_order_release);
  }

  for (const obs::GemmReport& local : locals) merge_batch_report(rep, local);
}

void modgemm_strided_batched(parallel::ThreadPool* pool, Op opa, Op opb,
                             int m, int n, int k, double alpha,
                             const double* A, int lda, std::int64_t stride_a,
                             const double* B, int ldb, std::int64_t stride_b,
                             double beta, double* C, int ldc,
                             std::int64_t stride_c, int batch,
                             const BatchedOptions& opt,
                             obs::GemmReport* report) {
  STRASSEN_REQUIRE(batch >= 0, "negative batch count: " << batch);
  require_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  STRASSEN_REQUIRE(stride_a >= 0, "negative stride_a: " << stride_a);
  STRASSEN_REQUIRE(stride_b >= 0, "negative stride_b: " << stride_b);
  if (batch > 1 && m > 0 && n > 0)
    STRASSEN_REQUIRE(stride_c >= static_cast<std::int64_t>(ldc) * n,
                     "stride_c=" << stride_c << " smaller than one C"
                                 << " footprint (ldc*n=" << ldc << "*" << n
                                 << "); outputs would alias");
  // Materialized before any write to C (a bad_alloc here leaves every C
  // untouched), then delegated: one shape + one op pair means exactly one
  // plan class.
  std::vector<BatchItem> items(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    BatchItem& it = items[static_cast<std::size_t>(i)];
    it.opa = opa;
    it.opb = opb;
    it.m = m;
    it.n = n;
    it.k = k;
    it.alpha = alpha;
    it.A = A + static_cast<std::int64_t>(i) * stride_a;
    it.lda = lda;
    it.B = B + static_cast<std::int64_t>(i) * stride_b;
    it.ldb = ldb;
    it.beta = beta;
    it.C = C + static_cast<std::int64_t>(i) * stride_c;
    it.ldc = ldc;
  }
  modgemm_batched(pool, items.data(), batch, opt, report);
}

Status try_modgemm_batched(parallel::ThreadPool* pool, const BatchItem* items,
                           int count, const BatchedOptions& opt,
                           obs::GemmReport* report) noexcept {
  // Pre-validate so argument errors surface as precise Status codes with no
  // C touched; count/null-items errors map to kBadM (no dedicated code).
  if (count < 0 || (items == nullptr && count > 0) || opt.min_task_flops < 1)
    return Status::kBadM;
  for (int i = 0; i < count; ++i) {
    const BatchItem& it = items[i];
    const Status s = validate_gemm_args(it.opa, it.opb, it.m, it.n, it.k,
                                        it.lda, it.ldb, it.ldc);
    if (!ok(s)) return s;
    if (it.m > 0 && it.n > 0 && it.C == nullptr) return Status::kBadLdc;
  }
  try {
    modgemm_batched(pool, items, count, opt, report);
    return Status::kOk;
  } catch (const std::bad_alloc&) {
    return Status::kOutOfMemory;
  } catch (...) {
    return Status::kInternalError;
  }
}

Status try_modgemm_strided_batched(parallel::ThreadPool* pool, Op opa, Op opb,
                                   int m, int n, int k, double alpha,
                                   const double* A, int lda,
                                   std::int64_t stride_a, const double* B,
                                   int ldb, std::int64_t stride_b, double beta,
                                   double* C, int ldc, std::int64_t stride_c,
                                   int batch, const BatchedOptions& opt,
                                   obs::GemmReport* report) noexcept {
  if (batch < 0 || opt.min_task_flops < 1) return Status::kBadM;
  const Status s = validate_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  if (!ok(s)) return s;
  if (stride_a < 0) return Status::kBadLda;
  if (stride_b < 0) return Status::kBadLdb;
  if (batch > 1 && m > 0 && n > 0 &&
      stride_c < static_cast<std::int64_t>(ldc) * n)
    return Status::kBadLdc;
  try {
    modgemm_strided_batched(pool, opa, opb, m, n, k, alpha, A, lda, stride_a,
                            B, ldb, stride_b, beta, C, ldc, stride_c, batch,
                            opt, report);
    return Status::kOk;
  } catch (const std::bad_alloc&) {
    return Status::kOutOfMemory;
  } catch (...) {
    return Status::kInternalError;
  }
}

}  // namespace strassen::core
