// Integration tests for the MODGEMM public interface (src/core/modgemm).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"

namespace strassen::core {
namespace {

// Exact check on integer data (Strassen-Winograd is exact over integers in
// double precision, see tests/test_winograd.cpp).
void expect_exact(Op opa, Op opb, int m, int n, int k, double alpha,
                  double beta, const ModgemmOptions& opt = {},
                  int extra_ld = 0) {
  Rng rng(static_cast<std::uint64_t>(m) * 7919 + n * 131 + k);
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac, ar + extra_ld);
  Matrix<double> B(br, bc, br + extra_ld);
  Matrix<double> C(m, n, m + extra_ld);
  Matrix<double> Ref(m, n, m + extra_ld);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C.storage(), -3, 3);
  copy_matrix<double>(C.view(), Ref.view());

  blas::naive_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(),
                   B.ld(), beta, Ref.data(), Ref.ld());
  ModgemmReport report;
  modgemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(), beta,
          C.data(), C.ld(), opt, &report);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
      << m << "x" << n << "x" << k << " op " << op_char(opa) << op_char(opb)
      << " alpha=" << alpha << " beta=" << beta;
}

TEST(Modgemm, PaperShowcaseSize513) {
  expect_exact(Op::NoTrans, Op::NoTrans, 513, 513, 513, 1.0, 0.0);
}

TEST(Modgemm, PowerOfTwo) {
  expect_exact(Op::NoTrans, Op::NoTrans, 256, 256, 256, 1.0, 0.0);
}

TEST(Modgemm, PrimeSize) {
  expect_exact(Op::NoTrans, Op::NoTrans, 211, 211, 211, 1.0, 0.0);
}

TEST(Modgemm, SmallSizesRunDirect) {
  ModgemmReport report;
  Matrix<double> A(40, 40), B(40, 40), C(40, 40);
  Rng rng(1);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  modgemm(Op::NoTrans, Op::NoTrans, 40, 40, 40, 1.0, A.data(), 40, B.data(),
          40, 0.0, C.data(), 40, {}, &report);
  EXPECT_TRUE(report.plan.direct || report.products == 1);
  Matrix<double> Ref(40, 40);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, 40, 40, 40, 1.0, A.data(), 40,
                   B.data(), 40, 0.0, Ref.data(), 40);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

using OpParam = std::tuple<int, int>;
class ModgemmOps : public ::testing::TestWithParam<OpParam> {};

TEST_P(ModgemmOps, AllTransposeCombinations) {
  const auto [oa, ob] = GetParam();
  expect_exact(oa ? Op::Trans : Op::NoTrans, ob ? Op::Trans : Op::NoTrans, 150,
               130, 170, 1.0, 0.0);
}

TEST_P(ModgemmOps, TransposeWithAlphaBeta) {
  const auto [oa, ob] = GetParam();
  expect_exact(oa ? Op::Trans : Op::NoTrans, ob ? Op::Trans : Op::NoTrans, 129,
               142, 155, 2.0, -1.0);
}

INSTANTIATE_TEST_SUITE_P(Ops, ModgemmOps,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1)));

class ModgemmAlphaBeta
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ModgemmAlphaBeta, ScalingIsExact) {
  const auto [alpha, beta] = GetParam();
  expect_exact(Op::NoTrans, Op::NoTrans, 133, 127, 140, alpha, beta);
}

INSTANTIATE_TEST_SUITE_P(
    Scalars, ModgemmAlphaBeta,
    ::testing::Combine(::testing::Values(1.0, 0.0, 2.0, -0.5),
                       ::testing::Values(0.0, 1.0, -2.0)));

class ModgemmSizes : public ::testing::TestWithParam<int> {};

TEST_P(ModgemmSizes, SquareSweepExact) {
  const int n = GetParam();
  expect_exact(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, ModgemmSizes,
                         ::testing::Values(65, 100, 127, 128, 129, 150, 192,
                                           200, 255, 257, 300, 384, 500, 511,
                                           512, 513, 528));

class ModgemmRect : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(ModgemmRect, RectangularExact) {
  const auto [m, n, k] = GetParam();
  expect_exact(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModgemmRect,
    ::testing::Values(std::tuple{150, 300, 220}, std::tuple{300, 150, 100},
                      std::tuple{100, 100, 300}, std::tuple{257, 129, 385},
                      // paper's highly rectangular example
                      std::tuple{1024, 77, 256},
                      // shapes that force the split path
                      std::tuple{1200, 150, 80}, std::tuple{80, 150, 1200},
                      std::tuple{2100, 100, 100}, std::tuple{100, 2100, 100},
                      std::tuple{100, 100, 2100}));

TEST(ModgemmGrid, ExhaustiveSmallRectangularGrid) {
  // Every (m, k, n) combination over a grid straddling the direct threshold,
  // the tile range, odd/even parities, and the power-of-two boundary -- 343
  // exact product checks through the full driver.
  const int dims[] = {1, 7, 16, 33, 64, 65, 100};
  Rng rng(2024);
  for (int m : dims) {
    for (int k : dims) {
      for (int n : dims) {
        Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
        rng.fill_int(A.storage(), -2, 2);
        rng.fill_int(B.storage(), -2, 2);
        blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(),
                         A.ld(), B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
        modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld());
        ASSERT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
            << m << "x" << k << "x" << n;
      }
    }
  }
}

TEST(ModgemmSplit, SplitPathIsReportedAndCorrect) {
  // 2100 x 100 x 100 admits no common depth -> must split.
  const int m = 2100, k = 100, n = 100;
  Rng rng(3);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  ModgemmReport report;
  modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(), B.data(),
          B.ld(), 0.0, C.data(), C.ld(), {}, &report);
  EXPECT_TRUE(report.split_used);
  EXPECT_GT(report.products, 1);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(ModgemmSplit, SplitWithTransposedOperands) {
  // The split path's block-offset arithmetic must respect op(): stored
  // A is k x m when opa == Trans.
  expect_exact(Op::Trans, Op::NoTrans, 2100, 100, 100, 1.0, 0.0);
  expect_exact(Op::NoTrans, Op::Trans, 100, 2100, 100, 1.0, 0.0);
  expect_exact(Op::Trans, Op::Trans, 100, 100, 2100, 1.0, 0.0);
}

TEST(ModgemmSplit, SplitWithAlphaBetaAccumulatesOnce) {
  // The k-chunk loop must apply beta exactly once per C block.
  const int m = 100, k = 2100, n = 100;
  expect_exact(Op::NoTrans, Op::NoTrans, m, n, k, 3.0, -2.0);
}

TEST(ModgemmEdge, StridedMatricesWork) {
  expect_exact(Op::NoTrans, Op::NoTrans, 150, 140, 160, 1.0, 1.0, {}, 11);
}

TEST(ModgemmEdge, DegenerateDimensionsFollowBlas) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  for (auto& x : C.storage()) x = 5.0;
  // k = 0: C *= beta.
  modgemm(Op::NoTrans, Op::NoTrans, 8, 8, 0, 1.0, A.data(), 8, B.data(), 8,
          0.5, C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.5);
  // alpha = 0: likewise.
  modgemm(Op::NoTrans, Op::NoTrans, 8, 8, 8, 0.0, A.data(), 8, B.data(), 8,
          2.0, C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 5.0);
  // m = 0 / n = 0: nothing at all.
  modgemm(Op::NoTrans, Op::NoTrans, 0, 8, 8, 1.0, A.data(), 8, B.data(), 8,
          0.0, C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 5.0);
}

TEST(ModgemmEdge, RejectsBadLeadingDimensions) {
  Matrix<double> A(100, 100), B(100, 100), C(100, 100);
  EXPECT_THROW(modgemm(Op::NoTrans, Op::NoTrans, 100, 100, 100, 1.0, A.data(),
                       50, B.data(), 100, 0.0, C.data(), 100),
               std::invalid_argument);
  EXPECT_THROW(modgemm(Op::Trans, Op::NoTrans, 100, 100, 120, 1.0, A.data(),
                       100, B.data(), 120, 0.0, C.data(), 100),
               std::invalid_argument);
}

TEST(ModgemmEdge, AlphaZeroDoesNotReadNaNOperands) {
  // Reference BLAS does not touch A or B when alpha == 0: a NaN there must
  // never reach C, which is only scaled by beta.  Checked on a direct-path
  // size and on a Strassen-planned size.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (int n : {40, 150}) {
    Matrix<double> A(n, n), B(n, n), C(n, n);
    for (auto& x : A.storage()) x = qnan;
    for (auto& x : B.storage()) x = qnan;
    for (auto& x : C.storage()) x = 3.0;
    modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 0.0, A.data(), n, B.data(), n,
            -0.5, C.data(), n);
    for (const auto& x : C.storage()) EXPECT_EQ(x, -1.5) << "n=" << n;
  }
}

TEST(ModgemmEdge, KZeroDoesNotReadNaNOperands) {
  // k == 0 is the same contract: C <- beta*C with A and B unread.
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const int m = 150, n = 130;
  Matrix<double> A(m, 1), B(1, n), C(m, n);
  for (auto& x : A.storage()) x = qnan;
  for (auto& x : B.storage()) x = qnan;
  for (auto& x : C.storage()) x = 4.0;
  modgemm(Op::NoTrans, Op::NoTrans, m, n, 0, 7.0, A.data(), m, B.data(), 1,
          0.25, C.data(), m);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 1.0);
}

TEST(ModgemmEdge, EmptyMOrNLeavesCStorageUntouched) {
  Matrix<double> A(8, 8), B(8, 8), C(5, 8);
  for (auto& x : C.storage()) x = 9.0;
  modgemm(Op::NoTrans, Op::NoTrans, 0, 8, 8, 1.0, A.data(), 8, B.data(), 8,
          0.0, C.data(), 5);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 9.0);
  modgemm(Op::NoTrans, Op::NoTrans, 5, 0, 8, 1.0, A.data(), 8, B.data(), 8,
          0.0, C.data(), 5);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 9.0);
}

TEST(ModgemmEdge, OversizedLeadingDimensionsStayExact) {
  // Leading dimensions far beyond the row counts (sparse column spacing).
  expect_exact(Op::NoTrans, Op::Trans, 150, 130, 170, 2.0, -1.0, {}, 257);
  expect_exact(Op::Trans, Op::NoTrans, 65, 65, 65, 1.0, 1.0, {}, 512);
}

TEST(ModgemmEdge, RejectionMessagesCarryOffendingValues) {
  Matrix<double> A(100, 100), B(100, 100), C(100, 100);
  try {
    modgemm(Op::NoTrans, Op::NoTrans, 100, 100, 100, 1.0, A.data(), 50,
            B.data(), 100, 0.0, C.data(), 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("lda"), std::string::npos) << msg;
    EXPECT_NE(msg.find("50"), std::string::npos) << msg;
    EXPECT_NE(msg.find("100"), std::string::npos) << msg;
  }
  try {
    modgemm(Op::NoTrans, Op::NoTrans, -3, 10, 10, 1.0, A.data(), 100, B.data(),
            100, 0.0, C.data(), 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("m=-3"), std::string::npos)
        << e.what();
  }
}

TEST(ModgemmEdge, BetaZeroDoesNotReadC) {
  const int n = 150;
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(4);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
  modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(), n,
          0.0, C.data(), n);
  for (const auto& x : C.storage()) EXPECT_FALSE(std::isnan(x));
}

TEST(ModgemmReportTest, TimingBreakdownIsPopulated) {
  const int n = 300;
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(5);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  ModgemmReport report;
  // Asserts Morton-only conversion timers; the per-call pins keep the test
  // meaningful under forced STRASSEN_STRATEGY / STRASSEN_ALGO environments.
  ModgemmOptions opt;
  opt.strategy = layout::ExecStrategy::kMorton;
  opt.algo = analysis::AlgoFamily::k222;
  modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(), n,
          0.0, C.data(), n, opt, &report);
  EXPECT_EQ(report.products, 1);
  EXPECT_FALSE(report.split_used);
  EXPECT_GT(report.compute_seconds, 0.0);
  EXPECT_GT(report.convert_in_seconds, 0.0);
  EXPECT_GE(report.convert_out_seconds, 0.0);
  EXPECT_GT(report.total_seconds(), 0.0);
  EXPECT_GT(report.conversion_fraction(), 0.0);
  EXPECT_LT(report.conversion_fraction(), 1.0);
  EXPECT_TRUE(report.plan.feasible);
  EXPECT_GE(report.plan.depth, 1);
}

TEST(ModgemmFixedTile, AblationModeMatchesNaive) {
  ModgemmOptions opt;
  opt.fixed_tile = 32;
  expect_exact(Op::NoTrans, Op::NoTrans, 200, 200, 200, 1.0, 0.0, opt);
  expect_exact(Op::NoTrans, Op::NoTrans, 513, 513, 513, 1.0, 0.0, opt);
}

TEST(ModgemmFixedTile, ReportsStaticPaddingPlan) {
  ModgemmOptions opt;
  opt.fixed_tile = 32;
  const int n = 513;
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(6);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  ModgemmReport report;
  modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(), n,
          0.0, C.data(), n, opt, &report);
  EXPECT_EQ(report.plan.m.padded, 1024);  // the paper's pathology
}

TEST(ModgemmFloat, SinglePrecisionInterface) {
  const int n = 150;
  Matrix<float> A(n, n), B(n, n), C(n, n), Ref(n, n);
  Rng rng(7);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                   B.data(), n, 0.0f, Ref.data(), n);
  modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n, B.data(), n,
          0.0f, C.data(), n);
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0);
}

TEST(ModgemmOptionsTest, CustomTileRangeStillExact) {
  ModgemmOptions opt;
  opt.tiles.min_tile = 8;
  opt.tiles.max_tile = 32;
  opt.tiles.preferred_tile = 16;
  opt.tiles.direct_threshold = 32;
  expect_exact(Op::NoTrans, Op::NoTrans, 217, 190, 233, 1.0, 0.0, opt);
}

}  // namespace
}  // namespace strassen::core
