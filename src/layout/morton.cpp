#include "layout/morton.hpp"

#include "common/check.hpp"

namespace strassen::layout {

std::uint32_t morton_spread(std::uint32_t x) {
  // Classic bit-twiddling spread of 16 bits into 32.
  x &= 0x0000FFFFu;
  x = (x | (x << 8)) & 0x00FF00FFu;
  x = (x | (x << 4)) & 0x0F0F0F0Fu;
  x = (x | (x << 2)) & 0x33333333u;
  x = (x | (x << 1)) & 0x55555555u;
  return x;
}

std::uint32_t morton_compact(std::uint32_t x) {
  x &= 0x55555555u;
  x = (x | (x >> 1)) & 0x33333333u;
  x = (x | (x >> 2)) & 0x0F0F0F0Fu;
  x = (x | (x >> 4)) & 0x00FF00FFu;
  x = (x | (x >> 8)) & 0x0000FFFFu;
  return x;
}

std::uint32_t morton_interleave(std::uint32_t tile_row,
                                std::uint32_t tile_col) {
  // Row bits land in the higher bit of each pair: NW, NE, SW, SE order.
  return (morton_spread(tile_row) << 1) | morton_spread(tile_col);
}

void morton_deinterleave(std::uint32_t index, std::uint32_t& tile_row,
                         std::uint32_t& tile_col) {
  tile_row = morton_compact(index >> 1);
  tile_col = morton_compact(index);
}

std::int64_t morton_offset(const MortonLayout& layout, int i, int j) {
  STRASSEN_ASSERT(i >= 0 && i < layout.padded_rows());
  STRASSEN_ASSERT(j >= 0 && j < layout.padded_cols());
  const std::uint32_t tr = static_cast<std::uint32_t>(i / layout.tile_rows);
  const std::uint32_t tc = static_cast<std::uint32_t>(j / layout.tile_cols);
  const int ii = i % layout.tile_rows;
  const int jj = j % layout.tile_cols;
  const std::int64_t tile = morton_interleave(tr, tc);
  return tile * layout.tile_elems() +
         static_cast<std::int64_t>(jj) * layout.tile_rows + ii;
}

}  // namespace strassen::layout
