// bailey.hpp -- Bailey-style statically unfolded Strassen (two levels).
//
// Bailey's CRAY-2 implementation (paper S5.1) unfolded the Strassen
// recursion exactly TWO levels by code duplication and ran library gemm on
// the 49 resulting sub-products; matrices were statically padded to make the
// two halvings exact.  The scheme predates cache-based memory systems and
// has no truncation-point adaptivity: leaf size is always n/4, however large
// n gets -- precisely the behaviour the ablation bench contrasts with
// MODGEMM's dynamic truncation.
//
// We render "code duplication" as a recursion with a FIXED two-level depth
// counter (the executed schedule is identical to the hand-expanded code);
// operands are padded to multiples of four into temporaries up front.
#pragma once

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/level1.hpp"
#include "blas/view_ops.hpp"
#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"

namespace strassen::baselines {

// Peak temporary bytes for the fixed two-level recursion on padded dims.
std::size_t bailey_workspace_bytes(int mp, int np, int kp,
                                   std::size_t elem_size);

namespace detail {

// C = A.B over column-major views; recursion depth fixed by `levels`
// (dimensions must divide 2^levels).  Same Winograd schedule as DGEFMM's
// even core, without any peeling.
template <class MM, class T>
void winograd_fixed(MM& mm, int levels, int m, int n, int k, const T* A,
                    int lda, const T* B, int ldb, T* C, int ldc,
                    Arena& arena) {
  if (levels == 0) {
    blas::gemm_blocked_nn(mm, m, n, k, T{1}, A, lda, B, ldb, T{0}, C, ldc);
    return;
  }
  STRASSEN_ASSERT(m % 2 == 0 && n % 2 == 0 && k % 2 == 0);
  const int m2 = m / 2, k2 = k / 2, n2 = n / 2;
  const T* A11 = A;
  const T* A12 = A + static_cast<std::size_t>(k2) * lda;
  const T* A21 = A + m2;
  const T* A22 = A12 + m2;
  const T* B11 = B;
  const T* B12 = B + static_cast<std::size_t>(n2) * ldb;
  const T* B21 = B + k2;
  const T* B22 = B12 + k2;
  T* C11 = C;
  T* C12 = C + static_cast<std::size_t>(n2) * ldc;
  T* C21 = C + m2;
  T* C22 = C12 + m2;

  Arena::Frame frame(arena);
  T* tS = arena.push<T>(static_cast<std::size_t>(m2) * k2);
  T* tT = arena.push<T>(static_cast<std::size_t>(k2) * n2);
  T* tP = arena.push<T>(static_cast<std::size_t>(m2) * n2);

  auto mul = [&](T* dst, int ldd, const T* a, int la, const T* b, int lb) {
    winograd_fixed(mm, levels - 1, m2, n2, k2, a, la, b, lb, dst, ldd, arena);
  };

  blas::view_sub(mm, m2, k2, tS, m2, A11, lda, A21, lda);
  blas::view_sub(mm, k2, n2, tT, k2, B22, ldb, B12, ldb);
  mul(C21, ldc, tS, m2, tT, k2);
  blas::view_add(mm, m2, k2, tS, m2, A21, lda, A22, lda);
  blas::view_sub(mm, k2, n2, tT, k2, B12, ldb, B11, ldb);
  mul(C22, ldc, tS, m2, tT, k2);
  blas::view_sub_inplace(mm, m2, k2, tS, m2, A11, lda);
  blas::view_sub(mm, k2, n2, tT, k2, B22, ldb, tT, k2);
  mul(C12, ldc, tS, m2, tT, k2);
  blas::view_sub(mm, m2, k2, tS, m2, A12, lda, tS, m2);
  blas::view_sub_inplace(mm, k2, n2, tT, k2, B21, ldb);
  mul(tP, m2, A11, lda, B11, ldb);
  blas::view_add_inplace(mm, m2, n2, C12, ldc, tP, m2);
  blas::view_add_inplace(mm, m2, n2, C21, ldc, C12, ldc);
  blas::view_add_inplace(mm, m2, n2, C12, ldc, C22, ldc);
  blas::view_add_inplace(mm, m2, n2, C22, ldc, C21, ldc);
  mul(C11, ldc, A22, lda, tT, k2);
  blas::view_sub_inplace(mm, m2, n2, C21, ldc, C11, ldc);
  mul(C11, ldc, tS, m2, B22, ldb);
  blas::view_add_inplace(mm, m2, n2, C12, ldc, C11, ldc);
  mul(C11, ldc, A12, lda, B21, ldb);
  blas::view_add_inplace(mm, m2, n2, C11, ldc, tP, m2);
}

}  // namespace detail

// Full dgemm semantics via static padding to multiples of four and a fixed
// two-level Winograd unfolding.
template <class MM, class T>
void bailey_gemm_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
                    const T* A, int lda, const T* B, int ldb, T beta, T* C,
                    int ldc) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  // Tiny problems gain nothing from the unfolding.
  if (std::min(m, std::min(n, k)) < 16) {
    blas::gemm_blocked(mm, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                       ldc);
    return;
  }
  auto pad4 = [](int v) { return (v + 3) & ~3; };
  const int mp = pad4(m), np = pad4(n), kp = pad4(k);

  // Statically padded copies of op(A), op(B) (zeros in the pad).
  AlignedBuffer abuf(static_cast<std::size_t>(mp) * kp * sizeof(T));
  AlignedBuffer bbuf(static_cast<std::size_t>(kp) * np * sizeof(T));
  AlignedBuffer dbuf(static_cast<std::size_t>(mp) * np * sizeof(T));
  T* Ap = abuf.as<T>();
  T* Bp = bbuf.as<T>();
  T* Dp = dbuf.as<T>();
  blas::vzero(mm, static_cast<std::size_t>(mp) * kp, Ap);
  blas::vzero(mm, static_cast<std::size_t>(kp) * np, Bp);
  for (int j = 0; j < k; ++j) {
    T* col = Ap + static_cast<std::size_t>(j) * mp;
    for (int i = 0; i < m; ++i)
      mm.store(col + i,
               opa == Op::NoTrans
                   ? mm.load(A + static_cast<std::size_t>(j) * lda + i)
                   : mm.load(A + static_cast<std::size_t>(i) * lda + j));
  }
  for (int j = 0; j < n; ++j) {
    T* col = Bp + static_cast<std::size_t>(j) * kp;
    for (int i = 0; i < k; ++i)
      mm.store(col + i,
               opb == Op::NoTrans
                   ? mm.load(B + static_cast<std::size_t>(j) * ldb + i)
                   : mm.load(B + static_cast<std::size_t>(i) * ldb + j));
  }

  Arena arena(bailey_workspace_bytes(mp, np, kp, sizeof(T)));
  detail::winograd_fixed(mm, /*levels=*/2, mp, np, kp, Ap, mp, Bp, kp, Dp, mp,
                         arena);
  blas::axpby_view(mm, m, n, C, ldc, alpha, Dp, mp, beta);
}

// Production entry point.
void bailey_gemm(Op opa, Op opb, int m, int n, int k, double alpha,
                 const double* A, int lda, const double* B, int ldb,
                 double beta, double* C, int ldc);

}  // namespace strassen::baselines
