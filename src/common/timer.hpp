// timer.hpp -- wall-clock timing and the paper's measurement protocol.
//
// The SC'98 evaluation timed each implementation with getrusage, averaging 10
// invocations for matrices below 500 (to overcome clock resolution), running
// the whole experiment 3 times and reporting the minimum.  measure() encodes
// exactly that protocol on top of steady_clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace strassen {

// Simple wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { restart(); }
  void restart() { start_ = Clock::now(); }
  // Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Parameters of the paper's measurement protocol.
struct MeasureOptions {
  int outer_reps = 3;    // experiment repetitions; the minimum is reported
  int inner_reps = 1;    // invocations averaged inside one repetition
  int warmup = 1;        // untimed warm-up invocations before measuring
};

// Returns inner_reps tuned per the paper: 10 invocations below the size
// threshold (default 500), 1 above.
MeasureOptions paper_protocol(int n, int threshold = 500);

// Runs `fn` under the protocol and returns the best (minimum over outer
// repetitions) average seconds per invocation.
double measure(const std::function<void()>& fn, const MeasureOptions& opt);

}  // namespace strassen
