// transpose.hpp -- blocked out-of-place transpose.
//
// Used when a baseline needs op(X) = X^T materialized (MODGEMM instead folds
// the transpose into its column-major -> Morton conversion, see
// layout/convert.hpp) and by the conversion tests.
#pragma once

#include <cstddef>

#include "common/memmodel.hpp"

namespace strassen::blas {

// dst(j,i) = src(i,j); src is m x n with leading dimension lds, dst is n x m
// with leading dimension ldd.  Blocked to keep both access streams in cache.
template <class MM, class T>
void transpose(MM& mm, int m, int n, const T* src, int lds, T* dst, int ldd) {
  constexpr int kBlock = 32;
  for (int j0 = 0; j0 < n; j0 += kBlock) {
    const int jn = j0 + kBlock < n ? j0 + kBlock : n;
    for (int i0 = 0; i0 < m; i0 += kBlock) {
      const int in = i0 + kBlock < m ? i0 + kBlock : m;
      for (int j = j0; j < jn; ++j)
        for (int i = i0; i < in; ++i)
          mm.store(dst + static_cast<std::size_t>(i) * ldd + j,
                   mm.load(src + static_cast<std::size_t>(j) * lds + i));
    }
  }
}

void transpose(int m, int n, const double* src, int lds, double* dst, int ldd);

}  // namespace strassen::blas
