// dgemmw.hpp -- DGEMMW baseline: Strassen-Winograd with DYNAMIC OVERLAP.
//
// Reimplementation of the approach of Douglas, Heroux, Slishman and Smith
// (GEMMW, J. Comp. Physics 1994), the paper's second comparison point.
// Matrices stay column-major; an odd dimension at any recursion level is
// handled by treating the block as the next even size whose extra row or
// column is a PHANTOM ZERO that is never stored:
//
//   * splitting an odd dimension 2h-1 produces quadrant halves of size h,
//     where the second half has only h-1 real rows/columns;
//   * reads beyond a block's real extent yield zero (for the inner dimension
//     this is exactly the published zero-extension trick; for the outer
//     dimensions it is overlap with the redundant recomputation elided);
//   * writes to the phantom row/column of C are simply not performed.
//
// No fix-up computations and no peeling -- but every quadrant operation
// carries extent bookkeeping, the "complicated control structure" the SC'98
// paper attributes to this scheme.  Temporaries are materialized at full
// (even) quadrant size so the recursion below only tracks extents on the raw
// A/B/C quadrants.
//
// The schedule needs one more C-shaped temporary than the peeling code
// because C's clipped quadrants cannot serve as scratch for intermediates
// whose phantom parts are still live (see tU/tQ below) -- GEMMW likewise
// required a user-provided work array larger than DGEFMM's.
#pragma once

#include <algorithm>

#include "blas/gemm.hpp"
#include "blas/view_ops.hpp"
#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"

namespace strassen::baselines {

struct DgemmwOptions {
  int cutoff = 64;  // recursion truncation point
};

// Peak temporary bytes for the overlap recursion.
std::size_t dgemmw_workspace_bytes(int m, int n, int k, int cutoff,
                                   std::size_t elem_size);

namespace detail {

// Read-only block with real extent rr x rc (logical extent is implied by the
// operation reading it; reads outside the real extent are zero).
template <class T>
struct ExtIn {
  const T* p;
  int ld;
  int rr, rc;
};

// Writable block; only the real rr x rc region is stored.
template <class T>
struct ExtOut {
  T* p;
  int ld;
  int rr, rc;
};

// C.real = (A . B) restricted to C's real region, with phantom-zero reads
// outside A/B's real extents.  The logical problem is C.rr x C.rc with inner
// dimension max(A.rc, B.rr).
template <class MM, class T>
void dgemmw_recurse(MM& mm, ExtIn<T> A, ExtIn<T> B, ExtOut<T> C, int cutoff,
                    Arena& arena) {
  const int lm = C.rr;
  const int ln = C.rc;
  const int lk = std::max(A.rc, B.rr);
  if (std::min(lm, std::min(ln, lk)) <= cutoff) {
    // Contributions beyond the shared real inner extent are zero.
    const int kk = std::min(A.rc, B.rr);
    if (kk == 0) {
      blas::scale_view(mm, C.rr, C.rc, C.p, C.ld, T{0});
      return;
    }
    blas::gemm_blocked_nn(mm, C.rr, C.rc, kk, T{1}, A.p, A.ld, B.p, B.ld, T{0},
                          C.p, C.ld);
    return;
  }
  const int M2 = (lm + 1) / 2;
  const int K2 = (lk + 1) / 2;
  const int N2 = (ln + 1) / 2;

  auto clamp0 = [](int v) { return v > 0 ? v : 0; };
  // Quadrants of an ExtIn.  Second halves may lose one real row/column.
  // Real extents are clamped by the LOGICAL quadrant extent (lr x lc of the
  // parent's logical problem): an operand handed to us may carry more real
  // rows/columns than the logical problem uses (the redundant fringe of an
  // enclosing overlap split), and those elements are logically phantom ZEROS
  // here -- without the clamp they would read live data.
  auto quad_in = [&](const ExtIn<T>& X, int i, int j, int rh, int ch, int lr,
                     int lc) -> ExtIn<T> {
    const int rr = i == 0 ? std::min(X.rr, rh)
                          : std::min(clamp0(X.rr - rh), clamp0(lr - rh));
    const int rc = j == 0 ? std::min(X.rc, ch)
                          : std::min(clamp0(X.rc - ch), clamp0(lc - ch));
    return ExtIn<T>{X.p + static_cast<std::size_t>(j) * ch * X.ld +
                        static_cast<std::size_t>(i) * rh,
                    X.ld, rr, rc};
  };
  const ExtIn<T> A11 = quad_in(A, 0, 0, M2, K2, lm, lk);
  const ExtIn<T> A12 = quad_in(A, 0, 1, M2, K2, lm, lk);
  const ExtIn<T> A21 = quad_in(A, 1, 0, M2, K2, lm, lk);
  const ExtIn<T> A22 = quad_in(A, 1, 1, M2, K2, lm, lk);
  const ExtIn<T> B11 = quad_in(B, 0, 0, K2, N2, lk, ln);
  const ExtIn<T> B12 = quad_in(B, 0, 1, K2, N2, lk, ln);
  const ExtIn<T> B21 = quad_in(B, 1, 0, K2, N2, lk, ln);
  const ExtIn<T> B22 = quad_in(B, 1, 1, K2, N2, lk, ln);
  auto quad_out = [&](const ExtOut<T>& X, int i, int j, int rh,
                      int ch) -> ExtOut<T> {
    return ExtOut<T>{X.p + static_cast<std::size_t>(j) * ch * X.ld +
                         static_cast<std::size_t>(i) * rh,
                     X.ld, i == 0 ? std::min(X.rr, rh) : clamp0(X.rr - rh),
                     j == 0 ? std::min(X.rc, ch) : clamp0(X.rc - ch)};
  };
  const ExtOut<T> C11 = quad_out(C, 0, 0, M2, N2);
  const ExtOut<T> C12 = quad_out(C, 0, 1, M2, N2);
  const ExtOut<T> C21 = quad_out(C, 1, 0, M2, N2);
  const ExtOut<T> C22 = quad_out(C, 1, 1, M2, N2);

  Arena::Frame frame(arena);
  T* tS = arena.push<T>(static_cast<std::size_t>(M2) * K2);  // ld = M2
  T* tT = arena.push<T>(static_cast<std::size_t>(K2) * N2);  // ld = K2
  T* tP = arena.push<T>(static_cast<std::size_t>(M2) * N2);  // ld = M2
  T* tU = arena.push<T>(static_cast<std::size_t>(M2) * N2);
  T* tQ = arena.push<T>(static_cast<std::size_t>(M2) * N2);

  auto in_full = [&](const T* p, int ld, int r, int c) {
    return ExtIn<T>{p, ld, r, c};
  };
  auto mul = [&](ExtOut<T> dst, ExtIn<T> a, ExtIn<T> b) {
    dgemmw_recurse(mm, a, b, dst, cutoff, arena);
  };

  // M7 = (A11-A21)(B22-B12) -> C21 (clipped; M7 is only ever needed on
  // C21's real region, see the U3 analysis in the file comment)
  blas::ext_sub(mm, M2, K2, tS, M2, A11.p, A11.ld, A11.rr, A11.rc, A21.p,
                A21.ld, A21.rr, A21.rc);
  blas::ext_sub(mm, K2, N2, tT, K2, B22.p, B22.ld, B22.rr, B22.rc, B12.p,
                B12.ld, B12.rr, B12.rc);
  mul(C21, in_full(tS, M2, M2, K2), in_full(tT, K2, K2, N2));
  // M5 = S1.T1 = (A21+A22)(B12-B11) -> tU (full temp: its phantom parts
  // feed U4 and U7 later)
  blas::ext_add(mm, M2, K2, tS, M2, A21.p, A21.ld, A21.rr, A21.rc, A22.p,
                A22.ld, A22.rr, A22.rc);
  blas::ext_sub(mm, K2, N2, tT, K2, B12.p, B12.ld, B12.rr, B12.rc, B11.p,
                B11.ld, B11.rr, B11.rc);
  mul(ExtOut<T>{tU, M2, M2, N2}, in_full(tS, M2, M2, K2),
      in_full(tT, K2, K2, N2));
  // M6 = S2.T2 = (S1-A11)(B22-T1) -> tP (full temp: feeds U2)
  blas::ext_sub_inplace(mm, M2, K2, tS, M2, A11.p, A11.ld, A11.rr, A11.rc);
  blas::ext_sub(mm, K2, N2, tT, K2, B22.p, B22.ld, B22.rr, B22.rc, tT, K2, K2,
                N2);
  mul(ExtOut<T>{tP, M2, M2, N2}, in_full(tS, M2, M2, K2),
      in_full(tT, K2, K2, N2));
  // S4 = A12 - S2;  -T4 = T2 - B21
  blas::ext_sub(mm, M2, K2, tS, M2, A12.p, A12.ld, A12.rr, A12.rc, tS, M2, M2,
                K2);
  blas::ext_sub_inplace(mm, K2, N2, tT, K2, B21.p, B21.ld, B21.rr, B21.rc);
  // M1 = A11.B11 -> C11 (always a full, unclipped quadrant)
  mul(C11, A11, B11);
  // U2 = M1 + M6 -> tP (full)
  blas::ext_add_inplace(mm, M2, N2, tP, M2, C11.p, C11.ld, C11.rr, C11.rc);
  // M3 = S4.B22 -> C12 (clipped; only needed for final C12)
  mul(C12, in_full(tS, M2, M2, K2), B22);
  // final C12 = M3 + U2 + M5
  blas::ext_add_inplace(mm, C12.rr, C12.rc, C12.p, C12.ld, tP, M2, M2, N2);
  blas::ext_add_inplace(mm, C12.rr, C12.rc, C12.p, C12.ld, tU, M2, M2, N2);
  // U3 = U2 + M7, live only on C21's real region of tP
  blas::ext_add_inplace(mm, C21.rr, C21.rc, tP, M2, C21.p, C21.ld, C21.rr,
                        C21.rc);
  // M4 = A22.(T2-B21) -> tQ (real rows limited by A22)
  mul(ExtOut<T>{tQ, M2, A22.rr, N2}, A22, in_full(tT, K2, K2, N2));
  // final C21 = U3 - M4
  blas::ext_sub(mm, C21.rr, C21.rc, C21.p, C21.ld, tP, M2, M2, N2, tQ, M2,
                A22.rr, N2);
  // final C22 = U3 + M5
  blas::ext_add(mm, C22.rr, C22.rc, C22.p, C22.ld, tP, M2, M2, N2, tU, M2, M2,
                N2);
  // M2 = A12.B21 -> tQ;  final C11 = M1 + M2
  mul(ExtOut<T>{tQ, M2, M2, N2}, A12, B21);
  blas::ext_add_inplace(mm, C11.rr, C11.rc, C11.p, C11.ld, tQ, M2, M2, N2);
}

}  // namespace detail

// Full dgemm semantics, as dgefmm_mm.
template <class MM, class T>
void dgemmw_mm(MM& mm, Op opa, Op opb, int m, int n, int k, T alpha,
               const T* A, int lda, const T* B, int ldb, T beta, T* C, int ldc,
               const DgemmwOptions& opt = {}) {
  STRASSEN_REQUIRE(m >= 0 && n >= 0 && k >= 0, "negative dimension");
  STRASSEN_REQUIRE(opt.cutoff >= 8, "cutoff unreasonably small");
  if (m == 0 || n == 0) return;
  if (alpha == T{0} || k == 0) {
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  AlignedBuffer at_buf, bt_buf;
  const T* Ae = A;
  int ldae = lda;
  if (opa == Op::Trans) {
    at_buf = AlignedBuffer(static_cast<std::size_t>(m) * k * sizeof(T));
    blas::transpose(mm, k, m, A, lda, at_buf.as<T>(), m);
    Ae = at_buf.as<T>();
    ldae = m;
  }
  const T* Be = B;
  int ldbe = ldb;
  if (opb == Op::Trans) {
    bt_buf = AlignedBuffer(static_cast<std::size_t>(k) * n * sizeof(T));
    blas::transpose(mm, n, k, B, ldb, bt_buf.as<T>(), k);
    Be = bt_buf.as<T>();
    ldbe = k;
  }

  Arena arena(dgemmw_workspace_bytes(m, n, k, opt.cutoff, sizeof(T)));
  const detail::ExtIn<T> Ax{Ae, ldae, m, k};
  const detail::ExtIn<T> Bx{Be, ldbe, k, n};
  if (alpha == T{1} && beta == T{0}) {
    detail::dgemmw_recurse(mm, Ax, Bx, detail::ExtOut<T>{C, ldc, m, n},
                           opt.cutoff, arena);
    return;
  }
  AlignedBuffer d_buf(static_cast<std::size_t>(m) * n * sizeof(T));
  T* D = d_buf.as<T>();
  detail::dgemmw_recurse(mm, Ax, Bx, detail::ExtOut<T>{D, m, m, n}, opt.cutoff,
                         arena);
  blas::axpby_view(mm, m, n, C, ldc, alpha, D, m, beta);
}

// Production entry points.
void dgemmw(Op opa, Op opb, int m, int n, int k, double alpha, const double* A,
            int lda, const double* B, int ldb, double beta, double* C, int ldc,
            const DgemmwOptions& opt = {});
void dgemmw(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
            int lda, const float* B, int ldb, float beta, float* C, int ldc,
            const DgemmwOptions& opt = {});

}  // namespace strassen::baselines
