// Tests for plan memoization and the persistent autotune cache
// (src/tune/plan_cache).
//
// PlanCache: lock-free-read correctness (concurrent readers during inserts),
// key discrimination, stats accounting, full-table rejection.  Tune cache:
// file round trip, loud rejection of corrupt/truncated/foreign files,
// autotune_cached's cold -> warm -> memo source transitions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "tune/plan_cache.hpp"

namespace strassen::tune {
namespace {

PlanKey key_for(int m, int k, int n) {
  PlanKey key;
  key.m = m;
  key.k = k;
  key.n = n;
  key.elem_size = sizeof(double);
  const layout::TileOptions tiles;
  key.min_tile = tiles.min_tile;
  key.max_tile = tiles.max_tile;
  key.preferred_tile = tiles.preferred_tile;
  key.direct_threshold = tiles.direct_threshold;
  key.packfused_max_depth = tiles.packfused_max_depth;
  return key;
}

CachedPlan plan_for(int m, int k, int n) {
  CachedPlan value;
  value.plan = layout::plan_gemm(m, k, n, layout::TileOptions{});
  value.planned_depth = value.plan.depth;
  return value;
}

TEST(PlanCache, InsertThenLookupRoundTrips) {
  PlanCache cache;
  const PlanKey key = key_for(256, 256, 256);
  EXPECT_EQ(cache.lookup(key), nullptr);
  const CachedPlan value = plan_for(256, 256, 256);
  const CachedPlan* stored = cache.insert(key, value);
  ASSERT_NE(stored, nullptr);
  const CachedPlan* found = cache.lookup(key);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, stored);
  EXPECT_EQ(found->plan.depth, value.plan.depth);
  EXPECT_EQ(found->plan.m.tile, value.plan.m.tile);
  EXPECT_EQ(found->planned_depth, value.planned_depth);

  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(PlanCache, DiscriminatesEveryKeyField) {
  PlanCache cache;
  const PlanKey base = key_for(256, 256, 256);
  cache.insert(base, plan_for(256, 256, 256));
  ASSERT_NE(cache.lookup(base), nullptr);

  // Mutating any single field must miss: the cached plan is exact for its
  // planning inputs, never a heuristic for nearby ones.
  std::vector<PlanKey> variants(12, base);
  variants[0].m = 257;
  variants[1].k = 257;
  variants[2].n = 257;
  variants[3].opa = 1;
  variants[4].opb = 1;
  variants[5].schedule = 1;
  variants[6].strategy = 1;
  variants[7].max_workspace_bytes = 1 << 20;
  variants[8].min_tile = 8;
  variants[9].preferred_tile = 64;
  variants[10].direct_threshold = 128;
  variants[11].packfused_max_depth = 0;
  for (std::size_t i = 0; i < variants.size(); ++i)
    EXPECT_EQ(cache.lookup(variants[i]), nullptr) << "variant " << i;
}

TEST(PlanCache, FirstInsertWinsForEqualKeys) {
  PlanCache cache;
  const PlanKey key = key_for(128, 128, 128);
  const CachedPlan* first = cache.insert(key, plan_for(128, 128, 128));
  const CachedPlan* second = cache.insert(key, plan_for(128, 128, 128));
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCache, ConcurrentReadersDuringInsertsSeeConsistentEntries) {
  PlanCache cache;
  constexpr int kKeys = 64;
  std::atomic<bool> stop{false};
  std::atomic<int> published{0};

  // Readers hammer lookups of all keys while the writer publishes them one
  // by one.  A reader must only ever see null or a fully constructed entry
  // whose plan matches its key.
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (int i = 0; i < kKeys; ++i) {
          const int n = 64 + 8 * i;
          const CachedPlan* e = cache.lookup(key_for(n, n, n));
          if (e != nullptr) {
            // The entry is immutable once visible: its content must agree
            // with an independent planning pass for the same key.
            const layout::GemmPlan fresh =
                layout::plan_gemm(n, n, n, layout::TileOptions{});
            EXPECT_EQ(e->plan.depth, fresh.depth);
            EXPECT_EQ(e->plan.m.padded, fresh.m.padded);
          }
        }
      }
    });
  }
  for (int i = 0; i < kKeys; ++i) {
    const int n = 64 + 8 * i;
    cache.insert(key_for(n, n, n), plan_for(n, n, n));
    published.fetch_add(1, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(cache.stats().entries, static_cast<std::uint64_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const int n = 64 + 8 * i;
    EXPECT_NE(cache.lookup(key_for(n, n, n)), nullptr);
  }
}

TEST(PlanCache, ClearEmptiesTheTable) {
  PlanCache cache;
  cache.insert(key_for(96, 96, 96), plan_for(96, 96, 96));
  ASSERT_NE(cache.lookup(key_for(96, 96, 96)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.lookup(key_for(96, 96, 96)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Persistent tune cache.
// ---------------------------------------------------------------------------

class TuneCacheFile : public ::testing::Test {
 protected:
  // Per-test file name: ctest -j runs each test as its own process in a
  // shared working directory, so a fixed name would let parallel tests
  // clobber each other's cache files.
  TuneCacheFile()
      : path_(std::string("tune_cache_test_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".txt") {}
  void SetUp() override { std::remove(path_.c_str()); }
  void TearDown() override {
    std::remove(path_.c_str());
    reset_autotune_memo();
  }
  const std::string path_;
};

TuneCacheEntry sample_entry() {
  TuneCacheEntry entry;
  entry.tiles.min_tile = 8;
  entry.tiles.max_tile = 128;
  entry.tiles.preferred_tile = 48;
  entry.tiles.direct_threshold = 96;
  entry.tiles.packfused_max_depth = 3;
  entry.kernel = blas::kernels::Kind::kScalar;
  return entry;
}

TEST_F(TuneCacheFile, SaveThenLoadRoundTrips) {
  std::string error;
  ASSERT_TRUE(save_tune_cache(path_, sample_entry(), &error)) << error;
  TuneCacheEntry loaded;
  ASSERT_EQ(load_tune_cache(path_, &loaded, &error), TuneCacheStatus::kOk)
      << error;
  EXPECT_EQ(loaded.tiles.min_tile, 8);
  EXPECT_EQ(loaded.tiles.max_tile, 128);
  EXPECT_EQ(loaded.tiles.preferred_tile, 48);
  EXPECT_EQ(loaded.tiles.direct_threshold, 96);
  EXPECT_EQ(loaded.tiles.packfused_max_depth, 3);
  EXPECT_EQ(loaded.kernel, blas::kernels::Kind::kScalar);
}

TEST_F(TuneCacheFile, MissingFileIsACleanColdStart) {
  TuneCacheEntry out;
  std::string error;
  EXPECT_EQ(load_tune_cache(path_, &out, &error), TuneCacheStatus::kMissing);
  EXPECT_FALSE(error.empty());
}

TEST_F(TuneCacheFile, CorruptFileIsRejectedWithReason) {
  {
    std::ofstream f(path_);
    f << "not a tune cache at all\n";
  }
  TuneCacheEntry out;
  out.tiles.preferred_tile = -7;  // sentinel: must stay untouched
  std::string error;
  EXPECT_EQ(load_tune_cache(path_, &out, &error), TuneCacheStatus::kCorrupt);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(out.tiles.preferred_tile, -7);
}

TEST_F(TuneCacheFile, TruncatedFileIsRejected) {
  // A valid file cut before the "end" marker (the crash-mid-write case).
  std::string error;
  ASSERT_TRUE(save_tune_cache(path_, sample_entry(), &error)) << error;
  std::ifstream in(path_);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  ASSERT_NE(text.find("end"), std::string::npos);
  {
    std::ofstream f(path_, std::ios::trunc);
    f << text.substr(0, text.find("end"));
  }
  TuneCacheEntry out;
  EXPECT_EQ(load_tune_cache(path_, &out, &error), TuneCacheStatus::kCorrupt);
  EXPECT_NE(error.find("truncated"), std::string::npos) << error;
}

TEST_F(TuneCacheFile, ForeignFingerprintIsRejected) {
  std::string error;
  ASSERT_TRUE(save_tune_cache(path_, sample_entry(), &error)) << error;
  // Rewrite the fingerprint line: a cache written by a different kernel
  // build or host must not be trusted.
  std::ifstream in(path_);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string::size_type at = text.find("fingerprint ");
  ASSERT_NE(at, std::string::npos);
  const std::string::size_type eol = text.find('\n', at);
  text.replace(at, eol - at, "fingerprint v1;compiled=elsewhere");
  {
    std::ofstream f(path_, std::ios::trunc);
    f << text;
  }
  TuneCacheEntry out;
  EXPECT_EQ(load_tune_cache(path_, &out, &error),
            TuneCacheStatus::kFingerprintMismatch);
  EXPECT_FALSE(error.empty());
}

TEST_F(TuneCacheFile, InconsistentTilesAreRejected) {
  TuneCacheEntry bad = sample_entry();
  bad.tiles.preferred_tile = 256;  // outside [min_tile, max_tile]
  std::string error;
  ASSERT_TRUE(save_tune_cache(path_, bad, &error)) << error;
  TuneCacheEntry out;
  EXPECT_EQ(load_tune_cache(path_, &out, &error), TuneCacheStatus::kCorrupt);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// autotune_cached source transitions.
// ---------------------------------------------------------------------------

AutotuneOptions cheap_survey() {
  AutotuneOptions opt;
  opt.candidate_tiles = {16, 32};
  opt.crossover_sizes = {64};
  opt.strategy_sizes = {96};
  opt.repetitions = 1;
  // Never mutate the process-global kernel from these tests.
  opt.apply_best_kernel = false;
  return opt;
}

TEST_F(TuneCacheFile, ColdSurveyWritesTheCacheFile) {
  reset_autotune_memo();
  const CachedAutotune cold = autotune_cached(cheap_survey(), path_.c_str());
  EXPECT_EQ(cold.source, TuneSource::kFreshSurvey);
  EXPECT_FALSE(cold.result.leaf_survey.empty());
  TuneCacheEntry persisted;
  std::string error;
  ASSERT_EQ(load_tune_cache(path_, &persisted, &error), TuneCacheStatus::kOk)
      << error;
  EXPECT_EQ(persisted.tiles.min_tile, cold.result.tiles.min_tile);
  EXPECT_EQ(persisted.tiles.preferred_tile, cold.result.tiles.preferred_tile);
}

TEST_F(TuneCacheFile, WarmProcessSkipsTheSurvey) {
  reset_autotune_memo();
  const CachedAutotune cold = autotune_cached(cheap_survey(), path_.c_str());
  ASSERT_EQ(cold.source, TuneSource::kFreshSurvey);

  // Same process, second call: the memo answers (the PR-9 warm-start
  // bugfix -- one survey per process).
  const CachedAutotune memo = autotune_cached(cheap_survey(), path_.c_str());
  EXPECT_EQ(memo.source, TuneSource::kProcessMemo);
  EXPECT_EQ(memo.result.tiles.preferred_tile,
            cold.result.tiles.preferred_tile);
  EXPECT_TRUE(memo.result.leaf_survey.empty());  // nothing was measured

  // "New process" (memo dropped): the disk cache answers and the knobs
  // round-trip exactly.
  reset_autotune_memo();
  const CachedAutotune warm = autotune_cached(cheap_survey(), path_.c_str());
  EXPECT_EQ(warm.source, TuneSource::kDiskCache);
  EXPECT_EQ(warm.result.tiles.min_tile, cold.result.tiles.min_tile);
  EXPECT_EQ(warm.result.tiles.max_tile, cold.result.tiles.max_tile);
  EXPECT_EQ(warm.result.tiles.preferred_tile,
            cold.result.tiles.preferred_tile);
  EXPECT_EQ(warm.result.tiles.direct_threshold,
            cold.result.tiles.direct_threshold);
  EXPECT_EQ(warm.result.tiles.packfused_max_depth,
            cold.result.tiles.packfused_max_depth);
  EXPECT_EQ(warm.result.best_kernel, cold.result.best_kernel);
  EXPECT_TRUE(warm.result.leaf_survey.empty());
}

TEST_F(TuneCacheFile, CorruptCacheForcesResurveyAndRewrite) {
  {
    std::ofstream f(path_);
    f << "strassen.tune_cache.v1\ngarbage\n";
  }
  reset_autotune_memo();
  const CachedAutotune rejected = autotune_cached(cheap_survey(),
                                                  path_.c_str());
  EXPECT_EQ(rejected.source, TuneSource::kRejectedCache);
  EXPECT_FALSE(rejected.result.leaf_survey.empty());  // it really surveyed
  // The bad file was overwritten with this process's outcome.
  TuneCacheEntry repaired;
  std::string error;
  EXPECT_EQ(load_tune_cache(path_, &repaired, &error), TuneCacheStatus::kOk)
      << error;
}

TEST_F(TuneCacheFile, NoPathMeansMemoOnly) {
  reset_autotune_memo();
  const CachedAutotune first = autotune_cached(cheap_survey(), nullptr);
  EXPECT_EQ(first.source, TuneSource::kFreshSurvey);
  const CachedAutotune second = autotune_cached(cheap_survey(), nullptr);
  EXPECT_EQ(second.source, TuneSource::kProcessMemo);
}

TEST(TuneCacheFingerprint, IsStableWithinAProcess) {
  const std::string a = tune_cache_fingerprint();
  const std::string b = tune_cache_fingerprint();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("compiled="), std::string::npos);
  EXPECT_NE(a.find("elem="), std::string::npos);
}

}  // namespace
}  // namespace strassen::tune
