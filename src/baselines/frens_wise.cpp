#include "baselines/frens_wise.hpp"

#include "blas/level1.hpp"

namespace strassen::baselines {

void frens_wise_gemm(Op opa, Op opb, int m, int n, int k, double alpha,
                     const double* A, int lda, const double* B, int ldb,
                     double beta, double* C, int ldc,
                     const FrensWiseOptions& opt) {
  RawMem raw;
  frens_wise_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
                opt);
}

}  // namespace strassen::baselines
