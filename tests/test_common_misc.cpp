// Coverage for the small common utilities: RNG determinism, matrix views,
// op() helpers, and the debug printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  std::vector<double> va(100), vb(100);
  a.fill_uniform(va);
  b.fill_uniform(vb);
  EXPECT_EQ(va, vb);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  std::vector<double> va(100), vb(100);
  a.fill_uniform(va);
  b.fill_uniform(vb);
  EXPECT_NE(va, vb);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(3);
  std::vector<double> v(1000);
  rng.fill_uniform(v, -2.0, 3.0);
  for (double x : v) {
    EXPECT_GE(x, -2.0);
    EXPECT_LE(x, 3.0);
  }
}

TEST(Rng, IntegersAreExactAndBounded) {
  Rng rng(4);
  std::vector<double> v(1000);
  rng.fill_int(v, -4, 4);
  for (double x : v) {
    EXPECT_EQ(x, static_cast<int>(x));
    EXPECT_GE(x, -4.0);
    EXPECT_LE(x, 4.0);
  }
}

TEST(OpHelpers, DimensionsAndNames) {
  EXPECT_EQ(op_rows(Op::NoTrans, 3, 7), 3);
  EXPECT_EQ(op_cols(Op::NoTrans, 3, 7), 7);
  EXPECT_EQ(op_rows(Op::Trans, 3, 7), 7);
  EXPECT_EQ(op_cols(Op::Trans, 3, 7), 3);
  EXPECT_EQ(op_char(Op::NoTrans), 'N');
  EXPECT_EQ(op_char(Op::Trans), 'T');
}

TEST(MatrixType, RejectsBadLeadingDimension) {
  EXPECT_THROW(Matrix<double>(10, 5, 8), std::invalid_argument);
}

TEST(MatrixType, ZeroInitialized) {
  Matrix<double> m(7, 9);
  for (const auto& x : m.storage()) EXPECT_EQ(x, 0.0);
}

TEST(MatrixType, BlockViewsShareStorage) {
  Matrix<double> m(6, 6);
  auto blk = m.block(2, 3, 2, 2);
  blk.at(0, 0) = 5.0;
  blk.at(1, 1) = 7.0;
  EXPECT_EQ(m.at(2, 3), 5.0);
  EXPECT_EQ(m.at(3, 4), 7.0);
  // Nested blocks compose offsets.
  auto inner = blk.block(1, 1, 1, 1);
  EXPECT_EQ(inner.at(0, 0), 7.0);
}

TEST(MatrixType, ConstViewConvertsFromMutable) {
  Matrix<double> m(3, 3);
  m.at(1, 2) = 4.0;
  MatrixView<double> v = m.view();
  ConstMatrixView<double> cv = v;  // implicit widening
  EXPECT_EQ(cv.at(1, 2), 4.0);
}

TEST(MaxAbsHelpers, DiffAndMagnitude) {
  Matrix<double> a(2, 2), b(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -9.0;
  b.at(0, 0) = 1.5;
  EXPECT_DOUBLE_EQ(max_abs<double>(a.view()), 9.0);
  EXPECT_DOUBLE_EQ(max_abs_diff<double>(a.view(), b.view()), 9.0);
  Matrix<double> c(2, 3);
  EXPECT_THROW(max_abs_diff<double>(a.view(), c.view()),
               std::invalid_argument);
}

TEST(ToString, RendersRowsAndColumns) {
  Matrix<double> m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = -3.0;
  m.at(1, 1) = 4.0;
  const std::string s = to_string(m.view(), 1);
  EXPECT_NE(s.find("1.0"), std::string::npos);
  EXPECT_NE(s.find("-3.0"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}

}  // namespace
}  // namespace strassen
