// Unit tests for the bench table printer (src/common/table).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/table.hpp"

namespace strassen {
namespace {

TEST(Table, RequiresMatchingRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatsDoubles) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 0), "1");
  EXPECT_EQ(Table::num(-0.5, 3), "-0.500");
  EXPECT_EQ(Table::num(42ll), "42");
}

TEST(Table, CsvMirrorWritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/strassen_table_test.csv";
  {
    Table t({"n", "time"});
    t.mirror_csv(path);
    t.add_row({"100", "0.5"});
    t.add_row({"200", "1.5"});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "n,time");
  std::getline(in, line);
  EXPECT_EQ(line, "100,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "200,1.5");
  std::remove(path.c_str());
}

TEST(Table, PrintAlignsColumns) {
  // Smoke test: print() must not crash and emits one line per row + header
  // + separator.
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  int newlines = 0;
  for (char c : out)
    if (c == '\n') ++newlines;
  EXPECT_EQ(newlines, 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
}

}  // namespace
}  // namespace strassen
