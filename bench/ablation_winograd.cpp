// ablation_winograd -- isolates the SCHEDULE: Winograd's variant (7 products,
// 15 additions -- the paper's choice, S2) vs Strassen's original construction
// (7 products, 18 additions; 22 as naively scheduled here), both running over
// the identical Morton machinery (planner, conversions, leaf kernel).
//
// Expected shape: Winograd wins by a few percent, growing with recursion
// depth (the addition count difference is per level); both agree bit-for-bit
// on integer data (verified in tests/test_classic.cpp).
#include <cstdio>

#include "baselines/bailey.hpp"
#include "baselines/strassen_classic.hpp"
#include "core/modgemm.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: Winograd vs classic Strassen schedule",
                "Identical Morton layout/planner/kernel; only the 7-product "
                "schedule differs");

  // The Bailey column adds the historical fixed-TWO-LEVEL unfolding (S5.1):
  // same Winograd schedule but no depth adaptivity, so leaves grow as n/4
  // and fall out of cache for large n.
  Table table({"n", "winograd(s)", "classic(s)", "classic/winograd",
               "bailey2lvl(s)", "bailey/winograd"});
  args.maybe_mirror(table, "ablation_winograd");

  std::vector<int> sizes =
      args.quick ? std::vector<int>{300, 513}
                 : std::vector<int>{200, 300, 400, 513, 700, 900, 1024};
  for (int n : sizes) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 17);
    const MeasureOptions opt = bench::protocol(args, n);
    const double t_w = measure(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                        p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(),
                        p.C.ld());
        },
        opt);
    const double t_c = measure(
        [&] {
          baselines::strassen_classic(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                      p.A.data(), p.A.ld(), p.B.data(),
                                      p.B.ld(), 0.0, p.C.data(), p.C.ld());
        },
        opt);
    const double t_b = measure(
        [&] {
          baselines::bailey_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                 p.A.data(), p.A.ld(), p.B.data(), p.B.ld(),
                                 0.0, p.C.data(), p.C.ld());
        },
        opt);
    table.add_row({Table::num(static_cast<long long>(n)), Table::num(t_w, 4),
                   Table::num(t_c, 4), Table::num(t_c / t_w, 3),
                   Table::num(t_b, 4), Table::num(t_b / t_w, 3)});
  }
  table.print();
  std::printf(
      "\nExpected shape: classic/winograd > 1.0 throughout, growing with "
      "problem size (more recursion levels,\neach paying the extra quadrant "
      "additions).\n");
  return 0;
}
