// rectangular -- how MODGEMM handles non-square and highly rectangular
// problems (paper S3.5 and Fig. 4).
//
// Walks three regimes and shows the planner/splitter decisions:
//   1. mildly rectangular: per-dimension tiles, one shared recursion depth;
//   2. the paper's 1024 x 256 example: independently-chosen tiles would want
//      depths 5 and 3, but the 16..64 range still admits a common depth;
//   3. highly rectangular (wide/lean): no common depth exists, so the
//      product is decomposed into same-depth sub-products and reconstructed
//      as C[i][j] = sum_r A[i][r].B[r][j].
#include <cstdio>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "layout/split.hpp"

using namespace strassen;

namespace {

const char* shape_name(layout::Shape s) {
  switch (s) {
    case layout::Shape::Wide: return "wide";
    case layout::Shape::Lean: return "lean";
    default: return "well-behaved";
  }
}

void demo(int m, int k, int n) {
  std::printf("C(%d x %d) = A(%d x %d) . B(%d x %d)   [A is %s, B is %s]\n",
              m, n, m, k, k, n, shape_name(layout::classify(m, k)),
              shape_name(layout::classify(k, n)));
  const layout::GemmPlan plan = layout::plan_gemm(m, k, n);
  if (plan.direct) {
    std::printf("  planner: thin problem -> conventional blocked gemm\n");
  } else if (plan.feasible) {
    std::printf(
        "  planner: common depth %d; tiles m=%d k=%d n=%d; padded %dx%d * "
        "%dx%d\n",
        plan.depth, plan.m.tile, plan.k.tile, plan.n.tile, plan.m.padded,
        plan.k.padded, plan.k.padded, plan.n.padded);
  } else {
    const layout::SplitPlan split = layout::plan_split(m, k, n);
    std::printf(
        "  planner: no common depth (dims too disparate) -> split into "
        "%zu x %zu x %zu chunks = %zu sub-products at depth %d\n",
        split.m_chunks.size(), split.k_chunks.size(), split.n_chunks.size(),
        split.products(), split.depth);
  }

  // Run it and verify.
  Rng rng(static_cast<std::uint64_t>(m) * 3 + k * 5 + n * 7);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  core::ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld(), {}, &report);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  const double err = max_abs_diff<double>(C.view(), Ref.view());
  std::printf("  ran %d sub-product(s); max err vs naive %.2e %s\n\n",
              report.products, err, err < 1e-9 * k ? "OK" : "FAIL!");
}

}  // namespace

int main() {
  std::printf("MODGEMM on rectangular problems (paper S3.5)\n\n");
  demo(300, 260, 340);     // mildly rectangular: one plan
  demo(1024, 256, 1024);   // the paper's worked example
  demo(2100, 150, 150);    // lean A: m split into chunks
  demo(150, 2100, 150);    // wide A / lean B: k split, results accumulated
  demo(150, 150, 2100);    // wide B: n split
  demo(1000, 48, 1000);    // thin inner dimension: direct conventional
  return 0;
}
