// packfused.hpp -- the pack-fused (no-conversion) execution strategy.
//
// The Morton strategy (core/modgemm.hpp) pays three layout conversions per
// product -- 5-15% of the call (paper Fig. 7), pure overhead for one-shot,
// low-reuse and rectangular problems.  This strategy runs the SAME verified
// schedule tables (analysis/schedule.hpp) directly over the caller's
// column-major storage, BLIS-Strassen style (Huang, Smith, Henry & van de
// Geijn):
//
//   * every recursion operand is a clipped VIEW (blas::PackSrc) of the user
//     matrix, a recursion temporary, or a C-quadrant window; zero padding is
//     a property of the view (reads outside the stored extent return 0,
//     stores outside it are dropped), never a materialized buffer;
//   * at the leaves, operands the kernels cannot consume in place --
//     transposed sources, boundary tiles needing zero fill, Winograd operand
//     sums (A_i +- A_j) -- are gathered by blas/pack.hpp into dense
//     64-byte-aligned panels drawn from the per-thread arena pool; interior
//     untransposed views pass straight through (the kernels take a leading
//     dimension), so packing traffic concentrates at the boundary;
//   * the schedule's output combinations (the U-chain add/sub-in-place
//     steps) accumulate C +-= P exactly as they do over Morton storage, so
//     the "unpack" is the table itself.
//
// Bit-exactness contract (tested in tests/test_packfused.cpp): for every
// alpha/beta and kernel, the pack-fused strategy produces BIT-IDENTICAL
// results to the Morton strategy.  This holds because (1) the table
// selection below mirrors winograd_recurse exactly, (2) every element-wise
// step performs the same single +/- per element on the same values, (3)
// every leaf invokes the same kernel entry on the same tile values (a packed
// panel replicates the Morton tile bit-for-bit; a pass-through view feeds
// the kernel the same values through a different leading dimension, which
// does not change its FMA order), and (4) the alpha/beta epilogue applies
// the exact per-element expression of layout::from_morton (via
// blas::scale_view / blas::axpby_view).
//
// Dropped C stores are sound for the same reason Morton's clipped
// write-back is: every C-shaped intermediate is a +-combination of products
// of zero-padded operands, so its values outside the real extent are exact
// zeros.
//
// Workspace: the recursion temporaries are sized exactly as the Morton
// strategy's (core/workspace.hpp), plus one leaf panel set and -- for
// beta != 0 -- one m x n product scratch.  No Morton buffers exist; the
// bytes they would have cost are reported as
// GemmReport::conversion_saved_bytes.  All arena memory comes from the
// per-thread pool (parallel/arena_pool.hpp) in ONE up-front acquisition, so
// a refusal throws std::bad_alloc into the degradation ladder before any
// write to C.
#pragma once

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "analysis/schedule.hpp"
#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/pack.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "common/timer.hpp"
#include "core/workspace.hpp"
#include "layout/morton.hpp"
#include "layout/plan.hpp"
#include "obs/collector.hpp"
#include "obs/report.hpp"
#include "parallel/arena_pool.hpp"

namespace strassen::core {

// Bytes the Morton strategy would spend on the three Morton staging buffers
// for this plan (the conversion workspace a pack-fused execution avoids).
// Shared by modgemm_workspace_bytes and the conversion_saved_bytes report
// field.
inline std::size_t modgemm_conversion_bytes(const layout::GemmPlan& plan,
                                            std::size_t elem_size) {
  if (plan.direct || !plan.feasible) return 0;
  auto buf = [&](int rows_tile, int cols_tile) {
    const layout::MortonLayout l{0, 0, rows_tile, cols_tile, plan.depth};
    return checked_add(layout::buffer_bytes(l, elem_size), 63) / 64 * 64;
  };
  std::size_t total = buf(plan.m.tile, plan.k.tile);
  total = checked_add(total, buf(plan.k.tile, plan.n.tile));
  return checked_add(total, buf(plan.m.tile, plan.n.tile));
}

namespace packfused {

using blas::PackSrc;

// The schedule family a pack-fused execution actually runs.  kInPlace is
// mapped to kLowMem: the in-place table overwrites its A/B operand slots,
// which over Morton storage are the call's own staging copies but here would
// be the USER's matrices.  kLowMem is the closest verified schedule with the
// same products.
inline analysis::ScheduleFamily executed_family(analysis::ScheduleFamily f) {
  if (f == analysis::ScheduleFamily::kAuto)
    return analysis::ScheduleFamily::kWinograd;
  if (f == analysis::ScheduleFamily::kInPlace)
    return analysis::ScheduleFamily::kLowMem;
  return f;
}

// Clipped quadrant of a read view at logical offset (r0, c0), extent at most
// hr x hc.  The pointer is only advanced when the clipped extent is
// non-empty (an all-pad quadrant must not form an out-of-bounds address).
template <class T>
inline PackSrc<T> quad(const PackSrc<T>& v, int r0, int c0, int hr, int hc) {
  PackSrc<T> q;
  q.ld = v.ld;
  q.trans = v.trans;
  q.rows = std::clamp(v.rows - r0, 0, hr);
  q.cols = std::clamp(v.cols - c0, 0, hc);
  q.ptr = v.ptr;
  if (q.rows > 0 && q.cols > 0)
    q.ptr = v.trans ? v.ptr + static_cast<std::size_t>(r0) * v.ld + c0
                    : v.ptr + static_cast<std::size_t>(c0) * v.ld + r0;
  return q;
}

namespace detail {

constexpr blas::kernels::FusedOp fused_op(analysis::Sign s) {
  return s == analysis::Sign::kMinus ? blas::kernels::FusedOp::kSub
                                     : blas::kernels::FusedOp::kAdd;
}

// One side of a leaf product, presented the way the kernel entries expect:
// source pointer(s) sharing one leading dimension.  Views the kernels can
// read in place pass through; everything else is packed into arena panels
// holding exactly the values the Morton conversion would have staged.
template <class T>
struct LeafSide {
  const T* p0 = nullptr;
  const T* p1 = nullptr;
  int ld = 0;
};

template <class T>
LeafSide<T> stage_side(const PackSrc<T>& s0, const PackSrc<T>* s1, int pr,
                       int pc, Arena& arena) {
  // Wide-strided covering views are packed anyway: with ld > 2*pr each
  // cache line fetched for a panel column carries under half useful data,
  // so a kernel reading the view in place more than doubles its working
  // set versus a contiguous panel (immediate-level temps have ld == 2*pr
  // exactly and stay cheap to read in place; user-matrix and top-level
  // temp reads with ld of several multiples of pr do not).  One packing
  // pass pays that cost once instead of on every kernel sweep.
  auto wide = [&](const PackSrc<T>& s) { return s.ld > 2 * pr; };
  LeafSide<T> out;
  const bool in_place =
      s1 == nullptr ? (s0.covers(pr, pc) && !wide(s0))
                    : (s0.covers(pr, pc) && s1->covers(pr, pc) &&
                       !s0.trans && !s1->trans && s0.ld == s1->ld &&
                       !wide(s0) && !wide(*s1));
  if (in_place) {
    out.p0 = s0.ptr;
    out.p1 = s1 != nullptr ? s1->ptr : nullptr;
    out.ld = s0.ld;
    return out;
  }
  T* panel0 = arena.push<T>(static_cast<std::size_t>(pr) * pc);
  blas::pack_panel(panel0, pr, pc, s0);
  out.p0 = panel0;
  out.ld = pr;
  if (s1 != nullptr) {
    T* panel1 = arena.push<T>(static_cast<std::size_t>(pr) * pc);
    blas::pack_panel(panel1, pr, pc, *s1);
    out.p1 = panel1;
  }
  return out;
}

// One leaf product: dst(real dr x dc window of the tm x tn tile, leading
// dimension ldd) = (a0 [asign a1]) . (b0 [bsign b1]).  Fused partners are
// only ever present when the caller selected the fused-L1 table, i.e. when
// `fused` points at a kernel table publishing the fused entries.  Values the
// clipped destination drops are exact zeros (padding invariant).
template <class T>
void leaf_product(T* dst, int ldd, int dr, int dc, const PackSrc<T>& a0,
                  const PackSrc<T>* a1, analysis::Sign asign,
                  const PackSrc<T>& b0, const PackSrc<T>* b1,
                  analysis::Sign bsign, int tm, int tk, int tn, Arena& arena,
                  const blas::kernels::LeafKernels* fused) {
  Arena::Frame frame(arena);
  const LeafSide<T> a = stage_side(a0, a1, tm, tk, arena);
  const LeafSide<T> b = stage_side(b0, b1, tk, tn, arena);
  T* cptr = dst;
  int ldc = ldd;
  const bool clipped = dr < tm || dc < tn;
  if (clipped) {
    cptr = arena.push<T>(static_cast<std::size_t>(tm) * tn);
    ldc = tm;
  }
  if (a1 != nullptr || b1 != nullptr) {
    if constexpr (std::is_same_v<T, double>) {
      STRASSEN_REQUIRE(fused != nullptr,
                       "fused leaf product without a fused kernel table");
      obs::LeafTimer lt(/*fused=*/true);
      if (a1 != nullptr && b1 != nullptr) {
        fused->gemm_fused_ab(tm, tn, tk, a.p0, a.p1, fused_op(asign), a.ld,
                             b.p0, b.p1, fused_op(bsign), b.ld, cptr, ldc);
      } else if (a1 != nullptr) {
        fused->gemm_fused_a(tm, tn, tk, a.p0, a.p1, fused_op(asign), a.ld,
                            b.p0, b.ld, cptr, ldc);
      } else {
        fused->gemm_fused_b(tm, tn, tk, a.p0, a.ld, b.p0, b.p1,
                            fused_op(bsign), b.ld, cptr, ldc);
      }
    } else {
      STRASSEN_REQUIRE(false,
                       "fused leaf product in a non-double instantiation");
    }
  } else {
    RawMem raw;
    blas::gemm_leaf(raw, tm, tn, tk, a.p0, a.ld, b.p0, b.ld, cptr, ldc,
                    blas::LeafMode::Overwrite);
  }
  if (clipped) {
    // Unpack: the real window takes the product; the padded remainder holds
    // exact zeros and is dropped.
    for (int j = 0; j < dc; ++j) {
      const T* pj = cptr + static_cast<std::size_t>(j) * tm;
      T* oj = dst + static_cast<std::size_t>(j) * ldd;
      for (int i = 0; i < dr; ++i) oj[i] = pj[i];
    }
  }
}

}  // namespace detail

// C-view (real crows x ccols window of the padded (tm<<depth) x (tn<<depth)
// product, leading dimension ldc) = A-view . B-view, by the `family`
// schedule tables.  Mirrors core::winograd_recurse level for level: same
// table selection, same temporary sizes and push order, same step sequence.
template <class T>
void recurse(T* C, int ldc, int crows, int ccols, const PackSrc<T>& A,
             const PackSrc<T>& B, int tm, int tk, int tn, int depth,
             Arena& arena, analysis::ScheduleFamily family) {
  using analysis::Operand;
  using analysis::StepKind;
  if (depth == 0) {
    detail::leaf_product<T>(C, ldc, crows, ccols, A, nullptr,
                            analysis::Sign::kPlus, B, nullptr,
                            analysis::Sign::kPlus, tm, tk, tn, arena, nullptr);
    return;
  }
  const int d1 = depth - 1;
  const int hm = tm << d1;
  const int hk = tk << d1;
  const int hn = tn << d1;

  // Table selection: identical to winograd_recurse.  The low-mem family (and
  // the sub-levels of in-place, already mapped to low-mem) runs the 2-buffer
  // table everywhere; the default family fuses level 1 exactly when the
  // active kernel publishes the fused entries.
  const bool low_mem = family == analysis::ScheduleFamily::kLowMem ||
                       family == analysis::ScheduleFamily::kInPlace;
  const analysis::Schedule* sched =
      low_mem ? &analysis::kWinogradLowMem : &analysis::kWinograd;
  const blas::kernels::LeafKernels* fused_tab = nullptr;
  if constexpr (std::is_same_v<T, double>) {
    if (d1 == 0 && !low_mem) {
      const blas::kernels::LeafKernels& tab = blas::kernels::active();
      if (tab.gemm_fused_a != nullptr && tab.gemm_fused_b != nullptr &&
          tab.gemm_fused_ab != nullptr) {
        sched = &analysis::kWinogradFusedL1;
        fused_tab = &tab;
      }
    }
  }

  // Operand slot tables: a read view per slot, a writable base for C
  // quadrants and temporaries.  Writable slots are never transposed and
  // their view ld doubles as the store leading dimension.
  PackSrc<T> rd[analysis::kOperandCount] = {};
  T* wr[analysis::kOperandCount] = {};
  auto idx = [](Operand op) { return static_cast<int>(op); };

  rd[idx(Operand::kA11)] = quad(A, 0, 0, hm, hk);
  rd[idx(Operand::kA12)] = quad(A, 0, hk, hm, hk);
  rd[idx(Operand::kA21)] = quad(A, hm, 0, hm, hk);
  rd[idx(Operand::kA22)] = quad(A, hm, hk, hm, hk);
  rd[idx(Operand::kB11)] = quad(B, 0, 0, hk, hn);
  rd[idx(Operand::kB12)] = quad(B, 0, hn, hk, hn);
  rd[idx(Operand::kB21)] = quad(B, hk, 0, hk, hn);
  rd[idx(Operand::kB22)] = quad(B, hk, hn, hk, hn);

  PackSrc<T> cview{C, ldc, false, crows, ccols};
  const Operand cquads[] = {Operand::kC11, Operand::kC12, Operand::kC21,
                            Operand::kC22};
  const int coff[][2] = {{0, 0}, {0, hn}, {hm, 0}, {hm, hn}};
  for (int q = 0; q < 4; ++q) {
    PackSrc<T> v = quad(cview, coff[q][0], coff[q][1], hm, hn);
    rd[idx(cquads[q])] = v;
    wr[idx(cquads[q])] = const_cast<T*>(v.ptr);
  }

  // Temporaries: one arena push per distinct buffer id, sized for the
  // largest shape mapped onto it -- the same sizes and order as
  // winograd_recurse's push_and_bind_temps, so the arena peak matches the
  // Morton strategy's recursion exactly.
  Arena::Frame frame(arena);
  {
    auto shape_elems = [&](Operand t) -> std::size_t {
      const analysis::Shape s = analysis::shape_of(t);
      return s == analysis::Shape::kA
                 ? static_cast<std::size_t>(hm) * hk
                 : s == analysis::Shape::kB ? static_cast<std::size_t>(hk) * hn
                                            : static_cast<std::size_t>(hm) * hn;
    };
    constexpr int kMaxTemps = 6;
    std::size_t buf_elems[kMaxTemps] = {};
    T* bufs[kMaxTemps] = {};
    const int nbuf = analysis::temp_buffer_count(*sched);
    for (int i = 0; i < sched->temp_count; ++i) {
      const int b = analysis::temp_buffer_id(*sched, i);
      buf_elems[b] = std::max(buf_elems[b], shape_elems(sched->temps[i]));
    }
    for (int b = 0; b < nbuf; ++b) bufs[b] = arena.push<T>(buf_elems[b]);
    for (int i = 0; i < sched->temp_count; ++i) {
      const Operand t = sched->temps[i];
      const analysis::Shape s = analysis::shape_of(t);
      const int rows = s == analysis::Shape::kA ? hm
                       : s == analysis::Shape::kB ? hk
                                                  : hm;
      const int cols = s == analysis::Shape::kA ? hk
                       : s == analysis::Shape::kB ? hn
                                                  : hn;
      T* base = bufs[analysis::temp_buffer_id(*sched, i)];
      rd[idx(t)] = PackSrc<T>{base, rows, false, rows, cols};
      wr[idx(t)] = base;
    }
  }

  // Element-wise step over the destination's extent; source reads clip to
  // exact zeros -- the values to_morton would have staged there -- and the
  // clipped contribution is still COMPUTED (e.g. dj + 0), not skipped, so
  // zero signs match the Morton strategy bit-for-bit.  Counted like one
  // blas::vadd/vsub call so kernel telemetry matches the Morton strategy.
  // Columns split into a dense in-bounds run (tight, vectorizable) and a
  // clipped tail; transposed user operands take the generic gather.
  auto elementwise = [&](const analysis::Step& s) {
    T* dst = wr[idx(s.dst)];
    STRASSEN_REQUIRE(dst != nullptr, "schedule step writes read-only operand "
                                         << analysis::operand_name(s.dst));
    const PackSrc<T>& dv = rd[idx(s.dst)];
    const PackSrc<T>& x = rd[idx(s.a0)];
    const bool binary =
        s.kind == StepKind::kAdd || s.kind == StepKind::kSub;
    const PackSrc<T>& y = rd[idx(binary ? s.a1 : s.a0)];
    if (obs::Collector* c = obs::current()) c->note_elementwise();
    const int rows = dv.rows;
    if (x.trans || (binary && y.trans)) {
      for (int j = 0; j < dv.cols; ++j) {
        T* dj = dst + static_cast<std::size_t>(j) * dv.ld;
        for (int i = 0; i < rows; ++i) {
          switch (s.kind) {
            case StepKind::kAdd:
              dj[i] = static_cast<T>(x.at(i, j) + y.at(i, j));
              break;
            case StepKind::kSub:
              dj[i] = static_cast<T>(x.at(i, j) - y.at(i, j));
              break;
            case StepKind::kAddInplace:
              dj[i] = static_cast<T>(dj[i] + x.at(i, j));
              break;
            default:  // kSubInplace
              dj[i] = static_cast<T>(dj[i] - x.at(i, j));
              break;
          }
        }
      }
      return;
    }
    for (int j = 0; j < dv.cols; ++j) {
      T* dj = dst + static_cast<std::size_t>(j) * dv.ld;
      const T* xj =
          j < x.cols ? x.ptr + static_cast<std::size_t>(j) * x.ld : nullptr;
      const int xr = xj != nullptr ? std::min(x.rows, rows) : 0;
      switch (s.kind) {
        case StepKind::kAdd:
        case StepKind::kSub: {
          const T* yj = j < y.cols
                            ? y.ptr + static_cast<std::size_t>(j) * y.ld
                            : nullptr;
          const int yr = yj != nullptr ? std::min(y.rows, rows) : 0;
          const int dense = std::min(xr, yr);
          if (s.kind == StepKind::kAdd) {
            for (int i = 0; i < dense; ++i)
              dj[i] = static_cast<T>(xj[i] + yj[i]);
            for (int i = dense; i < rows; ++i)
              dj[i] = static_cast<T>((i < xr ? xj[i] : T{0}) +
                                     (i < yr ? yj[i] : T{0}));
          } else {
            for (int i = 0; i < dense; ++i)
              dj[i] = static_cast<T>(xj[i] - yj[i]);
            for (int i = dense; i < rows; ++i)
              dj[i] = static_cast<T>((i < xr ? xj[i] : T{0}) -
                                     (i < yr ? yj[i] : T{0}));
          }
          break;
        }
        case StepKind::kAddInplace:
          for (int i = 0; i < xr; ++i) dj[i] = static_cast<T>(dj[i] + xj[i]);
          for (int i = xr; i < rows; ++i) dj[i] = static_cast<T>(dj[i] + T{0});
          break;
        default:  // kSubInplace
          for (int i = 0; i < xr; ++i) dj[i] = static_cast<T>(dj[i] - xj[i]);
          for (int i = xr; i < rows; ++i) dj[i] = static_cast<T>(dj[i] - T{0});
          break;
      }
    }
  };

  for (int i = 0; i < sched->step_count; ++i) {
    const analysis::Step& s = sched->steps[i];
    switch (s.kind) {
      case StepKind::kAdd:
      case StepKind::kSub:
      case StepKind::kAddInplace:
      case StepKind::kSubInplace:
        elementwise(s);
        break;
      case StepKind::kMul: {
        T* dst = wr[idx(s.dst)];
        STRASSEN_REQUIRE(dst != nullptr, "schedule product writes read-only "
                                             << analysis::operand_name(s.dst));
        const PackSrc<T>& dv = rd[idx(s.dst)];
        if (d1 == 0) {
          detail::leaf_product<T>(dst, dv.ld, dv.rows, dv.cols, rd[idx(s.a0)],
                                  nullptr, s.asign, rd[idx(s.b0)], nullptr,
                                  s.bsign, tm, tk, tn, arena, fused_tab);
        } else {
          recurse(dst, dv.ld, dv.rows, dv.cols, rd[idx(s.a0)], rd[idx(s.b0)],
                  tm, tk, tn, d1, arena, family);
        }
        break;
      }
      case StepKind::kMulFusedA:
      case StepKind::kMulFusedB:
      case StepKind::kMulFusedAB: {
        T* dst = wr[idx(s.dst)];
        STRASSEN_REQUIRE(dst != nullptr && d1 == 0,
                         "fused schedule step outside a fused-capable level");
        const PackSrc<T>& dv = rd[idx(s.dst)];
        const PackSrc<T>* a1 =
            s.kind != StepKind::kMulFusedB ? &rd[idx(s.a1)] : nullptr;
        const PackSrc<T>* b1 =
            s.kind != StepKind::kMulFusedA ? &rd[idx(s.b1)] : nullptr;
        detail::leaf_product(dst, dv.ld, dv.rows, dv.cols, rd[idx(s.a0)], a1,
                             s.asign, rd[idx(s.b0)], b1, s.bsign, tm, tk, tn,
                             arena, fused_tab);
        break;
      }
    }
  }
}

}  // namespace packfused

// True when a pack-fused execution of `plan` must route the product through
// a full padded C scratch instead of the caller's C: the schedule tables use
// C quadrant slots as scratch for U-chain intermediates whose values in the
// PAD region are nonzero and are read across quadrants, so the recursion
// destination must hold the full padded extent (exactly like the Morton
// strategy's C buffer) -- and beta != 0 additionally requires the original C
// to survive until the final merge.
inline bool packfused_needs_c_scratch(const layout::GemmPlan& plan, int m,
                                      int n, bool beta_nonzero) {
  return beta_nonzero || m < plan.m.padded || n < plan.n.padded;
}

// Peak arena bytes one pack-fused product needs under `plan` (after the
// executed_family mapping): the Morton strategy's recursion-temporary peak
// for the same tables, plus one leaf panel set (live only inside a leaf's
// arena frame), plus -- when the padding or beta requires it -- the padded
// C scratch the epilogue merges into C.  Always at most
// modgemm_workspace_bytes for the same plan (the A and B Morton buffers
// dwarf the panel set), which is why the workspace-budget ladder prices
// plans with the Morton figure for both strategies.
inline std::size_t packfused_workspace_bytes(const layout::GemmPlan& plan,
                                             std::size_t elem_size,
                                             bool c_scratch) {
  if (plan.direct || !plan.feasible) return 0;
  const analysis::ScheduleFamily fam = packfused::executed_family(plan.schedule);
  auto r64 = [](std::size_t b) { return checked_add(b, 63) / 64 * 64; };
  std::size_t total = winograd_workspace_bytes(
      plan.m.tile, plan.k.tile, plan.n.tile, plan.depth, elem_size, fam);
  const std::size_t tm = static_cast<std::size_t>(plan.m.tile);
  const std::size_t tk = static_cast<std::size_t>(plan.k.tile);
  const std::size_t tn = static_cast<std::size_t>(plan.n.tile);
  // Worst-case leaf frame: both A sources packed, both B sources packed, and
  // a clipped destination staging panel.
  total = checked_add(total, 2 * r64(checked_mul(tm, tk) * elem_size));
  total = checked_add(total, 2 * r64(checked_mul(tk, tn) * elem_size));
  total = checked_add(total, r64(checked_mul(tm, tn) * elem_size));
  if (c_scratch) {
    const std::size_t pmn = checked_mul(static_cast<std::size_t>(plan.m.padded),
                                        static_cast<std::size_t>(plan.n.padded));
    total = checked_add(total, r64(checked_mul(pmn, elem_size)));
  }
  return total;
}

// The pack-fused Strassen-Winograd path for one planned product, with the
// same exactness-or-untouched-C contract as modgemm_strassen: the single
// arena acquisition happens before any write to C, nothing after it can
// fail, so std::bad_alloc guarantees C is untouched.
//
// The recursion destination is always the FULL padded pm x pn extent: the
// schedule's U-chain parks intermediates in C quadrant slots and reads them
// across quadrants, and those intermediates are NOT zero in the pad region
// (only the final quadrant values are), so clipping C mid-recursion would
// lose live values.  When the caller's C is already full-extent (no padding)
// and beta == 0, the recursion writes C directly; otherwise it runs in a
// padded arena scratch -- the exact analogue of the Morton strategy's C
// buffer -- and the epilogue merges the real region.
//
// alpha/beta handling preserves the Morton strategy's exact rounding: the
// recursion computes the UNSCALED product, then one pass applies the
// per-element expression of layout::from_morton (plain copy when alpha == 1
// and beta == 0, alpha*p when beta == 0, alpha*p + beta*c otherwise).
template <class T>
void modgemm_packfused(Op opa, Op opb, int m, int n, int k, T alpha,
                       const T* A, int lda, const T* B, int ldb, T beta, T* C,
                       int ldc, const layout::GemmPlan& plan,
                       obs::GemmReport* report) {
  STRASSEN_ASSERT(plan.feasible && !plan.direct && plan.depth >= 1);
  const analysis::ScheduleFamily family =
      packfused::executed_family(plan.schedule);
  const bool c_scratch = packfused_needs_c_scratch(plan, m, n, beta != T{0});
  const std::size_t workspace_bytes =
      packfused_workspace_bytes(plan, sizeof(T), c_scratch);
  parallel::ScratchArena scratch(workspace_bytes);
  Arena& arena = scratch.arena();

  const blas::PackSrc<T> av{A, lda, opa == Op::Trans, m, k};
  const blas::PackSrc<T> bv{B, ldb, opb == Op::Trans, k, n};
  const int pm = plan.m.padded;
  const int pn = plan.n.padded;

  WallTimer t;
  T* P = C;
  int ldp = ldc;
  if (c_scratch) {
    P = arena.push<T>(static_cast<std::size_t>(pm) * pn);
    ldp = pm;
  }
  packfused::recurse(P, ldp, pm, pn, av, bv, plan.m.tile, plan.k.tile,
                     plan.n.tile, plan.depth, arena, family);
  const double t_mul = t.seconds();

  // The alpha/beta merge -- the only work the Morton strategy's outbound
  // conversion still has to do here (per-element expression identical to
  // layout::from_morton).
  t.restart();
  RawMem raw;
  if (c_scratch) {
    if (alpha == T{1} && beta == T{0}) {
      for (int j = 0; j < n; ++j) {
        const T* pj = P + static_cast<std::size_t>(j) * ldp;
        T* cj = C + static_cast<std::size_t>(j) * ldc;
        for (int i = 0; i < m; ++i) cj[i] = pj[i];
      }
    } else {
      blas::axpby_view(raw, m, n, C, ldc, alpha, static_cast<const T*>(P),
                       ldp, beta);
    }
  } else if (alpha != T{1}) {
    blas::scale_view(raw, m, n, C, ldc, alpha);
  }
  const double t_out = t.seconds();

  if (report) {
    report->compute_seconds += t_mul;
    report->convert_out_seconds += t_out;
    report->plan = plan;
    report->plan.schedule = family;
    report->plan.strategy = layout::ExecStrategy::kPackFused;
    report->strategy = layout::strategy_name(layout::ExecStrategy::kPackFused);
    report->schedule = analysis::family_name(family);
    report->conversion_saved_bytes += modgemm_conversion_bytes(plan, sizeof(T));
    if (family != analysis::ScheduleFamily::kWinograd) {
      const std::size_t def = winograd_workspace_bytes(
          plan.m.tile, plan.k.tile, plan.n.tile, plan.depth, sizeof(T));
      const std::size_t got = winograd_workspace_bytes(
          plan.m.tile, plan.k.tile, plan.n.tile, plan.depth, sizeof(T), family);
      if (def > got) report->workspace_saved_bytes += def - got;
    }
    ++report->products;
    // ScratchArena already noted the acquisition (bytes + count) into the
    // call's collector; stamping it here too would double-count.  Only the
    // high-water mark comes from the arena directly.
    report->workspace_peak_bytes =
        std::max(report->workspace_peak_bytes, arena.peak());
  }
}

}  // namespace strassen::core
