// ablation_rectangular -- the rectangular-input study the paper lists as
// future work (S6: "We also plan to examine the effects of rectangular input
// matrices").
//
// Sweeps aspect ratios at (roughly) constant arithmetic work 2*m*k*n and
// reports, for each shape: the planner's decision (single-depth plan /
// split / direct), MODGEMM vs DGEFMM vs conventional time, and effective
// GFLOP/s.  Expected shape: all implementations degrade as shapes become
// extreme (less reuse per element); MODGEMM's split path keeps it correct
// and competitive down to the thin-direct regime where the conventional
// algorithm takes over by design.
#include <cstdio>

#include "common/stats.hpp"
#include "layout/plan.hpp"
#include "layout/split.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

namespace {

const char* plan_kind(int m, int k, int n) {
  const layout::GemmPlan p = layout::plan_gemm(m, k, n);
  if (p.direct) return "direct";
  if (p.feasible) return "single";
  return "split";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: rectangular inputs (paper future work)",
                "Aspect-ratio sweep at ~constant flop count; times for "
                "MODGEMM / DGEFMM / conventional");

  Table table({"m", "k", "n", "plan", "MODGEMM(s)", "DGEFMM(s)", "DGEMM(s)",
               "MOD GFLOP/s"});
  args.maybe_mirror(table, "ablation_rectangular");

  // Shapes holding m*k*n ~ 450^3, from cubic to very lean/wide.
  struct Shape {
    int m, k, n;
  };
  std::vector<Shape> shapes{
      {450, 450, 450},  {640, 450, 320},  {900, 450, 225},
      {1800, 450, 112}, {225, 900, 450},  {112, 1800, 450},
      {320, 320, 900},  {150, 2100, 290}, {2100, 150, 290},
  };
  if (args.quick) shapes.resize(4);

  const bench::GemmFn modgemm = bench::modgemm_fn();
  const bench::GemmFn dgefmm = bench::dgefmm_fn();
  const bench::GemmFn conv = bench::conventional_fn();

  for (const Shape& s : shapes) {
    bench::Problem p(s.m, s.n, s.k,
                     static_cast<std::uint64_t>(s.m) * 7 + s.n);
    const MeasureOptions opt = bench::protocol(args, std::max(s.m, s.n));
    const double t_mod = bench::time_gemm(modgemm, p, opt);
    const double t_fmm = bench::time_gemm(dgefmm, p, opt);
    const double t_conv = bench::time_gemm(conv, p, opt);
    table.add_row({Table::num(static_cast<long long>(s.m)),
                   Table::num(static_cast<long long>(s.k)),
                   Table::num(static_cast<long long>(s.n)),
                   plan_kind(s.m, s.k, s.n), Table::num(t_mod, 4),
                   Table::num(t_fmm, 4), Table::num(t_conv, 4),
                   Table::num(gflops(gemm_flops(s.m, s.n, s.k), t_mod), 2)});
  }
  table.print();
  std::printf(
      "\nplan column: 'single' = one Strassen plan at a common depth; "
      "'split' = decomposed into\nsame-depth sub-products (paper Fig. 4); "
      "'direct' = thin problem handed to conventional gemm.\n");
  return 0;
}
