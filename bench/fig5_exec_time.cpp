// fig5_exec_time -- reproduces Figure 5 (and the wall-clock half of Figure
// 6): execution time of MODGEMM and DGEMMW normalized to DGEFMM across the
// paper's matrix-size sweep (150..1024), alpha = 1, beta = 0.
//
// Values below 1.0 mean the implementation beats DGEFMM at that size.
// Expected shape (paper Figs. 5a/6a): MODGEMM within roughly +-25% of
// DGEFMM, winning most consistently for large sizes (>= 500) and losing for
// small ones where the conversion overhead dominates; wide variability
// across sizes is itself one of the paper's findings.
#include <cstdio>
#include <string>

#include "common/ascii_plot.hpp"
#include "common/stats.hpp"
#include "core/modgemm.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 5 (a: MODGEMM, b: DGEMMW, both vs DGEFMM)",
                "Execution time normalized to the dynamic-peeling baseline "
                "(DGEFMM, cutoff 64); also conventional DGEMM for scale");

  Table table({"n", "DGEFMM(s)", "MODGEMM/DGEFMM", "DGEMMW/DGEFMM",
               "DGEMM/DGEFMM", "MODGEMM GFLOP/s"});
  args.maybe_mirror(table, "fig5_exec_time");
  bench::ReportLog log(args, "fig5_exec_time");

  const bench::GemmFn modgemm = bench::modgemm_fn();
  const bench::GemmFn dgefmm = bench::dgefmm_fn();
  const bench::GemmFn dgemmw = bench::dgemmw_fn();
  const bench::GemmFn conv = bench::conventional_fn();

  int mod_wins = 0, total = 0;
  std::vector<double> xs;
  PlotSeries mod_series{"MODGEMM/DGEFMM", 'M', {}};
  PlotSeries w_series{"DGEMMW/DGEFMM", 'W', {}};
  for (int n : bench::paper_sizes(args)) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n));
    const MeasureOptions opt = bench::protocol(args, n);
    const double t_fmm = bench::time_gemm(dgefmm, p, opt);
    const double t_mod = bench::time_gemm(modgemm, p, opt);
    const double t_w = bench::time_gemm(dgemmw, p, opt);
    const double t_conv = bench::time_gemm(conv, p, opt);
    table.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(t_fmm, 4), Table::num(t_mod / t_fmm, 3),
                   Table::num(t_w / t_fmm, 3), Table::num(t_conv / t_fmm, 3),
                   Table::num(gflops(gemm_flops(n, n, n), t_mod), 2)});
    if (log.enabled()) {
      // One extra observed invocation outside the timing loops: its report
      // explains the MODGEMM number of this row (plan, phases, kernels).
      core::ModgemmReport report;
      core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                    p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(), p.C.ld(),
                    {}, &report);
      log.add("n=" + std::to_string(n), report);
    }
    ++total;
    if (t_mod < t_fmm) ++mod_wins;
    xs.push_back(n);
    mod_series.y.push_back(t_mod / t_fmm);
    w_series.y.push_back(t_w / t_fmm);
  }
  table.print();
  PlotOptions popt;
  popt.reference = 1.0;
  std::printf("\nNormalized execution time vs n (values < 1.0 beat DGEFMM; "
              "dashed line = parity):\n%s",
              render_plot(xs, {mod_series, w_series}, popt).c_str());
  std::printf(
      "\nMODGEMM beat DGEFMM at %d of %d sizes.  Paper (Alpha): -30%% to "
      "+20%% across the sweep,\nwith MODGEMM strongest between 500 and 800; "
      "(Ultra): MODGEMM generally faster above 500.\n",
      mod_wins, total);
  std::printf(
      "GFLOP/s uses the conventional 2n^3 operation count, so Strassen "
      "implementations can exceed the kernel's native rate.\n");
  return 0;
}
