// Observability subsystem tests (src/obs + its hooks through the drivers).
//
// The contracts under test, in the order docs/OBSERVABILITY.md states them:
//
//   * disabled path -- a call without a report makes exactly the same gated
//     allocations as the seed library (one arena for a serial Strassen call)
//     and leaves no collector installed;
//   * enabled path -- phase timers are populated and consistent (phases sum
//     to at most the wall time, leaf time is a subset of compute time),
//     kernel counts match the closed-form Strassen-Winograd identities,
//     workspace accounting matches what the fault injector observes, and a
//     report adds no gated allocations;
//   * JSON -- to_json carries the documented schema id and every section;
//   * env sink -- STRASSEN_OBS=json:PATH appends one JSONL line per
//     top-level production call, flipped at runtime via setenv;
//   * parallel -- pmodgemm fills the parallel section, per-thread task
//     counts sum to the total, and degradation into the serial driver keeps
//     one coherent report (no double counting, fallback recorded).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "blas/kernels/registry.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "obs/collector.hpp"
#include "obs/report.hpp"
#include "parallel/pmodgemm.hpp"
#include "parallel/thread_pool.hpp"
#include "testing/fault_injection.hpp"

namespace strassen {
namespace {

namespace ft = ::strassen::testing;
namespace ker = ::strassen::blas::kernels;
using core::FallbackReason;
using core::ModgemmOptions;
using core::ModgemmReport;

std::uint64_t pow7(int e) {
  std::uint64_t r = 1;
  for (int i = 0; i < e; ++i) r *= 7;
  return r;
}

struct Problem {
  Matrix<double> A, B, C;
  int n;
  explicit Problem(int n_, std::uint64_t seed = 42)
      : A(n_, n_), B(n_, n_), C(n_, n_), n(n_) {
    Rng rng(seed);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
  }
  void run(const ModgemmOptions& opt, ModgemmReport* report = nullptr) {
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                  B.data(), B.ld(), 0.0, C.data(), C.ld(), opt, report);
  }
};

// Forces a depth-2 Strassen execution with a known plan.
ModgemmOptions fixed_depth2() {
  ModgemmOptions opt;
  opt.fixed_tile = 16;  // 64 = 16 << 2
  return opt;
}

// ---------------------------------------------------------------------------
// Disabled path.
// ---------------------------------------------------------------------------

TEST(ObsDisabled, NoCollectorAndSeedAllocationCount) {
  Problem p(64);
  EXPECT_EQ(obs::current(), nullptr);
  ft::FaultInjector counter;  // kCountOnly
  p.run(fixed_depth2());
  // The serial Strassen call makes exactly ONE gated allocation: the arena
  // covering the three Morton buffers and the recursion temporaries.
  EXPECT_EQ(counter.allocations(), 1u);
  EXPECT_EQ(obs::current(), nullptr);
}

TEST(ObsEnabled, ReportAddsNoGatedAllocations) {
  Problem p(64);
  ModgemmReport report;
  ft::FaultInjector counter;
  p.run(fixed_depth2(), &report);
  EXPECT_EQ(counter.allocations(), 1u);
  EXPECT_EQ(report.workspace_allocations, 1);
  EXPECT_EQ(obs::current(), nullptr);
}

// ---------------------------------------------------------------------------
// Phase timers.
// ---------------------------------------------------------------------------

TEST(ObsPhases, PopulatedAndConsistent) {
  Problem p(200);
  ModgemmOptions opt;
  opt.tiles.direct_threshold = 32;  // force a Strassen execution
  // This test asserts Morton-only observables (conversion phases); pin the
  // strategy and the <2,2,2> family so it holds under forced
  // STRASSEN_STRATEGY / STRASSEN_ALGO environments (pin > env).
  opt.strategy = layout::ExecStrategy::kMorton;
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  p.run(opt, &report);

  EXPECT_EQ(report.m, 200);
  EXPECT_EQ(report.n, 200);
  EXPECT_EQ(report.k, 200);
  EXPECT_STREQ(report.entry, "modgemm");
  EXPECT_GT(report.convert_in_seconds, 0.0);
  EXPECT_GT(report.compute_seconds, 0.0);
  EXPECT_GT(report.convert_out_seconds, 0.0);
  EXPECT_GT(report.leaf_seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  // The three phases nest inside the wall time (validation, planning and
  // arena setup make the wall strictly larger; allow 20% timer noise).
  EXPECT_LE(report.total_seconds(), report.wall_seconds * 1.2);
  // Leaf products execute inside the compute phase.
  EXPECT_LE(report.leaf_seconds, report.compute_seconds * 1.2);
  EXPECT_GT(report.conversion_fraction(), 0.0);
  EXPECT_LT(report.conversion_fraction(), 1.0);
  EXPECT_FALSE(report.plan.direct);
  EXPECT_EQ(report.products, 1);
  EXPECT_GT(report.workspace_peak_bytes, 0u);
  EXPECT_LE(report.workspace_peak_bytes, report.workspace_requested_bytes);
}

TEST(ObsPhases, AccumulateAcrossCalls) {
  Problem p(64);
  ModgemmReport report;
  p.run(fixed_depth2(), &report);
  const double wall1 = report.wall_seconds;
  const std::uint64_t leaves1 = report.leaf_calls + report.fused_calls;
  p.run(fixed_depth2(), &report);
  EXPECT_EQ(report.products, 2);
  EXPECT_GT(report.wall_seconds, wall1);
  EXPECT_EQ(report.leaf_calls + report.fused_calls, 2 * leaves1);
  EXPECT_EQ(report.workspace_allocations, 2);
}

TEST(ObsOptions, OptionsPointerAndTrailingParameterAgree) {
  Problem p(64);
  ModgemmReport via_opt, via_param;
  ModgemmOptions opt = fixed_depth2();
  opt.report = &via_opt;
  p.run(opt);
  p.run(fixed_depth2(), &via_param);
  EXPECT_EQ(via_opt.leaf_calls, via_param.leaf_calls);
  EXPECT_EQ(via_opt.elementwise_calls, via_param.elementwise_calls);
  EXPECT_EQ(via_opt.plan.depth, via_param.plan.depth);
  EXPECT_EQ(via_opt.products, 1);
}

// ---------------------------------------------------------------------------
// Kernel telemetry: closed-form Strassen-Winograd counts.
// ---------------------------------------------------------------------------

TEST(ObsKernels, ScalarCountsMatchClosedForm) {
  Problem p(64);
  ModgemmOptions opt = fixed_depth2();
  opt.kernel = ker::Kind::kScalar;  // scalar table: no fused entries
  ModgemmReport report;
  p.run(opt, &report);

  const int d = report.plan.depth;
  ASSERT_EQ(d, 2);
  EXPECT_STREQ(report.kernel, "scalar");
  EXPECT_EQ(report.leaf_calls, pow7(d));
  EXPECT_EQ(report.fused_calls, 0u);
  // 15 quadrant additions at each internal node: 15 * (7^d - 1) / 6.
  EXPECT_EQ(report.elementwise_calls, 15 * (pow7(d) - 1) / 6);
}

TEST(ObsKernels, FusedCountsMatchClosedForm) {
  // Only meaningful when a SIMD table with fused entries can run here.
  ker::Kind simd = ker::Kind::kScalar;
  for (ker::Kind k : ker::available_kernels())
    if (k != ker::Kind::kScalar) simd = k;
  if (simd == ker::Kind::kScalar) GTEST_SKIP() << "no SIMD kernel available";
  const ker::LeafKernels* tab = ker::kernel_table(simd);
  ASSERT_NE(tab, nullptr);
  if (tab->gemm_fused_ab == nullptr)
    GTEST_SKIP() << "kernel publishes no fused entries";

  Problem p(64);
  ModgemmOptions opt = fixed_depth2();
  opt.kernel = simd;
  ModgemmReport report;
  p.run(opt, &report);

  const int d = report.plan.depth;
  ASSERT_EQ(d, 2);
  EXPECT_STREQ(report.kernel, ker::kind_name(simd));
  // Each bottom-level node fuses 3 of its 7 products (P5, P7, P6) and runs
  // the other 4 as plain leaves; there are 7^(d-1) bottom-level nodes.
  EXPECT_EQ(report.fused_calls, 3 * pow7(d - 1));
  EXPECT_EQ(report.leaf_calls, 4 * pow7(d - 1));
}

// ---------------------------------------------------------------------------
// Workspace accounting vs the fault injector.
// ---------------------------------------------------------------------------

TEST(ObsWorkspace, RequestedMatchesPublicSizing) {
  Problem p(200);
  ModgemmOptions opt;
  opt.tiles.direct_threshold = 32;
  // modgemm_workspace_bytes sizes the Morton <2,2,2> execution; pin the
  // strategy and family so the equality holds under forced
  // STRASSEN_STRATEGY / STRASSEN_ALGO legs.
  opt.strategy = layout::ExecStrategy::kMorton;
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  p.run(opt, &report);
  ASSERT_FALSE(report.plan.direct);
  EXPECT_EQ(report.workspace_requested_bytes,
            core::modgemm_workspace_bytes(report.plan, sizeof(double)));
  EXPECT_EQ(report.workspace_allocations, 1);
}

TEST(ObsWorkspace, FallbackLadderIsRecorded) {
  Problem p(200);
  ModgemmOptions opt;
  opt.tiles.direct_threshold = 32;
  // Pin <2,2,2>: under a forced STRASSEN_ALGO the first gated allocation is
  // the family staging, and the fault would degrade via kAlgoFallback
  // instead of the <2,2,2> ladder's kAllocDirect (pin > env).
  opt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  {
    // Refuse the (single) arena allocation: the ladder degrades to the
    // conventional path and the report says so.
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, 1);
    p.run(opt, &report);
  }
  EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocDirect);
  EXPECT_EQ(report.products, 1);
  EXPECT_GT(report.compute_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// JSON serialization.
// ---------------------------------------------------------------------------

TEST(ObsJson, CarriesSchemaAndEverySection) {
  Problem p(64);
  ModgemmReport report;
  p.run(fixed_depth2(), &report);
  const std::string json = obs::to_json(report);

  EXPECT_NE(json.find("\"schema\": \"strassen.gemm_report.v6\""),
            std::string::npos);
  for (const char* key :
       {"\"call\"", "\"phases\"", "\"plan\"", "\"workspace\"", "\"kernels\"",
        "\"parallel\"", "\"wall_s\"", "\"leaf_calls\"", "\"peak_bytes\"",
        "\"fallback\"", "\"steals\"", "\"per_thread_tasks\"",
        "\"pad_elems\"", "\"schedule\"", "\"strategy\"", "\"algo\"",
        "\"saved_bytes\"",
        "\"conversion_saved_bytes\"", "\"batch\"", "\"classes\"",
        "\"plan_cache_hits\"", "\"plan_cache_misses\"",
        "\"workspace_acquisitions\"", "\"workspace_cold_allocs\"",
        "\"tune_cache\""})
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  // One line, balanced braces.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0);

  std::ostringstream os;
  obs::write_json(os, report);
  EXPECT_EQ(os.str(), json);
}

TEST(ObsJson, PadElemsMatchesPlanArithmetic) {
  Problem p(64);
  ModgemmReport report;
  p.run(fixed_depth2(), &report);
  // fixed_tile=16 pads every dimension of a 64-problem to 64: no padding.
  EXPECT_EQ(report.pad_elems(), 0);

  Problem q(63);
  ModgemmReport r63;
  q.run(fixed_depth2(), &r63);
  // 63 -> 64 padded: each operand pays 64*64 - 63*63.
  EXPECT_EQ(r63.pad_elems(), 3 * (64 * 64 - 63 * 63));
}

// ---------------------------------------------------------------------------
// Env sink.
// ---------------------------------------------------------------------------

TEST(ObsEnvSink, AppendsOneJsonlLinePerCall) {
  const std::string path =
      ::testing::TempDir() + "/strassen_obs_test.jsonl";
  std::remove(path.c_str());
  ASSERT_EQ(::setenv("STRASSEN_OBS", ("json:" + path).c_str(), 1), 0);
  Problem p(64);
  p.run(fixed_depth2());
  p.run(fixed_depth2());
  ASSERT_EQ(::unsetenv("STRASSEN_OBS"), 0);
  p.run(fixed_depth2());  // sink off again: must not append

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "sink did not create " << path;
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"schema\": \"strassen.gemm_report.v6\""),
              std::string::npos);
    EXPECT_NE(line.find("\"entry\": \"modgemm\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Parallel driver.
// ---------------------------------------------------------------------------

TEST(ObsParallel, PmodgemmFillsParallelSection) {
  const int n = 256;
  Problem p(n);
  Matrix<double> Cserial(n, n);
  // Pinned to <2,2,2> on both sides: these tests assert the Morton spawn
  // mechanics, which a forced STRASSEN_ALGO run would reroute through the
  // family level (pin > env).
  ModgemmOptions sopt;
  sopt.algo = analysis::AlgoFamily::k222;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(), p.A.ld(),
                p.B.data(), p.B.ld(), 0.0, Cserial.data(), Cserial.ld(),
                sopt);

  parallel::ThreadPool pool(4);
  parallel::ParallelOptions popt;
  popt.algo = analysis::AlgoFamily::k222;
  popt.spawn_levels = 1;
  ModgemmReport report;
  popt.report = &report;
  parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                     p.A.data(), p.A.ld(), p.B.data(), p.B.ld(), 0.0,
                     p.C.data(), p.C.ld(), popt);

  // Observability must not perturb the bit-exactness contract.
  EXPECT_EQ(max_abs_diff<double>(p.C.view(), Cserial.view()), 0.0);

  EXPECT_STREQ(report.entry, "pmodgemm");
  EXPECT_TRUE(report.parallel);
  EXPECT_EQ(report.threads, 4);
  EXPECT_EQ(report.spawn_levels, 1);
  // 7 product tasks plus the parallel_for conversion chunks.
  EXPECT_GE(report.tasks_executed, 7u);
  EXPECT_GT(report.task_busy_seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  std::uint64_t per_thread_total = 0;
  for (std::uint64_t t : report.per_thread_tasks) per_thread_total += t;
  EXPECT_EQ(per_thread_total, report.tasks_executed);
  EXPECT_EQ(report.per_thread_tasks.size(), 5u);  // caller + 4 workers
  // The parallel schedule keeps everything live at once.
  EXPECT_GT(report.workspace_requested_bytes, 0u);
  EXPECT_EQ(report.workspace_peak_bytes, report.workspace_requested_bytes);
  EXPECT_GE(report.workspace_allocations, 3 + 7);  // Morton bufs + task arenas
  EXPECT_GT(report.leaf_calls + report.fused_calls, 0u);
  EXPECT_GT(report.pool_utilization(), 0.0);
  // Steals are scheduling-dependent (0 is legal on a loaded host), but they
  // can never exceed the number of tasks that ran.
  EXPECT_LE(report.steals, report.tasks_executed);
}

TEST(ObsParallel, DeepSpawnReportsEffectiveLevelsAndTaskFanout) {
  const int n = 256;
  Problem p(n);
  Matrix<double> Cserial(n, n);
  // Pinned to <2,2,2> on both sides: these tests assert the Morton spawn
  // mechanics, which a forced STRASSEN_ALGO run would reroute through the
  // family level (pin > env).
  ModgemmOptions sopt;
  sopt.algo = analysis::AlgoFamily::k222;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(), p.A.ld(),
                p.B.data(), p.B.ld(), 0.0, Cserial.data(), Cserial.ld(),
                sopt);

  parallel::ThreadPool pool(4);
  parallel::ParallelOptions popt;  // spawn_levels = kSpawnAuto
  popt.algo = analysis::AlgoFamily::k222;
  popt.min_task_flops = 1;         // fork at EVERY level
  ModgemmReport report;
  popt.report = &report;
  parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                     p.A.data(), p.A.ld(), p.B.data(), p.B.ld(), 0.0,
                     p.C.data(), p.C.ld(), popt);
  EXPECT_EQ(max_abs_diff<double>(p.C.view(), Cserial.view()), 0.0);

  // Auto mode reports the depth it resolved to -- with a 1-flop cutoff that
  // is the full plan depth -- and the task count covers the whole spawn
  // tree: sum_{l=1..d} 7^l product tasks.
  const int d = report.plan.depth;
  ASSERT_GE(d, 2);
  EXPECT_EQ(report.spawn_levels, d);
  std::uint64_t product_tasks = 0;
  for (int l = 1; l <= d; ++l) product_tasks += pow7(l);
  EXPECT_GE(report.tasks_executed, product_tasks);
  EXPECT_LE(report.steals, report.tasks_executed);
  std::uint64_t per_thread_total = 0;
  for (std::uint64_t t : report.per_thread_tasks) per_thread_total += t;
  EXPECT_EQ(per_thread_total, report.tasks_executed);
}

TEST(ObsParallel, AllocFailureDegradesIntoOneCoherentReport) {
  const int n = 256;
  Problem p(n);
  Matrix<double> Cserial(n, n);
  // Pinned to <2,2,2> on both sides: these tests assert the Morton spawn
  // mechanics, which a forced STRASSEN_ALGO run would reroute through the
  // family level (pin > env).
  ModgemmOptions sopt;
  sopt.algo = analysis::AlgoFamily::k222;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(), p.A.ld(),
                p.B.data(), p.B.ld(), 0.0, Cserial.data(), Cserial.ld(),
                sopt);

  parallel::ThreadPool pool(2);
  parallel::ParallelOptions popt;
  popt.algo = analysis::AlgoFamily::k222;
  ModgemmReport report;
  popt.report = &report;
  {
    // Kill the first Morton buffer: pmodgemm falls back to the serial
    // driver, which reports through the same GemmReport.
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, 1);
    parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                       p.A.data(), p.A.ld(), p.B.data(), p.B.ld(), 0.0,
                       p.C.data(), p.C.ld(), popt);
  }
  EXPECT_EQ(max_abs_diff<double>(p.C.view(), Cserial.view()), 0.0);

  EXPECT_STREQ(report.entry, "pmodgemm");
  EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocDirect);
  // The serial rerun's execution is fully accounted (one product, phases).
  EXPECT_EQ(report.products, 1);
  EXPECT_GT(report.compute_seconds, 0.0);
  EXPECT_GT(report.leaf_calls + report.fused_calls, 0u);
}

TEST(ObsParallel, InlinePoolStillCountsTasks) {
  const int n = 256;
  Problem p(n);
  parallel::ParallelOptions popt;
  ModgemmReport report;
  popt.report = &report;
  parallel::pmodgemm(nullptr, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                     p.A.data(), p.A.ld(), p.B.data(), p.B.ld(), 0.0,
                     p.C.data(), p.C.ld(), popt);
  EXPECT_TRUE(report.parallel);
  EXPECT_EQ(report.threads, 0);
  // The 7 products still run as (inline) tasks on the calling thread.
  EXPECT_GE(report.tasks_executed, 7u);
  ASSERT_FALSE(report.per_thread_tasks.empty());
  EXPECT_EQ(report.per_thread_tasks[0], report.tasks_executed);
}

}  // namespace
}  // namespace strassen
