// Unit tests for column-major <-> Morton conversion (src/layout/convert).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "layout/convert.hpp"
#include "layout/plan.hpp"

namespace strassen::layout {
namespace {

MortonLayout layout_for(int rows, int cols, int tr, int tc, int depth) {
  return MortonLayout{rows, cols, tr, tc, depth};
}

using Param = std::tuple<int, int, int, int, int>;  // rows, cols, tr, tc, depth
class ConvertRoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(ConvertRoundTrip, ToThenFromIsIdentity) {
  const auto [rows, cols, tr, tc, depth] = GetParam();
  const MortonLayout l = layout_for(rows, cols, tr, tc, depth);
  ASSERT_GE(l.padded_rows(), rows);
  ASSERT_GE(l.padded_cols(), cols);
  Rng rng(rows * 101 + cols);
  Matrix<double> src(rows, cols), dst(rows, cols);
  rng.fill_uniform(src.storage());
  std::vector<double> morton(static_cast<std::size_t>(l.elems()), -99.0);
  to_morton(l, morton.data(), Op::NoTrans, src.data(), src.ld());
  from_morton(l, morton.data(), 1.0, dst.data(), dst.ld(), 0.0);
  EXPECT_EQ(max_abs_diff<double>(src.view(), dst.view()), 0.0);
}

TEST_P(ConvertRoundTrip, ElementsLandAtMortonOffsets) {
  const auto [rows, cols, tr, tc, depth] = GetParam();
  const MortonLayout l = layout_for(rows, cols, tr, tc, depth);
  Rng rng(7);
  Matrix<double> src(rows, cols);
  rng.fill_uniform(src.storage());
  std::vector<double> morton(static_cast<std::size_t>(l.elems()));
  to_morton(l, morton.data(), Op::NoTrans, src.data(), src.ld());
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i)
      EXPECT_EQ(morton[morton_offset(l, i, j)], src.at(i, j))
          << "(" << i << "," << j << ")";
}

TEST_P(ConvertRoundTrip, PadRegionIsZero) {
  const auto [rows, cols, tr, tc, depth] = GetParam();
  const MortonLayout l = layout_for(rows, cols, tr, tc, depth);
  Rng rng(8);
  Matrix<double> src(rows, cols);
  rng.fill_uniform(src.storage(), 0.5, 1.0);  // strictly nonzero data
  std::vector<double> morton(static_cast<std::size_t>(l.elems()), -99.0);
  to_morton(l, morton.data(), Op::NoTrans, src.data(), src.ld());
  for (int i = 0; i < l.padded_rows(); ++i) {
    for (int j = 0; j < l.padded_cols(); ++j) {
      if (i >= rows || j >= cols) {
        EXPECT_EQ(morton[morton_offset(l, i, j)], 0.0)
            << "pad (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, ConvertRoundTrip,
    ::testing::Values(Param{8, 8, 4, 4, 1},        // exact, square
                      Param{7, 6, 4, 4, 1},        // padded both dims
                      Param{16, 16, 4, 4, 2},      // two levels
                      Param{100, 90, 13, 12, 3},   // odd tiles, deep
                      Param{513, 513, 33, 33, 4},  // the paper's showcase
                      Param{5, 5, 5, 5, 0},        // single tile
                      Param{1, 1, 1, 1, 2},        // tiny with padding
                      Param{33, 65, 17, 17, 2}));

TEST(ConvertTranspose, OpFoldsTransposeIntoTheGather) {
  const int rows = 30, cols = 20;  // logical (post-op) dims
  const MortonLayout l = layout_for(rows, cols, 8, 8, 2);
  Rng rng(9);
  Matrix<double> srcT(cols, rows);  // stores the transpose
  rng.fill_uniform(srcT.storage());
  std::vector<double> morton(static_cast<std::size_t>(l.elems()));
  to_morton(l, morton.data(), Op::Trans, srcT.data(), srcT.ld());
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i)
      EXPECT_EQ(morton[morton_offset(l, i, j)], srcT.at(j, i));
}

TEST(ConvertAlphaBeta, FromMortonFusesPostprocessing) {
  const int rows = 20, cols = 12;
  const MortonLayout l = layout_for(rows, cols, 10, 6, 1);
  Rng rng(10);
  Matrix<double> d(rows, cols), c(rows, cols), c0(rows, cols);
  rng.fill_uniform(d.storage());
  rng.fill_uniform(c.storage());
  copy_matrix<double>(c.view(), c0.view());
  std::vector<double> morton(static_cast<std::size_t>(l.elems()));
  to_morton(l, morton.data(), Op::NoTrans, d.data(), d.ld());
  const double alpha = 2.5, beta = -0.5;
  from_morton(l, morton.data(), alpha, c.data(), c.ld(), beta);
  // NEAR rather than exact: FMA contraction may round the library's
  // alpha*d + beta*c differently from this test expression.
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i)
      EXPECT_NEAR(c.at(i, j), alpha * d.at(i, j) + beta * c0.at(i, j), 1e-14);
}

TEST(ConvertAlphaBeta, BetaZeroDoesNotReadDestination) {
  const int rows = 10, cols = 10;
  const MortonLayout l = layout_for(rows, cols, 5, 5, 1);
  Matrix<double> d(rows, cols);
  Rng rng(11);
  rng.fill_uniform(d.storage());
  std::vector<double> morton(static_cast<std::size_t>(l.elems()));
  to_morton(l, morton.data(), Op::NoTrans, d.data(), d.ld());
  Matrix<double> c(rows, cols);
  for (auto& x : c.storage()) x = std::numeric_limits<double>::quiet_NaN();
  from_morton(l, morton.data(), 2.0, c.data(), c.ld(), 0.0);
  for (int j = 0; j < cols; ++j)
    for (int i = 0; i < rows; ++i) {
      EXPECT_FALSE(std::isnan(c.at(i, j)));
      EXPECT_DOUBLE_EQ(c.at(i, j), 2.0 * d.at(i, j));
    }
}

TEST(ConvertStrided, RespectsSourceAndDestinationLd) {
  const int rows = 24, cols = 18;
  const MortonLayout l = layout_for(rows, cols, 8, 6, 2);
  Rng rng(12);
  Matrix<double> src(rows, cols, rows + 9), dst(rows, cols, rows + 5);
  rng.fill_uniform(src.storage());
  std::vector<double> morton(static_cast<std::size_t>(l.elems()));
  to_morton(l, morton.data(), Op::NoTrans, src.data(), src.ld());
  from_morton(l, morton.data(), 1.0, dst.data(), dst.ld(), 0.0);
  EXPECT_EQ(max_abs_diff<double>(src.view(), dst.view()), 0.0);
}

TEST(ConvertValidation, RejectsLayoutThatDoesNotCoverTheMatrix) {
  // 8x8 tiles at depth 1 pad to 16x16 -- too small for 20 rows.
  const MortonLayout bad = layout_for(20, 12, 8, 8, 1);
  std::vector<double> morton(static_cast<std::size_t>(bad.elems()));
  Matrix<double> src(20, 12);
  EXPECT_THROW(to_morton(bad, morton.data(), Op::NoTrans, src.data(), 20),
               std::invalid_argument);
  EXPECT_THROW(from_morton(bad, morton.data(), 1.0, src.data(), 20, 0.0),
               std::invalid_argument);
}

TEST(ConvertStrided, RejectsTooSmallLd) {
  const MortonLayout l = layout_for(24, 18, 8, 6, 2);
  std::vector<double> morton(static_cast<std::size_t>(l.elems()));
  Matrix<double> src(24, 18);
  EXPECT_THROW(to_morton(l, morton.data(), Op::NoTrans, src.data(), 10),
               std::invalid_argument);
  EXPECT_THROW(from_morton(l, morton.data(), 1.0, src.data(), 10, 0.0),
               std::invalid_argument);
}

TEST(ConvertRange, TileRangesComposeToTheFullConversion) {
  // The parallel driver fans conversions out over tile ranges; converting
  // [0,k) and [k,end) separately must equal the one-shot conversion.
  const MortonLayout l = layout_for(50, 44, 9, 8, 3);
  Rng rng(21);
  Matrix<double> src(50, 44);
  rng.fill_uniform(src.storage());
  const int tiles = l.tiles_per_side() * l.tiles_per_side();
  std::vector<double> whole(static_cast<std::size_t>(l.elems()));
  std::vector<double> pieces(static_cast<std::size_t>(l.elems()), -5.0);
  to_morton(l, whole.data(), Op::NoTrans, src.data(), src.ld());
  RawMem mm;
  const int cut1 = tiles / 3, cut2 = 2 * tiles / 3;
  to_morton_range(mm, l, pieces.data(), Op::NoTrans, src.data(), src.ld(), 0,
                  cut1);
  to_morton_range(mm, l, pieces.data(), Op::NoTrans, src.data(), src.ld(),
                  cut1, cut2);
  to_morton_range(mm, l, pieces.data(), Op::NoTrans, src.data(), src.ld(),
                  cut2, tiles);
  EXPECT_EQ(whole, pieces);

  // And back out, also in pieces.
  Matrix<double> out(50, 44);
  from_morton_range(mm, l, whole.data(), 1.0, out.data(), out.ld(), 0.0, 0,
                    cut2);
  from_morton_range(mm, l, whole.data(), 1.0, out.data(), out.ld(), 0.0, cut2,
                    tiles);
  EXPECT_EQ(max_abs_diff<double>(src.view(), out.view()), 0.0);
}

TEST(ConvertRange, EmptyRangeIsANoOp) {
  const MortonLayout l = layout_for(8, 8, 4, 4, 1);
  Matrix<double> src(8, 8);
  std::vector<double> buf(static_cast<std::size_t>(l.elems()), 3.0);
  RawMem mm;
  to_morton_range(mm, l, buf.data(), Op::NoTrans, src.data(), src.ld(), 2, 2);
  for (double v : buf) EXPECT_EQ(v, 3.0);
}

TEST(ConvertPlanned, PlannerLayoutsRoundTrip) {
  // End-to-end with planner-derived layouts for the paper's sizes.
  for (int n : {150, 257, 513, 700}) {
    const GemmPlan p = plan_gemm(n, n, n);
    ASSERT_TRUE(p.feasible);
    const MortonLayout l{n, n, p.m.tile, p.k.tile, p.depth};
    Rng rng(n);
    Matrix<double> src(n, n), dst(n, n);
    rng.fill_uniform(src.storage());
    std::vector<double> morton(static_cast<std::size_t>(l.elems()));
    to_morton(l, morton.data(), Op::NoTrans, src.data(), src.ld());
    from_morton(l, morton.data(), 1.0, dst.data(), dst.ld(), 0.0);
    EXPECT_EQ(max_abs_diff<double>(src.view(), dst.view()), 0.0) << n;
  }
}

}  // namespace
}  // namespace strassen::layout
