// analysis/algo_verify.cpp -- build-time proofs of the shipped family
// tables, and the runtime diagnostics layer.

#include "analysis/algo_verify.hpp"

#include <sstream>

#include "analysis/schedule.hpp"

namespace strassen::analysis {

// ---- build-time proofs -----------------------------------------------------
// Every shipped <m,k,n> table is proved by the constexpr core: the bilinear
// identity over noncommuting blocks, coefficient discipline, no dead or
// empty products, admissible rank, and the declared staging peak.  Editing a
// table into something wrong fails the library build here, with the
// violation kind in the assert text.

static_assert(verify_family_core(kTable222).violation == FamilyViolation::kNone,
              "<2,2,2> family table failed symbolic verification");
static_assert(verify_family_core(kTable323).violation == FamilyViolation::kNone,
              "<3,2,3> family table failed symbolic verification");
static_assert(verify_family_core(kTable234).violation == FamilyViolation::kNone,
              "<2,3,4> family table failed symbolic verification");
static_assert(verify_family_core(kTable333).violation == FamilyViolation::kNone,
              "<3,3,3> family table failed symbolic verification");

// Rank and staging-peak pins: a table quietly gaining products (or losing
// its sub-trivial rank) is a perf regression the identity check alone would
// not catch.
static_assert(verify_family_core(kTable222).rank == 7);
static_assert(verify_family_core(kTable323).rank == 17);
static_assert(verify_family_core(kTable234).rank == 22);
static_assert(verify_family_core(kTable333).rank == 23);
static_assert(verify_family_core(kTable222).temp_peak == 3);
static_assert(verify_family_core(kTable323).temp_peak == 3);
static_assert(verify_family_core(kTable234).temp_peak == 3);
static_assert(verify_family_core(kTable333).temp_peak == 3);

// The <2,2,2> coefficient table is the Winograd schedule in another clothing:
// same 7 products, same 15 linear combinations on the A/B side as the step
// table's adds (the C side differs in accounting only -- the schedule's U
// chain reuses partial sums the flat gamma rows spell out).
static_assert(verify_family_core(kTable222).rank == kWinograd.step_count -
                  [] {
                    int linear = 0;
                    for (int i = 0; i < kWinograd.step_count; ++i)
                      linear += kWinograd.steps[i].kind != StepKind::kMul;
                    return linear;
                  }(),
              "<2,2,2> table and the Winograd schedule disagree on products");

namespace {

// Block label like "A[1][0]" / "B[0][2]" / "C[2][1]".
std::string blk(char side, int i, int j) {
  std::ostringstream os;
  os << side << "[" << i << "][" << j << "]";
  return os.str();
}

}  // namespace

std::vector<std::string> verify_family(const FamilyTable& t) {
  std::vector<std::string> out;
  // The constexpr core stops at the first violation; re-running it after
  // each report would find the same one, so the runtime layer repeats the
  // checks with full iteration.  Order and semantics mirror the core
  // exactly.
  if (t.bm < 1 || t.bm > kMaxBlockDim || t.bk < 1 || t.bk > kMaxBlockDim ||
      t.bn < 1 || t.bn > kMaxBlockDim || t.rank < 1 || t.rank > kMaxRank ||
      t.a == nullptr || t.b == nullptr || t.c == nullptr) {
    std::ostringstream os;
    os << "table '" << t.name << "': bad dims <" << t.bm << "," << t.bk << ","
       << t.bn << "> rank " << t.rank << " (bounds: block dim 1.."
       << kMaxBlockDim << ", rank 1.." << kMaxRank << ", arrays non-null)";
    out.push_back(os.str());
    return out;  // nothing below is safe to read
  }
  const int na = t.bm * t.bk;
  const int nb = t.bk * t.bn;
  const int nc = t.bm * t.bn;
  for (int r = 0; r < t.rank; ++r) {
    for (int s = 0; s < na; ++s) {
      const int v = t.a[r * na + s];
      if (v < -1 || v > 1) {
        std::ostringstream os;
        os << "product " << r + 1 << ": A coefficient " << v << " at "
           << blk('A', s / t.bk, s % t.bk) << " outside {-1,0,1}";
        out.push_back(os.str());
      }
    }
    for (int s = 0; s < nb; ++s) {
      const int v = t.b[r * nb + s];
      if (v < -1 || v > 1) {
        std::ostringstream os;
        os << "product " << r + 1 << ": B coefficient " << v << " at "
           << blk('B', s / t.bn, s % t.bn) << " outside {-1,0,1}";
        out.push_back(os.str());
      }
    }
  }
  for (int cb = 0; cb < nc; ++cb) {
    for (int r = 0; r < t.rank; ++r) {
      const int v = t.c[cb * t.rank + r];
      if (v < -1 || v > 1) {
        std::ostringstream os;
        os << blk('C', cb / t.bn, cb % t.bn) << ": accumulation coefficient "
           << v << " of product " << r + 1 << " outside {-1,0,1}";
        out.push_back(os.str());
      }
    }
  }
  if (!out.empty()) return out;  // identity over bad coefficients is noise
  for (int r = 0; r < t.rank; ++r) {
    int nza = 0, nzb = 0;
    for (int s = 0; s < na; ++s) nza += t.a[r * na + s] != 0;
    for (int s = 0; s < nb; ++s) nzb += t.b[r * nb + s] != 0;
    if (nza == 0 || nzb == 0) {
      std::ostringstream os;
      os << "product " << r + 1 << ": "
         << (nza == 0 ? "A" : "B") << " combination is empty";
      out.push_back(os.str());
    }
  }
  for (int i = 0; i < t.bm; ++i) {
    for (int j = 0; j < t.bn; ++j) {
      bool block_bad = false;
      for (int ai = 0; ai < t.bm && !block_bad; ++ai) {
        for (int al = 0; al < t.bk && !block_bad; ++al) {
          for (int bl = 0; bl < t.bk && !block_bad; ++bl) {
            for (int bj = 0; bj < t.bn && !block_bad; ++bj) {
              int acc = 0;
              for (int r = 0; r < t.rank; ++r) {
                const int g = t.c[(i * t.bn + j) * t.rank + r];
                if (g == 0) continue;
                acc += g * t.a[r * na + ai * t.bk + al] *
                       t.b[r * nb + bl * t.bn + bj];
              }
              const int want = (ai == i && bj == j && al == bl) ? 1 : 0;
              if (acc != want) {
                std::ostringstream os;
                os << blk('C', i, j) << ": accumulation row is wrong -- "
                   << "coefficient of " << blk('A', ai, al) << "."
                   << blk('B', bl, bj) << " is " << acc << ", want " << want;
                out.push_back(os.str());
                block_bad = true;  // one monomial per block keeps it readable
              }
            }
          }
        }
      }
    }
  }
  for (int r = 0; r < t.rank; ++r) {
    bool used = false;
    for (int cb = 0; cb < nc; ++cb) used = used || t.c[cb * t.rank + r] != 0;
    if (!used) {
      std::ostringstream os;
      os << "product " << r + 1 << ": dead -- no C row consumes it";
      out.push_back(os.str());
    }
  }
  if (t.rank > t.trivial_rank()) {
    std::ostringstream os;
    os << "table '" << t.name << "': rank " << t.rank
       << " exceeds the trivial rank " << t.trivial_rank();
    out.push_back(os.str());
  }
  const int need = family_required_temp_peak(t);
  if (t.declared_temp_peak != need) {
    std::ostringstream os;
    os << "table '" << t.name << "': declared temp peak "
       << t.declared_temp_peak << " but the interpreter stages " << need
       << " buffer" << (need == 1 ? "" : "s");
    out.push_back(os.str());
  }
  return out;
}

}  // namespace strassen::analysis
