// ablation_layout -- isolates the Morton LAYOUT contribution: MODGEMM
// (Strassen-Winograd over Morton order) vs DGEFMM (the same Winograd
// schedule over column-major with peeling) vs the conventional blocked
// algorithm, reported as absolute time and effective GFLOP/s.
//
// All three share the identical 4x4 leaf microkernel, so differences are
// layout + recursion-control effects, not kernel quality.  The companion
// cache view (simulated L1 miss ratios on the paper's geometry) shows WHERE
// the layout pays: in the leaf multiplies' locality.
#include <cstdio>

#include "baselines/frens_wise.hpp"
#include "common/stats.hpp"
#include "support/bench_common.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: data layout",
                "Same Winograd schedule + same leaf kernel: Morton order "
                "(MODGEMM) vs column-major (DGEFMM); conventional for scale");

  // frens-wise = fully recursive CONVENTIONAL multiply over Morton order
  // (paper S5.2): same layout as MODGEMM but no truncation and no Strassen.
  Table table({"n", "MODGEMM(s)", "DGEFMM(s)", "DGEMM(s)", "frens-wise(s)",
               "MOD miss%", "FMM miss%", "DGEMM miss%"});
  args.maybe_mirror(table, "ablation_layout");

  const bench::GemmFn modgemm = bench::modgemm_fn();
  const bench::GemmFn dgefmm = bench::dgefmm_fn();
  const bench::GemmFn conv = bench::conventional_fn();

  std::vector<int> sizes = args.quick ? std::vector<int>{300, 513}
                                      : std::vector<int>{200, 300, 400, 513,
                                                         700, 900};
  for (int n : sizes) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 13);
    const MeasureOptions opt = bench::protocol(args, n);
    const double t_mod = bench::time_gemm(modgemm, p, opt);
    const double t_fmm = bench::time_gemm(dgefmm, p, opt);
    const double t_conv = bench::time_gemm(conv, p, opt);
    const double t_fw = measure(
        [&] {
          baselines::frens_wise_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                     p.A.data(), p.A.ld(), p.B.data(),
                                     p.B.ld(), 0.0, p.C.data(), p.C.ld());
        },
        opt);
    // Cache view on the paper's simulated geometry (skip the largest sizes
    // in quick mode to bound runtime).
    const trace::TraceResult mod = trace::trace_multiply(
        trace::Impl::Modgemm, n, n, n, trace::paper_fig9_cache());
    const trace::TraceResult fmm = trace::trace_multiply(
        trace::Impl::Dgefmm, n, n, n, trace::paper_fig9_cache());
    const trace::TraceResult cv = trace::trace_multiply(
        trace::Impl::Conventional, n, n, n, trace::paper_fig9_cache());
    table.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(t_mod, 4), Table::num(t_fmm, 4),
                   Table::num(t_conv, 4), Table::num(t_fw, 4),
                   Table::num(100.0 * mod.l1_miss_ratio, 2),
                   Table::num(100.0 * fmm.l1_miss_ratio, 2),
                   Table::num(100.0 * cv.l1_miss_ratio, 2)});
  }
  table.print();
  std::printf(
      "\nExpected shape: MODGEMM's simulated miss ratio sits below DGEFMM's "
      "across the sweep (paper Fig. 9:\n2-6%% vs ~8%%), and both Strassen "
      "variants overtake the conventional algorithm in time as n grows.\n");
  return 0;
}
