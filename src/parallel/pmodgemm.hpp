// pmodgemm.hpp -- task-parallel MODGEMM.
//
// The seven Strassen-Winograd products of one recursion level are mutually
// independent: they read the input quadrants and the S/T operand sums, and
// only the U-chain combination afterwards has cross-product dependencies.
// This module exploits exactly that structure:
//
//   * at each of the top `spawn_levels` recursion levels, the 8 operand sums
//     are formed into dedicated temporaries (S1..S4, T1..T4), the 7 products
//     are submitted to a thread pool (each recursing independently, with its
//     own arena), and the quadrant combination runs after the join;
//   * below the spawn levels each task runs the serial Morton recursion of
//     core/winograd.hpp unchanged -- so the arithmetic performed (and hence
//     the result, bit for bit) is IDENTICAL to the serial algorithm;
//   * the layout conversions fan out over Morton tile ranges (each tile is
//     written independently).
//
// Memory: a spawn level keeps all 15 temporaries live at once
// (4 A-quadrants + 4 B-quadrants + 7 C-quadrants ~ 3.75x the quadrant set of
// the serial schedule) -- the classic space-for-parallelism trade.  Use
// spawn_levels = 1 (7-way) or 2 (49-way); more is rarely useful.
//
// Restrictions: RawMem only (the cache simulator is not thread-safe by
// design -- a traced run must be a deterministic serial address stream), and
// shapes must plan at a single depth (highly rectangular shapes fall back to
// the serial splitter path).
#pragma once

#include "common/matrix.hpp"
#include "core/modgemm.hpp"
#include "parallel/thread_pool.hpp"

namespace strassen::parallel {

struct ParallelOptions {
  layout::TileOptions tiles{};
  int spawn_levels = 1;  // recursion levels that fork (0 = fully serial)
  // Per-call observability (obs/report.hpp): phase timers, workspace
  // accounting, kernel telemetry plus the parallel section (tasks executed,
  // per-thread distribution, pool utilization).  Null = subsystem off.
  obs::GemmReport* report = nullptr;
};

// Bytes of spawn-level temporaries + per-task arenas pmodgemm needs beyond
// the Morton buffers themselves (informational; allocation is internal).
std::size_t pmodgemm_workspace_bytes(int tm, int tk, int tn, int depth,
                                     int spawn_levels, std::size_t elem_size);

// C <- alpha * op(A).op(B) + beta * C, using `pool` for parallelism.
// pool == nullptr runs the whole pipeline inline (useful for tests).
// Bit-for-bit identical to core::modgemm for every input.  Arguments are
// validated exactly like the serial entry point (same STRASSEN_REQUIRE
// checks and messages); if an allocation fails mid-call -- a buffer here or
// an arena inside a task, whose exception surfaces at TaskGroup::wait() --
// the call falls back to the serial driver's degradation ladder, so it
// still returns a correct C without partial writes.
void pmodgemm(ThreadPool* pool, Op opa, Op opb, int m, int n, int k,
              double alpha, const double* A, int lda, const double* B, int ldb,
              double beta, double* C, int ldc,
              const ParallelOptions& opt = {});

}  // namespace strassen::parallel
