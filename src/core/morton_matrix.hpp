// morton_matrix.hpp -- matrices kept natively in Morton order.
//
// The paper's Fig. 8 asks: what does MODGEMM cost if the matrices are
// ALREADY in Morton order, i.e. when an application keeps its working set in
// the internal layout across many multiplies and pays conversion only at its
// own boundaries?  MortonMatrix is that API: an owning Morton-format matrix
// plus a multiply that runs the Winograd core directly, with no per-call
// conversion.
//
// Layout compatibility: multiplying A (m x k) by B (k x n) requires the two
// operands to agree on the k-dimension tile and on the recursion depth.
// plan_morton_product() derives a compatible (A, B, C) layout triple from the
// problem shape; matrices built from the same triple compose.
#pragma once

#include <cstddef>

#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/matrix.hpp"
#include "layout/convert.hpp"
#include "layout/morton.hpp"
#include "layout/plan.hpp"

namespace strassen::core {

// Compatible layouts for C = A . B.
struct MortonProductPlan {
  layout::MortonLayout a;
  layout::MortonLayout b;
  layout::MortonLayout c;
  int depth = 0;
};

// Plans layouts for an (m x k) by (k x n) product.  Throws if the shape is
// too rectangular for a single-depth plan (use the modgemm interface, which
// splits, for such shapes) or too small to benefit (min dim <= threshold).
MortonProductPlan plan_morton_product(int m, int k, int n,
                                      const layout::TileOptions& opt = {});

class MortonMatrix {
 public:
  MortonMatrix() = default;
  // Allocates a zeroed Morton buffer with the given layout.
  explicit MortonMatrix(const layout::MortonLayout& layout);

  // Builds from a column-major view (converts; op folds a transpose).
  static MortonMatrix from_colmajor(const layout::MortonLayout& layout,
                                    ConstMatrixView<double> src,
                                    Op op = Op::NoTrans);

  int rows() const { return layout_.rows; }
  int cols() const { return layout_.cols; }
  const layout::MortonLayout& layout() const { return layout_; }
  double* data() { return buffer_.as<double>(); }
  const double* data() const { return buffer_.as<double>(); }
  std::size_t elems() const { return static_cast<std::size_t>(layout_.elems()); }

  // Element access by logical (i, j); O(1) Morton index arithmetic.
  double at(int i, int j) const;
  void set(int i, int j, double v);

  // Converts back to column-major: dst <- alpha * this + beta * dst.
  void to_colmajor(MatrixView<double> dst, double alpha = 1.0,
                   double beta = 0.0) const;

 private:
  layout::MortonLayout layout_{};
  AlignedBuffer buffer_;
};

// C = A . B entirely in Morton order (no conversions).  Layouts must be
// compatible (same depth; A.cols tiling == B.rows tiling); verified with
// STRASSEN_REQUIRE.  Workspace is allocated internally per call.
void multiply(const MortonMatrix& A, const MortonMatrix& B, MortonMatrix& C);

// Same, reusing a caller-provided arena (for benchmark loops that must not
// allocate).  The arena is reset (marked/popped) around the call.
void multiply(const MortonMatrix& A, const MortonMatrix& B, MortonMatrix& C,
              Arena& arena);

// Bytes of workspace multiply() needs for this product plan.
std::size_t multiply_workspace_bytes(const MortonProductPlan& plan);

}  // namespace strassen::core
