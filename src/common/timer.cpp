#include "common/timer.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace strassen {

MeasureOptions paper_protocol(int n, int threshold) {
  MeasureOptions opt;
  opt.outer_reps = 3;
  opt.inner_reps = (n < threshold) ? 10 : 1;
  opt.warmup = 1;
  return opt;
}

double measure(const std::function<void()>& fn, const MeasureOptions& opt) {
  STRASSEN_REQUIRE(opt.outer_reps >= 1 && opt.inner_reps >= 1,
                   "measurement repetitions must be positive");
  for (int w = 0; w < opt.warmup; ++w) fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < opt.outer_reps; ++rep) {
    WallTimer t;
    for (int i = 0; i < opt.inner_reps; ++i) fn();
    best = std::min(best, t.seconds() / opt.inner_reps);
  }
  return best;
}

}  // namespace strassen
