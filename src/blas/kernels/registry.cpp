// kernels/registry.cpp -- runtime CPU dispatch for the leaf-kernel engine.
//
// Selection order (first hit wins):
//   1. STRASSEN_KERNEL environment variable, parsed once on first use.
//      Unavailable or unknown values degrade to the scalar table -- the
//      portable guarantee -- never to an illegal-instruction crash.
//   2. CPU probe: the best compiled-in kind the host can execute
//      (avx2 > neon > scalar).
//
// The active kind is an atomic, so the per-leaf-call read is a few
// nanoseconds against the O(T^3) work it dispatches; setters are for
// startup, tests (ScopedKernel) and ModgemmOptions::kernel pins.
#include "blas/kernels/registry.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.hpp"

#if defined(__linux__) && defined(__arm__)
#include <sys/auxv.h>
#endif

namespace strassen::blas::kernels {

namespace {

Kind detect_default(Avx2Variant* variant);

struct State {
  std::atomic<Kind> active;
  std::atomic<Avx2Variant> variant;
  State() {
    Avx2Variant v = Avx2Variant::kAuto;
    active.store(detect_default(&v), std::memory_order_relaxed);
    variant.store(v, std::memory_order_relaxed);
  }
};

bool table_compiled(Kind kind) { return kernel_table(kind) != nullptr; }

// Parses STRASSEN_KERNEL for the NOEXCEPT dispatch chain.  Returns kAuto for
// unset/empty, kScalar for any value that names nothing runnable (unknown
// strings included: an operator typo must not silently re-enable SIMD).  The
// loud rejection of unknown values lives in require_valid_kernel_env(),
// which the gemm entry points call from a throwing context.  May also pin
// the AVX2 variant.
Kind parse_env(Avx2Variant* variant) {
  const char* e = std::getenv("STRASSEN_KERNEL");
  if (e == nullptr || *e == '\0') return Kind::kAuto;
  if (std::strcmp(e, "scalar") == 0) return Kind::kScalar;
  if (std::strcmp(e, "avx2") == 0) return Kind::kAvx2;
  if (std::strcmp(e, "avx2-8x6") == 0) {
    *variant = Avx2Variant::k8x6;
    return Kind::kAvx2;
  }
  if (std::strcmp(e, "avx2-4x8") == 0) {
    *variant = Avx2Variant::k4x8;
    return Kind::kAvx2;
  }
  if (std::strcmp(e, "neon") == 0) return Kind::kNeon;
  return Kind::kScalar;
}

Kind best_available() {
  if (is_available(Kind::kAvx2)) return Kind::kAvx2;
  if (is_available(Kind::kNeon)) return Kind::kNeon;
  return Kind::kScalar;
}

// The default selection: environment override, else probe.
Kind detect_default(Avx2Variant* variant) {
  const Kind env = parse_env(variant);
  if (env == Kind::kAuto) return best_available();
  return is_available(env) ? env : Kind::kScalar;
}

State& state() {
  static State s;
  return s;
}

}  // namespace

bool cpu_supports(Kind kind) noexcept {
  switch (kind) {
    case Kind::kAuto:
    case Kind::kScalar:
      return true;
    case Kind::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Kind::kNeon:
#if defined(__aarch64__)
      return true;  // Advanced SIMD is architecturally mandatory on AArch64
#elif defined(__linux__) && defined(__arm__) && defined(HWCAP_NEON)
      return (getauxval(AT_HWCAP) & HWCAP_NEON) != 0;
#else
      return false;
#endif
  }
  return false;
}

const LeafKernels* kernel_table(Kind kind) noexcept {
  switch (kind) {
    case Kind::kScalar:
      return &detail::scalar_table();
    case Kind::kAvx2:
      return detail::avx2_table();
    case Kind::kNeon:
      return detail::neon_table();
    case Kind::kAuto:
      break;
  }
  return nullptr;
}

bool is_available(Kind kind) noexcept {
  return kind != Kind::kAuto && table_compiled(kind) && cpu_supports(kind);
}

std::vector<Kind> compiled_kernels() {
  std::vector<Kind> out;
  for (Kind k : {Kind::kScalar, Kind::kAvx2, Kind::kNeon})
    if (table_compiled(k)) out.push_back(k);
  return out;
}

std::vector<Kind> available_kernels() {
  std::vector<Kind> out;
  for (Kind k : {Kind::kScalar, Kind::kAvx2, Kind::kNeon})
    if (is_available(k)) out.push_back(k);
  return out;
}

Kind active_kernel() noexcept {
  return state().active.load(std::memory_order_relaxed);
}

void set_active_kernel(Kind kind) noexcept {
  if (kind == Kind::kAuto) {
    Avx2Variant variant = Avx2Variant::kAuto;
    const Kind def = detect_default(&variant);
    state().variant.store(variant, std::memory_order_relaxed);
    state().active.store(def, std::memory_order_relaxed);
    return;
  }
  if (!is_available(kind)) kind = Kind::kScalar;
  state().active.store(kind, std::memory_order_relaxed);
}

Avx2Variant avx2_variant() noexcept {
  return state().variant.load(std::memory_order_relaxed);
}

void set_avx2_variant(Avx2Variant v) noexcept {
  state().variant.store(v, std::memory_order_relaxed);
}

const LeafKernels& active() noexcept {
  const LeafKernels* t = kernel_table(active_kernel());
  return t != nullptr ? *t : detail::scalar_table();
}

Kind parse_kernel_name(const char* value, Avx2Variant* variant) {
  STRASSEN_REQUIRE(value != nullptr, "STRASSEN_KERNEL: null value");
  if (*value == '\0' || std::strcmp(value, "auto") == 0) return Kind::kAuto;
  if (std::strcmp(value, "scalar") == 0) return Kind::kScalar;
  if (std::strcmp(value, "avx2") == 0) return Kind::kAvx2;
  if (std::strcmp(value, "avx2-8x6") == 0) {
    if (variant != nullptr) *variant = Avx2Variant::k8x6;
    return Kind::kAvx2;
  }
  if (std::strcmp(value, "avx2-4x8") == 0) {
    if (variant != nullptr) *variant = Avx2Variant::k4x8;
    return Kind::kAvx2;
  }
  if (std::strcmp(value, "neon") == 0) return Kind::kNeon;
  STRASSEN_REQUIRE(false, "STRASSEN_KERNEL: unknown kernel \""
                              << value
                              << "\" (expected scalar, avx2, avx2-8x6, "
                                 "avx2-4x8 or neon)");
  return Kind::kAuto;  // unreachable
}

void require_valid_kernel_env() {
  // Re-read on every call (getenv is cheap against the O(n^3) work that
  // follows, and tests flip the variable mid-process): no gemm entry runs
  // under a typo'd override.
  const char* e = std::getenv("STRASSEN_KERNEL");
  if (e != nullptr) (void)parse_kernel_name(e, nullptr);
}

const char* kind_name(Kind kind) noexcept {
  switch (kind) {
    case Kind::kAuto:
      return "auto";
    case Kind::kScalar:
      return "scalar";
    case Kind::kAvx2:
      return "avx2";
    case Kind::kNeon:
      return "neon";
  }
  return "unknown";
}

const char* variant_name(Avx2Variant v) noexcept {
  switch (v) {
    case Avx2Variant::kAuto:
      return "auto";
    case Avx2Variant::k8x6:
      return "8x6";
    case Avx2Variant::k4x8:
      return "4x8";
  }
  return "unknown";
}

// ---- hot-path dispatch thunks (declared in kernels.hpp / level1.hpp) ------

// Scalar-active gemm_leaf calls never reach the engine: the template falls
// through to the caller's local gemm_leaf_generic instantiation, which is
// what keeps STRASSEN_KERNEL=scalar bit-identical to the pre-engine library
// (the centralized scalar.cpp instantiation of the same template may round
// differently under FMA contraction).
bool simd_gemm_active() noexcept {
  return active_kernel() != Kind::kScalar;
}

void dispatch_gemm_leaf(int m, int n, int k, const double* A, int lda,
                        const double* B, int ldb, double* C, int ldc,
                        LeafMode mode, double alpha) noexcept {
  active().gemm(m, n, k, A, lda, B, ldb, C, ldc, mode, alpha);
}

void dispatch_vadd(std::size_t n, double* dst, const double* a,
                   const double* b) noexcept {
  active().vadd(n, dst, a, b);
}

void dispatch_vsub(std::size_t n, double* dst, const double* a,
                   const double* b) noexcept {
  active().vsub(n, dst, a, b);
}

void dispatch_vadd_inplace(std::size_t n, double* dst, const double* a) noexcept {
  active().vadd_inplace(n, dst, a);
}

void dispatch_vsub_inplace(std::size_t n, double* dst, const double* a) noexcept {
  active().vsub_inplace(n, dst, a);
}

}  // namespace strassen::blas::kernels
