#include "common/matrix.hpp"

#include <cstdio>
#include <sstream>

namespace strassen {

std::string to_string(ConstMatrixView<double> m, int precision) {
  std::ostringstream os;
  char buf[64];
  for (int i = 0; i < m.rows; ++i) {
    for (int j = 0; j < m.cols; ++j) {
      std::snprintf(buf, sizeof(buf), "% .*f", precision, m.at(i, j));
      os << buf << (j + 1 < m.cols ? " " : "");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace strassen
