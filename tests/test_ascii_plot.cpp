// Unit tests for the terminal chart renderer (src/common/ascii_plot).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/ascii_plot.hpp"

namespace strassen {
namespace {

std::vector<double> iota(int n) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(AsciiPlot, ContainsMarkersAxisAndLegend) {
  PlotSeries s{"ratio", '*', {1.0, 2.0, 3.0, 2.0, 1.0}};
  const std::string out = render_plot(iota(5), {s});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("* = ratio"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiPlot, ExtremesLandOnTopAndBottomRows) {
  PlotOptions opt;
  opt.width = 20;
  opt.height = 5;
  PlotSeries s{"v", 'o', {0.0, 10.0}};
  const std::string out = render_plot({0.0, 1.0}, {s}, opt);
  // Split into lines; the first plot row must contain the max marker, the
  // last plot row (height-1) the min marker.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (true) {
    const std::size_t nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 5u);
  EXPECT_NE(lines[0].find('o'), std::string::npos);
  EXPECT_NE(lines[4].find('o'), std::string::npos);
}

TEST(AsciiPlot, MultipleSeriesKeepTheirMarkers) {
  PlotSeries a{"a", 'M', {1, 1, 1}};
  PlotSeries b{"b", 'D', {3, 3, 3}};
  const std::string out = render_plot(iota(3), {a, b});
  EXPECT_NE(out.find('M'), std::string::npos);
  EXPECT_NE(out.find('D'), std::string::npos);
}

TEST(AsciiPlot, ReferenceLineDrawn) {
  PlotOptions opt;
  opt.reference = 1.0;
  PlotSeries s{"x", '*', {0.5, 1.5}};
  const std::string out = render_plot({0.0, 1.0}, {s}, opt);
  // A run of dashes from the reference line (longer than any label).
  EXPECT_NE(out.find("--------"), std::string::npos);
}

TEST(AsciiPlot, FlatSeriesDoesNotDivideByZero) {
  PlotSeries s{"flat", '*', {2.0, 2.0, 2.0}};
  const std::string out = render_plot(iota(3), {s});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, NansAreSkipped) {
  PlotSeries s{"gap", '*',
               {1.0, std::numeric_limits<double>::quiet_NaN(), 2.0}};
  const std::string out = render_plot(iota(3), {s});
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, FixedRangeClipsOutliers) {
  PlotOptions opt;
  opt.fix_range = true;
  opt.y_min = 0.0;
  opt.y_max = 1.0;
  PlotSeries s{"v", '*', {0.5, 100.0}};
  const std::string out = render_plot({0.0, 1.0}, {s}, opt);
  // Exactly one marker: the outlier is clipped away.
  EXPECT_EQ(std::count(out.begin(), out.end(), '*'), 2);  // plot + legend
}

TEST(AsciiPlot, ValidatesInputs) {
  PlotSeries s{"v", '*', {1.0}};
  EXPECT_THROW(render_plot({}, {s}), std::invalid_argument);
  EXPECT_THROW(render_plot({1.0, 2.0}, {s}), std::invalid_argument);
  PlotOptions tiny;
  tiny.width = 2;
  EXPECT_THROW(render_plot({1.0}, {PlotSeries{"v", '*', {1.0}}}, tiny),
               std::invalid_argument);
}

}  // namespace
}  // namespace strassen
