// Unit tests for Morton index arithmetic (src/layout/morton).
#include <gtest/gtest.h>

#include <set>

#include "layout/morton.hpp"

namespace strassen::layout {
namespace {

TEST(MortonSpread, SpreadsBitsToEvenPositions) {
  EXPECT_EQ(morton_spread(0u), 0u);
  EXPECT_EQ(morton_spread(1u), 1u);
  EXPECT_EQ(morton_spread(2u), 4u);
  EXPECT_EQ(morton_spread(3u), 5u);
  EXPECT_EQ(morton_spread(0xFFFFu), 0x55555555u);
}

TEST(MortonSpread, CompactInvertsSpread) {
  for (std::uint32_t x = 0; x < 4096; ++x)
    EXPECT_EQ(morton_compact(morton_spread(x)), x);
}

TEST(MortonInterleave, QuadrantOrderIsNwNeSwSe) {
  // NW, NE, SW, SE at the top level of a 2x2 tile grid.
  EXPECT_EQ(morton_interleave(0, 0), 0u);
  EXPECT_EQ(morton_interleave(0, 1), 1u);
  EXPECT_EQ(morton_interleave(1, 0), 2u);
  EXPECT_EQ(morton_interleave(1, 1), 3u);
}

TEST(MortonInterleave, MatchesPaperFigure1) {
  // Figure 1 of the paper shows the tile numbering for an 8x8 tile grid.
  // Spot-check its distinctive entries (row, col) -> index.
  EXPECT_EQ(morton_interleave(0, 2), 4u);
  EXPECT_EQ(morton_interleave(0, 3), 5u);
  EXPECT_EQ(morton_interleave(1, 2), 6u);
  EXPECT_EQ(morton_interleave(2, 0), 8u);
  EXPECT_EQ(morton_interleave(3, 3), 15u);
  EXPECT_EQ(morton_interleave(0, 4), 16u);
  EXPECT_EQ(morton_interleave(0, 6), 20u);
  EXPECT_EQ(morton_interleave(2, 4), 24u);
  EXPECT_EQ(morton_interleave(4, 0), 32u);
  EXPECT_EQ(morton_interleave(4, 4), 48u);
  EXPECT_EQ(morton_interleave(7, 7), 63u);
  EXPECT_EQ(morton_interleave(6, 1), 41u);
}

TEST(MortonInterleave, RoundTrips) {
  for (std::uint32_t r = 0; r < 64; ++r)
    for (std::uint32_t c = 0; c < 64; ++c) {
      std::uint32_t rr, cc;
      morton_deinterleave(morton_interleave(r, c), rr, cc);
      EXPECT_EQ(rr, r);
      EXPECT_EQ(cc, c);
    }
}

TEST(MortonInterleave, IsABijectionOnTheGrid) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t r = 0; r < 16; ++r)
    for (std::uint32_t c = 0; c < 16; ++c) seen.insert(morton_interleave(r, c));
  EXPECT_EQ(seen.size(), 256u);
  EXPECT_EQ(*seen.rbegin(), 255u);
}

TEST(MortonLayout, DimensionArithmetic) {
  MortonLayout l{100, 90, 13, 12, 3};
  EXPECT_EQ(l.padded_rows(), 13 * 8);
  EXPECT_EQ(l.padded_cols(), 12 * 8);
  EXPECT_EQ(l.tiles_per_side(), 8);
  EXPECT_EQ(l.tile_elems(), 13 * 12);
  EXPECT_EQ(l.elems(), std::int64_t{13} * 12 * 64);
}

TEST(MortonOffset, DepthZeroIsColumnMajor) {
  MortonLayout l{5, 7, 5, 7, 0};
  for (int j = 0; j < 7; ++j)
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(morton_offset(l, i, j), j * 5 + i);
}

TEST(MortonOffset, QuadrantsAreContiguousBlocks) {
  // 2x2 tiles of 3x3: NW occupies [0,9), NE [9,18), SW [18,27), SE [27,36).
  MortonLayout l{6, 6, 3, 3, 1};
  EXPECT_EQ(morton_offset(l, 0, 0), 0);
  EXPECT_EQ(morton_offset(l, 2, 2), 8);
  EXPECT_EQ(morton_offset(l, 0, 3), 9);
  EXPECT_EQ(morton_offset(l, 3, 0), 18);
  EXPECT_EQ(morton_offset(l, 3, 3), 27);
  EXPECT_EQ(morton_offset(l, 5, 5), 35);
}

TEST(MortonOffset, WithinTileIsColumnMajor) {
  MortonLayout l{8, 8, 4, 4, 1};
  // Element (1, 2) of the NW tile: column-major offset 2*4 + 1.
  EXPECT_EQ(morton_offset(l, 1, 2), 9);
  // Element (1, 2) of the SE tile (rows 4..7, cols 4..7): base 3*16.
  EXPECT_EQ(morton_offset(l, 5, 6), 48 + 9);
}

TEST(MortonOffset, IsABijectionOverThePaddedMatrix) {
  MortonLayout l{20, 24, 5, 6, 2};
  std::set<std::int64_t> seen;
  for (int i = 0; i < l.padded_rows(); ++i)
    for (int j = 0; j < l.padded_cols(); ++j) {
      const std::int64_t off = morton_offset(l, i, j);
      EXPECT_GE(off, 0);
      EXPECT_LT(off, l.elems());
      seen.insert(off);
    }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), l.elems());
}

}  // namespace
}  // namespace strassen::layout
