#!/usr/bin/env python3
"""Generates and proves the <m,k,n> fast-algorithm coefficient tables.

This is the provenance tool for the constexpr tables in
src/analysis/algo_family.hpp: every table the library ships was emitted by
this script, which constructs the algorithm, PROVES it exactly over the
integers (the bilinear identity sum_r gamma[ij][r] * (a_r . b_r) ==
sum_l A[i][l] B[l][j], checked monomial by monomial), and prints the C++
initializers.  The C++ side re-proves the same identity in a constexpr
verifier (src/analysis/algo_verify.hpp), so a transcription error cannot
survive the build either.

Constructions (all coefficients in {-1, 0, +1}):

  <2,2,2>  Strassen-Winograd, 7 products (the paper's schedule, flattened
           to coefficient form; gammas solved from the product identity).
  <3,2,3>  17 products: Strassen-Winograd on the rows{0,1} x cols{0,1}
           2x2x2 sub-problem, trivial products for the third row/column
           strips (vs 18 trivial).
  <2,3,4>  22 products: k split 2+1, n split 2+2 -- two Strassen-Winograd
           <2,2,2> sub-calls over the k-major block plus a rank-8 outer
           product for the k-tail (vs 24 trivial).
  <3,3,3>  23 products: Laderman's 1976 algorithm (vs 27 trivial).

Usage: python3 tools/gen_algo_tables.py [--cpp]
Exits nonzero if any constructed table fails the exact identity proof.
"""

import itertools
import sys
from fractions import Fraction


def mono_index(i, l, lp, j, bm, bk, bn):
    """Index of monomial a[i][l] * b[lp][j] in the flattened tensor space."""
    return ((i * bk + l) * bk + lp) * bn + j


def product_vector(avec, bvec, bm, bk, bn):
    """Expands (sum avec * A_blocks)(sum bvec * B_blocks) into monomials."""
    dim = bm * bk * bk * bn
    v = [0] * dim
    for i in range(bm):
        for l in range(bk):
            ca = avec[i * bk + l]
            if ca == 0:
                continue
            for lp in range(bk):
                for j in range(bn):
                    cb = bvec[lp * bn + j]
                    if cb == 0:
                        continue
                    v[mono_index(i, l, lp, j, bm, bk, bn)] += ca * cb
    return v


def target_vector(i, j, bm, bk, bn):
    """C[i][j] = sum_l A[i][l] B[l][j] in monomial space."""
    dim = bm * bk * bk * bn
    t = [0] * dim
    for l in range(bk):
        t[mono_index(i, l, l, j, bm, bk, bn)] = 1
    return t


def solve_gammas(products, bm, bk, bn):
    """Solves gamma rows exactly; returns (bm*bn) x rank integer matrix or
    None if some C block's target is not in the products' span (or needs
    non-integer coefficients)."""
    rank = len(products)
    cols = [product_vector(a, b, bm, bk, bn) for a, b in products]
    dim = bm * bk * bk * bn
    gammas = []
    for i in range(bm):
        for j in range(bn):
            t = target_vector(i, j, bm, bk, bn)
            # Gaussian elimination over Q on the dim x rank system cols.x = t.
            m = [[Fraction(cols[r][d]) for r in range(rank)] + [Fraction(t[d])]
                 for d in range(dim)]
            piv_rows, piv_cols = [], []
            rr = 0
            for c in range(rank):
                pr = next((r for r in range(rr, dim) if m[r][c] != 0), None)
                if pr is None:
                    continue
                m[rr], m[pr] = m[pr], m[rr]
                inv = 1 / m[rr][c]
                m[rr] = [x * inv for x in m[rr]]
                for r in range(dim):
                    if r != rr and m[r][c] != 0:
                        f = m[r][c]
                        m[r] = [x - f * y for x, y in zip(m[r], m[rr])]
                piv_rows.append(rr)
                piv_cols.append(c)
                rr += 1
            # Inconsistent system -> no solution.
            for r in range(rr, dim):
                if m[r][rank] != 0:
                    return None
            x = [Fraction(0)] * rank
            for pr, pc in zip(piv_rows, piv_cols):
                x[pc] = m[pr][rank]
            if any(v.denominator != 1 for v in x):
                return None
            gammas.append([int(v) for v in x])
    return gammas


def prove(name, bm, bk, bn, products, gammas):
    """Exact monomial-level proof of the bilinear identity."""
    rank = len(products)
    ok = True
    for i in range(bm):
        for j in range(bn):
            acc = [0] * (bm * bk * bk * bn)
            row = gammas[i * bn + j]
            for r in range(rank):
                if row[r] == 0:
                    continue
                pv = product_vector(*products[r], bm, bk, bn)
                acc = [x + row[r] * y for x, y in zip(acc, pv)]
            if acc != target_vector(i, j, bm, bk, bn):
                print(f"FAIL {name}: C[{i}][{j}] identity does not hold")
                ok = False
    coeff_ok = all(
        all(c in (-1, 0, 1) for c in a) and all(c in (-1, 0, 1) for c in b)
        for a, b in products) and all(
            c in (-1, 0, 1) for row in gammas for c in row)
    if not coeff_ok:
        print(f"FAIL {name}: coefficient outside {{-1,0,1}}")
        ok = False
    return ok


# ---- <2,2,2>: Strassen-Winograd -------------------------------------------

def winograd_222_products():
    """The 7 Winograd products in (a-vec, b-vec) coefficient form.
    A block order: A11 A12 A21 A22; B block order: B11 B12 B21 B22."""
    A11, A12, A21, A22 = range(4)
    B11, B12, B21, B22 = range(4)

    def av(**kw):
        v = [0] * 4
        for k, c in kw.items():
            v[{"a11": A11, "a12": A12, "a21": A21, "a22": A22}[k]] = c
        return v

    def bv(**kw):
        v = [0] * 4
        for k, c in kw.items():
            v[{"b11": B11, "b12": B12, "b21": B21, "b22": B22}[k]] = c
        return v

    return [
        (av(a11=1), bv(b11=1)),                       # P1 = A11 B11
        (av(a12=1), bv(b21=1)),                       # P2 = A12 B21
        (av(a21=1, a22=1), bv(b12=1, b11=-1)),        # P3 = S1 T1
        (av(a21=1, a22=1, a11=-1),
         bv(b22=1, b12=-1, b11=1)),                   # P4 = S2 T2
        (av(a11=1, a21=-1), bv(b22=1, b12=-1)),       # P5 = S3 T3
        (av(a11=1, a12=1, a21=-1, a22=-1), bv(b22=1)),  # P6 = S4 B22
        (av(a22=1), bv(b22=1, b12=-1, b11=1, b21=-1)),  # P7 = A22 T4
    ]


# ---- composition helpers ---------------------------------------------------

def embed(products, gammas, sub_bm, sub_bk, sub_bn, bm, bk, bn,
          rows, ks, cols):
    """Embeds a <sub_bm,sub_bk,sub_bn> algorithm over the block subsets
    rows/ks/cols of the full <bm,bk,bn> grid.  Returns (products, partial
    gamma rows keyed by (i, j) of the full grid)."""
    out_products = []
    for avec, bvec in products:
        fa = [0] * (bm * bk)
        for si, i in enumerate(rows):
            for sl, l in enumerate(ks):
                fa[i * bk + l] = avec[si * sub_bk + sl]
        fb = [0] * (bk * bn)
        for sl, l in enumerate(ks):
            for sj, j in enumerate(cols):
                fb[l * bn + j] = bvec[sl * sub_bn + sj]
        out_products.append((fa, fb))
    out_gammas = {}
    for si, i in enumerate(rows):
        for sj, j in enumerate(cols):
            out_gammas[(i, j)] = gammas[si * sub_bn + sj]
    return out_products, out_gammas


def trivial_products(bm, bk, bn, rows, ks, cols):
    """The naive algorithm over a block subset."""
    products = []
    gammas = {(i, j): [] for i in rows for j in cols}
    for i in rows:
        for j in cols:
            row = []
            for l in ks:
                fa = [0] * (bm * bk)
                fa[i * bk + l] = 1
                fb = [0] * (bk * bn)
                fb[l * bn + j] = 1
                products.append((fa, fb))
            for (pi, pj) in gammas:
                gammas[(pi, pj)].extend(
                    [1] * len(ks) if (pi, pj) == (i, j) else [0] * len(ks))
    return products, gammas


def compose(bm, bk, bn, pieces):
    """Concatenates sub-algorithm pieces (each covering disjoint C blocks on
    a common k range, or the same C blocks on disjoint k ranges -- any
    partition of the (i, l, j) index space) into one flat table."""
    products = []
    gamma_rows = {(i, j): [] for i in range(bm) for j in range(bn)}
    for piece_products, piece_gammas in pieces:
        width = len(piece_products)
        products.extend(piece_products)
        for key in gamma_rows:
            gamma_rows[key].extend(piece_gammas.get(key, [0] * width))
    gammas = [gamma_rows[(i, j)] for i in range(bm) for j in range(bn)]
    return products, gammas


# ---- <3,2,3>: 17 products --------------------------------------------------

def table_323():
    bm, bk, bn = 3, 2, 3
    w = winograd_222_products()
    wg = solve_gammas(w, 2, 2, 2)
    assert wg is not None
    pieces = [
        embed(w, wg, 2, 2, 2, bm, bk, bn, rows=[0, 1], ks=[0, 1],
              cols=[0, 1]),
        trivial_products(bm, bk, bn, rows=[0, 1], ks=[0, 1], cols=[2]),
        trivial_products(bm, bk, bn, rows=[2], ks=[0, 1], cols=[0, 1, 2]),
    ]
    return (bm, bk, bn) + compose(bm, bk, bn, pieces)


# ---- <2,3,4>: 22 products --------------------------------------------------

def table_234():
    bm, bk, bn = 2, 3, 4
    w = winograd_222_products()
    wg = solve_gammas(w, 2, 2, 2)
    assert wg is not None
    pieces = [
        # A[:, 0:2] . B[0:2, 0:2] and A[:, 0:2] . B[0:2, 2:4]: two Winograds.
        embed(w, wg, 2, 2, 2, bm, bk, bn, rows=[0, 1], ks=[0, 1],
              cols=[0, 1]),
        embed(w, wg, 2, 2, 2, bm, bk, bn, rows=[0, 1], ks=[0, 1],
              cols=[2, 3]),
        # k-tail: A[:, 2] outer B[2, :], rank 8.
        trivial_products(bm, bk, bn, rows=[0, 1], ks=[2], cols=[0, 1, 2, 3]),
    ]
    return (bm, bk, bn) + compose(bm, bk, bn, pieces)


# ---- <3,3,3>: Laderman, 23 products ----------------------------------------

def table_333():
    bm, bk, bn = 3, 3, 3

    def av(spec):
        v = [0] * 9
        for sign, i, l in spec:
            v[(i - 1) * 3 + (l - 1)] = sign
        return v

    def bv(spec):
        v = [0] * 9
        for sign, l, j in spec:
            v[(l - 1) * 3 + (j - 1)] = sign
        return v

    # Laderman (1976), 23 multiplications, coefficients +-1.
    products = [
        (av([(1, 1, 1), (1, 1, 2), (1, 1, 3), (-1, 2, 1), (-1, 2, 2),
             (-1, 3, 2), (-1, 3, 3)]), bv([(1, 2, 2)])),            # m1
        (av([(1, 1, 1), (-1, 2, 1)]), bv([(-1, 1, 2), (1, 2, 2)])),  # m2
        (av([(1, 2, 2)]),
         bv([(-1, 1, 1), (1, 1, 2), (1, 2, 1), (-1, 2, 2), (-1, 2, 3),
             (-1, 3, 1), (1, 3, 3)])),                              # m3
        (av([(-1, 1, 1), (1, 2, 1), (1, 2, 2)]),
         bv([(1, 1, 1), (-1, 1, 2), (1, 2, 2)])),                   # m4
        (av([(1, 2, 1), (1, 2, 2)]), bv([(-1, 1, 1), (1, 1, 2)])),  # m5
        (av([(1, 1, 1)]), bv([(1, 1, 1)])),                         # m6
        (av([(-1, 1, 1), (1, 3, 1), (1, 3, 2)]),
         bv([(1, 1, 1), (-1, 1, 3), (1, 2, 3)])),                   # m7
        (av([(-1, 1, 1), (1, 3, 1)]), bv([(1, 1, 3), (-1, 2, 3)])),  # m8
        (av([(1, 3, 1), (1, 3, 2)]), bv([(-1, 1, 1), (1, 1, 3)])),  # m9
        (av([(1, 1, 1), (1, 1, 2), (1, 1, 3), (-1, 2, 2), (-1, 2, 3),
             (-1, 3, 1), (-1, 3, 2)]), bv([(1, 2, 3)])),            # m10
        (av([(1, 3, 2)]),
         bv([(-1, 1, 1), (1, 1, 3), (1, 2, 1), (-1, 2, 2), (-1, 2, 3),
             (-1, 3, 1), (1, 3, 2)])),                              # m11
        (av([(-1, 1, 3), (1, 3, 2), (1, 3, 3)]),
         bv([(1, 2, 2), (1, 3, 1), (-1, 3, 2)])),                   # m12
        (av([(1, 1, 3), (-1, 3, 3)]), bv([(1, 2, 2), (-1, 3, 2)])),  # m13
        (av([(1, 1, 3)]), bv([(1, 3, 1)])),                         # m14
        (av([(1, 3, 2), (1, 3, 3)]), bv([(-1, 3, 1), (1, 3, 2)])),  # m15
        (av([(-1, 1, 3), (1, 2, 2), (1, 2, 3)]),
         bv([(1, 2, 3), (1, 3, 1), (-1, 3, 3)])),                   # m16
        (av([(1, 1, 3), (-1, 2, 3)]), bv([(1, 2, 3), (-1, 3, 3)])),  # m17
        (av([(1, 2, 2), (1, 2, 3)]), bv([(-1, 3, 1), (1, 3, 3)])),  # m18
        (av([(1, 1, 2)]), bv([(1, 2, 1)])),                         # m19
        (av([(1, 2, 3)]), bv([(1, 3, 2)])),                         # m20
        (av([(1, 2, 1)]), bv([(1, 1, 3)])),                         # m21
        (av([(1, 3, 1)]), bv([(1, 1, 2)])),                         # m22
        (av([(1, 3, 3)]), bv([(1, 3, 3)])),                         # m23
    ]
    gammas = solve_gammas(products, bm, bk, bn)
    if gammas is None:
        print("FAIL <3,3,3>: Laderman products do not span the targets")
        sys.exit(1)
    return bm, bk, bn, products, gammas


# ---- emit ------------------------------------------------------------------

def emit_cpp(name, bm, bk, bn, products, gammas):
    rank = len(products)
    print(f"// <{bm},{bk},{bn}>: rank {rank} (trivial {bm * bk * bn})")
    a_rows = [", ".join(str(c) for c in a) for a, _ in products]
    b_rows = [", ".join(str(c) for c in b) for _, b in products]
    g_rows = [", ".join(str(c) for c in row) for row in gammas]
    print(f"inline constexpr std::int8_t k{name}A[] = {{")
    for r in a_rows:
        print(f"    {r},")
    print("};")
    print(f"inline constexpr std::int8_t k{name}B[] = {{")
    for r in b_rows:
        print(f"    {r},")
    print("};")
    print(f"inline constexpr std::int8_t k{name}C[] = {{")
    for r in g_rows:
        print(f"    {r},")
    print("};")
    print()


def main(argv):
    tables = []
    bm, bk, bn = 2, 2, 2
    w = winograd_222_products()
    wg = solve_gammas(w, bm, bk, bn)
    if wg is None:
        print("FAIL <2,2,2>: gamma solve failed")
        return 1
    tables.append(("Algo222", bm, bk, bn, w, wg))
    tables.append(("Algo323",) + table_323())
    tables.append(("Algo234",) + table_234())
    tables.append(("Algo333",) + table_333())

    ok = True
    for name, bm, bk, bn, products, gammas in tables:
        if prove(name, bm, bk, bn, products, gammas):
            print(f"OK  {name}: <{bm},{bk},{bn}> rank {len(products)} "
                  f"(trivial {bm * bk * bn}) proved exactly")
        else:
            ok = False
    if not ok:
        return 1
    if "--cpp" in argv:
        print()
        for t in tables:
            emit_cpp(*t)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
