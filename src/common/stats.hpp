// stats.hpp -- small statistics and rate helpers used by the bench harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace strassen {

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> samples);

// Floating-point operation counts.
// Conventional gemm: 2*m*n*k (multiply + add).
std::uint64_t gemm_flops(std::int64_t m, std::int64_t n, std::int64_t k);

// Exact flop count of Strassen-Winograd on an (n x n) problem that recurses
// `depth` times from padded size `padded` down to tiles of size padded>>depth
// (7 products, 15 quadrant additions per level).  Used to report effective
// GFLOP/s and to sanity-check the operation-count crossover.
std::uint64_t winograd_flops(std::int64_t padded, int depth);

double gflops(std::uint64_t flops, double seconds);

}  // namespace strassen
