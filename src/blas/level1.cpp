#include "blas/level1.hpp"

namespace strassen::blas {

namespace {
RawMem raw;
}  // namespace

void vadd(std::size_t n, double* dst, const double* a, const double* b) {
  vadd(raw, n, dst, a, b);
}
void vsub(std::size_t n, double* dst, const double* a, const double* b) {
  vsub(raw, n, dst, a, b);
}
void vcopy(std::size_t n, double* dst, const double* src) {
  vcopy(raw, n, dst, src);
}
void vzero(std::size_t n, double* dst) { vzero(raw, n, dst); }
void vscale(std::size_t n, double* dst, double alpha) {
  vscale(raw, n, dst, alpha);
}
void vaxpby(std::size_t n, double* dst, double alpha, const double* a,
            double beta) {
  vaxpby(raw, n, dst, alpha, a, beta);
}

}  // namespace strassen::blas
