// family.hpp -- one-level interpreter for <m,k,n> fast-algorithm tables.
//
// Executes ONE level of a coefficient table (analysis/algo_family.hpp) over
// the column-major operands and hands every block product to a sub-GEMM
// callback -- in production the full <2,2,2> MODGEMM driver (so each product
// gets the planner's Morton-vs-pack-fused choice, the workspace ladder and
// the SIMD kernels for free), in the parallel driver a pmodgemm product.
// This is the one-level-of-X-then-Winograd hybrid: a 384x256x384 problem
// under <3,2,3> becomes 17 Winograd-friendly 128x128x128 products instead of
// one heavily padded 2x2x2 recursion or a split-path reconstruction.
//
// Per product r the driver stages
//
//     Asum = sum_{i,l} a[r][i,l] * op(A)_il      (pm x pk, zero-clipped)
//     Bsum = sum_{l,j} b[r][l,j] * op(B)_lj      (pk x pn, zero-clipped)
//     P    = Asum . Bsum                         (sub-GEMM)
//
// and scatters c[i,j][r] * P into the (i,j) blocks of a dense accumulator;
// a single axpby merge applies alpha/beta at the end.  Partition sizes are
// pm = ceil(m/bm) etc.; edge blocks smaller than the partition read as zero
// (the staging buffers are zero-filled first), which is exact -- no padding
// of the operands themselves is ever materialized.
//
// Exception safety follows the modgemm contract: the arena is fully pushed
// before any arithmetic and C is written only by the final merge, so any
// std::bad_alloc out of this driver (or its sub-products) leaves C
// untouched and the caller may retry on the plain <2,2,2> path.
#pragma once

#include <algorithm>
#include <cstddef>

#include "analysis/algo_family.hpp"
#include "blas/gemm.hpp"
#include "blas/view_ops.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/matrix.hpp"
#include "common/timer.hpp"
#include "obs/report.hpp"

namespace strassen::core {

// Ceiling partition width of one dimension under a block count.
constexpr int family_partition(int dim, int blocks) {
  return (dim + blocks - 1) / blocks;
}

// Peak temporary bytes the one-level interpreter needs for C <- op(A).op(B)
// under this table: the three staging buffers plus the dense C accumulator,
// with the arena's per-allocation 64-byte rounding.  The sub-products'
// workspace is NOT included -- each sub-GEMM books its own (sequentially,
// so the call's true peak is this plus one sub-product's workspace).
inline std::size_t family_workspace_bytes(const analysis::FamilyTable& t,
                                          int m, int k, int n,
                                          std::size_t elem_size) {
  const std::size_t pm = static_cast<std::size_t>(family_partition(m, t.bm));
  const std::size_t pk = static_cast<std::size_t>(family_partition(k, t.bk));
  const std::size_t pn = static_cast<std::size_t>(family_partition(n, t.bn));
  auto r64 = [](std::size_t b) { return checked_add(b, 63) / 64 * 64; };
  std::size_t total = r64(checked_mul(checked_mul(pm, pk), elem_size));
  total = checked_add(total, r64(checked_mul(checked_mul(pk, pn), elem_size)));
  total = checked_add(total, r64(checked_mul(checked_mul(pm, pn), elem_size)));
  total = checked_add(
      total, r64(checked_mul(checked_mul(static_cast<std::size_t>(m),
                                         static_cast<std::size_t>(n)),
                             elem_size)));
  return total;
}

namespace detail {

// dst (rows x cols sub-view of a pr-ld buffer) +-= the clipped (row0, col0)
// block of op(X).  op(X)(r, c) = X(c, r) for the transposed case, i.e. the
// element lives at X[r * ldx + c] -- a column-strided read view_ops cannot
// express, hence the explicit loop.
template <class MM, class T>
void family_accum_block(MM& mm, T* dst, int ld, int sign, Op opx, const T* X,
                        int ldx, int row0, int rows, int col0, int cols) {
  if (opx == Op::NoTrans) {
    const T* src = X + static_cast<std::size_t>(col0) * ldx + row0;
    if (sign > 0)
      blas::view_add_inplace(mm, rows, cols, dst, ld, src, ldx);
    else
      blas::view_sub_inplace(mm, rows, cols, dst, ld, src, ldx);
    return;
  }
  for (int j = 0; j < cols; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ld;
    for (int i = 0; i < rows; ++i) {
      const T v =
          mm.load(X + static_cast<std::size_t>(row0 + i) * ldx + (col0 + j));
      mm.store(d + i, static_cast<T>(sign > 0 ? mm.load(d + i) + v
                                              : mm.load(d + i) - v));
    }
  }
}

// One-level family execution over a CALLER-OWNED arena sized to at least
// family_workspace_bytes.  `sub(m2, n2, k2, A2, lda2, B2, ldb2, C2, ldc2)`
// must compute C2 <- A2 . B2 (alpha 1, beta 0, NoTrans) and may throw; C is
// untouched until every product has completed.  Phase accounting: staging
// and scatter/merge go to the conversion timers, the sub-products (whose
// own conversion the callback hides) to the compute timer.
template <class MM, class T, class SubGemm>
void modgemm_family_arena(MM& mm, Op opa, Op opb, int m, int n, int k,
                          T alpha, const T* A, int lda, const T* B, int ldb,
                          T beta, T* C, int ldc,
                          const analysis::FamilyTable& t, Arena& arena,
                          SubGemm&& sub, obs::GemmReport* report) {
  const int pm = family_partition(m, t.bm);
  const int pk = family_partition(k, t.bk);
  const int pn = family_partition(n, t.bn);
  T* Asum = arena.push<T>(checked_mul(static_cast<std::size_t>(pm),
                                      static_cast<std::size_t>(pk)));
  T* Bsum = arena.push<T>(checked_mul(static_cast<std::size_t>(pk),
                                      static_cast<std::size_t>(pn)));
  T* P = arena.push<T>(checked_mul(static_cast<std::size_t>(pm),
                                   static_cast<std::size_t>(pn)));
  T* Cacc = arena.push<T>(checked_mul(static_cast<std::size_t>(m),
                                      static_cast<std::size_t>(n)));
  double t_stage = 0, t_mul = 0, t_scatter = 0;
  WallTimer timer;
  blas::scale_view(mm, m, n, Cacc, m, T{0});
  t_scatter += timer.seconds();
  // Clipped extent of partition slot `s` (0 when the slot is entirely
  // outside the real dimension, e.g. m < bm).
  auto clip = [](int dim, int part, int s) {
    const int lo = s * part;
    const int sz = dim - lo;
    return sz < 0 ? 0 : (sz > part ? part : sz);
  };
  for (int r = 0; r < t.rank; ++r) {
    timer.restart();
    blas::scale_view(mm, pm, pk, Asum, pm, T{0});
    for (int i = 0; i < t.bm; ++i) {
      for (int l = 0; l < t.bk; ++l) {
        const int coef = t.a_coef(r, i, l);
        if (coef == 0) continue;
        const int rows = clip(m, pm, i);
        const int cols = clip(k, pk, l);
        if (rows == 0 || cols == 0) continue;
        family_accum_block(mm, Asum, pm, coef, opa, A, lda, i * pm, rows,
                           l * pk, cols);
      }
    }
    blas::scale_view(mm, pk, pn, Bsum, pk, T{0});
    for (int l = 0; l < t.bk; ++l) {
      for (int j = 0; j < t.bn; ++j) {
        const int coef = t.b_coef(r, l, j);
        if (coef == 0) continue;
        const int rows = clip(k, pk, l);
        const int cols = clip(n, pn, j);
        if (rows == 0 || cols == 0) continue;
        family_accum_block(mm, Bsum, pk, coef, opb, B, ldb, l * pk, rows,
                           j * pn, cols);
      }
    }
    t_stage += timer.seconds();
    timer.restart();
    sub(pm, pn, pk, static_cast<const T*>(Asum), pm,
        static_cast<const T*>(Bsum), pk, P, pm);
    t_mul += timer.seconds();
    timer.restart();
    for (int i = 0; i < t.bm; ++i) {
      for (int j = 0; j < t.bn; ++j) {
        const int g = t.c_coef(i, j, r);
        if (g == 0) continue;
        const int rows = clip(m, pm, i);
        const int cols = clip(n, pn, j);
        if (rows == 0 || cols == 0) continue;
        T* dst = Cacc + static_cast<std::size_t>(j) * pn * m + i * pm;
        if (g > 0)
          blas::view_add_inplace(mm, rows, cols, dst, m, P, pm);
        else
          blas::view_sub_inplace(mm, rows, cols, dst, m, P, pm);
      }
    }
    t_scatter += timer.seconds();
  }
  timer.restart();
  blas::axpby_view(mm, m, n, C, ldc, alpha, static_cast<const T*>(Cacc), m,
                   beta);
  t_scatter += timer.seconds();
  if (report) {
    report->convert_in_seconds += t_stage;
    report->compute_seconds += t_mul;
    report->convert_out_seconds += t_scatter;
    report->products += t.rank;
    report->workspace_peak_bytes =
        std::max(report->workspace_peak_bytes, arena.peak());
  }
}

}  // namespace detail
}  // namespace strassen::core
