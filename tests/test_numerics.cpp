// Numerical-accuracy tests: Strassen-type algorithms satisfy a weaker
// (norm-wise) error bound than conventional gemm (Higham, ch. 23).  These
// tests pin down that all implementations stay within sensible bounds on
// random real data, and that error grows modestly with recursion depth.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "baselines/strassen_classic.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"

namespace strassen {
namespace {

// Max elementwise error of `impl` against naive_gemm on uniform [-1,1] data.
template <class Fn>
double impl_error(Fn&& impl, int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  impl(n, A.data(), B.data(), C.data());
  return max_abs_diff<double>(C.view(), Ref.view());
}

// A generous norm-wise bound for n ~ a few hundred: c * n * eps with c
// absorbing the Strassen growth factor (the observed errors are orders of
// magnitude below this).
double bound(int n) { return 1e-16 * 3.0 * n * 64.0; }

TEST(Numerics, ConventionalWithinBound) {
  const int n = 300;
  const double err = impl_error(
      [](int nn, const double* a, const double* b, double* c) {
        blas::gemm(Op::NoTrans, Op::NoTrans, nn, nn, nn, 1.0, a, nn, b, nn,
                   0.0, c, nn);
      },
      n, 1);
  EXPECT_LT(err, bound(n));
}

TEST(Numerics, ModgemmWithinBound) {
  const int n = 300;
  const double err = impl_error(
      [](int nn, const double* a, const double* b, double* c) {
        core::modgemm(Op::NoTrans, Op::NoTrans, nn, nn, nn, 1.0, a, nn, b, nn,
                      0.0, c, nn);
      },
      n, 2);
  EXPECT_LT(err, bound(n));
  EXPECT_GT(err, 0.0);  // it IS floating point
}

TEST(Numerics, DgefmmWithinBound) {
  const int n = 300;
  const double err = impl_error(
      [](int nn, const double* a, const double* b, double* c) {
        baselines::dgefmm(Op::NoTrans, Op::NoTrans, nn, nn, nn, 1.0, a, nn, b,
                          nn, 0.0, c, nn);
      },
      n, 3);
  EXPECT_LT(err, bound(n));
}

TEST(Numerics, DgemmwWithinBound) {
  const int n = 300;
  const double err = impl_error(
      [](int nn, const double* a, const double* b, double* c) {
        baselines::dgemmw(Op::NoTrans, Op::NoTrans, nn, nn, nn, 1.0, a, nn, b,
                          nn, 0.0, c, nn);
      },
      n, 4);
  EXPECT_LT(err, bound(n));
}

TEST(Numerics, ClassicWithinBound) {
  const int n = 300;
  const double err = impl_error(
      [](int nn, const double* a, const double* b, double* c) {
        baselines::strassen_classic(Op::NoTrans, Op::NoTrans, nn, nn, nn, 1.0,
                                    a, nn, b, nn, 0.0, c, nn);
      },
      n, 5);
  EXPECT_LT(err, bound(n));
}

TEST(Numerics, DeeperRecursionGrowsErrorModestly) {
  // Force extra recursion depth via a smaller tile range and check the error
  // stays within a small multiple of the shallow error.
  const int n = 512;
  core::ModgemmOptions shallow;  // depth 4 at n=512 (tile 32)
  core::ModgemmOptions deep;
  deep.tiles.min_tile = 8;
  deep.tiles.max_tile = 16;
  deep.tiles.preferred_tile = 8;
  deep.tiles.direct_threshold = 16;  // depth 6 at n=512 (tile 8)
  double err_shallow = 0, err_deep = 0;
  {
    Rng rng(6);
    Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                     B.data(), n, 0.0, Ref.data(), n);
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, shallow);
    err_shallow = max_abs_diff<double>(C.view(), Ref.view());
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, deep);
    err_deep = max_abs_diff<double>(C.view(), Ref.view());
  }
  EXPECT_LT(err_shallow, bound(n));
  EXPECT_LT(err_deep, 100.0 * bound(n));  // grows ~3x per extra level
  EXPECT_GE(err_deep, err_shallow * 0.01);  // sanity: same order of events
}

TEST(Numerics, AlphaBetaDoNotAmplify) {
  const int n = 200;
  Rng rng(7);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  rng.fill_uniform(C.storage());
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 0.5, A.data(), n,
                   B.data(), n, 0.25, Ref.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 0.5, A.data(), n, B.data(),
                n, 0.25, C.data(), n);
  EXPECT_LT(max_abs_diff<double>(C.view(), Ref.view()), bound(n));
}

}  // namespace
}  // namespace strassen
