// pack.hpp -- operand packing for the pack-fused (no-conversion) strategy.
//
// The Morton execution strategy stages op(A), op(B) into zero-padded Morton
// buffers so every recursion operand is a contiguous tile.  The pack-fused
// strategy (core/packfused.hpp) instead runs the Winograd schedule straight
// from the caller's column-major storage; wherever a leaf product needs an
// operand the kernels cannot consume in place -- a transposed source, a
// boundary tile that must be zero-padded, or a Winograd operand sum
// (A_i ± A_j) -- these routines gather it into a dense 64-byte-aligned
// panel, folding the transpose, the zero padding, the ± combination, and an
// optional alpha scale into the single pass (Huang et al., "Implementing
// Strassen's Algorithm with BLIS": the operand additions ride along with the
// packing traffic instead of costing separate sweeps).
//
// A packed panel holds EXACTLY the values the Morton conversion would have
// staged for the same tile (same single add/sub per element, zeros in the
// padded region), which is what keeps the pack-fused strategy bit-identical
// to the Morton strategy (see docs/DESIGN.md).
#pragma once

#include <cstddef>

#include "analysis/schedule.hpp"
#include "common/check.hpp"

namespace strassen::blas {

// A read-only view of one packing source: a clipped, possibly transposed
// window of a column-major matrix.  Logical element (i, j) of the pr x pc
// panel being packed reads
//
//     trans ? ptr[i*ld + j] : ptr[j*ld + i]      for i < rows && j < cols
//     0                                          outside the stored extent
//
// so zero padding is a property of the VIEW, not of any materialized buffer.
// rows/cols are the stored (real) extent; they may be smaller than the panel
// being packed (boundary tiles) but never larger.
template <class T>
struct PackSrc {
  const T* ptr = nullptr;
  int ld = 0;
  bool trans = false;
  int rows = 0;  // stored rows of the logical (post-op) window
  int cols = 0;  // stored cols of the logical (post-op) window

  T at(int i, int j) const {
    if (i >= rows || j >= cols) return T{0};
    return trans ? ptr[static_cast<std::size_t>(i) * ld + j]
                 : ptr[static_cast<std::size_t>(j) * ld + i];
  }

  bool empty() const { return rows == 0 || cols == 0; }

  // True when a pr x pc panel can use this view in place: untransposed and
  // covering the full panel, so the kernels read the same values through
  // `ld` that a packed copy would hold.
  bool covers(int pr, int pc) const {
    return !trans && rows >= pr && cols >= pc;
  }
};

namespace detail {

// One packed column j: dst[0..pr) = alpha * (a ± b)(., j), zero-filled
// beyond the stored extents.  Single-source callers pass b.ptr == nullptr.
template <class T>
inline void pack_col(T* dst, int pr, int j, const PackSrc<T>& a,
                     analysis::Sign s, const PackSrc<T>* b, T alpha) {
  const bool plus = s == analysis::Sign::kPlus;
  for (int i = 0; i < pr; ++i) {
    T v = a.at(i, j);
    if (b != nullptr) {
      const T w = b->at(i, j);
      v = plus ? static_cast<T>(v + w) : static_cast<T>(v - w);
    }
    dst[i] = alpha == T{1} ? v : static_cast<T>(alpha * v);
  }
}

}  // namespace detail

// dst (pr x pc, column-major, leading dimension pr) <- alpha * a, zero-filled
// outside a's stored extent.  Every element of dst is written -- a previously
// poisoned buffer comes out fully defined.
template <class T>
void pack_panel(T* dst, int pr, int pc, const PackSrc<T>& a, T alpha = T{1}) {
  STRASSEN_ASSERT(pr >= 0 && pc >= 0);
  STRASSEN_ASSERT(a.rows <= pr && a.cols <= pc);
  if (!a.trans && alpha == T{1}) {
    // Hot path: contiguous column copies plus explicit zero tails.
    for (int j = 0; j < pc; ++j) {
      T* d = dst + static_cast<std::size_t>(j) * pr;
      if (j < a.cols) {
        const T* col = a.ptr + static_cast<std::size_t>(j) * a.ld;
        for (int i = 0; i < a.rows; ++i) d[i] = col[i];
        for (int i = a.rows; i < pr; ++i) d[i] = T{0};
      } else {
        for (int i = 0; i < pr; ++i) d[i] = T{0};
      }
    }
    return;
  }
  for (int j = 0; j < pc; ++j)
    detail::pack_col(dst + static_cast<std::size_t>(j) * pr, pr, j, a,
                     analysis::Sign::kPlus, static_cast<const PackSrc<T>*>(nullptr),
                     alpha);
}

// dst (pr x pc, column-major, leading dimension pr) <- alpha * (a ± b): the
// Winograd operand combination folded into the gather, one pass instead of
// materialize-then-pack.  Elements outside either source's stored extent
// contribute zero, so the panel equals the combination of the zero-padded
// operands.  Every element of dst is written.
template <class T>
void pack_panel_sum(T* dst, int pr, int pc, const PackSrc<T>& a,
                    analysis::Sign s, const PackSrc<T>& b, T alpha = T{1}) {
  STRASSEN_ASSERT(pr >= 0 && pc >= 0);
  STRASSEN_ASSERT(a.rows <= pr && a.cols <= pc);
  STRASSEN_ASSERT(b.rows <= pr && b.cols <= pc);
  for (int j = 0; j < pc; ++j)
    detail::pack_col(dst + static_cast<std::size_t>(j) * pr, pr, j, a, s, &b,
                     alpha);
}

}  // namespace strassen::blas
