#include "parallel/pmodgemm.hpp"

#include <algorithm>
#include <cstdint>
#include <new>

#include "blas/level1.hpp"
#include "common/aligned_buffer.hpp"
#include "common/arena.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "layout/convert.hpp"
#include "obs/scope.hpp"

namespace strassen::parallel {

namespace {

std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }

// One spawn level's temporaries: S1..S4 over A-quadrants, T1..T4 over
// B-quadrants, P1..P7 over C-quadrants.
std::size_t spawn_level_bytes(std::size_t qa, std::size_t qb, std::size_t qc,
                              std::size_t elem) {
  return 4 * round_up64(qa * elem) + 4 * round_up64(qb * elem) +
         7 * round_up64(qc * elem);
}

// The parallel recursion.  Below the spawn levels this is exactly
// core::winograd_recurse, so results are bit-identical to the serial code.
void recurse(ThreadPool* pool, int spawn, double* C, const double* A,
             const double* B, int tm, int tk, int tn, int depth) {
  if (spawn <= 0 || depth == 0) {
    const std::size_t bytes =
        core::winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double));
    if (obs::Collector* col = obs::current()) col->note_workspace(bytes);
    Arena arena(bytes);
    RawMem mm;
    core::winograd_recurse(mm, C, A, B, tm, tk, tn, depth, arena);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  const double* A11 = A;
  const double* A12 = A + qa;
  const double* A21 = A + 2 * qa;
  const double* A22 = A + 3 * qa;
  const double* B11 = B;
  const double* B12 = B + qb;
  const double* B21 = B + 2 * qb;
  const double* B22 = B + 3 * qb;
  double* C11 = C;
  double* C12 = C + qc;
  double* C21 = C + 2 * qc;
  double* C22 = C + 3 * qc;

  const std::size_t level_bytes = spawn_level_bytes(qa, qb, qc, sizeof(double));
  if (obs::Collector* col = obs::current()) col->note_workspace(level_bytes);
  Arena level(level_bytes);
  double* S1 = level.push<double>(qa);
  double* S2 = level.push<double>(qa);
  double* S3 = level.push<double>(qa);
  double* S4 = level.push<double>(qa);
  double* T1 = level.push<double>(qb);
  double* T2 = level.push<double>(qb);
  double* T3 = level.push<double>(qb);
  double* T4 = level.push<double>(qb);  // holds T2 - B21 (= -T4 of the paper)
  double* M1 = level.push<double>(qc);
  double* M2 = level.push<double>(qc);
  double* M3 = level.push<double>(qc);
  double* M4 = level.push<double>(qc);
  double* M5 = level.push<double>(qc);
  double* M6 = level.push<double>(qc);
  double* M7 = level.push<double>(qc);
  // Same alignment contract as the serial driver: spawn-level temporaries
  // feed the SIMD element-wise kernels and the leaf gemm below, which assume
  // cache-line-aligned quadrant storage.
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(S1) %
                      Arena::kChunkAlignment == 0);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(T1) %
                      Arena::kChunkAlignment == 0);
  STRASSEN_ASSERT(reinterpret_cast<std::uintptr_t>(M1) %
                      Arena::kChunkAlignment == 0);

  RawMem mm;
  // Operand sums (same expressions as the serial schedule).
  blas::vadd(mm, qa, S1, A21, A22);
  blas::vsub(mm, qa, S2, S1, A11);
  blas::vsub(mm, qa, S3, A11, A21);
  blas::vsub(mm, qa, S4, A12, S2);
  blas::vsub(mm, qb, T1, B12, B11);
  blas::vsub(mm, qb, T2, B22, T1);
  blas::vsub(mm, qb, T3, B22, B12);
  blas::vsub(mm, qb, T4, T2, B21);

  // The seven independent products, forked.
  {
    TaskGroup group(pool);
    auto fork = [&](double* dst, const double* a, const double* b) {
      group.run([=] { recurse(pool, spawn - 1, dst, a, b, tm, tk, tn, d1); });
    };
    fork(M1, A11, B11);
    fork(M2, A12, B21);
    fork(M3, S4, B22);
    fork(M4, A22, T4);  // A22 . (T2 - B21)
    fork(M5, S1, T1);
    fork(M6, S2, T2);
    fork(M7, S3, T3);
    group.wait();
  }

  // U-chain combination (commutatively identical to the serial in-place
  // order, so results match bit for bit).
  blas::vadd(mm, qc, C11, M1, M2);           // C11 = M1 + M2
  blas::vadd_inplace(mm, qc, M1, M6);        // M1 := U2 = M1 + M6
  blas::vadd_inplace(mm, qc, M7, M1);        // M7 := U3 = U2 + M7
  blas::vsub(mm, qc, C21, M7, M4);           // C21 = U3 - M4
  blas::vadd(mm, qc, C22, M7, M5);           // C22 = U3 + M5
  blas::vadd_inplace(mm, qc, M1, M5);        // M1 := U4 = U2 + M5
  blas::vadd(mm, qc, C12, M1, M3);           // C12 = U4 + M3
}

}  // namespace

std::size_t pmodgemm_workspace_bytes(int tm, int tk, int tn, int depth,
                                     int spawn_levels,
                                     std::size_t elem_size) {
  STRASSEN_REQUIRE(tm >= 1 && tk >= 1 && tn >= 1 && depth >= 0 &&
                       spawn_levels >= 0,
                   "bad workspace request");
  if (spawn_levels == 0 || depth == 0)
    return core::winograd_workspace_bytes(tm, tk, tn, depth, elem_size);
  const std::size_t scale = std::size_t{1} << (2 * (depth - 1));
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;
  // All 7 child arenas can be live at once.
  return spawn_level_bytes(qa, qb, qc, elem_size) +
         7 * pmodgemm_workspace_bytes(tm, tk, tn, depth - 1, spawn_levels - 1,
                                      elem_size);
}

void pmodgemm(ThreadPool* pool, Op opa, Op opb, int m, int n, int k,
              double alpha, const double* A, int lda, const double* B, int ldb,
              double beta, double* C, int ldc, const ParallelOptions& opt) {
  // Reject bad inputs identically to the serial entry point.
  core::require_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  STRASSEN_REQUIRE(opt.spawn_levels >= 0,
                   "negative spawn_levels: " << opt.spawn_levels);
  obs::CallScope scope("pmodgemm", opt.report);
  obs::GemmReport* rep = scope.report();
  obs::WallStamp wall(rep);
  if (rep) {
    rep->m = m;
    rep->n = n;
    rep->k = k;
    rep->kernel =
        blas::kernels::kind_name(blas::kernels::active_kernel());
    rep->kernel_variant =
        blas::kernels::variant_name(blas::kernels::avx2_variant());
  }
  if (m == 0 || n == 0) return;
  if (alpha == 0.0 || k == 0) {
    RawMem mm;
    blas::scale_view(mm, m, n, C, ldc, beta);
    return;
  }
  const layout::GemmPlan plan = layout::plan_gemm(m, k, n, opt.tiles);
  if (rep) rep->planned_depth = plan.depth;
  if (plan.direct || !plan.feasible) {
    // Thin or highly rectangular shapes: defer to the serial driver (the
    // split path's sub-products are typically small; parallelizing them is
    // future work, as in the paper's own outlook for rectangular inputs).
    // The report (if any) is handed down, so its phases/plan reflect the
    // serial execution while entry stays "pmodgemm".
    core::ModgemmOptions serial;
    serial.tiles = opt.tiles;
    core::modgemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
                  serial, rep);
    return;
  }

  try {
    const layout::MortonLayout la{m, k, plan.m.tile, plan.k.tile, plan.depth};
    const layout::MortonLayout lb{k, n, plan.k.tile, plan.n.tile, plan.depth};
    const layout::MortonLayout lc{m, n, plan.m.tile, plan.n.tile, plan.depth};
    const std::size_t abytes = layout::buffer_bytes(la, sizeof(double));
    const std::size_t bbytes = layout::buffer_bytes(lb, sizeof(double));
    const std::size_t cbytes = layout::buffer_bytes(lc, sizeof(double));
    AlignedBuffer abuf(abytes);
    AlignedBuffer bbuf(bbytes);
    AlignedBuffer cbuf(cbytes);
    double* Am = abuf.as<double>();
    double* Bm = bbuf.as<double>();
    double* Cm = cbuf.as<double>();

    const int spawn = std::min(opt.spawn_levels, plan.depth);
    if (rep) {
      rep->parallel = true;
      rep->threads = pool != nullptr ? pool->thread_count() : 0;
      rep->spawn_levels = spawn;
      rep->plan = plan;
      ++rep->products;
      rep->workspace_requested_bytes += abytes + bbytes + cbytes;
      rep->workspace_allocations += 3;
    }

    // Parallel conversions: fan out over Morton tile ranges.
    WallTimer t;
    const auto convert_in = [&](const layout::MortonLayout& l, double* dst,
                                Op op, const double* src, int ld) {
      const std::int64_t tiles =
          static_cast<std::int64_t>(l.tiles_per_side()) * l.tiles_per_side();
      parallel_for(pool, 0, tiles, /*min_grain=*/8,
                   [&](std::int64_t t0, std::int64_t t1) {
                     RawMem mm;
                     layout::to_morton_range(mm, l, dst, op, src, ld,
                                             static_cast<int>(t0),
                                             static_cast<int>(t1));
                   });
    };
    convert_in(la, Am, opa, A, lda);
    convert_in(lb, Bm, opb, B, ldb);
    if (rep) rep->convert_in_seconds += t.seconds();

    t.restart();
    recurse(pool, spawn, Cm, Am, Bm, plan.m.tile, plan.k.tile, plan.n.tile,
            plan.depth);
    if (rep) rep->compute_seconds += t.seconds();

    t.restart();
    const std::int64_t ctiles =
        static_cast<std::int64_t>(lc.tiles_per_side()) * lc.tiles_per_side();
    parallel_for(pool, 0, ctiles, /*min_grain=*/8,
                 [&](std::int64_t t0, std::int64_t t1) {
                   RawMem mm;
                   layout::from_morton_range(mm, lc, Cm, alpha, C, ldc, beta,
                                             static_cast<int>(t0),
                                             static_cast<int>(t1));
                 });
    if (rep) rep->convert_out_seconds += t.seconds();
  } catch (const std::bad_alloc&) {
    // A Morton buffer or a task's arena failed to allocate.  Exceptions from
    // tasks surface at TaskGroup::wait(), after every sibling task joined,
    // so nothing still references the spawn-level temporaries being unwound
    // here.  C has not been touched (it is written only by the final
    // conversion, which does not allocate), so the serial driver -- with its
    // full degradation ladder down to the allocation-free path -- can
    // produce the product from scratch.
    core::detail::record_fallback(rep, core::FallbackReason::kAllocDirect);
    core::ModgemmOptions serial;
    serial.tiles = opt.tiles;
    core::modgemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc,
                  serial, rep);
  }
}

}  // namespace strassen::parallel
