// Unit tests for strided view operations and the extent-aware (phantom-zero)
// variants that dynamic overlap depends on (src/blas/view_ops).
#include <gtest/gtest.h>

#include "blas/view_ops.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::blas {
namespace {

TEST(ViewOps, AddSubCopyOverStridedViews) {
  RawMem mm;
  const int r = 7, c = 5;
  Matrix<double> A(r, c, r + 3), B(r, c, r + 1), D(r, c, r + 5);
  Rng rng(1);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  view_add(mm, r, c, D.data(), D.ld(), A.data(), A.ld(), B.data(), B.ld());
  for (int j = 0; j < c; ++j)
    for (int i = 0; i < r; ++i)
      EXPECT_DOUBLE_EQ(D.at(i, j), A.at(i, j) + B.at(i, j));
  view_sub(mm, r, c, D.data(), D.ld(), A.data(), A.ld(), B.data(), B.ld());
  for (int j = 0; j < c; ++j)
    for (int i = 0; i < r; ++i)
      EXPECT_DOUBLE_EQ(D.at(i, j), A.at(i, j) - B.at(i, j));
  view_copy(mm, r, c, D.data(), D.ld(), A.data(), A.ld());
  EXPECT_EQ(max_abs_diff<double>(D.view(), A.view()), 0.0);
}

TEST(ViewOps, InplaceVariants) {
  RawMem mm;
  const int r = 6, c = 4;
  Matrix<double> A(r, c), D(r, c), D0(r, c);
  Rng rng(2);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(D.storage());
  copy_matrix<double>(D.view(), D0.view());
  view_add_inplace(mm, r, c, D.data(), D.ld(), A.data(), A.ld());
  for (int j = 0; j < c; ++j)
    for (int i = 0; i < r; ++i)
      EXPECT_DOUBLE_EQ(D.at(i, j), D0.at(i, j) + A.at(i, j));
  copy_matrix<double>(D0.view(), D.view());
  view_sub_inplace(mm, r, c, D.data(), D.ld(), A.data(), A.ld());
  for (int j = 0; j < c; ++j)
    for (int i = 0; i < r; ++i)
      EXPECT_DOUBLE_EQ(D.at(i, j), D0.at(i, j) - A.at(i, j));
}

TEST(ViewOps, AliasedDstEqualsB) {
  // The T2 = B22 - T1 pattern: dst aliases the second operand.
  RawMem mm;
  const int r = 5, c = 5;
  Matrix<double> A(r, c), B(r, c), Ref(r, c);
  Rng rng(3);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (int j = 0; j < c; ++j)
    for (int i = 0; i < r; ++i) Ref.at(i, j) = A.at(i, j) - B.at(i, j);
  view_sub(mm, r, c, B.data(), B.ld(), A.data(), A.ld(), B.data(), B.ld());
  EXPECT_EQ(max_abs_diff<double>(B.view(), Ref.view()), 0.0);
}

TEST(ExtOps, PhantomReadsAreZero) {
  RawMem mm;
  // a real 3x2, b real 2x3, region 4x4: outside extents contribute zero.
  Matrix<double> A(3, 2), B(2, 3), D(4, 4);
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i) A.at(i, j) = 10 + i + 10 * j;
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 2; ++i) B.at(i, j) = 100 + i + 10 * j;
  ext_sub(mm, 4, 4, D.data(), D.ld(), A.data(), A.ld(), 3, 2, B.data(),
          B.ld(), 2, 3);
  for (int j = 0; j < 4; ++j) {
    for (int i = 0; i < 4; ++i) {
      const double a = (i < 3 && j < 2) ? A.at(i, j) : 0.0;
      const double b = (i < 2 && j < 3) ? B.at(i, j) : 0.0;
      EXPECT_DOUBLE_EQ(D.at(i, j), a - b) << i << "," << j;
    }
  }
}

TEST(ExtOps, AddAndInplaceWithExtents) {
  RawMem mm;
  Matrix<double> A(2, 2), D(3, 3), D0(3, 3);
  A.at(0, 0) = 1;
  A.at(1, 1) = 2;
  Rng rng(4);
  rng.fill_uniform(D.storage());
  copy_matrix<double>(D.view(), D0.view());
  ext_add_inplace(mm, 3, 3, D.data(), D.ld(), A.data(), A.ld(), 2, 2);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 3; ++i) {
      const double a = (i < 2 && j < 2) ? A.at(i, j) : 0.0;
      EXPECT_DOUBLE_EQ(D.at(i, j), D0.at(i, j) + a);
    }
  copy_matrix<double>(D0.view(), D.view());
  ext_sub_inplace(mm, 3, 3, D.data(), D.ld(), A.data(), A.ld(), 2, 2);
  for (int j = 0; j < 3; ++j)
    for (int i = 0; i < 3; ++i) {
      const double a = (i < 2 && j < 2) ? A.at(i, j) : 0.0;
      EXPECT_DOUBLE_EQ(D.at(i, j), D0.at(i, j) - a);
    }
}

TEST(ExtOps, FullExtentsDegenerateToViewOps) {
  RawMem mm;
  const int r = 8, c = 6;
  Matrix<double> A(r, c), B(r, c), D1(r, c), D2(r, c);
  Rng rng(5);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  view_add(mm, r, c, D1.data(), D1.ld(), A.data(), A.ld(), B.data(), B.ld());
  ext_add(mm, r, c, D2.data(), D2.ld(), A.data(), A.ld(), r, c, B.data(),
          B.ld(), r, c);
  EXPECT_EQ(max_abs_diff<double>(D1.view(), D2.view()), 0.0);
}

}  // namespace
}  // namespace strassen::blas
