#include "core/modgemm.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/scope.hpp"

namespace strassen::core {

namespace detail {

analysis::ScheduleFamily parse_schedule_family(const char* value) {
  using analysis::ScheduleFamily;
  STRASSEN_REQUIRE(value != nullptr, "STRASSEN_SCHEDULE: null value");
  if (std::strcmp(value, "auto") == 0) return ScheduleFamily::kAuto;
  if (std::strcmp(value, "winograd") == 0) return ScheduleFamily::kWinograd;
  if (std::strcmp(value, "winograd-lowmem") == 0)
    return ScheduleFamily::kLowMem;
  if (std::strcmp(value, "winograd-inplace") == 0)
    return ScheduleFamily::kInPlace;
  STRASSEN_REQUIRE(false, "STRASSEN_SCHEDULE: unknown schedule family \""
                              << value
                              << "\" (expected auto, winograd, "
                                 "winograd-lowmem or winograd-inplace)");
  return ScheduleFamily::kAuto;  // unreachable
}

analysis::ScheduleFamily env_schedule_family() {
  // Re-read on every call (getenv is cheap against the O(n^3) work that
  // follows, and tests flip the variable mid-process).  A malformed value
  // throws, so every modgemm under a bad environment fails loudly rather
  // than silently running some default.
  const char* env = std::getenv("STRASSEN_SCHEDULE");
  if (env == nullptr || *env == '\0') return analysis::ScheduleFamily::kAuto;
  return parse_schedule_family(env);
}

layout::ExecStrategy parse_exec_strategy(const char* value) {
  using layout::ExecStrategy;
  STRASSEN_REQUIRE(value != nullptr, "STRASSEN_STRATEGY: null value");
  if (std::strcmp(value, "auto") == 0) return ExecStrategy::kAuto;
  if (std::strcmp(value, "morton") == 0) return ExecStrategy::kMorton;
  if (std::strcmp(value, "packfused") == 0) return ExecStrategy::kPackFused;
  STRASSEN_REQUIRE(false, "STRASSEN_STRATEGY: unknown execution strategy \""
                              << value
                              << "\" (expected auto, morton or packfused)");
  return ExecStrategy::kAuto;  // unreachable
}

layout::ExecStrategy env_exec_strategy() {
  // Same discipline as STRASSEN_SCHEDULE: re-read per call, loud rejection
  // of malformed values before any write to C.
  const char* env = std::getenv("STRASSEN_STRATEGY");
  if (env == nullptr || *env == '\0') return layout::ExecStrategy::kAuto;
  return parse_exec_strategy(env);
}

analysis::AlgoFamily parse_algo_family(const char* value) {
  using analysis::AlgoFamily;
  STRASSEN_REQUIRE(value != nullptr, "STRASSEN_ALGO: null value");
  if (std::strcmp(value, "auto") == 0) return AlgoFamily::kAuto;
  if (std::strcmp(value, "222") == 0) return AlgoFamily::k222;
  if (std::strcmp(value, "323") == 0) return AlgoFamily::k323;
  if (std::strcmp(value, "234") == 0) return AlgoFamily::k234;
  if (std::strcmp(value, "333") == 0) return AlgoFamily::k333;
  STRASSEN_REQUIRE(false, "STRASSEN_ALGO: unknown algorithm family \""
                              << value
                              << "\" (expected auto, 222, 323, 234 or 333)");
  return AlgoFamily::kAuto;  // unreachable
}

analysis::AlgoFamily env_algo_family() {
  // Same discipline as STRASSEN_SCHEDULE: re-read per call, loud rejection
  // of malformed values before any write to C.
  const char* env = std::getenv("STRASSEN_ALGO");
  if (env == nullptr || *env == '\0') return analysis::AlgoFamily::kAuto;
  return parse_algo_family(env);
}

}  // namespace detail

// The production wrappers open an obs::CallScope: it resolves the report
// target (explicit pointer, ModgemmOptions::report, or a scope-local report
// the STRASSEN_OBS sink emits), installs the thread's kernel-telemetry
// collector when the call is observed, and stays entirely inert otherwise.

void modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
             const double* A, int lda, const double* B, int ldb, double beta,
             double* C, int ldc, const ModgemmOptions& opt,
             ModgemmReport* report) {
  obs::CallScope scope("modgemm", report ? report : opt.report);
  RawMem raw;
  modgemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
             scope.report());
}

void modgemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
             int lda, const float* B, int ldb, float beta, float* C, int ldc,
             const ModgemmOptions& opt, ModgemmReport* report) {
  obs::CallScope scope("modgemm", report ? report : opt.report);
  RawMem raw;
  modgemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
             scope.report());
}

namespace {

// Shared nothrow wrapper: validate without throwing, then translate any
// escaping exception into a Status.  The validation runs first so a bad
// argument is reported as such even though modgemm would also throw for it.
template <class T>
Status try_modgemm_impl(Op opa, Op opb, int m, int n, int k, T alpha,
                        const T* A, int lda, const T* B, int ldb, T beta,
                        T* C, int ldc, const ModgemmOptions& opt,
                        ModgemmReport* report) noexcept {
  const Status s = validate_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  if (s != Status::kOk) return s;
  try {
    modgemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
            report);
    return Status::kOk;
  } catch (const std::bad_alloc&) {
    return Status::kOutOfMemory;
  } catch (...) {
    return Status::kInternalError;
  }
}

}  // namespace

Status try_modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
                   const double* A, int lda, const double* B, int ldb,
                   double beta, double* C, int ldc, const ModgemmOptions& opt,
                   ModgemmReport* report) noexcept {
  return try_modgemm_impl(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                          ldc, opt, report);
}

Status try_modgemm(Op opa, Op opb, int m, int n, int k, float alpha,
                   const float* A, int lda, const float* B, int ldb,
                   float beta, float* C, int ldc, const ModgemmOptions& opt,
                   ModgemmReport* report) noexcept {
  return try_modgemm_impl(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                          ldc, opt, report);
}

}  // namespace strassen::core
