#include "baselines/dgemmw.hpp"

namespace strassen::baselines {

namespace {
std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }
}  // namespace

std::size_t dgemmw_workspace_bytes(int m, int n, int k, int cutoff,
                                   std::size_t elem_size) {
  STRASSEN_REQUIRE(cutoff >= 1, "bad cutoff");
  std::size_t total = 0;
  // Ceil-halving chain; five temporaries per level (tS, tT, tP, tU, tQ).
  while (std::min(m, std::min(n, k)) > cutoff) {
    const int m2 = (m + 1) / 2;
    const int k2 = (k + 1) / 2;
    const int n2 = (n + 1) / 2;
    total += round_up64(static_cast<std::size_t>(m2) * k2 * elem_size);
    total += round_up64(static_cast<std::size_t>(k2) * n2 * elem_size);
    total += 3 * round_up64(static_cast<std::size_t>(m2) * n2 * elem_size);
    m = m2;
    n = n2;
    k = k2;
  }
  return total;
}

void dgemmw(Op opa, Op opb, int m, int n, int k, double alpha, const double* A,
            int lda, const double* B, int ldb, double beta, double* C, int ldc,
            const DgemmwOptions& opt) {
  RawMem raw;
  dgemmw_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt);
}

void dgemmw(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
            int lda, const float* B, int ldb, float beta, float* C, int ldc,
            const DgemmwOptions& opt) {
  RawMem raw;
  dgemmw_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt);
}

}  // namespace strassen::baselines
