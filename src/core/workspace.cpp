#include "core/workspace.hpp"

#include "common/check.hpp"

namespace strassen::core {

namespace {
std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }
}  // namespace

std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size) {
  STRASSEN_REQUIRE(tm >= 1 && tk >= 1 && tn >= 1 && depth >= 0,
                   "bad workspace request");
  std::size_t total = 0;
  // Level l (from the top, l = 1..depth) allocates temporaries over the
  // quadrants of a block whose leaves are 2^(depth-l) tiles on a side.
  for (int l = 1; l <= depth; ++l) {
    const std::size_t scale = std::size_t{1} << (2 * (depth - l));
    total += round_up64(static_cast<std::size_t>(tm) * tk * scale * elem_size);
    total += round_up64(static_cast<std::size_t>(tk) * tn * scale * elem_size);
    total += round_up64(static_cast<std::size_t>(tm) * tn * scale * elem_size);
  }
  return total;
}

}  // namespace strassen::core
