// kernels/registry.hpp -- the leaf-kernel engine and its runtime dispatch.
//
// The Morton layout's promise (paper Fig. 3) is that leaf tiles are small,
// CONTIGUOUS (ld == rows) and 64-byte aligned, so a tuned register-blocked
// micro-kernel runs at a stable fraction of peak across the whole tile range.
// This module delivers that kernel: a table of ISA-specific micro-kernel
// implementations
//
//   scalar    4x4  -- the portable fallback; byte-for-byte the code the
//                     generic MemModel template produces (seed behaviour)
//   avx2      8x6 and 4x8 (double, AVX2+FMA), selected per shape or pinned
//   neon      4x4  (double, Advanced SIMD; AArch64 and ARMv7-NEON)
//
// selected once at startup by a CPU probe (cpuid on x86, HWCAP/mandatory
// NEON on ARM), overridable by the STRASSEN_KERNEL environment variable
// ("scalar" | "avx2" | "avx2-8x6" | "avx2-4x8" | "neon") and per call via
// ModgemmOptions::kernel.
//
// The engine serves ONLY the production RawMem/double instantiation: the
// templated kernels in blas/kernels.hpp and blas/level1.hpp route to the
// active table through `if constexpr` when (MM, T) == (RawMem, double), and
// compile the generic scalar loops for every other model.  TracingMem /
// CountingMem executions therefore always run the deterministic scalar
// address stream the cache-simulation results depend on, no matter which
// kernel is active.
//
// Each ISA lives in its own translation unit compiled with per-file ISA
// flags (see src/CMakeLists.txt), so a portable -march baseline binary still
// carries the AVX2 kernels and enables them only on hosts whose cpuid says
// they can run.
#pragma once

#include <cstddef>
#include <vector>

#include "blas/kernels.hpp"

namespace strassen::blas::kernels {

// Which implementation family a table belongs to.  kAuto is not a table: it
// names "re-run the probe + environment override" in setter contexts.
enum class Kind { kAuto = -1, kScalar = 0, kAvx2 = 1, kNeon = 2 };

// Register-block variant of the AVX2 kernel.  kAuto picks per call shape
// (n % 6 == 0 favours 8x6, n % 8 == 0 favours 4x8); the autotuner or the
// STRASSEN_KERNEL suffix can pin one.
enum class Avx2Variant { kAuto = 0, k8x6 = 1, k4x8 = 2 };

// Operand combination applied on the fly by the fused kernels.
enum class FusedOp { kAdd, kSub };

// One ISA's kernel table.  All matrices are column-major doubles; the gemm
// entry accepts arbitrary leading dimensions (edges and the blocked driver
// pass strided views), while the fused entries and the element-wise entries
// are only ever called on contiguous quadrants.  Fused pointers may be null:
// the Winograd recursion then materializes operand sums exactly as the seed
// code did (this is deliberate for the scalar table, which must stay
// bit-identical to seed).
struct LeafKernels {
  Kind kind;
  const char* name;  // "scalar", "avx2", "neon"
  int mr, nr;        // register block of the main path

  // C(m x n) {=, +=} alpha * A(m x k) . B(k x n).
  void (*gemm)(int m, int n, int k, const double* A, int lda, const double* B,
               int ldb, double* C, int ldc, LeafMode mode, double alpha);

  // Fused leaf products (Overwrite, alpha == 1): the S/T operand sum of the
  // Winograd schedule is computed on the fly instead of through a temporary,
  // removing one full memory pass per fused operand.
  //   C = (A1 op A2) . B
  void (*gemm_fused_a)(int m, int n, int k, const double* A1, const double* A2,
                       FusedOp opa, int lda, const double* B, int ldb,
                       double* C, int ldc);
  //   C = A . (B1 op B2)
  void (*gemm_fused_b)(int m, int n, int k, const double* A, int lda,
                       const double* B1, const double* B2, FusedOp opb, int ldb,
                       double* C, int ldc);
  //   C = (A1 opa A2) . (B1 opb B2)
  void (*gemm_fused_ab)(int m, int n, int k, const double* A1,
                        const double* A2, FusedOp opa, int lda,
                        const double* B1, const double* B2, FusedOp opb,
                        int ldb, double* C, int ldc);

  // Contiguous element-wise quadrant kernels (the 15 Winograd additions).
  // Alias contract as in level1.hpp: dst may equal a or b exactly; partial
  // overlap is not supported.
  void (*vadd)(std::size_t n, double* dst, const double* a, const double* b);
  void (*vsub)(std::size_t n, double* dst, const double* a, const double* b);
  void (*vadd_inplace)(std::size_t n, double* dst, const double* a);
  void (*vsub_inplace)(std::size_t n, double* dst, const double* a);
};

// ---- capability probing ---------------------------------------------------

// True when the running CPU can execute `kind` (cpuid on x86, HWCAP on
// 32-bit ARM; AArch64 implies NEON).  Independent of what was compiled in.
bool cpu_supports(Kind kind) noexcept;

// Kinds whose kernel TU was compiled into this binary (scalar always is).
std::vector<Kind> compiled_kernels();

// compiled_kernels() filtered by cpu_supports(): the kinds that can actually
// run here.  Never empty (scalar is always present).
std::vector<Kind> available_kernels();

bool is_available(Kind kind) noexcept;

// ---- active-kernel state --------------------------------------------------

// The process-wide active kernel.  Initialized on first use from the
// STRASSEN_KERNEL environment variable when set (unavailable or unknown
// values degrade to scalar -- the portable guarantee), else from the probe
// (best available).
Kind active_kernel() noexcept;

// Sets the active kernel.  kAuto re-runs the environment/probe selection;
// an unavailable kind degrades to kScalar.  This is process-global state:
// concurrent calls racing different pins get an arbitrary winner, so servers
// should pin once at startup (or per call via ModgemmOptions::kernel, which
// is documented to have the same global effect).
void set_active_kernel(Kind kind) noexcept;

Avx2Variant avx2_variant() noexcept;
void set_avx2_variant(Avx2Variant v) noexcept;

// The active table (never null).
const LeafKernels& active() noexcept;

// Parses a STRASSEN_KERNEL-style value: "scalar", "avx2", "avx2-8x6",
// "avx2-4x8" or "neon" ("" and "auto" mean kAuto).  Any other string throws
// std::invalid_argument naming the offending value -- this is the loud
// counterpart of the noexcept dispatch chain's degrade-to-scalar guarantee.
// Writes the pinned AVX2 variant (if the value names one) through `variant`
// when non-null.
Kind parse_kernel_name(const char* value, Avx2Variant* variant = nullptr);

// Validates the STRASSEN_KERNEL environment variable, throwing (once per
// offending value; cached) like parse_kernel_name on a malformed one.
// Called by the gemm entry points before any work, so a typo'd override
// fails the call loudly instead of silently running the scalar table.
// Unset/empty is valid (the probe decides).
void require_valid_kernel_env();

// Table for a specific compiled-in kind; nullptr when its TU was compiled
// out (e.g. neon on an x86 build).
const LeafKernels* kernel_table(Kind kind) noexcept;

const char* kind_name(Kind kind) noexcept;
const char* variant_name(Avx2Variant v) noexcept;

// RAII pin for tests and per-call overrides: saves the active kernel (and
// AVX2 variant), sets the requested one, restores on destruction.
class ScopedKernel {
 public:
  explicit ScopedKernel(Kind kind, Avx2Variant variant = Avx2Variant::kAuto)
      : saved_kind_(active_kernel()), saved_variant_(avx2_variant()) {
    set_active_kernel(kind);
    set_avx2_variant(variant);
  }
  ~ScopedKernel() {
    set_active_kernel(saved_kind_);
    set_avx2_variant(saved_variant_);
  }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  Kind saved_kind_;
  Avx2Variant saved_variant_;
};

namespace detail {
// Per-ISA table accessors, one per kernel TU.  A TU whose ISA was not
// enabled at compile time returns nullptr (see avx2.cpp / neon.cpp stubs).
const LeafKernels& scalar_table() noexcept;
const LeafKernels* avx2_table() noexcept;
const LeafKernels* neon_table() noexcept;
}  // namespace detail

}  // namespace strassen::blas::kernels
