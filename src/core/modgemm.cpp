#include "core/modgemm.hpp"

#include "obs/scope.hpp"

namespace strassen::core {

// The production wrappers open an obs::CallScope: it resolves the report
// target (explicit pointer, ModgemmOptions::report, or a scope-local report
// the STRASSEN_OBS sink emits), installs the thread's kernel-telemetry
// collector when the call is observed, and stays entirely inert otherwise.

void modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
             const double* A, int lda, const double* B, int ldb, double beta,
             double* C, int ldc, const ModgemmOptions& opt,
             ModgemmReport* report) {
  obs::CallScope scope("modgemm", report ? report : opt.report);
  RawMem raw;
  modgemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
             scope.report());
}

void modgemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
             int lda, const float* B, int ldb, float beta, float* C, int ldc,
             const ModgemmOptions& opt, ModgemmReport* report) {
  obs::CallScope scope("modgemm", report ? report : opt.report);
  RawMem raw;
  modgemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
             scope.report());
}

namespace {

// Shared nothrow wrapper: validate without throwing, then translate any
// escaping exception into a Status.  The validation runs first so a bad
// argument is reported as such even though modgemm would also throw for it.
template <class T>
Status try_modgemm_impl(Op opa, Op opb, int m, int n, int k, T alpha,
                        const T* A, int lda, const T* B, int ldb, T beta,
                        T* C, int ldc, const ModgemmOptions& opt,
                        ModgemmReport* report) noexcept {
  const Status s = validate_gemm_args(opa, opb, m, n, k, lda, ldb, ldc);
  if (s != Status::kOk) return s;
  try {
    modgemm(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
            report);
    return Status::kOk;
  } catch (const std::bad_alloc&) {
    return Status::kOutOfMemory;
  } catch (...) {
    return Status::kInternalError;
  }
}

}  // namespace

Status try_modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
                   const double* A, int lda, const double* B, int ldb,
                   double beta, double* C, int ldc, const ModgemmOptions& opt,
                   ModgemmReport* report) noexcept {
  return try_modgemm_impl(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                          ldc, opt, report);
}

Status try_modgemm(Op opa, Op opb, int m, int n, int k, float alpha,
                   const float* A, int lda, const float* B, int ldb,
                   float beta, float* C, int ldc, const ModgemmOptions& opt,
                   ModgemmReport* report) noexcept {
  return try_modgemm_impl(opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C,
                          ldc, opt, report);
}

}  // namespace strassen::core
