// Unit tests for the thread pool and fork/join primitives (src/parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace strassen::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 20; ++i) group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, NullPoolRunsInline) {
  std::atomic<int> count{0};
  TaskGroup group(nullptr);
  group.run([&] { ++count; });
  EXPECT_EQ(count.load(), 1);  // already done: inline execution
  group.wait();
}

TEST(ThreadPool, NestedForkJoinDoesNotDeadlock) {
  // Each outer task forks inner tasks and waits -- the pattern of
  // spawn_levels >= 2.  Must complete even on a 1-thread pool thanks to the
  // help-first wait.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 7; ++i) {
    outer.run([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 7; ++j) inner.run([&] { ++leaves; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 49);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
  ThreadPool pool(1);
  // Saturate the single worker with a task that spins until released, then
  // queue more work and drain it from this thread.  Wait for the worker to
  // actually START the blocker first -- otherwise try_run_one() below could
  // pop the blocker itself and spin this thread forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  group.run([&] {
    started = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) group.run([&] { ++count; });
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(count.load(), 5);
  release = true;
  group.wait();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) group.run([&] { ++count; });
    group.wait();
  }  // pool destroyed here
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, 0, 1000, 16, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A below-grain range runs inline as one chunk.
  std::atomic<int> sum{0};
  parallel_for(&pool, 0, 4, 100, [&](std::int64_t lo, std::int64_t hi) {
    sum += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(sum.load(), 4);
}

TEST(ParallelFor, NullPoolIsSerial) {
  std::vector<int> hits(64, 0);
  parallel_for(nullptr, 0, 64, 4, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, RejectsBadGrain) {
  EXPECT_THROW(
      parallel_for(nullptr, 0, 10, 0, [](std::int64_t, std::int64_t) {}),
      std::invalid_argument);
}

TEST(ThreadPoolErrors, TaskExceptionSurfacesAtWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.run([] { throw std::runtime_error("task failed"); });
  try {
    group.wait();
    FAIL() << "wait() must rethrow the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task failed");
  }
}

TEST(ThreadPoolErrors, AllSiblingsFinishBeforeRethrow) {
  // wait() may only rethrow after every task in the group has completed --
  // otherwise a task could still be running while the caller unwinds the
  // state it references.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) {
    group.run([&done, i] {
      if (i == 0) throw std::runtime_error("early failure");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++done;
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(done.load(), 31);
}

TEST(ThreadPoolErrors, PoolAndGroupUsableAfterException) {
  ThreadPool pool(2);
  {
    TaskGroup group(&pool);
    group.run([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(group.wait(), std::runtime_error);
    group.wait();  // the error was collected; a second wait is clean
  }
  std::atomic<int> count{0};
  TaskGroup again(&pool);
  for (int i = 0; i < 50; ++i) again.run([&count] { ++count; });
  again.wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolErrors, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  for (int i = 0; i < 5; ++i)
    group.run([] { throw std::runtime_error("one of many"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  group.wait();  // the other four were dropped, not queued up
}

TEST(ThreadPoolErrors, InlineGroupDefersExceptionToWait) {
  // Null-pool groups run tasks inline but must keep the same contract:
  // run() returns normally, wait() rethrows.
  TaskGroup group(nullptr);
  group.run([] { throw std::logic_error("inline"); });
  EXPECT_THROW(group.wait(), std::logic_error);
}

TEST(ThreadPoolErrors, DestructorDropsUncollectedException) {
  ThreadPool pool(2);
  {
    TaskGroup group(&pool);
    group.run([] { throw std::runtime_error("never collected"); });
  }  // ~TaskGroup joins and swallows -- must not terminate the process
  SUCCEED();
}

TEST(ThreadPoolErrors, FireAndForgetErrorParkedInPool) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.take_error(), nullptr);
  pool.submit([] { throw std::runtime_error("detached"); });
  // No join point exists for a bare submit(); poll the pool's error slot.
  std::exception_ptr err;
  for (int spin = 0; spin < 10000 && !err; ++spin) {
    err = pool.take_error();
    if (!err) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(err != nullptr);
  EXPECT_THROW(std::rethrow_exception(err), std::runtime_error);
  EXPECT_EQ(pool.take_error(), nullptr);  // collecting cleared the slot
}

// RAII submit-gate install so a failing EXPECT cannot leak a gate into the
// next test.
struct ScopedSubmitGate {
  explicit ScopedSubmitGate(ThreadPool::SubmitGate gate, void* user) {
    ThreadPool::set_submit_gate(gate, user);
  }
  ~ScopedSubmitGate() { ThreadPool::set_submit_gate(nullptr, nullptr); }
};

bool deny_all_submissions(void*) { return false; }

TEST(ThreadPoolErrors, FailedSubmissionRollsBackPendingCount) {
  // A submission that throws (OOM building the task object) must leave the
  // group's pending count untouched: wait()/~TaskGroup would otherwise spin
  // forever, deadlocking the serial fallbacks that catch the rethrow to
  // finish the work inline.
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  group.run([&ran] { ++ran; });
  {
    ScopedSubmitGate deny(&deny_all_submissions, nullptr);
    EXPECT_THROW(group.run([&ran] { ++ran; }), std::bad_alloc);
  }
  group.wait();  // must terminate, and only the first task ran
  EXPECT_EQ(ran.load(), 1);
  // Group and pool both stay usable after the failure.
  group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolErrors, FailedFireAndForgetSubmitThrowsToCaller) {
  ThreadPool pool(2);
  ScopedSubmitGate deny(&deny_all_submissions, nullptr);
  EXPECT_THROW(pool.submit([] {}), std::bad_alloc);
}

TEST(ThreadPoolSteals, BlockedOwnerForcesASteal) {
  // Deterministic steal: the task below runs on one of the two workers,
  // pushes children onto that worker's OWN deque, then holds the worker
  // hostage until a child has run.  The only agent that can run a child is
  // the other worker -- and its only source is stealing from the hostage's
  // deque (the injection queue is empty) -- so steal_count must advance.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> owner_started{false};
  TaskGroup group(&pool);
  group.run([&] {
    owner_started = true;
    TaskGroup inner(&pool);
    for (int i = 0; i < 8; ++i) inner.run([&ran] { ++ran; });
    while (ran.load() == 0) std::this_thread::yield();
    inner.wait();
  });
  // Spin (don't help) until a WORKER owns the outer task -- group.wait()'s
  // help-first draining would otherwise run it on this thread, where the
  // children go through the injection queue instead of a worker deque.
  while (!owner_started.load()) std::this_thread::yield();
  group.wait();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_GE(pool.steal_count(), 1u);
  EXPECT_GE(pool.tasks_executed(), 9u);  // the outer task + its children
}

TEST(ThreadPoolStress, OversubscribedNestedForkJoin) {
  // More threads than this host has cores (CI runs this leg under TSan with
  // STRASSEN_THREADS > nproc on top): three levels of nested fork/join keep
  // steal-half, sub-stealing of parked batches, and help-first waits all
  // active at once.
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 16; ++i) {
    outer.run([&] {
      TaskGroup mid(&pool);
      for (int j = 0; j < 8; ++j) {
        mid.run([&] {
          TaskGroup inner(&pool);
          for (int l = 0; l < 4; ++l) inner.run([&] { ++sum; });
          inner.wait();
        });
      }
      mid.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(sum.load(), 16 * 8 * 4);
  EXPECT_EQ(pool.take_error(), nullptr);
}

TEST(ThreadPoolEnv, StrassenThreadsControlsDefaultWidth) {
  ASSERT_EQ(setenv("STRASSEN_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3);
  {
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 3);
  }
  // Unparseable or out-of-range values are rejected loudly -- a typo'd
  // width must not silently run at hardware concurrency.
  ASSERT_EQ(setenv("STRASSEN_THREADS", "not-a-number", 1), 0);
  EXPECT_THROW(ThreadPool::default_thread_count(), std::invalid_argument);
  ASSERT_EQ(setenv("STRASSEN_THREADS", "-2", 1), 0);
  EXPECT_THROW(ThreadPool::default_thread_count(), std::invalid_argument);
  // Empty means unset.
  ASSERT_EQ(setenv("STRASSEN_THREADS", "", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1);
  unsetenv("STRASSEN_THREADS");
}

TEST(ThreadPoolEnv, NumaPinningIsBestEffortAndHarmless) {
  // Pinning may fail under restrictive cpusets; the contract is only that
  // the pool still works and the flag reflects what actually happened.
  ASSERT_EQ(setenv("STRASSEN_NUMA", "1", 1), 0);
  {
    ThreadPool pool(2);
    std::atomic<int> n{0};
    TaskGroup group(&pool);
    for (int i = 0; i < 10; ++i) group.run([&] { ++n; });
    group.wait();
    EXPECT_EQ(n.load(), 10);
    (void)pool.numa_pinned();
  }
  unsetenv("STRASSEN_NUMA");
  ThreadPool unpinned(2);
  EXPECT_FALSE(unpinned.numa_pinned());
}

TEST(ParallelForErrors, ChunkExceptionPropagatesPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(&pool, 0, 1000, 8,
                            [](std::int64_t lo, std::int64_t) {
                              if (lo == 0) throw std::runtime_error("chunk");
                            }),
               std::runtime_error);
  std::atomic<int> covered{0};
  parallel_for(&pool, 0, 100, 8, [&](std::int64_t lo, std::int64_t hi) {
    covered += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(covered.load(), 100);
}

}  // namespace
}  // namespace strassen::parallel
