// obs/collector.hpp -- the hot-path side of the observability subsystem.
//
// A Collector is a block of relaxed atomic counters that the library's
// kernels feed while a report-enabled call is in flight: leaf/fused kernel
// invocations and their time, element-wise quadrant kernel invocations,
// workspace allocations noted by the parallel driver, and per-thread task
// accounting from the thread pool.
//
// Activation is a thread-local pointer: the production drivers install a
// Collector for the duration of one reported call (obs::ScopedCollector) and
// the thread pool re-installs the submitting thread's collector inside each
// task, so counts from pool workers land in the same block.  When no report
// was requested the pointer is null and every hook is a single thread-local
// load and a branch -- no clock reads, no atomics, no allocations.
//
// This header is deliberately include-light (it is pulled in by the leaf
// kernel headers, which everything compiles against): <atomic>, <chrono> and
// the integer headers only, no library types.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace strassen::obs {

// Monotonic nanosecond clock for kernel/task timing.  Only called on the
// enabled path.
inline std::uint64_t now_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shared counter block for one observed call.  All counters are relaxed
// atomics: pool workers increment concurrently, and the only reader
// (CallScope finalization) runs after every task joined.
struct Collector {
  // Slot 0 is the calling (non-pool) thread; pool worker i uses slot i + 1.
  // Pools wider than the table fold their overflow into the last slot.
  static constexpr int kMaxThreadSlots = 65;

  // --- kernel telemetry ---
  std::atomic<std::uint64_t> leaf_calls{0};
  std::atomic<std::uint64_t> fused_calls{0};
  std::atomic<std::uint64_t> leaf_nanos{0};  // plain + fused leaf products
  std::atomic<std::uint64_t> elementwise_calls{0};

  // --- workspace accounting (parallel driver; the serial driver writes its
  // --- single arena's numbers into the report directly) ---
  std::atomic<std::uint64_t> workspace_noted_bytes{0};
  std::atomic<std::uint64_t> workspace_allocations{0};

  // --- parallel stats ---
  std::atomic<std::uint64_t> tasks_executed{0};
  std::atomic<std::uint64_t> task_nanos{0};
  std::atomic<std::uint64_t> steals{0};  // tasks migrated between workers
  std::atomic<std::uint64_t> per_thread_tasks[kMaxThreadSlots]{};

  void note_leaf(std::uint64_t nanos, bool fused) noexcept {
    (fused ? fused_calls : leaf_calls).fetch_add(1, std::memory_order_relaxed);
    leaf_nanos.fetch_add(nanos, std::memory_order_relaxed);
  }
  void note_elementwise() noexcept {
    elementwise_calls.fetch_add(1, std::memory_order_relaxed);
  }
  void note_workspace(std::size_t bytes) noexcept {
    workspace_noted_bytes.fetch_add(bytes, std::memory_order_relaxed);
    workspace_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  // One task of this call migrated from the deque of the worker that spawned
  // it to another thread by a steal.  Called by the work-stealing scheduler
  // at steal time (thief thread, collector not necessarily installed there --
  // the pointer travels with the task).
  void note_steal() noexcept {
    steals.fetch_add(1, std::memory_order_relaxed);
  }
  // worker_index: -1 for the calling thread, otherwise the pool worker index.
  void note_task(int worker_index, std::uint64_t nanos) noexcept {
    tasks_executed.fetch_add(1, std::memory_order_relaxed);
    task_nanos.fetch_add(nanos, std::memory_order_relaxed);
    int slot = worker_index + 1;
    if (slot < 0) slot = 0;
    if (slot >= kMaxThreadSlots) slot = kMaxThreadSlots - 1;
    per_thread_tasks[slot].fetch_add(1, std::memory_order_relaxed);
  }
};

namespace detail {
// The active collector of the current thread (null = observability off).
// extern so the hot-path check inlines to one TLS load.
extern thread_local Collector* tl_collector;
}  // namespace detail

// Collector observing the current thread, or null when no reported call is
// in flight here.  THE hot-path check: every kernel hook starts with this.
inline Collector* current() noexcept { return detail::tl_collector; }

// RAII installation of a collector on the current thread, restoring the
// previous one on destruction (nesting = inner call contributes to the
// outer collector).
class ScopedCollector {
 public:
  explicit ScopedCollector(Collector* c) noexcept
      : prev_(detail::tl_collector) {
    detail::tl_collector = c;
  }
  ~ScopedCollector() { detail::tl_collector = prev_; }
  ScopedCollector(const ScopedCollector&) = delete;
  ScopedCollector& operator=(const ScopedCollector&) = delete;

 private:
  Collector* prev_;
};

// Times one leaf (or fused-leaf) product into the current collector; a no-op
// without one.  Used by the production gemm_leaf dispatch and the fused
// Winograd kernel calls.
class LeafTimer {
 public:
  explicit LeafTimer(bool fused = false) noexcept
      : c_(current()), fused_(fused), t0_(c_ != nullptr ? now_nanos() : 0) {}
  ~LeafTimer() {
    if (c_ != nullptr) c_->note_leaf(now_nanos() - t0_, fused_);
  }
  LeafTimer(const LeafTimer&) = delete;
  LeafTimer& operator=(const LeafTimer&) = delete;

 private:
  Collector* c_;
  bool fused_;
  std::uint64_t t0_;
};

}  // namespace strassen::obs
