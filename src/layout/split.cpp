#include "layout/split.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace strassen::layout {

Shape classify(int rows, int cols, double desired_ratio) {
  STRASSEN_REQUIRE(rows >= 1 && cols >= 1, "bad matrix shape");
  STRASSEN_REQUIRE(desired_ratio >= 1.0, "ratio must be >= 1");
  if (static_cast<double>(cols) > desired_ratio * rows) return Shape::Wide;
  if (static_cast<double>(rows) > desired_ratio * cols) return Shape::Lean;
  return Shape::WellBehaved;
}

std::vector<Chunk> balanced_chunks(int dim, int max_chunk) {
  STRASSEN_REQUIRE(dim >= 1 && max_chunk >= 1, "bad chunking request");
  const int parts = (dim + max_chunk - 1) / max_chunk;
  std::vector<Chunk> out;
  out.reserve(parts);
  // Sizes differ by at most one: the first `rem` chunks get an extra element.
  const int base = dim / parts;
  const int rem = dim % parts;
  int offset = 0;
  for (int p = 0; p < parts; ++p) {
    const int size = base + (p < rem ? 1 : 0);
    out.push_back({offset, size});
    offset += size;
  }
  STRASSEN_ASSERT(offset == dim);
  return out;
}

SplitPlan plan_split(int m, int k, int n, const TileOptions& opt) {
  SplitPlan plan;
  const GemmPlan whole = plan_gemm(m, k, n, opt);
  if (whole.direct || whole.feasible) {
    plan.needed = false;
    plan.depth = whole.depth;
    plan.m_chunks = {{0, m}};
    plan.k_chunks = {{0, k}};
    plan.n_chunks = {{0, n}};
    return plan;
  }
  // Unify on the depth the smallest dimension prefers; chunk every dimension
  // down to at most max_tile << depth.  Balanced chunking keeps each chunk
  // at least half that bound, i.e. >= min_tile << depth whenever
  // max_tile >= 2 * min_tile, so every chunk is feasible at `depth`.
  const int min_dim = std::min(m, std::min(k, n));
  const DimPlan anchor = choose_dim(min_dim, opt);
  plan.needed = true;
  plan.depth = anchor.depth;
  const int cap = opt.max_tile << anchor.depth;
  plan.m_chunks = balanced_chunks(m, cap);
  plan.k_chunks = balanced_chunks(k, cap);
  plan.n_chunks = balanced_chunks(n, cap);
  return plan;
}

}  // namespace strassen::layout
