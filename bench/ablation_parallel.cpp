// ablation_parallel -- scaling of the task-parallel MODGEMM (the library's
// extension along the paper's "further improve performance" future-work
// axis): serial vs 7-way (spawn 1) vs 49-way (spawn 2) task decomposition
// across thread counts.
//
// Expected shape: on a multicore host, near-linear speedup to ~7 threads at
// spawn 1 (one task per product) with spawn 2 helping load balance beyond;
// on a single-core host all configurations tie (the results are still
// bit-identical, see tests/test_pmodgemm.cpp).
#include <cstdio>
#include <thread>

#include "core/modgemm.hpp"
#include "parallel/pmodgemm.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: task parallelism",
                "pmodgemm speedup over serial modgemm, by threads and spawn "
                "depth");
  std::printf("host hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  Table table({"n", "threads", "spawn", "time(s)", "speedup"});
  args.maybe_mirror(table, "ablation_parallel");

  std::vector<int> sizes =
      args.quick ? std::vector<int>{513} : std::vector<int>{400, 513, 800};
  std::vector<int> threads{1, 2, 4};
  for (int n : sizes) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 19);
    const MeasureOptions opt = bench::protocol(args, n);
    const double t_serial = measure(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                        p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(),
                        p.C.ld());
        },
        opt);
    table.add_row({Table::num(static_cast<long long>(n)), "serial", "-",
                   Table::num(t_serial, 4), "1.00"});
    for (int t : threads) {
      for (int spawn : {1, 2}) {
        parallel::ThreadPool pool(t);
        parallel::ParallelOptions popt;
        popt.spawn_levels = spawn;
        const double ts = measure(
            [&] {
              parallel::pmodgemm(&pool, Op::NoTrans, Op::NoTrans, n, n, n, 1.0,
                                 p.A.data(), p.A.ld(), p.B.data(), p.B.ld(),
                                 0.0, p.C.data(), p.C.ld(), popt);
            },
            opt);
        table.add_row({Table::num(static_cast<long long>(n)),
                       Table::num(static_cast<long long>(t)),
                       Table::num(static_cast<long long>(spawn)),
                       Table::num(ts, 4), Table::num(t_serial / ts, 2)});
      }
    }
  }
  table.print();
  return 0;
}
