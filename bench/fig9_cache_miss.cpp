// fig9_cache_miss -- reproduces Figure 9: cache miss ratios of MODGEMM and
// DGEFMM on a simulated 16KB direct-mapped cache with 32-byte blocks, for
// matrix sizes 500..523.
//
// Expected shape (paper):
//   * MODGEMM's miss ratio (2-6%) sits below DGEFMM's (~8%);
//   * MODGEMM shows a dramatic DROP at n = 513: for n in [505,512] the
//     padded size is 512 with 32x32 tiles, whose 8KB quadrants sit exactly a
//     multiple of the 16KB cache apart (NW/SW conflict); at n = 513 the plan
//     jumps to T = 33 (padded 528) and the conflict alignment disappears.
#include <cstdio>

#include "common/ascii_plot.hpp"
#include "layout/plan.hpp"
#include "support/bench_common.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 9",
                "Simulated miss ratios, 16KB direct-mapped cache with 32B "
                "blocks (full executions incl. conversions)");

  Table table({"n", "MODGEMM miss%", "MODGEMM conflict%", "DGEFMM miss%",
               "MODGEMM tile", "MODGEMM padded"});
  args.maybe_mirror(table, "fig9_cache_miss");

  const int lo = 500, hi = 523;
  int step = args.quick ? 4 : 1;
  double mod_505_512 = 0.0, mod_at_513 = 0.0;
  double conflict_505_512 = 0.0, conflict_at_513 = 0.0;
  int count_505_512 = 0;
  std::vector<double> xs;
  PlotSeries mod_series{"MODGEMM miss%", 'M', {}};
  PlotSeries fmm_series{"DGEFMM miss%", 'F', {}};
  for (int n = lo; n <= hi; n = (args.quick && n == 512) ? 513 : n + step) {
    // MODGEMM runs with three-C's classification (the CProf analysis the
    // paper used to attribute the n=513 drop to conflict misses).
    const trace::TraceResult mod = trace::trace_multiply(
        trace::Impl::Modgemm, n, n, n, trace::paper_fig9_cache_classified());
    const trace::TraceResult fmm = trace::trace_multiply(
        trace::Impl::Dgefmm, n, n, n, trace::paper_fig9_cache());
    const layout::DimPlan plan = layout::choose_dim(n);
    const double conflict_pct =
        mod.total_accesses
            ? 100.0 * static_cast<double>(mod.levels[0].breakdown.conflict) /
                  static_cast<double>(mod.total_accesses)
            : 0.0;
    table.add_row({Table::num(static_cast<long long>(n)),
                   Table::num(100.0 * mod.l1_miss_ratio, 3),
                   Table::num(conflict_pct, 3),
                   Table::num(100.0 * fmm.l1_miss_ratio, 3),
                   Table::num(static_cast<long long>(plan.tile)),
                   Table::num(static_cast<long long>(plan.padded))});
    if (n >= 505 && n <= 512) {
      mod_505_512 += mod.l1_miss_ratio;
      conflict_505_512 += conflict_pct;
      ++count_505_512;
    }
    if (n == 513) {
      mod_at_513 = mod.l1_miss_ratio;
      conflict_at_513 = conflict_pct;
    }
    xs.push_back(n);
    mod_series.y.push_back(100.0 * mod.l1_miss_ratio);
    fmm_series.y.push_back(100.0 * fmm.l1_miss_ratio);
  }
  table.print();
  std::printf("\nMiss ratio vs n (the paper's Fig. 9 shape: MODGEMM's cliff "
              "at n = 513):\n%s",
              render_plot(xs, {mod_series, fmm_series}).c_str());
  if (count_505_512 > 0) {
    std::printf(
        "\nConflict-miss share of all accesses (MODGEMM): mean %.2f%% over n "
        "in [505,512] vs %.2f%% at n=513\n-- the drop is conflict misses, as "
        "the paper's CProf analysis found.\n",
        conflict_505_512 / count_505_512, conflict_at_513);
  }
  if (count_505_512 > 0 && mod_at_513 > 0.0) {
    std::printf(
        "\nMODGEMM miss ratio: mean %.2f%% over n in [505,512] (padded 512, "
        "T=32, power-of-two quadrant\nalignment) vs %.2f%% at n=513 (padded "
        "528, T=33).  Paper: a dramatic drop at 513 from the\nelimination of "
        "quadrant conflict misses.\n",
        100.0 * mod_505_512 / count_505_512, 100.0 * mod_at_513);
  }
  return 0;
}
