// obs/scope.hpp -- CallScope: the driver-side glue of the observability
// subsystem.
//
// A production entry point (core::modgemm, parallel::pmodgemm) constructs a
// CallScope at the top of the call with the user's report pointer (if any).
// The scope decides whether this call is observed:
//
//   * user passed a report          -> observed, results go to the user (and
//                                      to the env sink too when STRASSEN_OBS
//                                      is set)
//   * no report but STRASSEN_OBS    -> observed into a scope-local report,
//                                      emitted by the env sink at the end
//   * neither                       -> inactive: report() returns null and
//                                      the whole subsystem stays off (no
//                                      collector, no clocks, no allocations)
//
// An observed scope installs a Collector on the calling thread (the thread
// pool re-installs it inside each task), and on destruction folds the
// collector's counters into the report, stamps the active kernel, and emits
// to the env sink when requested.
//
// Nesting: a call made while an enclosing scope's collector is installed on
// this thread (e.g. the serial driver rerunning a product after the parallel
// driver hit bad_alloc) never starts a second collection or a second env
// emission -- its kernel work accrues to the enclosing scope, and its phase
// timers go to whatever report pointer its caller handed down.
#pragma once

#include "obs/collector.hpp"
#include "obs/report.hpp"

namespace strassen::obs {

class CallScope {
 public:
  // `entry` must be a static string ("modgemm", "pmodgemm").
  CallScope(const char* entry, GemmReport* user);
  ~CallScope();
  CallScope(const CallScope&) = delete;
  CallScope& operator=(const CallScope&) = delete;

  // The report this call should populate: the user's, the scope-local one
  // the env sink will emit, or null when the call is unobserved.
  GemmReport* report() noexcept { return report_; }
  // The scope's collector (null when unobserved or nested).
  Collector* collector() noexcept { return collecting_ ? &counters_ : nullptr; }

 private:
  // Decides the observation mode; returns the collector install_ installs.
  Collector* init(const char* entry, GemmReport* user);

  GemmReport local_{};     // env-sink target when the user passed no report
  GemmReport* report_ = nullptr;
  Collector counters_{};
  bool collecting_ = false;  // this scope owns the thread's collector
  bool emit_ = false;        // env sink wants the report on destruction
  ScopedCollector install_;  // installs &counters_ or re-installs the outer
};

}  // namespace strassen::obs
