#include "common/aligned_buffer.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <utility>

#include "common/check.hpp"

namespace strassen {

namespace {

// The installed gate and its user pointer, read under a mutex so an install
// never races a concurrent allocation into a torn (gate, user) pair.  The
// lock is uncontended in production (no gate) and allocation is not a hot
// path -- the library makes a handful of large allocations per multiply.
std::mutex g_gate_mutex;
AlignedBuffer::AllocationGate g_gate = nullptr;
void* g_gate_user = nullptr;

bool gate_allows(std::size_t bytes) {
  AlignedBuffer::AllocationGate gate;
  void* user;
  {
    std::lock_guard<std::mutex> lock(g_gate_mutex);
    gate = g_gate;
    user = g_gate_user;
  }
  return gate == nullptr || gate(bytes, user);
}

}  // namespace

void AlignedBuffer::set_allocation_gate(AllocationGate gate,
                                        void* user) noexcept {
  std::lock_guard<std::mutex> lock(g_gate_mutex);
  g_gate = gate;
  g_gate_user = user;
}

bool AlignedBuffer::allocation_allowed(std::size_t bytes) noexcept {
  // Present the same rounded size the constructor would, so byte-accounting
  // gates see identical requests on the cold and cached paths.
  const std::size_t a = kDefaultAlignment;
  const std::size_t rounded =
      bytes > static_cast<std::size_t>(-1) - (a - 1) ? bytes
                                                     : (bytes + a - 1) / a * a;
  return gate_allows(rounded);
}

AlignedBuffer::AlignedBuffer(std::size_t bytes, std::size_t alignment) {
  STRASSEN_REQUIRE(alignment != 0 && (alignment & (alignment - 1)) == 0,
                   "alignment must be a power of two: " << alignment);
  if (bytes == 0) return;
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded =
      checked_add(bytes, alignment - 1) / alignment * alignment;
  if (!gate_allows(rounded)) throw std::bad_alloc();
  ptr_ = std::aligned_alloc(alignment, rounded);
  if (ptr_ == nullptr) throw std::bad_alloc();
  bytes_ = bytes;
  alignment_ = alignment;
}

AlignedBuffer::~AlignedBuffer() { reset(); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      alignment_(std::exchange(other.alignment_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    alignment_ = std::exchange(other.alignment_, 0);
  }
  return *this;
}

void AlignedBuffer::zero() {
  if (ptr_ != nullptr) std::memset(ptr_, 0, bytes_);
}

void AlignedBuffer::reset() {
  std::free(ptr_);
  ptr_ = nullptr;
  bytes_ = 0;
  alignment_ = 0;
}

}  // namespace strassen
