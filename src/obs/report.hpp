// obs/report.hpp -- the per-call GemmReport and its stable JSON form.
//
// The paper's argument is built on introspection: where the time goes
// (conversion vs multiply, Fig. 7), how much padding the plan pays (Fig. 2),
// and how much temporary memory the schedule keeps live (S5.1, and Boyer et
// al.'s memory-efficient schedules in the follow-on literature).  GemmReport
// makes the library report those quantities about ITS OWN execution:
//
//   phases     -- conversion in, recursion/compute, conversion out, plus the
//                 time spent inside leaf kernels and the whole-call wall time
//   plan       -- the executed plan (tiles, depth, padding), the depth the
//                 planner originally wanted, split/product accounting
//   workspace  -- bytes requested, the arena high-water mark, and which rung
//                 of the PR-1 degradation ladder the call took, if any
//   kernels    -- active engine kernel/variant and leaf / fused-leaf /
//                 element-wise invocation counts
//   parallel   -- thread count, tasks executed (total and per worker), tasks
//                 migrated between workers by stealing, task busy time, and
//                 pool utilization
//
// A report is requested per call (ModgemmOptions::report /
// ParallelOptions::report, or the legacy trailing parameter) and costs
// nothing when absent: the struct lives on the caller's stack and the
// library takes a null-check before every piece of bookkeeping.  Setting
// STRASSEN_OBS=json[:path] makes every production call emit its report as
// one JSON line even when the caller asked for none (obs/env_sink.hpp).
//
// Timers accumulate (+=) so one report can aggregate a measurement loop of
// identical calls, as bench/fig7 does; ratios like conversion_fraction()
// are invariant to the repetition count.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "layout/plan.hpp"

namespace strassen::obs {

// How (if at all) a call degraded from the planned Strassen execution.
// Ordered by severity so multi-product (split) calls can report the worst
// rung taken.  (Moved here from core/modgemm.hpp; core aliases it.)
enum class FallbackReason {
  kNone = 0,        // planned path ran unmodified
  kAlgoFallback,    // a non-<2,2,2> family was requested but could not run
                    // (its sub-products would sit at/below the direct
                    // threshold, staging exceeded the budget, or its
                    // up-front allocation failed); <2,2,2> ran instead
  kScheduleSwap,    // workspace budget: planned depth kept, but a
                    // lower-footprint schedule family ran instead of the
                    // default 3-temporary table
  kDepthReduced,    // workspace budget: shallower recursion chosen
  kBudgetDirect,    // workspace budget: no depth fit; conventional gemm
  kAllocDirect,     // an allocation failed mid-call; conventional retry
  kAllocStrided,    // even the conventional path's staging buffer failed;
                    // allocation-free strided gemm ran instead
};

const char* fallback_reason_name(FallbackReason r);

// Everything the library can tell you about one gemm call.  Field semantics
// are specified in docs/OBSERVABILITY.md together with the JSON schema
// (strassen.gemm_report.v6) that to_json() emits.
struct GemmReport {
  // --- call identity -------------------------------------------------------
  // "modgemm" | "pmodgemm" | "modgemm_batched" (static strings)
  const char* entry = "";
  int m = 0, n = 0, k = 0;

  // --- phase timers (seconds; += across invocations) -----------------------
  double convert_in_seconds = 0.0;   // col-major -> Morton, incl. pad zeroing
  double compute_seconds = 0.0;      // recursion + leaf products
  double convert_out_seconds = 0.0;  // Morton -> col-major + alpha/beta merge
  double leaf_seconds = 0.0;         // inside leaf kernels (subset of compute)
  double wall_seconds = 0.0;         // whole call, validation to return

  // --- plan / padding ------------------------------------------------------
  layout::GemmPlan plan{};  // plan of the (last) single product executed
  bool split_used = false;  // highly-rectangular decomposition taken
  int products = 0;         // sub-products executed (1 if no split)
  int planned_depth = 0;    // depth the planner wanted before any budget
  // Schedule family the (last) Strassen product executed
  // (analysis::family_name); "" until a Strassen path runs (direct-only
  // calls never set it).
  const char* schedule = "";
  // Execution strategy the (last) Strassen product ran
  // (layout::strategy_name: "morton" or "packfused"); "" until a Strassen
  // path runs, serialized as "none" like schedule.
  const char* strategy = "";
  // <m,k,n> algorithm family the call's top level executed
  // (analysis::algo_name: "222", "323", "234", "333"); "" until resolution
  // runs (zero-dim early returns), serialized as "none" like schedule.
  const char* algo = "";

  // --- resilience / workspace ----------------------------------------------
  FallbackReason fallback_reason = FallbackReason::kNone;  // worst rung taken
  std::size_t workspace_requested_bytes = 0;  // arenas + Morton buffers sized
  std::size_t workspace_peak_bytes = 0;       // high-water mark reached
  int workspace_allocations = 0;              // arenas/buffers created
  // Recursion-arena bytes a low-memory schedule family avoided relative to
  // the default 3-temporary family (summed across products; 0 when the
  // default family ran).
  std::size_t workspace_saved_bytes = 0;
  // Morton staging-buffer bytes the pack-fused strategy did NOT allocate
  // (summed across pack-fused products; 0 when every product ran kMorton).
  std::size_t conversion_saved_bytes = 0;

  // --- kernel telemetry (production double-precision path) -----------------
  const char* kernel = "";          // active engine kernel at call time
  const char* kernel_variant = "";  // AVX2 register-block variant
  std::uint64_t leaf_calls = 0;         // plain leaf products
  std::uint64_t fused_calls = 0;        // fused (A1 op A2).(B1 op B2) products
  std::uint64_t elementwise_calls = 0;  // quadrant vadd/vsub kernel calls

  // --- parallel stats ------------------------------------------------------
  bool parallel = false;  // went through parallel::pmodgemm
  int threads = 0;        // pool width (0 = inline/serial)
  // Spawn depth the call actually used: the value of
  // ParallelOptions::spawn_levels when set explicitly (>= 0), or the
  // effective depth the auto policy (kSpawnAuto) resolved to.
  int spawn_levels = 0;
  std::uint64_t tasks_executed = 0;
  // Tasks that migrated from the worker that spawned them to another thread
  // via a work-steal (0 when inline or when every task ran where it was
  // queued).  A high steal share with low utilization points at tasks too
  // fine for the pool; near-zero steals at low utilization points at too few
  // tasks.
  std::uint64_t steals = 0;
  // Sum of EXCLUSIVE task execution times: a task help-running other tasks
  // while blocked in a join does not count their time as its own, so this
  // sums to real busy time even for deeply nested spawn trees.
  double task_busy_seconds = 0.0;
  // Tasks per thread: index 0 is the calling thread (inline execution and
  // TaskGroup help-first draining), index i >= 1 is pool worker i - 1.
  // Empty until a parallel call populates it.
  std::vector<std::uint64_t> per_thread_tasks;

  // --- batched execution (core/batched.hpp; all zero/"" outside it) --------
  int batch_count = 0;    // products in the batch (0 = not a batched call)
  int batch_classes = 0;  // distinct plan-equivalence classes in the batch
  // Plan-cache outcome per class: hits were served by the process-wide cache
  // (tune/plan_cache.hpp), misses were planned fresh this call (and
  // published).  hits + misses == batch_classes when the cache is on.
  std::uint64_t batch_plan_cache_hits = 0;
  std::uint64_t batch_plan_cache_misses = 0;
  // Scratch acquisitions across the batch's tasks (one per product needing
  // workspace) and the subset that missed the per-thread arena cache and
  // allocated cold.  Amortization target: cold allocs <= pool width + 1 for
  // a single-class batch, independent of batch size.
  std::uint64_t batch_workspace_acquisitions = 0;
  std::uint64_t batch_workspace_cold_allocs = 0;
  // Persistent tune-cache outcome for the batch: "off" (BatchedOptions::tune
  // unset), "cold" (surveyed fresh), "warm" (memo or STRASSEN_TUNE_CACHE
  // file skipped the survey), "rejected" (corrupt/foreign file forced a
  // re-survey).  Serialized "off" while empty.
  const char* tune_cache = "";

  // --- derived -------------------------------------------------------------
  double total_seconds() const {
    return convert_in_seconds + compute_seconds + convert_out_seconds;
  }
  double conversion_fraction() const {
    const double t = total_seconds();
    return t > 0 ? (convert_in_seconds + convert_out_seconds) / t : 0.0;
  }
  // Fraction of the pool's capacity the call kept busy:
  // task_busy_seconds / (threads * wall_seconds).  0 when serial.
  double pool_utilization() const {
    if (threads <= 0 || wall_seconds <= 0.0) return 0.0;
    return task_busy_seconds / (static_cast<double>(threads) * wall_seconds);
  }
  // Total pad elements of the (last) executed plan across A, B and C.
  long long pad_elems() const;
};

// Accumulates the enclosing scope's wall time into r->wall_seconds on
// destruction.  Null report -> no clock is ever read (the disabled path pays
// one pointer test).
class WallStamp {
 public:
  explicit WallStamp(GemmReport* r) noexcept
      : r_(r),
        t0_(r ? std::chrono::steady_clock::now()
              : std::chrono::steady_clock::time_point{}) {}
  ~WallStamp() {
    if (r_ == nullptr) return;
    r_->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
  }
  WallStamp(const WallStamp&) = delete;
  WallStamp& operator=(const WallStamp&) = delete;

 private:
  GemmReport* r_;
  std::chrono::steady_clock::time_point t0_;
};

// Serializes `r` as one line of schema-stable JSON (schema id
// "strassen.gemm_report.v6"; see docs/OBSERVABILITY.md for the contract).
// Key set and nesting never change within a schema version -- consumers may
// index fields unconditionally.
std::string to_json(const GemmReport& r);
void write_json(std::ostream& os, const GemmReport& r);

}  // namespace strassen::obs
