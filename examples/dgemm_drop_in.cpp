// dgemm_drop_in -- MODGEMM as a Level 3 BLAS dgemm replacement.
//
// Exercises the full calling convention the paper implements (S2.1):
// transposed operands folded into the Morton conversion, alpha/beta folded
// into the conversion back, submatrix views via leading dimensions, and the
// rank-k-update pattern C <- A.B^T + C that shows up in factorization codes.
// Every call is verified against the naive reference.
#include <cstdio>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"

using namespace strassen;

namespace {

int checks_failed = 0;

void check(const char* what, ConstMatrixView<double> got,
           ConstMatrixView<double> want, double scale) {
  const double err = max_abs_diff<double>(got, want);
  const bool ok = err < 1e-9 * scale;
  std::printf("  %-52s max err %.2e %s\n", what, err, ok ? "OK" : "FAIL");
  if (!ok) ++checks_failed;
}

}  // namespace

int main() {
  std::printf("MODGEMM with the full dgemm calling convention\n\n");
  Rng rng(7);
  const int m = 300, k = 257, n = 280;

  Matrix<double> A(m, k), At(k, m), B(k, n), Bt(n, k);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  // Materialize the transposes for the op() calls.
  for (int j = 0; j < k; ++j)
    for (int i = 0; i < m; ++i) At.at(j, i) = A.at(i, j);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < k; ++i) Bt.at(j, i) = B.at(i, j);

  Matrix<double> C(m, n), Ref(m, n);

  // --- op() combinations ---------------------------------------------
  std::printf("transpose handling (folded into the Morton conversion):\n");
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld());
  check("C = A . B", C.view(), Ref.view(), k);

  core::modgemm(Op::Trans, Op::NoTrans, m, n, k, 1.0, At.data(), At.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld());
  check("C = A' . B   (A' stored transposed)", C.view(), Ref.view(), k);

  core::modgemm(Op::NoTrans, Op::Trans, m, n, k, 1.0, A.data(), A.ld(),
                Bt.data(), Bt.ld(), 0.0, C.data(), C.ld());
  check("C = A . B'   (B' stored transposed)", C.view(), Ref.view(), k);

  core::modgemm(Op::Trans, Op::Trans, m, n, k, 1.0, At.data(), At.ld(),
                Bt.data(), Bt.ld(), 0.0, C.data(), C.ld());
  check("C = A' . B'", C.view(), Ref.view(), k);

  // --- alpha / beta ----------------------------------------------------
  std::printf("\nalpha/beta post-processing (fused into convert-out):\n");
  Matrix<double> C0(m, n);
  rng.fill_uniform(C0.storage());
  copy_matrix<double>(C0.view(), C.view());
  copy_matrix<double>(C0.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 0.5, A.data(), A.ld(),
                   B.data(), B.ld(), -2.0, Ref.data(), Ref.ld());
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 0.5, A.data(), A.ld(),
                B.data(), B.ld(), -2.0, C.data(), C.ld());
  check("C = 0.5 A.B - 2 C", C.view(), Ref.view(), k);

  // --- submatrix views (leading dimensions) ---------------------------
  std::printf("\nsubmatrix views via leading dimensions:\n");
  const int ms = 150, ks = 130, ns = 140;
  // Multiply the center blocks of A and B into the center block of C.
  auto Ab = A.view().block(40, 40, ms, ks);
  auto Bb = B.view().block(30, 50, ks, ns);
  auto Cb = C.view().block(20, 60, ms, ns);
  auto Refb = Ref.view().block(20, 60, ms, ns);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, ms, ns, ks, 1.0, Ab.data, Ab.ld,
                   Bb.data, Bb.ld, 0.0, Refb.data, Refb.ld);
  core::modgemm(Op::NoTrans, Op::NoTrans, ms, ns, ks, 1.0, Ab.data, Ab.ld,
                Bb.data, Bb.ld, 0.0, Cb.data, Cb.ld);
  check("C[20:,60:] = A[40:,40:] . B[30:,50:]",
        ConstMatrixView<double>(Cb), ConstMatrixView<double>(Refb), ks);

  // --- the factorization update pattern --------------------------------
  std::printf("\nrank-k update (trailing-submatrix pattern, C -= L . L'):\n");
  Matrix<double> L(m, k);
  rng.fill_uniform(L.storage());
  Matrix<double> S(m, m), SRef(m, m);
  rng.fill_uniform(S.storage());
  copy_matrix<double>(S.view(), SRef.view());
  blas::naive_gemm(Op::NoTrans, Op::Trans, m, m, k, -1.0, L.data(), L.ld(),
                   L.data(), L.ld(), 1.0, SRef.data(), SRef.ld());
  core::modgemm(Op::NoTrans, Op::Trans, m, m, k, -1.0, L.data(), L.ld(),
                L.data(), L.ld(), 1.0, S.data(), S.ld());
  check("S = S - L . L'", S.view(), SRef.view(), k);

  std::printf("\n%s\n", checks_failed == 0 ? "all checks passed"
                                           : "SOME CHECKS FAILED");
  return checks_failed == 0 ? 0 : 1;
}
