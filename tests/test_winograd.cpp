// Unit tests for the Winograd recursion over Morton storage (src/core).
//
// Strassen-Winograd performs only additions, subtractions and
// multiplications, so on small-integer inputs every intermediate is an
// exactly-representable integer: these tests assert BIT-EXACT equality with
// the naive algorithm.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "blas/gemm.hpp"
#include "common/arena.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "layout/convert.hpp"

namespace strassen::core {
namespace {

// Runs the recursion on (tm<<depth) x (tk<<depth) by (tk<<depth) x
// (tn<<depth) integer matrices and compares with naive_gemm exactly.
void run_exact(int tm, int tk, int tn, int depth, std::uint64_t seed) {
  const int m = tm << depth, k = tk << depth, n = tn << depth;
  Rng rng(seed);
  Matrix<double> A(m, k), B(k, n), Cref(m, n), C(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Cref.data(), Cref.ld());

  const layout::MortonLayout la{m, k, tm, tk, depth};
  const layout::MortonLayout lb{k, n, tk, tn, depth};
  const layout::MortonLayout lc{m, n, tm, tn, depth};
  std::vector<double> Am(static_cast<std::size_t>(la.elems()));
  std::vector<double> Bm(static_cast<std::size_t>(lb.elems()));
  std::vector<double> Cm(static_cast<std::size_t>(lc.elems()), -1.0);
  layout::to_morton(la, Am.data(), Op::NoTrans, A.data(), A.ld());
  layout::to_morton(lb, Bm.data(), Op::NoTrans, B.data(), B.ld());

  Arena arena(winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double)));
  RawMem mm;
  winograd_recurse(mm, Cm.data(), Am.data(), Bm.data(), tm, tk, tn, depth,
                   arena);
  layout::from_morton(lc, Cm.data(), 1.0, C.data(), C.ld(), 0.0);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Cref.view()), 0.0)
      << "tm=" << tm << " tk=" << tk << " tn=" << tn << " depth=" << depth;
}

TEST(WinogradRecurse, DepthZeroIsLeafGemm) { run_exact(7, 5, 6, 0, 1); }

TEST(WinogradRecurse, OneLevelSquare) { run_exact(4, 4, 4, 1, 2); }

TEST(WinogradRecurse, OneLevelRectangularTiles) { run_exact(3, 5, 7, 1, 3); }

TEST(WinogradRecurse, TwoLevels) { run_exact(4, 4, 4, 2, 4); }

TEST(WinogradRecurse, ThreeLevelsOddTiles) { run_exact(5, 3, 7, 3, 5); }

TEST(WinogradRecurse, FourLevelsPaperTile33) { run_exact(33, 33, 33, 1, 6); }

using Param = std::tuple<int, int, int, int>;  // tm, tk, tn, depth
class WinogradSweep : public ::testing::TestWithParam<Param> {};

TEST_P(WinogradSweep, ExactOnIntegers) {
  const auto [tm, tk, tn, depth] = GetParam();
  run_exact(tm, tk, tn, depth, static_cast<std::uint64_t>(tm * 1000 + depth));
}

INSTANTIATE_TEST_SUITE_P(
    TileAndDepth, WinogradSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 8), ::testing::Values(1, 3, 8),
                       ::testing::Values(1, 4, 6), ::testing::Values(1, 2, 3)));

TEST(WinogradWorkspace, ArenaPeakMatchesPrediction) {
  const int tm = 6, tk = 5, tn = 7, depth = 3;
  const std::size_t predicted =
      winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double));
  const int m = tm << depth, k = tk << depth, n = tn << depth;
  std::vector<double> Am(static_cast<std::size_t>(m) * k, 1.0);
  std::vector<double> Bm(static_cast<std::size_t>(k) * n, 1.0);
  std::vector<double> Cm(static_cast<std::size_t>(m) * n);
  Arena arena(predicted);
  RawMem mm;
  // Must fit exactly: no bad_alloc, and the peak equals the prediction.
  winograd_recurse(mm, Cm.data(), Am.data(), Bm.data(), tm, tk, tn, depth,
                   arena);
  EXPECT_EQ(arena.peak(), predicted);
  EXPECT_EQ(arena.used(), 0u);  // fully unwound
}

TEST(WinogradRecurse, PaddedProblemMatchesLogicalProduct) {
  // Zero padding must be preserved: multiply padded matrices and check the
  // logical region AND that the pad region of C stays numerically exact.
  const int n = 23;  // logical
  const int tile = 6, depth = 2;  // padded 24
  Rng rng(13);
  Matrix<double> A(n, n), B(n, n), Cref(n, n), C(n, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Cref.data(), Cref.ld());
  const layout::MortonLayout l{n, n, tile, tile, depth};
  std::vector<double> Am(static_cast<std::size_t>(l.elems()));
  std::vector<double> Bm(static_cast<std::size_t>(l.elems()));
  std::vector<double> Cm(static_cast<std::size_t>(l.elems()));
  layout::to_morton(l, Am.data(), Op::NoTrans, A.data(), A.ld());
  layout::to_morton(l, Bm.data(), Op::NoTrans, B.data(), B.ld());
  Arena arena(winograd_workspace_bytes(tile, tile, tile, depth, sizeof(double)));
  RawMem mm;
  winograd_recurse(mm, Cm.data(), Am.data(), Bm.data(), tile, tile, tile,
                   depth, arena);
  layout::from_morton(l, Cm.data(), 1.0, C.data(), C.ld(), 0.0);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Cref.view()), 0.0);
  // The padded product of zero-padded operands has zero pads.
  for (int i = 0; i < l.padded_rows(); ++i) {
    for (int j = 0; j < l.padded_cols(); ++j) {
      if (i >= n || j >= n) {
        EXPECT_EQ(Cm[layout::morton_offset(l, i, j)], 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace strassen::core
