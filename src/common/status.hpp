// status.hpp -- BLAS `info`-style result codes for the nothrow entry points.
//
// Embedders that cannot unwind (Fortran callers, C callers, signal-sensitive
// services) use core::try_modgemm, which reports failure through this enum
// instead of exceptions.  Argument-error values match the dgemm argument
// positions that reference-BLAS xerbla would report (TRANSA=1, TRANSB=2,
// M=3, N=4, K=5, LDA=8, LDB=10, LDC=13), so the Fortran compat layer can
// forward them to xerbla unchanged.  Runtime failures get negative codes,
// which reference BLAS has no equivalent for.
#pragma once

namespace strassen {

enum class Status : int {
  kOk = 0,
  kBadTransA = 1,
  kBadTransB = 2,
  kBadM = 3,
  kBadN = 4,
  kBadK = 5,
  kBadLda = 8,
  kBadLdb = 10,
  kBadLdc = 13,
  kOutOfMemory = -1,    // allocation failed and no fallback could run
  kInternalError = -2,  // unexpected exception escaped the driver
};

inline bool ok(Status s) { return s == Status::kOk; }

inline const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kBadTransA:
      return "bad transa";
    case Status::kBadTransB:
      return "bad transb";
    case Status::kBadM:
      return "bad m";
    case Status::kBadN:
      return "bad n";
    case Status::kBadK:
      return "bad k";
    case Status::kBadLda:
      return "bad lda";
    case Status::kBadLdb:
      return "bad ldb";
    case Status::kBadLdc:
      return "bad ldc";
    case Status::kOutOfMemory:
      return "out of memory";
    case Status::kInternalError:
      return "internal error";
  }
  return "unknown";
}

}  // namespace strassen
