// kernels/neon.cpp -- Advanced SIMD (NEON) micro-kernels for double.
//
// Double-precision NEON vectors (float64x2_t) exist only on AArch64, where
// Advanced SIMD is architecturally mandatory -- so "compiled in" implies
// "runnable" and no HWCAP probe is needed here (32-bit ARM NEON has no
// float64x2 and compiles the stub below; the registry then reports the kind
// as not compiled in).
//
// The kernel is a 4x4 register block (8 q-register accumulators + 2 A
// vectors + broadcast), the direct NEON analogue of the scalar kernel's
// blocking, with the same column-strip edge path as the AVX2 TU.  Fused
// entries are provided for the Winograd sum-into-leaf path.
#include "blas/kernels/registry.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace strassen::blas::kernels {

namespace {

inline std::size_t off(int ld, int col) {
  return static_cast<std::size_t>(ld) * col;
}

struct APlain {
  const double* a;
  int lda;
  float64x2_t load2(int i, int p) const { return vld1q_f64(a + off(lda, p) + i); }
  double at(int i, int p) const { return a[off(lda, p) + i]; }
};

template <bool kSub>
struct AFused {
  const double* a1;
  const double* a2;
  int lda;
  float64x2_t load2(int i, int p) const {
    const float64x2_t x = vld1q_f64(a1 + off(lda, p) + i);
    const float64x2_t y = vld1q_f64(a2 + off(lda, p) + i);
    return kSub ? vsubq_f64(x, y) : vaddq_f64(x, y);
  }
  double at(int i, int p) const {
    return kSub ? a1[off(lda, p) + i] - a2[off(lda, p) + i]
                : a1[off(lda, p) + i] + a2[off(lda, p) + i];
  }
};

struct BPlain {
  const double* b;
  int ldb;
  double at(int p, int j) const { return b[off(ldb, j) + p]; }
};

template <bool kSub>
struct BFused {
  const double* b1;
  const double* b2;
  int ldb;
  double at(int p, int j) const {
    return kSub ? b1[off(ldb, j) + p] - b2[off(ldb, j) + p]
                : b1[off(ldb, j) + p] + b2[off(ldb, j) + p];
  }
};

// One 4x4 block at (i, j): 8 accumulators of 2 lanes.
template <class AL, class BL>
void block_4x4(const AL& A, const BL& B, int k, double* C, int ldc,
               LeafMode mode, double alpha, int i, int j) {
  float64x2_t acc[4][2];
  for (int jj = 0; jj < 4; ++jj)
    for (int v = 0; v < 2; ++v) acc[jj][v] = vdupq_n_f64(0.0);
  for (int p = 0; p < k; ++p) {
    float64x2_t a[2];
    a[0] = A.load2(i, p);
    a[1] = A.load2(i + 2, p);
    for (int jj = 0; jj < 4; ++jj) {
      const float64x2_t b = vdupq_n_f64(B.at(p, j + jj));
      acc[jj][0] = vfmaq_f64(acc[jj][0], a[0], b);
      acc[jj][1] = vfmaq_f64(acc[jj][1], a[1], b);
    }
  }
  const float64x2_t va = vdupq_n_f64(alpha);
  for (int jj = 0; jj < 4; ++jj) {
    double* c = C + off(ldc, j + jj) + i;
    for (int v = 0; v < 2; ++v) {
      float64x2_t r = vmulq_f64(va, acc[jj][v]);
      if (mode == LeafMode::Accumulate) r = vaddq_f64(vld1q_f64(c + 2 * v), r);
      vst1q_f64(c + 2 * v, r);
    }
  }
}

// Edge path: one column at a time, two-row vectors, scalar tail.
template <class AL, class BL>
void strip_cols(const AL& A, const BL& B, int k, double* C, int ldc, int i0,
                int i1, int j0, int j1, LeafMode mode, double alpha) {
  for (int j = j0; j < j1; ++j) {
    double* c = C + off(ldc, j);
    int i = i0;
    for (; i + 2 <= i1; i += 2) {
      float64x2_t acc = vdupq_n_f64(0.0);
      for (int p = 0; p < k; ++p)
        acc = vfmaq_f64(acc, A.load2(i, p), vdupq_n_f64(B.at(p, j)));
      float64x2_t r = vmulq_f64(vdupq_n_f64(alpha), acc);
      if (mode == LeafMode::Accumulate) r = vaddq_f64(vld1q_f64(c + i), r);
      vst1q_f64(c + i, r);
    }
    for (; i < i1; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += A.at(i, p) * B.at(p, j);
      const double v = alpha * acc;
      c[i] = mode == LeafMode::Overwrite ? v : c[i] + v;
    }
  }
}

template <class AL, class BL>
void gemm_main(int m, int n, int k, const AL& A, const BL& B, double* C,
               int ldc, LeafMode mode, double alpha) {
  const int m4 = m - m % 4;
  const int n4 = n - n % 4;
  for (int j = 0; j < n4; j += 4)
    for (int i = 0; i < m4; i += 4)
      block_4x4(A, B, k, C, ldc, mode, alpha, i, j);
  if (m4 < m) strip_cols(A, B, k, C, ldc, m4, m, 0, n4, mode, alpha);
  if (n4 < n) strip_cols(A, B, k, C, ldc, 0, m, n4, n, mode, alpha);
}

void neon_gemm(int m, int n, int k, const double* A, int lda, const double* B,
               int ldb, double* C, int ldc, LeafMode mode, double alpha) {
  gemm_main(m, n, k, APlain{A, lda}, BPlain{B, ldb}, C, ldc, mode, alpha);
}

void neon_gemm_fused_a(int m, int n, int k, const double* A1, const double* A2,
                       FusedOp opa, int lda, const double* B, int ldb,
                       double* C, int ldc) {
  const BPlain b{B, ldb};
  if (opa == FusedOp::kSub)
    gemm_main(m, n, k, AFused<true>{A1, A2, lda}, b, C, ldc,
              LeafMode::Overwrite, 1.0);
  else
    gemm_main(m, n, k, AFused<false>{A1, A2, lda}, b, C, ldc,
              LeafMode::Overwrite, 1.0);
}

void neon_gemm_fused_b(int m, int n, int k, const double* A, int lda,
                       const double* B1, const double* B2, FusedOp opb,
                       int ldb, double* C, int ldc) {
  const APlain a{A, lda};
  if (opb == FusedOp::kSub)
    gemm_main(m, n, k, a, BFused<true>{B1, B2, ldb}, C, ldc,
              LeafMode::Overwrite, 1.0);
  else
    gemm_main(m, n, k, a, BFused<false>{B1, B2, ldb}, C, ldc,
              LeafMode::Overwrite, 1.0);
}

void neon_gemm_fused_ab(int m, int n, int k, const double* A1,
                        const double* A2, FusedOp opa, int lda,
                        const double* B1, const double* B2, FusedOp opb,
                        int ldb, double* C, int ldc) {
  auto run = [&](auto a, auto b) {
    gemm_main(m, n, k, a, b, C, ldc, LeafMode::Overwrite, 1.0);
  };
  if (opa == FusedOp::kSub) {
    if (opb == FusedOp::kSub)
      run(AFused<true>{A1, A2, lda}, BFused<true>{B1, B2, ldb});
    else
      run(AFused<true>{A1, A2, lda}, BFused<false>{B1, B2, ldb});
  } else {
    if (opb == FusedOp::kSub)
      run(AFused<false>{A1, A2, lda}, BFused<true>{B1, B2, ldb});
    else
      run(AFused<false>{A1, A2, lda}, BFused<false>{B1, B2, ldb});
  }
}

void neon_vadd(std::size_t n, double* dst, const double* a, const double* b) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) dst[i] = a[i] + b[i];
}

void neon_vsub(std::size_t n, double* dst, const double* a, const double* b) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(dst + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  for (; i < n; ++i) dst[i] = a[i] - b[i];
}

void neon_vadd_inplace(std::size_t n, double* dst, const double* a) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(dst + i, vaddq_f64(vld1q_f64(dst + i), vld1q_f64(a + i)));
  for (; i < n; ++i) dst[i] += a[i];
}

void neon_vsub_inplace(std::size_t n, double* dst, const double* a) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(dst + i, vsubq_f64(vld1q_f64(dst + i), vld1q_f64(a + i)));
  for (; i < n; ++i) dst[i] -= a[i];
}

constexpr LeafKernels kTable = {
    Kind::kNeon,
    "neon",
    /*mr=*/4,
    /*nr=*/4,
    neon_gemm,
    neon_gemm_fused_a,
    neon_gemm_fused_b,
    neon_gemm_fused_ab,
    neon_vadd,
    neon_vsub,
    neon_vadd_inplace,
    neon_vsub_inplace,
};

}  // namespace

namespace detail {
const LeafKernels* neon_table() noexcept { return &kTable; }
}  // namespace detail

}  // namespace strassen::blas::kernels

#else  // !(__aarch64__ && __ARM_NEON)

namespace strassen::blas::kernels::detail {
// No double-precision Advanced SIMD on this target (or NEON disabled); the
// registry treats the kind as not compiled in.
const LeafKernels* neon_table() noexcept { return nullptr; }
}  // namespace strassen::blas::kernels::detail

#endif
