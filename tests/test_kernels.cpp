// Unit tests for the leaf microkernel and blocked gemm (src/blas).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "blas/gemm.hpp"
#include "blas/kernels.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::blas {
namespace {

// The oracle: naive_gemm is a direct transliteration of the definition; the
// kernels must match it to within accumulation-order rounding.
constexpr double kTol = 1e-12;

double check_against_naive(Op opa, Op opb, int m, int n, int k, double alpha,
                           double beta, bool blocked, int extra_ld = 0) {
  Rng rng(static_cast<std::uint64_t>(m * 73 + n * 17 + k));
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac, ar + extra_ld);
  Matrix<double> B(br, bc, br + extra_ld);
  Matrix<double> C(m, n, m + extra_ld);
  Matrix<double> Ref(m, n, m + extra_ld);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  rng.fill_uniform(C.storage());
  copy_matrix<double>(C.view(), Ref.view());

  naive_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(),
             beta, Ref.data(), Ref.ld());
  if (blocked) {
    gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(), beta,
         C.data(), C.ld());
  } else {
    // gemm_leaf computes C {=,+=} alpha*A.B; emulate beta by pre-scaling.
    RawMem mm;
    scale_view(mm, m, n, C.data(), C.ld(), beta);
    gemm_leaf(m, n, k, A.data(), A.ld(), B.data(), B.ld(), C.data(), C.ld(),
              LeafMode::Accumulate, alpha);
  }
  return max_abs_diff<double>(C.view(), Ref.view());
}

using LeafParam = std::tuple<int, int, int>;  // m, n, k
class LeafKernel : public ::testing::TestWithParam<LeafParam> {};

TEST_P(LeafKernel, OverwriteMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(11);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  // Poison C: overwrite mode must not read it.
  for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
  gemm_leaf(m, n, k, A.data(), A.ld(), B.data(), B.ld(), C.data(), C.ld(),
            LeafMode::Overwrite);
  naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
             B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  EXPECT_LT(max_abs_diff<double>(C.view(), Ref.view()), kTol * k);
}

TEST_P(LeafKernel, AccumulateWithAlphaMatchesNaive) {
  const auto [m, n, k] = GetParam();
  EXPECT_LT(check_against_naive(Op::NoTrans, Op::NoTrans, m, n, k, 0.75, 1.0,
                                /*blocked=*/false),
            kTol * k);
}

TEST_P(LeafKernel, StridedOperandsMatchNaive) {
  const auto [m, n, k] = GetParam();
  EXPECT_LT(check_against_naive(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, 0.0,
                                /*blocked=*/false, /*extra_ld=*/5),
            kTol * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LeafKernel,
    ::testing::Values(LeafParam{1, 1, 1}, LeafParam{4, 4, 4},
                      LeafParam{3, 5, 7}, LeafParam{8, 8, 8},
                      LeafParam{5, 4, 4}, LeafParam{4, 5, 4},
                      LeafParam{4, 4, 5}, LeafParam{16, 16, 16},
                      LeafParam{17, 19, 23}, LeafParam{33, 31, 29},
                      LeafParam{64, 64, 64}, LeafParam{1, 64, 64},
                      LeafParam{64, 1, 64}, LeafParam{64, 64, 1},
                      LeafParam{2, 3, 64}));

using GemmParam = std::tuple<int, int, int, int, int>;  // m,n,k,opa,opb
class BlockedGemm : public ::testing::TestWithParam<GemmParam> {};

TEST_P(BlockedGemm, AllOpsAlphaBetaCombos) {
  const auto [m, n, k, oa, ob] = GetParam();
  const Op opa = oa ? Op::Trans : Op::NoTrans;
  const Op opb = ob ? Op::Trans : Op::NoTrans;
  for (double alpha : {1.0, -0.5}) {
    for (double beta : {0.0, 1.0, 2.0}) {
      EXPECT_LT(check_against_naive(opa, opb, m, n, k, alpha, beta,
                                    /*blocked=*/true),
                kTol * (k + 1))
          << "alpha=" << alpha << " beta=" << beta << " opa=" << op_char(opa)
          << " opb=" << op_char(opb);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedGemm,
    ::testing::Combine(::testing::Values(1, 17, 65, 130),
                       ::testing::Values(1, 19, 67),
                       ::testing::Values(1, 23, 129),
                       ::testing::Values(0, 1), ::testing::Values(0, 1)));

TEST(BlockedGemmEdge, ZeroDimensionsAreNoOps) {
  Matrix<double> A(4, 4), B(4, 4), C(4, 4);
  for (auto& x : C.storage()) x = 3.0;
  // m == 0 / n == 0: nothing happens, C untouched.
  gemm(Op::NoTrans, Op::NoTrans, 0, 4, 4, 1.0, A.data(), 4, B.data(), 4, 0.0,
       C.data(), 4);
  gemm(Op::NoTrans, Op::NoTrans, 4, 0, 4, 1.0, A.data(), 4, B.data(), 4, 0.0,
       C.data(), 4);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 3.0);
}

TEST(BlockedGemmEdge, KZeroScalesCOnly) {
  Matrix<double> A(4, 1), B(1, 4), C(4, 4);
  for (auto& x : C.storage()) x = 3.0;
  gemm(Op::NoTrans, Op::NoTrans, 4, 4, 0, 1.0, A.data(), 4, B.data(), 1, 0.5,
       C.data(), 4);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 1.5);
}

TEST(BlockedGemmEdge, AlphaZeroSkipsProduct) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  Rng rng(3);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto& x : C.storage()) x = 2.0;
  gemm(Op::NoTrans, Op::NoTrans, 8, 8, 8, 0.0, A.data(), 8, B.data(), 8, 3.0,
       C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 6.0);
}

TEST(BlockedGemmEdge, RejectsBadLeadingDimensions) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  EXPECT_THROW(gemm(Op::NoTrans, Op::NoTrans, 8, 8, 8, 1.0, A.data(), 4,
                    B.data(), 8, 0.0, C.data(), 8),
               std::invalid_argument);
  EXPECT_THROW(gemm(Op::NoTrans, Op::NoTrans, 8, 8, 8, 1.0, A.data(), 8,
                    B.data(), 8, 0.0, C.data(), 4),
               std::invalid_argument);
}

TEST(BlockedGemmEdge, BetaZeroDoesNotReadC) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  Rng rng(4);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
  gemm(Op::NoTrans, Op::NoTrans, 8, 8, 8, 1.0, A.data(), 8, B.data(), 8, 0.0,
       C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_FALSE(std::isnan(x));
}

TEST(BlockedGemmFloat, SinglePrecisionPath) {
  RawMem mm;
  const int m = 33, n = 29, k = 41;
  Matrix<float> A(m, k), B(k, n), C(m, n), Ref(m, n);
  Rng rng(5);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  gemm_blocked(mm, Op::NoTrans, Op::NoTrans, m, n, k, 1.0f, A.data(), A.ld(),
               B.data(), B.ld(), 0.0f, C.data(), C.ld());
  naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0f, A.data(), A.ld(),
             B.data(), B.ld(), 0.0f, Ref.data(), Ref.ld());
  EXPECT_LT(max_abs_diff<float>(C.view(), Ref.view()), 1e-4);
}

}  // namespace
}  // namespace strassen::blas
