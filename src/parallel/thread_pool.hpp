// thread_pool.hpp -- work-stealing worker pool for task parallelism.
//
// The paper's future work asks for further performance on top of the
// memory-friendly algorithm; the natural next step on a multicore host is to
// run the seven independent Strassen-Winograd products concurrently (they
// only synchronize at the U-chain combination).  With deep spawning
// (parallel/pmodgemm.hpp) the recursion forks the 7 sub-products at EVERY
// level above a flops cutoff, so the pool schedules hundreds-to-thousands of
// coarse tasks per multiply and keeping them balanced matters.
//
// Scheduling: each worker owns a WorkDeque (work_deque.hpp).  A worker that
// spawns tasks pushes them to the BOTTOM of its own deque and pops from the
// bottom too, so it executes its own subtree depth-first and cache-hot.  An
// idle worker steals from the TOP of a victim's deque -- the oldest entry,
// i.e. the largest pending subtree -- taking half the deque per grab
// (steal-half), which amortizes synchronization and spreads whole subtrees
// across the machine in O(log tasks) steals.  Threads that are not pool
// workers submit into a shared injection queue that workers drain FIFO with
// the same stealing machinery.
//
// Environment knobs (read when a pool is constructed with threads <= 0 /
// at construction respectively):
//   STRASSEN_THREADS=N  pool width when the constructor argument is 0
//                       (otherwise hardware_concurrency)
//   STRASSEN_NUMA=1     pin worker i to CPU (i mod cpus).  Combined with the
//                       per-thread arena cache (arena_pool.hpp) this keeps a
//                       worker's scratch memory first-touched on -- and
//                       therefore resident at -- its own NUMA node.  Off by
//                       default; accepts 1/on/true/yes.
//
// Exception safety (unchanged contract from the FIFO pool this replaces):
// tasks may throw.  A TaskGroup captures the first exception any of its
// tasks raises and rethrows it from wait(), after every task in the group
// has finished -- so no task can outlive the state it captured by reference,
// and the pool remains fully usable afterwards.  A fire-and-forget task
// submitted directly to the pool has no join point; its first exception is
// parked and can be collected with take_error().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/work_deque.hpp"

namespace strassen::parallel {

class ThreadPool {
 public:
  // Spawns `threads` workers (<= 0 = default_thread_count()).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // Pool width used when the constructor argument is <= 0: STRASSEN_THREADS
  // when set, otherwise hardware_concurrency (min 1).  A malformed
  // STRASSEN_THREADS value throws via parse_thread_count below -- it does
  // NOT silently fall back to hardware concurrency.
  static int default_thread_count();

  // Parses a STRASSEN_THREADS-style value: a decimal integer in [1, 4096]
  // with no trailing junk.  Anything else (negative, zero, non-numeric,
  // "8abc", out of range) throws std::invalid_argument naming the offending
  // value.
  static int parse_thread_count(const char* value);

  // Index of the pool worker running the current thread, or -1 when called
  // from outside any pool (observability maps -1 to per-thread slot 0).
  static int current_worker_index() noexcept;

  // Enqueues a fire-and-forget task: onto the calling worker's own deque
  // when invoked from a worker of THIS pool (depth-first spawning),
  // otherwise onto the shared injection queue.  The observability collector
  // active on the calling thread does NOT travel with the task: with no join
  // point, the task can outlive the submitting call's collector, so it runs
  // unobserved (TaskGroup::run, whose wait() pins the collector's lifetime,
  // is the observed path).  A throwing task does not terminate the process:
  // the exception is parked in the pool's error slot (collected with
  // take_error()); tasks launched through a TaskGroup rethrow at wait()
  // instead.
  void submit(std::function<void()> task);

  // Finds one task -- own deque, then injection queue, then stealing from
  // the other workers -- and runs it on the CALLING thread; returns false if
  // no task was found.  TaskGroup::wait() uses this to "help" instead of
  // blocking, which makes nested fork/join deadlock-free even on a
  // single-thread pool.
  bool try_run_one();

  // First exception that escaped a fire-and-forget task since the last call
  // (nullptr if none).  Collecting clears the slot.  Tasks run through a
  // TaskGroup report at wait() instead and never land here.
  std::exception_ptr take_error();

  // Gate consulted by the enqueue path (submit() and TaskGroup::run) before
  // a task is queued, for ALL pools; returning false makes the submission
  // throw std::bad_alloc -- exactly what an OOM building the task object
  // looks like to callers.  Test hook (mirrors
  // AlignedBuffer::set_allocation_gate) for exercising mid-submission
  // failure: TaskGroup must roll its pending count back and the serial
  // fallbacks must finish the work inline.  The gate runs concurrently from
  // pool workers, so it must be thread-safe.  Pass nullptr to restore the
  // default (always allow).
  using SubmitGate = bool (*)(void* user);
  static void set_submit_gate(SubmitGate gate, void* user) noexcept;

  // --- scheduler telemetry (monotonic since construction) -------------------
  // Tasks that migrated from the deque of the worker that spawned them to
  // another thread by a steal.  Injection-queue work is never a steal: it
  // has no owning worker, and it stays exempt even after a grab parks it on
  // some worker's deque and another worker takes it from there.
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }
  // Tasks executed by the pool's scheduling machinery (workers and helping
  // external threads combined).
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  // Whether STRASSEN_NUMA pinned the workers at construction.
  bool numa_pinned() const { return numa_pinned_; }

 private:
  friend class TaskGroup;  // uses enqueue() to ship its collector with tasks

  // Shared enqueue path behind submit() and TaskGroup::run: routes the task
  // to the calling worker's deque or the injection queue (tagging it
  // `injected` there) and wakes an idle worker.  May throw bad_alloc from
  // the deque push; the task is then not enqueued.
  void enqueue(PoolTask task);
  // Locates a runnable task for the calling thread (`me` = its worker index
  // in this pool, -1 for external helpers).  Steal-half batches park their
  // surplus on the thief's own deque; externals take single tasks.
  bool find_task(int me, PoolTask& out);
  // Runs one task: installs its collector, times it, notes per-thread
  // telemetry, and parks fire-and-forget exceptions in the error slot.
  void execute(PoolTask& task);
  void worker_loop(int me);

  std::vector<std::unique_ptr<WorkDeque>> deques_;  // one per worker
  WorkDeque inject_;  // submissions from non-worker threads
  std::vector<std::thread> workers_;

  std::mutex mutex_;  // error slot + sleep coordination
  std::condition_variable cv_;
  std::exception_ptr error_;  // first fire-and-forget escape
  std::atomic<bool> stopping_{false};
  std::atomic<int> idle_{0};  // workers currently in a timed wait

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};
  bool numa_pinned_ = false;
};

// Fork/join helper: run() submits to the pool (or runs inline if no pool),
// wait() blocks until every task launched through this group finished.
class TaskGroup {
 public:
  // pool == nullptr makes run() execute inline -- callers can treat the
  // serial and parallel paths uniformly (including exception capture: an
  // inline task's exception also surfaces at wait(), not at run()).
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  // Joins outstanding tasks.  An exception the caller never collected via
  // wait() is dropped here: destructors must not throw.
  ~TaskGroup() { join(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Launches a task through the group.  A failure to ENQUEUE (bad_alloc
  // building the pool task) throws here, with the group's pending count
  // rolled back -- wait()/the destructor still terminate, so callers can
  // catch and fall back to running the remaining work serially.
  void run(std::function<void()> task);
  // Blocks until every task launched through this group finished, then
  // rethrows the first exception any of them threw (if any).  The group and
  // the pool stay usable after a rethrow.
  void wait();

 private:
  // The join loop of wait(), without the rethrow.
  void join();

  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;  // first exception from any task in this group
};

// Splits [begin, end) into roughly pool-width chunks and applies
// fn(chunk_begin, chunk_end) in parallel.  Runs inline when pool is null or
// single-threaded or when the range is smaller than min_grain.  Rethrows the
// first exception a chunk raised, after all chunks finished.
void parallel_for(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                  std::int64_t min_grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace strassen::parallel
