// Unit and property tests for the rectangular splitter (src/layout/split).
#include <gtest/gtest.h>

#include <tuple>

#include "layout/split.hpp"

namespace strassen::layout {
namespace {

TEST(Classify, PaperTerminology) {
  EXPECT_EQ(classify(100, 100), Shape::WellBehaved);
  EXPECT_EQ(classify(100, 401), Shape::Wide);
  EXPECT_EQ(classify(401, 100), Shape::Lean);
  EXPECT_EQ(classify(100, 400), Shape::WellBehaved);  // exactly the ratio
  EXPECT_EQ(classify(1, 3, 2.0), Shape::Wide);
}

TEST(Classify, RejectsBadInput) {
  EXPECT_THROW(classify(0, 5), std::invalid_argument);
  EXPECT_THROW(classify(5, 5, 0.5), std::invalid_argument);
}

TEST(BalancedChunks, CoversDimensionExactly) {
  for (int dim : {1, 5, 100, 1023, 4096}) {
    for (int cap : {1, 7, 64, 1024}) {
      const auto chunks = balanced_chunks(dim, cap);
      int covered = 0;
      for (const auto& c : chunks) {
        EXPECT_EQ(c.offset, covered);
        EXPECT_GE(c.size, 1);
        EXPECT_LE(c.size, cap);
        covered += c.size;
      }
      EXPECT_EQ(covered, dim);
    }
  }
}

TEST(BalancedChunks, SizesDifferByAtMostOne) {
  const auto chunks = balanced_chunks(1000, 300);
  ASSERT_EQ(chunks.size(), 4u);
  int lo = chunks[0].size, hi = chunks[0].size;
  for (const auto& c : chunks) {
    lo = std::min(lo, c.size);
    hi = std::max(hi, c.size);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(PlanSplit, FeasibleProblemsNeedNoSplit) {
  const SplitPlan p = plan_split(700, 700, 700);
  EXPECT_FALSE(p.needed);
  EXPECT_EQ(p.products(), 1u);
}

TEST(PlanSplit, DirectProblemsNeedNoSplit) {
  const SplitPlan p = plan_split(1000, 32, 1000);
  EXPECT_FALSE(p.needed);
}

TEST(PlanSplit, ExtremeAspectRatioSplits) {
  const SplitPlan p = plan_split(4096, 256, 4096);
  EXPECT_TRUE(p.needed);
  EXPECT_GT(p.products(), 1u);
}

// The critical property: after splitting, EVERY sub-product must plan at a
// single recursion depth (or run direct) -- this is what makes the modgemm
// reconstruction loop correct.
using Shape3 = std::tuple<int, int, int>;
class SplitFeasibility : public ::testing::TestWithParam<Shape3> {};

TEST_P(SplitFeasibility, EverySubProductPlans) {
  const auto [m, k, n] = GetParam();
  const SplitPlan p = plan_split(m, k, n);
  int mc = 0, kc = 0, nc = 0;
  for (const auto& cm : p.m_chunks) {
    mc += cm.size;
    for (const auto& ck : p.k_chunks) {
      for (const auto& cn : p.n_chunks) {
        const GemmPlan sub = plan_gemm(cm.size, ck.size, cn.size);
        EXPECT_TRUE(sub.feasible || sub.direct)
            << "chunk " << cm.size << "x" << ck.size << "x" << cn.size
            << " of " << m << "x" << k << "x" << n;
      }
    }
  }
  for (const auto& c : p.k_chunks) kc += c.size;
  for (const auto& c : p.n_chunks) nc += c.size;
  EXPECT_EQ(mc, m);
  EXPECT_EQ(kc, k);
  EXPECT_EQ(nc, n);
}

INSTANTIATE_TEST_SUITE_P(
    HighlyRectangular, SplitFeasibility,
    ::testing::Values(Shape3{4096, 256, 4096}, Shape3{256, 4096, 256},
                      Shape3{4096, 4096, 256}, Shape3{8192, 100, 100},
                      Shape3{100, 100, 8192}, Shape3{2000, 65, 2000},
                      Shape3{65, 2000, 65}, Shape3{3000, 150, 70},
                      Shape3{700, 700, 700}, Shape3{1024, 256, 1024}));

TEST(PlanSplit, ChunksAreFeasibleAtTheUnifiedDepth) {
  const SplitPlan p = plan_split(8192, 100, 100);
  ASSERT_TRUE(p.needed);
  for (const auto& c : p.m_chunks) {
    const DimPlan d = choose_dim_at_depth(c.size, p.depth);
    EXPECT_NE(d.tile, 0) << "m-chunk " << c.size << " at depth " << p.depth;
  }
}

}  // namespace
}  // namespace strassen::layout
