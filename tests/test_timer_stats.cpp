// Unit tests for timing protocol and statistics helpers (src/common).
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace strassen {
namespace {

TEST(WallTimer, MeasuresForwardTime) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(MeasureProtocol, PaperProtocolAverages10BelowThreshold) {
  EXPECT_EQ(paper_protocol(150).inner_reps, 10);
  EXPECT_EQ(paper_protocol(499).inner_reps, 10);
  EXPECT_EQ(paper_protocol(500).inner_reps, 1);
  EXPECT_EQ(paper_protocol(1024).inner_reps, 1);
  EXPECT_EQ(paper_protocol(150).outer_reps, 3);
}

TEST(MeasureProtocol, CountsInvocationsExactly) {
  int calls = 0;
  MeasureOptions opt;
  opt.outer_reps = 3;
  opt.inner_reps = 4;
  opt.warmup = 2;
  measure([&] { ++calls; }, opt);
  EXPECT_EQ(calls, 2 + 3 * 4);
}

TEST(MeasureProtocol, RejectsNonPositiveReps) {
  MeasureOptions opt;
  opt.outer_reps = 0;
  EXPECT_THROW(measure([] {}, opt), std::invalid_argument);
}

TEST(MeasureProtocol, ReturnsNonNegativeSeconds) {
  MeasureOptions opt;
  opt.warmup = 0;
  const double s = measure([] {}, opt);
  EXPECT_GE(s, 0.0);
}

TEST(Summarize, BasicMoments) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(Summarize, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> v{7.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Flops, ConventionalGemmCount) {
  EXPECT_EQ(gemm_flops(10, 20, 30), 2ull * 10 * 20 * 30);
}

TEST(Flops, WinogradDepthZeroEqualsConventional) {
  EXPECT_EQ(winograd_flops(64, 0), gemm_flops(64, 64, 64));
}

TEST(Flops, WinogradRecurrence) {
  // One level: 7 products of half size + 15 half-sized additions.
  const std::uint64_t half = winograd_flops(64, 0);
  EXPECT_EQ(winograd_flops(128, 1), 7 * half + 15ull * 64 * 64);
}

TEST(Flops, WinogradBeatsConventionalForDeepRecursion) {
  // At n = 2048 with depth 5, Strassen-Winograd needs fewer operations.
  EXPECT_LT(winograd_flops(2048, 5), gemm_flops(2048, 2048, 2048));
}

TEST(Flops, GflopsRate) {
  EXPECT_DOUBLE_EQ(gflops(2'000'000'000ull, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1000, 0.0), 0.0);
}

}  // namespace
}  // namespace strassen
