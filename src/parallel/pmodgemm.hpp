// pmodgemm.hpp -- task-parallel MODGEMM on the work-stealing pool.
//
// The seven Strassen-Winograd products of one recursion level are mutually
// independent: they read the input quadrants and the S/T operand sums, and
// only the U-chain combination afterwards has cross-product dependencies.
// This module exploits exactly that structure:
//
//   * at every recursion level above a leaf cutoff (see spawn_levels below),
//     the 8 operand sums are formed into dedicated temporaries (S1..S4,
//     T1..T4), the 7 products are submitted to the work-stealing pool (each
//     recursing independently, with its own scratch arena from the
//     per-thread cache), and the quadrant combination runs as the spawning
//     task's continuation after the join;
//   * below the cutoff each task runs the serial Morton recursion of
//     core/winograd.hpp unchanged -- so the arithmetic performed (and hence
//     the result, bit for bit) is IDENTICAL to the serial algorithm;
//   * the layout conversions fan out over Morton tile ranges (each tile is
//     written independently);
//   * highly rectangular shapes that need the split decomposition (paper
//     Fig. 4) run each C-block's chain of sub-products as its own pool task:
//     the k-chain within a block stays sequential in chunk order and the
//     blocks write disjoint parts of C, so the result is bit-identical to
//     the serial splitter.
//
// Memory: a spawn level keeps all 15 temporaries live at once
// (4 A-quadrants + 4 B-quadrants + 7 C-quadrants ~ 3.75x the quadrant set of
// the serial schedule) -- the classic space-for-parallelism trade, bounded
// per worker by the depth of its active path (Boyer et al.).  Scratch comes
// from a per-thread arena cache (parallel/arena_pool.hpp), so a worker's
// temporaries are first-touched locally; STRASSEN_NUMA=1 additionally pins
// workers to CPUs (thread_pool.hpp) to keep that locality stable on
// multi-socket hosts.
//
// Restrictions: RawMem only (the cache simulator is not thread-safe by
// design -- a traced run must be a deterministic serial address stream).
#pragma once

#include <cstdint>

#include "common/matrix.hpp"
#include "core/modgemm.hpp"
#include "parallel/thread_pool.hpp"

namespace strassen::parallel {

// spawn_levels value selecting the auto policy: fork the 7 sub-products at
// every level whose children are at least min_task_flops big.
inline constexpr int kSpawnAuto = -1;

struct ParallelOptions {
  layout::TileOptions tiles{};
  // Recursion levels that fork.  kSpawnAuto (default) forks at every level
  // above the min_task_flops cutoff -- deep spawning, which keeps wide pools
  // busy on the lower levels where most of the flops live.  Explicit values
  // keep the historical meaning: 0 = fully serial compute, N > 0 = fork the
  // top N levels and serialize each task's subtree.
  int spawn_levels = kSpawnAuto;
  // Auto-policy leaf cutoff: a sub-product whose padded volume
  // (m_pad * k_pad * n_pad, ~ half its flop count) falls below this runs
  // serially inside its parent task instead of being forked.  The default
  // (2^21 ~ 2M, a ~128^3 product, a few hundred microseconds of leaf work)
  // keeps task overhead well under 1%.  Ignored when spawn_levels >= 0.
  std::int64_t min_task_flops = std::int64_t{1} << 21;
  // Schedule family for the serial subtrees below the spawn cutoff
  // (analysis/schedule.hpp): kAuto defers to STRASSEN_SCHEDULE, then the
  // default 3-temporary family.  Spawn levels always keep their 15 dedicated
  // temporaries (the space-for-parallelism trade is the point of forking);
  // the low-memory families shrink each task's serial arena.  kInPlace runs
  // as kLowMem here -- the parallel recursion never owns throwaway operand
  // copies for a subtree to overwrite.
  analysis::ScheduleFamily schedule = analysis::ScheduleFamily::kAuto;
  // <m,k,n> algorithm-family pin (analysis/algo_family.hpp), mirroring
  // ModgemmOptions::algo: kAuto defers to STRASSEN_ALGO and then the planner
  // heuristic (layout::choose_algo).  A non-<2,2,2> family stages its
  // combinations serially on the caller and runs each of the rank block
  // products as a full parallel product over the pool; sub-products pin
  // <2,2,2>, so the recursion below is the unchanged parallel engine.
  analysis::AlgoFamily algo = analysis::AlgoFamily::kAuto;
  // Per-call observability (obs/report.hpp): phase timers, workspace
  // accounting, kernel telemetry plus the parallel section (tasks executed,
  // per-thread distribution, steal count, pool utilization).  Null =
  // subsystem off.
  obs::GemmReport* report = nullptr;
};

// Bytes of spawn-level temporaries + per-task arenas pmodgemm needs beyond
// the Morton buffers themselves (informational; allocation is internal).
// Takes an explicit spawn_levels >= 0; for the auto policy, pass the
// effective depth reported in GemmReport::spawn_levels.  The six-argument
// form assumes the default serial family; the seven-argument form sizes the
// below-cutoff serial arenas for `family` (spawn levels are family-
// independent: always 15 temporaries).
std::size_t pmodgemm_workspace_bytes(int tm, int tk, int tn, int depth,
                                     int spawn_levels, std::size_t elem_size);
std::size_t pmodgemm_workspace_bytes(int tm, int tk, int tn, int depth,
                                     int spawn_levels, std::size_t elem_size,
                                     analysis::ScheduleFamily family);

// C <- alpha * op(A).op(B) + beta * C, using `pool` for parallelism.
// pool == nullptr runs the whole pipeline inline (useful for tests).
// Bit-for-bit identical to core::modgemm for every input.  Arguments are
// validated exactly like the serial entry point (same STRASSEN_REQUIRE
// checks and messages); if an allocation fails mid-call -- a buffer here or
// an arena inside a task, whose exception surfaces at TaskGroup::wait() --
// the call falls back to the serial driver's degradation ladder, so it
// still returns a correct C without partial writes.
void pmodgemm(ThreadPool* pool, Op opa, Op opb, int m, int n, int k,
              double alpha, const double* A, int lda, const double* B, int ldb,
              double beta, double* C, int ldc,
              const ParallelOptions& opt = {});

}  // namespace strassen::parallel
