// micro_kernels -- google-benchmark microbenchmarks for the library's hot
// kernels: the 4x4 leaf gemm across the paper's tile range (contiguous vs
// strided), the single-loop Morton quadrant additions vs two-loop view
// additions, and the layout conversions.
//
// These are the building blocks whose behaviour the paper's Fig. 3 argument
// rests on; this binary gives per-kernel numbers (ns/op, effective FLOPS)
// rather than whole-algorithm comparisons.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "blas/kernels.hpp"
#include "blas/level1.hpp"
#include "blas/view_ops.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "layout/convert.hpp"
#include "layout/plan.hpp"

namespace {

using namespace strassen;

void BM_LeafGemmContiguous(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  Matrix<double> A(t, t), B(t, t), C(t, t);
  Rng rng(1);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto _ : state) {
    blas::gemm_leaf(t, t, t, A.data(), t, B.data(), t, C.data(), t,
                    blas::LeafMode::Overwrite);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * t * t * t, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LeafGemmContiguous)->Arg(16)->Arg(24)->Arg(32)->Arg(33)->Arg(48)->Arg(64);

void BM_LeafGemmStrided(benchmark::State& state) {
  const int t = 32;
  const int ld = static_cast<int>(state.range(0));
  Matrix<double> M(ld, 3 * t);
  Rng rng(2);
  rng.fill_uniform(M.storage());
  const double* A = M.data();
  const double* B = M.data() + static_cast<std::size_t>(t) * ld + t;
  double* C = M.data() + static_cast<std::size_t>(2 * t) * ld + 2 * t;
  for (auto _ : state) {
    blas::gemm_leaf(t, t, t, A, ld, B, ld, C, ld, blas::LeafMode::Overwrite);
    benchmark::DoNotOptimize(C);
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * t * t * t, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LeafGemmStrided)->Arg(96)->Arg(128)->Arg(250)->Arg(256)->Arg(512);

// The paper's S3.3 point: Morton quadrant additions are ONE loop over
// contiguous memory...
void BM_QuadrantAddContiguous(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0), b(n, 2.0), d(n);
  for (auto _ : state) {
    blas::vadd(n, d.data(), a.data(), b.data());
    benchmark::DoNotOptimize(d.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          3 * sizeof(double));
}
BENCHMARK(BM_QuadrantAddContiguous)->Arg(64 * 64)->Arg(256 * 256);

// ...while column-major quadrant additions need two nested loops over
// strided views (the DGEFMM situation).
void BM_QuadrantAddStrided(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  RawMem mm;
  Matrix<double> A(2 * side, 2 * side), B(2 * side, 2 * side),
      D(2 * side, 2 * side);
  Rng rng(3);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto _ : state) {
    blas::view_add(mm, side, side, D.data(), D.ld(), A.data(), A.ld(),
                   B.data(), B.ld());
    benchmark::DoNotOptimize(D.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          side * side * 3 * sizeof(double));
}
BENCHMARK(BM_QuadrantAddStrided)->Arg(64)->Arg(256);

void BM_ToMorton(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const layout::DimPlan plan = layout::choose_dim(n);
  const layout::MortonLayout l{n, n, plan.tile, plan.tile, plan.depth};
  Matrix<double> src(n, n);
  Rng rng(4);
  rng.fill_uniform(src.storage());
  std::vector<double> dst(static_cast<std::size_t>(l.elems()));
  for (auto _ : state) {
    layout::to_morton(l, dst.data(), Op::NoTrans, src.data(), src.ld());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          l.elems() * 2 * sizeof(double));
}
BENCHMARK(BM_ToMorton)->Arg(256)->Arg(513)->Arg(1024);

void BM_FromMorton(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const layout::DimPlan plan = layout::choose_dim(n);
  const layout::MortonLayout l{n, n, plan.tile, plan.tile, plan.depth};
  Matrix<double> dst(n, n);
  std::vector<double> src(static_cast<std::size_t>(l.elems()), 1.0);
  for (auto _ : state) {
    layout::from_morton(l, src.data(), 1.0, dst.data(), dst.ld(), 0.0);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          l.elems() * 2 * sizeof(double));
}
BENCHMARK(BM_FromMorton)->Arg(256)->Arg(513)->Arg(1024);

void BM_ToMortonTransposed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const layout::DimPlan plan = layout::choose_dim(n);
  const layout::MortonLayout l{n, n, plan.tile, plan.tile, plan.depth};
  Matrix<double> src(n, n);
  Rng rng(5);
  rng.fill_uniform(src.storage());
  std::vector<double> dst(static_cast<std::size_t>(l.elems()));
  for (auto _ : state) {
    layout::to_morton(l, dst.data(), Op::Trans, src.data(), src.ld());
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_ToMortonTransposed)->Arg(256)->Arg(513);

}  // namespace

BENCHMARK_MAIN();
