// Unit tests for the thread pool and fork/join primitives (src/parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace strassen::parallel {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 20; ++i) group.run([&] { ++count; });
  group.wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, NullPoolRunsInline) {
  std::atomic<int> count{0};
  TaskGroup group(nullptr);
  group.run([&] { ++count; });
  EXPECT_EQ(count.load(), 1);  // already done: inline execution
  group.wait();
}

TEST(ThreadPool, NestedForkJoinDoesNotDeadlock) {
  // Each outer task forks inner tasks and waits -- the pattern of
  // spawn_levels >= 2.  Must complete even on a 1-thread pool thanks to the
  // help-first wait.
  ThreadPool pool(1);
  std::atomic<int> leaves{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 7; ++i) {
    outer.run([&] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 7; ++j) inner.run([&] { ++leaves; });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaves.load(), 49);
}

TEST(ThreadPool, TryRunOneDrainsQueue) {
  ThreadPool pool(1);
  // Saturate the single worker with a task that spins until released, then
  // queue more work and drain it from this thread.  Wait for the worker to
  // actually START the blocker first -- otherwise try_run_one() below could
  // pop the blocker itself and spin this thread forever.
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  group.run([&] {
    started = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) group.run([&] { ++count; });
  while (pool.try_run_one()) {
  }
  EXPECT_EQ(count.load(), 5);
  release = true;
  group.wait();
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    TaskGroup group(&pool);
    for (int i = 0; i < 50; ++i) group.run([&] { ++count; });
    group.wait();
  }  // pool destroyed here
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(&pool, 0, 1000, 16, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 5, 5, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A below-grain range runs inline as one chunk.
  std::atomic<int> sum{0};
  parallel_for(&pool, 0, 4, 100, [&](std::int64_t lo, std::int64_t hi) {
    sum += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(sum.load(), 4);
}

TEST(ParallelFor, NullPoolIsSerial) {
  std::vector<int> hits(64, 0);
  parallel_for(nullptr, 0, 64, 4, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<size_t>(i)];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ParallelFor, RejectsBadGrain) {
  EXPECT_THROW(
      parallel_for(nullptr, 0, 10, 0, [](std::int64_t, std::int64_t) {}),
      std::invalid_argument);
}

}  // namespace
}  // namespace strassen::parallel
