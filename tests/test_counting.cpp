// Operation-count tests via the CountingMem model (src/trace/counting):
// the kernels' data traffic must match closed-form counts, and the Winograd
// recursion must scale as 7 products + 15 quadrant additions per level.
#include <gtest/gtest.h>

#include <vector>

#include "blas/kernels.hpp"
#include "blas/level1.hpp"
#include "common/arena.hpp"
#include "common/rng.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "trace/counting.hpp"

namespace strassen::trace {
namespace {

TEST(CountingMem, Level1Counts) {
  CountingMem mm;
  std::vector<double> a(100, 1.0), b(100, 2.0), d(100);
  blas::vadd(mm, 100, d.data(), a.data(), b.data());
  EXPECT_EQ(mm.loads(), 200u);
  EXPECT_EQ(mm.stores(), 100u);
  mm.reset();
  blas::vzero(mm, 50, d.data());
  EXPECT_EQ(mm.loads(), 0u);
  EXPECT_EQ(mm.stores(), 50u);
}

TEST(CountingMem, LeafGemmLoadCount) {
  // The 4x4 microkernel loads 8 values per k-step per 4x4 block and stores
  // each C element once: for m=n=k multiples of 4,
  //   loads  = (m/4)(n/4) * k * 8,   stores = m*n (overwrite mode).
  CountingMem mm;
  const int t = 32;
  std::vector<double> A(t * t, 1.0), B(t * t, 1.0), C(t * t);
  blas::gemm_leaf(mm, t, t, t, A.data(), t, B.data(), t, C.data(), t,
                  blas::LeafMode::Overwrite);
  EXPECT_EQ(mm.loads(), static_cast<std::uint64_t>(t / 4) * (t / 4) * t * 8);
  EXPECT_EQ(mm.stores(), static_cast<std::uint64_t>(t) * t);
}

// Closed form for the Winograd recursion's traffic over Morton blocks with
// square tiles t and depth d (all quadrant counts in elements q = (t<<d)^2/4):
//   A(d) = 7*A(d-1) + [8 operand subs: 16 loads+8 stores each over quads]
//        + [7 U-chain adds: 2 loads + 1 store each]
std::uint64_t expected_total(int t, int d) {
  if (d == 0) {
    const std::uint64_t tt = static_cast<std::uint64_t>(t);
    return tt / 4 * (tt / 4) * tt * 8 + tt * tt;  // loads + stores
  }
  const std::uint64_t q =
      (static_cast<std::uint64_t>(t) << (d - 1)) *
      (static_cast<std::uint64_t>(t) << (d - 1));
  // 15 elementwise ops (8 operand-side, 7 U-chain), each 2 loads + 1 store
  // over one quadrant.
  return 7 * expected_total(t, d - 1) + 15 * 3 * q;
}

class WinogradTraffic : public ::testing::TestWithParam<int> {};

TEST_P(WinogradTraffic, MatchesClosedForm) {
  const int d = GetParam();
  const int t = 8;
  const int n = t << d;
  CountingMem mm;
  std::vector<double> A(static_cast<std::size_t>(n) * n, 1.0);
  std::vector<double> B(static_cast<std::size_t>(n) * n, 1.0);
  std::vector<double> C(static_cast<std::size_t>(n) * n);
  Arena arena(core::winograd_workspace_bytes(t, t, t, d, sizeof(double)));
  core::winograd_recurse(mm, C.data(), A.data(), B.data(), t, t, t, d, arena);
  EXPECT_EQ(mm.total(), expected_total(t, d));
}

INSTANTIATE_TEST_SUITE_P(Depths, WinogradTraffic, ::testing::Values(0, 1, 2, 3));

TEST(WinogradTraffic, SevenFoldGrowthDominates) {
  // Doubling the problem size multiplies traffic by ~7 (not 8): the
  // asymptotic saving Strassen buys.
  const int t = 8;
  auto total = [&](int d) {
    CountingMem mm;
    const int n = t << d;
    std::vector<double> A(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> B(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> C(static_cast<std::size_t>(n) * n);
    Arena arena(core::winograd_workspace_bytes(t, t, t, d, sizeof(double)));
    core::winograd_recurse(mm, C.data(), A.data(), B.data(), t, t, t, d,
                           arena);
    return mm.total();
  };
  const double ratio = static_cast<double>(total(4)) / total(3);
  EXPECT_GT(ratio, 6.9);
  EXPECT_LT(ratio, 7.6);  // additions push it slightly above 7
}

}  // namespace
}  // namespace strassen::trace
