// Tests for the dynamic-peeling baseline (src/baselines/dgefmm).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "baselines/dgefmm.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::baselines {
namespace {

void expect_exact(Op opa, Op opb, int m, int n, int k, double alpha,
                  double beta, const DgefmmOptions& opt = {}) {
  Rng rng(static_cast<std::uint64_t>(m) * 37 + n * 11 + k);
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac), B(br, bc), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C.storage(), -3, 3);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(),
                   B.ld(), beta, Ref.data(), Ref.ld());
  dgefmm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(), beta,
         C.data(), C.ld(), opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
      << m << "x" << n << "x" << k;
}

TEST(Dgefmm, EvenSquare) {
  expect_exact(Op::NoTrans, Op::NoTrans, 256, 256, 256, 1.0, 0.0);
}

TEST(Dgefmm, OddSquareExercisesAllPeels) {
  expect_exact(Op::NoTrans, Op::NoTrans, 257, 257, 257, 1.0, 0.0);
}

TEST(Dgefmm, PaperShowcase513) {
  expect_exact(Op::NoTrans, Op::NoTrans, 513, 513, 513, 1.0, 0.0);
}

class DgefmmSizes : public ::testing::TestWithParam<int> {};

TEST_P(DgefmmSizes, SquareSweepExact) {
  expect_exact(Op::NoTrans, Op::NoTrans, GetParam(), GetParam(), GetParam(),
               1.0, 0.0);
}

// Sizes straddling the cutoff and with maximally awkward parity chains
// (e.g. 131 -> 65 -> ... repeatedly odd).
INSTANTIATE_TEST_SUITE_P(Sizes, DgefmmSizes,
                         ::testing::Values(63, 64, 65, 100, 127, 128, 129, 131,
                                           150, 200, 255, 256, 257, 300, 511));

using RectParam = std::tuple<int, int, int>;
class DgefmmRect : public ::testing::TestWithParam<RectParam> {};

TEST_P(DgefmmRect, MixedParityRectangles) {
  const auto [m, n, k] = GetParam();
  expect_exact(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DgefmmRect,
    ::testing::Values(RectParam{130, 131, 132}, RectParam{131, 132, 130},
                      RectParam{132, 130, 131}, RectParam{200, 150, 170},
                      RectParam{129, 257, 129}, RectParam{333, 222, 111},
                      RectParam{1024, 256, 128}));

TEST(Dgefmm, TransposesAndScalars) {
  expect_exact(Op::Trans, Op::NoTrans, 150, 140, 130, 1.0, 0.0);
  expect_exact(Op::NoTrans, Op::Trans, 150, 140, 130, 2.0, 1.0);
  expect_exact(Op::Trans, Op::Trans, 131, 129, 133, -1.0, 0.5);
}

TEST(Dgefmm, CustomCutoff) {
  DgefmmOptions opt;
  opt.cutoff = 16;  // deep recursion, many peeling levels
  expect_exact(Op::NoTrans, Op::NoTrans, 201, 203, 205, 1.0, 0.0, opt);
  opt.cutoff = 300;  // never recurses: pure conventional
  expect_exact(Op::NoTrans, Op::NoTrans, 201, 203, 205, 1.0, 0.0, opt);
}

TEST(Dgefmm, RejectsSillyCutoff) {
  Matrix<double> A(10, 10), B(10, 10), C(10, 10);
  DgefmmOptions opt;
  opt.cutoff = 2;
  EXPECT_THROW(dgefmm(Op::NoTrans, Op::NoTrans, 10, 10, 10, 1.0, A.data(), 10,
                      B.data(), 10, 0.0, C.data(), 10, opt),
               std::invalid_argument);
}

TEST(Dgefmm, DegenerateDimensions) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  for (auto& x : C.storage()) x = 4.0;
  dgefmm(Op::NoTrans, Op::NoTrans, 8, 8, 0, 1.0, A.data(), 8, B.data(), 8, 0.5,
         C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.0);
  dgefmm(Op::NoTrans, Op::NoTrans, 0, 8, 8, 1.0, A.data(), 8, B.data(), 8, 0.0,
         C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.0);
}

TEST(Dgefmm, BetaZeroDoesNotReadC) {
  const int n = 129;
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(9);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
  dgefmm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(), n, 0.0,
         C.data(), n);
  for (const auto& x : C.storage()) EXPECT_FALSE(std::isnan(x));
}

}  // namespace
}  // namespace strassen::baselines
