// ablation_truncation -- isolates the paper's dynamic truncation-point
// selection: MODGEMM with the dynamic planner vs MODGEMM forced to a fixed
// T = 32 (static padding), everything else identical.
//
// Expected shape: near powers of two the two coincide; just past a power of
// two (513, 650, 800...) the fixed-T variant pays for up to 2x padding in
// every dimension (up to ~8x the arithmetic) while dynamic selection stays
// flat.  DESIGN.md calls this ablation out as the heart of the paper's
// contribution.
#include <cstdio>

#include "core/modgemm.hpp"
#include "layout/plan.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Ablation: truncation point",
                "MODGEMM with dynamic tile selection vs forced fixed T = 32 "
                "(static padding)");

  Table table({"n", "dynamic(s)", "fixed32(s)", "fixed/dynamic",
               "padded(dyn)", "padded(fix)"});
  args.maybe_mirror(table, "ablation_truncation");

  std::vector<int> sizes = args.quick
                               ? std::vector<int>{500, 513, 700}
                               : std::vector<int>{256, 300, 400, 500, 511, 512,
                                                  513, 520, 600, 700, 800};
  for (int n : sizes) {
    bench::Problem p(n, n, n, static_cast<std::uint64_t>(n) * 11);
    const MeasureOptions opt = bench::protocol(args, n);
    core::ModgemmOptions dyn;
    core::ModgemmOptions fixed;
    fixed.fixed_tile = 32;
    auto run = [&](const core::ModgemmOptions& o) {
      return measure(
          [&] {
            core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, p.A.data(),
                          p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(),
                          p.C.ld(), o);
          },
          opt);
    };
    const double t_dyn = run(dyn);
    const double t_fix = run(fixed);
    table.add_row(
        {Table::num(static_cast<long long>(n)), Table::num(t_dyn, 4),
         Table::num(t_fix, 4), Table::num(t_fix / t_dyn, 2),
         Table::num(static_cast<long long>(layout::choose_dim(n).padded)),
         Table::num(static_cast<long long>(layout::fixed_tile_dim(n, 32).padded))});
  }
  table.print();
  std::printf(
      "\nExpected shape: fixed/dynamic ~1.0 at and below powers of two, "
      "jumping sharply just past them\n(513: padded 528 vs 1024).\n");
  return 0;
}
