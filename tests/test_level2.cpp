// Unit tests for matrix-vector kernels (src/blas/level2) -- the peeling
// fix-up machinery of DGEFMM.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "blas/level2.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::blas {
namespace {

using Shape = std::tuple<int, int>;
class Level2 : public ::testing::TestWithParam<Shape> {};

TEST_P(Level2, GemvNMatchesDefinition) {
  const auto [m, n] = GetParam();
  Rng rng(1);
  Matrix<double> A(m, n);
  std::vector<double> x(n), y(m), ref(m);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(x);
  rng.fill_uniform(y);
  ref = y;
  const double alpha = 1.5, beta = 0.5;
  for (int i = 0; i < m; ++i) {
    double acc = 0;
    for (int j = 0; j < n; ++j) acc += A.at(i, j) * x[j];
    ref[i] = alpha * acc + beta * ref[i];
  }
  gemv_n(m, n, alpha, A.data(), A.ld(), x.data(), 1, beta, y.data(), 1);
  for (int i = 0; i < m; ++i) EXPECT_NEAR(y[i], ref[i], 1e-12 * n);
}

TEST_P(Level2, GemvTMatchesDefinition) {
  const auto [m, n] = GetParam();
  Rng rng(2);
  Matrix<double> A(m, n);
  std::vector<double> x(m), y(n), ref(n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(x);
  rng.fill_uniform(y);
  ref = y;
  const double alpha = -0.5, beta = 2.0;
  for (int j = 0; j < n; ++j) {
    double acc = 0;
    for (int i = 0; i < m; ++i) acc += A.at(i, j) * x[i];
    ref[j] = alpha * acc + beta * ref[j];
  }
  gemv_t(m, n, alpha, A.data(), A.ld(), x.data(), 1, beta, y.data(), 1);
  for (int j = 0; j < n; ++j) EXPECT_NEAR(y[j], ref[j], 1e-12 * m);
}

TEST_P(Level2, GerMatchesDefinition) {
  const auto [m, n] = GetParam();
  Rng rng(3);
  Matrix<double> A(m, n), Ref(m, n);
  std::vector<double> x(m), y(n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(x);
  rng.fill_uniform(y);
  copy_matrix<double>(A.view(), Ref.view());
  const double alpha = 0.75;
  ger(m, n, alpha, x.data(), 1, y.data(), 1, A.data(), A.ld());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(A.at(i, j), Ref.at(i, j) + alpha * x[i] * y[j], 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Level2,
                         ::testing::Values(Shape{1, 1}, Shape{1, 9},
                                           Shape{9, 1}, Shape{16, 16},
                                           Shape{63, 65}, Shape{100, 37}));

TEST(Level2Strided, GemvRespectsIncrements) {
  // The peeling fix-ups access rows of column-major matrices: incx == lda.
  const int m = 6, n = 5;
  Rng rng(4);
  Matrix<double> A(m, n), B(n, m);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  // y = A^T . (row 2 of B laid out with stride B.ld()).
  std::vector<double> y(n, 0.0);
  gemv_t(m, n, 1.0, A.data(), A.ld(), B.data() + 2, B.ld(), 0.0, y.data(), 1);
  for (int j = 0; j < n; ++j) {
    double acc = 0;
    for (int i = 0; i < m; ++i) acc += A.at(i, j) * B.at(2, i);
    EXPECT_NEAR(y[j], acc, 1e-13);
  }
}

TEST(Level2Strided, GerWithRowVectorFromMatrix) {
  const int m = 5, n = 4, k = 7;
  Rng rng(5);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  // The DGEFMM k-odd fix-up: C += A(:, k-1) . B(k-1, :).
  ger(m, n, 1.0, A.data() + static_cast<std::size_t>(k - 1) * A.ld(), 1,
      B.data() + (k - 1), B.ld(), C.data(), C.ld());
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(C.at(i, j), A.at(i, k - 1) * B.at(k - 1, j), 1e-13);
  (void)Ref;
}

TEST(Level2Dot, StridedDot) {
  const int n = 9;
  std::vector<double> x(3 * n), y(2 * n);
  Rng rng(6);
  rng.fill_uniform(x);
  rng.fill_uniform(y);
  double ref = 0;
  for (int i = 0; i < n; ++i) ref += x[3 * i] * y[2 * i];
  EXPECT_NEAR(dot(n, x.data(), 3, y.data(), 2), ref, 1e-13);
}

TEST(Level2BetaZero, DoesNotReadY) {
  const int m = 4, n = 3;
  Matrix<double> A(m, n);
  Rng rng(7);
  rng.fill_uniform(A.storage());
  std::vector<double> x(n, 1.0);
  std::vector<double> y(m, std::numeric_limits<double>::quiet_NaN());
  gemv_n(m, n, 1.0, A.data(), A.ld(), x.data(), 1, 0.0, y.data(), 1);
  for (int i = 0; i < m; ++i) EXPECT_FALSE(std::isnan(y[i]));
}

}  // namespace
}  // namespace strassen::blas
