// Single-precision parity tests: every implementation's float path must be
// exact on small-integer data, matching the naive float oracle bit for bit.
#include <gtest/gtest.h>

#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"

namespace strassen {
namespace {

class FloatParity : public ::testing::TestWithParam<int> {};

TEST_P(FloatParity, AllImplementationsExactOnIntegers) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 5);
  Matrix<float> A(n, n), B(n, n), Ref(n, n);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                   B.data(), n, 0.0f, Ref.data(), n);

  Matrix<float> C(n, n);
  blas::gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n, B.data(),
             n, 0.0f, C.data(), n);
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0) << "blas";

  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                B.data(), n, 0.0f, C.data(), n);
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0) << "modgemm";

  baselines::dgefmm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                    B.data(), n, 0.0f, C.data(), n);
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0) << "dgefmm";

  baselines::dgemmw(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                    B.data(), n, 0.0f, C.data(), n);
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0) << "dgemmw";
}

INSTANTIATE_TEST_SUITE_P(Sizes, FloatParity,
                         ::testing::Values(50, 129, 150, 257));

TEST(FloatParity, TransposeAndScalars) {
  const int m = 90, n = 85, k = 95;
  Rng rng(9);
  Matrix<float> At(k, m), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(At.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  rng.fill_int(Ref.storage(), -2, 2);
  copy_matrix<float>(Ref.view(), C.view());
  blas::naive_gemm(Op::Trans, Op::NoTrans, m, n, k, 2.0f, At.data(), At.ld(),
                   B.data(), B.ld(), -1.0f, Ref.data(), Ref.ld());
  core::modgemm(Op::Trans, Op::NoTrans, m, n, k, 2.0f, At.data(), At.ld(),
                B.data(), B.ld(), -1.0f, C.data(), C.ld());
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0);
}

TEST(FloatParity, FloatHitsPrecisionLimitsWhereDoubleDoesNot) {
  // On uniform real data the float error is ~1e-7-scale while double stays
  // ~1e-13 -- a sanity check that the two instantiations really differ.
  const int n = 200;
  Rng rng(11);
  Matrix<float> Af(n, n), Bf(n, n), Cf(n, n), Rf(n, n);
  rng.fill_uniform(Af.storage());
  rng.fill_uniform(Bf.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, Af.data(), n,
                   Bf.data(), n, 0.0f, Rf.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, Af.data(), n,
                Bf.data(), n, 0.0f, Cf.data(), n);
  const double err = max_abs_diff<float>(Cf.view(), Rf.view());
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 1e-3);
}

}  // namespace
}  // namespace strassen
