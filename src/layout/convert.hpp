// convert.hpp -- column-major <-> Morton order conversion.
//
// MODGEMM is a library routine: callers hand it column-major matrices, so it
// converts inputs to Morton order at the interface level and converts the
// result back (the paper measured this at 5-15% of total execution time,
// Fig. 7).  Two fusions keep that overhead down, both from the paper S3.5:
//
//   * op() fusion: any required transposition happens during the inbound
//     conversion (a gather from the transposed source), so a single core
//     routine handles all four TRANSA/TRANSB combinations.
//   * alpha/beta fusion: the outbound conversion computes
//     C <- alpha * D_morton + beta * C in one pass instead of materializing
//     D in column-major first.
//
// Padding: elements of the padded matrix outside the logical rows x cols
// region are written as zeros on the way in and skipped on the way out; the
// Winograd kernel does (cheap, bounded) redundant arithmetic on them.
#pragma once

#include <algorithm>

#include "common/matrix.hpp"
#include "common/memmodel.hpp"
#include "layout/morton.hpp"

namespace strassen::layout {

// dst (Morton buffer of layout.elems() elements) <- op(src), zero-padded.
//
// `layout.rows/cols` describe the LOGICAL (post-op) matrix.  When op ==
// Op::Trans the source is stored transposed: logical (i,j) reads src[j + i*ld].
// Converts tiles [t_begin, t_end) of the Morton tile sequence -- the unit of
// work the parallel conversion fans out over (each tile is independent).
template <class MM, class T>
void to_morton_range(MM& mm, const MortonLayout& layout, T* dst, Op op,
                     const T* src, int ld_src, int t_begin, int t_end) {
  STRASSEN_REQUIRE(layout.padded_rows() >= layout.rows &&
                       layout.padded_cols() >= layout.cols,
                   "layout does not cover the logical matrix");
  STRASSEN_REQUIRE(ld_src >= (op == Op::NoTrans ? layout.rows : layout.cols),
                   "source leading dimension too small");
  const int tr = layout.tile_rows;
  const int tc = layout.tile_cols;
  const std::int64_t tile_elems = layout.tile_elems();
  T* out = dst + tile_elems * t_begin;
  for (int t = t_begin; t < t_end; ++t, out += tile_elems) {
    std::uint32_t trow, tcol;
    morton_deinterleave(static_cast<std::uint32_t>(t), trow, tcol);
    const int row0 = static_cast<int>(trow) * tr;
    const int col0 = static_cast<int>(tcol) * tc;
    const bool full = row0 + tr <= layout.rows && col0 + tc <= layout.cols;
    if (full && op == Op::NoTrans) {
      // Hot path: contiguous column copies from the source panel.
      const T* in = src + static_cast<std::size_t>(col0) * ld_src + row0;
      for (int jj = 0; jj < tc; ++jj) {
        const T* col = in + static_cast<std::size_t>(jj) * ld_src;
        T* o = out + static_cast<std::size_t>(jj) * tr;
        for (int ii = 0; ii < tr; ++ii) mm.store(o + ii, mm.load(col + ii));
      }
    } else {
      for (int jj = 0; jj < tc; ++jj) {
        const int j = col0 + jj;
        T* o = out + static_cast<std::size_t>(jj) * tr;
        for (int ii = 0; ii < tr; ++ii) {
          const int i = row0 + ii;
          T v{0};
          if (i < layout.rows && j < layout.cols) {
            v = op == Op::NoTrans
                    ? mm.load(src + static_cast<std::size_t>(j) * ld_src + i)
                    : mm.load(src + static_cast<std::size_t>(i) * ld_src + j);
          }
          mm.store(o + ii, v);
        }
      }
    }
  }
}

// dst (Morton buffer of layout.elems() elements) <- op(src), zero-padded.
//
// `layout.rows/cols` describe the LOGICAL (post-op) matrix.  When op ==
// Op::Trans the source is stored transposed: logical (i,j) reads src[j + i*ld].
template <class MM, class T>
void to_morton(MM& mm, const MortonLayout& layout, T* dst, Op op, const T* src,
               int ld_src) {
  const int side = layout.tiles_per_side();
  to_morton_range(mm, layout, dst, op, src, ld_src, 0, side * side);
}

// Tile-range slice of from_morton, as to_morton_range.
template <class MM, class T>
void from_morton_range(MM& mm, const MortonLayout& layout, const T* src,
                       T alpha, T* C, int ld_dst, T beta, int t_begin,
                       int t_end) {
  STRASSEN_REQUIRE(layout.padded_rows() >= layout.rows &&
                       layout.padded_cols() >= layout.cols,
                   "layout does not cover the logical matrix");
  STRASSEN_REQUIRE(ld_dst >= layout.rows,
                   "destination leading dimension too small");
  const int tr = layout.tile_rows;
  const int tc = layout.tile_cols;
  const std::int64_t tile_elems = layout.tile_elems();
  const bool plain = (alpha == T{1} && beta == T{0});
  const T* in = src + tile_elems * t_begin;
  for (int t = t_begin; t < t_end; ++t, in += tile_elems) {
    std::uint32_t trow, tcol;
    morton_deinterleave(static_cast<std::uint32_t>(t), trow, tcol);
    const int row0 = static_cast<int>(trow) * tr;
    const int col0 = static_cast<int>(tcol) * tc;
    if (row0 >= layout.rows || col0 >= layout.cols) continue;  // all pad
    const int rr = std::min(tr, layout.rows - row0);
    const int cc = std::min(tc, layout.cols - col0);
    T* outbase = C + static_cast<std::size_t>(col0) * ld_dst + row0;
    for (int jj = 0; jj < cc; ++jj) {
      const T* icol = in + static_cast<std::size_t>(jj) * tr;
      T* ocol = outbase + static_cast<std::size_t>(jj) * ld_dst;
      if (plain) {
        for (int ii = 0; ii < rr; ++ii) mm.store(ocol + ii, mm.load(icol + ii));
      } else if (beta == T{0}) {
        for (int ii = 0; ii < rr; ++ii)
          mm.store(ocol + ii, static_cast<T>(alpha * mm.load(icol + ii)));
      } else {
        for (int ii = 0; ii < rr; ++ii)
          mm.store(ocol + ii, static_cast<T>(alpha * mm.load(icol + ii) +
                                             beta * mm.load(ocol + ii)));
      }
    }
  }
}

// C(logical rows x cols, column-major, ld_dst) <- alpha * src_morton + beta*C.
// Pad elements of the Morton buffer are ignored.
template <class MM, class T>
void from_morton(MM& mm, const MortonLayout& layout, const T* src, T alpha,
                 T* C, int ld_dst, T beta) {
  const int side = layout.tiles_per_side();
  from_morton_range(mm, layout, src, alpha, C, ld_dst, beta, 0, side * side);
}

// Production-model double-precision wrappers.
void to_morton(const MortonLayout& layout, double* dst, Op op,
               const double* src, int ld_src);
void from_morton(const MortonLayout& layout, const double* src, double alpha,
                 double* C, int ld_dst, double beta);

}  // namespace strassen::layout
