#include "baselines/bailey.hpp"

namespace strassen::baselines {

namespace {
std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }
}  // namespace

std::size_t bailey_workspace_bytes(int mp, int np, int kp,
                                   std::size_t elem_size) {
  STRASSEN_REQUIRE(mp % 4 == 0 && np % 4 == 0 && kp % 4 == 0,
                   "dims must be padded to multiples of four");
  std::size_t total = 0;
  int m = mp, n = np, k = kp;
  for (int level = 0; level < 2; ++level) {
    const int m2 = m / 2, k2 = k / 2, n2 = n / 2;
    total += round_up64(static_cast<std::size_t>(m2) * k2 * elem_size);
    total += round_up64(static_cast<std::size_t>(k2) * n2 * elem_size);
    total += round_up64(static_cast<std::size_t>(m2) * n2 * elem_size);
    m = m2;
    n = n2;
    k = k2;
  }
  return total;
}

void bailey_gemm(Op opa, Op opb, int m, int n, int k, double alpha,
                 const double* A, int lda, const double* B, int ldb,
                 double beta, double* C, int ldc) {
  RawMem raw;
  bailey_gemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc);
}

}  // namespace strassen::baselines
