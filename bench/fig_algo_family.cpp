// fig_algo_family -- <2,2,2> vs the shape-matched <m,k,n> family tables.
//
// The paper tunes the classic 2x2 Strassen-Winograd recursion; the family
// engine (analysis/algo_family.hpp + core/family.hpp) adds one level of a
// <3,2,3>/<2,3,4>/<3,3,3> coefficient table above it for shapes the 2x2
// quadrant model pads badly.  This bench times the SAME problem under each
// forced family:
//
//   algo-222   the seed Winograd path (the in-run baseline row)
//   algo-323   one <3,2,3> level, then <2,2,2> sub-products
//   algo-234   one <2,3,4> level, then <2,2,2> sub-products
//   algo-333   one <3,3,3> (Laderman) level, then <2,2,2> sub-products
//
// over deep squares (where <2,2,2> must stay ahead -- the planner margin
// keeps the default path on it) and the Sayuri-shaped 256x361x256 im2col
// rectangle (k = 19^2 pads heavily under powers of two; the families'
// ceil-partitions fit it better).  Raw GFLOP/s are machine-dependent, so
// tools/compare_bench.py gates each "algo-*" row on its ratio to the
// same-run "algo-222" row at the same size.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/algo_family.hpp"
#include "core/modgemm.hpp"
#include "layout/plan.hpp"
#include "obs/report.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

namespace {

struct Shape {
  int m, n, k;
  const char* what;
};

// Two regimes, both stable enough run-to-run to gate on ratios: a deep
// square (<2,2,2> must stay ahead -- the planner margin depends on it) and
// the Sayuri im2col rectangle the family tables target.  Squares near the
// direct threshold (e.g. 256) flip winners with measurement noise and are
// deliberately absent.
const Shape kShapes[] = {
    {384, 384, 384, "deep square"},
    {256, 361, 256, "Sayuri im2col rectangle"},
};

struct ResultRow {
  std::string kernel;
  int tile;
  double gflops;
};

double gflops(const Shape& s, double seconds) {
  return 2.0 * s.m * s.n * s.k / seconds / 1e9;
}

void write_json(const std::string& dir, const std::vector<ResultRow>& rows,
                const obs::GemmReport& rep) {
  const std::string path = dir + "/BENCH_algo_family.json";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  os << "{\"bench\": \"fig_algo_family\",\n \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << "  {\"kernel\": \"" << rows[i].kernel
       << "\", \"tile\": " << rows[i].tile << ", \"gflops\": " << rows[i].gflops
       << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  // A forced-family call's full v6 report rides along under "rows" so
  // tools/validate_report_schema.py covers this file too.
  os << " ],\n \"rows\": [\n  {\"label\": \"forced 333 256x361x256\", "
        "\"report\": "
     << obs::to_json(rep) << "}\n ]}\n";
  std::printf("wrote %s (%zu points)\n", path.c_str(), rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Algorithm families",
                "<2,2,2> vs shape-matched <m,k,n> coefficient tables "
                "(one forced family level, then the Winograd recursion)");

  Table table({"m", "n", "k", "what", "222(GF/s)", "323(GF/s)", "234(GF/s)",
               "333(GF/s)", "heuristic"});
  args.maybe_mirror(table, "fig_algo_family");

  std::vector<ResultRow> rows;
  obs::GemmReport instrumented;
  for (const Shape& s : kShapes) {
    bench::Problem p(s.m, s.n, s.k,
                     static_cast<std::uint64_t>(s.n) * 977 + s.k);
    const MeasureOptions mopt = bench::protocol(args, s.n);

    double gf[4] = {0, 0, 0, 0};
    int col = 0;
    for (const analysis::AlgoFamily algo : analysis::kShippedAlgoFamilies) {
      core::ModgemmOptions opt;
      opt.algo = algo;
      const double secs = measure(
          [&] {
            core::modgemm(Op::NoTrans, Op::NoTrans, s.m, s.n, s.k, 1.0,
                          p.A.data(), p.A.ld(), p.B.data(), p.B.ld(), 0.0,
                          p.C.data(), p.C.ld(), opt);
          },
          mopt);
      gf[col] = gflops(s, secs);
      rows.push_back({std::string("algo-") + analysis::algo_name(algo), s.n,
                      gf[col]});
      ++col;
    }
    // What the planner would pick with nothing forced (the heuristic keeps
    // deep squares on 222; a different answer here is the figure's point).
    const analysis::AlgoFamily chosen = layout::choose_algo(s.m, s.k, s.n);
    table.add_row({std::to_string(s.m), std::to_string(s.n),
                   std::to_string(s.k), s.what, Table::num(gf[0]),
                   Table::num(gf[1]), Table::num(gf[2]), Table::num(gf[3]),
                   analysis::algo_name(chosen)});

    if (s.k == 256 && s.n == 361) {
      // Instrument the forced-<3,3,3> Sayuri shape for the JSON report row.
      core::ModgemmOptions opt;
      opt.algo = analysis::AlgoFamily::k333;
      core::modgemm(Op::NoTrans, Op::NoTrans, s.m, s.n, s.k, 1.0, p.A.data(),
                    p.A.ld(), p.B.data(), p.B.ld(), 0.0, p.C.data(), p.C.ld(),
                    opt, &instrumented);
    }
  }
  table.print();

  if (!args.json_dir.empty()) write_json(args.json_dir, rows, instrumented);
  return 0;
}
