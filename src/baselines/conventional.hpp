// conventional.hpp -- the conventional O(n^3) baseline under its bench name.
//
// A thin, documented alias for blas::gemm so benches and examples can speak
// of the three contenders the paper compares (conventional / DGEFMM /
// DGEMMW) plus MODGEMM by name.
#pragma once

#include "blas/gemm.hpp"
#include "common/matrix.hpp"

namespace strassen::baselines {

// C <- alpha * op(A).op(B) + beta * C with the cache-blocked conventional
// algorithm (see blas/gemm.hpp for the blocking structure).
void conventional_gemm(Op opa, Op opb, int m, int n, int k, double alpha,
                       const double* A, int lda, const double* B, int ldb,
                       double beta, double* C, int ldc);

}  // namespace strassen::baselines
