// micro_kernels -- google-benchmark microbenchmarks for the library's hot
// kernels: the leaf gemm across the paper's tile range (contiguous vs
// strided) for every runnable engine kernel, the single-loop Morton quadrant
// additions vs two-loop view additions, and the layout conversions.
//
// These are the building blocks whose behaviour the paper's Fig. 3 argument
// rests on; this binary gives per-kernel numbers (ns/op, effective FLOPS)
// rather than whole-algorithm comparisons.
//
// Besides the normal google-benchmark CLI, two extra flags drive the
// engine's regression baseline:
//
//   --kernels_json=PATH   skip google-benchmark; sweep every available
//                         (kernel, variant) x tile configuration under the
//                         paper's measurement protocol and write the results
//                         as JSON (the BENCH_kernels.json artifact).
//   --check_speedup=X     with --kernels_json: exit non-zero unless the best
//                         SIMD kernel reaches X times the scalar GFLOP/s at
//                         every tile in {16, 32, 64}.  No-op when only the
//                         scalar kernel can run (portability guard for CI).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "blas/kernels.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/level1.hpp"
#include "blas/view_ops.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/modgemm.hpp"
#include "layout/convert.hpp"
#include "layout/plan.hpp"
#include "obs/report.hpp"

namespace {

using namespace strassen;

void BM_LeafGemmContiguous(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  Matrix<double> A(t, t), B(t, t), C(t, t);
  Rng rng(1);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto _ : state) {
    blas::gemm_leaf(t, t, t, A.data(), t, B.data(), t, C.data(), t,
                    blas::LeafMode::Overwrite);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * t * t * t, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LeafGemmContiguous)->Arg(16)->Arg(24)->Arg(32)->Arg(33)->Arg(48)->Arg(64);

void BM_LeafGemmStrided(benchmark::State& state) {
  const int t = 32;
  const int ld = static_cast<int>(state.range(0));
  Matrix<double> M(ld, 3 * t);
  Rng rng(2);
  rng.fill_uniform(M.storage());
  const double* A = M.data();
  const double* B = M.data() + static_cast<std::size_t>(t) * ld + t;
  double* C = M.data() + static_cast<std::size_t>(2 * t) * ld + 2 * t;
  for (auto _ : state) {
    blas::gemm_leaf(t, t, t, A, ld, B, ld, C, ld, blas::LeafMode::Overwrite);
    benchmark::DoNotOptimize(C);
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * t * t * t, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_LeafGemmStrided)->Arg(96)->Arg(128)->Arg(250)->Arg(256)->Arg(512);

// The paper's S3.3 point: Morton quadrant additions are ONE loop over
// contiguous memory...
void BM_QuadrantAddContiguous(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> a(n, 1.0), b(n, 2.0), d(n);
  for (auto _ : state) {
    blas::vadd(n, d.data(), a.data(), b.data());
    benchmark::DoNotOptimize(d.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          3 * sizeof(double));
}
BENCHMARK(BM_QuadrantAddContiguous)->Arg(64 * 64)->Arg(256 * 256);

// ...while column-major quadrant additions need two nested loops over
// strided views (the DGEFMM situation).
void BM_QuadrantAddStrided(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  RawMem mm;
  Matrix<double> A(2 * side, 2 * side), B(2 * side, 2 * side),
      D(2 * side, 2 * side);
  Rng rng(3);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto _ : state) {
    blas::view_add(mm, side, side, D.data(), D.ld(), A.data(), A.ld(),
                   B.data(), B.ld());
    benchmark::DoNotOptimize(D.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          side * side * 3 * sizeof(double));
}
BENCHMARK(BM_QuadrantAddStrided)->Arg(64)->Arg(256);

void BM_ToMorton(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const layout::DimPlan plan = layout::choose_dim(n);
  const layout::MortonLayout l{n, n, plan.tile, plan.tile, plan.depth};
  Matrix<double> src(n, n);
  Rng rng(4);
  rng.fill_uniform(src.storage());
  std::vector<double> dst(static_cast<std::size_t>(l.elems()));
  for (auto _ : state) {
    layout::to_morton(l, dst.data(), Op::NoTrans, src.data(), src.ld());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          l.elems() * 2 * sizeof(double));
}
BENCHMARK(BM_ToMorton)->Arg(256)->Arg(513)->Arg(1024);

void BM_FromMorton(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const layout::DimPlan plan = layout::choose_dim(n);
  const layout::MortonLayout l{n, n, plan.tile, plan.tile, plan.depth};
  Matrix<double> dst(n, n);
  std::vector<double> src(static_cast<std::size_t>(l.elems()), 1.0);
  for (auto _ : state) {
    layout::from_morton(l, src.data(), 1.0, dst.data(), dst.ld(), 0.0);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          l.elems() * 2 * sizeof(double));
}
BENCHMARK(BM_FromMorton)->Arg(256)->Arg(513)->Arg(1024);

void BM_ToMortonTransposed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const layout::DimPlan plan = layout::choose_dim(n);
  const layout::MortonLayout l{n, n, plan.tile, plan.tile, plan.depth};
  Matrix<double> src(n, n);
  Rng rng(5);
  rng.fill_uniform(src.storage());
  std::vector<double> dst(static_cast<std::size_t>(l.elems()));
  for (auto _ : state) {
    layout::to_morton(l, dst.data(), Op::Trans, src.data(), src.ld());
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_ToMortonTransposed)->Arg(256)->Arg(513);

// ---- engine sweep: every runnable kernel configuration --------------------

namespace ker = strassen::blas::kernels;

struct KernelConfig {
  ker::Kind kind;
  ker::Avx2Variant variant;
  std::string name;  // "scalar", "avx2-8x6", ...
};

std::vector<KernelConfig> kernel_configs() {
  std::vector<KernelConfig> out;
  for (ker::Kind kind : ker::available_kernels()) {
    if (kind == ker::Kind::kAvx2) {
      out.push_back({kind, ker::Avx2Variant::k8x6, "avx2-8x6"});
      out.push_back({kind, ker::Avx2Variant::k4x8, "avx2-4x8"});
    } else {
      out.push_back({kind, ker::Avx2Variant::kAuto, ker::kind_name(kind)});
    }
  }
  return out;
}

void BM_LeafGemmKernel(benchmark::State& state, KernelConfig cfg, int t) {
  ker::ScopedKernel pin(cfg.kind, cfg.variant);
  Matrix<double> A(t, t), B(t, t), C(t, t);
  Rng rng(7);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  for (auto _ : state) {
    blas::gemm_leaf(t, t, t, A.data(), t, B.data(), t, C.data(), t,
                    blas::LeafMode::Overwrite);
    benchmark::DoNotOptimize(C.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * t * t * t, benchmark::Counter::kIsIterationInvariantRate);
}

void register_kernel_benchmarks() {
  for (const KernelConfig& cfg : kernel_configs()) {
    for (int t : {16, 24, 32, 48, 64}) {
      benchmark::RegisterBenchmark(
          ("BM_LeafGemmKernel/" + cfg.name + "/" + std::to_string(t)).c_str(),
          [cfg, t](benchmark::State& s) { BM_LeafGemmKernel(s, cfg, t); });
    }
  }
}

// ---- --kernels_json sweep (the BENCH_kernels.json regression baseline) ----

// GFLOP/s of the contiguous T x T leaf multiply under the active kernel,
// measured with the paper's protocol (min over outer reps of the average).
double leaf_gflops(int t, int reps) {
  Rng rng(static_cast<std::uint64_t>(t) * 11 + 5);
  Matrix<double> A(t, t), B(t, t), C(t, t);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  const double flops = static_cast<double>(gemm_flops(t, t, t));
  MeasureOptions opt;
  opt.outer_reps = reps;
  opt.inner_reps = std::max(1, static_cast<int>(4e6 / flops));
  const double secs = measure(
      [&] {
        blas::gemm_leaf(t, t, t, A.data(), t, B.data(), t, C.data(), t,
                        blas::LeafMode::Overwrite);
      },
      opt);
  return flops / secs * 1e-9;
}

int run_kernel_sweep(const std::string& json_path, double check_speedup) {
  const std::vector<int> tiles{8, 16, 24, 32, 48, 64, 96};
  const std::vector<int> check_tiles{16, 32, 64};
  const std::vector<KernelConfig> configs = kernel_configs();

  // config name -> tile -> GFLOP/s
  std::map<std::string, std::map<int, double>> results;
  // config name -> one observed modgemm call's GemmReport (JSON), giving
  // each configuration's leaf/fused usage and phase split at n = 256.
  std::map<std::string, std::string> modgemm_reports;
  for (const KernelConfig& cfg : configs) {
    ker::ScopedKernel pin(cfg.kind, cfg.variant);
    for (int t : tiles) results[cfg.name][t] = leaf_gflops(t, /*reps=*/5);
    {
      const int n = 256;
      Rng rng(static_cast<std::uint64_t>(n));
      Matrix<double> A(n, n), B(n, n), C(n, n);
      rng.fill_uniform(A.storage());
      rng.fill_uniform(B.storage());
      core::ModgemmOptions mo;
      mo.tiles.direct_threshold = 64;  // guarantee a Strassen execution
      obs::GemmReport report;
      core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), A.ld(),
                    B.data(), B.ld(), 0.0, C.data(), C.ld(), mo, &report);
      modgemm_reports[cfg.name] = obs::to_json(report);
    }
  }

  // ---- execution-strategy sweep: MODGEMM end-to-end per strategy ---------
  // Effective GFLOP/s of the full product through the public API with the
  // execution strategy pinned; the "tile" key of these rows is the problem
  // size.  The packfused/morton ratio measured in the same run is machine-
  // stable, so compare_bench.py gates it exactly like the SIMD/scalar
  // leaf-kernel ratios.
  std::map<std::string, std::map<int, double>> strategy_results;
  for (int n : {256, 513}) {
    Rng rng(static_cast<std::uint64_t>(n) * 13 + 1);
    Matrix<double> A(n, n), B(n, n), C(n, n);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
    const double flops = static_cast<double>(gemm_flops(n, n, n));
    MeasureOptions mopt;
    mopt.outer_reps = 3;
    mopt.inner_reps = n < 500 ? 3 : 1;
    mopt.warmup = 1;
    for (layout::ExecStrategy strat :
         {layout::ExecStrategy::kMorton, layout::ExecStrategy::kPackFused}) {
      core::ModgemmOptions mo;
      mo.strategy = strat;
      const double secs = measure(
          [&] {
            core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                          A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(),
                          mo);
          },
          mopt);
      strategy_results[std::string("modgemm-") +
                       layout::strategy_name(strat)][n] = flops / secs * 1e-9;
    }
  }

  std::ofstream os(json_path);
  if (!os) {
    std::cerr << "micro_kernels: cannot write " << json_path << "\n";
    return 1;
  }
  os << "{\n  \"benchmark\": \"leaf_gemm_kernel_sweep\",\n";
  os << "  \"active_default\": \"" << ker::kind_name(ker::active_kernel())
     << "\",\n";
  os << "  \"compiled\": [";
  {
    bool first = true;
    for (ker::Kind k : ker::compiled_kernels()) {
      os << (first ? "" : ", ") << '"' << ker::kind_name(k) << '"';
      first = false;
    }
  }
  os << "],\n  \"results\": [\n";
  bool first_row = true;
  for (const auto& [name, per_tile] : results) {
    for (const auto& [t, gflops] : per_tile) {
      os << (first_row ? "" : ",\n") << "    {\"kernel\": \"" << name
         << "\", \"tile\": " << t << ", \"gflops\": " << gflops << "}";
      first_row = false;
    }
  }
  for (const auto& [name, per_size] : strategy_results) {
    for (const auto& [n, gflops] : per_size) {
      os << (first_row ? "" : ",\n") << "    {\"kernel\": \"" << name
         << "\", \"tile\": " << n << ", \"gflops\": " << gflops << "}";
      first_row = false;
    }
  }
  os << "\n  ],\n";
  os << "  \"modgemm_reports\": {\n";
  {
    bool first = true;
    for (const auto& [name, json] : modgemm_reports) {
      os << (first ? "" : ",\n") << "    \"" << name << "\": " << json;
      first = false;
    }
  }
  os << "\n  },\n";
  // Speedup of the best non-scalar configuration over scalar, per tile.
  os << "  \"best_simd_speedup_vs_scalar\": {";
  bool first_t = true;
  bool check_failed = false;
  for (int t : tiles) {
    double best_simd = 0.0;
    for (const auto& [name, per_tile] : results)
      if (name != "scalar") best_simd = std::max(best_simd, per_tile.at(t));
    const double scalar = results.at("scalar").at(t);
    const double speedup = scalar > 0.0 && best_simd > 0.0
                               ? best_simd / scalar
                               : 0.0;
    os << (first_t ? "" : ", ") << '"' << t << "\": "
       << (results.size() > 1 ? speedup : 1.0);
    first_t = false;
    if (check_speedup > 0.0 && results.size() > 1 &&
        std::find(check_tiles.begin(), check_tiles.end(), t) !=
            check_tiles.end() &&
        speedup < check_speedup) {
      std::cerr << "micro_kernels: speedup check FAILED at T=" << t << ": "
                << speedup << "x < " << check_speedup << "x\n";
      check_failed = true;
    }
  }
  os << "}\n}\n";
  os.close();
  std::cout << "wrote " << json_path << "\n";
  for (const auto& [name, per_tile] : results) {
    std::cout << "  " << name << ":";
    for (const auto& [t, gflops] : per_tile)
      std::cout << "  T=" << t << " " << gflops << " GF/s";
    std::cout << "\n";
  }
  for (const auto& [name, per_size] : strategy_results) {
    std::cout << "  " << name << ":";
    for (const auto& [n, gflops] : per_size)
      std::cout << "  n=" << n << " " << gflops << " GF/s";
    std::cout << "\n";
  }
  if (check_speedup > 0.0 && results.size() == 1)
    std::cout << "speedup check skipped: only the scalar kernel is available\n";
  return check_failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  double check_speedup = 0.0;
  // Strip our flags before handing argv to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kernels_json=", 0) == 0) {
      json_path = arg.substr(15);
    } else if (arg.rfind("--check_speedup=", 0) == 0) {
      check_speedup = std::atof(arg.c_str() + 16);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!json_path.empty()) return run_kernel_sweep(json_path, check_speedup);

  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
