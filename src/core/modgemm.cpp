#include "core/modgemm.hpp"

namespace strassen::core {

void modgemm(Op opa, Op opb, int m, int n, int k, double alpha,
             const double* A, int lda, const double* B, int ldb, double beta,
             double* C, int ldc, const ModgemmOptions& opt,
             ModgemmReport* report) {
  RawMem raw;
  modgemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
             report);
}

void modgemm(Op opa, Op opb, int m, int n, int k, float alpha, const float* A,
             int lda, const float* B, int ldb, float beta, float* C, int ldc,
             const ModgemmOptions& opt, ModgemmReport* report) {
  RawMem raw;
  modgemm_mm(raw, opa, opb, m, n, k, alpha, A, lda, B, ldb, beta, C, ldc, opt,
             report);
}

}  // namespace strassen::core
