// syrk.hpp -- symmetric rank-k update on top of MODGEMM.
//
// The paper's interface discussion (S2.1, S6) targets Level 3 BLAS adoption;
// after dgemm, the workhorse of factorization codes is dsyrk:
//
//     C <- alpha * A . A^T + beta * C        (C symmetric, n x n; A n x k)
//
// referencing only one triangle of C.  Exploiting the symmetry halves the
// arithmetic relative to calling gemm on the full square, and the recursive
// block structure routes all large off-diagonal work through MODGEMM:
//
//     [ C11      ]    C11 <- syrk(A1)                (recurse)
//     [ C21  C22 ]    C21 <- alpha * A2.A1^T + beta  (modgemm, op(B) = T)
//                     C22 <- syrk(A2)                (recurse)
//
// Only Lower is implemented (the convention Cholesky uses); an Upper update
// is the transpose of a Lower one.
#pragma once

#include "common/matrix.hpp"
#include "core/modgemm.hpp"

namespace strassen::core {

struct SyrkOptions {
  ModgemmOptions gemm{};   // options for the off-diagonal products
  int diagonal_block = 64; // unblocked base-case size for diagonal blocks
};

// Lower-triangle symmetric rank-k update: for i >= j,
//     C(i,j) <- alpha * sum_p A(i,p)*A(j,p) + beta * C(i,j).
// The strict upper triangle of C is neither read nor written.
void modsyrk(int n, int k, double alpha, const double* A, int lda,
             double beta, double* C, int ldc, const SyrkOptions& opt = {});

}  // namespace strassen::core
