#include "obs/env_sink.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace strassen::obs {

namespace {

struct SinkConfig {
  bool enabled = false;
  std::string path;  // empty = stderr
};

// Parses STRASSEN_OBS.  Called per emission so setenv() takes effect
// immediately; getenv is cheap next to any gemm call.
SinkConfig read_config() {
  SinkConfig cfg;
  const char* e = std::getenv("STRASSEN_OBS");
  if (e == nullptr || *e == '\0') return cfg;
  if (std::strcmp(e, "json") == 0) {
    cfg.enabled = true;
    return cfg;
  }
  if (std::strncmp(e, "json:", 5) == 0 && e[5] != '\0') {
    cfg.enabled = true;
    cfg.path = e + 5;
    return cfg;
  }
  static std::once_flag warned;
  std::call_once(warned, [e] {
    std::fprintf(stderr,
                 "strassen: ignoring unrecognized STRASSEN_OBS='%s' "
                 "(expected 'json' or 'json:PATH')\n",
                 e);
  });
  return cfg;
}

std::mutex& emit_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

bool env_sink_enabled() { return read_config().enabled; }

void env_emit(const GemmReport& r) {
  const SinkConfig cfg = read_config();
  if (!cfg.enabled) return;
  const std::string line = to_json(r);
  std::lock_guard<std::mutex> lock(emit_mutex());
  if (cfg.path.empty()) {
    std::fprintf(stderr, "%s\n", line.c_str());
    return;
  }
  std::FILE* f = std::fopen(cfg.path.c_str(), "a");
  if (f == nullptr) {
    static std::once_flag warned;
    std::call_once(warned, [&cfg] {
      std::fprintf(stderr, "strassen: cannot append STRASSEN_OBS report to %s\n",
                   cfg.path.c_str());
    });
    return;
  }
  std::fprintf(f, "%s\n", line.c_str());
  std::fclose(f);
}

}  // namespace strassen::obs
