// memmodel.hpp -- the memory-model policy that lets every compute kernel in
// this library run either at full speed or under cache simulation.
//
// The SC'98 paper instrumented its binaries with ATOM to collect the address
// trace of the whole computation and fed it to a cache simulator (paper
// Fig. 9).  We reproduce that capability at the source level: every kernel is
// a template over a MemModel policy `MM`, and performs all element accesses
// through `mm.load(p)` / `mm.store(p, v)`.
//
//   * RawMem       -- the production model.  load/store compile to plain
//                     memory accesses; GCC/Clang at -O2 generate the same
//                     code as hand-written loops.
//   * TracingMem   -- defined in trace/memmodel-adapters; records the byte
//                     address of every access into a cache model before
//                     performing it.
//
// A model is passed by reference so stateful tracing models work; RawMem is
// an empty object and costs nothing.
#pragma once

#include <cstddef>

namespace strassen {

// Production memory model: direct loads and stores, zero overhead.
struct RawMem {
  template <class T>
  T load(const T* p) const {
    return *p;
  }
  template <class T>
  void store(T* p, T v) const {
    *p = v;
  }
};

// Concept-style documentation of the policy (C++20).
template <class MM, class T = double>
concept MemModel = requires(MM& mm, const T* cp, T* p, T v) {
  { mm.load(cp) };
  { mm.store(p, v) };
};

}  // namespace strassen
