// Tests for the symbolic schedule verifier (src/analysis) and for the
// bit-identity contract of the table-driven recursion (src/core/winograd.hpp).
//
// The negative suite mutates the shipped Winograd table one defect at a time
// -- wrong sign, swapped operands, use of a clobbered value, a dead store, a
// schedule needing a fourth temporary -- and asserts the verifier rejects
// each with a step-precise diagnostic.  The bit-identity suite replays the
// seed library's hard-coded call sequence (embedded below verbatim) and
// compares every output element with == against the table interpreter, under
// both the default kernel table (fused level-1 path) and the scalar pin
// (materialized path).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "analysis/schedule.hpp"
#include "analysis/schedule_verify.hpp"
#include "blas/kernels.hpp"
#include "blas/kernels/registry.hpp"
#include "blas/level1.hpp"
#include "common/arena.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/winograd.hpp"
#include "core/workspace.hpp"
#include "obs/collector.hpp"

namespace strassen::analysis {
namespace {

using Op = Operand;
inline constexpr Op A11 = Op::kA11, A12 = Op::kA12, A21 = Op::kA21,
                    A22 = Op::kA22;
inline constexpr Op B11 = Op::kB11, B21 = Op::kB21, B22 = Op::kB22;
inline constexpr Op C11 = Op::kC11;
inline constexpr Op tS = Op::kTS0, tT = Op::kTT0, tP = Op::kTP0,
                    tP1 = Op::kTP1;

// A mutable copy of a schedule whose step/temp storage the test owns.
struct TestSchedule {
  std::vector<Step> steps;
  std::vector<Op> temps;
  Schedule sched;

  explicit TestSchedule(const Schedule& base)
      : steps(base.steps, base.steps + base.step_count),
        temps(base.temps, base.temps + base.temp_count),
        sched(base) {
    refresh();
  }

  // Re-point the Schedule at the (possibly resized) vectors.
  void refresh() {
    sched.steps = steps.data();
    sched.step_count = static_cast<int>(steps.size());
    sched.temps = temps.data();
    sched.temp_count = static_cast<int>(temps.size());
  }
};

std::string joined(const std::vector<std::string>& errors) {
  std::string all;
  for (const std::string& e : errors) all += e + "\n";
  return all;
}

bool any_error_contains(const std::vector<std::string>& errors,
                        const std::string& needle) {
  for (const std::string& e : errors)
    if (e.find(needle) != std::string::npos) return true;
  return false;
}

// ---- positive verification ------------------------------------------------

TEST(ScheduleVerify, ShippedMaterializedTableVerifies) {
  const VerifyResult r = verify_schedule(kWinograd);
  EXPECT_TRUE(r.ok) << joined(r.errors);
  EXPECT_EQ(r.temp_peak, 3);
  EXPECT_EQ(r.products, 7);
  EXPECT_EQ(r.fused_products, 0);
  EXPECT_EQ(r.linear_ops, 15);
}

TEST(ScheduleVerify, ShippedFusedTableVerifies) {
  const VerifyResult r = verify_schedule(kWinogradFusedL1);
  EXPECT_TRUE(r.ok) << joined(r.errors);
  EXPECT_EQ(r.temp_peak, 3);
  EXPECT_EQ(r.products, 7);
  EXPECT_EQ(r.fused_products, 3);
  EXPECT_EQ(r.linear_ops, 11);
}

TEST(ScheduleVerify, FusedProductsAlgebraicallyMatchMaterialized) {
  const std::vector<std::string> errors =
      check_fused_products(kWinogradFusedL1, kWinograd);
  EXPECT_TRUE(errors.empty()) << joined(errors);
}

TEST(ScheduleVerify, ConstexprCoreAgreesWithRuntimeLayer) {
  // The library TU static_asserts these; re-check here so a test run alone
  // (without rebuilding the library) still exercises the constexpr core.
  static_assert(verify_core(kWinograd).violation == Violation::kNone);
  static_assert(verify_core(kWinogradFusedL1).violation == Violation::kNone);
  constexpr CoreResult c = verify_core(kWinograd);
  const VerifyResult r = verify_schedule(kWinograd);
  EXPECT_EQ(c.temp_peak, r.temp_peak);
  EXPECT_EQ(c.products, r.products);
  EXPECT_EQ(c.linear_ops, r.linear_ops);
}

// ---- negative suite: one defect per mutation ------------------------------

TEST(ScheduleVerifyNegative, WrongSignRejected) {
  // Flip T3 (step 1) from B22 - B12 to B22 + B12: P5 picks up the wrong
  // bilinear form, so C21 and C22 miss their targets.
  TestSchedule t(kWinograd);
  ASSERT_STREQ(t.steps[1].note, "T3");
  t.steps[1] = add(tT, B22, Op::kB12, "T3");
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "C21")) << joined(r.errors);
  EXPECT_TRUE(any_error_contains(r.errors, "C22")) << joined(r.errors);
  EXPECT_EQ(verify_core(t.sched).violation, Violation::kProductIdentity);
}

TEST(ScheduleVerifyNegative, SwappedOperandsRejected) {
  // Swap S3 (step 0) to A21 - A11: P5 flips sign and the U-chain breaks.
  TestSchedule t(kWinograd);
  ASSERT_STREQ(t.steps[0].note, "S3");
  t.steps[0] = sub(tS, A21, A11, "S3");
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "C21")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kProductIdentity);
}

TEST(ScheduleVerifyNegative, UseBeforeDefinitionRejected) {
  // Swap P1 (step 11) with U2 (step 12): U2 now reads tP before any step
  // defined it -- the classic use-after-reorder defect.
  TestSchedule t(kWinograd);
  ASSERT_STREQ(t.steps[11].note, "P1");
  ASSERT_STREQ(t.steps[12].note, "U2");
  std::swap(t.steps[11], t.steps[12]);
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "step 11")) << joined(r.errors);
  EXPECT_TRUE(any_error_contains(r.errors, "tP")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kReadUndefined);
  EXPECT_EQ(c.step, 11);
  EXPECT_EQ(c.operand, tP);
}

TEST(ScheduleVerifyNegative, ClobberedLiveValueRejectedAsDeadStore) {
  // Insert a second write to tP right after P1 (step 11): the first P1 value
  // is clobbered before U2 can read it, so the store at step 11 is dead.
  TestSchedule t(kWinograd);
  ASSERT_STREQ(t.steps[11].note, "P1");
  t.steps.insert(t.steps.begin() + 12, mul(tP, A11, B11, "P1-clobber"));
  t.refresh();
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "step 11")) << joined(r.errors);
  EXPECT_TRUE(any_error_contains(r.errors, "never read")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kDeadStore);
  EXPECT_EQ(c.step, 11);
  EXPECT_EQ(c.operand, tP);
}

// A 4-temporary variant: compute P2 up front into a second C-shaped
// temporary and form C11 = P1 + P2 at the end, instead of reusing C11 as
// scratch.  Algebraically correct -- but four temporaries are live at once.
TestSchedule four_temp_variant() {
  TestSchedule t(kWinograd);
  EXPECT_EQ(t.steps.size(), 22u);
  t.steps.insert(t.steps.begin(), mul(tP1, A12, B21, "P2"));
  // Drop the tail that recomputed P2 into C11 (old steps 20/21); the new
  // final step combines the two product temporaries.
  t.steps.resize(21);  // new indices 0..20 == P2 + old steps 0..19
  t.steps.push_back(add(C11, tP, tP1, "U1"));
  t.temps = {tS, tT, tP, tP1};
  t.refresh();
  return t;
}

TEST(ScheduleVerifyNegative, UnderdeclaredTempPeakRejected) {
  TestSchedule t = four_temp_variant();
  t.sched.declared_temp_peak = 3;  // lie: the real peak is 4
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "live-temporary peak is 4"))
      << joined(r.errors);
  EXPECT_EQ(verify_core(t.sched).violation, Violation::kTempPeakMismatch);
}

TEST(ScheduleVerifyNegative, FourTempScheduleVerifiesWithHonestBound) {
  // The same table with an honest declaration passes: the verifier measures
  // and reports the peak of any schedule, it does not hard-code 3.
  TestSchedule t = four_temp_variant();
  t.sched.declared_temp_peak = 4;
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_TRUE(r.ok) << joined(r.errors);
  EXPECT_EQ(r.temp_peak, 4);
  EXPECT_EQ(r.products, 7);
}

TEST(ScheduleVerifyNegative, WriteToInputRejected) {
  TestSchedule t(kWinograd);
  t.steps[0] = sub(A11, A11, A21, "S3");
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "A11")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kWriteToInput);
  EXPECT_EQ(c.step, 0);
}

TEST(ScheduleVerifyNegative, UndeclaredTemporaryRejected) {
  TestSchedule t(kWinograd);
  t.temps = {tS, tT};  // tP used by P1/U1 but no longer declared
  t.refresh();
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "tP")) << joined(r.errors);
  EXPECT_EQ(verify_core(t.sched).violation, Violation::kUndeclaredTemp);
}

TEST(ScheduleVerifyNegative, FusedStepInPlainTableRejected) {
  TestSchedule t(kWinogradFusedL1);
  t.sched.uses_fused_kernels = false;
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(verify_core(t.sched).violation, Violation::kFusedInPlainTable);
}

TEST(ScheduleVerifyNegative, EmptyScheduleRejected) {
  Schedule empty = kWinograd;
  empty.steps = nullptr;
  empty.step_count = 0;
  const VerifyResult r = verify_schedule(empty);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(verify_core(empty).violation, Violation::kEmptySchedule);
}

TEST(ScheduleVerifyNegative, MutatedFusedProductCaughtAgainstReference) {
  // Flip the B-side sign of the fused P5: the bilinear form no longer
  // matches any materialized Winograd product.
  TestSchedule t(kWinogradFusedL1);
  ASSERT_STREQ(t.steps[0].note, "P5");
  t.steps[0] = mul_fused_ab(Op::kC21, A11, Sign::kMinus, A21, B22,
                            Sign::kPlus, Op::kB12, "P5");
  const std::vector<std::string> errors =
      check_fused_products(t.sched, kWinograd);
  EXPECT_FALSE(errors.empty());
  EXPECT_TRUE(any_error_contains(errors, "P5")) << joined(errors);
}

// ---- the low-memory schedule family ---------------------------------------

TEST(ScheduleVerifyFamily, ShippedLowMemTableVerifies) {
  const VerifyResult r = verify_schedule(kWinogradLowMem);
  EXPECT_TRUE(r.ok) << joined(r.errors);
  EXPECT_EQ(r.temp_peak, 2);
  EXPECT_EQ(r.products, 7);
  EXPECT_EQ(r.linear_ops, 15);
  EXPECT_EQ(temp_buffer_count(kWinogradLowMem), 2);
}

TEST(ScheduleVerifyFamily, ShippedInPlaceTableVerifies) {
  const VerifyResult r = verify_schedule(kWinogradInPlace);
  EXPECT_TRUE(r.ok) << joined(r.errors);
  EXPECT_EQ(r.temp_peak, 1);
  EXPECT_EQ(r.products, 7);
  EXPECT_EQ(r.linear_ops, 15);
}

TEST(ScheduleVerifyFamily, ShippedAccumTableVerifies) {
  const VerifyResult r = verify_schedule(kWinogradAccum);
  EXPECT_TRUE(r.ok) << joined(r.errors);
  EXPECT_EQ(r.temp_peak, 3);
  EXPECT_EQ(r.products, 7);
  EXPECT_EQ(r.linear_ops, 22);
}

TEST(ScheduleVerifyFamily, ConstexprCoreProvesFamilyTables) {
  static_assert(verify_core(kWinogradLowMem).violation == Violation::kNone);
  static_assert(verify_core(kWinogradInPlace).violation == Violation::kNone);
  static_assert(verify_core(kWinogradAccum).violation == Violation::kNone);
}

TEST(ScheduleVerifyNegative, InPlaceReadAfterClobberRejected) {
  // Move S3 (A11 <- A22 - S2, step 11) before P4 (step 8, which still needs
  // A11 to hold S2): the in-place family's whole safety argument is step
  // ordering around the quadrant clobbers, and the verifier must see the
  // products that now read the wrong value.  C11 = P1 + P2 is formed before
  // the clobbers and stays correct; C12 (via P4 and P6) is the first
  // quadrant whose identity breaks.
  TestSchedule t(kWinogradInPlace);
  ASSERT_STREQ(t.steps[11].note, "S3");
  ASSERT_STREQ(t.steps[8].note, "P4");
  const Step s3 = t.steps[11];
  t.steps.erase(t.steps.begin() + 11);
  t.steps.insert(t.steps.begin() + 8, s3);
  t.refresh();
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "C12")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kProductIdentity);
  EXPECT_EQ(c.operand, Op::kC12);
}

TEST(ScheduleVerifyNegative, InPlaceTableWithoutFlagRejected) {
  // The same steps without the overwrites_inputs declaration: the first
  // quadrant clobber (S1 into A21, step 3) is a write-to-input violation.
  TestSchedule t(kWinogradInPlace);
  t.sched.overwrites_inputs = false;
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "A21")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kWriteToInput);
  EXPECT_EQ(c.step, 3);
  EXPECT_EQ(c.operand, A21);
}

TEST(ScheduleVerifyNegative, SharedBufferOverlapRejected) {
  // Move P1 (step 11) before S4 (step 9): algebraically nothing changes --
  // tS and tP are distinct slots -- but tP is now born while tS is still
  // live, and the low-mem table maps both onto ONE arena buffer.  With an
  // honest 3-temporary declaration the stale buffer mapping is the lie the
  // verifier must catch.
  TestSchedule t(kWinogradLowMem);
  ASSERT_STREQ(t.steps[11].note, "P1");
  ASSERT_STREQ(t.steps[9].note, "S4");
  const Step p1 = t.steps[11];
  t.steps.erase(t.steps.begin() + 11);
  t.steps.insert(t.steps.begin() + 9, p1);
  t.refresh();
  t.sched.declared_temp_peak = 3;  // honest: the reorder raised the peak
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "shares an arena buffer"))
      << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kSharedTempOverlap);
  EXPECT_EQ(c.step, 10);  // first point with both tS and tP live
  EXPECT_EQ(c.operand, tP);
}

TEST(ScheduleVerifyNegative, BadTempBufferIdRejected) {
  TestSchedule t(kWinogradLowMem);
  static constexpr std::int8_t kBad[] = {0, 1, 3};  // id 3 out of range
  t.sched.temp_buffer = kBad;
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(verify_core(t.sched).violation, Violation::kBadTempBuffer);
}

TEST(ScheduleVerifyNegative, AccumTempPeakUndercountRejected) {
  // The accumulating table really needs 3 temporaries; declaring the
  // low-mem bound instead must be rejected with the measured peak.
  TestSchedule t(kWinogradAccum);
  t.sched.declared_temp_peak = 2;
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "live-temporary peak is 3"))
      << joined(r.errors);
  EXPECT_EQ(verify_core(t.sched).violation, Violation::kTempPeakMismatch);
}

TEST(ScheduleVerifyNegative, AccumInitialValueClobberRejected) {
  // Turn C11 += P1 (step 23) into a direct product C11 = P1: the final
  // bilinear form still reaches its target (P2 is added afterwards) but the
  // caller's initial C11 no longer survives into the result -- exactly the
  // defect the accumulating contract exists to exclude, invisible to every
  // overwrite-table check.
  TestSchedule t(kWinogradAccum);
  ASSERT_STREQ(t.steps[23].note, "C11+=P1");
  t.steps[23] = mul(C11, A11, B11, "P1");
  t.refresh();
  const VerifyResult r = verify_schedule(t.sched);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(any_error_contains(r.errors, "C11")) << joined(r.errors);
  const CoreResult c = verify_core(t.sched);
  EXPECT_EQ(c.violation, Violation::kAccumClobber);
  EXPECT_EQ(c.operand, C11);
}

}  // namespace
}  // namespace strassen::analysis

// ---- bit-identity of the table interpreter vs the seed call sequence ------

namespace strassen::core {
namespace {

// The seed library's hard-coded recursion, embedded verbatim (modulo the
// function name).  The table interpreter must reproduce this sequence of
// kernel calls -- and therefore every output bit -- exactly, on every kernel
// table.
template <class MM, class T>
void seed_winograd_recurse(MM& mm, T* C, const T* A, const T* B, int tm,
                           int tk, int tn, int depth, Arena& arena) {
  if (depth == 0) {
    blas::gemm_leaf(mm, tm, tn, tk, A, tm, B, tk, C, tm,
                    blas::LeafMode::Overwrite);
    return;
  }
  const int d1 = depth - 1;
  const std::size_t scale = std::size_t{1} << (2 * d1);
  const std::size_t qa = static_cast<std::size_t>(tm) * tk * scale;
  const std::size_t qb = static_cast<std::size_t>(tk) * tn * scale;
  const std::size_t qc = static_cast<std::size_t>(tm) * tn * scale;

  const T* A11 = A;
  const T* A12 = A + qa;
  const T* A21 = A + 2 * qa;
  const T* A22 = A + 3 * qa;
  const T* B11 = B;
  const T* B12 = B + qb;
  const T* B21 = B + 2 * qb;
  const T* B22 = B + 3 * qb;
  T* C11 = C;
  T* C12 = C + qc;
  T* C21 = C + 2 * qc;
  T* C22 = C + 3 * qc;

  Arena::Frame frame(arena);
  T* tS = arena.push<T>(qa);
  T* tT = arena.push<T>(qb);
  T* tP = arena.push<T>(qc);

  auto mul = [&](T* dst, const T* a, const T* b) {
    seed_winograd_recurse(mm, dst, a, b, tm, tk, tn, d1, arena);
  };

  if constexpr (std::is_same_v<MM, RawMem> && std::is_same_v<T, double>) {
    if (d1 == 0) {
      namespace ker = blas::kernels;
      const ker::LeafKernels& tab = ker::active();
      if (tab.gemm_fused_a != nullptr && tab.gemm_fused_b != nullptr &&
          tab.gemm_fused_ab != nullptr) {
        using ker::FusedOp;
        {
          obs::LeafTimer lt(/*fused=*/true);
          tab.gemm_fused_ab(tm, tn, tk, A11, A21, FusedOp::kSub, tm,  // P5 =
                            B22, B12, FusedOp::kSub, tk, C21, tm);    //  S3.T3
        }
        blas::vadd(mm, qa, tS, A21, A22);     // S1
        blas::vsub(mm, qb, tT, B12, B11);     // T1
        mul(C22, tS, tT);                     // P3 = S1.T1
        blas::vsub_inplace(mm, qa, tS, A11);  // S2 = S1 - A11
        blas::vsub(mm, qb, tT, B22, tT);      // T2 = B22 - T1
        mul(C12, tS, tT);                     // P4 = S2.T2
        mul(tP, A11, B11);                    // P1
        blas::vadd_inplace(mm, qc, C12, tP);   // U2 = P1 + P4
        blas::vadd_inplace(mm, qc, C21, C12);  // U3 = U2 + P5
        blas::vadd_inplace(mm, qc, C12, C22);  // U6 = U2 + P3
        blas::vadd_inplace(mm, qc, C22, C21);  // final C22 = U3 + P3
        {
          obs::LeafTimer lt(/*fused=*/true);
          tab.gemm_fused_b(tm, tn, tk, A22, tm, tT, B21,  // -P7 =
                           FusedOp::kSub, tk, C11, tm);   //  A22.(T2 - B21)
        }
        blas::vsub_inplace(mm, qc, C21, C11);  // final C21 = U3 + P7
        {
          obs::LeafTimer lt(/*fused=*/true);
          tab.gemm_fused_a(tm, tn, tk, A12, tS, FusedOp::kSub, tm,  // P6 =
                           B22, tk, C11, tm);                       //  S4.B22
        }
        blas::vadd_inplace(mm, qc, C12, C11);  // final C12 = U6 + P6
        mul(C11, A12, B21);                    // P2
        blas::vadd_inplace(mm, qc, C11, tP);   // final C11 = P1 + P2
        return;
      }
    }
  }

  blas::vsub(mm, qa, tS, A11, A21);   // S3
  blas::vsub(mm, qb, tT, B22, B12);   // T3
  mul(C21, tS, tT);                   // P5 = S3.T3
  blas::vadd(mm, qa, tS, A21, A22);   // S1
  blas::vsub(mm, qb, tT, B12, B11);   // T1
  mul(C22, tS, tT);                   // P3 = S1.T1
  blas::vsub_inplace(mm, qa, tS, A11);  // S2 = S1 - A11
  blas::vsub(mm, qb, tT, B22, tT);      // T2 = B22 - T1
  mul(C12, tS, tT);                     // P4 = S2.T2
  blas::vsub(mm, qa, tS, A12, tS);      // S4 = A12 - S2
  blas::vsub_inplace(mm, qb, tT, B21);  // -T4 = T2 - B21
  mul(tP, A11, B11);                    // P1
  blas::vadd_inplace(mm, qc, C12, tP);  // U2 = P1 + P4
  blas::vadd_inplace(mm, qc, C21, C12); // U3 = U2 + P5
  blas::vadd_inplace(mm, qc, C12, C22); // U6 = U2 + P3
  blas::vadd_inplace(mm, qc, C22, C21); // final C22 = U3 + P3
  mul(C11, A22, tT);                    // -P7 = A22.(T2 - B21)
  blas::vsub_inplace(mm, qc, C21, C11); // final C21 = U3 + P7
  mul(C11, tS, B22);                    // P6 = S4.B22
  blas::vadd_inplace(mm, qc, C12, C11); // final C12 = U6 + P6
  mul(C11, A12, B21);                   // P2
  blas::vadd_inplace(mm, qc, C11, tP);  // final C11 = P1 + P2
}

// Real-valued (non-integer) operands so any reordering or re-association in
// the interpreter would change rounding and break the == comparison.
void expect_bit_identical(int tm, int tk, int tn, int depth,
                          std::uint64_t seed) {
  const int m = tm << depth, k = tk << depth, n = tn << depth;
  Rng rng(seed);
  std::vector<double> Am(static_cast<std::size_t>(m) * k);
  std::vector<double> Bm(static_cast<std::size_t>(k) * n);
  std::vector<double> Cseed(static_cast<std::size_t>(m) * n, -1.0);
  std::vector<double> Ctable(static_cast<std::size_t>(m) * n, -2.0);
  rng.fill_uniform(Am);
  rng.fill_uniform(Bm);

  RawMem mm;
  {
    Arena arena(winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double)));
    seed_winograd_recurse(mm, Cseed.data(), Am.data(), Bm.data(), tm, tk, tn,
                          depth, arena);
  }
  {
    Arena arena(winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double)));
    winograd_recurse(mm, Ctable.data(), Am.data(), Bm.data(), tm, tk, tn,
                     depth, arena);
  }
  EXPECT_EQ(std::memcmp(Cseed.data(), Ctable.data(),
                        Cseed.size() * sizeof(double)),
            0)
      << "tm=" << tm << " tk=" << tk << " tn=" << tn << " depth=" << depth
      << " kernel=" << blas::kernels::kind_name(blas::kernels::active_kernel());
}

TEST(ScheduleBitIdentity, TableMatchesSeedSequenceDefaultKernel) {
  expect_bit_identical(4, 4, 4, 1, 11);
  expect_bit_identical(3, 5, 7, 2, 12);
  expect_bit_identical(8, 6, 4, 3, 13);
}

TEST(ScheduleBitIdentity, TableMatchesSeedSequenceScalarPin) {
  blas::kernels::ScopedKernel pin(blas::kernels::Kind::kScalar);
  expect_bit_identical(4, 4, 4, 1, 21);
  expect_bit_identical(3, 5, 7, 2, 22);
  expect_bit_identical(8, 6, 4, 3, 23);
}

// ---- the family entry points against the seed recursion -------------------

// The low-memory families reorder the products, so they are NOT bit-pinned
// against the seed in general -- but on small-integer data every
// intermediate is exactly representable, so all orders must agree exactly.
void expect_family_exact(int tm, int tk, int tn, int depth,
                         std::uint64_t seed) {
  using analysis::ScheduleFamily;
  const int m = tm << depth, k = tk << depth, n = tn << depth;
  Rng rng(seed);
  std::vector<double> Am(static_cast<std::size_t>(m) * k);
  std::vector<double> Bm(static_cast<std::size_t>(k) * n);
  rng.fill_int(Am, -3, 3);
  rng.fill_int(Bm, -3, 3);
  std::vector<double> Cref(static_cast<std::size_t>(m) * n, 0.0);
  RawMem mm;
  {
    Arena arena(winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double)));
    seed_winograd_recurse(mm, Cref.data(), Am.data(), Bm.data(), tm, tk, tn,
                          depth, arena);
  }
  {
    // kLowMem: the 2-buffer table at every level.
    std::vector<double> C(Cref.size(), -1.0);
    Arena arena(winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double),
                                         ScheduleFamily::kLowMem));
    winograd_recurse(mm, C.data(), Am.data(), Bm.data(), tm, tk, tn, depth,
                     arena, ScheduleFamily::kLowMem);
    for (std::size_t i = 0; i < C.size(); ++i)
      ASSERT_EQ(C[i], Cref[i]) << "lowmem differs at " << i;
  }
  {
    // kInPlace: the top level destroys the operand copies it is given.
    std::vector<double> C(Cref.size(), -1.0), Ac = Am, Bc = Bm;
    Arena arena(winograd_workspace_bytes(tm, tk, tn, depth, sizeof(double),
                                         ScheduleFamily::kInPlace));
    winograd_recurse_inplace(mm, C.data(), Ac.data(), Bc.data(), tm, tk, tn,
                             depth, arena);
    for (std::size_t i = 0; i < C.size(); ++i)
      ASSERT_EQ(C[i], Cref[i]) << "inplace differs at " << i;
  }
  {
    // Accumulating top level: C starts at X and must end at X + A.B.
    std::vector<double> C(Cref.size());
    rng.fill_int(C, -3, 3);
    std::vector<double> want = Cref;
    for (std::size_t i = 0; i < want.size(); ++i) want[i] += C[i];
    Arena arena(winograd_accum_workspace_bytes(
        tm, tk, tn, depth, sizeof(double), ScheduleFamily::kLowMem));
    winograd_recurse_acc(mm, C.data(), Am.data(), Bm.data(), tm, tk, tn,
                         depth, arena, ScheduleFamily::kLowMem);
    for (std::size_t i = 0; i < C.size(); ++i)
      ASSERT_EQ(C[i], want[i]) << "accum differs at " << i;
  }
}

TEST(ScheduleFamilies, FamilyEntryPointsExactOnIntegers) {
  expect_family_exact(4, 4, 4, 1, 41);
  expect_family_exact(3, 5, 7, 2, 42);
  expect_family_exact(8, 6, 4, 3, 43);
}

}  // namespace
}  // namespace strassen::core
