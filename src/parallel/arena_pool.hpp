// arena_pool.hpp -- per-thread cache of recursion arenas.
//
// Every Winograd task needs an Arena for its level temporaries (or, below
// the spawn cutoff, for the whole serial subtree).  Allocating those arenas
// fresh per task would put aligned_alloc/free on the task hot path and --
// worse on multi-socket machines -- hand a worker memory that another thread
// first touched.  Instead each thread keeps a small cache of idle arenas:
//
//   * ScratchArena acquires the best-fitting cached arena (or allocates one
//     cold) and returns it to the cache on destruction.  Because the cache
//     is thread_local, a worker's scratch memory is first-touched by that
//     worker and stays on its NUMA node; with STRASSEN_NUMA=1 pinning the
//     workers (see thread_pool.hpp), the binding is stable for the process
//     lifetime.
//   * Reuse stays visible to the allocation gate: a cache hit consults
//     AlignedBuffer::allocation_allowed() with the requested size, so
//     fault-injection sweeps cover every acquisition site, warm or cold,
//     and each acquisition consults the gate exactly once.
//   * There is no clear-and-retry on refusal -- a refused or failed
//     acquisition throws std::bad_alloc straight into the degradation
//     ladder, exactly like a cold allocation failure.
//
// Each ScratchArena is an independent buffer (not a slice of a shared
// stack), so a task that help-runs other tasks while blocked in
// TaskGroup::wait() never interleaves arena frames with them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/arena.hpp"

namespace strassen::parallel {

// RAII scratch arena drawn from (and returned to) the calling thread's cache.
// Observability: acquisition notes the requested bytes on the installed
// collector as a workspace acquisition (cache hits included), preserving the
// "one workspace note per task arena" accounting the obs layer documents.
class ScratchArena {
 public:
  explicit ScratchArena(std::size_t bytes);
  ~ScratchArena();
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  Arena& arena() { return arena_; }

 private:
  Arena arena_;
  std::size_t requested_ = 0;
};

// Frees every idle arena cached by the CURRENT thread.  Called by the
// degradation ladder before a serial retry so real memory pressure is
// relieved on the falling-back thread; workers' caches drain when the pool
// is destroyed.  Never consults the allocation gate (it only frees).
void purge_thread_arena_cache() noexcept;

// Stats for the CURRENT thread's cache (tests and benchmarks).
struct ArenaCacheStats {
  std::size_t cached_arenas = 0;  // idle arenas currently held
  std::size_t cached_bytes = 0;   // sum of their capacities
  std::uint64_t hits = 0;         // acquisitions served from the cache
  std::uint64_t misses = 0;       // acquisitions that allocated cold
};
ArenaCacheStats thread_arena_cache_stats() noexcept;

}  // namespace strassen::parallel
