// Unit tests for the cache simulator (src/trace/cache).
#include <gtest/gtest.h>

#include "trace/cache.hpp"
#include "trace/presets.hpp"

namespace strassen::trace {
namespace {

CacheConfig dm_cfg(std::size_t size, std::size_t block) {
  return CacheConfig{"L1", size, block, 1, 1.0};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(dm_cfg(1024, 32));
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.access(0x101F, false));   // same 32B block
  EXPECT_FALSE(c.access(0x1020, false));  // next block
  EXPECT_EQ(c.accesses(), 4u);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_DOUBLE_EQ(c.miss_ratio(), 0.5);
}

TEST(Cache, DirectMappedConflict) {
  // Two addresses exactly one cache-size apart thrash a direct-mapped cache.
  Cache c(dm_cfg(1024, 32));
  EXPECT_FALSE(c.access(0x0000, false));
  EXPECT_FALSE(c.access(0x0400, false));  // evicts 0x0000
  EXPECT_FALSE(c.access(0x0000, false));  // conflict miss
  EXPECT_FALSE(c.access(0x0400, false));
  EXPECT_EQ(c.misses(), 4u);
}

TEST(Cache, TwoWayAbsorbsThePairConflict) {
  CacheConfig cfg{"L1", 1024, 32, 2, 1.0};
  Cache c(cfg);
  EXPECT_FALSE(c.access(0x0000, false));
  EXPECT_FALSE(c.access(0x0400, false));  // same set, second way
  EXPECT_TRUE(c.access(0x0000, false));
  EXPECT_TRUE(c.access(0x0400, false));
  EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  CacheConfig cfg{"L1", 2 * 32 * 2, 32, 2, 1.0};  // 2 sets x 2 ways
  Cache c(cfg);
  // Three blocks mapping to set 0 (set index = block & 1): blocks 0, 2, 4
  // -> addresses 0x00, 0x40, 0x80.
  c.access(0x00, false);  // miss, ways: [0]
  c.access(0x40, false);  // miss, ways: [2,0]
  c.access(0x00, false);  // hit,  ways: [0,2]
  c.access(0x80, false);  // miss, evicts LRU block 2 -> ways: [4,0]
  EXPECT_TRUE(c.access(0x00, false));
  EXPECT_FALSE(c.access(0x40, false));  // was evicted
}

TEST(Cache, CapacitySweepMissesWhenWorkingSetExceedsSize) {
  // Stream 2x the cache size repeatedly: every access misses (LRU worst
  // case for a cyclic pattern).
  Cache c(dm_cfg(1024, 32));
  for (int pass = 0; pass < 3; ++pass)
    for (std::uintptr_t a = 0; a < 2048; a += 32) c.access(a, false);
  EXPECT_DOUBLE_EQ(c.miss_ratio(), 1.0);
}

TEST(Cache, FitsWorkingSetAfterWarmup) {
  Cache c(dm_cfg(1024, 32));
  for (std::uintptr_t a = 0; a < 1024; a += 8) c.access(a, false);
  c.reset_stats();
  for (int pass = 0; pass < 4; ++pass)
    for (std::uintptr_t a = 0; a < 1024; a += 8) c.access(a, false);
  EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, FlushDropsContents) {
  Cache c(dm_cfg(1024, 32));
  c.access(0x1000, false);
  c.flush();
  EXPECT_FALSE(c.access(0x1000, false));
  EXPECT_EQ(c.accesses(), 1u);
}

TEST(Cache, WriteCounting) {
  Cache c(dm_cfg(1024, 32));
  c.access(0x0, true);
  c.access(0x0, false);
  c.access(0x8, true);
  EXPECT_EQ(c.writes(), 2u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{"x", 1000, 32, 1, 1.0}),
               std::invalid_argument);  // not a whole number of sets
  EXPECT_THROW(Cache(CacheConfig{"x", 1024, 24, 1, 1.0}),
               std::invalid_argument);  // block not a power of two
  EXPECT_THROW(Cache(CacheConfig{"x", 1024, 32, 0, 1.0}),
               std::invalid_argument);
}

TEST(Hierarchy, MissesPropagateDownLevels) {
  CacheHierarchy h("test",
                   {CacheConfig{"L1", 64, 32, 1, 1.0},
                    CacheConfig{"L2", 256, 32, 1, 10.0}},
                   100.0);
  h.access(0x000, false);  // L1 miss, L2 miss, memory
  h.access(0x000, false);  // L1 hit
  h.access(0x040, false);  // L1 miss (conflict in 64B L1), L2 miss
  h.access(0x000, false);  // L1 miss, L2 hit
  EXPECT_EQ(h.level(0).accesses(), 4u);
  EXPECT_EQ(h.level(0).misses(), 3u);
  EXPECT_EQ(h.level(1).accesses(), 3u);
  EXPECT_EQ(h.level(1).misses(), 2u);
  EXPECT_EQ(h.memory_accesses(), 2u);
}

TEST(Hierarchy, EstimatedCyclesWeightsByLevel) {
  CacheHierarchy h("test", {CacheConfig{"L1", 1024, 32, 1, 2.0}}, 50.0);
  h.access(0x0, false);  // miss -> memory: 50
  h.access(0x0, false);  // hit: 2
  h.access(0x0, false);  // hit: 2
  EXPECT_DOUBLE_EQ(h.estimated_cycles(), 54.0);
}

TEST(Hierarchy, PresetsHaveThePaperGeometries) {
  const CacheHierarchy fig9 = paper_fig9_cache();
  EXPECT_EQ(fig9.level(0).config().size_bytes, 16u * 1024);
  EXPECT_EQ(fig9.level(0).config().block_bytes, 32u);
  EXPECT_EQ(fig9.level(0).config().associativity, 1);

  const CacheHierarchy alpha = alpha_miata_hierarchy();
  ASSERT_EQ(alpha.num_levels(), 3u);
  EXPECT_EQ(alpha.level(0).config().size_bytes, 8u * 1024);
  EXPECT_EQ(alpha.level(1).config().size_bytes, 96u * 1024);
  EXPECT_EQ(alpha.level(1).config().associativity, 3);
  EXPECT_EQ(alpha.level(2).config().size_bytes, 2u * 1024 * 1024);

  const CacheHierarchy ultra = ultra60_hierarchy();
  ASSERT_EQ(ultra.num_levels(), 2u);
  EXPECT_EQ(ultra.level(0).config().size_bytes, 16u * 1024);
}

TEST(Hierarchy, RequiresAtLeastOneLevel) {
  EXPECT_THROW(CacheHierarchy("empty", {}), std::invalid_argument);
}

}  // namespace
}  // namespace strassen::trace
