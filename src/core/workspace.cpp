#include "core/workspace.hpp"

#include "common/check.hpp"

namespace strassen::core {

namespace {
std::size_t round_up64(std::size_t n) { return (n + 63) / 64 * 64; }
}  // namespace

std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size) {
  STRASSEN_REQUIRE(tm >= 1 && tk >= 1 && tn >= 1 && depth >= 0 && depth < 31,
                   "bad workspace request: tm=" << tm << " tk=" << tk
                                                << " tn=" << tn
                                                << " depth=" << depth);
  std::size_t total = 0;
  // Level l (from the top, l = 1..depth) allocates temporaries over the
  // quadrants of a block whose leaves are 2^(depth-l) tiles on a side.
  auto quad = [&](int r, int c, std::size_t scale) {
    return round_up64(checked_mul(
        checked_mul(checked_mul(static_cast<std::size_t>(r),
                                static_cast<std::size_t>(c)),
                    scale),
        elem_size));
  };
  for (int l = 1; l <= depth; ++l) {
    const std::size_t scale = std::size_t{1} << (2 * (depth - l));
    total = checked_add(total, quad(tm, tk, scale));
    total = checked_add(total, quad(tk, tn, scale));
    total = checked_add(total, quad(tm, tn, scale));
  }
  return total;
}

}  // namespace strassen::core
