#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "obs/collector.hpp"

namespace strassen::parallel {

namespace {
// Worker index of the current thread within its owning pool; -1 outside any
// pool.  Used only for the per-thread task telemetry.
thread_local int tl_worker_index = -1;

// Runs `task`, timing it into `col` when an observed call is in flight.
// `col` is the collector captured where the task was LAUNCHED -- the worker
// re-installs it so kernel hooks inside the task attribute to the right call.
void run_observed(const std::function<void()>& task, obs::Collector* col) {
  if (col == nullptr) {
    task();
    return;
  }
  obs::ScopedCollector install(col);
  const std::uint64_t t0 = obs::now_nanos();
  task();
  col->note_task(ThreadPool::current_worker_index(), obs::now_nanos() - t0);
}
}  // namespace

int ThreadPool::current_worker_index() noexcept { return tl_worker_index; }

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      tl_worker_index = i;
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  STRASSEN_REQUIRE(task != nullptr, "null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

// Runs a task on the current thread, parking an escaping exception in the
// pool's error slot.  TaskGroup tasks catch their own exceptions before this
// sees them, so the slot only ever holds fire-and-forget escapes.
void ThreadPool::run_task(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
}

std::exception_ptr ThreadPool::take_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(error_, nullptr);
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task(task);
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
  }
}

void TaskGroup::run(std::function<void()> task) {
  // Captured at launch: tasks run under the collector of the call that
  // spawned them, wherever (and on whatever thread) they execute.
  obs::Collector* col = obs::current();
  if (pool_ == nullptr) {
    // Inline execution still defers the exception to wait(), so callers see
    // one surfacing point regardless of whether a pool is attached.
    try {
      run_observed(task, col);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_->submit([this, col, task = std::move(task)] {
    std::exception_ptr err;
    try {
      run_observed(task, col);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (err && !error_) error_ = err;
    --pending_;
    if (pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::join() {
  for (;;) {
    // Help-first: drain queued work on this thread before blocking, so a
    // worker waiting on its children never starves them of a thread.
    if (pool_ != nullptr) {
      while (pool_->try_run_one()) {
      }
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (pending_ == 0) return;
    // Our tasks may be in flight on other workers (queue empty, pending
    // nonzero); bounded wait covers the race with new queue arrivals.
    cv_.wait_for(lock, std::chrono::milliseconds(1),
                 [this] { return pending_ == 0; });
    if (pending_ == 0) return;
  }
}

void TaskGroup::wait() {
  join();
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    err = std::exchange(error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void parallel_for(ThreadPool* pool, std::int64_t begin, std::int64_t end,
                  std::int64_t min_grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  STRASSEN_REQUIRE(min_grain >= 1, "grain must be positive: " << min_grain);
  const std::int64_t count = end - begin;
  if (count <= 0) return;
  const int width = pool ? pool->thread_count() : 1;
  if (width <= 1 || count <= min_grain) {
    fn(begin, end);
    return;
  }
  const std::int64_t chunks =
      std::min<std::int64_t>(width, (count + min_grain - 1) / min_grain);
  const std::int64_t per = (count + chunks - 1) / chunks;
  TaskGroup group(pool);
  for (std::int64_t c = begin; c < end; c += per) {
    const std::int64_t hi = std::min(end, c + per);
    group.run([&fn, c, hi] { fn(c, hi); });
  }
  group.wait();
}

}  // namespace strassen::parallel
