// fig2_padding -- reproduces Figure 2: "Effect of tile size on padding".
//
// The paper plots, against the original matrix size n: the padded size with
// the tile chosen from [16,64] to minimize padding, the padded size with a
// fixed tile of 32, and the chosen tile size.  The expected shape: the
// dynamic-T padded size hugs n (pad bounded by a small constant, worst case
// 15), while the fixed-T line is a staircase of power-of-two cliffs reaching
// nearly 2x just past each cliff (513 -> 1024).
#include <algorithm>
#include <cstdio>

#include "layout/plan.hpp"
#include "support/bench_common.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner("Figure 2",
                "Padding under dynamic tile selection (T in [16,64]) vs a "
                "fixed T = 32");

  Table table({"n", "padded(minimized)", "pad(min)", "padded(T=32)",
               "pad(T=32)", "chosen T", "depth"});
  args.maybe_mirror(table, "fig2_padding");

  int worst_dynamic_pad = 0;       // over the paper's range (n <= 1024)
  int worst_dynamic_pad_all = 0;   // over the whole sweep
  long long worst_fixed_pad = 0;
  const int step = args.quick ? 16 : 1;
  for (int n = 65; n <= 1200; n += step) {
    const layout::DimPlan dyn = layout::choose_dim(n);
    const layout::DimPlan fixed = layout::fixed_tile_dim(n, 32);
    if (n <= 1024) worst_dynamic_pad = std::max(worst_dynamic_pad, dyn.pad());
    worst_dynamic_pad_all = std::max(worst_dynamic_pad_all, dyn.pad());
    worst_fixed_pad = std::max<long long>(worst_fixed_pad, fixed.pad());
    // Print a readable subset of rows; the CSV mirror gets everything.
    if (n % (args.quick ? 64 : 32) == 1 || dyn.pad() >= 14) {
      table.add_row({Table::num(static_cast<long long>(n)),
                     Table::num(static_cast<long long>(dyn.padded)),
                     Table::num(static_cast<long long>(dyn.pad())),
                     Table::num(static_cast<long long>(fixed.padded)),
                     Table::num(static_cast<long long>(fixed.pad())),
                     Table::num(static_cast<long long>(dyn.tile)),
                     Table::num(static_cast<long long>(dyn.depth))});
    }
  }
  table.print();
  std::printf(
      "\nWorst dynamic-selection pad for n <= 1024: %d elements per "
      "dimension (paper: 15).  The bound is\n2^depth - 1, so it steps to %d "
      "once n exceeds 1024 (depth 5).\n",
      worst_dynamic_pad, worst_dynamic_pad_all);
  std::printf(
      "Worst fixed-T=32 pad over the sweep: %lld elements per dimension "
      "(paper: ~n just past a power of two, e.g. 513 -> 1024).\n",
      worst_fixed_pad);
  const layout::DimPlan p513 = layout::choose_dim(513);
  std::printf(
      "Paper worked example n=513: chosen T=%d depth=%d padded=%d (paper: "
      "T=33, depth 4, padded 528).\n",
      p513.tile, p513.depth, p513.padded);
  return 0;
}
