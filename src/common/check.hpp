// check.hpp -- lightweight precondition checking for the strassen library.
//
// Library entry points validate their arguments with STRASSEN_REQUIRE, which
// throws std::invalid_argument on failure (a caller error, per the BLAS
// convention of rejecting bad dimensions).  The message argument is a stream
// expression, so call sites can (and should) include the offending values:
//
//     STRASSEN_REQUIRE(lda >= m, "lda too small: lda=" << lda << " m=" << m);
//
// Internal invariants use STRASSEN_ASSERT, which is compiled out in release
// builds like assert().
#pragma once

#include <cassert>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

namespace strassen {

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "strassen: requirement failed: " << expr << " at " << file << ':'
     << line;
  if (!msg.empty()) os << " (" << msg << ')';
  throw std::invalid_argument(os.str());
}
}  // namespace detail

// Precondition check that is always on (cheap; guards public entry points).
// The second argument is streamed into the exception message, so it may be a
// plain string or a `"x=" << x`-style chain.
#define STRASSEN_REQUIRE(expr, ...)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::std::ostringstream strassen_require_os_;                        \
      strassen_require_os_ << __VA_ARGS__;                              \
      ::strassen::detail::require_failed(#expr, __FILE__, __LINE__,     \
                                         strassen_require_os_.str());   \
    }                                                                   \
  } while (0)

// Internal invariant; compiled out with NDEBUG.
#define STRASSEN_ASSERT(expr) assert(expr)

// Overflow-checked std::size_t arithmetic for buffer sizing.  A product or
// sum that would wrap is a caller error (dimensions too large for this
// address space) and is rejected like any other bad argument, instead of
// silently allocating a wrapped-around size.
inline std::size_t checked_mul(std::size_t a, std::size_t b) {
  std::size_t r = 0;
  STRASSEN_REQUIRE(!__builtin_mul_overflow(a, b, &r),
                   "size overflow: " << a << " * " << b);
  return r;
}

inline std::size_t checked_add(std::size_t a, std::size_t b) {
  std::size_t r = 0;
  STRASSEN_REQUIRE(!__builtin_add_overflow(a, b, &r),
                   "size overflow: " << a << " + " << b);
  return r;
}

}  // namespace strassen
