// view_ops.hpp -- elementwise operations over strided column-major views.
//
// The column-major baselines (DGEFMM, DGEMMW) perform their quadrant
// additions over views with a leading dimension, which costs two nested
// loops per addition -- the overhead that Morton storage removes (paper
// S3.3).  DGEMMW additionally needs the "extent" variants: dynamic overlap
// treats an odd-sized block as the next even size with a phantom zero row or
// column, so a source view may be smaller than the operation region and
// reads beyond its real extent yield zero.
//
// All ops are alias-safe for dst == a or dst == b (elementwise read-then-
// write).
#pragma once

#include <cstddef>

#include "common/memmodel.hpp"

namespace strassen::blas {

// dst(r x c) = a + b (all views fully cover the region).
template <class MM, class T>
void view_add(MM& mm, int r, int c, T* dst, int ldd, const T* a, int lda,
              const T* b, int ldb) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    const T* x = a + static_cast<std::size_t>(j) * lda;
    const T* y = b + static_cast<std::size_t>(j) * ldb;
    for (int i = 0; i < r; ++i)
      mm.store(d + i, static_cast<T>(mm.load(x + i) + mm.load(y + i)));
  }
}

// dst(r x c) = a - b.
template <class MM, class T>
void view_sub(MM& mm, int r, int c, T* dst, int ldd, const T* a, int lda,
              const T* b, int ldb) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    const T* x = a + static_cast<std::size_t>(j) * lda;
    const T* y = b + static_cast<std::size_t>(j) * ldb;
    for (int i = 0; i < r; ++i)
      mm.store(d + i, static_cast<T>(mm.load(x + i) - mm.load(y + i)));
  }
}

// dst(r x c) += a.
template <class MM, class T>
void view_add_inplace(MM& mm, int r, int c, T* dst, int ldd, const T* a,
                      int lda) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    const T* x = a + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i < r; ++i)
      mm.store(d + i, static_cast<T>(mm.load(d + i) + mm.load(x + i)));
  }
}

// dst(r x c) -= a.
template <class MM, class T>
void view_sub_inplace(MM& mm, int r, int c, T* dst, int ldd, const T* a,
                      int lda) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    const T* x = a + static_cast<std::size_t>(j) * lda;
    for (int i = 0; i < r; ++i)
      mm.store(d + i, static_cast<T>(mm.load(d + i) - mm.load(x + i)));
  }
}

// dst(r x c) = src.
template <class MM, class T>
void view_copy(MM& mm, int r, int c, T* dst, int ldd, const T* src, int lds) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    const T* x = src + static_cast<std::size_t>(j) * lds;
    for (int i = 0; i < r; ++i) mm.store(d + i, mm.load(x + i));
  }
}

// ---- extent variants (phantom-zero reads outside [ar x ac] / [br x bc]) ----

namespace detail {
template <class MM, class T>
T ext_load(MM& mm, const T* p, int ld, int i, int j, int rr, int rc) {
  return (i < rr && j < rc) ? mm.load(p + static_cast<std::size_t>(j) * ld + i)
                            : T{0};
}
}  // namespace detail

// dst(r x c) = a - b where a is real [ar x ac] and b is real [br x bc];
// elements outside a source's real extent read as zero.
template <class MM, class T>
void ext_sub(MM& mm, int r, int c, T* dst, int ldd, const T* a, int lda,
             int ar, int ac, const T* b, int ldb, int br, int bc) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    for (int i = 0; i < r; ++i)
      mm.store(d + i,
               static_cast<T>(detail::ext_load(mm, a, lda, i, j, ar, ac) -
                              detail::ext_load(mm, b, ldb, i, j, br, bc)));
  }
}

// dst(r x c) = a + b with extents, as ext_sub.
template <class MM, class T>
void ext_add(MM& mm, int r, int c, T* dst, int ldd, const T* a, int lda,
             int ar, int ac, const T* b, int ldb, int br, int bc) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    for (int i = 0; i < r; ++i)
      mm.store(d + i,
               static_cast<T>(detail::ext_load(mm, a, lda, i, j, ar, ac) +
                              detail::ext_load(mm, b, ldb, i, j, br, bc)));
  }
}

// dst(r x c) += a with extents.
template <class MM, class T>
void ext_add_inplace(MM& mm, int r, int c, T* dst, int ldd, const T* a,
                     int lda, int ar, int ac) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    for (int i = 0; i < r; ++i)
      mm.store(d + i,
               static_cast<T>(mm.load(d + i) +
                              detail::ext_load(mm, a, lda, i, j, ar, ac)));
  }
}

// dst(r x c) -= a with extents.
template <class MM, class T>
void ext_sub_inplace(MM& mm, int r, int c, T* dst, int ldd, const T* a,
                     int lda, int ar, int ac) {
  for (int j = 0; j < c; ++j) {
    T* d = dst + static_cast<std::size_t>(j) * ldd;
    for (int i = 0; i < r; ++i)
      mm.store(d + i,
               static_cast<T>(mm.load(d + i) -
                              detail::ext_load(mm, a, lda, i, j, ar, ac)));
  }
}

}  // namespace strassen::blas
