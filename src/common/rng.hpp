// rng.hpp -- deterministic random data generation for tests and benchmarks.
//
// Two fill modes matter for this library:
//   * uniform reals in [-1, 1] -- the benchmark workload;
//   * small integers           -- Strassen-Winograd performs only +,-,* so a
//     multiply of small-integer matrices is EXACT in double precision, which
//     lets tests assert bit-exact equality against the naive algorithm.
#pragma once

#include <cstdint>
#include <random>
#include <span>

namespace strassen {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5C98u) : engine_(seed) {}

  // Fills with uniform doubles in [lo, hi].
  void fill_uniform(std::span<double> out, double lo = -1.0, double hi = 1.0);
  void fill_uniform(std::span<float> out, float lo = -1.0f, float hi = 1.0f);

  // Fills with uniform integers in [lo, hi], stored exactly in the element
  // type.  With |values| <= 8 and problem sizes <= a few thousand, every
  // intermediate of Strassen-Winograd is an integer below 2^53, so double
  // arithmetic is exact.
  void fill_int(std::span<double> out, int lo = -4, int hi = 4);
  void fill_int(std::span<float> out, int lo = -4, int hi = 4);

  double uniform(double lo, double hi);
  int uniform_int(int lo, int hi);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace strassen
