// tuning -- exploring the planner's tuning knobs (TileOptions).
//
// The paper fixes the tile range to [16, 64] for its machines' caches; this
// example shows how the knobs interact for a problem size of your choice:
// for several tile ranges it prints the chosen plan (tile, depth, padding),
// the arithmetic implied by that plan, and the measured time.
//
// Usage: ./tuning [n]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"
#include "core/modgemm.hpp"
#include "tune/plan_cache.hpp"

using namespace strassen;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 513;
  std::printf("Planner tuning exploration at n = %d\n\n", n);

  struct Config {
    const char* name;
    layout::TileOptions tiles;
  };
  const Config configs[] = {
      {"paper default  [16,64] pref 32", {16, 64, 32, 64}},
      {"small tiles    [8,32]  pref 16", {8, 32, 16, 32}},
      {"large tiles    [32,128] pref 64", {32, 128, 64, 128}},
      {"prefer largest [16,64] pref 64", {16, 64, 64, 64}},
      {"prefer smallest[16,64] pref 16", {16, 64, 16, 64}},
  };

  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(1);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());

  std::printf("%-34s %6s %6s %7s %5s %12s %9s\n", "config", "tile", "depth",
              "padded", "pad", "strassen-flops", "time(ms)");
  for (const Config& cfg : configs) {
    const layout::DimPlan plan = layout::choose_dim(n, cfg.tiles);
    core::ModgemmOptions opt;
    opt.tiles = cfg.tiles;
    const double secs = measure(
        [&] {
          core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(),
                        A.ld(), B.data(), B.ld(), 0.0, C.data(), C.ld(), opt);
        },
        MeasureOptions{2, n < 500 ? 3 : 1, 1});
    std::printf("%-34s %6d %6d %7d %5d %12llu %9.1f\n", cfg.name, plan.tile,
                plan.depth, plan.padded, plan.pad(),
                static_cast<unsigned long long>(
                    winograd_flops(plan.padded, plan.depth)),
                1e3 * secs);
  }
  std::printf(
      "\nReading the table: deeper recursion cuts Strassen flops (x7/8 per "
      "level) but leaves must\nstay cache-sized; the paper's [16,64] range "
      "with preferred tile 32 balances both while\nkeeping padding small "
      "(its central contribution).\n");

  // Let the auto-tuner measure this host's parameters (the paper picked its
  // values empirically per machine; src/tune automates that survey).  Going
  // through autotune_cached means a process that already surveyed -- or a
  // previous process that left a warm STRASSEN_TUNE_CACHE file -- skips the
  // measurement entirely.
  std::printf("\nAuto-tuner survey of this host:\n");
  const tune::CachedAutotune cached = tune::autotune_cached();
  const tune::AutotuneResult& tuned = cached.result;
  std::printf("  source: %s\n", tune::tune_source_name(cached.source));
  if (!tuned.leaf_survey.empty()) {
    std::printf("  leaf kernel: ");
    for (const auto& [tile, mflops] : tuned.leaf_survey)
      std::printf("T=%d:%.0f  ", tile, mflops);
    std::printf("MFLOPS\n");
  }
  std::printf(
      "  chosen: tiles [%d,%d], preferred %d, direct threshold %d\n",
      tuned.tiles.min_tile, tuned.tiles.max_tile, tuned.tiles.preferred_tile,
      tuned.tiles.direct_threshold);
  return 0;
}
