// Pack-fused (no-conversion) execution strategy tests.
//
// Three contracts are under test here:
//
//   * packing routines (blas/pack.hpp) -- a packed panel holds EXACTLY
//     alpha * (a ± b) of the zero-padded logical operands, for every
//     combination of boundary clipping, strides, transposition and scaling,
//     and every element of the destination is written (NaN poison comes out
//     fully defined);
//
//   * bit identity -- for the same plan, the pack-fused strategy produces a
//     result BIT-IDENTICAL to the Morton strategy.  This holds because the
//     two strategies (a) select the same schedule tables at every recursion
//     node, (b) invoke the same leaf kernels on operands holding the same
//     values (a packed panel replicates the Morton tile, and a pass-through
//     view feeds the kernels the same values through a different leading
//     dimension -- kernel arithmetic is ld-independent), and (c) merge into
//     C with per-element expressions identical to the Morton convert-out
//     (blas::scale_view / axpby_view).  The comparison below is a bitwise
//     memcmp, not a tolerance check;
//
//   * strategy plumbing -- the per-call pin outranks the environment, plans
//     that cannot run Strassen never report a strategy, the in-place family
//     maps to the low-memory family under pack-fused (the in-place table
//     would overwrite the CALLER's operands), and a mid-call allocation
//     failure degrades along the ladder with the exact-product-or-untouched-C
//     contract intact.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "blas/gemm.hpp"
#include "blas/pack.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "core/packfused.hpp"
#include "testing/fault_injection.hpp"

namespace strassen {
namespace {

namespace ft = ::strassen::testing;
using analysis::ScheduleFamily;
using analysis::Sign;
using blas::PackSrc;
using core::FallbackReason;
using core::ModgemmOptions;
using core::ModgemmReport;
using layout::ExecStrategy;

// ---------------------------------------------------------------------------
// Packing routines: oracle conformance.
// ---------------------------------------------------------------------------

// Element-wise reference for a packed panel, written independently of the
// packing code paths: read straight from the column-major storage with
// explicit clipping, transposition, combination and scaling.
std::vector<double> panel_oracle(int pr, int pc, const PackSrc<double>& a,
                                 Sign s, const PackSrc<double>* b,
                                 double alpha) {
  std::vector<double> out(static_cast<std::size_t>(pr) * pc);
  for (int j = 0; j < pc; ++j) {
    for (int i = 0; i < pr; ++i) {
      double v = 0.0;
      if (i < a.rows && j < a.cols)
        v = a.trans ? a.ptr[static_cast<std::size_t>(i) * a.ld + j]
                    : a.ptr[static_cast<std::size_t>(j) * a.ld + i];
      if (b != nullptr) {
        double w = 0.0;
        if (i < b->rows && j < b->cols)
          w = b->trans ? b->ptr[static_cast<std::size_t>(i) * b->ld + j]
                       : b->ptr[static_cast<std::size_t>(j) * b->ld + i];
        v = s == Sign::kPlus ? v + w : v - w;
      }
      out[static_cast<std::size_t>(j) * pr + i] = alpha * v;
    }
  }
  return out;
}

// Packs into a NaN-poisoned panel and checks every element against the
// oracle.  Bitwise equality: packing must not introduce any arithmetic
// beyond the single add/sub and optional scale the oracle performs.
void expect_pack(int pr, int pc, const PackSrc<double>& a, double alpha) {
  std::vector<double> dst(static_cast<std::size_t>(pr) * pc,
                          std::numeric_limits<double>::quiet_NaN());
  blas::pack_panel(dst.data(), pr, pc, a, alpha);
  const std::vector<double> ref =
      panel_oracle(pr, pc, a, Sign::kPlus, nullptr, alpha);
  ASSERT_EQ(std::memcmp(dst.data(), ref.data(), dst.size() * sizeof(double)),
            0)
      << pr << "x" << pc << " trans=" << a.trans << " alpha=" << alpha;
}

void expect_pack_sum(int pr, int pc, const PackSrc<double>& a, Sign s,
                     const PackSrc<double>& b, double alpha) {
  std::vector<double> dst(static_cast<std::size_t>(pr) * pc,
                          std::numeric_limits<double>::quiet_NaN());
  blas::pack_panel_sum(dst.data(), pr, pc, a, s, b, alpha);
  const std::vector<double> ref = panel_oracle(pr, pc, a, s, &b, alpha);
  ASSERT_EQ(std::memcmp(dst.data(), ref.data(), dst.size() * sizeof(double)),
            0)
      << pr << "x" << pc << " sign=" << (s == Sign::kPlus ? '+' : '-');
}

// A filled column-major backing store with a deliberately padded stride.
struct Backing {
  Matrix<double> m;
  explicit Backing(int rows, int cols, int ld, std::uint64_t seed)
      : m(rows, cols, ld) {
    Rng rng(seed);
    rng.fill_uniform(m.storage());
  }
  PackSrc<double> view(int rows, int cols, bool trans = false) const {
    return PackSrc<double>{m.data(), m.ld(), trans, rows, cols};
  }
};

TEST(PackPanel, FullTileContiguousAndStrided) {
  Backing tight(16, 16, 16, 1), strided(16, 16, 29, 2);
  expect_pack(16, 16, tight.view(16, 16), 1.0);
  expect_pack(16, 16, strided.view(16, 16), 1.0);
}

TEST(PackPanel, BoundaryTilesZeroFillEveryEdge) {
  Backing b(13, 11, 23, 3);
  // Clipped rows, clipped cols, clipped both, and a fully padded panel from
  // an empty view: the pad region must come out exactly 0.0.
  expect_pack(16, 11, b.view(13, 11), 1.0);
  expect_pack(13, 16, b.view(13, 11), 1.0);
  expect_pack(16, 16, b.view(13, 11), 1.0);
  expect_pack(16, 16, b.view(0, 0), 1.0);
  expect_pack(16, 16, b.view(1, 1), 1.0);
}

TEST(PackPanel, TransposedSources) {
  Backing b(12, 17, 19, 4);
  // A transposed window: logical (i, j) reads storage (j, i).
  expect_pack(17, 12, b.view(17, 12, /*trans=*/true), 1.0);
  expect_pack(20, 16, b.view(17, 12, /*trans=*/true), 1.0);
}

TEST(PackPanel, AlphaScalingOnBothPaths) {
  Backing b(14, 14, 14, 5);
  expect_pack(16, 16, b.view(14, 14), 2.5);                  // generic path
  expect_pack(16, 16, b.view(14, 14, /*trans=*/true), 2.5);  // gather path
  expect_pack(16, 16, b.view(14, 14), -1.0);
}

TEST(PackPanelSum, CombinationsAcrossExtentsAndSigns) {
  Backing x(16, 16, 16, 6), y(9, 12, 31, 7);
  for (Sign s : {Sign::kPlus, Sign::kMinus}) {
    expect_pack_sum(16, 16, x.view(16, 16), s, y.view(9, 12), 1.0);
    expect_pack_sum(16, 16, y.view(9, 12), s, x.view(16, 16), 1.0);
    expect_pack_sum(16, 16, x.view(16, 16), s, y.view(9, 12), 2.0);
    expect_pack_sum(16, 16, x.view(12, 16, /*trans=*/true), s, y.view(9, 12),
                    1.0);
  }
}

TEST(PackSrcView, CoversMatchesInPlaceContract) {
  Backing b(16, 16, 20, 8);
  EXPECT_TRUE(b.view(16, 16).covers(16, 16));
  EXPECT_TRUE(b.view(16, 16).covers(12, 12));
  EXPECT_FALSE(b.view(12, 16).covers(16, 16));     // clipped rows
  EXPECT_FALSE(b.view(16, 16, true).covers(8, 8)); // transposed never in-place
  EXPECT_TRUE(b.view(0, 16).empty());
}

// ---------------------------------------------------------------------------
// Bit identity: pack-fused vs Morton on the public API.
// ---------------------------------------------------------------------------

// Runs the SAME problem under both strategies and compares the full C
// storage with memcmp.  Uniform (non-integer) data makes this a real
// bit-identity check: any reassociation or different rounding between the
// strategies would flip low-order bits.
void expect_bit_identical(Op opa, Op opb, int m, int n, int k, double alpha,
                          double beta, ModgemmOptions opt = {},
                          int extra_ld = 0) {
  Rng rng(static_cast<std::uint64_t>(m) * 9176 + n * 257 + k);
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac, ar + extra_ld);
  Matrix<double> B(br, bc, br + extra_ld);
  Matrix<double> C0(m, n, m + extra_ld);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  rng.fill_uniform(C0.storage());

  Matrix<double> Cm(m, n, m + extra_ld), Cp(m, n, m + extra_ld);
  copy_matrix<double>(C0.view(), Cm.view());
  copy_matrix<double>(C0.view(), Cp.view());

  ModgemmReport rm, rp;
  opt.strategy = ExecStrategy::kMorton;
  core::modgemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(),
                beta, Cm.data(), Cm.ld(), opt, &rm);
  opt.strategy = ExecStrategy::kPackFused;
  core::modgemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(),
                beta, Cp.data(), Cp.ld(), opt, &rp);

  ASSERT_EQ(std::memcmp(Cm.data(), Cp.data(),
                        Cm.storage().size() * sizeof(double)),
            0)
      << m << "x" << n << "x" << k << " op " << op_char(opa) << op_char(opb)
      << " alpha=" << alpha << " beta=" << beta
      << " max|diff|=" << max_abs_diff<double>(Cm.view(), Cp.view());
  // Both executions took a Strassen path (the comparison is vacuous if the
  // planner went direct) and report what ran.
  ASSERT_FALSE(rm.plan.direct);
  EXPECT_STREQ(rm.strategy, "morton");
  EXPECT_STREQ(rp.strategy, "packfused");
  EXPECT_STREQ(rm.schedule, rp.schedule);
}

TEST(PackFusedBitIdentity, PaperShowcaseSize513) {
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 513, 513, 513, 1.0, 0.0);
}

TEST(PackFusedBitIdentity, PowerOfTwoAndPrime) {
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 256, 256, 256, 1.0, 0.0);
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 211, 211, 211, 1.0, 0.0);
}

TEST(PackFusedBitIdentity, AlphaBetaMerges) {
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 200, 200, 200, 2.0, -1.0);
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 200, 200, 200, 0.5, 0.25);
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 200, 200, 200, -1.0, 1.0);
}

TEST(PackFusedBitIdentity, TransposesRectangularsAndStrides) {
  expect_bit_identical(Op::Trans, Op::NoTrans, 150, 130, 170, 1.0, 0.0);
  expect_bit_identical(Op::NoTrans, Op::Trans, 150, 130, 170, 2.0, -1.0);
  expect_bit_identical(Op::Trans, Op::Trans, 129, 142, 155, 1.0, 1.0);
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 180, 160, 140, 1.0, 0.0, {},
                       /*extra_ld=*/7);
}

TEST(PackFusedBitIdentity, LowMemAndInPlaceFamilies) {
  ModgemmOptions opt;
  opt.schedule = ScheduleFamily::kLowMem;
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 256, 256, 256, 1.0, 0.0,
                       opt);
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 200, 200, 200, 2.0, -1.0,
                       opt);
}

TEST(PackFusedBitIdentity, ScalarKernelPin) {
  ModgemmOptions opt;
  opt.kernel = blas::kernels::Kind::kScalar;  // no fused leaf entries
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 256, 256, 256, 1.0, 0.0,
                       opt);
}

TEST(PackFusedBitIdentity, FixedTileDeepRecursion) {
  ModgemmOptions opt;
  opt.fixed_tile = 16;  // 513 -> padded 1024, depth 6
  expect_bit_identical(Op::NoTrans, Op::NoTrans, 513, 513, 513, 1.0, 0.0,
                       opt);
}

// Exactness against the naive oracle on integer data: independent of the
// Morton comparison above, the pack-fused product itself is exact.
void expect_exact_packfused(Op opa, Op opb, int m, int n, int k, double alpha,
                            double beta, ModgemmOptions opt = {}) {
  Rng rng(static_cast<std::uint64_t>(m) * 7919 + n * 131 + k);
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac), B(br, bc), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C.storage(), -3, 3);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(),
                   B.ld(), beta, Ref.data(), Ref.ld());
  opt.strategy = ExecStrategy::kPackFused;
  core::modgemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(),
                beta, C.data(), C.ld(), opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
      << m << "x" << n << "x" << k;
}

TEST(PackFusedExact, CoreShapes) {
  expect_exact_packfused(Op::NoTrans, Op::NoTrans, 513, 513, 513, 1.0, 0.0);
  expect_exact_packfused(Op::Trans, Op::Trans, 150, 130, 170, 2.0, -1.0);
}

TEST(PackFusedExact, HighlyRectangularSplitPath) {
  // Aspect ratios past the split threshold: the driver decomposes into
  // chunks and resolves the strategy per chunk.
  ModgemmReport report;
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;
  const int m = 96, k = 96, n = 768;
  Rng rng(17);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                B.data(), B.ld(), 0.0, C.data(), C.ld(), opt, &report);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(PackFusedExact, BetaZeroDoesNotReadC) {
  const int n = 150;
  Matrix<double> A(n, n), B(n, n), C(n, n);
  Rng rng(4);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  for (auto& x : C.storage()) x = std::numeric_limits<double>::quiet_NaN();
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt);
  for (const auto& x : C.storage()) EXPECT_FALSE(std::isnan(x));
}

TEST(PackFusedFloat, SinglePrecisionBitIdentity) {
  const int n = 150;
  Matrix<float> A(n, n), B(n, n), Cm(n, n), Cp(n, n);
  Rng rng(9);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kMorton;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                B.data(), n, 0.0f, Cm.data(), n, opt);
  opt.strategy = ExecStrategy::kPackFused;
  ModgemmReport report;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0f, A.data(), n,
                B.data(), n, 0.0f, Cp.data(), n, opt, &report);
  EXPECT_EQ(std::memcmp(Cm.data(), Cp.data(),
                        Cm.storage().size() * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// Strategy plumbing and report fields.
// ---------------------------------------------------------------------------

// Clears STRASSEN_STRATEGY for the scope of a heuristic test (the env
// override outranks the planner heuristic under test) and restores the
// previous value on exit so a forced-strategy suite run is not perturbed.
class UnsetStrategyEnv {
 public:
  UnsetStrategyEnv() {
    const char* old = std::getenv("STRASSEN_STRATEGY");
    had_ = old != nullptr;
    if (had_) saved_ = old;
    ::unsetenv("STRASSEN_STRATEGY");
  }
  ~UnsetStrategyEnv() {
    if (had_) ::setenv("STRASSEN_STRATEGY", saved_.c_str(), 1);
  }

 private:
  bool had_ = false;
  std::string saved_;
};

struct StrategyProblem {
  Matrix<double> A, B, C;
  int n;
  explicit StrategyProblem(int n_) : A(n_, n_), B(n_, n_), C(n_, n_), n(n_) {
    Rng rng(21);
    rng.fill_uniform(A.storage());
    rng.fill_uniform(B.storage());
  }
  ModgemmReport run(const ModgemmOptions& opt) {
    ModgemmReport report;
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                  B.data(), n, 0.0, C.data(), n, opt, &report);
    return report;
  }
};

TEST(PackFusedReport, StampsStrategyAndConversionSavings) {
  StrategyProblem p(256);
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;
  // Pinned to <2,2,2>: the savings arithmetic below describes the pack-fused
  // <2,2,2> product, which a forced STRASSEN_ALGO run would route through a
  // family level instead (pin > env).
  opt.algo = analysis::AlgoFamily::k222;
  const ModgemmReport r = p.run(opt);
  ASSERT_FALSE(r.plan.direct);
  EXPECT_STREQ(r.strategy, "packfused");
  EXPECT_EQ(r.plan.strategy, ExecStrategy::kPackFused);
  // No Morton buffers were staged: the savings equal the conversion bytes
  // the plan would have paid, and the conversion phase never ran.
  EXPECT_EQ(r.conversion_saved_bytes,
            core::modgemm_conversion_bytes(r.plan, sizeof(double)));
  EXPECT_GT(r.conversion_saved_bytes, 0u);
  EXPECT_EQ(r.convert_in_seconds, 0.0);
  EXPECT_GT(r.compute_seconds, 0.0);
  EXPECT_EQ(r.products, 1);
}

TEST(PackFusedReport, MortonPinReportsMortonAndNoSavings) {
  StrategyProblem p(256);
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kMorton;
  const ModgemmReport r = p.run(opt);
  ASSERT_FALSE(r.plan.direct);
  EXPECT_STREQ(r.strategy, "morton");
  EXPECT_EQ(r.plan.strategy, ExecStrategy::kMorton);
  EXPECT_EQ(r.conversion_saved_bytes, 0u);
  EXPECT_GT(r.convert_in_seconds, 0.0);
}

TEST(PackFusedReport, WorkspaceAccountingMatchesPublicSizing) {
  StrategyProblem p(200);
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;
  // Pinned to <2,2,2>: same reason as above -- the single-allocation
  // accounting holds for the pack-fused path, not a family level.
  opt.algo = analysis::AlgoFamily::k222;
  opt.tiles.direct_threshold = 32;
  ModgemmReport r;
  ft::FaultInjector counter;  // count gated allocations
  core::modgemm(Op::NoTrans, Op::NoTrans, p.n, p.n, p.n, 1.0, p.A.data(),
                p.n, p.B.data(), p.n, 0.0, p.C.data(), p.n, opt, &r);
  ASSERT_FALSE(r.plan.direct);
  // One gated allocation: the single up-front arena (the sole fault site).
  EXPECT_EQ(counter.allocations(), 1u);
  EXPECT_EQ(r.workspace_allocations, 1);
  const bool c_scratch =
      core::packfused_needs_c_scratch(r.plan, p.n, p.n, /*beta_nonzero=*/false);
  EXPECT_EQ(r.workspace_requested_bytes,
            core::packfused_workspace_bytes(r.plan, sizeof(double), c_scratch));
  EXPECT_GT(r.workspace_peak_bytes, 0u);
  EXPECT_LE(r.workspace_peak_bytes, r.workspace_requested_bytes);
  // The pack-fused request stays within the Morton request for the same
  // plan: the strategy exists to need LESS memory, and the budget ladder
  // prices both strategies with the Morton figure.
  EXPECT_LE(r.workspace_requested_bytes,
            core::modgemm_workspace_bytes(r.plan, sizeof(double)));
}

TEST(PackFusedReport, DirectPlansReportNoStrategy) {
  StrategyProblem p(40);  // below the direct threshold
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;
  const ModgemmReport r = p.run(opt);
  ASSERT_TRUE(r.plan.direct);
  EXPECT_STREQ(r.strategy, "");  // serialized as "none"
  EXPECT_EQ(r.conversion_saved_bytes, 0u);
}

TEST(PackFusedReport, InPlaceFamilyMapsToLowMem) {
  // The in-place schedule table overwrites its A/B operands, which under
  // pack-fused are the CALLER's matrices: the driver substitutes the
  // low-memory family (same temp count) and reports what actually ran.
  const int n = 256;
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  Rng rng(23);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  ModgemmOptions opt;
  opt.schedule = ScheduleFamily::kInPlace;
  opt.strategy = ExecStrategy::kPackFused;
  ModgemmReport r;
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt, &r);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  EXPECT_STREQ(r.strategy, "packfused");
  EXPECT_STREQ(r.schedule, "winograd-lowmem");
}

TEST(PackFusedHeuristic, RectangularOneShotPrefersPackFused) {
  // max(m,k,n) >= 2*min(m,k,n): conversion cost amortizes over too little
  // multiply work, so auto selects pack-fused.
  UnsetStrategyEnv unset;
  const int m = 512, k = 128, n = 128;
  Matrix<double> A(m, k), B(k, n), C(m, n);
  Rng rng(29);
  rng.fill_uniform(A.storage());
  rng.fill_uniform(B.storage());
  ModgemmReport r;
  // Pinned to <2,2,2>: this test is about the Morton-vs-packfused strategy
  // heuristic, and a forced-STRASSEN_ALGO run would route the shape through
  // the family level instead (pin > env > heuristic).
  ModgemmOptions opt;
  opt.algo = analysis::AlgoFamily::k222;
  core::modgemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), m,
                B.data(), k, 0.0, C.data(), m, opt, &r);
  if (r.plan.direct) GTEST_SKIP() << "planner went direct on this host";
  EXPECT_STREQ(r.strategy, "packfused");
}

TEST(PackFusedHeuristic, DeepSquareRecursionPrefersMorton) {
  // Depth 6 on a square problem: the Morton buffers are reused across 7^d
  // leaf products, so auto keeps the Morton strategy.
  UnsetStrategyEnv unset;
  StrategyProblem p(513);
  ModgemmOptions opt;
  opt.fixed_tile = 16;  // padded 1024 = 16 << 6
  const ModgemmReport r = p.run(opt);
  ASSERT_FALSE(r.plan.direct);
  ASSERT_EQ(r.plan.depth, 6);
  EXPECT_STREQ(r.strategy, "morton");
}

// ---------------------------------------------------------------------------
// Fault injection: exact product or untouched C, every allocation site.
// ---------------------------------------------------------------------------

// Mirrors test_ladder_invariants.cpp's sweep: count the gated allocation
// sites of an un-faulted pack-fused run, then fail each in turn.
TEST(PackFusedFaults, SweepEverySiteKeepsTheContract) {
  const int n = 256;
  Rng rng(37);
  Matrix<double> A(n, n), B(n, n), C0(n, n), Ref(n, n), C(n, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C0.storage(), -3, 3);
  copy_matrix<double>(C0.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 2.0, A.data(), n,
                   B.data(), n, -1.0, Ref.data(), n);

  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;

  std::uint64_t sites = 0;
  {
    ft::FaultInjector counter;
    copy_matrix<double>(C0.view(), C.view());
    core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 2.0, A.data(), n,
                  B.data(), n, -1.0, C.data(), n, opt);
    sites = counter.allocations();
    ASSERT_EQ(counter.failures(), 0u);
    ASSERT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
  }
  ASSERT_GE(sites, 1u);

  for (std::uint64_t at = 1; at <= sites; ++at) {
    SCOPED_TRACE(::testing::Message() << "fail_at=" << at << "/" << sites);
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, at);
    copy_matrix<double>(C0.view(), C.view());
    ModgemmReport report;
    try {
      core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 2.0, A.data(), n,
                    B.data(), n, -1.0, C.data(), n, opt, &report);
      EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
      if (inj.failures() > 0) {
        EXPECT_NE(report.fallback_reason, FallbackReason::kNone);
      }
    } catch (const std::bad_alloc&) {
      EXPECT_EQ(max_abs_diff<double>(C.view(), C0.view()), 0.0);
    }
    EXPECT_GE(inj.failures(), 1u);
  }
}

TEST(PackFusedFaults, ArenaRefusalDegradesToDirect) {
  StrategyProblem p(200);
  ModgemmOptions opt;
  opt.strategy = ExecStrategy::kPackFused;
  // Pinned to <2,2,2>: the test injects a fault into the pack-fused path's
  // single gated allocation, but a forced STRASSEN_ALGO run would put the
  // family staging allocation first and the fault would land there instead
  // (degrading via kAlgoFallback, not kAllocDirect).  Pin > env.
  opt.algo = analysis::AlgoFamily::k222;
  opt.tiles.direct_threshold = 32;
  ModgemmReport report;
  {
    // The pack-fused path makes exactly one gated allocation; refusing it
    // lands on the conventional rung (never a Morton retry: the Morton
    // strategy needs strictly more memory).
    ft::FaultInjector inj(ft::FaultMode::kFailOnce, 1);
    core::modgemm(Op::NoTrans, Op::NoTrans, p.n, p.n, p.n, 1.0, p.A.data(),
                  p.n, p.B.data(), p.n, 0.0, p.C.data(), p.n, opt, &report);
  }
  EXPECT_EQ(report.fallback_reason, FallbackReason::kAllocDirect);
  EXPECT_EQ(report.products, 1);
  EXPECT_GT(report.compute_seconds, 0.0);
}

}  // namespace
}  // namespace strassen
