// Tests for the Fortran-BLAS-style C entry points (src/blas/blas_compat).
#include <gtest/gtest.h>

#include "blas/blas_compat.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen {
namespace {

TEST(BlasCompat, DgemmMatchesNaive) {
  const int m = 150, n = 140, k = 130;
  Rng rng(1);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  const double alpha = 1.0, beta = 0.0;
  const int lda = A.ld(), ldb = B.ld(), ldc = C.ld();
  strassen_dgemm_("N", "N", &m, &n, &k, &alpha, A.data(), &lda, B.data(), &ldb,
                  &beta, C.data(), &ldc);
  EXPECT_EQ(blas::last_compat_error(), 0);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(BlasCompat, TransCharactersAreCaseInsensitive) {
  const int m = 100, n = 90, k = 110;
  Rng rng(2);
  Matrix<double> At(k, m), B(k, n), Ref(m, n);
  rng.fill_int(At.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::Trans, Op::NoTrans, m, n, k, 1.0, At.data(), At.ld(),
                   B.data(), B.ld(), 0.0, Ref.data(), Ref.ld());
  const double alpha = 1.0, beta = 0.0;
  const int lda = At.ld(), ldb = B.ld();
  for (const char* t : {"T", "t", "C", "c"}) {
    Matrix<double> C(m, n);
    const int ldc = C.ld();
    strassen_dgemm_(t, "n", &m, &n, &k, &alpha, At.data(), &lda, B.data(),
                    &ldb, &beta, C.data(), &ldc);
    EXPECT_EQ(blas::last_compat_error(), 0);
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0) << t;
  }
}

TEST(BlasCompat, AlphaBetaThroughPointers) {
  const int m = 80, n = 80, k = 80;
  Rng rng(3);
  Matrix<double> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  rng.fill_int(C.storage());
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 2.0, A.data(), A.ld(),
                   B.data(), B.ld(), -1.0, Ref.data(), Ref.ld());
  const double alpha = 2.0, beta = -1.0;
  const int ld = m;
  strassen_dgemm_("N", "N", &m, &n, &k, &alpha, A.data(), &ld, B.data(), &ld,
                  &beta, C.data(), &ld);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(BlasCompat, SgemmSinglePrecision) {
  const int m = 130, n = 120, k = 140;
  Rng rng(4);
  Matrix<float> A(m, k), B(k, n), C(m, n), Ref(m, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, m, n, k, 1.0f, A.data(), A.ld(),
                   B.data(), B.ld(), 0.0f, Ref.data(), Ref.ld());
  const float alpha = 1.0f, beta = 0.0f;
  const int lda = A.ld(), ldb = B.ld(), ldc = C.ld();
  strassen_sgemm_("N", "N", &m, &n, &k, &alpha, A.data(), &lda, B.data(), &ldb,
                  &beta, C.data(), &ldc);
  EXPECT_EQ(blas::last_compat_error(), 0);
  EXPECT_EQ(max_abs_diff<float>(C.view(), Ref.view()), 0.0);
}

TEST(BlasCompat, XerblaReportsFirstBadParameterAndLeavesCUntouched) {
  const int m = 10, n = 10, k = 10;
  Matrix<double> A(m, k), B(k, n), C(m, n);
  for (auto& x : C.storage()) x = 7.0;
  const double alpha = 1.0, beta = 0.0;
  const int ld = m;
  const int bad_ld = 3;

  strassen_dgemm_("X", "N", &m, &n, &k, &alpha, A.data(), &ld, B.data(), &ld,
                  &beta, C.data(), &ld);
  EXPECT_EQ(blas::last_compat_error(), 1);

  strassen_dgemm_("N", "Q", &m, &n, &k, &alpha, A.data(), &ld, B.data(), &ld,
                  &beta, C.data(), &ld);
  EXPECT_EQ(blas::last_compat_error(), 2);

  const int neg = -1;
  strassen_dgemm_("N", "N", &neg, &n, &k, &alpha, A.data(), &ld, B.data(), &ld,
                  &beta, C.data(), &ld);
  EXPECT_EQ(blas::last_compat_error(), 3);

  strassen_dgemm_("N", "N", &m, &n, &k, &alpha, A.data(), &bad_ld, B.data(),
                  &ld, &beta, C.data(), &ld);
  EXPECT_EQ(blas::last_compat_error(), 8);

  strassen_dgemm_("N", "N", &m, &n, &k, &alpha, A.data(), &ld, B.data(),
                  &bad_ld, &beta, C.data(), &ld);
  EXPECT_EQ(blas::last_compat_error(), 10);

  strassen_dgemm_("N", "N", &m, &n, &k, &alpha, A.data(), &ld, B.data(), &ld,
                  &beta, C.data(), &bad_ld);
  EXPECT_EQ(blas::last_compat_error(), 13);

  // No failed call may have touched C.
  for (const auto& x : C.storage()) EXPECT_EQ(x, 7.0);
}

TEST(BlasCompat, DegenerateSizesAreLegal) {
  const int zero = 0, m = 4;
  Matrix<double> A(4, 4), B(4, 4), C(4, 4);
  for (auto& x : C.storage()) x = 1.0;
  const double alpha = 1.0, beta = 2.0;
  const int ld = 4;
  strassen_dgemm_("N", "N", &m, &m, &zero, &alpha, A.data(), &ld, B.data(),
                  &ld, &beta, C.data(), &ld);
  EXPECT_EQ(blas::last_compat_error(), 0);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.0);
}

}  // namespace
}  // namespace strassen
