#include "layout/convert.hpp"

namespace strassen::layout {

void to_morton(const MortonLayout& layout, double* dst, Op op,
               const double* src, int ld_src) {
  RawMem raw;
  to_morton(raw, layout, dst, op, src, ld_src);
}

void from_morton(const MortonLayout& layout, const double* src, double alpha,
                 double* C, int ld_dst, double beta) {
  RawMem raw;
  from_morton(raw, layout, src, alpha, C, ld_dst, beta);
}

}  // namespace strassen::layout
