// table.hpp -- aligned console tables and CSV emission for the bench harness.
//
// Every bench binary prints the same rows/series the paper's figure reports;
// Table keeps that output readable on a terminal and optionally mirrors it to
// a CSV file for plotting.
#pragma once

#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

namespace strassen {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Optionally mirror all rows to a CSV file (best effort; failures to open
  // the file are reported once to stderr and otherwise ignored).
  void mirror_csv(const std::string& path);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with `precision` digits after the point.
  static std::string num(double v, int precision = 3);
  static std::string num(long long v);

  // Prints the aligned table to stdout.
  void print() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::ofstream csv_;
  bool csv_header_written_ = false;
};

}  // namespace strassen
