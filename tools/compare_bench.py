#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the checked-in baseline.

Raw GFLOP/s numbers are machine-dependent, so CI cannot diff them across
runner generations.  What IS stable is each SIMD kernel's speedup over the
scalar kernel measured in the same run on the same machine: a code change
that costs 20% of the AVX2 kernel's throughput shows up as a 20% drop in
that ratio no matter how fast the runner is.  This script therefore
normalizes every (kernel, tile) point by the same-run scalar throughput at
that tile and fails when any point's normalized ratio regresses more than
--tolerance (default 15%) below the baseline's.

The "modgemm-*" rows (whole-algorithm throughput per execution strategy,
where "tile" is the problem size) get the same treatment against their own
in-run baseline: "modgemm-packfused" is normalized by the same-run
"modgemm-morton" at the same size, so a change that slows the pack-fused
path relative to the Morton path fails the gate even though both absolute
numbers move with the runner.

Likewise the "batched-*" rows (bench/batched_throughput.cpp, where "tile" is
the batch's per-product n): "batched-serial" and "batched-pool" are
normalized by the same-run "batched-loop" per-item baseline, gating the
amortization and scaling wins of modgemm_batched rather than raw throughput.

The "algo-*" rows (bench/fig_algo_family.cpp, where "tile" is the problem's
n) normalize each forced <m,k,n> family by the same-run "algo-222" Winograd
row at the same size, gating the family engine's relative standing on both
the deep squares (<2,2,2> must stay ahead) and the Sayuri rectangle.

Points present in the baseline but missing from the current run (e.g. an
AVX2 kernel on a runner without AVX2) are reported and skipped, never
silently ignored.  Stdlib only.

Usage:
  tools/compare_bench.py --baseline bench/baselines/BENCH_kernels.json \
                         --current build/BENCH_kernels.json [--tolerance 0.15]
"""

import argparse
import json
import sys


def load_points(path):
    """Returns {(kernel, tile): gflops} from a BENCH_kernels.json file."""
    with open(path) as f:
        data = json.load(f)
    points = {}
    for row in data.get("results", []):
        points[(row["kernel"], int(row["tile"]))] = float(row["gflops"])
    return points


# Rows that act as the in-run denominator for a family of points; they are
# never gated themselves.
BASE_KERNELS = ("scalar", "modgemm-morton", "batched-loop", "algo-222")


def base_kernel_for(kernel):
    """The same-run row a point is normalized by."""
    if kernel.startswith("modgemm-"):
        return "modgemm-morton"
    if kernel.startswith("batched-"):
        return "batched-loop"
    if kernel.startswith("algo-"):
        return "algo-222"
    return "scalar"


def normalized_ratios(points):
    """Speedup over the point's same-run base kernel at the same tile size."""
    ratios = {}
    for (kernel, tile), gflops in points.items():
        if kernel in BASE_KERNELS:
            continue
        base = points.get((base_kernel_for(kernel), tile))
        if base and base > 0.0:
            ratios[(kernel, tile)] = gflops / base
    return ratios


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="maximum allowed relative regression (default 0.15)")
    args = ap.parse_args()

    base = normalized_ratios(load_points(args.baseline))
    cur = normalized_ratios(load_points(args.current))
    if not base:
        print("compare_bench: baseline has no comparable points", file=sys.stderr)
        return 2

    regressions, skipped = [], []
    for key in sorted(base):
        kernel, tile = key
        if key not in cur:
            skipped.append(key)
            continue
        rel = cur[key] / base[key]
        status = "OK"
        if rel < 1.0 - args.tolerance:
            status = "REGRESSION"
            regressions.append(key)
        print(f"{kernel:>12} tile {tile:>3}: baseline x{base[key]:6.2f} "
              f"current x{cur[key]:6.2f}  ({rel * 100.0:6.1f}%)  {status}")
    for kernel, tile in skipped:
        print(f"{kernel:>12} tile {tile:>3}: missing from current run, skipped")
    for key in sorted(set(cur) - set(base)):
        print(f"{key[0]:>12} tile {key[1]:>3}: new point, no baseline")

    if regressions:
        print(f"compare_bench: {len(regressions)} point(s) regressed more "
              f"than {args.tolerance * 100.0:.0f}% vs baseline",
              file=sys.stderr)
        return 1
    compared = len(base) - len(skipped)
    print(f"compare_bench: {compared} point(s) within tolerance "
          f"({len(skipped)} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
