#include "testing/fault_injection.hpp"

#include <atomic>

#include "common/aligned_buffer.hpp"
#include "common/check.hpp"

namespace strassen::testing {

namespace {

// One active injector at a time, so plain globals suffice for its state.
std::atomic<bool> g_active{false};
FaultMode g_mode = FaultMode::kCountOnly;
std::uint64_t g_fail_at = 0;
std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_failures{0};

bool gate(std::size_t /*bytes*/, void* /*user*/) {
  const std::uint64_t index = g_count.fetch_add(1) + 1;  // 1-based
  const bool fail =
      (g_mode == FaultMode::kFailOnce && index == g_fail_at) ||
      (g_mode == FaultMode::kFailFrom && index >= g_fail_at);
  if (fail) g_failures.fetch_add(1);
  return !fail;
}

}  // namespace

FaultInjector::FaultInjector(FaultMode mode, std::uint64_t fail_at) {
  // Validate before claiming the active slot: a throwing constructor runs no
  // destructor, so it must not leave g_active set.
  STRASSEN_REQUIRE(mode == FaultMode::kCountOnly || fail_at >= 1,
                   "fail_at is 1-based: " << fail_at);
  STRASSEN_REQUIRE(!g_active.exchange(true),
                   "only one FaultInjector may be active at a time");
  g_mode = mode;
  g_fail_at = fail_at;
  g_count.store(0);
  g_failures.store(0);
  AlignedBuffer::set_allocation_gate(&gate, nullptr);
}

FaultInjector::~FaultInjector() {
  AlignedBuffer::set_allocation_gate(nullptr, nullptr);
  g_active.store(false);
}

std::uint64_t FaultInjector::allocations() const { return g_count.load(); }

std::uint64_t FaultInjector::failures() const { return g_failures.load(); }

}  // namespace strassen::testing
