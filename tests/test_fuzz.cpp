// Randomized differential testing: every implementation against the naive
// oracle on randomly drawn shapes, transposes, scalars, and leading
// dimensions.  Deterministic seeds keep failures reproducible; integer data
// keeps comparisons exact.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "baselines/bailey.hpp"
#include "baselines/dgefmm.hpp"
#include "baselines/dgemmw.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "parallel/pmodgemm.hpp"

namespace strassen {
namespace {

struct FuzzCase {
  int m, n, k;
  Op opa, opb;
  double alpha, beta;
  int pad_a, pad_b, pad_c;  // extra leading dimension slack
};

FuzzCase draw(Rng& rng) {
  FuzzCase c;
  // Mix tiny, odd, and paper-scale sizes, with occasional extreme aspect.
  auto dim = [&](int which) {
    const int roll = rng.uniform_int(0, 9);
    if (roll < 2) return rng.uniform_int(1, 20);
    if (roll < 8) return rng.uniform_int(60, 320);
    return rng.uniform_int(600, 1200) / (which + 1);
  };
  c.m = dim(0);
  c.n = dim(1);
  c.k = dim(2);
  c.opa = rng.uniform_int(0, 1) ? Op::Trans : Op::NoTrans;
  c.opb = rng.uniform_int(0, 1) ? Op::Trans : Op::NoTrans;
  const double alphas[] = {1.0, 1.0, 1.0, 2.0, -0.5, 0.0};
  const double betas[] = {0.0, 0.0, 1.0, -1.0, 0.5};
  c.alpha = alphas[rng.uniform_int(0, 5)];
  c.beta = betas[rng.uniform_int(0, 4)];
  c.pad_a = rng.uniform_int(0, 7);
  c.pad_b = rng.uniform_int(0, 7);
  c.pad_c = rng.uniform_int(0, 7);
  return c;
}

class Fuzz : public ::testing::TestWithParam<int> {};

TEST_P(Fuzz, AllImplementationsMatchOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  const FuzzCase c = draw(rng);
  SCOPED_TRACE(::testing::Message()
               << "m=" << c.m << " n=" << c.n << " k=" << c.k << " op"
               << op_char(c.opa) << op_char(c.opb) << " alpha=" << c.alpha
               << " beta=" << c.beta);

  const int ar = c.opa == Op::NoTrans ? c.m : c.k;
  const int ac = c.opa == Op::NoTrans ? c.k : c.m;
  const int br = c.opb == Op::NoTrans ? c.k : c.n;
  const int bc = c.opb == Op::NoTrans ? c.n : c.k;
  Matrix<double> A(ar, ac, ar + c.pad_a), B(br, bc, br + c.pad_b);
  Matrix<double> C0(c.m, c.n, c.m + c.pad_c);
  rng.fill_int(A.storage(), -2, 2);
  rng.fill_int(B.storage(), -2, 2);
  rng.fill_int(C0.storage(), -2, 2);

  Matrix<double> Ref(c.m, c.n, c.m + c.pad_c);
  copy_matrix<double>(C0.view(), Ref.view());
  blas::naive_gemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
                   B.data(), B.ld(), c.beta, Ref.data(), Ref.ld());

  Matrix<double> C(c.m, c.n, c.m + c.pad_c);
  auto check = [&](const char* name, auto&& call) {
    copy_matrix<double>(C0.view(), C.view());
    call();
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0) << name;
  };
  check("modgemm", [&] {
    core::modgemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
                  B.data(), B.ld(), c.beta, C.data(), C.ld());
  });
  check("dgefmm", [&] {
    baselines::dgefmm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
                      B.data(), B.ld(), c.beta, C.data(), C.ld());
  });
  check("dgemmw", [&] {
    baselines::dgemmw(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
                      B.data(), B.ld(), c.beta, C.data(), C.ld());
  });
  check("bailey", [&] {
    baselines::bailey_gemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(),
                           A.ld(), B.data(), B.ld(), c.beta, C.data(),
                           C.ld());
  });
  check("blas::gemm", [&] {
    blas::gemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
               B.data(), B.ld(), c.beta, C.data(), C.ld());
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range(0, 40));

// Degenerate-case fuzzing for the two drivers with full BLAS edge semantics:
// zero dimensions, alpha == 0, and oversized leading dimensions, with A/B
// poisoned by NaN whenever the reference semantics say they must not be read
// (alpha == 0 or k == 0).  The baselines are excluded: only modgemm and
// pmodgemm (and the naive oracle) promise the no-read contract.
class DegenerateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DegenerateFuzz, DriversFollowBlasEdgeSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2741 + 5);
  FuzzCase c;
  auto dim = [&] {
    const int roll = rng.uniform_int(0, 9);
    if (roll < 3) return 0;
    if (roll < 6) return rng.uniform_int(1, 8);
    return rng.uniform_int(30, 160);
  };
  c.m = dim();
  c.n = dim();
  c.k = dim();
  c.opa = rng.uniform_int(0, 1) ? Op::Trans : Op::NoTrans;
  c.opb = rng.uniform_int(0, 1) ? Op::Trans : Op::NoTrans;
  c.alpha = rng.uniform_int(0, 2) == 0 ? 0.0 : 2.0;
  c.beta = rng.uniform_int(0, 1) ? 0.5 : 0.0;
  c.pad_a = rng.uniform_int(0, 2) == 0 ? rng.uniform_int(100, 400) : 0;
  c.pad_b = rng.uniform_int(0, 7);
  c.pad_c = rng.uniform_int(0, 2) == 0 ? rng.uniform_int(100, 400) : 0;
  SCOPED_TRACE(::testing::Message()
               << "m=" << c.m << " n=" << c.n << " k=" << c.k << " op"
               << op_char(c.opa) << op_char(c.opb) << " alpha=" << c.alpha
               << " beta=" << c.beta << " pads=" << c.pad_a << "/" << c.pad_b
               << "/" << c.pad_c);

  const int ar = std::max(1, c.opa == Op::NoTrans ? c.m : c.k);
  const int ac = std::max(1, c.opa == Op::NoTrans ? c.k : c.m);
  const int br = std::max(1, c.opb == Op::NoTrans ? c.k : c.n);
  const int bc = std::max(1, c.opb == Op::NoTrans ? c.n : c.k);
  Matrix<double> A(ar, ac, ar + c.pad_a), B(br, bc, br + c.pad_b);
  Matrix<double> C0(c.m, c.n, std::max(1, c.m + c.pad_c));
  const bool operands_unread = c.alpha == 0.0 || c.k == 0;
  if (operands_unread) {
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    for (auto& x : A.storage()) x = qnan;
    for (auto& x : B.storage()) x = qnan;
  } else {
    rng.fill_int(A.storage(), -2, 2);
    rng.fill_int(B.storage(), -2, 2);
  }
  rng.fill_int(C0.storage(), -2, 2);

  Matrix<double> Ref(c.m, c.n, C0.ld());
  copy_matrix<double>(C0.view(), Ref.view());
  blas::naive_gemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
                   B.data(), B.ld(), c.beta, Ref.data(), Ref.ld());
  for (const auto& x : Ref.storage()) ASSERT_FALSE(std::isnan(x));

  Matrix<double> C(c.m, c.n, C0.ld());
  parallel::ThreadPool pool(2);
  auto check = [&](const char* name, auto&& call) {
    copy_matrix<double>(C0.view(), C.view());
    call();
    for (const auto& x : C.storage()) EXPECT_FALSE(std::isnan(x)) << name;
    EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0) << name;
  };
  check("modgemm", [&] {
    core::modgemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(), A.ld(),
                  B.data(), B.ld(), c.beta, C.data(), C.ld());
  });
  check("pmodgemm", [&] {
    parallel::pmodgemm(&pool, c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(),
                       A.ld(), B.data(), B.ld(), c.beta, C.data(), C.ld());
  });
  check("try_modgemm", [&] {
    EXPECT_EQ(core::try_modgemm(c.opa, c.opb, c.m, c.n, c.k, c.alpha, A.data(),
                                A.ld(), B.data(), B.ld(), c.beta, C.data(),
                                C.ld()),
              Status::kOk);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, DegenerateFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace strassen
