// Tests for the Bailey two-level static-unfolding baseline
// (src/baselines/bailey).
#include <gtest/gtest.h>

#include "baselines/bailey.hpp"
#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace strassen::baselines {
namespace {

void expect_exact(Op opa, Op opb, int m, int n, int k, double alpha,
                  double beta) {
  Rng rng(static_cast<std::uint64_t>(m) * 61 + n * 23 + k);
  const int ar = opa == Op::NoTrans ? m : k;
  const int ac = opa == Op::NoTrans ? k : m;
  const int br = opb == Op::NoTrans ? k : n;
  const int bc = opb == Op::NoTrans ? n : k;
  Matrix<double> A(ar, ac), B(br, bc), C(m, n), Ref(m, n);
  rng.fill_int(A.storage(), -3, 3);
  rng.fill_int(B.storage(), -3, 3);
  rng.fill_int(C.storage(), -3, 3);
  copy_matrix<double>(C.view(), Ref.view());
  blas::naive_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(),
                   B.ld(), beta, Ref.data(), Ref.ld());
  bailey_gemm(opa, opb, m, n, k, alpha, A.data(), A.ld(), B.data(), B.ld(),
              beta, C.data(), C.ld());
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0)
      << m << "x" << n << "x" << k;
}

class BaileySizes : public ::testing::TestWithParam<int> {};

TEST_P(BaileySizes, SquareSweepExact) {
  expect_exact(Op::NoTrans, Op::NoTrans, GetParam(), GetParam(), GetParam(),
               1.0, 0.0);
}

// Sizes covering all residues mod 4 (the static pad) plus the tiny direct
// path.
INSTANTIATE_TEST_SUITE_P(Sizes, BaileySizes,
                         ::testing::Values(8, 15, 64, 65, 66, 67, 100, 128,
                                           129, 200, 255, 256, 257));

TEST(Bailey, RectangularAndOps) {
  expect_exact(Op::NoTrans, Op::NoTrans, 130, 94, 111, 1.0, 0.0);
  expect_exact(Op::Trans, Op::NoTrans, 120, 100, 90, 1.0, 0.0);
  expect_exact(Op::NoTrans, Op::Trans, 97, 133, 65, 2.0, -1.0);
  expect_exact(Op::Trans, Op::Trans, 101, 102, 103, -0.5, 0.5);
}

TEST(Bailey, DegenerateDimensions) {
  Matrix<double> A(8, 8), B(8, 8), C(8, 8);
  for (auto& x : C.storage()) x = 4.0;
  bailey_gemm(Op::NoTrans, Op::NoTrans, 8, 8, 0, 1.0, A.data(), 8, B.data(),
              8, 0.5, C.data(), 8);
  for (const auto& x : C.storage()) EXPECT_EQ(x, 2.0);
}

TEST(Bailey, WorkspaceIsTwoLevels) {
  // 128^3: level temps 64^2 + 32^2 triples.
  const std::size_t l1 = ((64 * 64 * 8 + 63) / 64) * 64u;
  const std::size_t l2 = ((32 * 32 * 8 + 63) / 64) * 64u;
  EXPECT_EQ(bailey_workspace_bytes(128, 128, 128, 8), 3 * l1 + 3 * l2);
  EXPECT_THROW(bailey_workspace_bytes(126, 128, 128, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace strassen::baselines
