// Tests for the empirical parameter survey (src/tune/autotune).  Timing
// outcomes are machine-dependent, so assertions target structure, bounds,
// and that the tuned configuration remains CORRECT -- not specific winners.
#include <gtest/gtest.h>

#include <algorithm>

#include "blas/gemm.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modgemm.hpp"
#include "tune/autotune.hpp"

namespace strassen::tune {
namespace {

AutotuneOptions cheap() {
  AutotuneOptions opt;
  opt.candidate_tiles = {16, 32, 64};
  opt.crossover_sizes = {64, 128};
  opt.strategy_sizes = {96, 160};
  opt.repetitions = 1;
  return opt;
}

TEST(Autotune, ProducesValidPlannerOptions) {
  const AutotuneResult r = autotune(cheap());
  EXPECT_GE(r.tiles.min_tile, 1);
  EXPECT_GE(r.tiles.max_tile, 2 * r.tiles.min_tile);
  EXPECT_GE(r.tiles.preferred_tile, r.tiles.min_tile);
  EXPECT_LE(r.tiles.preferred_tile, r.tiles.max_tile);
  EXPECT_GE(r.tiles.direct_threshold, r.tiles.max_tile);
  EXPECT_LE(r.tiles.direct_threshold, 512);
}

TEST(Autotune, SurveyAndProbeArePopulated) {
  const AutotuneOptions opt = cheap();
  const AutotuneResult r = autotune(opt);
  ASSERT_EQ(r.leaf_survey.size(), opt.candidate_tiles.size());
  for (const auto& [tile, rate] : r.leaf_survey) {
    EXPECT_GT(rate, 0.0) << "tile " << tile;
  }
  ASSERT_EQ(r.crossover_probe.size(), opt.crossover_sizes.size());
  for (const auto& p : r.crossover_probe) {
    EXPECT_GT(p.conventional_seconds, 0.0);
    EXPECT_GT(p.strassen_seconds, 0.0);
  }
  ASSERT_EQ(r.strategy_probe.size(), opt.strategy_sizes.size());
  int deepest_win = 0;
  for (const auto& p : r.strategy_probe) {
    EXPECT_GT(p.morton_seconds, 0.0);
    EXPECT_GT(p.packfused_seconds, 0.0);
    EXPECT_GE(p.depth, 1) << "probe " << p.n << " did not recurse";
    if (p.packfused_seconds < p.morton_seconds)
      deepest_win = std::max(deepest_win, p.depth);
  }
  // The tuned cutoff is exactly the deepest probe pack-fused won.
  EXPECT_EQ(r.tiles.packfused_max_depth, deepest_win);
}

TEST(Autotune, StrategySurveyCanBeDisabled) {
  AutotuneOptions opt = cheap();
  opt.survey_strategy = false;
  const AutotuneResult r = autotune(opt);
  EXPECT_TRUE(r.strategy_probe.empty());
  // The planner default is preserved untouched.
  EXPECT_EQ(r.tiles.packfused_max_depth,
            layout::TileOptions{}.packfused_max_depth);
}

TEST(Autotune, TunedOptionsStayExact) {
  const AutotuneResult r = autotune(cheap());
  core::ModgemmOptions opt;
  opt.tiles = r.tiles;
  const int n = 300;
  Rng rng(1);
  Matrix<double> A(n, n), B(n, n), C(n, n), Ref(n, n);
  rng.fill_int(A.storage());
  rng.fill_int(B.storage());
  blas::naive_gemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n,
                   B.data(), n, 0.0, Ref.data(), n);
  core::modgemm(Op::NoTrans, Op::NoTrans, n, n, n, 1.0, A.data(), n, B.data(),
                n, 0.0, C.data(), n, opt);
  EXPECT_EQ(max_abs_diff<double>(C.view(), Ref.view()), 0.0);
}

TEST(Autotune, RejectsBadOptions) {
  AutotuneOptions opt;
  opt.candidate_tiles.clear();
  EXPECT_THROW(autotune(opt), std::invalid_argument);
  AutotuneOptions opt2;
  opt2.tolerance = 0.0;
  EXPECT_THROW(autotune(opt2), std::invalid_argument);
}

}  // namespace
}  // namespace strassen::tune
