// cache_explorer -- interactive view of the library's cache simulator (the
// ATOM-substitute used for the paper's Fig. 9).
//
// Runs a chosen implementation and problem size through a chosen cache
// geometry and prints per-level statistics, e.g.:
//
//   ./cache_explorer MODGEMM 513 fig9
//   ./cache_explorer DGEFMM 512 alpha
//   ./cache_explorer DGEMM 300 ultra
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

using namespace strassen;

namespace {

void usage(const char* prog) {
  std::printf(
      "usage: %s [MODGEMM|DGEFMM|DGEMMW|DGEMM] [n] [fig9|fig9c|alpha|ultra]\n",
      prog);
  std::printf("  fig9  = 16KB direct-mapped, 32B blocks (paper Fig. 9)\n");
  std::printf("  fig9c = same, with compulsory/capacity/conflict "
              "classification (CProf stand-in)\n");
  std::printf("  alpha = DEC Alpha Miata: 8KB DM L1, 96KB 3-way L2, 2MB L3\n");
  std::printf("  ultra = Sun Ultra 60: 16KB DM L1, 2MB L2\n");
}

}  // namespace

int main(int argc, char** argv) {
  trace::Impl impl = trace::Impl::Modgemm;
  int n = 513;
  const char* geom = "fig9";
  if (argc > 1) {
    if (std::strcmp(argv[1], "MODGEMM") == 0) impl = trace::Impl::Modgemm;
    else if (std::strcmp(argv[1], "DGEFMM") == 0) impl = trace::Impl::Dgefmm;
    else if (std::strcmp(argv[1], "DGEMMW") == 0) impl = trace::Impl::Dgemmw;
    else if (std::strcmp(argv[1], "DGEMM") == 0) impl = trace::Impl::Conventional;
    else { usage(argv[0]); return 1; }
  }
  if (argc > 2) n = std::atoi(argv[2]);
  if (argc > 3) geom = argv[3];
  if (n < 1 || n > 2048) {
    std::printf("n out of range (1..2048)\n");
    return 1;
  }

  trace::CacheHierarchy h =
      std::strcmp(geom, "alpha") == 0   ? trace::alpha_miata_hierarchy()
      : std::strcmp(geom, "ultra") == 0 ? trace::ultra60_hierarchy()
      : std::strcmp(geom, "fig9c") == 0 ? trace::paper_fig9_cache_classified()
                                        : trace::paper_fig9_cache();

  std::printf("simulating %s, C = A.B at n = %d, hierarchy '%s'...\n\n",
              trace::impl_name(impl), n, h.name().c_str());
  const trace::TraceResult r = trace::trace_multiply(impl, n, n, n, std::move(h));

  std::printf("%-6s %14s %14s %10s\n", "level", "accesses", "misses", "miss%");
  for (const auto& level : r.levels) {
    std::printf("%-6s %14llu %14llu %9.3f%%\n", level.name.c_str(),
                static_cast<unsigned long long>(level.accesses),
                static_cast<unsigned long long>(level.misses),
                100.0 * level.miss_ratio);
    if (level.has_breakdown) {
      std::printf(
          "       three-C's: %llu compulsory, %llu capacity, %llu conflict\n",
          static_cast<unsigned long long>(level.breakdown.compulsory),
          static_cast<unsigned long long>(level.breakdown.capacity),
          static_cast<unsigned long long>(level.breakdown.conflict));
    }
  }
  std::printf("%-6s %14llu\n", "mem",
              static_cast<unsigned long long>(r.memory_accesses));
  std::printf("\nlatency-weighted memory cost: %.3e model cycles\n",
              r.estimated_cycles);
  std::printf("cost per data access:         %.2f cycles\n",
              r.estimated_cycles / static_cast<double>(r.total_accesses));
  return 0;
}
