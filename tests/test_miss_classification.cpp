// Unit tests for three-C's miss classification (src/trace/cache) -- the
// library's stand-in for the paper's CProf analysis (S4.2).
#include <gtest/gtest.h>

#include "trace/cache.hpp"
#include "trace/presets.hpp"
#include "trace/traced_run.hpp"

namespace strassen::trace {
namespace {

CacheConfig classified_dm(std::size_t size, std::size_t block) {
  CacheConfig cfg{"L1", size, block, 1, 1.0};
  cfg.classify = true;
  return cfg;
}

TEST(MissClassification, ColdStreamIsAllCompulsory) {
  Cache c(classified_dm(1024, 32));
  for (std::uintptr_t a = 0; a < 1024; a += 32) c.access(a, false);
  EXPECT_EQ(c.breakdown().compulsory, 32u);
  EXPECT_EQ(c.breakdown().capacity, 0u);
  EXPECT_EQ(c.breakdown().conflict, 0u);
}

TEST(MissClassification, PingPongPairIsConflict) {
  // Two blocks one cache-size apart: a fully-associative cache of the same
  // capacity would keep both, so the repeat misses are pure conflict.
  Cache c(classified_dm(1024, 32));
  for (int i = 0; i < 10; ++i) {
    c.access(0x0000, false);
    c.access(0x0400, false);
  }
  EXPECT_EQ(c.breakdown().compulsory, 2u);
  EXPECT_EQ(c.breakdown().capacity, 0u);
  EXPECT_EQ(c.breakdown().conflict, 18u);
  EXPECT_EQ(c.breakdown().total(), c.misses());
}

TEST(MissClassification, CyclicSweepBeyondSizeIsCapacity) {
  // Cyclic sweep of 2x the cache size: after the cold pass, LRU misses every
  // access even when fully associative -> capacity misses.
  Cache c(classified_dm(1024, 32));
  for (int pass = 0; pass < 3; ++pass)
    for (std::uintptr_t a = 0; a < 2048; a += 32) c.access(a, false);
  EXPECT_EQ(c.breakdown().compulsory, 64u);
  EXPECT_EQ(c.breakdown().conflict, 0u);  // DM mapping is irrelevant here
  EXPECT_EQ(c.breakdown().capacity, c.misses() - 64u);
  EXPECT_GT(c.breakdown().capacity, 0u);
}

TEST(MissClassification, BreakdownAlwaysSumsToMisses) {
  Cache c(classified_dm(512, 32));
  // A messy deterministic pattern mixing all three kinds.
  std::uintptr_t a = 0;
  for (int i = 0; i < 5000; ++i) {
    a = (a * 2654435761u + 97) % 8192;
    c.access(a & ~31u, i % 3 == 0);
  }
  EXPECT_EQ(c.breakdown().total(), c.misses());
}

TEST(MissClassification, AssociativityConvertsConflictToHits) {
  // The ping-pong pair in a 2-way cache: no conflict misses at all.
  CacheConfig cfg = classified_dm(1024, 32);
  cfg.associativity = 2;
  Cache c(cfg);
  for (int i = 0; i < 10; ++i) {
    c.access(0x0000, false);
    c.access(0x0400, false);
  }
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_EQ(c.breakdown().conflict, 0u);
}

TEST(MissClassification, FlushResetsHistory) {
  Cache c(classified_dm(1024, 32));
  c.access(0x0, false);
  c.flush();
  c.access(0x0, false);
  // After a flush the first touch counts as compulsory again.
  EXPECT_EQ(c.breakdown().compulsory, 1u);
}

TEST(MissClassification, DisabledByDefaultCostsNothing) {
  Cache c(CacheConfig{"L1", 1024, 32, 1, 1.0});
  for (int i = 0; i < 100; ++i) c.access(0x0000 + 32 * (i % 64), false);
  EXPECT_EQ(c.breakdown().total(), 0u);  // never tallied
  EXPECT_GT(c.misses(), 0u);
}

TEST(MissClassification, ClassifiedPresetFlowsThroughTraceRunner) {
  const TraceResult r = trace_multiply(Impl::Modgemm, 96, 96, 96,
                                       paper_fig9_cache_classified());
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_TRUE(r.levels[0].has_breakdown);
  EXPECT_EQ(r.levels[0].breakdown.total(), r.levels[0].misses);
  EXPECT_GT(r.levels[0].breakdown.compulsory, 0u);
}

TEST(MissClassification, PaperConflictStoryAt512Vs513) {
  // The heart of the paper's S4.2: at n=512 (padded 512, T=32) MODGEMM's
  // Morton quadrants align at multiples of the 16KB cache and conflict; at
  // n=513 (padded 528, T=33) the alignment -- and with it most of the
  // conflict misses -- disappears.
  const TraceResult at512 = trace_multiply(Impl::Modgemm, 512, 512, 512,
                                           paper_fig9_cache_classified());
  const TraceResult at513 = trace_multiply(Impl::Modgemm, 513, 513, 513,
                                           paper_fig9_cache_classified());
  const double conflict512 =
      static_cast<double>(at512.levels[0].breakdown.conflict) /
      static_cast<double>(at512.total_accesses);
  const double conflict513 =
      static_cast<double>(at513.levels[0].breakdown.conflict) /
      static_cast<double>(at513.total_accesses);
  EXPECT_GT(conflict512, 2.0 * conflict513);
  EXPECT_GT(at512.l1_miss_ratio, at513.l1_miss_ratio);
}

}  // namespace
}  // namespace strassen::trace
