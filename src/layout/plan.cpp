#include "layout/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "common/check.hpp"

namespace strassen::layout {

namespace {

// ceil(n / 2^d)
int ceil_shift(int n, int d) {
  const long long span = 1LL << d;
  return static_cast<int>((n + span - 1) / span);
}

void validate(const TileOptions& opt) {
  STRASSEN_REQUIRE(opt.min_tile >= 1 && opt.max_tile >= opt.min_tile,
                   "bad tile range");
  STRASSEN_REQUIRE(opt.max_tile >= 2 * opt.min_tile,
                   "tile range must span at least a factor of two so every "
                   "depth window overlaps the next");
  STRASSEN_REQUIRE(opt.direct_threshold >= opt.min_tile,
                   "direct threshold below the minimum tile");
}

// true if `a` is a better (tile, pad) choice than `b` under the paper's
// objective: least padding, then tile nearest preferred, then larger tile.
// With conflict avoidance enabled, cache-aligned tiles lose to any
// non-aligned alternative regardless of padding (S4.2 future work).
bool better(const DimPlan& a, const DimPlan& b, const TileOptions& opt) {
  const int pa = opt.tile_penalty(a.tile);
  const int pb = opt.tile_penalty(b.tile);
  if (pa != pb) return pa < pb;
  if (a.pad() != b.pad()) return a.pad() < b.pad();
  const int da = std::abs(a.tile - opt.preferred_tile);
  const int db = std::abs(b.tile - opt.preferred_tile);
  if (da != db) return da < db;
  return a.tile > b.tile;
}

}  // namespace

DimPlan choose_dim_at_depth(int n, int depth, const TileOptions& opt) {
  validate(opt);
  STRASSEN_REQUIRE(n >= 1 && depth >= 0, "bad dimension or depth");
  DimPlan plan;
  plan.n = n;
  plan.depth = depth;
  if (depth == 0) {
    // No recursion: the "tile" is the matrix itself.
    if (n > opt.max_tile) return plan;  // infeasible (tile == 0)
    plan.tile = n;
    plan.padded = n;
    return plan;
  }
  int t = ceil_shift(n, depth);
  if (t < opt.min_tile || t > opt.max_tile) return plan;  // infeasible
  if (opt.tile_penalty(t) > 0) {
    // Conflict/capacity-aware mode: pad a little further to the nearest tile
    // with a smaller penalty (S3.3's fit-the-cache condition, S4.2's
    // conflict-avoidance future work).  Bumping only grows the tile, so an
    // OVERSIZED tile usually keeps its penalty and the remedy is a deeper
    // depth -- which the cross-depth comparison handles.
    int best = t;
    for (int bumped = t + 1; bumped <= opt.max_tile; ++bumped) {
      if (opt.tile_penalty(bumped) < opt.tile_penalty(best)) best = bumped;
      if (opt.tile_penalty(best) == 0) break;
    }
    t = best;
  }
  plan.tile = t;
  plan.padded = t << depth;
  return plan;
}

DimPlan choose_dim(int n, const TileOptions& opt) {
  validate(opt);
  STRASSEN_REQUIRE(n >= 1, "dimension must be positive");
  if (n <= opt.direct_threshold) {
    DimPlan plan;
    plan.n = n;
    plan.tile = n;
    plan.depth = 0;
    plan.padded = n;
    return plan;
  }
  DimPlan best;
  best.n = n;
  // Feasible depths satisfy min_tile <= ceil(n/2^d) <= max_tile; beyond the
  // last one the natural tile drops below min_tile and padding only grows.
  for (int d = 1; d < 31; ++d) {
    const DimPlan cand = choose_dim_at_depth(n, d, opt);
    if (cand.tile == 0) {
      if (ceil_shift(n, d) < opt.min_tile) break;  // past the feasible window
      continue;                                    // not yet in the window
    }
    if (best.tile == 0 || better(cand, best, opt)) best = cand;
  }
  if (best.tile == 0) {
    // Window gap: direct_threshold < n < 2*min_tile leaves no feasible depth
    // >= 1 (ceil(n/2) already undershoots min_tile).  The gap implies
    // n < 2*min_tile <= max_tile (validate() enforces the latter), so the
    // depth-0 plan always fits -- treat the dimension as a single tile.
    STRASSEN_ASSERT(n <= opt.max_tile);
    best.tile = n;
    best.depth = 0;
    best.padded = n;
  }
  return best;
}

DimPlan fixed_tile_dim(int n, int tile) {
  STRASSEN_REQUIRE(n >= 1 && tile >= 1, "bad dimension or tile");
  DimPlan plan;
  plan.n = n;
  plan.tile = tile;
  plan.depth = 0;
  long long padded = tile;
  while (padded < n) {
    padded *= 2;
    ++plan.depth;
  }
  STRASSEN_REQUIRE(padded <= INT32_MAX, "fixed-tile padded size overflows int: n="
                                            << n << " tile=" << tile
                                            << " padded=" << padded);
  plan.padded = static_cast<int>(padded);
  return plan;
}

std::vector<int> feasible_depths(int n, const TileOptions& opt) {
  validate(opt);
  std::vector<int> out;
  for (int d = 0; d < 31; ++d) {
    if (choose_dim_at_depth(n, d, opt).tile != 0) out.push_back(d);
    if (d > 0 && ceil_shift(n, d) < opt.min_tile) break;
  }
  return out;
}

long long GemmPlan::padded_elems() const {
  const long long pm = m.padded, pk = k.padded, pn = n.padded;
  return pm * pk + pk * pn + pm * pn;
}

GemmPlan plan_gemm(int m, int k, int n, const TileOptions& opt) {
  validate(opt);
  STRASSEN_REQUIRE(m >= 1 && k >= 1 && n >= 1, "bad gemm dimensions");
  GemmPlan plan;
  const int min_dim = std::min(m, std::min(k, n));
  if (min_dim <= opt.direct_threshold) {
    // A thin product gains nothing from Strassen; run conventional gemm.
    plan.direct = true;
    plan.m = DimPlan{m, m, 0, m};
    plan.k = DimPlan{k, k, 0, k};
    plan.n = DimPlan{n, n, 0, n};
    return plan;
  }
  // Intersect the feasible depth windows of the three dimensions.
  GemmPlan best;
  best.feasible = false;
  for (int d = 1; d < 31; ++d) {
    const DimPlan dm = choose_dim_at_depth(m, d, opt);
    const DimPlan dk = choose_dim_at_depth(k, d, opt);
    const DimPlan dn = choose_dim_at_depth(n, d, opt);
    if (dm.tile == 0 || dk.tile == 0 || dn.tile == 0) {
      if (ceil_shift(min_dim, d) < opt.min_tile) break;  // windows exhausted
      continue;
    }
    GemmPlan cand;
    cand.depth = d;
    cand.m = dm;
    cand.k = dk;
    cand.n = dn;
    auto conflicts = [&](const GemmPlan& p) {
      return opt.tile_penalty(p.m.tile) + opt.tile_penalty(p.k.tile) +
             opt.tile_penalty(p.n.tile);
    };
    auto pref_dist = [&](const GemmPlan& p) {
      return std::abs(p.m.tile - opt.preferred_tile) +
             std::abs(p.k.tile - opt.preferred_tile) +
             std::abs(p.n.tile - opt.preferred_tile);
    };
    if (!best.feasible || conflicts(cand) < conflicts(best) ||
        (conflicts(cand) == conflicts(best) &&
         (cand.padded_elems() < best.padded_elems() ||
          (cand.padded_elems() == best.padded_elems() &&
           pref_dist(cand) < pref_dist(best))))) {
      best = cand;
      best.feasible = true;
    }
  }
  if (!best.feasible) {
    if (m <= opt.max_tile && k <= opt.max_tile && n <= opt.max_tile) {
      // No common depth, yet every dimension already fits one tile.  For a
      // dim <= max_tile the feasible window is either empty or starts at
      // d=1, so "infeasible" here means some window is empty (the
      // direct_threshold < dim < 2*min_tile gap) -- splitting cannot
      // manufacture a feasible sub-plan from chunks no larger than these,
      // so the only sound execution is the conventional kernel.
      best.direct = true;
      best.m = DimPlan{m, m, 0, m};
      best.k = DimPlan{k, k, 0, k};
      best.n = DimPlan{n, n, 0, n};
      return best;
    }
    // Highly rectangular: no common depth.  Caller must split (paper S3.5).
    best.m = choose_dim(m, opt);
    best.k = choose_dim(k, opt);
    best.n = choose_dim(n, opt);
    return best;
  }
  return best;
}

ExecStrategy choose_exec_strategy(const GemmPlan& plan, int m, int k, int n,
                                  const TileOptions& opt) {
  if (plan.direct || !plan.feasible || plan.depth < 1)
    return ExecStrategy::kMorton;
  const int mx = std::max({m, k, n});
  const int mn = std::min({m, k, n});
  // Rectangular shape classes reach here per split chunk; the 2x aspect test
  // also catches the chunks plan_split leaves moderately oblong.
  if (mn > 0 && mx >= 2 * mn) return ExecStrategy::kPackFused;
  if (plan.depth <= opt.packfused_max_depth) return ExecStrategy::kPackFused;
  return ExecStrategy::kMorton;
}

double modeled_flops(int m, int k, int n, const TileOptions& opt) {
  const double conventional = 2.0 * m * k * n;
  const GemmPlan plan = plan_gemm(m, k, n, opt);
  if (plan.direct || !plan.feasible) return conventional;
  double cost = 2.0 * plan.m.padded * plan.k.padded * plan.n.padded;
  for (int d = 0; d < plan.depth; ++d) cost *= 7.0 / 8.0;
  // Padding can price a "Strassen" plan above the conventional loop it
  // replaces; the executed ladder would still run it, but as a COST MODEL
  // for comparing families the conventional floor keeps one bad <2,2,2>
  // plan from flattering every alternative.
  return std::min(cost, conventional);
}

analysis::AlgoFamily choose_algo(int m, int k, int n,
                                 const TileOptions& opt) {
  using analysis::AlgoFamily;
  // Thin problems run direct (or nearly so); one family level on top would
  // only add staging traffic.
  if (std::min({m, k, n}) <= 2 * opt.direct_threshold) return AlgoFamily::k222;
  const double base = modeled_flops(m, k, n, opt);
  // Staging traffic is memory-bound; weigh each element touched as a few
  // flop-equivalents so near-ties resolve toward the no-staging baseline.
  constexpr double kStagingWeight = 4.0;
  constexpr double kClearWin = 0.95;
  AlgoFamily best = AlgoFamily::k222;
  double best_cost = base;
  const AlgoFamily candidates[] = {AlgoFamily::k323, AlgoFamily::k234,
                                   AlgoFamily::k333};
  for (AlgoFamily f : candidates) {
    const analysis::FamilyTable& t = analysis::family_table(f);
    const int pm = (m + t.bm - 1) / t.bm;
    const int pk = (k + t.bk - 1) / t.bk;
    const int pn = (n + t.bn - 1) / t.bn;
    // Sub-products below the direct threshold would all run conventional;
    // the family then multiplies staging overhead by `rank` for nothing.
    if (std::min({pm, pk, pn}) <= opt.direct_threshold) continue;
    const double sub = modeled_flops(pm, pk, pn, opt);
    const double staging =
        kStagingWeight * t.rank *
        (static_cast<double>(pm) * pk + static_cast<double>(pk) * pn +
         2.0 * static_cast<double>(pm) * pn);
    const double cost = t.rank * sub + staging;
    // A family must clear the margin against the <2,2,2> baseline AND beat
    // any family already selected.
    if (cost < base * kClearWin && cost < best_cost) {
      best = f;
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace strassen::layout
