#include "core/syrk.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace strassen::core {

namespace {

// Unblocked base case: dot products over the lower triangle only.
void syrk_base(int n, int k, double alpha, const double* A, int lda,
               double beta, double* C, int ldc) {
  for (int j = 0; j < n; ++j) {
    for (int i = j; i < n; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p)
        acc += A[static_cast<std::size_t>(p) * lda + i] *
               A[static_cast<std::size_t>(p) * lda + j];
      double* c = C + static_cast<std::size_t>(j) * ldc + i;
      *c = beta == 0.0 ? alpha * acc : alpha * acc + beta * *c;
    }
  }
}

void syrk_recurse(int n, int k, double alpha, const double* A, int lda,
                  double beta, double* C, int ldc, const SyrkOptions& opt) {
  if (n <= opt.diagonal_block) {
    syrk_base(n, k, alpha, A, lda, beta, C, ldc);
    return;
  }
  const int n1 = n / 2;
  const int n2 = n - n1;
  const double* A1 = A;        // rows [0, n1)
  const double* A2 = A + n1;   // rows [n1, n)
  syrk_recurse(n1, k, alpha, A1, lda, beta, C, ldc, opt);
  // Off-diagonal block through MODGEMM: C21 = alpha*A2.A1^T + beta*C21.
  modgemm(Op::NoTrans, Op::Trans, n2, n1, k, alpha, A2, lda, A1, lda, beta,
          C + n1, ldc, opt.gemm);
  syrk_recurse(n2, k, alpha, A2, lda, beta,
               C + static_cast<std::size_t>(n1) * ldc + n1, ldc, opt);
}

}  // namespace

void modsyrk(int n, int k, double alpha, const double* A, int lda, double beta,
             double* C, int ldc, const SyrkOptions& opt) {
  STRASSEN_REQUIRE(n >= 0 && k >= 0, "negative dimension");
  STRASSEN_REQUIRE(lda >= std::max(1, n), "lda too small");
  STRASSEN_REQUIRE(ldc >= std::max(1, n), "ldc too small");
  STRASSEN_REQUIRE(opt.diagonal_block >= 1, "bad diagonal block");
  if (n == 0) return;
  if (alpha == 0.0 || k == 0) {
    // Scale the lower triangle only.
    for (int j = 0; j < n; ++j) {
      double* col = C + static_cast<std::size_t>(j) * ldc;
      if (beta == 0.0) {
        for (int i = j; i < n; ++i) col[i] = 0.0;
      } else if (beta != 1.0) {
        for (int i = j; i < n; ++i) col[i] *= beta;
      }
    }
    return;
  }
  syrk_recurse(n, k, alpha, A, lda, beta, C, ldc, opt);
}

}  // namespace strassen::core
