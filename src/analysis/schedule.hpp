// analysis/schedule.hpp -- fast-matrix-multiplication schedules as data.
//
// A Strassen-Winograd level is a straight-line program over twelve quadrant
// operands (A11..A22, B11..B22, C11..C22) and a handful of quadrant-sized
// temporaries: element-wise +/- steps and recursive products.  This header
// lifts the schedules that used to be hard-coded in core/winograd.hpp into
// declarative step tables so that
//
//   * the recursion (core/winograd.hpp) EXECUTES the table -- the same
//     blas::vadd/vsub/gemm calls in the same order as the seed code, so the
//     arithmetic (and every pinned bit-exactness contract) is unchanged, and
//   * the verifier (analysis/schedule_verify.hpp) symbolically executes the
//     same table and PROVES it: every C quadrant equals its sum-of-products
//     target, no step reads an undefined or clobbered value, products never
//     alias their destination, and the live-temporary peak matches the
//     schedule's declared bound (3 for the paper's schedule; the
//     Boyer-Dumas-Pernet-Zhou 2-temporary and in-place variants on the
//     ROADMAP will declare theirs).
//
// The tables are constexpr and the verifier core is constexpr: the library
// build static_asserts the shipped tables (schedule_verify.cpp), so an edit
// that breaks a schedule does not compile, let alone pass tests.
//
// Operand shapes.  With A (tm x tk), B (tk x tn), C (tm x tn) per level:
// A-shaped operands are the A quadrants and S-temporaries, B-shaped the B
// quadrants and T-temporaries, C-shaped the C quadrants and P-temporaries.
// Linear steps require all operands of one shape; a product maps
// (A-shaped) x (B-shaped) -> C-shaped.
#pragma once

#include <cstdint>

namespace strassen::analysis {

// ---- operands -------------------------------------------------------------

// Slot identifiers of one recursion level.  Two temporaries per shape are
// reserved so alternative schedules (and the verifier's negative tests) can
// express higher temporary counts; the shipped schedules use one of each.
enum class Operand : std::uint8_t {
  kA11 = 0, kA12, kA21, kA22,   // A quadrants (read-only inputs)
  kB11, kB12, kB21, kB22,       // B quadrants (read-only inputs)
  kC11, kC12, kC21, kC22,       // C quadrants (outputs, usable as scratch)
  kTS0, kTS1,                   // A-shaped temporaries
  kTT0, kTT1,                   // B-shaped temporaries
  kTP0, kTP1,                   // C-shaped temporaries
  kNone,
};

inline constexpr int kOperandCount = 18;

enum class Shape : std::uint8_t { kA, kB, kC, kNone };

constexpr Shape shape_of(Operand op) {
  const auto v = static_cast<std::uint8_t>(op);
  if (v <= static_cast<std::uint8_t>(Operand::kA22)) return Shape::kA;
  if (v <= static_cast<std::uint8_t>(Operand::kB22)) return Shape::kB;
  if (v <= static_cast<std::uint8_t>(Operand::kC22)) return Shape::kC;
  if (op == Operand::kTS0 || op == Operand::kTS1) return Shape::kA;
  if (op == Operand::kTT0 || op == Operand::kTT1) return Shape::kB;
  if (op == Operand::kTP0 || op == Operand::kTP1) return Shape::kC;
  return Shape::kNone;
}

// Read-only inputs: the A and B quadrants.
constexpr bool is_input(Operand op) {
  return op >= Operand::kA11 && op <= Operand::kB22;
}

constexpr bool is_c_quadrant(Operand op) {
  return op >= Operand::kC11 && op <= Operand::kC22;
}

constexpr bool is_temp(Operand op) {
  return op >= Operand::kTS0 && op <= Operand::kTP1;
}

constexpr const char* operand_name(Operand op) {
  switch (op) {
    case Operand::kA11: return "A11";
    case Operand::kA12: return "A12";
    case Operand::kA21: return "A21";
    case Operand::kA22: return "A22";
    case Operand::kB11: return "B11";
    case Operand::kB12: return "B12";
    case Operand::kB21: return "B21";
    case Operand::kB22: return "B22";
    case Operand::kC11: return "C11";
    case Operand::kC12: return "C12";
    case Operand::kC21: return "C21";
    case Operand::kC22: return "C22";
    case Operand::kTS0: return "tS";
    case Operand::kTS1: return "tS'";
    case Operand::kTT0: return "tT";
    case Operand::kTT1: return "tT'";
    case Operand::kTP0: return "tP";
    case Operand::kTP1: return "tP'";
    case Operand::kNone: break;
  }
  return "<none>";
}

// ---- steps ----------------------------------------------------------------

// One straight-line operation.  Operand roles per kind:
//   kAdd          dst = a0 + a1                    (blas::vadd)
//   kSub          dst = a0 - a1                    (blas::vsub)
//   kAddInplace   dst = dst + a0                   (blas::vadd_inplace)
//   kSubInplace   dst = dst - a0                   (blas::vsub_inplace)
//   kMul          dst = a0 . b0                    (recursive product)
//   kMulFusedA    dst = (a0 asign a1) . b0         (kernel gemm_fused_a)
//   kMulFusedB    dst = a0 . (b0 bsign b1)         (kernel gemm_fused_b)
//   kMulFusedAB   dst = (a0 asign a1) . (b0 bsign b1)  (gemm_fused_ab)
// Element-wise steps may alias dst with a source EXACTLY (the level-1 alias
// contract); products must never alias their destination with a source --
// the verifier rejects the latter, shape rules make it impossible for
// well-shaped tables, but mutated tables are checked explicitly.
enum class StepKind : std::uint8_t {
  kAdd,
  kSub,
  kAddInplace,
  kSubInplace,
  kMul,
  kMulFusedA,
  kMulFusedB,
  kMulFusedAB,
};

enum class Sign : std::int8_t { kMinus = -1, kPlus = 1 };

constexpr bool is_product(StepKind k) {
  return k == StepKind::kMul || k == StepKind::kMulFusedA ||
         k == StepKind::kMulFusedB || k == StepKind::kMulFusedAB;
}

constexpr bool is_fused(StepKind k) {
  return k == StepKind::kMulFusedA || k == StepKind::kMulFusedB ||
         k == StepKind::kMulFusedAB;
}

struct Step {
  StepKind kind;
  Operand dst;
  Operand a0 = Operand::kNone;  // first source (A side of a product)
  Operand a1 = Operand::kNone;  // second linear source / fused A partner
  Operand b0 = Operand::kNone;  // B side of a product
  Operand b1 = Operand::kNone;  // fused B partner
  Sign asign = Sign::kPlus;     // sign applied to a1 in kMulFusedA/AB
  Sign bsign = Sign::kPlus;     // sign applied to b1 in kMulFusedB/AB
  const char* note = "";        // paper name of the step (S3, P5, U2, ...)
};

// Step factories -- keep the tables readable.
constexpr Step add(Operand dst, Operand x, Operand y, const char* note) {
  return Step{StepKind::kAdd, dst, x, y, Operand::kNone, Operand::kNone,
              Sign::kPlus, Sign::kPlus, note};
}
constexpr Step sub(Operand dst, Operand x, Operand y, const char* note) {
  return Step{StepKind::kSub, dst, x, y, Operand::kNone, Operand::kNone,
              Sign::kPlus, Sign::kPlus, note};
}
constexpr Step add_ip(Operand dst, Operand x, const char* note) {
  return Step{StepKind::kAddInplace, dst, x, Operand::kNone, Operand::kNone,
              Operand::kNone, Sign::kPlus, Sign::kPlus, note};
}
constexpr Step sub_ip(Operand dst, Operand x, const char* note) {
  return Step{StepKind::kSubInplace, dst, x, Operand::kNone, Operand::kNone,
              Operand::kNone, Sign::kPlus, Sign::kPlus, note};
}
constexpr Step mul(Operand dst, Operand a, Operand b, const char* note) {
  return Step{StepKind::kMul, dst, a, Operand::kNone, b, Operand::kNone,
              Sign::kPlus, Sign::kPlus, note};
}
constexpr Step mul_fused_a(Operand dst, Operand a0, Sign s, Operand a1,
                           Operand b, const char* note) {
  return Step{StepKind::kMulFusedA, dst, a0, a1, b, Operand::kNone, s,
              Sign::kPlus, note};
}
constexpr Step mul_fused_b(Operand dst, Operand a, Operand b0, Sign s,
                           Operand b1, const char* note) {
  return Step{StepKind::kMulFusedB, dst, a, Operand::kNone, b0, b1,
              Sign::kPlus, s, note};
}
constexpr Step mul_fused_ab(Operand dst, Operand a0, Sign sa, Operand a1,
                            Operand b0, Sign sb, Operand b1,
                            const char* note) {
  return Step{StepKind::kMulFusedAB, dst, a0, a1, b0, b1, sa, sb, note};
}

// ---- schedules ------------------------------------------------------------

struct Schedule {
  const char* name;
  const Step* steps;
  int step_count;
  const Operand* temps;    // temporaries in ALLOCATION order (arena pushes)
  int temp_count;
  int declared_temp_peak;  // documented live-temporary bound; verified
  // True when the table contains fused-product steps: it is only executable
  // at the last level before the leaves (d == 1) on a kernel table that
  // publishes the fused entries, and only verifiable against a materialized
  // reference.
  bool uses_fused_kernels;
  // True when the table overwrites A/B quadrant slots (the Boyer-Dumas-
  // Pernet-Zhou in-place family).  Only executable on operand copies the
  // caller owns -- the Morton-staged quadrants -- never on user matrices,
  // and only at the TOP level of a recursion: a child running this table
  // would clobber parent operands that are still live.
  bool overwrites_inputs = false;
  // True when the table computes C += A.B instead of C = A.B: the C
  // quadrants' initial values are inputs the verifier must prove survive
  // into the result (and nowhere else).
  bool accumulates_c = false;
  // Optional arena-buffer sharing: temp_buffer[i] is the dense buffer id
  // backing temps[i].  Temps mapped to one id share a single allocation
  // sized for the larger shape; the verifier proves their live ranges are
  // disjoint.  nullptr = identity mapping (each temp gets its own buffer).
  const std::int8_t* temp_buffer = nullptr;
};

// Buffer id backing temps[i]: the declared mapping, or i itself.
constexpr int temp_buffer_id(const Schedule& s, int i) {
  return s.temp_buffer != nullptr ? s.temp_buffer[i] : i;
}

// Number of distinct arena buffers the schedule's temporaries occupy.
constexpr int temp_buffer_count(const Schedule& s) {
  int max_id = -1;
  for (int i = 0; i < s.temp_count; ++i)
    if (temp_buffer_id(s, i) > max_id) max_id = temp_buffer_id(s, i);
  return max_id + 1;
}

// ---- schedule families ----------------------------------------------------

// Planner-facing grouping of the shipped tables.  The family -- not an
// individual table -- is what ModgemmOptions::schedule / STRASSEN_SCHEDULE
// pin and what the degradation ladder swaps between: within a family the
// recursion still picks per level (e.g. the fused level-1 table inside
// kWinograd).  kAuto defers the choice to the planner, which prefers the
// default family and degrades to the smaller-footprint ones only when
// max_workspace_bytes forces it.
enum class ScheduleFamily : std::uint8_t {
  kAuto = 0,
  kWinograd,  // 3-temp paper schedule (+ fused L1): the bit-exact default
  kLowMem,    // 2-buffer Boyer-Dumas-Pernet-Zhou variant (tS/tP share)
  kInPlace,   // top level overwrites the Morton A/B copies; 1 temp
};

constexpr const char* family_name(ScheduleFamily f) {
  switch (f) {
    case ScheduleFamily::kAuto: return "auto";
    case ScheduleFamily::kWinograd: return "winograd";
    case ScheduleFamily::kLowMem: return "winograd-lowmem";
    case ScheduleFamily::kInPlace: return "winograd-inplace";
  }
  return "unknown";
}

namespace detail {

using Op = Operand;
inline constexpr Op A11 = Op::kA11, A12 = Op::kA12, A21 = Op::kA21,
                    A22 = Op::kA22;
inline constexpr Op B11 = Op::kB11, B12 = Op::kB12, B21 = Op::kB21,
                    B22 = Op::kB22;
inline constexpr Op C11 = Op::kC11, C12 = Op::kC12, C21 = Op::kC21,
                    C22 = Op::kC22;
inline constexpr Op tS = Op::kTS0, tT = Op::kTT0, tP = Op::kTP0;

// The paper's Winograd schedule (S2), reordered so C's quadrants double as
// scratch and exactly three temporaries are live per level: 7 recursive
// products, 15 element-wise steps, 22 steps total.  This is the table the
// recursion executes at every level (and the ONLY table executed for the
// scalar kernel pin and for traced/counted memory models, which is what
// keeps those paths bit-identical to the seed).
inline constexpr Step kWinogradSteps[] = {
    sub(tS, A11, A21, "S3"),        // tS  = A11 - A21
    sub(tT, B22, B12, "T3"),        // tT  = B22 - B12
    mul(C21, tS, tT, "P5"),         // C21 = S3 . T3
    add(tS, A21, A22, "S1"),        // tS  = A21 + A22
    sub(tT, B12, B11, "T1"),        // tT  = B12 - B11
    mul(C22, tS, tT, "P3"),         // C22 = S1 . T1
    sub_ip(tS, A11, "S2"),          // tS  = S1 - A11
    sub(tT, B22, tT, "T2"),         // tT  = B22 - T1
    mul(C12, tS, tT, "P4"),         // C12 = S2 . T2
    sub(tS, A12, tS, "S4"),         // tS  = A12 - S2
    sub_ip(tT, B21, "-T4"),         // tT  = T2 - B21
    mul(tP, A11, B11, "P1"),        // tP  = A11 . B11
    add_ip(C12, tP, "U2"),          // C12 = P1 + P4
    add_ip(C21, C12, "U3"),         // C21 = U2 + P5
    add_ip(C12, C22, "U6"),         // C12 = U2 + P3
    add_ip(C22, C21, "U5"),         // C22 = U3 + P3       [final C22]
    mul(C11, A22, tT, "-P7"),       // C11 = A22 . (T2 - B21)
    sub_ip(C21, C11, "U4"),         // C21 = U3 + P7       [final C21]
    mul(C11, tS, B22, "P6"),        // C11 = S4 . B22
    add_ip(C12, C11, "U7"),         // C12 = U6 + P6       [final C12]
    mul(C11, A12, B21, "P2"),       // C11 = A12 . B21
    add_ip(C11, tP, "U1"),          // C11 = P1 + P2       [final C11]
};

// Level-1 variant with the operand combinations that feed exactly one
// product fused into the product itself (S3/T3 into P5, -T4 into P7, S4
// into P6), saving four full passes over quadrant-sized temporaries.
// S1/T1/S2/T2 stay materialized because the schedule reuses them.  Same
// U-chain, same three temporaries.
inline constexpr Step kWinogradFusedL1Steps[] = {
    mul_fused_ab(C21, A11, Sign::kMinus, A21,     // C21 = (A11-A21).(B22-B12)
                 B22, Sign::kMinus, B12, "P5"),   //       = S3 . T3
    add(tS, A21, A22, "S1"),                      // tS  = A21 + A22
    sub(tT, B12, B11, "T1"),                      // tT  = B12 - B11
    mul(C22, tS, tT, "P3"),                       // C22 = S1 . T1
    sub_ip(tS, A11, "S2"),                        // tS  = S1 - A11
    sub(tT, B22, tT, "T2"),                       // tT  = B22 - T1
    mul(C12, tS, tT, "P4"),                       // C12 = S2 . T2
    mul(tP, A11, B11, "P1"),                      // tP  = A11 . B11
    add_ip(C12, tP, "U2"),                        // C12 = P1 + P4
    add_ip(C21, C12, "U3"),                       // C21 = U2 + P5
    add_ip(C12, C22, "U6"),                       // C12 = U2 + P3
    add_ip(C22, C21, "U5"),                       // C22 = U3 + P3  [final]
    mul_fused_b(C11, A22, tT, Sign::kMinus, B21,  // C11 = A22 . (T2-B21)
                "-P7"),
    sub_ip(C21, C11, "U4"),                       // C21 = U3 + P7  [final]
    mul_fused_a(C11, A12, Sign::kMinus, tS, B22,  // C11 = (A12-S2) . B22
                "P6"),                            //       = S4 . B22
    add_ip(C12, C11, "U7"),                       // C12 = U6 + P6  [final]
    mul(C11, A12, B21, "P2"),                     // C11 = A12 . B21
    add_ip(C11, tP, "U1"),                        // C11 = P1 + P2  [final]
};

// Allocation order matches the seed's arena pushes (tS, tT, tP) so the
// table-driven recursion reproduces the seed's exact workspace layout.
inline constexpr Operand kWinogradTemps[] = {tS, tT, tP};

// ---- low-memory family (Boyer-Dumas-Pernet-Zhou) --------------------------
//
// The 2-buffer schedule.  BDPZ's literal 2-temp table reuses one temporary
// across shapes (their X starts A-shaped and ends C-shaped), which this
// engine's shape typing forbids; the same memory bound is reached instead by
// declaring tS and tP but mapping both onto ONE arena buffer (temp_buffer
// {0, 1, 0}, sized max of the two shapes) -- legal because their live ranges
// are disjoint: tS dies at P6 (step 11) before tP is born at P1 (step 12),
// which the verifier proves.  Products are ordered so every P lands either
// directly in its C quadrant or in C11-as-scratch; per level this needs
// max(qa, qc) + qb temporary elements instead of qa + qb + qc.
inline constexpr Step kWinogradLowMemSteps[] = {
    sub(tS, A11, A21, "S3"),        // tS  = A11 - A21
    sub(tT, B22, B12, "T3"),        // tT  = B22 - B12
    mul(C21, tS, tT, "P5"),         // C21 = S3 . T3
    add(tS, A21, A22, "S1"),        // tS  = A21 + A22
    sub(tT, B12, B11, "T1"),        // tT  = B12 - B11
    mul(C22, tS, tT, "P3"),         // C22 = S1 . T1
    sub_ip(tS, A11, "S2"),          // tS  = S1 - A11
    sub(tT, B22, tT, "T2"),         // tT  = B22 - T1
    mul(C12, tS, tT, "P4"),         // C12 = S2 . T2
    sub(tS, A12, tS, "S4"),         // tS  = A12 - S2
    mul(C11, tS, B22, "P6"),        // C11 = S4 . B22   [tS dies here]
    mul(tP, A11, B11, "P1"),        // tP  = A11 . B11  [reuses tS's buffer]
    add_ip(C12, tP, "U2"),          // C12 = P1 + P4
    add_ip(C21, C12, "U3"),         // C21 = U2 + P5
    add_ip(C12, C22, "U6"),         // C12 = U2 + P3
    add_ip(C22, C21, "U5"),         // C22 = U3 + P3       [final C22]
    add_ip(C12, C11, "U7"),         // C12 = U6 + P6       [final C12]
    sub_ip(tT, B21, "-T4"),         // tT  = T2 - B21
    mul(C11, A22, tT, "-P7"),       // C11 = A22 . (T2 - B21)
    sub_ip(C21, C11, "U4"),         // C21 = U3 + P7       [final C21]
    mul(C11, A12, B21, "P2"),       // C11 = A12 . B21
    add_ip(C11, tP, "U1"),          // C11 = P1 + P2       [final C11]
};

// tS and tP share arena buffer 0 (sized for the larger of the A/C shapes);
// tT owns buffer 1.
inline constexpr std::int8_t kWinogradLowMemBuffers[] = {0, 1, 0};

// The in-place schedule: the S/T operand sums overwrite the A/B quadrant
// slots themselves, leaving a single C-shaped temporary (tP).  Every
// element-wise write aliases its source slot EXACTLY (the level-1 alias
// contract), and two algebraic identities eliminate the reads the paper's
// ordering would need after a clobber:
//
//   S3 = A11 - A21 = A22 - S2        (since S2 = A21 + A22 - A11)
//   T3 = B22 - B12 = T2 - B11        (since T2 = B22 - B12 + B11)
//
// so S3/T3 are formed FROM the clobbered slots.  A22 and B22 are never
// overwritten (they are read last).  Per level this needs qc temporary
// elements -- but only at the TOP of a recursion: a child running this
// table would destroy parent operands that are still live, so children run
// kWinogradLowMem (core/winograd.hpp enforces this).
inline constexpr Step kWinogradInPlaceSteps[] = {
    mul(tP, A11, B11, "P1"),        // tP  = A11 . B11
    mul(C11, A12, B21, "P2"),       // C11 = A12 . B21
    add_ip(C11, tP, "U1"),          // C11 = P1 + P2       [final C11]
    add(A21, A21, A22, "S1"),       // A21 <- S1 = A21 + A22
    sub(A11, A21, A11, "S2"),       // A11 <- S2 = S1 - A11
    sub(B12, B12, B11, "T1"),       // B12 <- T1 = B12 - B11
    mul(C22, A21, B12, "P3"),       // C22 = S1 . T1
    sub(B12, B22, B12, "T2"),       // B12 <- T2 = B22 - T1
    mul(C12, A11, B12, "P4"),       // C12 = S2 . T2
    add_ip(C12, tP, "U2"),          // C12 = P1 + P4       [tP dies here]
    sub(A12, A12, A11, "S4"),       // A12 <- S4 = A12 - S2
    sub(A11, A22, A11, "S3"),       // A11 <- S3 = A22 - S2
    sub(B11, B12, B11, "T3"),       // B11 <- T3 = T2 - B11
    mul(C21, A11, B11, "P5"),       // C21 = S3 . T3
    add_ip(C21, C12, "U3"),         // C21 = U2 + P5
    add_ip(C12, C22, "U6"),         // C12 = U2 + P3
    add_ip(C22, C21, "U5"),         // C22 = U3 + P3       [final C22]
    sub(B21, B12, B21, "-T4"),      // B21 <- T2 - B21
    mul(tP, A22, B21, "-P7"),       // tP  = A22 . (T2 - B21)
    sub_ip(C21, tP, "U4"),          // C21 = U3 + P7       [final C21]
    mul(tP, A12, B22, "P6"),        // tP  = S4 . B22
    add_ip(C12, tP, "U7"),          // C12 = U6 + P6       [final C12]
};

inline constexpr Operand kWinogradInPlaceTemps[] = {tP};

// The accumulating schedule: C += A . B with the C quadrants' INITIAL
// values live throughout (the split path's k-chunk chains use this to skip
// the separate beta pass and the per-chunk C buffer).  Every product lands
// in tP and is combined into its targets with in-place adds, so no C
// quadrant is ever overwritten -- only accumulated into.  Same three
// temporaries as the default schedule (the saving is the C pass and the
// extra Morton C buffer, not the per-level temporaries).
inline constexpr Step kWinogradAccumSteps[] = {
    sub(tS, A11, A21, "S3"),        // tS  = A11 - A21
    sub(tT, B22, B12, "T3"),        // tT  = B22 - B12
    mul(tP, tS, tT, "P5"),          // tP  = S3 . T3
    add_ip(C21, tP, "C21+=P5"),
    add_ip(C22, tP, "C22+=P5"),
    add(tS, A21, A22, "S1"),        // tS  = A21 + A22
    sub(tT, B12, B11, "T1"),        // tT  = B12 - B11
    mul(tP, tS, tT, "P3"),          // tP  = S1 . T1
    add_ip(C22, tP, "C22+=P3"),
    add_ip(C12, tP, "C12+=P3"),
    sub_ip(tS, A11, "S2"),          // tS  = S1 - A11
    sub(tT, B22, tT, "T2"),         // tT  = B22 - T1
    mul(tP, tS, tT, "P4"),          // tP  = S2 . T2
    add_ip(C12, tP, "C12+=P4"),
    add_ip(C21, tP, "C21+=P4"),
    add_ip(C22, tP, "C22+=P4"),
    sub(tS, A12, tS, "S4"),         // tS  = A12 - S2
    mul(tP, tS, B22, "P6"),         // tP  = S4 . B22
    add_ip(C12, tP, "C12+=P6"),
    sub_ip(tT, B21, "-T4"),         // tT  = T2 - B21
    mul(tP, A22, tT, "-P7"),        // tP  = A22 . (T2 - B21)
    sub_ip(C21, tP, "C21-=P7"),
    mul(tP, A11, B11, "P1"),        // tP  = A11 . B11
    add_ip(C11, tP, "C11+=P1"),
    add_ip(C12, tP, "C12+=P1"),
    add_ip(C21, tP, "C21+=P1"),
    add_ip(C22, tP, "C22+=P1"),
    mul(tP, A12, B21, "P2"),        // tP  = A12 . B21
    add_ip(C11, tP, "C11+=P2"),     //                      [final C11]
};

}  // namespace detail

// The production Winograd schedule (every level; sole schedule for the
// scalar pin and all traced/counted models).
inline constexpr Schedule kWinograd{
    "winograd",
    detail::kWinogradSteps,
    static_cast<int>(sizeof(detail::kWinogradSteps) / sizeof(Step)),
    detail::kWinogradTemps,
    static_cast<int>(sizeof(detail::kWinogradTemps) / sizeof(Operand)),
    /*declared_temp_peak=*/3,
    /*uses_fused_kernels=*/false,
};

// The fused level-1 variant, executed when d == 1 and the active kernel
// table publishes gemm_fused_{a,b,ab}.
inline constexpr Schedule kWinogradFusedL1{
    "winograd-fused-l1",
    detail::kWinogradFusedL1Steps,
    static_cast<int>(sizeof(detail::kWinogradFusedL1Steps) / sizeof(Step)),
    detail::kWinogradTemps,
    static_cast<int>(sizeof(detail::kWinogradTemps) / sizeof(Operand)),
    /*declared_temp_peak=*/3,
    /*uses_fused_kernels=*/true,
};

// The 2-buffer low-memory schedule (ScheduleFamily::kLowMem): tS and tP
// share one arena buffer, proved disjoint-liveness by the verifier.
inline constexpr Schedule kWinogradLowMem{
    "winograd-lowmem",
    detail::kWinogradLowMemSteps,
    static_cast<int>(sizeof(detail::kWinogradLowMemSteps) / sizeof(Step)),
    detail::kWinogradTemps,
    static_cast<int>(sizeof(detail::kWinogradTemps) / sizeof(Operand)),
    /*declared_temp_peak=*/2,
    /*uses_fused_kernels=*/false,
    /*overwrites_inputs=*/false,
    /*accumulates_c=*/false,
    detail::kWinogradLowMemBuffers,
};

// The in-place schedule (ScheduleFamily::kInPlace, top level only):
// overwrites the Morton A/B copies, one C-shaped temporary.
inline constexpr Schedule kWinogradInPlace{
    "winograd-inplace",
    detail::kWinogradInPlaceSteps,
    static_cast<int>(sizeof(detail::kWinogradInPlaceSteps) / sizeof(Step)),
    detail::kWinogradInPlaceTemps,
    static_cast<int>(sizeof(detail::kWinogradInPlaceTemps) / sizeof(Operand)),
    /*declared_temp_peak=*/1,
    /*uses_fused_kernels=*/false,
    /*overwrites_inputs=*/true,
};

// The accumulating schedule (C += A.B; split-path k-chunk fusion).
inline constexpr Schedule kWinogradAccum{
    "winograd-accum",
    detail::kWinogradAccumSteps,
    static_cast<int>(sizeof(detail::kWinogradAccumSteps) / sizeof(Step)),
    detail::kWinogradTemps,
    static_cast<int>(sizeof(detail::kWinogradTemps) / sizeof(Operand)),
    /*declared_temp_peak=*/3,
    /*uses_fused_kernels=*/false,
    /*overwrites_inputs=*/false,
    /*accumulates_c=*/true,
};

// All shipped schedules, for the verifier CLI and tests.
inline constexpr const Schedule* kShippedSchedules[] = {
    &kWinograd, &kWinogradFusedL1, &kWinogradLowMem, &kWinogradInPlace,
    &kWinogradAccum};
inline constexpr int kShippedScheduleCount = 5;

}  // namespace strassen::analysis
