// workspace.hpp -- exact arena sizing for the Winograd recursion.
//
// Each recursion level allocates three quadrant-sized temporaries (an S-temp
// over A's quadrant shape, a T-temp over B's, and a P-temp over C's) and
// releases them before returning, so the live set is a stack.  Sizing the
// arena to the exact peak lets the whole multiply run with a single
// allocation; the paper's implementations were likewise careful to bound
// temporary storage (S5.1).
#pragma once

#include <cstddef>

namespace strassen::core {

// Peak bytes of recursion temporaries for a product of Morton blocks with
// leaf tiles (tm x tk) * (tk x tn) and `depth` recursion levels, including
// the arena's per-allocation 64-byte rounding.
std::size_t winograd_workspace_bytes(int tm, int tk, int tn, int depth,
                                     std::size_t elem_size);

}  // namespace strassen::core
