#!/usr/bin/env python3
"""Tests for tools/compare_bench.py (stdlib only, registered with ctest).

Builds synthetic baseline/current BENCH_kernels.json pairs and checks the
exit-code contract: 0 when every normalized ratio is within tolerance, 1 on
a >tolerance regression, 2 when the baseline has no comparable points.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

TOOL = pathlib.Path(__file__).resolve().parents[2] / "tools" / "compare_bench.py"


def bench_json(points):
    """points: iterable of (kernel, tile, gflops)."""
    return {"results": [{"kernel": k, "tile": t, "gflops": g}
                        for k, t, g in points]}


class CompareBenchTest(unittest.TestCase):
    def run_tool(self, baseline, current, extra=()):
        with tempfile.TemporaryDirectory() as d:
            bpath = pathlib.Path(d) / "baseline.json"
            cpath = pathlib.Path(d) / "current.json"
            bpath.write_text(json.dumps(baseline))
            cpath.write_text(json.dumps(current))
            proc = subprocess.run(
                [sys.executable, str(TOOL), "--baseline", str(bpath),
                 "--current", str(cpath), *extra],
                capture_output=True, text=True)
        return proc

    def test_identical_runs_pass(self):
        data = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0),
                           ("scalar", 32, 3.0), ("avx2", 32, 15.0)])
        proc = self.run_tool(data, data)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("within tolerance", proc.stdout)

    def test_small_drop_within_tolerance_passes(self):
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0)])
        # Ratio drops from 4.0x to 3.6x: a 10% regression, under the 15%
        # default tolerance.
        current = bench_json([("scalar", 8, 2.0), ("avx2", 8, 7.2)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_large_regression_fails(self):
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0)])
        # Ratio drops from 4.0x to 3.0x: a 25% regression.
        current = bench_json([("scalar", 8, 2.0), ("avx2", 8, 6.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("REGRESSION", proc.stdout)

    def test_machine_speed_is_normalized_away(self):
        # The current "machine" is 3x faster across the board: every raw
        # number changed, every ratio is identical, so the gate passes.
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0)])
        current = bench_json([("scalar", 8, 6.0), ("avx2", 8, 24.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_missing_point_is_skipped_not_failed(self):
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0),
                               ("neon", 8, 6.0)])
        current = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("skipped", proc.stdout)

    def test_empty_baseline_is_usage_error(self):
        baseline = bench_json([("scalar", 8, 2.0)])  # nothing to normalize
        current = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 2, proc.stdout + proc.stderr)

    def test_custom_tolerance(self):
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0)])
        current = bench_json([("scalar", 8, 2.0), ("avx2", 8, 7.2)])  # -10%
        proc = self.run_tool(baseline, current, extra=("--tolerance", "0.05"))
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    # ---- modgemm strategy rows (normalized by same-run modgemm-morton) ----

    def test_strategy_rows_pass_when_ratio_holds(self):
        # A 2x faster machine moves every absolute number, but the
        # packfused/morton ratio is unchanged: the gate passes.
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0),
                               ("modgemm-morton", 513, 3.0),
                               ("modgemm-packfused", 513, 3.1)])
        current = bench_json([("scalar", 8, 4.0), ("avx2", 8, 16.0),
                              ("modgemm-morton", 513, 6.0),
                              ("modgemm-packfused", 513, 6.2)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_strategy_ratio_regression_fails(self):
        # Pack-fused drops from parity with Morton to 25% slower while the
        # leaf-kernel points are untouched.
        baseline = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0),
                               ("modgemm-morton", 513, 3.0),
                               ("modgemm-packfused", 513, 3.0)])
        current = bench_json([("scalar", 8, 2.0), ("avx2", 8, 8.0),
                              ("modgemm-morton", 513, 3.0),
                              ("modgemm-packfused", 513, 2.25)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("modgemm-packfused", proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    # ---- batched rows (normalized by same-run batched-loop) ----

    def test_batched_rows_normalize_by_batched_loop(self):
        # A uniformly 2x faster machine keeps both batched ratios, so the
        # gate passes even though every absolute number moved.
        baseline = bench_json([("batched-loop", 128, 4.0),
                               ("batched-serial", 128, 4.4),
                               ("batched-pool", 128, 12.0)])
        current = bench_json([("batched-loop", 128, 8.0),
                              ("batched-serial", 128, 8.8),
                              ("batched-pool", 128, 24.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_batched_pool_scaling_regression_fails(self):
        # The pool row falls from a 3x to a 1.5x speedup over the same-run
        # per-item loop: a scaling loss, gated regardless of raw GFLOP/s.
        baseline = bench_json([("batched-loop", 128, 4.0),
                               ("batched-pool", 128, 12.0)])
        current = bench_json([("batched-loop", 128, 4.0),
                              ("batched-pool", 128, 6.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("batched-pool", proc.stdout)
        self.assertIn("REGRESSION", proc.stdout)

    def test_morton_base_row_is_not_gated_by_scalar(self):
        # modgemm-morton is a base row: it must neither be normalized by the
        # scalar leaf kernel nor gated itself, even when its absolute number
        # halves while scalar holds still.
        baseline = bench_json([("scalar", 513, 2.0),
                               ("modgemm-morton", 513, 4.0),
                               ("modgemm-packfused", 513, 4.0)])
        current = bench_json([("scalar", 513, 2.0),
                              ("modgemm-morton", 513, 2.0),
                              ("modgemm-packfused", 513, 2.0)])
        proc = self.run_tool(baseline, current)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
